// Package divmax is a Go implementation of the diversity-maximization
// algorithms of Ceccarello, Pietracaprina, Pucci, and Upfal, "MapReduce
// and Streaming Algorithms for Diversity Maximization in Metric Spaces of
// Bounded Doubling Dimension" (PVLDB 10(5), 2017).
//
// Given a dataset of points in a metric space and an integer k, a
// diversity-maximization problem asks for k points maximizing one of six
// objectives (Measure): the minimum pairwise distance (RemoteEdge), the
// sum of pairwise distances (RemoteClique), the minimum star weight
// (RemoteStar), the minimum balanced-bipartition cut (RemoteBipartition),
// the minimum spanning tree weight (RemoteTree), or the shortest
// Hamiltonian cycle weight (RemoteCycle). All six are NP-hard; this
// package provides the paper's constant-factor machinery for three
// regimes:
//
//   - Sequential: MaxDiversity runs the best known linear-space
//     α-approximation (α per Measure.SequentialAlpha).
//   - Streaming: StreamingSolve makes one pass with memory independent of
//     the stream length; StreamingSolveTwoPass trades a second pass for
//     O(k′) memory on the four delegate-based objectives (Theorem 9).
//   - MapReduce: MapReduceSolve runs the 2-round algorithm of Theorem 6
//     on an in-memory MapReduce engine driven by goroutines;
//     MapReduceSolve3 is the memory-reduced 3-round variant (Theorem 10)
//     and MapReduceSolveRecursive the multi-round one (Theorem 8).
//
// The streaming and MapReduce algorithms first distill the data into a
// small core-set — a subset guaranteed to contain a near-optimal solution
// — and then run the sequential algorithm on it. In metric spaces of
// bounded doubling dimension the core-sets lose only a 1+ε factor, so the
// end-to-end guarantee is α+ε, matching the sequential quality with one
// pass or two rounds over arbitrarily large data.
//
// Points are generic: any type P works given a Distance[P] satisfying the
// metric axioms. Ready-made types cover the paper's experiments: Vector
// with Euclidean distance, SparseVector with CosineDistance, and Set with
// JaccardDistance.
package divmax

import (
	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

// Measure identifies one of the six diversity objectives of the paper's
// Table 1.
type Measure = diversity.Measure

// The six diversity measures.
const (
	RemoteEdge        = diversity.RemoteEdge
	RemoteClique      = diversity.RemoteClique
	RemoteStar        = diversity.RemoteStar
	RemoteBipartition = diversity.RemoteBipartition
	RemoteTree        = diversity.RemoteTree
	RemoteCycle       = diversity.RemoteCycle
)

// Measures lists all six measures in Table 1 order.
var Measures = diversity.Measures

// ParseMeasure parses a measure name ("remote-edge", "r-edge", "edge").
func ParseMeasure(s string) (Measure, error) { return diversity.ParseMeasure(s) }

// Distance is a metric distance function between points of type P. It
// must be non-negative, symmetric, zero on identical points, satisfy the
// triangle inequality, and be safe for concurrent use.
type Distance[P any] = metric.Distance[P]

// Vector is a dense point in d-dimensional Euclidean space.
type Vector = metric.Vector

// SparseVector is a sparse non-negative vector (e.g. a bag of words),
// used with CosineDistance.
type SparseVector = metric.SparseVector

// Set is a finite set of identifiers, used with JaccardDistance.
type Set = metric.Set

// Ready-made metric distances for the built-in point types.
var (
	// Euclidean is the L2 distance between Vectors.
	Euclidean Distance[Vector] = metric.Euclidean
	// Manhattan is the L1 distance between Vectors.
	Manhattan Distance[Vector] = metric.Manhattan
	// AngularDistance is arccos of the cosine similarity of Vectors.
	AngularDistance Distance[Vector] = metric.AngularDistance
	// CosineDistance is the angular distance between SparseVectors, the
	// metric the paper uses on the musiXmatch dataset.
	CosineDistance Distance[SparseVector] = metric.CosineDistance
	// JaccardDistance is 1 − |A∩B|/|A∪B| between Sets.
	JaccardDistance Distance[Set] = metric.JaccardDistance
)

// NewSparseVector builds a SparseVector from (term, value) pairs.
func NewSparseVector(terms []uint32, values []float64) SparseVector {
	return metric.NewSparseVector(terms, values)
}

// NewSet builds a Set from (possibly unordered, duplicated) elements.
func NewSet(elems ...uint64) Set { return metric.NewSet(elems...) }

// Evaluate computes the diversity div(pts) of a candidate solution under
// measure m. The boolean reports whether the value is exact: evaluation
// is polynomial for four measures, while remote-cycle and
// remote-bipartition values are exact only for solution sizes up to 16
// and 20 respectively and conservative heuristics beyond.
func Evaluate[P any](m Measure, pts []P, d Distance[P]) (float64, bool) {
	return diversity.Evaluate(m, pts, d)
}

// MaxDiversity runs the best known sequential approximation for m on pts
// and returns min(k, len(pts)) points together with their diversity
// value. The approximation factor is m.SequentialAlpha(): 2 for
// remote-edge, -clique, and -star; 3 for remote-bipartition and -cycle;
// 4 for remote-tree (Table 1). Time is O(k·n) distance evaluations
// (O(k·n²) for remote-clique); space is linear. It panics if k < 1.
func MaxDiversity[P any](m Measure, pts []P, k int, d Distance[P]) ([]P, float64) {
	sol := sequential.Solve(m, pts, k, d)
	val, _ := diversity.Evaluate(m, sol, d)
	return sol, val
}

// Exact solves the problem optimally by enumerating all C(n,k) subsets.
// It is exponential and intended for tests, calibration, and tiny inputs.
// The boolean reports whether every subset evaluation was itself exact
// (see Evaluate).
func Exact[P any](m Measure, pts []P, k int, d Distance[P]) ([]P, float64, bool) {
	return sequential.BruteForce(m, pts, k, d)
}

// Grouped is a point carrying a partition-matroid class, for
// MaxDiversityPartitioned.
type Grouped[P any] = sequential.Grouped[P]

// MaxDiversityPartitioned maximizes remote-clique diversity subject to a
// partition matroid: the k selected points may include at most limits[g]
// points of group g. This is the constrained generalization the paper
// points to (Abbassi–Mirrokni–Thakur, KDD'13; Cevallos et al., SoCG'16),
// solved by feasibility-preserving local search (constant-factor
// approximation). Use it when diverse results must also respect quotas —
// e.g. at most two products per brand, at most one result per site.
// It returns an error when the limits admit fewer than k points.
func MaxDiversityPartitioned[P any](pts []Grouped[P], limits []int, k int, d Distance[P]) ([]P, float64, error) {
	sol, err := sequential.MaxDispersionPartitionMatroid(pts, limits, k, d)
	if err != nil {
		return nil, 0, err
	}
	val, _ := diversity.Evaluate(diversity.RemoteClique, sol, d)
	return sol, val, nil
}
