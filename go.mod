module divmax

go 1.24
