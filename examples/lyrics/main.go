// Lyrics: the paper's motivating scenario for streaming — pick a varied
// playlist from a corpus of songs, each represented as a bag of words
// under the cosine distance, in one pass with constant memory.
//
// The corpus is a simulation of the musiXmatch dataset (5,000-word
// vocabulary, Zipf term frequencies, ≥ 10 distinct words per song); the
// real dataset is not redistributable.
package main

import (
	"fmt"
	"log"

	"divmax"
	"divmax/internal/dataset"
)

func main() {
	const (
		nSongs = 20000
		k      = 10 // playlist size
		kprime = 40 // core-set kernel; bigger = more accurate
	)

	// A replayable stream: in production this would read a file or a
	// message queue. The processor never holds more than O(k'·k) songs.
	stream, err := dataset.LyricsStream(dataset.LyricsConfig{N: nSongs, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Feed the stream through the incremental core-set builder, as an
	// ingestion loop would.
	sc := divmax.NewStreamCoreset(divmax.RemoteClique, k, kprime, divmax.CosineDistance)
	processed := 0
	stream(func(song divmax.SparseVector) {
		sc.Process(song)
		processed++
	})
	fmt.Printf("streamed %d songs, kept %d in memory\n", processed, sc.StoredPoints())

	// The playlist: maximize the total pairwise angular distance
	// (remote-clique), i.e. spread the picks over topics.
	playlist, val := divmax.MaxDiversity(divmax.RemoteClique, sc.Coreset(), k, divmax.CosineDistance)
	fmt.Printf("picked %d songs, remote-clique diversity %.2f rad\n", len(playlist), val)
	avg := val / float64(k*(k-1)/2)
	fmt.Printf("average pairwise angle %.2f rad (%.0f°)\n", avg, avg*180/3.14159)

	for i, song := range playlist {
		fmt.Printf("  song %2d: %d distinct words, e.g. %s...\n", i+1, song.NNZ(), head(song))
	}
}

func head(v divmax.SparseVector) string {
	s := v.String()
	if len(s) > 30 {
		return s[:30]
	}
	return s
}
