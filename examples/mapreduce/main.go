// MapReduce: the paper's 2-round algorithm on the synthetic sphere
// dataset — 128 planted far points hidden in a ball of noise — with
// per-round memory accounting, plus the 3-round generalized variant
// that shrinks the shuffle.
package main

import (
	"fmt"
	"log"

	"divmax"
	"divmax/internal/dataset"
)

func main() {
	const (
		n      = 200000
		k      = 16
		kprime = 64
		ell    = 8 // reducers
	)
	pts, err := dataset.Sphere(dataset.SphereConfig{N: n, K: k, Dim: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	pts = dataset.Shuffle(pts, 43)

	// 2-round (Theorem 6): per-partition core-sets, one aggregation.
	var metrics divmax.MRMetrics
	cfg := divmax.MRConfig{Parallelism: ell, KPrime: kprime, Metrics: &metrics}
	sol, err := divmax.MapReduceSolve(divmax.RemoteEdge, pts, k, cfg, divmax.Euclidean)
	if err != nil {
		log.Fatal(err)
	}
	val, _ := divmax.Evaluate(divmax.RemoteEdge, sol, divmax.Euclidean)
	fmt.Printf("2-round remote-edge over %d points: %.4f (planted far-set value ≈ %.4f)\n", n, val, plantedEdge())
	for _, r := range metrics.Rounds() {
		fmt.Printf("  round %-12s reducers=%-3d M_L=%-7d in=%-7d out=%-6d %v\n",
			r.Name, r.Reducers, r.MaxLocalMemory, r.TotalInput, r.TotalOutput, r.Duration.Round(1000))
	}

	// 3-round generalized variant (Theorem 10) for a delegate-based
	// measure: the aggregation shrinks from k·k' to k' points per
	// partition.
	var metrics3 divmax.MRMetrics
	cfg3 := divmax.MRConfig{Parallelism: ell, KPrime: kprime, Metrics: &metrics3}
	sol3, err := divmax.MapReduceSolve3(divmax.RemoteClique, pts, k, cfg3, divmax.Euclidean)
	if err != nil {
		log.Fatal(err)
	}
	val3, _ := divmax.Evaluate(divmax.RemoteClique, sol3, divmax.Euclidean)
	fmt.Printf("3-round remote-clique: %.2f\n", val3)
	for _, r := range metrics3.Rounds() {
		fmt.Printf("  round %-14s reducers=%-3d M_L=%-7d in=%-7d out=%-6d %v\n",
			r.Name, r.Reducers, r.MaxLocalMemory, r.TotalInput, r.TotalOutput, r.Duration.Round(1000))
	}
}

// plantedEdge reports the minimum pairwise distance among the k planted
// surface points — a yardstick, not the optimum (bulk points can spread
// better); see EXPERIMENTS.md for the reference methodology.
func plantedEdge() float64 {
	pts, err := dataset.Sphere(dataset.SphereConfig{N: 16, K: 16, Dim: 3, Seed: 42})
	if err != nil {
		return 0
	}
	v, _ := divmax.Evaluate(divmax.RemoteEdge, pts, divmax.Euclidean)
	return v
}
