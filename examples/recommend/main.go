// Recommend: diversity-aware result sets over the Jaccard distance — the
// paper's e-commerce/web-search motivation. After relevance filtering
// returns hundreds of candidate products, present k that are as unlike
// each other as possible, so the user sees the variety of options.
package main

import (
	"fmt"
	"math/rand"

	"divmax"
)

// catalogItem is a product with a set of attribute/tag identifiers.
type catalogItem struct {
	name string
	tags divmax.Set
}

func main() {
	items := catalog()

	// Relevance would normally rank these; diversity maximization picks
	// the spread. remote-clique maximizes total pairwise dissimilarity.
	const k = 5
	tags := make([]divmax.Set, len(items))
	for i, it := range items {
		tags[i] = it.tags
	}
	sol, val := divmax.MaxDiversity(divmax.RemoteClique, tags, k, divmax.JaccardDistance)
	fmt.Printf("picked %d of %d items, total pairwise Jaccard distance %.2f\n", k, len(items), val)
	fmt.Printf("average dissimilarity %.2f (1.0 = nothing in common)\n\n", val/float64(k*(k-1)/2))

	for _, s := range sol {
		for _, it := range items {
			if it.tags.String() == s.String() {
				fmt.Printf("  %-22s tags=%v\n", it.name, it.tags)
				break
			}
		}
	}

	// Contrast with the top-k by (simulated) relevance alone: near
	// duplicates dominate.
	topK := tags[:k]
	topVal, _ := divmax.Evaluate(divmax.RemoteClique, topK, divmax.JaccardDistance)
	fmt.Printf("\nfirst-%d items instead: total distance %.2f — %.0f%% of the diverse pick\n",
		k, topVal, 100*topVal/val)
}

// catalog simulates a relevance-filtered result list: clusters of
// near-duplicate products (same family, minor tag variations) plus a few
// genuinely different ones.
func catalog() []catalogItem {
	rng := rand.New(rand.NewSource(3))
	var items []catalogItem
	families := []struct {
		name string
		base []uint64
	}{
		{"trail runner", []uint64{1, 2, 3, 4, 5}},
		{"road runner", []uint64{1, 2, 3, 6, 7}},
		{"hiking boot", []uint64{20, 21, 22, 23}},
		{"sandal", []uint64{40, 41, 42}},
		{"climbing shoe", []uint64{60, 61, 62, 63}},
		{"winter boot", []uint64{80, 81, 82, 83, 84}},
	}
	for fi, fam := range families {
		for v := 0; v < 8; v++ {
			tags := append([]uint64(nil), fam.base...)
			// Minor per-variant tag tweaks.
			tags = append(tags, uint64(100+fi*10+rng.Intn(3)))
			items = append(items, catalogItem{
				name: fmt.Sprintf("%s v%d", fam.name, v+1),
				tags: divmax.NewSet(tags...),
			})
		}
	}
	return items
}
