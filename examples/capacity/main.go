// Capacity: size a deployment before running it. The paper's Table 3
// gives the memory each algorithm needs; divmax.MemoryBound makes it
// executable, and the MapReduce engine can enforce the budget per reducer
// so violations surface as metrics instead of out-of-memory kills.
package main

import (
	"fmt"
	"log"

	"divmax"
	"divmax/internal/dataset"
)

func main() {
	const (
		n   = 120000
		k   = 16
		eps = 0.5
		dim = 3 // R³ has doubling dimension O(3)
	)

	// 1. What does each algorithm need on this workload?
	fmt.Printf("memory plan for n=%d, k=%d, ε=%.1f, D=%d (points per machine):\n", n, k, eps, dim)
	for _, row := range []struct {
		m     divmax.Measure
		model divmax.Model
	}{
		{divmax.RemoteEdge, divmax.Streaming1Pass},
		{divmax.RemoteClique, divmax.Streaming1Pass},
		{divmax.RemoteClique, divmax.Streaming2Pass},
		{divmax.RemoteEdge, divmax.MR2Round},
		{divmax.RemoteClique, divmax.MR2Round},
		{divmax.RemoteClique, divmax.MR3Round},
	} {
		pts, formula, err := divmax.MemoryBound(row.m, row.model, n, k, eps, dim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20v %-34v %-22s %d\n", row.m, row.model, formula, pts)
	}

	// 2. Run the 2-round algorithm under an enforced per-reducer budget.
	// The budget below is deliberately derived from the plan (with
	// headroom: the Θ hides constants).
	data, err := dataset.Sphere(dataset.SphereConfig{N: n, K: k, Dim: dim, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	data = dataset.Shuffle(data, 8)

	planned, _, _ := divmax.MemoryBound(divmax.RemoteEdge, divmax.MR2Round, n, k, eps, dim)
	budget := 16 * planned // Θ-constant headroom
	var metrics divmax.MRMetrics
	cfg := divmax.MRConfig{
		Parallelism:      8,
		KPrime:           4 * k,
		LocalMemoryLimit: budget,
		Metrics:          &metrics,
	}
	sol, err := divmax.MapReduceSolve(divmax.RemoteEdge, data, k, cfg, divmax.Euclidean)
	if err != nil {
		log.Fatal(err)
	}
	val, _ := divmax.Evaluate(divmax.RemoteEdge, sol, divmax.Euclidean)
	fmt.Printf("\n2-round run: remote-edge %.4f under budget %d points/reducer\n", val, budget)
	for _, r := range metrics.Rounds() {
		status := "ok"
		if r.LimitViolations > 0 {
			status = fmt.Sprintf("%d violations", r.LimitViolations)
		}
		fmt.Printf("  round %-8s M_L=%-7d budget=%-7d %s\n", r.Name, r.MaxLocalMemory, budget, status)
	}

	// 3. The same run with an unrealistic budget shows the enforcement.
	var tight divmax.MRMetrics
	cfg.LocalMemoryLimit = 100
	cfg.Metrics = &tight
	if _, err := divmax.MapReduceSolve(divmax.RemoteEdge, data, k, cfg, divmax.Euclidean); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a 100-point budget the metrics flag the overflow:\n")
	for _, r := range tight.Rounds() {
		fmt.Printf("  round %-8s M_L=%-7d violations=%d\n", r.Name, r.MaxLocalMemory, r.LimitViolations)
	}
}
