// Quickstart: pick the k most diverse points from a small in-memory
// dataset with the sequential approximation, then do the same through a
// core-set — the pattern that scales to data that does not fit in one
// machine's memory.
package main

import (
	"fmt"
	"math/rand"

	"divmax"
)

func main() {
	// A dataset with three obvious "far" groups and background noise.
	rng := rand.New(rand.NewSource(1))
	var pts []divmax.Vector
	for _, center := range []divmax.Vector{{0, 0}, {100, 0}, {0, 100}} {
		for i := 0; i < 200; i++ {
			pts = append(pts, divmax.Vector{
				center[0] + rng.NormFloat64(),
				center[1] + rng.NormFloat64(),
			})
		}
	}

	const k = 3

	// One call: the best known sequential approximation (α = 2 for
	// remote-edge, Table 1 of the paper).
	sol, val := divmax.MaxDiversity(divmax.RemoteEdge, pts, k, divmax.Euclidean)
	fmt.Printf("remote-edge diversity of %d points: %.2f\n", k, val)
	for _, p := range sol {
		fmt.Printf("  picked (%.1f, %.1f)\n", p[0], p[1])
	}

	// The same through a core-set: distill 600 points into a handful,
	// then solve on the distillate. On big data the distillation runs in
	// a stream or across a cluster; the guarantee degrades only from α
	// to α+ε.
	core := divmax.Coreset(divmax.RemoteEdge, pts, k, 4*k, divmax.Euclidean)
	coreSol, coreVal := divmax.MaxDiversity(divmax.RemoteEdge, core, k, divmax.Euclidean)
	fmt.Printf("core-set: %d points -> %d, diversity %.2f (%.1f%% of direct)\n",
		len(pts), len(core), coreVal, 100*coreVal/val)
	_ = coreSol

	// All six objectives share the same API.
	for _, m := range divmax.Measures {
		_, v := divmax.MaxDiversity(m, pts, k, divmax.Euclidean)
		fmt.Printf("%-20v %10.2f\n", m, v)
	}
}
