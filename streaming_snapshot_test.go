package divmax_test

import (
	"math/rand"
	"testing"

	"divmax"
)

func TestStreamCoresetSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randomVectors(rng, 500, 2)
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		sc := divmax.NewStreamCoreset(m, 4, 12, divmax.Euclidean)
		for _, p := range pts {
			sc.Process(p)
		}
		snap := sc.Snapshot()
		if snap.Processed != int64(len(pts)) {
			t.Errorf("%v: processed %d, want %d", m, snap.Processed, len(pts))
		}
		if snap.Stored != sc.StoredPoints() {
			t.Errorf("%v: stored %d, want %d", m, snap.Stored, sc.StoredPoints())
		}
		if snap.Radius <= 0 {
			t.Errorf("%v: radius %v, want > 0 after %d points", m, snap.Radius, len(pts))
		}
		core := sc.Coreset()
		if len(snap.Points) != len(core) {
			t.Fatalf("%v: snapshot has %d points, Coreset %d", m, len(snap.Points), len(core))
		}
		for i := range core {
			if divmax.Euclidean(snap.Points[i], core[i]) != 0 {
				t.Fatalf("%v: snapshot and Coreset diverge at %d", m, i)
			}
		}
	}
}

func TestSnapshotMergeAcrossShards(t *testing.T) {
	// Composability, the server's foundation: independent StreamCoresets
	// fed disjoint shards of the data, merged with MapReduceSolveCoresets,
	// must land in the same quality neighbourhood as the sequential solver
	// on the whole data (the envelope integration_test.go demands of every
	// pipeline).
	rng := rand.New(rand.NewSource(22))
	pts := clusters(rng, []divmax.Vector{{0, 0}, {800, 0}, {0, 800}, {800, 800}, {400, 400}}, 60, 10)
	k, kprime, shards := 5, 15, 4

	for _, m := range divmax.Measures {
		_, seqVal := divmax.MaxDiversity(m, pts, k, divmax.Euclidean)
		scs := make([]divmax.StreamCoreset[divmax.Vector], shards)
		for i := range scs {
			scs[i] = divmax.NewStreamCoreset(m, k, kprime, divmax.Euclidean)
		}
		for i, p := range pts {
			scs[i%shards].Process(p)
		}
		cores := make([][]divmax.Vector, shards)
		for i, sc := range scs {
			cores[i] = sc.Snapshot().Points
		}
		sol, err := divmax.MapReduceSolveCoresets(m, cores, k, divmax.MRConfig{}, divmax.Euclidean)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(sol) != k {
			t.Fatalf("%v: solution size %d, want %d", m, len(sol), k)
		}
		val, _ := divmax.Evaluate(m, sol, divmax.Euclidean)
		if val < seqVal/2 {
			t.Errorf("%v: merged value %v below half of sequential %v", m, val, seqVal)
		}
	}
}

// TestSnapshotSinceContract pins the incremental-snapshot contract the
// divmaxd delta-patched query cache rests on, for both core-set
// families over random and adversarial (tiny integer grid, duplicate-
// and tie-heavy, restructure-prone) streams:
//
//   - a (0, -1) request is always a full snapshot, identical to
//     Snapshot;
//   - while the generation is unchanged, SnapshotSince returns a pure
//     delta, and the earlier view's points plus every delta since form
//     a superset of the current core-set made only of stream points;
//   - a generation bump yields a full snapshot, after which the chain
//     restarts.
func TestSnapshotSinceContract(t *testing.T) {
	key := func(p divmax.Vector) [2]float64 { return [2]float64{p[0], p[1]} }
	for name, gen := range map[string]func(rng *rand.Rand, i int) divmax.Vector{
		"random": func(rng *rand.Rand, i int) divmax.Vector {
			return divmax.Vector{rng.Float64() * 1000, rng.Float64() * 1000}
		},
		"adversarial-grid": func(rng *rand.Rand, i int) divmax.Vector {
			return divmax.Vector{float64(rng.Intn(7)), float64(rng.Intn(7))}
		},
		"expanding": func(rng *rand.Rand, i int) divmax.Vector {
			scale := float64(int64(1) << (i / 40 % 20))
			return divmax.Vector{scale * rng.Float64(), scale * rng.Float64()}
		},
	} {
		for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
			rng := rand.New(rand.NewSource(int64(len(name))*7 + int64(m)))
			sc := divmax.NewStreamCoreset(m, 3, 5, divmax.Euclidean)
			seen := make(map[[2]float64]bool) // every point ever streamed
			union := make(map[[2]float64]bool)
			prev := sc.SnapshotSince(0, -1)
			if prev.Partial {
				t.Fatalf("%s/%v: (0,-1) request returned a partial snapshot", name, m)
			}
			restructures, deltas := 0, 0
			for round := 0; round < 60; round++ {
				for i := 0; i < 1+rng.Intn(9); i++ {
					p := gen(rng, round*9+i)
					seen[key(p)] = true
					sc.Process(p)
				}
				d := sc.SnapshotSince(prev.Gen, prev.Pos)
				if d.Processed != sc.Snapshot().Processed || d.Stored != sc.StoredPoints() {
					t.Fatalf("%s/%v: delta stats diverge from Snapshot", name, m)
				}
				if !d.Partial {
					restructures++
					if d.Gen == prev.Gen {
						t.Fatalf("%s/%v: full snapshot without a generation bump", name, m)
					}
					full := sc.Snapshot()
					if len(d.Points) != len(full.Points) {
						t.Fatalf("%s/%v: full delta has %d points, Snapshot %d", name, m, len(d.Points), len(full.Points))
					}
					union = make(map[[2]float64]bool)
				} else {
					deltas++
					if d.Gen != prev.Gen {
						t.Fatalf("%s/%v: partial delta across a generation bump", name, m)
					}
					if d.Pos < prev.Pos || len(d.Points) != d.Pos-prev.Pos {
						t.Fatalf("%s/%v: delta of %d points for positions %d→%d", name, m, len(d.Points), prev.Pos, d.Pos)
					}
				}
				for _, p := range d.Points {
					if !seen[key(p)] {
						t.Fatalf("%s/%v: snapshot invented a point %v", name, m, p)
					}
					union[key(p)] = true
				}
				// The accumulated view must contain the whole current
				// core-set: solving over it keeps the core-set guarantee.
				for _, p := range sc.Coreset() {
					if !union[key(p)] {
						t.Fatalf("%s/%v round %d: core-set point %v missing from the accumulated delta view", name, m, round, p)
					}
				}
				prev = d
			}
			if restructures == 0 || deltas == 0 {
				t.Fatalf("%s/%v: schedule exercised %d restructures and %d pure deltas; want both > 0", name, m, restructures, deltas)
			}
		}
	}
}
