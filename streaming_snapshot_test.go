package divmax_test

import (
	"math/rand"
	"testing"

	"divmax"
)

func TestStreamCoresetSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randomVectors(rng, 500, 2)
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		sc := divmax.NewStreamCoreset(m, 4, 12, divmax.Euclidean)
		for _, p := range pts {
			sc.Process(p)
		}
		snap := sc.Snapshot()
		if snap.Processed != int64(len(pts)) {
			t.Errorf("%v: processed %d, want %d", m, snap.Processed, len(pts))
		}
		if snap.Stored != sc.StoredPoints() {
			t.Errorf("%v: stored %d, want %d", m, snap.Stored, sc.StoredPoints())
		}
		if snap.Radius <= 0 {
			t.Errorf("%v: radius %v, want > 0 after %d points", m, snap.Radius, len(pts))
		}
		core := sc.Coreset()
		if len(snap.Points) != len(core) {
			t.Fatalf("%v: snapshot has %d points, Coreset %d", m, len(snap.Points), len(core))
		}
		for i := range core {
			if divmax.Euclidean(snap.Points[i], core[i]) != 0 {
				t.Fatalf("%v: snapshot and Coreset diverge at %d", m, i)
			}
		}
	}
}

func TestSnapshotMergeAcrossShards(t *testing.T) {
	// Composability, the server's foundation: independent StreamCoresets
	// fed disjoint shards of the data, merged with MapReduceSolveCoresets,
	// must land in the same quality neighbourhood as the sequential solver
	// on the whole data (the envelope integration_test.go demands of every
	// pipeline).
	rng := rand.New(rand.NewSource(22))
	pts := clusters(rng, []divmax.Vector{{0, 0}, {800, 0}, {0, 800}, {800, 800}, {400, 400}}, 60, 10)
	k, kprime, shards := 5, 15, 4

	for _, m := range divmax.Measures {
		_, seqVal := divmax.MaxDiversity(m, pts, k, divmax.Euclidean)
		scs := make([]divmax.StreamCoreset[divmax.Vector], shards)
		for i := range scs {
			scs[i] = divmax.NewStreamCoreset(m, k, kprime, divmax.Euclidean)
		}
		for i, p := range pts {
			scs[i%shards].Process(p)
		}
		cores := make([][]divmax.Vector, shards)
		for i, sc := range scs {
			cores[i] = sc.Snapshot().Points
		}
		sol, err := divmax.MapReduceSolveCoresets(m, cores, k, divmax.MRConfig{}, divmax.Euclidean)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(sol) != k {
			t.Fatalf("%v: solution size %d, want %d", m, len(sol), k)
		}
		val, _ := divmax.Evaluate(m, sol, divmax.Euclidean)
		if val < seqVal/2 {
			t.Errorf("%v: merged value %v below half of sequential %v", m, val, seqVal)
		}
	}
}
