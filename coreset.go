package divmax

import (
	"divmax/internal/coreset"
)

// Coreset builds the paper's core-set for measure m on pts: the GMM
// farthest-first kernel of k′ points for remote-edge and remote-cycle
// (Theorem 4), or the GMM-EXT kernel-plus-delegates set of up to k·k′
// points for the other four measures (Theorem 5). A solution computed on
// the core-set by MaxDiversity is within a factor α+ε of the optimum over
// pts, with ε shrinking as k′ grows (ε → 0 as k′ → (c/ε′)^D·k in
// doubling dimension D; in practice k′ a small multiple of k already
// gives ratios near 1, see EXPERIMENTS.md).
//
// Core-sets built this way are composable: the union of core-sets of the
// parts of any partition of the data is a core-set of the whole. That is
// the principle behind MapReduceSolve, and it also lets callers
// parallelize or shard core-set construction themselves.
//
// It panics if k < 1 or kprime < k.
func Coreset[P any](m Measure, pts []P, k, kprime int, d Distance[P]) []P {
	if m.NeedsInjectiveProxy() {
		return coreset.GMMExt(pts, k, kprime, 0, d)
	}
	return coreset.GMM(pts, kprime, 0, d).Points
}

// WeightedPoint is a point of a generalized core-set together with its
// multiplicity (the number of nearby delegates it stands for).
type WeightedPoint[P any] = coreset.Weighted[P]

// GeneralizedCoreset is the compact core-set encoding of the paper's
// Section 6: kernel points with multiplicities instead of materialized
// delegates. It is the exchange format of the memory-reduced algorithms
// (StreamingSolveTwoPass, MapReduceSolve3).
type GeneralizedCoreset[P any] = coreset.Generalized[P]

// GeneralizedCoresetOf builds the GMM-GEN generalized core-set for the
// four delegate-based measures (remote-clique, -star, -bipartition,
// -tree): s(T) = min(k′,n) pairs with expanded size ≤ k·k′ (Lemma 8).
// It panics if k < 1 or kprime < k.
func GeneralizedCoresetOf[P any](pts []P, k, kprime int, d Distance[P]) GeneralizedCoreset[P] {
	return coreset.GMMGen(pts, k, kprime, 0, d)
}

// InstantiateCoreset realizes a generalized core-set as concrete points:
// for each (p, m_p) pair it selects m_p distinct points of source within
// distance delta of p, disjoint across pairs (a δ-instantiation, Lemma
// 7). It returns an error when delta is too small to fill every
// multiplicity.
func InstantiateCoreset[P any](g GeneralizedCoreset[P], source []P, delta float64, d Distance[P]) ([]P, error) {
	return coreset.Instantiate(g, source, delta, d)
}

// KernelRadius returns r_T for the GMM kernel of size kprime on pts: the
// maximum distance from any input point to the kernel. It is the δ to
// use when instantiating a GeneralizedCoresetOf the same pts.
func KernelRadius[P any](pts []P, kprime int, d Distance[P]) float64 {
	return coreset.GMM(pts, kprime, 0, d).Radius
}

// CoresetParallel is Coreset with the farthest-first traversal's O(n)
// inner loop sharded across worker goroutines (0 = NumCPU). It selects
// exactly the same points as Coreset; use it for single-machine core-set
// construction over large in-memory datasets. (The MapReduce drivers
// already parallelize across partitions and use the sequential
// traversal per reducer, as the paper's model prescribes.)
func CoresetParallel[P any](m Measure, pts []P, k, kprime, workers int, d Distance[P]) []P {
	if m.NeedsInjectiveProxy() {
		// Delegate selection reuses the parallel kernel's assignment.
		res := coreset.GMMParallel(pts, kprime, 0, workers, d)
		if len(res.Points) == 0 {
			return nil
		}
		out := make([]P, 0, len(res.Points)*k)
		out = append(out, res.Points...)
		taken := make([]int, len(res.Points))
		for i, p := range pts {
			c := res.Assign[i]
			if i == res.Indices[c] {
				continue
			}
			if taken[c] < k-1 {
				taken[c]++
				out = append(out, p)
			}
		}
		return out
	}
	return coreset.GMMParallel(pts, kprime, 0, workers, d).Points
}
