package divmax_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"divmax"
)

// Cross-algorithm integration tests: every large-scale pipeline must land
// in the same quality neighbourhood as the in-memory sequential solver on
// the same data, for every measure it supports.

func TestAllPipelinesConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	rng := rand.New(rand.NewSource(99))
	pts := clusters(rng, []divmax.Vector{{0, 0}, {800, 0}, {0, 800}, {800, 800}, {400, 400}}, 60, 10)
	k, kprime := 5, 15

	for _, m := range divmax.Measures {
		_, seqVal := divmax.MaxDiversity(m, pts, k, divmax.Euclidean)
		if seqVal <= 0 {
			t.Fatalf("%v: sequential value %v", m, seqVal)
		}
		check := func(name string, sol []divmax.Vector, err error) {
			t.Helper()
			if err != nil {
				t.Errorf("%v/%s: %v", m, name, err)
				return
			}
			if len(sol) != k {
				t.Errorf("%v/%s: size %d, want %d", m, name, len(sol), k)
				return
			}
			val, _ := divmax.Evaluate(m, sol, divmax.Euclidean)
			// Every pipeline shares the sequential α; core-set loss on
			// well-separated clusters is small. Demand half the
			// sequential quality as the integration floor.
			if val < seqVal/2 {
				t.Errorf("%v/%s: value %v below half of sequential %v", m, name, val, seqVal)
			}
		}

		check("streaming-1pass", divmax.StreamingSolve(m, divmax.SliceStream(pts), k, kprime, divmax.Euclidean), nil)

		sol, err := divmax.MapReduceSolve(m, pts, k, divmax.MRConfig{Parallelism: 4, KPrime: kprime}, divmax.Euclidean)
		check("mapreduce-2round", sol, err)

		// Theorem 8 needs the budget to exceed twice the per-partition
		// core-set size (k′ plain, k′·k with delegates).
		budget := 120
		if m.NeedsInjectiveProxy() {
			budget = 2*kprime*k + 10
		}
		sol, _, err = divmax.MapReduceSolveRecursive(m, pts, k, budget, divmax.MRConfig{Parallelism: 1, KPrime: kprime}, divmax.Euclidean)
		check("mapreduce-recursive", sol, err)

		if m.NeedsInjectiveProxy() {
			sol, err = divmax.StreamingSolveTwoPass(m, divmax.SliceStream(pts), k, kprime, divmax.Euclidean)
			check("streaming-2pass", sol, err)

			sol, err = divmax.MapReduceSolve3(m, pts, k, divmax.MRConfig{Parallelism: 4, KPrime: kprime}, divmax.Euclidean)
			check("mapreduce-3round", sol, err)

			cfg := divmax.MRConfig{
				Parallelism: 4, KPrime: kprime,
				Partitioning: divmax.PartitionRandom, Seed: 7,
				DelegateCap: divmax.RandomizedDelegateCap(len(pts), k, 4),
			}
			sol, err = divmax.MapReduceSolve(m, pts, k, cfg, divmax.Euclidean)
			check("mapreduce-randomized", sol, err)
		}
	}
}

func TestCoresetParallelMatchesCoreset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomVectors(rng, 6000, 3)
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		seq := divmax.Coreset(m, pts, 8, 32, divmax.Euclidean)
		par := divmax.CoresetParallel(m, pts, 8, 32, 4, divmax.Euclidean)
		if len(seq) != len(par) {
			t.Fatalf("%v: sizes differ: %d vs %d", m, len(seq), len(par))
		}
		for i := range seq {
			if divmax.Euclidean(seq[i], par[i]) != 0 {
				t.Fatalf("%v: core-sets diverge at %d", m, i)
			}
		}
	}
}

func TestDuplicateHeavyStreams(t *testing.T) {
	// Failure injection: streams dominated by duplicates must not break
	// any pipeline (thresholds would be zero if duplicates weren't
	// folded).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomVectors(rng, 10, 2)
		var pts []divmax.Vector
		for i := 0; i < 400; i++ {
			pts = append(pts, base[rng.Intn(len(base))])
		}
		k := 3
		sol := divmax.StreamingSolve(divmax.RemoteEdge, divmax.SliceStream(pts), k, 6, divmax.Euclidean)
		if len(sol) < k {
			return false
		}
		mrSol, err := divmax.MapReduceSolve(divmax.RemoteEdge, pts, k, divmax.MRConfig{Parallelism: 4, KPrime: 6}, divmax.Euclidean)
		return err == nil && len(mrSol) == k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSingleClusterDegeneracy(t *testing.T) {
	// All points in one tiny ball: every algorithm must still return k
	// points with near-zero but finite diversity.
	rng := rand.New(rand.NewSource(6))
	var pts []divmax.Vector
	for i := 0; i < 300; i++ {
		pts = append(pts, divmax.Vector{rng.Float64() * 1e-6, rng.Float64() * 1e-6})
	}
	for _, m := range divmax.Measures {
		sol, val := divmax.MaxDiversity(m, pts, 4, divmax.Euclidean)
		if len(sol) != 4 || val < 0 {
			t.Errorf("%v: (%d points, %v)", m, len(sol), val)
		}
	}
	sol := divmax.StreamingSolve(divmax.RemoteClique, divmax.SliceStream(pts), 4, 8, divmax.Euclidean)
	if len(sol) != 4 {
		t.Errorf("streaming on degenerate cluster: %d points", len(sol))
	}
}

func TestKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomVectors(rng, 6, 2)
	for _, m := range divmax.Measures {
		sol, _ := divmax.MaxDiversity(m, pts, 6, divmax.Euclidean)
		if len(sol) != 6 {
			t.Errorf("%v: k=n returned %d points", m, len(sol))
		}
	}
}
