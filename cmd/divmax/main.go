// Command divmax solves diversity maximization over a dataset file.
//
// Usage:
//
//	divmax -input points.csv -k 10 [flags]
//
// Input formats: CSV (one point per row, coordinates as columns,
// Euclidean distance) or musiXmatch-style sparse text ("term:count ..."
// per line, cosine distance) selected by -format. Modes: seq (in-memory
// sequential approximation), stream (1-pass streaming), stream2 (2-pass
// generalized, delegate-based measures only), mr (2-round MapReduce),
// mr3 (3-round generalized MapReduce).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"divmax"
)

func main() {
	var (
		input   = flag.String("input", "", "dataset file (required)")
		format  = flag.String("format", "csv", "input format: csv (Euclidean) or sparse (cosine)")
		measure = flag.String("measure", "remote-edge", "diversity measure (remote-edge, remote-clique, remote-star, remote-bipartition, remote-tree, remote-cycle)")
		k       = flag.Int("k", 10, "solution size")
		kprime  = flag.Int("kprime", 0, "core-set kernel size (default 4k)")
		mode    = flag.String("mode", "seq", "algorithm: seq, stream, stream2, mr, mr3")
		ell     = flag.Int("parallelism", 4, "MapReduce parallelism (mr/mr3)")
		quiet   = flag.Bool("quiet", false, "print only the diversity value")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "divmax: -input is required")
		flag.PrintDefaults()
		os.Exit(2)
	}
	m, err := divmax.ParseMeasure(*measure)
	fatalIf(err)
	if *kprime == 0 {
		*kprime = 4 * *k
	}

	f, err := os.Open(*input)
	fatalIf(err)
	defer f.Close()

	start := time.Now()
	switch *format {
	case "csv":
		pts, err := readCSV(f)
		fatalIf(err)
		sol, val := solve(m, pts, *k, *kprime, *mode, *ell, divmax.Euclidean)
		report(*quiet, m, val, time.Since(start), len(pts), stringers(sol))
	case "sparse":
		docs, err := readSparse(f)
		fatalIf(err)
		sol, val := solve(m, docs, *k, *kprime, *mode, *ell, divmax.CosineDistance)
		report(*quiet, m, val, time.Since(start), len(docs), stringers(sol))
	default:
		fmt.Fprintf(os.Stderr, "divmax: unknown format %q\n", *format)
		os.Exit(2)
	}
}

func solve[P any](m divmax.Measure, pts []P, k, kprime int, mode string, ell int, d divmax.Distance[P]) ([]P, float64) {
	var sol []P
	var err error
	switch mode {
	case "seq":
		sol, _ = divmax.MaxDiversity(m, pts, k, d)
	case "stream":
		sol = divmax.StreamingSolve(m, divmax.SliceStream(pts), k, kprime, d)
	case "stream2":
		sol, err = divmax.StreamingSolveTwoPass(m, divmax.SliceStream(pts), k, kprime, d)
	case "mr":
		sol, err = divmax.MapReduceSolve(m, pts, k, divmax.MRConfig{Parallelism: ell, KPrime: kprime}, d)
	case "mr3":
		sol, err = divmax.MapReduceSolve3(m, pts, k, divmax.MRConfig{Parallelism: ell, KPrime: kprime}, d)
	default:
		fmt.Fprintf(os.Stderr, "divmax: unknown mode %q\n", mode)
		os.Exit(2)
	}
	fatalIf(err)
	val, _ := divmax.Evaluate(m, sol, d)
	return sol, val
}

func report(quiet bool, m divmax.Measure, val float64, elapsed time.Duration, n int, sol []string) {
	if quiet {
		fmt.Printf("%g\n", val)
		return
	}
	fmt.Printf("points\t%d\nmeasure\t%v\ndiversity\t%g\ntime\t%v\n", n, m, val, elapsed)
	for i, s := range sol {
		fmt.Printf("solution[%d]\t%s\n", i, s)
	}
}

func stringers[P fmt.Stringer](sol []P) []string {
	out := make([]string, len(sol))
	for i, p := range sol {
		out[i] = p.String()
	}
	return out
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "divmax:", err)
		os.Exit(1)
	}
}
