package main

import (
	"io"

	"divmax"
	"divmax/internal/dataset"
)

func readCSV(r io.Reader) ([]divmax.Vector, error) {
	pts, err := dataset.ReadVectorsCSV(r)
	if err != nil {
		return nil, err
	}
	if err := dataset.ValidateVectors(pts); err != nil {
		return nil, err
	}
	return pts, nil
}

func readSparse(r io.Reader) ([]divmax.SparseVector, error) {
	docs, err := dataset.ReadSparse(r)
	if err != nil {
		return nil, err
	}
	if err := dataset.ValidateSparse(docs); err != nil {
		return nil, err
	}
	return docs, nil
}
