// Command divmaxd is the resident sharded diversity service: it ingests
// points continuously over HTTP, maintains composable streaming
// core-sets on N independent shards, and answers diversity-maximization
// queries for any of the paper's six measures by merging the shards on
// demand (see internal/server).
//
// Usage:
//
//	divmaxd -addr :8377 -shards 4 -maxk 16
//
// Quickstart (endpoints live under /v1; the unversioned paths are
// aliases kept for older clients):
//
//	curl -X POST localhost:8377/v1/ingest -d '{"points": [[0,0], [3,4], [10,0]]}'
//	curl -X POST localhost:8377/v1/delete -d '{"points": [[3,4]]}'
//	curl 'localhost:8377/v1/query?k=2&measure=remote-edge'
//	curl localhost:8377/v1/stats
//
// On SIGINT/SIGTERM the daemon stops accepting requests, drains every
// buffered batch into the shards, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"divmax/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8377", "listen address")
		shards  = flag.Int("shards", 0, "number of core-set shards (0 = GOMAXPROCS)")
		maxk    = flag.Int("maxk", 16, "largest solution size queries may request")
		kprime  = flag.Int("kprime", 0, "per-shard kernel size k' (0 = 4*maxk)")
		buffer  = flag.Int("buffer", 64, "per-shard ingest queue capacity in batches")
		workers = flag.Int("solve-workers", 0, "round-2 solver parallelism: matrix fill + sharded scans (0 = GOMAXPROCS)")
		memo    = flag.Int("solution-memo", 0, "per-state (measure, k) answer memo capacity, LRU-evicted (0 = 128)")
		budget  = flag.Float64("delta-budget", 0, "max core-set delta, as a fraction of the cached merged union, a stale query may patch incrementally instead of fully rebuilding (0 = default 0.25; negative disables patching)")
		spares  = flag.Int("spares", 0, "absorbed points retained per center as promotion candidates for /delete evictions, edge/cycle family only (0 = default 2; negative retains none)")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		Shards: *shards, MaxK: *maxk, KPrime: *kprime, Buffer: *buffer,
		SolveWorkers: *workers, SolutionMemo: *memo, DeltaBudget: *budget,
		Spares: *spares,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "divmaxd:", err)
		os.Exit(2)
	}
	cfg := srv.Config()
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Guard the long-running daemon against stalled clients pinning
		// connections; no ReadTimeout so large ingest bodies may stream.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("divmaxd listening on %s (shards=%d maxk=%d kprime=%d)", *addr, cfg.Shards, cfg.MaxK, cfg.KPrime)

	select {
	case <-ctx.Done():
		log.Print("divmaxd: shutting down, draining shards")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("divmaxd: shutdown: %v", err)
		}
		srv.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "divmaxd:", err)
			os.Exit(1)
		}
	}
}
