// Command divmaxd is the resident sharded diversity service: it ingests
// points continuously over HTTP, maintains composable streaming
// core-sets on N independent shards, and answers diversity-maximization
// queries for any of the paper's six measures by merging the shards on
// demand (see internal/server).
//
// Usage:
//
//	divmaxd -addr :8377 -shards 4 -maxk 16
//
// Quickstart (endpoints live under /v1; the unversioned paths are
// aliases kept for older clients):
//
//	curl -X POST localhost:8377/v1/ingest -d '{"points": [[0,0], [3,4], [10,0]]}'
//	curl -X POST localhost:8377/v1/delete -d '{"points": [[3,4]]}'
//	curl 'localhost:8377/v1/query?k=2&measure=remote-edge'
//	curl localhost:8377/v1/stats
//
// On SIGINT/SIGTERM the daemon stops accepting requests, drains every
// buffered batch into the shards, and exits.
//
// With -coordinator the same binary fronts a multi-node cluster
// instead: it deals /v1/ingest and /v1/delete across the given workers
// (each a plain divmaxd) by consistent hashing, answers /v1/query by
// merging the workers' core-set snapshots, health-checks them, and
// keeps answering — marked "degraded": true — while at least -quorum
// workers respond (see internal/cluster):
//
//	divmaxd -addr :8378 -coordinator \
//	  -workers http://w0:8377,http://w1:8377,http://w2:8377 \
//	  -quorum 2 -probe-interval 2s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"divmax/internal/cluster"
	"divmax/internal/server"
	"divmax/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", ":8377", "listen address")
		shards   = flag.Int("shards", 0, "number of core-set shards (0 = GOMAXPROCS)")
		maxk     = flag.Int("maxk", 16, "largest solution size queries may request")
		kprime   = flag.Int("kprime", 0, "per-shard kernel size k' (0 = 4*maxk)")
		buffer   = flag.Int("buffer", 64, "per-shard ingest queue capacity in batches")
		workers  = flag.Int("solve-workers", 0, "round-2 solver parallelism: matrix fill + sharded scans (0 = GOMAXPROCS)")
		memo     = flag.Int("solution-memo", 0, "per-state (measure, k) answer memo capacity, LRU-evicted (0 = 128)")
		budget   = flag.Float64("delta-budget", 0, "max core-set delta, as a fraction of the cached merged union, a stale query may patch incrementally instead of fully rebuilding (0 = default 0.25; negative disables patching)")
		spares   = flag.Int("spares", 0, "absorbed points retained per center as promotion candidates for /delete evictions, edge/cycle family only (0 = default 2; negative retains none)")
		queryDL  = flag.Duration("query-deadline", 0, "server-side deadline for /query: fan-out, merge, and solve waits become 504 deadline_exceeded past it (0 = default 30s; negative disables)")
		ingestDL = flag.Duration("ingest-deadline", 0, "server-side deadline for /ingest and /delete (0 = default 30s; negative disables)")
		shedWait = flag.Duration("shed-after", 0, "how long a request may wait on a full shard queue or the inflight-query limiter before being shed with 429 (0 = default 1s; negative disables shedding, restoring unbounded blocking backpressure)")
		inflight = flag.Int("max-inflight-queries", 0, "cap on concurrently solving queries; excess queries wait shed-after then 429 (0 = default 4*GOMAXPROCS, min 16; negative uncaps)")
		restarts = flag.Int("restart-budget", 0, "supervisor restarts (fresh core-sets) a shard gets after panics before failing permanently (0 = default 3; negative fails on the first panic)")
		degraded = flag.Bool("degraded-queries", false, "answer queries from surviving shards when some have failed or timed out, marked \"degraded\": true (default: fail closed with 503/504)")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests and buffered batches on shutdown")
		dataDir  = flag.String("data-dir", "", "directory for per-shard write-ahead logs and core-set checkpoints; restarts and crashes then lose nothing (empty = fully in-memory)")
		fsyncStr = flag.String("fsync", "interval", "WAL fsync policy with -data-dir: always (fsync per record), interval (batched, default), off (OS-paced); process crashes lose nothing under any policy, only the power-cut window differs")
		ckptEach = flag.Duration("checkpoint-every", 0, "how often shards fold their WAL tail into a core-set checkpoint, bounding recovery replay and log growth (0 = default 15s; negative disables the ticker)")
		projDim  = flag.Int("project-dim", 0, "opt-in JL projection: ingest high-dimensional points projected to this many dimensions, solve in the reduced space, report true-space solutions and values (0 = off; incompatible with -data-dir and -coordinator)")

		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator over -workers instead of serving shards locally")
		workerURLs  = flag.String("workers", "", "comma-separated worker base URLs for -coordinator, e.g. http://w0:8377,http://w1:8377")
		quorum      = flag.Int("quorum", 0, "minimum responsive workers a query needs; fewer fails closed with 503, at least this many but not all answers \"degraded\": true (0 = majority)")
		probeEvery  = flag.Duration("probe-interval", 0, "how often the coordinator probes each worker's /v1/readyz; repeated failures evict a worker until it answers again (0 = default 2s; negative disables probing)")
		probeTO     = flag.Duration("probe-timeout", 0, "deadline for one health probe (0 = default 1s, capped at the probe interval)")
		failAfter   = flag.Int("fail-after", 0, "consecutive failed probes that evict a worker (0 = default 3)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "delay before a query's snapshot fetch is hedged with a second attempt (0 = adaptive, twice the p95 of recent snapshot latencies; negative disables hedging)")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per worker on the consistent-hash ingest ring (0 = default 64)")
		retryMax    = flag.Int("worker-retries", 0, "retries per worker request on connection errors, 429, and 5xx, with capped exponential backoff honoring Retry-After as a floor (0 = default 3; negative disables)")
		attemptTO   = flag.Duration("attempt-timeout", 0, "per-attempt deadline on worker requests, so one blackholed connection costs one attempt, not the request deadline (0 = default 10s; negative disables)")
	)
	flag.Parse()

	if *coordinator {
		if *projDim > 0 {
			fmt.Fprintln(os.Stderr, "divmaxd: -project-dim is incompatible with -coordinator (workers would each need the projected→original map)")
			os.Exit(2)
		}
		runCoordinator(coordinatorFlags{
			addr: *addr, workers: *workerURLs, maxK: *maxk,
			solveWorkers: *workers, solutionMemo: *memo, deltaBudget: *budget,
			queryDL: *queryDL, ingestDL: *ingestDL, quorum: *quorum,
			probeInterval: *probeEvery, probeTimeout: *probeTO, failAfter: *failAfter,
			hedgeAfter: *hedgeAfter, vnodes: *vnodes,
			retries: *retryMax, attemptTimeout: *attemptTO, drainTimeout: *drainTO,
		})
		return
	}
	if *workerURLs != "" {
		fmt.Fprintln(os.Stderr, "divmaxd: -workers requires -coordinator")
		os.Exit(2)
	}

	fsync, err := wal.ParseSyncPolicy(*fsyncStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divmaxd:", err)
		os.Exit(2)
	}
	srv, err := server.New(server.Config{
		Shards: *shards, MaxK: *maxk, KPrime: *kprime, Buffer: *buffer,
		SolveWorkers: *workers, SolutionMemo: *memo, DeltaBudget: *budget,
		Spares:        *spares,
		QueryDeadline: *queryDL, IngestDeadline: *ingestDL,
		ShedWait: *shedWait, MaxInflight: *inflight,
		RestartBudget: *restarts, DegradedQueries: *degraded,
		DataDir: *dataDir, Fsync: fsync, CheckpointEvery: *ckptEach,
		ProjectDim: *projDim,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "divmaxd:", err)
		os.Exit(2)
	}
	cfg := srv.Config()
	// WriteTimeout must outlast the query deadline, or the connection
	// dies before the 504 the deadline is meant to produce; give the
	// response twice the deadline, with a floor for deadline-free runs.
	writeTimeout := 60 * time.Second
	if d := 2 * cfg.QueryDeadline; d > writeTimeout {
		writeTimeout = d
	}
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Guard the long-running daemon against stalled clients pinning
		// connections; no ReadTimeout so large ingest bodies may stream.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		WriteTimeout:      writeTimeout,
		MaxHeaderBytes:    1 << 20,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("divmaxd listening on %s (shards=%d maxk=%d kprime=%d)", *addr, cfg.Shards, cfg.MaxK, cfg.KPrime)

	select {
	case <-ctx.Done():
		log.Print("divmaxd: shutting down, draining shards")
		deadline := time.Now().Add(*drainTO)
		shutdownCtx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				log.Printf("divmaxd: drain cut short after %v: in-flight requests were dropped", *drainTO)
			} else {
				log.Printf("divmaxd: shutdown: %v", err)
			}
		}
		// Spend whatever drain budget remains (floor 1s) on the shard
		// drain — which, with -data-dir, includes flushing each WAL and
		// writing the final checkpoints.
		remaining := max(time.Until(deadline), time.Second)
		if !srv.CloseTimeout(remaining) {
			log.Print("divmaxd: drain deadline cut the final wal checkpoint short; next start will replay the log tail")
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "divmaxd:", err)
			os.Exit(1)
		}
	}
}

type coordinatorFlags struct {
	addr, workers                string
	maxK, solveWorkers           int
	solutionMemo                 int
	deltaBudget                  float64
	queryDL, ingestDL            time.Duration
	quorum, failAfter, vnodes    int
	probeInterval, probeTimeout  time.Duration
	hedgeAfter                   time.Duration
	retries                      int
	attemptTimeout, drainTimeout time.Duration
}

func runCoordinator(f coordinatorFlags) {
	var urls []string
	for _, u := range strings.Split(f.workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "divmaxd: -coordinator requires -workers url,url,...")
		os.Exit(2)
	}
	co, err := cluster.New(cluster.Config{
		Workers: urls, MaxK: f.maxK,
		SolveWorkers: f.solveWorkers, SolutionMemo: f.solutionMemo,
		DeltaBudget: f.deltaBudget, Quorum: f.quorum,
		QueryDeadline: f.queryDL, IngestDeadline: f.ingestDL,
		ProbeInterval: f.probeInterval, ProbeTimeout: f.probeTimeout,
		FailAfter: f.failAfter, HedgeAfter: f.hedgeAfter, VNodes: f.vnodes,
		Client: cluster.ClientConfig{
			MaxRetries:     f.retries,
			AttemptTimeout: f.attemptTimeout,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "divmaxd:", err)
		os.Exit(2)
	}
	ccfg := co.Config()
	writeTimeout := 60 * time.Second
	if d := 2 * ccfg.QueryDeadline; d > writeTimeout {
		writeTimeout = d
	}
	hs := &http.Server{
		Addr:              f.addr,
		Handler:           co.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		WriteTimeout:      writeTimeout,
		MaxHeaderBytes:    1 << 20,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("divmaxd coordinator listening on %s (workers=%d quorum=%d probe-interval=%v)",
		f.addr, len(urls), ccfg.Quorum, ccfg.ProbeInterval)

	select {
	case <-ctx.Done():
		log.Print("divmaxd: coordinator shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), f.drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("divmaxd: shutdown: %v", err)
		}
		co.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "divmaxd:", err)
			os.Exit(1)
		}
	}
}
