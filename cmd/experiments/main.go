// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 7) at laptop scale. Usage:
//
//	experiments [flags] fig1|fig2|fig3|fig4|table4|fig5|adversarial|all
//
// Sizes default far below the paper's cluster runs (10⁸–1.6×10⁹ points);
// raise -n (and -base-n for fig5) to approach them. Results print as
// aligned text tables with the same rows/series as the paper's plots.
package main

import (
	"flag"
	"fmt"
	"os"

	"divmax/internal/experiments"
)

func main() {
	var (
		n     = flag.Int("n", 50000, "dataset size for fig1-fig4, table4, adversarial")
		runs  = flag.Int("runs", 3, "runs averaged per configuration (paper: >= 10)")
		seed  = flag.Int64("seed", 20170101, "base random seed")
		k     = flag.Int("k", 64, "solution size for fig4/adversarial (paper: 128)")
		baseN = flag.Int("base-n", 100000, "smallest dataset size for fig5 (paper: 1e8)")
		steps = flag.Int("steps", 3, "fig5 size doublings (paper: 5)")
		agg   = flag.Int("s", 1024, "fig5 aggregate core-set size s = ℓ·k' (paper: 2048)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] fig1|fig2|fig3|fig4|table4|fig5|adversarial|measures|all")
		flag.PrintDefaults()
		os.Exit(2)
	}
	scale := experiments.Scale{N: *n, Runs: *runs, Seed: *seed}
	which := flag.Arg(0)
	run := func(name string) {
		switch name {
		case "fig1":
			grid, err := experiments.Fig1(scale, []int{8, 32, 128})
			check(err)
			grid.Print(os.Stdout)
		case "fig2":
			grid, err := experiments.Fig2(scale, []int{8, 32, 128})
			check(err)
			grid.Print(os.Stdout)
		case "fig3":
			res, err := experiments.Fig3(scale, []int{8, 32, 128})
			check(err)
			res.Print(os.Stdout)
			syn, err := experiments.Fig3Synthetic(scale, []int{8, 32, 128})
			check(err)
			syn.Print(os.Stdout)
		case "fig4":
			res, err := experiments.Fig4(scale, *k)
			check(err)
			res.Print(os.Stdout)
		case "table4":
			res, err := experiments.Table4(experiments.Table4Config{
				N: *n, Ks: []int{4, 6, 8}, Reducers: 16, CPPUKPrime: 128,
				RefRuns: *runs, Seed: *seed,
			})
			check(err)
			res.Print(os.Stdout)
		case "fig5":
			res, err := experiments.Fig5(experiments.Fig5Config{
				BaseN: *baseN, SizeSteps: *steps,
				Processors: []int{1, 2, 4, 8, 16},
				K:          *k, AggregateSize: *agg, Seed: *seed,
			})
			check(err)
			res.Print(os.Stdout)
		case "adversarial":
			random, adv, err := experiments.Adversarial(scale, *k)
			check(err)
			random.Print(os.Stdout)
			adv.Print(os.Stdout)
		case "measures":
			res, err := experiments.MeasureSweep(scale, 8, 32)
			check(err)
			res.Print(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}
	if which == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "table4", "fig5", "adversarial", "measures"} {
			run(name)
		}
		return
	}
	run(which)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
