// Command genpoints generates the paper's benchmark datasets.
//
// Usage:
//
//	genpoints -kind sphere -n 100000 -k 128 -dim 3 > points.csv
//	genpoints -kind lyrics -n 50000 > songs.txt
//
// sphere emits CSV vectors (k points on the unit sphere surface, the
// rest uniform in the radius-0.8 ball — the paper's synthetic
// distribution); lyrics emits musiXmatch-style sparse documents.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"divmax/internal/dataset"
)

func main() {
	var (
		kind = flag.String("kind", "sphere", "dataset kind: sphere or lyrics")
		n    = flag.Int("n", 100000, "number of points")
		k    = flag.Int("k", 128, "planted far points (sphere)")
		dim  = flag.Int("dim", 3, "dimension (sphere)")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatalIf(err)
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	switch *kind {
	case "sphere":
		pts, err := dataset.Sphere(dataset.SphereConfig{N: *n, K: *k, Dim: *dim, Seed: *seed})
		fatalIf(err)
		pts = dataset.Shuffle(pts, *seed+1)
		fatalIf(dataset.WriteVectorsCSV(bw, pts))
	case "lyrics":
		docs, err := dataset.Lyrics(dataset.LyricsConfig{N: *n, Seed: *seed})
		fatalIf(err)
		fatalIf(dataset.WriteSparse(bw, docs))
	default:
		fmt.Fprintf(os.Stderr, "genpoints: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "genpoints:", err)
		os.Exit(1)
	}
}
