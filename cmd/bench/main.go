// Command bench runs the repository's performance-trajectory benchmarks
// and writes the results as JSON (BENCH_PR2.json in the repo root, via
// `make bench-json`), so successive PRs have a committed baseline to
// compare against.
//
// Three suites cover the layers the flat-buffer distance engine
// touches, each over n ∈ {10k, 100k} points and d ∈ {2, 8, 32}
// dimensions:
//
//   - gmm: one farthest-first core-set construction (k′ = 64), fast
//     path versus the pre-PR generic path. The generic baseline runs
//     GMM through a wrapper distance implementing the pre-PR Euclidean
//     (plain in-order sum + sqrt per pair, indirect call, scattered
//     rows), which the fast-path dispatcher deliberately does not
//     recognize.
//   - smm_ingest: streaming SMM core-set ingestion (k = 16, k′ = 64),
//     batched fast path versus the same pre-PR generic baseline.
//   - divmaxd: end-to-end service throughput over HTTP — JSON ingest
//     into sharded streaming core-sets, then merge+solve queries.
//
// Every measurement interleaves the contending paths rep by rep and
// reports the per-path minimum, so slow-neighbour noise on shared
// machines cancels instead of biasing one side.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"divmax/internal/coreset"
	"divmax/internal/metric"
	"divmax/internal/server"
	"divmax/internal/streamalg"
)

// prePREuclidean reproduces the Euclidean distance exactly as it was
// before the flat-buffer engine landed: a single in-order accumulator
// and a square root on every call. Being a distinct function, it is
// never recognized by the fast-path dispatcher, so driving an algorithm
// with it measures the pre-PR generic path.
func prePREuclidean(a, b metric.Vector) float64 {
	var sum float64
	for i := range a {
		diff := a[i] - b[i]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

type gmmCase struct {
	N         int     `json:"n"`
	Dim       int     `json:"dim"`
	KPrime    int     `json:"kprime"`
	FastMS    float64 `json:"fast_ms"`
	GenericMS float64 `json:"generic_ms"`
	Speedup   float64 `json:"speedup"`
	FastPtsS  float64 `json:"fast_points_per_sec"`
}

type smmCase struct {
	N         int     `json:"n"`
	Dim       int     `json:"dim"`
	K         int     `json:"k"`
	KPrime    int     `json:"kprime"`
	FastMS    float64 `json:"fast_ms"`
	GenericMS float64 `json:"generic_ms"`
	Speedup   float64 `json:"speedup"`
	FastPtsS  float64 `json:"fast_points_per_sec"`
}

type serverCase struct {
	N            int     `json:"n"`
	Dim          int     `json:"dim"`
	Shards       int     `json:"shards"`
	Batch        int     `json:"batch"`
	IngestMS     float64 `json:"ingest_ms"`
	IngestPtsS   float64 `json:"ingest_points_per_sec"`
	QueryEdgeMS  float64 `json:"query_ms_remote_edge"`
	QueryCliqMS  float64 `json:"query_ms_remote_clique"`
	CoresetAfter int     `json:"coreset_size_remote_edge"`
}

type report struct {
	PR      int          `json:"pr"`
	Date    string       `json:"date"`
	Go      string       `json:"go"`
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	CPUs    int          `json:"cpus"`
	Reps    int          `json:"reps"`
	GMMReps int          `json:"gmm_reps"` // the cheap GMM cells run 3× the base reps
	GMM     []gmmCase    `json:"gmm"`
	SMM     []smmCase    `json:"smm_ingest"`
	Divmaxd []serverCase `json:"divmaxd"`
}

func randomVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		pts[i] = v
	}
	return pts
}

// minTime runs fn reps times and returns the fastest wall time.
func minTime(reps int, fn func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		if el := time.Since(start); el < best {
			best = el
		}
	}
	return best
}

// minTime2 interleaves two contenders rep by rep, alternating which
// goes first, so machine-load drift hits both symmetrically; it returns
// each one's minimum.
func minTime2(reps int, a, b func()) (time.Duration, time.Duration) {
	bestA := time.Duration(math.MaxInt64)
	bestB := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		first, second := a, b
		if r%2 == 1 {
			first, second = b, a
		}
		t0 := time.Now()
		first()
		t1 := time.Now()
		second()
		t2 := time.Now()
		elA, elB := t1.Sub(t0), t2.Sub(t1)
		if r%2 == 1 {
			elA, elB = elB, elA
		}
		if elA < bestA {
			bestA = elA
		}
		if elB < bestB {
			bestB = elB
		}
	}
	return bestA, bestB
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func main() {
	out := flag.String("out", "BENCH_PR2.json", "output JSON path")
	reps := flag.Int("reps", 5, "repetitions per measurement (minimum is reported)")
	flag.Parse()

	sizes := []int{10000, 100000}
	dims := []int{2, 8, 32}
	rep := report{
		PR:      2,
		Date:    time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Reps:    *reps,
		GMMReps: 3 * *reps,
	}
	generic := metric.Distance[metric.Vector](prePREuclidean)

	// Suite 1: GMM construction, fast vs pre-PR generic.
	const kprime = 64
	for _, n := range sizes {
		for _, dim := range dims {
			rng := rand.New(rand.NewSource(int64(n + dim)))
			pts := randomVectors(rng, n, dim)
			fastRes := coreset.GMM(pts, kprime, 0, metric.Euclidean)
			genRes := coreset.GMM(pts, kprime, 0, generic)
			for i := range fastRes.Indices {
				if fastRes.Indices[i] != genRes.Indices[i] {
					fmt.Fprintf(os.Stderr, "bench: fast/generic GMM selections diverge at n=%d d=%d\n", n, dim)
					os.Exit(1)
				}
			}
			// The GMM cells are cheap relative to the rest of the run;
			// triple the reps so the minimum has a fair shot at a quiet
			// scheduling window on busy machines.
			fast, gen := minTime2(3**reps,
				func() { coreset.GMM(pts, kprime, 0, metric.Euclidean) },
				func() { coreset.GMM(pts, kprime, 0, generic) })
			rep.GMM = append(rep.GMM, gmmCase{
				N: n, Dim: dim, KPrime: kprime,
				FastMS:    ms(fast),
				GenericMS: ms(gen),
				Speedup:   float64(gen) / float64(fast),
				FastPtsS:  float64(n) / fast.Seconds(),
			})
			fmt.Printf("gmm     n=%-7d d=%-3d fast %8.2fms  generic %8.2fms  speedup %.2fx\n",
				n, dim, ms(fast), ms(gen), float64(gen)/float64(fast))
		}
	}

	// Suite 2: SMM streaming ingest, batched fast vs pre-PR generic.
	const k, smmKPrime, batchSize = 16, 64, 1024
	for _, n := range sizes {
		for _, dim := range dims {
			rng := rand.New(rand.NewSource(int64(2*n + dim)))
			pts := randomVectors(rng, n, dim)
			ingestFast := func() {
				s := streamalg.NewSMM(k, smmKPrime, metric.Euclidean)
				for lo := 0; lo < n; lo += batchSize {
					hi := min(lo+batchSize, n)
					s.ProcessBatch(pts[lo:hi])
				}
			}
			ingestGeneric := func() {
				s := streamalg.NewSMM(k, smmKPrime, generic)
				for lo := 0; lo < n; lo += batchSize {
					hi := min(lo+batchSize, n)
					s.ProcessBatch(pts[lo:hi])
				}
			}
			fast, gen := minTime2(*reps, ingestFast, ingestGeneric)
			rep.SMM = append(rep.SMM, smmCase{
				N: n, Dim: dim, K: k, KPrime: smmKPrime,
				FastMS:    ms(fast),
				GenericMS: ms(gen),
				Speedup:   float64(gen) / float64(fast),
				FastPtsS:  float64(n) / fast.Seconds(),
			})
			fmt.Printf("smm     n=%-7d d=%-3d fast %8.2fms  generic %8.2fms  speedup %.2fx\n",
				n, dim, ms(fast), ms(gen), float64(gen)/float64(fast))
		}
	}

	// Suite 3: divmaxd end-to-end over HTTP.
	const ingestBatch = 2000
	for _, n := range sizes {
		for _, dim := range dims {
			rng := rand.New(rand.NewSource(int64(3*n + dim)))
			pts := randomVectors(rng, n, dim)
			bodies := make([][]byte, 0, (n+ingestBatch-1)/ingestBatch)
			for lo := 0; lo < n; lo += ingestBatch {
				hi := min(lo+ingestBatch, n)
				body, err := json.Marshal(map[string][]metric.Vector{"points": pts[lo:hi]})
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				bodies = append(bodies, body)
			}
			srv, err := server.New(server.Config{Shards: 4, MaxK: 16})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			ts := httptest.NewServer(srv.Handler())
			client := ts.Client()
			ingest := minTime(1, func() {
				for _, body := range bodies {
					resp, err := client.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
					if err != nil || resp.StatusCode != http.StatusOK {
						fmt.Fprintln(os.Stderr, "bench: ingest failed:", err, resp)
						os.Exit(1)
					}
					resp.Body.Close()
				}
			})
			var edgeSize int
			query := func(measure string) float64 {
				best := minTime(*reps, func() {
					resp, err := client.Get(ts.URL + "/query?k=16&measure=" + measure)
					if err != nil || resp.StatusCode != http.StatusOK {
						fmt.Fprintln(os.Stderr, "bench: query failed:", err, resp)
						os.Exit(1)
					}
					var qr struct {
						CoresetSize int `json:"coreset_size"`
					}
					if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
						fmt.Fprintln(os.Stderr, "bench: decoding query response:", err)
						os.Exit(1)
					}
					resp.Body.Close()
					if measure == "remote-edge" {
						edgeSize = qr.CoresetSize
					}
				})
				return ms(best)
			}
			edgeMS := query("remote-edge")
			cliqueMS := query("remote-clique")
			ts.Close()
			srv.Close()
			rep.Divmaxd = append(rep.Divmaxd, serverCase{
				N: n, Dim: dim, Shards: 4, Batch: ingestBatch,
				IngestMS:     ms(ingest),
				IngestPtsS:   float64(n) / ingest.Seconds(),
				QueryEdgeMS:  edgeMS,
				QueryCliqMS:  cliqueMS,
				CoresetAfter: edgeSize,
			})
			fmt.Printf("divmaxd n=%-7d d=%-3d ingest %8.2fms (%.0f pts/s)  query edge %6.2fms clique %6.2fms\n",
				n, dim, ms(ingest), float64(n)/ingest.Seconds(), edgeMS, cliqueMS)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	// The PR-2 acceptance gate: flat GMM ≥ 2× the pre-PR generic path
	// at n=100k, d=8. Surface it loudly so a regression is visible in
	// CI logs without parsing the JSON.
	for _, c := range rep.GMM {
		if c.N == 100000 && c.Dim == 8 {
			fmt.Printf("acceptance: GMM n=100k d=8 speedup %.2fx (target >= 2.0x)\n", c.Speedup)
		}
	}
}
