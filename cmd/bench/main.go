// Command bench runs the repository's performance-trajectory benchmarks
// and writes the results as JSON (BENCH_PR10.json in the repo root, via
// `make bench-json`), so successive PRs have a committed baseline to
// compare against.
//
// The suites cover the layers the flat-buffer distance engine and the
// round-2 solve engine touch:
//
//   - gmm: one farthest-first core-set construction (k′ = 64), fast
//     path versus the pre-PR-2 generic path, over n ∈ {10k, 100k} and
//     d ∈ {2, 8, 32}. The generic baseline runs GMM through a wrapper
//     distance implementing the pre-PR-2 Euclidean (plain in-order
//     sum plus a sqrt per pair, indirect call, scattered rows), which
//     the fast-path dispatcher deliberately does not recognize. The
//     high-dimensional rows (d ∈ {128, 512}, clustered embedding-shaped
//     data) instead baseline against the four-lane scalar kernel — the
//     same math as metric.Euclidean behind an unrecognized wrapper — so
//     their speedup isolates what the blocked norm-trick tier plus the
//     triangle-inequality pruned relax buy over the scalar code. The
//     n = 100k, d = 128 row is the PR 10 acceptance gate (>= 2x).
//   - smm_ingest: streaming SMM core-set ingestion (k = 16, k′ = 64),
//     batched fast path versus the same pre-PR-2 generic baseline.
//   - divmaxd: end-to-end service throughput over HTTP — JSON ingest
//     into sharded streaming core-sets, then merge+solve queries. Since
//     PR 3 the repeated queries hit the service's snapshot cache, so
//     the reported minima are cached-path latencies; the query_cache
//     suite reports the cold/cached split explicitly.
//   - solve: the round-2 solvers on merged-core-set-sized unions —
//     MaxDispersionPairs, LocalSearchClique, and SolveCoresets —
//     matrix-indexed (including the parallel matrix fill) versus the
//     generic callback path, which a wrapper around metric.Euclidean
//     keeps on the pre-PR-3 code.
//   - query_cache: divmaxd /query against an unchanged stream — the
//     first query after an ingest (cold: snapshot + merge + matrix
//     fill + solve) versus a repeated one (cached).
//   - solve_parallel: the sharded O(n²) farthest-partner scan across a
//     worker sweep — matrix mode at n = 4096 (solve against a prebuilt
//     matrix), tiled mode at n = 16384 (streamed row-blocks, past the
//     memory budget where the pre-PR-4 cap bailed to callbacks) — each
//     worker count against the 1-worker engine baseline, plus the
//     generic callback path for reference.
//   - dynamic_churn: the fully dynamic steady state — every round is a
//     small /v1/ingest, a couple of /v1/delete calls against random
//     earlier stream values (almost all absorbed, so the deletes are
//     tombstone broadcasts that leave the core-set generations alone),
//     and one /v1/query. Delta-patched cache versus forced full
//     rebuilds, plus the delete-outcome split and the warm-start count;
//     the acceptance gate requires delta patches to outnumber full
//     rebuilds across the churn.
//   - overload: concurrent writers hammering a deliberately slow
//     single shard (a fault-injected per-fold delay, tiny queue) with
//     load shedding on versus off. Shedding bounds the worst-case
//     ingest latency near the configured shed wait and turns the
//     excess into fast 429s; the blocking configuration accepts
//     everything but lets tail latency grow with the backlog. The gate
//     requires shedding to actually shed and to keep the max latency
//     under the blocking run's.
//   - durability: what the per-shard write-ahead log costs and what the
//     checkpoints buy. Ingest throughput with -data-dir at each fsync
//     policy (off, interval, always) against the in-memory server on
//     the identical stream, then recovery: reopening a cleanly closed
//     directory (final checkpoint, zero replay) versus an abruptly
//     closed one (no checkpoint, every record replayed from seq 1). The
//     gate requires checkpoint recovery to beat the from-zero replay at
//     n = 100k.
//   - cluster: the multi-node coordinator tier end to end — three real
//     workers behind loopback HTTP fronted by the coordinator, a bulk
//     ingest through the consistent-hash ring, then steady-state churn
//     rounds (a one-point ingest, then a query whose round-1 snapshot
//     fan re-reads every worker). Scenarios: all links healthy versus
//     worker 1 with a flaky snapshot link (every other request
//     delayed — the regime request hedging is built for), each with
//     hedging off and on. The gate requires hedging to cut the flaky
//     link's worst-round query latency.
//
// Every suite drives its servers through the cluster worker client
// (internal/cluster.Client), so the retry/backoff/typed-decode policy
// the coordinator tier runs on is exercised by every benchmark run.
//
// Every measurement interleaves the contending paths rep by rep and
// reports the per-path minimum, so slow-neighbour noise on shared
// machines cancels instead of biasing one side.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"divmax"
	"divmax/internal/api"
	"divmax/internal/cluster"
	"divmax/internal/coreset"
	"divmax/internal/faults"
	"divmax/internal/metric"
	"divmax/internal/sequential"
	"divmax/internal/server"
	"divmax/internal/streamalg"
	"divmax/internal/wal"
)

// prePREuclidean reproduces the Euclidean distance exactly as it was
// before the flat-buffer engine landed: a single in-order accumulator
// and a square root on every call. Being a distinct function, it is
// never recognized by the fast-path dispatcher, so driving an algorithm
// with it measures the pre-PR generic path.
func prePREuclidean(a, b metric.Vector) float64 {
	var sum float64
	for i := range a {
		diff := a[i] - b[i]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

type gmmCase struct {
	N      int `json:"n"`
	Dim    int `json:"dim"`
	KPrime int `json:"kprime"`
	// Data is "" for the uniform rows and "clustered" for the
	// embedding-shaped high-dimensional rows; Baseline is "" where the
	// generic contender is the pre-PR-2 Euclidean and "scalar-4lane"
	// where it is the four-lane scalar kernel (the honest baseline for
	// the blocked-tier rows).
	Data      string  `json:"data,omitempty"`
	Baseline  string  `json:"baseline,omitempty"`
	FastMS    float64 `json:"fast_ms"`
	GenericMS float64 `json:"generic_ms"`
	Speedup   float64 `json:"speedup"`
	FastPtsS  float64 `json:"fast_points_per_sec"`
}

type smmCase struct {
	N         int     `json:"n"`
	Dim       int     `json:"dim"`
	K         int     `json:"k"`
	KPrime    int     `json:"kprime"`
	FastMS    float64 `json:"fast_ms"`
	GenericMS float64 `json:"generic_ms"`
	Speedup   float64 `json:"speedup"`
	FastPtsS  float64 `json:"fast_points_per_sec"`
}

type serverCase struct {
	N            int     `json:"n"`
	Dim          int     `json:"dim"`
	Shards       int     `json:"shards"`
	Batch        int     `json:"batch"`
	IngestMS     float64 `json:"ingest_ms"`
	IngestPtsS   float64 `json:"ingest_points_per_sec"`
	QueryEdgeMS  float64 `json:"query_ms_remote_edge"`
	QueryCliqMS  float64 `json:"query_ms_remote_clique"`
	CoresetAfter int     `json:"coreset_size_remote_edge"`
}

type solveCase struct {
	Algo string `json:"algo"`
	N    int    `json:"n"`
	Dim  int    `json:"dim"`
	K    int    `json:"k"`
	// FillMS is the one-time parallel matrix fill; MatrixMS is the
	// matrix-indexed solver against the built matrix — the steady-state
	// cost once the fill is amortized (divmaxd's snapshot cache) or run
	// wide across cores. Speedup compares MatrixMS to GenericMS;
	// ColdSpeedup charges the fill to a single one-shot solve
	// (fill+solve vs generic), the worst case for the matrix path.
	FillMS      float64 `json:"fill_ms"`
	MatrixMS    float64 `json:"matrix_ms"`
	GenericMS   float64 `json:"generic_ms"`
	Speedup     float64 `json:"speedup"`
	ColdSpeedup float64 `json:"cold_speedup"`
}

type solveParallelCase struct {
	Algo string `json:"algo"`
	N    int    `json:"n"`
	Dim  int    `json:"dim"`
	K    int    `json:"k"`
	// Mode is "matrix" (solve against a prebuilt DistMatrix) or "tiled"
	// (no n² buffer: the scan streams row-blocks, fill fused with the
	// sharded scan — the mode that lifts the old 4096-point cap).
	Mode    string  `json:"mode"`
	Workers int     `json:"workers"`
	MS      float64 `json:"ms"`
	// SeqMS is the 1-worker engine baseline of the same mode; Speedup is
	// SeqMS/MS (the multi-worker win on the O(n²) pass). GenericMS, on
	// the 1-worker rows, is the pre-engine per-pair callback path.
	SeqMS     float64 `json:"seq_ms"`
	Speedup   float64 `json:"speedup"`
	GenericMS float64 `json:"generic_ms,omitempty"`
}

type queryCacheCase struct {
	N           int     `json:"n"`
	Dim         int     `json:"dim"`
	Shards      int     `json:"shards"`
	Measure     string  `json:"measure"`
	K           int     `json:"k"`
	CoresetSize int     `json:"coreset_size"`
	ColdMS      float64 `json:"cold_ms"`
	CachedMS    float64 `json:"cached_ms"`
	Speedup     float64 `json:"speedup"`
}

type incrementalCase struct {
	N          int    `json:"n_ingested"`
	Dim        int    `json:"dim"`
	Shards     int    `json:"shards"`
	MaxK       int    `json:"maxk"`
	KPrime     int    `json:"kprime"`
	Rounds     int    `json:"rounds"`
	RoundBatch int    `json:"round_batch"`
	UnionSize  int    `json:"coreset_union"`
	Mode       string `json:"engine_mode"`
	// A round is one small /ingest followed by one remote-clique /query
	// — the steady-state churn of a live service. Patched rounds run
	// against the default delta-patching cache (empty-delta rounds reuse
	// everything; grown rounds append matrix rows instead of refilling);
	// Rebuild rounds run the same stream with -delta-budget -1, the
	// pre-PR-5 invalidate-and-refill behavior. Min is the best round
	// (for patching, typically an absorbed batch), Avg the mean over all
	// rounds including generation-bump fallbacks.
	PatchedMinMS float64 `json:"patched_min_ms"`
	PatchedAvgMS float64 `json:"patched_avg_ms"`
	RebuildMinMS float64 `json:"rebuild_min_ms"`
	RebuildAvgMS float64 `json:"rebuild_avg_ms"`
	SpeedupMin   float64 `json:"speedup_min"`
	SpeedupAvg   float64 `json:"speedup_avg"`
	DeltaPatches int64   `json:"delta_patches"`
	FullRebuilds int64   `json:"full_rebuilds"`
}

type dynamicChurnCase struct {
	N          int    `json:"n_ingested"`
	Dim        int    `json:"dim"`
	Shards     int    `json:"shards"`
	MaxK       int    `json:"maxk"`
	KPrime     int    `json:"kprime"`
	Rounds     int    `json:"rounds"`
	RoundBatch int    `json:"round_batch"`
	Deletes    int    `json:"deletes_per_round"`
	Measure    string `json:"measure"`
	// A round is one small /v1/ingest, Deletes /v1/delete calls against
	// random earlier stream values, and one /v1/query. Patched rounds
	// run the default delta-patching cache; Rebuild rounds run the same
	// schedule with -delta-budget -1. The delete split shows the churn
	// is tombstone-dominated (non-evicting, so the patched server keeps
	// patching); WarmStarts counts queries served from a replayed stale
	// memo instead of a fresh solve.
	PatchedMinMS float64 `json:"patched_min_ms"`
	PatchedAvgMS float64 `json:"patched_avg_ms"`
	RebuildMinMS float64 `json:"rebuild_min_ms"`
	RebuildAvgMS float64 `json:"rebuild_avg_ms"`
	SpeedupAvg   float64 `json:"speedup_avg"`
	DeltaPatches int64   `json:"delta_patches"`
	FullRebuilds int64   `json:"full_rebuilds"`
	Evicting     int64   `json:"deletes_evicting"`
	Spares       int64   `json:"deletes_spares"`
	Tombstoned   int64   `json:"deletes_tombstoned"`
	WarmStarts   int64   `json:"memo_warm_starts"`
}

type overloadCase struct {
	Writers   int     `json:"writers"`
	Requests  int     `json:"requests_per_writer"`
	BatchSize int     `json:"batch_size"`
	Dim       int     `json:"dim"`
	Buffer    int     `json:"buffer"`
	FoldMS    float64 `json:"fold_delay_ms"`
	ShedMS    float64 `json:"shed_wait_ms"`
	// Both rows run the same write storm against a single shard whose
	// every fold is slowed by FoldMS through the fault injector, so the
	// queue (Buffer batches) is perpetually full. The Shed row sheds
	// after ShedMS (429 overloaded); the Block row runs ShedWait < 0,
	// the pre-robustness unbounded blocking backpressure. Latencies are
	// per-request wall times over all requests, shed or accepted.
	ShedAccepted  int64   `json:"shed_accepted"`
	ShedRejected  int64   `json:"shed_rejected"`
	ShedMaxMS     float64 `json:"shed_max_ms"`
	ShedAvgMS     float64 `json:"shed_avg_ms"`
	BlockAccepted int64   `json:"block_accepted"`
	BlockMaxMS    float64 `json:"block_max_ms"`
	BlockAvgMS    float64 `json:"block_avg_ms"`
	IngestSheds   int64   `json:"ingest_sheds"`
}

type durabilityCase struct {
	N      int `json:"n"`
	Dim    int `json:"dim"`
	Shards int `json:"shards"`
	Batch  int `json:"batch"`
	// Fsync is the WAL policy of the row — "in-memory" is the no-WAL
	// baseline server on the identical stream; "off" leaves syncing to
	// the OS, "interval" batches fsyncs on the default 100ms flusher,
	// "always" fsyncs every record before acknowledging. OverheadX is
	// this row's ingest time over the in-memory row's (1.0 = free).
	Fsync      string  `json:"fsync"`
	IngestMS   float64 `json:"ingest_ms"`
	IngestPtsS float64 `json:"ingest_points_per_sec"`
	OverheadX  float64 `json:"overhead_vs_memory,omitempty"`
	WALBytes   int64   `json:"wal_bytes,omitempty"`
}

type durabilityRecoveryCase struct {
	N      int `json:"n"`
	Dim    int `json:"dim"`
	Shards int `json:"shards"`
	// CheckpointMS reopens a cleanly closed data directory: the final
	// checkpoints restore the core-sets and zero records replay.
	// ReplayMS reopens the same stream's directory after an abrupt
	// close with checkpoints disabled: every record replays from seq 1
	// (the pre-checkpoint worst case). Both are one-shot wall times of
	// server.New through Ready (a second reopen of the replay directory
	// would hit the post-recovery checkpoint and stop being a cold
	// replay). Speedup is ReplayMS/CheckpointMS — what checkpoints buy.
	CheckpointMS   float64 `json:"recover_checkpoint_ms"`
	ReplayMS       float64 `json:"recover_replay_ms"`
	ReplayedPoints int64   `json:"replayed_points"`
	Speedup        float64 `json:"speedup"`
}

type clusterCase struct {
	Workers  int    `json:"workers"`
	N        int    `json:"n_ingested"`
	Dim      int    `json:"dim"`
	MaxK     int    `json:"maxk"`
	Rounds   int    `json:"rounds"`
	Scenario string `json:"scenario"`
	// HedgeMS is the coordinator's fixed hedge delay (-1 = hedging
	// disabled). A round is a one-point /v1/ingest through the ring
	// followed by one remote-clique /v1/query; the coordinator's
	// round-1 snapshot fan re-reads every worker on every query, so a
	// flaky snapshot link shows up directly in query latency — and
	// bounding that is hedging's job. Max/Avg are per-round query wall
	// times; Hedged and Retries sum the coordinator's per-worker
	// counters over the run.
	HedgeMS    float64 `json:"hedge_after_ms"`
	IngestMS   float64 `json:"ingest_ms"`
	IngestPtsS float64 `json:"ingest_points_per_sec"`
	QueryMaxMS float64 `json:"query_max_ms"`
	QueryAvgMS float64 `json:"query_avg_ms"`
	Hedged     int64   `json:"hedged_requests"`
	Retries    int64   `json:"retries"`
}

type report struct {
	PR            int                      `json:"pr"`
	Date          string                   `json:"date"`
	Go            string                   `json:"go"`
	GOOS          string                   `json:"goos"`
	GOARCH        string                   `json:"goarch"`
	CPUs          int                      `json:"cpus"`
	Reps          int                      `json:"reps"`
	GMMReps       int                      `json:"gmm_reps"` // the cheap GMM cells run 3× the base reps
	GMM           []gmmCase                `json:"gmm"`
	SMM           []smmCase                `json:"smm_ingest"`
	Divmaxd       []serverCase             `json:"divmaxd"`
	Solve         []solveCase              `json:"solve"`
	QueryCache    []queryCacheCase         `json:"query_cache"`
	SolveParallel []solveParallelCase      `json:"solve_parallel"`
	Incremental   []incrementalCase        `json:"incremental_ingest"`
	DynamicChurn  []dynamicChurnCase       `json:"dynamic_churn"`
	Overload      []overloadCase           `json:"overload"`
	Durability    []durabilityCase         `json:"durability"`
	DurabilityRec []durabilityRecoveryCase `json:"durability_recovery"`
	Cluster       []clusterCase            `json:"cluster"`
}

// bclient wraps a test server in the cluster worker client, the shared
// retry/typed-decode layer every suite drives its HTTP through.
func bclient(ts *httptest.Server, cfg cluster.ClientConfig) *cluster.Client {
	cfg.BaseURL = ts.URL
	cfg.HTTPClient = ts.Client()
	return cluster.NewClient(cfg)
}

func randomVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		pts[i] = v
	}
	return pts
}

// clusteredVectors draws embedding-shaped high-dimensional data: a
// Gaussian mixture over ten well-separated cluster centers with a tight
// spread around each. Uniform data in high dimension concentrates every
// pairwise distance into a narrow band — a triangle-inequality bound
// can rule nothing out there, and farthest-first degenerates into
// near-ties among interchangeable points (sprinkling uniform outliers
// has the same effect: the outlier-seeking traversal selects only
// those, every point keeps a huge min-distance, and pruning never
// fires). Real embedding workloads are clustered, and that is the
// regime the d >= 128 rows measure.
func clusteredVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	const clusters = 10
	centers := make([]metric.Vector, clusters)
	for c := range centers {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		centers[c] = v
	}
	pts := make([]metric.Vector, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*0.5
		}
		pts[i] = v
	}
	return pts
}

// minTime runs fn reps times and returns the fastest wall time.
func minTime(reps int, fn func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		if el := time.Since(start); el < best {
			best = el
		}
	}
	return best
}

// minTime2 interleaves two contenders rep by rep, alternating which
// goes first, so machine-load drift hits both symmetrically; it returns
// each one's minimum.
func minTime2(reps int, a, b func()) (time.Duration, time.Duration) {
	bestA := time.Duration(math.MaxInt64)
	bestB := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		first, second := a, b
		if r%2 == 1 {
			first, second = b, a
		}
		t0 := time.Now()
		first()
		t1 := time.Now()
		second()
		t2 := time.Now()
		elA, elB := t1.Sub(t0), t2.Sub(t1)
		if r%2 == 1 {
			elA, elB = elB, elA
		}
		if elA < bestA {
			bestA = elA
		}
		if elB < bestB {
			bestB = elB
		}
	}
	return bestA, bestB
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// genericEuclid has the same semantics as metric.Euclidean but is a
// distinct function the matrix dispatcher does not recognize, so
// algorithms driven by it run the pre-PR-3 generic callback path (which
// already includes the PR-2 four-lane Euclidean) — the honest baseline
// for the round-2 solve suite.
func genericEuclid(a, b metric.Vector) float64 { return metric.Euclidean(a, b) }

// mustEqualSolutions aborts the run when two solver paths diverge; the
// committed numbers are only meaningful if the contenders do identical
// work.
func mustEqualSolutions(label string, a, b []metric.Vector) {
	ok := len(a) == len(b)
	for i := 0; ok && i < len(a); i++ {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				ok = false
				break
			}
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: %s: matrix/generic solutions diverge\n", label)
		os.Exit(1)
	}
}

// minTimeN generalizes minTime2 to any number of contenders: every rep
// runs them all, rotating which goes first, and each one's minimum is
// reported.
func minTimeN(reps int, fns ...func()) []time.Duration {
	best := make([]time.Duration, len(fns))
	for i := range best {
		best[i] = time.Duration(math.MaxInt64)
	}
	for r := 0; r < reps; r++ {
		for o := 0; o < len(fns); o++ {
			i := (r + o) % len(fns)
			start := time.Now()
			fns[i]()
			if el := time.Since(start); el < best[i] {
				best[i] = el
			}
		}
	}
	return best
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	reps := flag.Int("reps", 5, "repetitions per measurement (minimum is reported)")
	flag.Parse()

	ctx := context.Background()
	sizes := []int{10000, 100000}
	dims := []int{2, 8, 32}
	rep := report{
		PR:      10,
		Date:    time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Reps:    *reps,
		GMMReps: 3 * *reps,
	}
	generic := metric.Distance[metric.Vector](prePREuclidean)

	// Suite 1: GMM construction, fast vs pre-PR generic.
	const kprime = 64
	for _, n := range sizes {
		for _, dim := range dims {
			rng := rand.New(rand.NewSource(int64(n + dim)))
			pts := randomVectors(rng, n, dim)
			fastRes := coreset.GMM(pts, kprime, 0, metric.Euclidean)
			genRes := coreset.GMM(pts, kprime, 0, generic)
			for i := range fastRes.Indices {
				if fastRes.Indices[i] != genRes.Indices[i] {
					fmt.Fprintf(os.Stderr, "bench: fast/generic GMM selections diverge at n=%d d=%d\n", n, dim)
					os.Exit(1)
				}
			}
			// The GMM cells are cheap relative to the rest of the run;
			// triple the reps so the minimum has a fair shot at a quiet
			// scheduling window on busy machines.
			fast, gen := minTime2(3**reps,
				func() { coreset.GMM(pts, kprime, 0, metric.Euclidean) },
				func() { coreset.GMM(pts, kprime, 0, generic) })
			rep.GMM = append(rep.GMM, gmmCase{
				N: n, Dim: dim, KPrime: kprime,
				FastMS:    ms(fast),
				GenericMS: ms(gen),
				Speedup:   float64(gen) / float64(fast),
				FastPtsS:  float64(n) / fast.Seconds(),
			})
			fmt.Printf("gmm     n=%-7d d=%-3d fast %8.2fms  generic %8.2fms  speedup %.2fx\n",
				n, dim, ms(fast), ms(gen), float64(gen)/float64(fast))
		}
	}

	// The high-dimensional GMM rows (PR 10): the blocked norm-trick
	// kernels plus the triangle-inequality pruned relax, against the
	// four-lane scalar kernel behind an unrecognized wrapper — the same
	// math per pair, so the speedup is purely the blocked tier's. The
	// data is clustered (see clusteredVectors): uniform high-dimensional
	// data concentrates distances and defeats the pruning, which is not
	// the workload -project-dim and the blocked tier exist for. The
	// selections are validated identical before timing, and the n=100k
	// d=128 row must clear 2x — the PR 10 acceptance gate, enforced
	// here so a regression kills the run before the JSON is written.
	scalar4 := metric.Distance[metric.Vector](genericEuclid)
	for _, hc := range []struct{ n, dim int }{
		{10000, 128}, {100000, 128}, {10000, 512},
	} {
		rng := rand.New(rand.NewSource(int64(hc.n + 31*hc.dim)))
		pts := clusteredVectors(rng, hc.n, hc.dim)
		fastRes := coreset.GMM(pts, kprime, 0, metric.Euclidean)
		scalRes := coreset.GMM(pts, kprime, 0, scalar4)
		for i := range fastRes.Indices {
			if fastRes.Indices[i] != scalRes.Indices[i] {
				fmt.Fprintf(os.Stderr, "bench: blocked/scalar GMM selections diverge at n=%d d=%d\n", hc.n, hc.dim)
				os.Exit(1)
			}
		}
		fast, gen := minTime2(*reps,
			func() { coreset.GMM(pts, kprime, 0, metric.Euclidean) },
			func() { coreset.GMM(pts, kprime, 0, scalar4) })
		speedup := float64(gen) / float64(fast)
		rep.GMM = append(rep.GMM, gmmCase{
			N: hc.n, Dim: hc.dim, KPrime: kprime,
			Data: "clustered", Baseline: "scalar-4lane",
			FastMS:    ms(fast),
			GenericMS: ms(gen),
			Speedup:   speedup,
			FastPtsS:  float64(hc.n) / fast.Seconds(),
		})
		fmt.Printf("gmm     n=%-7d d=%-3d blocked %8.2fms  scalar %8.2fms  speedup %.2fx\n",
			hc.n, hc.dim, ms(fast), ms(gen), speedup)
		if hc.n == 100000 && hc.dim == 128 && speedup < 2 {
			fmt.Fprintf(os.Stderr, "bench: PR 10 gate failed: blocked GMM %.2fx over the scalar kernel at n=100k d=128 (target >= 2.0x)\n", speedup)
			os.Exit(1)
		}
	}

	// Suite 2: SMM streaming ingest, batched fast vs pre-PR generic.
	const k, smmKPrime, batchSize = 16, 64, 1024
	for _, n := range sizes {
		for _, dim := range dims {
			rng := rand.New(rand.NewSource(int64(2*n + dim)))
			pts := randomVectors(rng, n, dim)
			ingestFast := func() {
				s := streamalg.NewSMM(k, smmKPrime, metric.Euclidean)
				for lo := 0; lo < n; lo += batchSize {
					hi := min(lo+batchSize, n)
					s.ProcessBatch(pts[lo:hi])
				}
			}
			ingestGeneric := func() {
				s := streamalg.NewSMM(k, smmKPrime, generic)
				for lo := 0; lo < n; lo += batchSize {
					hi := min(lo+batchSize, n)
					s.ProcessBatch(pts[lo:hi])
				}
			}
			fast, gen := minTime2(*reps, ingestFast, ingestGeneric)
			rep.SMM = append(rep.SMM, smmCase{
				N: n, Dim: dim, K: k, KPrime: smmKPrime,
				FastMS:    ms(fast),
				GenericMS: ms(gen),
				Speedup:   float64(gen) / float64(fast),
				FastPtsS:  float64(n) / fast.Seconds(),
			})
			fmt.Printf("smm     n=%-7d d=%-3d fast %8.2fms  generic %8.2fms  speedup %.2fx\n",
				n, dim, ms(fast), ms(gen), float64(gen)/float64(fast))
		}
	}

	// Suite 3: divmaxd end-to-end over HTTP.
	const ingestBatch = 2000
	for _, n := range sizes {
		for _, dim := range dims {
			rng := rand.New(rand.NewSource(int64(3*n + dim)))
			pts := randomVectors(rng, n, dim)
			bodies := make([][]byte, 0, (n+ingestBatch-1)/ingestBatch)
			for lo := 0; lo < n; lo += ingestBatch {
				hi := min(lo+ingestBatch, n)
				body, err := json.Marshal(api.IngestRequest{Points: pts[lo:hi]})
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				bodies = append(bodies, body)
			}
			srv, err := server.New(server.Config{Shards: 4, MaxK: 16})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			ts := httptest.NewServer(srv.Handler())
			c := bclient(ts, cluster.ClientConfig{})
			ingest := minTime(1, func() {
				for _, body := range bodies {
					if _, err := c.IngestBody(ctx, body); err != nil {
						fmt.Fprintln(os.Stderr, "bench: ingest failed:", err)
						os.Exit(1)
					}
				}
			})
			var edgeSize int
			query := func(measure string) float64 {
				best := minTime(*reps, func() {
					qr, err := c.Query(ctx, measure, 16)
					if err != nil {
						fmt.Fprintln(os.Stderr, "bench: query failed:", err)
						os.Exit(1)
					}
					if measure == "remote-edge" {
						edgeSize = qr.CoresetSize
					}
				})
				return ms(best)
			}
			edgeMS := query("remote-edge")
			cliqueMS := query("remote-clique")
			ts.Close()
			srv.Close()
			rep.Divmaxd = append(rep.Divmaxd, serverCase{
				N: n, Dim: dim, Shards: 4, Batch: ingestBatch,
				IngestMS:     ms(ingest),
				IngestPtsS:   float64(n) / ingest.Seconds(),
				QueryEdgeMS:  edgeMS,
				QueryCliqMS:  cliqueMS,
				CoresetAfter: edgeSize,
			})
			fmt.Printf("divmaxd n=%-7d d=%-3d ingest %8.2fms (%.0f pts/s)  query edge %6.2fms clique %6.2fms\n",
				n, dim, ms(ingest), float64(n)/ingest.Seconds(), edgeMS, cliqueMS)
		}
	}

	// Suite 4: the round-2 solvers on merged-core-set-sized unions,
	// matrix-indexed versus the generic callback path, which a wrapper
	// around metric.Euclidean keeps on the pre-PR-3 code. The matrix
	// contenders drive the explicit entry points (the code the divmaxd
	// cache and mrdiv.SolveCoresets run), with the one-time fill timed
	// separately from the solver it feeds. d = 8 matches the acceptance
	// gate.
	generic3 := metric.Distance[metric.Vector](genericEuclid)
	const solveDim, solveK = 8, 16
	solveBench := func(algo string, pts []metric.Vector, k int,
		matrixSolve func(dm *metric.DistMatrix) []metric.Vector,
		genericSolve func() []metric.Vector) {
		dm := sequential.BuildMatrix(pts, metric.Euclidean, 0)
		if dm == nil {
			fmt.Fprintf(os.Stderr, "bench: %s: BuildMatrix rejected the input\n", algo)
			os.Exit(1)
		}
		mustEqualSolutions(algo, matrixSolve(dm), genericSolve())
		// Flush garbage from earlier suites (the divmaxd run leaves ~100MB
		// of JSON bodies behind): on one core a major GC landing inside
		// the first timed fill would otherwise dominate it.
		runtime.GC()
		fill := minTime(*reps, func() { sequential.BuildMatrix(pts, metric.Euclidean, 0) })
		runtime.GC()
		mat, gen := minTime2(*reps,
			func() { matrixSolve(dm) },
			func() { genericSolve() })
		rep.Solve = append(rep.Solve, solveCase{
			Algo: algo, N: len(pts), Dim: solveDim, K: k,
			FillMS: ms(fill), MatrixMS: ms(mat), GenericMS: ms(gen),
			Speedup:     float64(gen) / float64(mat),
			ColdSpeedup: float64(gen) / float64(fill+mat),
		})
		fmt.Printf("solve   %-22s n=%-6d d=%-3d fill %8.2fms  matrix %8.2fms  generic %8.2fms  speedup %.2fx (cold %.2fx)\n",
			algo, len(pts), solveDim, ms(fill), ms(mat), ms(gen),
			float64(gen)/float64(mat), float64(gen)/float64(fill+mat))
	}
	{
		rng := rand.New(rand.NewSource(101))
		pts := randomVectors(rng, 4096, solveDim)
		solveBench("max_dispersion_pairs", pts, solveK,
			func(dm *metric.DistMatrix) []metric.Vector {
				return sequential.MaxDispersionPairsMatrix(pts, dm, solveK)
			},
			func() []metric.Vector { return sequential.MaxDispersionPairs(pts, solveK, generic3) })
	}
	{
		rng := rand.New(rand.NewSource(102))
		pts := randomVectors(rng, 2048, solveDim)
		const lsK, lsSweeps = 24, 16
		solveBench("local_search_clique", pts, lsK,
			func(dm *metric.DistMatrix) []metric.Vector {
				return sequential.LocalSearchCliqueMatrix(pts, dm, lsK, lsSweeps)
			},
			func() []metric.Vector { return sequential.LocalSearchClique(pts, lsK, lsSweeps, generic3) })
	}
	{
		// Round 2 as the service runs it: four shard-sized remote-clique
		// core-sets whose union is the solver's input. The generic
		// contender is the full pre-PR-3 SolveCoresets round.
		rng := rand.New(rand.NewSource(103))
		cores := make([][]metric.Vector, 4)
		var union []metric.Vector
		for i := range cores {
			cores[i] = randomVectors(rng, 1024, solveDim)
			union = append(union, cores[i]...)
		}
		solveBench("solve_coresets", union, solveK,
			func(dm *metric.DistMatrix) []metric.Vector {
				return sequential.SolveMatrix(divmax.RemoteClique, union, dm, solveK)
			},
			func() []metric.Vector {
				sol, err := divmax.MapReduceSolveCoresets(divmax.RemoteClique, cores, solveK, divmax.MRConfig{}, generic3)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				return sol
			})
	}

	// Suite 5: /query against an unchanged stream, cold (first query
	// after an ingest: snapshot + merge + matrix fill + solve) versus
	// cached (every later one). A one-point ingest before each cold rep
	// invalidates the cache without meaningfully changing the stream.
	{
		const n, dim, shards, k = 50000, 8, 4, 16
		rng := rand.New(rand.NewSource(104))
		pts := randomVectors(rng, n, dim)
		// Patching disabled so "cold" keeps meaning a full snapshot +
		// merge + fill; the incremental_ingest suite measures the
		// patched path explicitly.
		srv, err := server.New(server.Config{Shards: shards, MaxK: k, DeltaBudget: -1})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		ts := httptest.NewServer(srv.Handler())
		c := bclient(ts, cluster.ClientConfig{})
		ingest := func(batch []metric.Vector) {
			if _, err := c.Ingest(ctx, batch); err != nil {
				fmt.Fprintln(os.Stderr, "bench: ingest failed:", err)
				os.Exit(1)
			}
		}
		for lo := 0; lo < n; lo += ingestBatch {
			ingest(pts[lo:min(lo+ingestBatch, n)])
		}
		var size int
		query := func(wantCached bool) time.Duration {
			start := time.Now()
			qr, err := c.Query(ctx, "remote-clique", 16)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench: query failed:", err)
				os.Exit(1)
			}
			elapsed := time.Since(start)
			if qr.Cached != wantCached {
				fmt.Fprintf(os.Stderr, "bench: query cached=%v, want %v\n", qr.Cached, wantCached)
				os.Exit(1)
			}
			size = qr.CoresetSize
			return elapsed
		}
		cold := time.Duration(math.MaxInt64)
		cached := time.Duration(math.MaxInt64)
		for r := 0; r < *reps; r++ {
			i := rng.Intn(n - 1)
			ingest(pts[i : i+1]) // a one-point batch invalidates the cache
			if el := query(false); el < cold {
				cold = el
			}
			for i := 0; i < 3; i++ {
				if el := query(true); el < cached {
					cached = el
				}
			}
		}
		ts.Close()
		srv.Close()
		rep.QueryCache = append(rep.QueryCache, queryCacheCase{
			N: n, Dim: dim, Shards: shards, Measure: "remote-clique", K: k,
			CoresetSize: size,
			ColdMS:      ms(cold), CachedMS: ms(cached),
			Speedup: float64(cold) / float64(cached),
		})
		fmt.Printf("query   cache n=%-6d d=%-3d coreset=%-5d cold %8.2fms  cached %8.4fms  speedup %.1fx\n",
			n, dim, size, ms(cold), ms(cached), float64(cold)/float64(cached))
	}

	// Suite 6: the sharded O(n²) farthest-partner scan across a worker
	// sweep. n = 4096 sits exactly at the matrix budget, so the engine
	// solves against a prebuilt matrix (the fill is excluded, as in the
	// divmaxd cache's steady state); larger n is past it — so the engine
	// streams row-block tiles, fill fused with the sharded scan (before
	// PR 4 those sizes silently fell back to the per-pair callback path,
	// timed here as generic_ms). The high-dimensional rows (clustered
	// data, d >= 128) route the fill through the blocked kernel tier: in
	// tiled mode the fill is fused into every timed scan, so those rows
	// measure the blocked tier directly, while the matrix-mode d=512 row
	// shows the scan itself is dimension-free once the matrix is built.
	// Every worker count is validated bit-identical before timing.
	{
		const spK = 16
		sweep := []int{1, 2, 4}
		if nc := runtime.NumCPU(); nc > 4 {
			sweep = append(sweep, nc)
		}
		for _, sp := range []struct{ n, dim int }{
			{4096, 8}, {16384, 8}, {8192, 128}, {4096, 512},
		} {
			n, spDim := sp.n, sp.dim
			rng := rand.New(rand.NewSource(int64(200 + n + spDim)))
			var pts []metric.Vector
			if spDim >= metric.BlockedMinDim {
				pts = clusteredVectors(rng, n, spDim)
			} else {
				pts = randomVectors(rng, n, spDim)
			}
			base := sequential.BuildEngine(pts, metric.Euclidean, sweep[0])
			if base == nil {
				fmt.Fprintf(os.Stderr, "bench: solve_parallel: BuildEngine rejected n=%d\n", n)
				os.Exit(1)
			}
			// One fill, shared across the sweep: the per-worker engines
			// differ only in their scan sharding.
			engines := make([]*sequential.Engine, len(sweep))
			for i, w := range sweep {
				engines[i] = base.WithWorkers(w)
			}
			mode := "matrix"
			if engines[0].Tiled() {
				mode = "tiled"
			}
			if wantTiled := n > 4096; engines[0].Tiled() != wantTiled {
				fmt.Fprintf(os.Stderr, "bench: solve_parallel: n=%d built %s mode\n", n, mode)
				os.Exit(1)
			}
			want := sequential.MaxDispersionPairs(pts, spK, generic3)
			for i := range engines {
				mustEqualSolutions("solve_parallel", sequential.MaxDispersionPairsEngine(pts, engines[i], spK), want)
			}
			spReps := *reps
			if n*spDim > 65536 && spReps > 3 {
				spReps = 3 // the tiled and high-d cells run whole-seconds each
			}
			fns := make([]func(), 0, len(sweep)+1)
			for i := range engines {
				e := engines[i]
				fns = append(fns, func() { sequential.MaxDispersionPairsEngine(pts, e, spK) })
			}
			fns = append(fns, func() { sequential.MaxDispersionPairs(pts, spK, generic3) })
			runtime.GC()
			times := minTimeN(spReps, fns...)
			seq, genericTime := times[0], times[len(times)-1]
			for i, w := range sweep {
				c := solveParallelCase{
					Algo: "max_dispersion_pairs", N: n, Dim: spDim, K: spK,
					Mode: mode, Workers: w,
					MS:    ms(times[i]),
					SeqMS: ms(seq), Speedup: float64(seq) / float64(times[i]),
				}
				if w == 1 {
					c.GenericMS = ms(genericTime)
				}
				rep.SolveParallel = append(rep.SolveParallel, c)
				fmt.Printf("solvepar %-6s n=%-6d w=%-2d scan %8.2fms  seq %8.2fms  speedup %.2fx\n",
					mode, n, w, ms(times[i]), ms(seq), float64(seq)/float64(times[i]))
			}
			fmt.Printf("solvepar %-6s n=%-6d generic(callback) %8.2fms\n", mode, n, ms(genericTime))
		}
	}

	// Suite 7: incremental_ingest — ingest-then-query churn against a
	// live service, delta-patched cache versus forced full rebuilds.
	// Each round is one small /ingest followed by one remote-clique
	// /query; both servers see the identical stream. The SMM-EXT union
	// sizes with MaxK·KPrime, so the small config solves matrix-mode
	// within the default budget and the large one crosses into tiled.
	for _, cc := range []struct {
		maxK, kprime, n int
	}{
		// Small config: the union fits the matrix budget. Large config:
		// the union crosses into tiled mode, and the longer initial
		// stream saturates the delegate sets so churn rounds include
		// absorbed batches (empty deltas — the steady state of a
		// long-lived service, where a patch also carries the answer
		// memo over).
		{16, 64, 12000},
		{32, 128, 40000},
	} {
		n := cc.n
		const (
			dim        = 8
			shards     = 2
			rounds     = 10
			roundBatch = 100
		)
		churn := func(deltaBudget float64) (minRound, avgRound time.Duration, st api.StatsResponse, union int) {
			rng := rand.New(rand.NewSource(int64(7000 + cc.maxK)))
			pts := randomVectors(rng, n+rounds*roundBatch, dim)
			srv, err := server.New(server.Config{
				Shards: shards, MaxK: cc.maxK, KPrime: cc.kprime, DeltaBudget: deltaBudget,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			ts := httptest.NewServer(srv.Handler())
			defer func() { ts.Close(); srv.Close() }()
			c := bclient(ts, cluster.ClientConfig{})
			ingest := func(batch []metric.Vector) {
				if _, err := c.Ingest(ctx, batch); err != nil {
					fmt.Fprintln(os.Stderr, "bench: ingest failed:", err)
					os.Exit(1)
				}
			}
			for lo := 0; lo < n; lo += ingestBatch {
				ingest(pts[lo:min(lo+ingestBatch, n)])
			}
			query := func() int {
				qr, err := c.Query(ctx, "remote-clique", cc.maxK)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench: query failed:", err)
					os.Exit(1)
				}
				return qr.CoresetSize
			}
			query() // build the initial cached state outside the timed rounds
			minRound = time.Duration(math.MaxInt64)
			var sum time.Duration
			for r := 0; r < rounds; r++ {
				lo := n + r*roundBatch
				start := time.Now()
				ingest(pts[lo : lo+roundBatch])
				union = query()
				el := time.Since(start)
				sum += el
				if el < minRound {
					minRound = el
				}
			}
			avgRound = sum / rounds
			if st, err = c.Stats(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "bench: stats failed:", err)
				os.Exit(1)
			}
			return minRound, avgRound, st, union
		}
		patchedMin, patchedAvg, patchedStats, union := churn(0) // 0 = the default budget
		rebuildMin, rebuildAvg, _, _ := churn(-1)               // patching disabled
		if patchedStats.DeltaPatches == 0 {
			fmt.Fprintln(os.Stderr, "bench: incremental_ingest churn performed no delta patches")
			os.Exit(1)
		}
		mode := "matrix"
		if patchedStats.TiledSolves > 0 {
			mode = "tiled"
		}
		rep.Incremental = append(rep.Incremental, incrementalCase{
			N: n + rounds*roundBatch, Dim: dim, Shards: shards,
			MaxK: cc.maxK, KPrime: cc.kprime,
			Rounds: rounds, RoundBatch: roundBatch,
			UnionSize: union, Mode: mode,
			PatchedMinMS: ms(patchedMin), PatchedAvgMS: ms(patchedAvg),
			RebuildMinMS: ms(rebuildMin), RebuildAvgMS: ms(rebuildAvg),
			SpeedupMin:   float64(rebuildMin) / float64(patchedMin),
			SpeedupAvg:   float64(rebuildAvg) / float64(patchedAvg),
			DeltaPatches: patchedStats.DeltaPatches,
			FullRebuilds: patchedStats.FullRebuilds,
		})
		fmt.Printf("incr    %-6s n=%-6d union=%-5d patched %8.2f/%8.2fms  rebuild %8.2f/%8.2fms  speedup %.1f/%.1fx  patches=%d\n",
			mode, n+rounds*roundBatch, union,
			ms(patchedMin), ms(patchedAvg), ms(rebuildMin), ms(rebuildAvg),
			float64(rebuildMin)/float64(patchedMin), float64(rebuildAvg)/float64(patchedAvg),
			patchedStats.DeltaPatches)
	}

	// Suite 8: dynamic_churn — insert/delete/query interleave against the
	// typed /v1 API. The deletes target random earlier stream values:
	// with k′ = 64 almost everything in the stream is absorbed, so the
	// churn is tombstone-dominated and the patched server must keep
	// resolving stale queries as delta patches (the PR 6 acceptance
	// gate), with the occasional retained-point delete exercising the
	// eviction → rebuild fallback on the same schedule. The
	// high-dimensional rows run the identical interleave on clustered
	// embedding-shaped data, so every patched round's grown-matrix
	// stripe and every rebuild's full fill go through the blocked
	// kernel tier.
	for _, ch := range []struct{ n, dim int }{
		{12000, 8}, {8000, 128}, {4000, 512},
	} {
		chN, chDim := ch.n, ch.dim
		const (
			chShards          = 2
			chMaxK, chKPrime  = 16, 64
			chRounds, chBatch = 20, 50
			chDeletes         = 2
			chMeasure         = "remote-edge"
		)
		churn := func(deltaBudget float64) (minRound, avgRound time.Duration, st api.StatsResponse) {
			rng := rand.New(rand.NewSource(int64(9001 + chN + chDim)))
			var pts []metric.Vector
			if chDim >= metric.BlockedMinDim {
				pts = clusteredVectors(rng, chN+chRounds*chBatch, chDim)
			} else {
				pts = randomVectors(rng, chN+chRounds*chBatch, chDim)
			}
			srv, err := server.New(server.Config{
				Shards: chShards, MaxK: chMaxK, KPrime: chKPrime, DeltaBudget: deltaBudget,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			ts := httptest.NewServer(srv.Handler())
			defer func() { ts.Close(); srv.Close() }()
			c := bclient(ts, cluster.ClientConfig{})
			ingest := func(batch []metric.Vector) {
				if _, err := c.Ingest(ctx, batch); err != nil {
					fmt.Fprintln(os.Stderr, "bench: ingest failed:", err)
					os.Exit(1)
				}
			}
			for lo := 0; lo < chN; lo += ingestBatch {
				ingest(pts[lo:min(lo+ingestBatch, chN)])
			}
			query := func() {
				if _, err := c.Query(ctx, chMeasure, chMaxK); err != nil {
					fmt.Fprintln(os.Stderr, "bench: query failed:", err)
					os.Exit(1)
				}
			}
			query() // build the initial cached state outside the timed rounds
			minRound = time.Duration(math.MaxInt64)
			var sum time.Duration
			for r := 0; r < chRounds; r++ {
				lo := chN + r*chBatch
				dels := make([]metric.Vector, chDeletes)
				for i := range dels {
					dels[i] = pts[rng.Intn(lo)]
				}
				start := time.Now()
				ingest(pts[lo : lo+chBatch])
				if _, err := c.Delete(ctx, dels, false); err != nil {
					fmt.Fprintln(os.Stderr, "bench: delete failed:", err)
					os.Exit(1)
				}
				query()
				el := time.Since(start)
				sum += el
				if el < minRound {
					minRound = el
				}
			}
			avgRound = sum / chRounds
			if st, err = c.Stats(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "bench: stats failed:", err)
				os.Exit(1)
			}
			return minRound, avgRound, st
		}
		patchedMin, patchedAvg, patchedStats := churn(0) // 0 = the default budget
		rebuildMin, rebuildAvg, _ := churn(-1)           // patching disabled
		if patchedStats.DeltaPatches <= patchedStats.FullRebuilds {
			fmt.Fprintf(os.Stderr, "bench: dynamic_churn d=%d: delta patches (%d) did not outnumber full rebuilds (%d)\n",
				chDim, patchedStats.DeltaPatches, patchedStats.FullRebuilds)
			os.Exit(1)
		}
		rep.DynamicChurn = append(rep.DynamicChurn, dynamicChurnCase{
			N: chN + chRounds*chBatch, Dim: chDim, Shards: chShards,
			MaxK: chMaxK, KPrime: chKPrime,
			Rounds: chRounds, RoundBatch: chBatch, Deletes: chDeletes,
			Measure:      chMeasure,
			PatchedMinMS: ms(patchedMin), PatchedAvgMS: ms(patchedAvg),
			RebuildMinMS: ms(rebuildMin), RebuildAvgMS: ms(rebuildAvg),
			SpeedupAvg:   float64(rebuildAvg) / float64(patchedAvg),
			DeltaPatches: patchedStats.DeltaPatches,
			FullRebuilds: patchedStats.FullRebuilds,
			Evicting:     patchedStats.DeletesEvicting,
			Spares:       patchedStats.DeletesSpares,
			Tombstoned:   patchedStats.DeletesTombstoned,
			WarmStarts:   patchedStats.MemoWarmStarts,
		})
		fmt.Printf("churn   n=%-6d d=%-3d patched %8.2f/%8.2fms  rebuild %8.2f/%8.2fms  patches=%d rebuilds=%d dels=%d/%d/%d warm=%d\n",
			chN+chRounds*chBatch, chDim,
			ms(patchedMin), ms(patchedAvg), ms(rebuildMin), ms(rebuildAvg),
			patchedStats.DeltaPatches, patchedStats.FullRebuilds,
			patchedStats.DeletesEvicting, patchedStats.DeletesSpares, patchedStats.DeletesTombstoned,
			patchedStats.MemoWarmStarts)
	}

	// Suite 9: overload — the PR 7 load-shedding trade-off, measured.
	// Concurrent writers blast ingest batches at a single shard whose
	// every fold is slowed through the fault injector, so the tiny
	// queue is full for the whole storm. With shedding on, a request
	// waits at most the shed wait before a fast 429 bounds its latency;
	// with shedding off (the pre-PR behaviour) every request eventually
	// lands but the tail waits behind the whole backlog.
	{
		const (
			ovWriters  = 8
			ovRequests = 12 // ingest calls per writer
			ovBatch    = 20 // points per call
			ovDim      = 4
			ovBuffer   = 2
			ovFold     = 4 * time.Millisecond
			ovShed     = 4 * time.Millisecond
		)
		storm := func(shedWait time.Duration) (accepted, rejected int64, maxLat, avgLat time.Duration, st api.StatsResponse) {
			inj := faults.New()
			inj.OnBatch(faults.SlowBatch(0, ovFold))
			srv, err := server.New(server.Config{
				Shards: 1, MaxK: 8, KPrime: 32, Buffer: ovBuffer,
				ShedWait: shedWait, Faults: inj,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			ts := httptest.NewServer(srv.Handler())
			defer func() { ts.Close(); srv.Close() }()
			// Retries disabled: the suite counts every raw 429 the shedder
			// returns, so the client must surface them instead of backing
			// off and retrying into an eventual accept.
			c := bclient(ts, cluster.ClientConfig{MaxRetries: -1})
			rng := rand.New(rand.NewSource(77))
			pts := randomVectors(rng, ovWriters*ovRequests*ovBatch, ovDim)
			var acc, rej, unexpected, maxNS, sumNS atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < ovWriters; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < ovRequests; r++ {
						lo := (w*ovRequests + r) * ovBatch
						body, err := json.Marshal(api.IngestRequest{Points: pts[lo : lo+ovBatch]})
						if err != nil {
							unexpected.Add(1)
							return
						}
						start := time.Now()
						_, err = c.IngestBody(ctx, body)
						el := int64(time.Since(start))
						var he *cluster.HTTPError
						switch {
						case err == nil:
							acc.Add(1)
						case errors.As(err, &he) && he.Status == http.StatusTooManyRequests:
							rej.Add(1)
						default:
							unexpected.Add(1)
						}
						sumNS.Add(el)
						for {
							cur := maxNS.Load()
							if el <= cur || maxNS.CompareAndSwap(cur, el) {
								break
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if unexpected.Load() != 0 {
				fmt.Fprintf(os.Stderr, "bench: overload: %d requests failed outright (shed_wait=%v)\n", unexpected.Load(), shedWait)
				os.Exit(1)
			}
			if st, err = c.Stats(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "bench: overload stats failed:", err)
				os.Exit(1)
			}
			total := acc.Load() + rej.Load()
			return acc.Load(), rej.Load(), time.Duration(maxNS.Load()), time.Duration(sumNS.Load() / total), st
		}
		shedAcc, shedRej, shedMax, shedAvg, shedStats := storm(ovShed)
		blockAcc, blockRej, blockMax, blockAvg, _ := storm(-1)
		total := int64(ovWriters * ovRequests)
		if shedRej == 0 || shedStats.IngestSheds == 0 {
			fmt.Fprintf(os.Stderr, "bench: overload: shedding config shed nothing (rejected=%d ingest_sheds=%d)\n", shedRej, shedStats.IngestSheds)
			os.Exit(1)
		}
		if blockRej != 0 || blockAcc != total {
			fmt.Fprintf(os.Stderr, "bench: overload: blocking config dropped requests (accepted=%d/%d rejected=%d)\n", blockAcc, total, blockRej)
			os.Exit(1)
		}
		if shedMax >= blockMax {
			fmt.Fprintf(os.Stderr, "bench: overload: shedding max latency %v not under blocking max %v\n", shedMax, blockMax)
			os.Exit(1)
		}
		rep.Overload = append(rep.Overload, overloadCase{
			Writers: ovWriters, Requests: ovRequests, BatchSize: ovBatch, Dim: ovDim,
			Buffer: ovBuffer, FoldMS: ms(ovFold), ShedMS: ms(ovShed),
			ShedAccepted: shedAcc, ShedRejected: shedRej,
			ShedMaxMS: ms(shedMax), ShedAvgMS: ms(shedAvg),
			BlockAccepted: blockAcc,
			BlockMaxMS:    ms(blockMax), BlockAvgMS: ms(blockAvg),
			IngestSheds: shedStats.IngestSheds,
		})
		fmt.Printf("overload %dx%d shed  acc=%-3d rej=%-3d max %8.2fms avg %8.2fms   block acc=%-3d max %8.2fms avg %8.2fms\n",
			ovWriters, ovRequests, shedAcc, shedRej, ms(shedMax), ms(shedAvg),
			blockAcc, ms(blockMax), ms(blockAvg))
	}

	// Suite 10: durability — the WAL's ingest overhead at each fsync
	// policy against the in-memory server, then recovery time: a cleanly
	// closed directory (checkpoint restore, zero replay) versus an
	// abruptly closed one with checkpoints disabled (every record
	// replayed from seq 1). The interval-policy directory doubles as the
	// checkpoint-recovery input; the off-policy one, closed abruptly, as
	// the cold-replay input — both hold the identical stream.
	{
		const duShards, duDim, duMaxK = 4, 8, 16
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(int64(5*n + duDim)))
			pts := randomVectors(rng, n, duDim)
			bodies := make([][]byte, 0, (n+ingestBatch-1)/ingestBatch)
			for lo := 0; lo < n; lo += ingestBatch {
				hi := min(lo+ingestBatch, n)
				body, err := json.Marshal(api.IngestRequest{Points: pts[lo:hi]})
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				bodies = append(bodies, body)
			}
			duStats := func(srv *server.Server) api.StatsResponse {
				ts := httptest.NewServer(srv.Handler())
				defer ts.Close()
				st, err := bclient(ts, cluster.ClientConfig{}).Stats(ctx)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench: durability stats failed:", err)
					os.Exit(1)
				}
				return st
			}
			// ingestRun streams the whole prebuilt body set into a fresh
			// server and returns the wall time plus the still-open server
			// (the caller chooses how to close it).
			ingestRun := func(cfg server.Config) (time.Duration, *server.Server) {
				srv, err := server.New(cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				for !srv.Ready() {
					time.Sleep(100 * time.Microsecond)
				}
				ts := httptest.NewServer(srv.Handler())
				c := bclient(ts, cluster.ClientConfig{})
				start := time.Now()
				for _, body := range bodies {
					if _, err := c.IngestBody(ctx, body); err != nil {
						fmt.Fprintln(os.Stderr, "bench: durable ingest failed:", err)
						os.Exit(1)
					}
				}
				el := time.Since(start)
				ts.Close()
				return el, srv
			}
			var memMS float64
			var ckptDir, replayDir string
			for _, mode := range []string{"in-memory", "off", "interval", "always"} {
				cfg := server.Config{Shards: duShards, MaxK: duMaxK, CheckpointEvery: -time.Second}
				if mode != "in-memory" {
					dir, err := os.MkdirTemp("", "divmax-bench-wal-")
					if err != nil {
						fmt.Fprintln(os.Stderr, "bench:", err)
						os.Exit(1)
					}
					defer os.RemoveAll(dir)
					cfg.DataDir = dir
					policy, err := wal.ParseSyncPolicy(mode)
					if err != nil {
						fmt.Fprintln(os.Stderr, "bench:", err)
						os.Exit(1)
					}
					cfg.Fsync = policy
				}
				el, srv := ingestRun(cfg)
				c := durabilityCase{
					N: n, Dim: duDim, Shards: duShards, Batch: ingestBatch,
					Fsync:      mode,
					IngestMS:   ms(el),
					IngestPtsS: float64(n) / el.Seconds(),
				}
				if mode == "in-memory" {
					memMS = c.IngestMS
					srv.Close()
				} else {
					c.OverheadX = c.IngestMS / memMS
					for _, sh := range duStats(srv).Shards {
						c.WALBytes += sh.WALBytes
					}
					switch mode {
					case "interval":
						// A clean close writes the final checkpoints: this
						// directory becomes the checkpoint-recovery input.
						ckptDir = cfg.DataDir
						srv.Close()
					case "off":
						// An abrupt close with the ticker disabled leaves no
						// checkpoint at all: the cold-replay input.
						replayDir = cfg.DataDir
						srv.CloseAbrupt()
					default:
						srv.Close()
					}
				}
				rep.Durability = append(rep.Durability, c)
				fmt.Printf("durable n=%-7d d=%-3d fsync=%-9s ingest %8.2fms (%.0f pts/s)  overhead %.2fx\n",
					n, duDim, mode, c.IngestMS, c.IngestPtsS, c.OverheadX)
			}
			// Recovery: one-shot reopen of each directory, timed through
			// Ready. The replay reopen writes post-recovery checkpoints, so
			// it is only a cold replay once — measured first and exactly
			// once.
			reopen := func(dir string) (time.Duration, int64, int64) {
				start := time.Now()
				srv, err := server.New(server.Config{Shards: duShards, MaxK: duMaxK, DataDir: dir})
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
				for !srv.Ready() {
					time.Sleep(100 * time.Microsecond)
				}
				el := time.Since(start)
				st := duStats(srv)
				var replayed int64
				for _, sh := range st.Shards {
					replayed += sh.ReplayedPoints
				}
				srv.Close()
				return el, replayed, st.IngestedTotal
			}
			replayEl, replayedCold, totalCold := reopen(replayDir)
			ckptEl, replayedCkpt, totalCkpt := reopen(ckptDir)
			if replayedCold != int64(n) || replayedCkpt != 0 || totalCold != int64(n) || totalCkpt != int64(n) {
				fmt.Fprintf(os.Stderr, "bench: durability recovery shapes wrong: cold replayed %d/%d, checkpoint replayed %d (want %d/%d, 0)\n",
					replayedCold, totalCold, replayedCkpt, n, n)
				os.Exit(1)
			}
			rc := durabilityRecoveryCase{
				N: n, Dim: duDim, Shards: duShards,
				CheckpointMS:   ms(ckptEl),
				ReplayMS:       ms(replayEl),
				ReplayedPoints: replayedCold,
				Speedup:        float64(replayEl) / float64(ckptEl),
			}
			rep.DurabilityRec = append(rep.DurabilityRec, rc)
			fmt.Printf("recover n=%-7d d=%-3d checkpoint %8.2fms  cold replay %8.2fms  speedup %.1fx\n",
				n, duDim, rc.CheckpointMS, rc.ReplayMS, rc.Speedup)
			if n == 100000 && rc.CheckpointMS >= rc.ReplayMS {
				fmt.Fprintf(os.Stderr, "bench: durability: checkpoint recovery (%.2fms) not faster than cold replay (%.2fms) at n=100k\n",
					rc.CheckpointMS, rc.ReplayMS)
				os.Exit(1)
			}
		}
	}

	// Suite 11: cluster — the multi-node coordinator tier end to end, on
	// the in-process harness the chaos tests run on: three real workers
	// behind loopback HTTP, fronted by the coordinator. One bulk ingest
	// through the consistent-hash ring, then churn rounds of a one-point
	// ingest followed by a remote-clique query. Every query's round-1
	// snapshot fan re-reads all three workers, so worker 1's flaky
	// snapshot link (every other request delayed by clSlow) puts the
	// delay straight into query latency — unless hedging launches the
	// second attempt, which FlakyDelay lets through fast.
	{
		const (
			clWorkers = 3
			clShards  = 2
			clN       = 9000
			clDim     = 8
			clMaxK    = 16
			clRounds  = 8
			clSlow    = 60 * time.Millisecond
			clHedge   = 10 * time.Millisecond
		)
		run := func(scenario string, flaky bool, hedge time.Duration) clusterCase {
			var inj *faults.Injector
			if flaky {
				inj = faults.New()
				inj.OnHTTP(faults.FlakyDelay(1, "/snapshot", clSlow))
			}
			h, err := cluster.StartCluster(cluster.HarnessOptions{
				Workers: clWorkers,
				Worker:  server.Config{Shards: clShards, MaxK: clMaxK},
				Coordinator: cluster.Config{
					MaxK:          clMaxK,
					ProbeInterval: -1, // membership is not under test here
					HedgeAfter:    hedge,
				},
				Injector: inj,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			defer h.Close()
			c := cluster.NewClient(cluster.ClientConfig{
				BaseURL:    h.CoordServer.URL,
				HTTPClient: h.CoordServer.Client(),
			})
			rng := rand.New(rand.NewSource(1100))
			pts := randomVectors(rng, clN+clRounds, clDim)
			start := time.Now()
			for lo := 0; lo < clN; lo += ingestBatch {
				if _, err := c.Ingest(ctx, pts[lo:min(lo+ingestBatch, clN)]); err != nil {
					fmt.Fprintln(os.Stderr, "bench: cluster ingest failed:", err)
					os.Exit(1)
				}
			}
			ingestEl := time.Since(start)
			// Build the initial merged state outside the timed rounds.
			if _, err := c.Query(ctx, "remote-clique", clMaxK); err != nil {
				fmt.Fprintln(os.Stderr, "bench: cluster query failed:", err)
				os.Exit(1)
			}
			var maxQ, sumQ time.Duration
			for r := 0; r < clRounds; r++ {
				if _, err := c.Ingest(ctx, pts[clN+r:clN+r+1]); err != nil {
					fmt.Fprintln(os.Stderr, "bench: cluster ingest failed:", err)
					os.Exit(1)
				}
				start := time.Now()
				qr, err := c.Query(ctx, "remote-clique", clMaxK)
				el := time.Since(start)
				if err != nil || qr.Degraded {
					fmt.Fprintf(os.Stderr, "bench: cluster query failed: %v (degraded=%v)\n", err, qr.Degraded)
					os.Exit(1)
				}
				sumQ += el
				if el > maxQ {
					maxQ = el
				}
			}
			st, err := c.Stats(ctx)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench: cluster stats failed:", err)
				os.Exit(1)
			}
			var hedged, retries int64
			for _, w := range st.Workers {
				hedged += w.HedgedRequests
				retries += w.Retries
			}
			hedgeMS, hedgeLabel := -1.0, "off"
			if hedge > 0 {
				hedgeMS, hedgeLabel = ms(hedge), hedge.String()
			}
			cl := clusterCase{
				Workers: clWorkers, N: clN, Dim: clDim, MaxK: clMaxK,
				Rounds: clRounds, Scenario: scenario,
				HedgeMS:    hedgeMS,
				IngestMS:   ms(ingestEl),
				IngestPtsS: float64(clN) / ingestEl.Seconds(),
				QueryMaxMS: ms(maxQ),
				QueryAvgMS: ms(sumQ / clRounds),
				Hedged:     hedged,
				Retries:    retries,
			}
			rep.Cluster = append(rep.Cluster, cl)
			fmt.Printf("cluster %-10s hedge=%-4s ingest %8.2fms (%.0f pts/s)  query max %8.2fms avg %8.2fms  hedged=%d\n",
				scenario, hedgeLabel, cl.IngestMS, cl.IngestPtsS, cl.QueryMaxMS, cl.QueryAvgMS, hedged)
			return cl
		}
		run("healthy", false, -1)
		run("healthy", false, clHedge)
		noHedge := run("flaky-link", true, -1)
		withHedge := run("flaky-link", true, clHedge)
		if withHedge.Hedged == 0 {
			fmt.Fprintln(os.Stderr, "bench: cluster: the flaky-link run with hedging enabled launched no hedges")
			os.Exit(1)
		}
		if withHedge.QueryMaxMS >= noHedge.QueryMaxMS {
			fmt.Fprintf(os.Stderr, "bench: cluster: hedging did not cut the flaky-link worst round (%.2fms vs %.2fms)\n",
				withHedge.QueryMaxMS, noHedge.QueryMaxMS)
			os.Exit(1)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	// The acceptance gates, surfaced loudly so a regression is visible
	// in CI logs without parsing the JSON: PR 2's (flat GMM ≥ 2× at
	// n=100k d=8) and PR 3's (matrix MaxDispersionPairs ≥ 2× at n=4096
	// d=8; cached /query ≥ 5× cold).
	for _, c := range rep.GMM {
		if c.N == 100000 && c.Dim == 8 {
			fmt.Printf("acceptance: GMM n=100k d=8 speedup %.2fx (target >= 2.0x)\n", c.Speedup)
		}
		if c.N == 100000 && c.Dim == 128 {
			fmt.Printf("acceptance: GMM n=100k d=128 blocked vs scalar kernel speedup %.2fx (target >= 2.0x)\n", c.Speedup)
		}
	}
	for _, c := range rep.Solve {
		if c.Algo == "max_dispersion_pairs" && c.N == 4096 && c.Dim == 8 {
			fmt.Printf("acceptance: MaxDispersionPairs n=4096 d=8 speedup %.2fx (target >= 2.0x)\n", c.Speedup)
		}
	}
	for _, c := range rep.QueryCache {
		fmt.Printf("acceptance: cached /query speedup %.1fx (target >= 5.0x)\n", c.Speedup)
	}
	for _, c := range rep.Incremental {
		fmt.Printf("acceptance: incremental_ingest %s n=%d patched vs rebuild %.1fx min / %.1fx avg (target: patched faster at n>=10k)\n",
			c.Mode, c.N, c.SpeedupMin, c.SpeedupAvg)
	}
	for _, c := range rep.DynamicChurn {
		fmt.Printf("acceptance: dynamic_churn delta_patches=%d > full_rebuilds=%d with deletes %d evicting / %d spares / %d tombstoned (target: patches outnumber rebuilds)\n",
			c.DeltaPatches, c.FullRebuilds, c.Evicting, c.Spares, c.Tombstoned)
	}
	for _, c := range rep.SolveParallel {
		if c.Workers > 1 && c.Workers <= runtime.NumCPU() {
			fmt.Printf("acceptance: solve_parallel %s n=%d w=%d speedup %.2fx over 1-worker\n",
				c.Mode, c.N, c.Workers, c.Speedup)
		}
		if c.Mode == "tiled" && c.Workers == 1 {
			fmt.Printf("acceptance: tiled n=%d solved without the n² buffer (%.2fms; callback path %.2fms)\n",
				c.N, c.MS, c.GenericMS)
		}
	}
	for _, c := range rep.DurabilityRec {
		fmt.Printf("acceptance: durability n=%d checkpoint recovery %.1fms vs cold replay %.1fms (%.1fx; target: checkpoint faster at n=100k)\n",
			c.N, c.CheckpointMS, c.ReplayMS, c.Speedup)
	}
	for _, c := range rep.Cluster {
		if c.Scenario == "flaky-link" {
			fmt.Printf("acceptance: cluster flaky-link hedge=%.0fms query max %.2fms avg %.2fms hedged=%d (target: hedging cuts the no-hedge max)\n",
				c.HedgeMS, c.QueryMaxMS, c.QueryAvgMS, c.Hedged)
		}
	}
}
