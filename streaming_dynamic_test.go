package divmax_test

import (
	"math/rand"
	"testing"

	"divmax"
)

// Fully dynamic streams at the public API: NewDynamicStreamCoreset
// must keep the core-set guarantee on the ground set that SURVIVES
// deletion — after removing points (including whole clusters, which
// forces center evictions and local re-covers), solving over the
// core-set must stay within the same quality envelope, versus the
// sequential solve over the surviving points, that the repo demands of
// every insert-only pipeline.

// deleteAllCopies removes every stream point equal to p and returns
// the strongest outcome observed.
func deleteAllCopies(cs divmax.StreamCoreset[divmax.Vector], pts []divmax.Vector) divmax.DeleteOutcome {
	out := divmax.DeleteAbsent
	for _, p := range pts {
		out = max(out, cs.Delete(p))
	}
	return out
}

func TestDynamicCoresetPostDeletionQuality(t *testing.T) {
	centers := []divmax.Vector{{0, 0}, {900, 0}, {0, 900}, {900, 900}}
	const k, kprime, spares = 4, 12, 2

	for _, m := range divmax.Measures {
		rng := rand.New(rand.NewSource(83))
		pts := clusters(rng, centers, 25, 5)

		// Doom the {900,900} cluster; everything else survives.
		var doomed, live []divmax.Vector
		for _, p := range pts {
			if p[0] > 800 && p[1] > 800 {
				doomed = append(doomed, p)
			} else {
				live = append(live, p)
			}
		}

		cs := divmax.NewDynamicStreamCoreset(m, k, kprime, spares, divmax.Euclidean)
		cs.ProcessBatch(pts)
		if out := deleteAllCopies(cs, doomed); out != divmax.DeleteEvicted {
			t.Errorf("%v: wiping a well-separated cluster returned outcome %d, want an eviction", m, out)
		}

		deleted := make(map[[2]float64]bool, len(doomed))
		for _, p := range doomed {
			deleted[[2]float64{p[0], p[1]}] = true
		}
		coreset := cs.Coreset()
		for _, p := range coreset {
			if deleted[[2]float64{p[0], p[1]}] {
				t.Fatalf("%v: core-set still holds deleted point %v", m, p)
			}
		}

		sol, val := divmax.MaxDiversity(m, coreset, k, divmax.Euclidean)
		for _, p := range sol {
			if deleted[[2]float64{p[0], p[1]}] {
				t.Fatalf("%v: post-deletion solution contains deleted point %v", m, p)
			}
		}
		_, seqVal := divmax.MaxDiversity(m, live, k, divmax.Euclidean)
		if val < seqVal/2 {
			t.Errorf("%v: post-deletion value %v below half of sequential %v over the surviving set", m, val, seqVal)
		}
	}
}

// TestDynamicCoresetInterleavedChurn alternates inserts and deletes —
// the stream both grows and shrinks between solves — and checks the
// envelope at every step against the surviving ground set.
func TestDynamicCoresetInterleavedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	centers := []divmax.Vector{{0, 0}, {700, 100}, {150, 800}}
	const k, kprime = 3, 9

	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		cs := divmax.NewDynamicStreamCoreset(m, k, kprime, 2, divmax.Euclidean)
		var ground []divmax.Vector

		for round := 0; round < 6; round++ {
			batch := clusters(rng, centers, 4, 30)
			cs.ProcessBatch(batch)
			ground = append(ground, batch...)

			// Delete a random third of the current ground set.
			rng.Shuffle(len(ground), func(i, j int) { ground[i], ground[j] = ground[j], ground[i] })
			cut := len(ground) / 3
			deleteAllCopies(cs, ground[:cut])
			ground = ground[cut:]

			_, val := divmax.MaxDiversity(m, cs.Coreset(), k, divmax.Euclidean)
			_, seqVal := divmax.MaxDiversity(m, ground, k, divmax.Euclidean)
			if val < seqVal/2 {
				t.Errorf("%v round %d: value %v below half of sequential %v (|ground|=%d)",
					m, round, val, seqVal, len(ground))
			}
		}
	}
}

// TestDynamicCoresetOutcomeClasses pins the three DeleteOutcome values
// through the public constructor: a never-seen value is a tombstone, a
// retained spare deletes silently, a center deletes with an eviction.
func TestDynamicCoresetOutcomeClasses(t *testing.T) {
	cs := divmax.NewDynamicStreamCoreset(divmax.RemoteEdge, 2, 2, 2, divmax.Euclidean)
	// Three far-apart points initialize (k'+1 = 3); the tight neighbor
	// arrives after init, is absorbed by {0,0}, and retained as a spare.
	cs.ProcessBatch([]divmax.Vector{{0, 0}, {100, 0}, {0, 100}, {1, 0}})

	if out := cs.Delete(divmax.Vector{777, 777}); out != divmax.DeleteAbsent {
		t.Fatalf("deleting a never-seen value: outcome %d, want DeleteAbsent", out)
	}
	if out := cs.Delete(divmax.Vector{1, 0}); out != divmax.DeleteSpare {
		t.Fatalf("deleting an absorbed spare: outcome %d, want DeleteSpare", out)
	}

	// Re-absorb the spare, then delete its center: the spare must be
	// promoted into the cover.
	cs.Process(divmax.Vector{1, 0})
	before := len(cs.Coreset())
	if out := cs.Delete(divmax.Vector{0, 0}); out != divmax.DeleteEvicted {
		t.Fatalf("deleting a center: outcome %d, want DeleteEvicted", out)
	}
	found := false
	for _, p := range cs.Coreset() {
		if p[0] == 1 && p[1] == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("after evicting {0,0}, its spare {1,0} was not promoted (coreset %v, was %d points)",
			cs.Coreset(), before)
	}
}
