package divmax

import (
	"divmax/internal/mapreduce"
	"divmax/internal/mrdiv"
)

// MRConfig tunes the MapReduce solvers: the number of partitions
// (Parallelism ℓ), the per-partition kernel size KPrime, the partitioning
// policy, the optional randomized delegate cap of Theorem 7, the worker
// goroutine bound, and an optional Metrics sink for per-round statistics.
type MRConfig = mrdiv.Config

// MRPartitioning selects how round 1 distributes points to reducers.
type MRPartitioning = mrdiv.Partitioning

// Partitioning policies: round-robin dealing (the default arbitrary
// partition), seeded uniform random keys (Theorem 7), and contiguous
// chunks (adversarial when the input is spatially sorted, §7.2).
const (
	PartitionRoundRobin = mrdiv.PartitionRoundRobin
	PartitionRandom     = mrdiv.PartitionRandom
	PartitionChunks     = mrdiv.PartitionChunks
)

// MRMetrics accumulates per-round MapReduce statistics (reducer counts,
// local and total memory in points, durations).
type MRMetrics = mapreduce.Metrics

// RandomizedDelegateCap returns the per-cluster delegate budget
// Θ(max{log n, k/ℓ}) of the randomized 2-round algorithm (Theorem 7).
// Set it as MRConfig.DelegateCap together with PartitionRandom.
func RandomizedDelegateCap(n, k, ell int) int {
	return mrdiv.RandomizedDelegateCap(n, k, ell)
}

// MapReduceSolve runs the paper's 2-round MapReduce algorithm
// (Theorem 6): round 1 builds a composable core-set on each of the ℓ
// partitions in parallel (GMM for remote-edge/-cycle, GMM-EXT for the
// rest), round 2 aggregates the union in a single reducer and runs the
// sequential α-approximation. The approximation factor is α+ε with local
// memory Θ(√(k′n)) per reducer at ℓ = √(n/k′). Reducers execute as
// goroutines on the in-process MapReduce engine.
func MapReduceSolve[P any](m Measure, pts []P, k int, cfg MRConfig, d Distance[P]) ([]P, error) {
	return mrdiv.TwoRound(m, pts, k, cfg, d)
}

// MapReduceCoreset runs only round 1 of MapReduceSolve and returns the
// aggregated composable core-set, for callers that post-process core-sets
// themselves.
func MapReduceCoreset[P any](m Measure, pts []P, k int, cfg MRConfig, d Distance[P]) ([]P, error) {
	return mrdiv.CollectCoreset(m, pts, k, cfg, d)
}

// MapReduceSolveCoresets runs only round 2 of MapReduceSolve on
// composable core-sets built elsewhere — by Coreset, MapReduceCoreset, or
// independent StreamCoreset processors (e.g. the shards of a long-running
// service): the union is aggregated in one reducer and solved with the
// sequential α-approximation. Because the core-sets are composable
// (Theorems 4–5), the answer is within α+ε of the optimum over the union
// of the inputs the core-sets were built from, regardless of how the data
// was split. Only Workers, LocalMemoryLimit, and Metrics are read from
// cfg.
func MapReduceSolveCoresets[P any](m Measure, coresets [][]P, k int, cfg MRConfig, d Distance[P]) ([]P, error) {
	return mrdiv.SolveCoresets(m, coresets, k, cfg, d)
}

// MapReduceSolve3 runs the 3-round, memory-reduced algorithm of
// Theorem 10 for the four delegate-based measures: generalized core-sets
// (multiplicities instead of delegates) shrink the aggregation round from
// k·k′ to k′ points per partition; a third round re-materializes the
// chosen delegates inside their original partitions.
func MapReduceSolve3[P any](m Measure, pts []P, k int, cfg MRConfig, d Distance[P]) ([]P, error) {
	return mrdiv.ThreeRound(m, pts, k, cfg, d)
}

// MapReduceSolveRecursive runs the multi-round algorithm of Theorem 8:
// when even the union of core-sets exceeds the local memory budget
// (points per reducer), the core-set construction is reapplied to the
// union until it fits, then the sequential algorithm finishes. It returns
// the solution and the number of rounds used.
func MapReduceSolveRecursive[P any](m Measure, pts []P, k, memBudget int, cfg MRConfig, d Distance[P]) ([]P, int, error) {
	return mrdiv.Recursive(m, pts, k, memBudget, cfg, d)
}
