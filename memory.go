package divmax

import (
	"fmt"
	"math"

	"divmax/internal/metric"
)

// Model identifies one of the paper's algorithmic settings (the columns
// of Table 3).
type Model int

const (
	// Streaming1Pass is the single-pass algorithm of Theorem 3.
	Streaming1Pass Model = iota
	// Streaming2Pass is the generalized-core-set algorithm of Theorem 9
	// (delegate-based measures only).
	Streaming2Pass
	// MR2Round is the deterministic 2-round algorithm of Theorem 6.
	MR2Round
	// MR2RoundRandomized is the randomized 2-round algorithm of
	// Theorem 7 (delegate-based measures only).
	MR2RoundRandomized
	// MR3Round is the deterministic 3-round algorithm of Theorem 10
	// (delegate-based measures only).
	MR3Round
)

var modelNames = map[Model]string{
	Streaming1Pass:     "streaming (1 pass)",
	Streaming2Pass:     "streaming (2 passes)",
	MR2Round:           "MapReduce (2 rounds)",
	MR2RoundRandomized: "MapReduce (2 rounds, randomized)",
	MR3Round:           "MapReduce (3 rounds)",
}

// String names the model as in Table 3.
func (mo Model) String() string {
	if s, ok := modelNames[mo]; ok {
		return s
	}
	return fmt.Sprintf("Model(%d)", int(mo))
}

// MemoryBound instantiates the paper's Table 3: the asymptotic working
// memory (streaming) or local memory M_L (MapReduce), in points, of the
// given algorithm for measure m on n points in doubling dimension D with
// target approximation α+eps. It returns both a concrete estimate
// (constants dropped, Θ evaluated at the arguments) and the formula it
// evaluates. Combinations Table 3 leaves blank — the 2-pass, randomized,
// and 3-round algorithms exist only for the four delegate-based
// measures — return an error.
//
// The estimate is for capacity planning and tests; actual processors
// report their true usage (e.g. StreamCoreset.StoredPoints, MRMetrics).
func MemoryBound(m Measure, model Model, n, k int, eps float64, D int) (points int, formula string, err error) {
	if n < 1 || k < 1 || k > n {
		return 0, "", fmt.Errorf("divmax: MemoryBound requires 1 <= k <= n, got k=%d n=%d", k, n)
	}
	if eps <= 0 || eps > 1 {
		return 0, "", fmt.Errorf("divmax: MemoryBound requires 0 < eps <= 1, got %g", eps)
	}
	if D < 0 {
		return 0, "", fmt.Errorf("divmax: MemoryBound requires D >= 0, got %d", D)
	}
	if !m.Valid() {
		return 0, "", fmt.Errorf("divmax: invalid measure %d", int(m))
	}
	injective := m.NeedsInjectiveProxy()
	alpha := m.SequentialAlpha()
	fn, fk := float64(n), float64(k)
	pow := func(base float64) float64 { return math.Pow(base, float64(D)) }
	clip := func(x float64) int {
		if x >= math.MaxInt/2 || math.IsInf(x, 1) {
			return math.MaxInt
		}
		if x < 1 {
			return 1
		}
		return int(math.Ceil(x))
	}
	switch model {
	case Streaming1Pass:
		if injective {
			return clip(pow(alpha/eps) * fk * fk), "Θ((α/ε)^D·k²)", nil
		}
		return clip(pow(alpha/eps) * fk), "Θ((α/ε)^D·k)", nil
	case Streaming2Pass:
		if !injective {
			return 0, "", fmt.Errorf("divmax: %v has no 2-pass algorithm (already Θ((α/ε)^D·k) in one pass)", m)
		}
		return clip(pow(alpha*alpha/eps) * fk), "Θ((α²/ε)^D·k)", nil
	case MR2Round:
		if injective {
			return clip(fk * math.Sqrt(pow(alpha/eps)*fn)), "Θ(k·√((α/ε)^D·n))", nil
		}
		return clip(math.Sqrt(pow(alpha/eps) * fk * fn)), "Θ(√((α/ε)^D·k·n))", nil
	case MR2RoundRandomized:
		if !injective {
			return 0, "", fmt.Errorf("divmax: %v does not use the randomized delegate cap", m)
		}
		a := pow(alpha/eps) * fk * fk
		b := math.Sqrt(pow(alpha/eps) * fk * fn * math.Log(fn+1))
		if a > b {
			return clip(a), "Θ((α/ε)^D·k²)", nil
		}
		return clip(b), "Θ(√((α/ε)^D·k·n·log n))", nil
	case MR3Round:
		if !injective {
			return 0, "", fmt.Errorf("divmax: %v has no 3-round algorithm (2 rounds already reach Θ(√((α/ε)^D·k·n)))", m)
		}
		return clip(math.Sqrt(pow(alpha*alpha/eps) * fk * fn)), "Θ(√((α²/ε)^D·k·n))", nil
	default:
		return 0, "", fmt.Errorf("divmax: unknown model %d", int(model))
	}
}

// TheoreticalKernelSize exposes the kernel sizes k′ = (c/ε′)^D·k of
// Lemmas 3–6 for callers that want the worst-case guarantee rather than
// the small empirical multiples of k the experiments use. The variant is
// chosen by measure and setting: streaming or MapReduce.
func TheoreticalKernelSize(m Measure, streaming bool, eps float64, dimension, k int) int {
	var variant metric.Kernel
	switch {
	case streaming && m.NeedsInjectiveProxy():
		variant = metric.KernelSMMExt
	case streaming:
		variant = metric.KernelSMM
	case m.NeedsInjectiveProxy():
		variant = metric.KernelGMMExt
	default:
		variant = metric.KernelGMM
	}
	return metric.TheoreticalKernelSize(variant, eps, dimension, k)
}
