package divmax_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"divmax"
)

func randomVectors(rng *rand.Rand, n, dim int) []divmax.Vector {
	pts := make([]divmax.Vector, n)
	for i := range pts {
		v := make(divmax.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		pts[i] = v
	}
	return pts
}

func clusters(rng *rand.Rand, centers []divmax.Vector, perCluster int, spread float64) []divmax.Vector {
	var pts []divmax.Vector
	for i := 0; i < perCluster; i++ {
		for _, c := range centers {
			p := make(divmax.Vector, len(c))
			for j := range c {
				p[j] = c[j] + rng.Float64()*spread
			}
			pts = append(pts, p)
		}
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

func TestParseMeasureRoundTrip(t *testing.T) {
	for _, m := range divmax.Measures {
		got, err := divmax.ParseMeasure(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMeasure(%q) = (%v, %v)", m.String(), got, err)
		}
	}
}

func TestMaxDiversityAgainstExact(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomVectors(rng, 10+rng.Intn(4), 2)
		k := 2 + rng.Intn(2)
		for _, m := range divmax.Measures {
			_, got := divmax.MaxDiversity(m, pts, k, divmax.Euclidean)
			_, opt, _ := divmax.Exact(m, pts, k, divmax.Euclidean)
			if got < opt/m.SequentialAlpha()-1e-9 || got > opt+1e-9 {
				t.Logf("%v: got %v, opt %v (seed %d)", m, got, opt, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCoresetPreservesDiversity(t *testing.T) {
	// A solution computed on the core-set must be close to one computed
	// on the full data.
	rng := rand.New(rand.NewSource(2))
	pts := clusters(rng, []divmax.Vector{{0, 0}, {500, 0}, {0, 500}, {500, 500}}, 100, 5)
	for _, m := range divmax.Measures {
		core := divmax.Coreset(m, pts, 4, 8, divmax.Euclidean)
		_, onCore := divmax.MaxDiversity(m, core, 4, divmax.Euclidean)
		_, onFull := divmax.MaxDiversity(m, pts, 4, divmax.Euclidean)
		if onCore < onFull*0.8 {
			t.Errorf("%v: core-set solution %v below 80%% of full-data solution %v", m, onCore, onFull)
		}
	}
}

func TestCoresetComposability(t *testing.T) {
	// Union of per-part core-sets is a core-set of the union.
	rng := rand.New(rand.NewSource(3))
	pts := randomVectors(rng, 600, 3)
	k, kprime := 3, 6
	var union []divmax.Vector
	for i := 0; i < 3; i++ {
		part := pts[i*200 : (i+1)*200]
		union = append(union, divmax.Coreset(divmax.RemoteEdge, part, k, kprime, divmax.Euclidean)...)
	}
	_, onUnion := divmax.MaxDiversity(divmax.RemoteEdge, union, k, divmax.Euclidean)
	_, onFull := divmax.MaxDiversity(divmax.RemoteEdge, pts, k, divmax.Euclidean)
	if onUnion < onFull*0.6 {
		t.Errorf("composed core-set solution %v too far below full solution %v", onUnion, onFull)
	}
}

func TestStreamingMatchesMapReduceOnClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := clusters(rng, []divmax.Vector{{0, 0}, {1000, 0}, {0, 1000}}, 80, 1)
	k, kprime := 3, 6

	streamSol := divmax.StreamingSolve(divmax.RemoteEdge, divmax.SliceStream(pts), k, kprime, divmax.Euclidean)
	mrSol, err := divmax.MapReduceSolve(divmax.RemoteEdge, pts, k, divmax.MRConfig{Parallelism: 4, KPrime: kprime}, divmax.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	vs, _ := divmax.Evaluate(divmax.RemoteEdge, streamSol, divmax.Euclidean)
	vm, _ := divmax.Evaluate(divmax.RemoteEdge, mrSol, divmax.Euclidean)
	if vs < 990 || vm < 990 {
		t.Fatalf("cluster separation missed: streaming %v, mapreduce %v", vs, vm)
	}
}

func TestStreamCoresetIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomVectors(rng, 500, 2)
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		sc := divmax.NewStreamCoreset(m, 3, 6, divmax.Euclidean)
		for _, p := range pts {
			sc.Process(p)
		}
		core := sc.Coreset()
		if len(core) < 3 {
			t.Errorf("%v: core-set too small: %d", m, len(core))
		}
		if sc.StoredPoints() > 100 {
			t.Errorf("%v: stored %d points; memory should be tiny", m, sc.StoredPoints())
		}
		sol, val := divmax.MaxDiversity(m, core, 3, divmax.Euclidean)
		if len(sol) != 3 || val <= 0 {
			t.Errorf("%v: solution (%v, %v)", m, sol, val)
		}
	}
}

func TestTwoPassStreamingPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomVectors(rng, 400, 2)
	sol, err := divmax.StreamingSolveTwoPass(divmax.RemoteClique, divmax.SliceStream(pts), 4, 8, divmax.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol) != 4 {
		t.Fatalf("solution size = %d, want 4", len(sol))
	}
	if _, err := divmax.StreamingSolveTwoPass(divmax.RemoteEdge, divmax.SliceStream(pts), 4, 8, divmax.Euclidean); err == nil {
		t.Fatal("remote-edge: expected error from two-pass")
	}
}

func TestMapReduce3PublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomVectors(rng, 300, 2)
	sol, err := divmax.MapReduceSolve3(divmax.RemoteTree, pts, 4, divmax.MRConfig{Parallelism: 3, KPrime: 8}, divmax.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol) != 4 {
		t.Fatalf("solution size = %d, want 4", len(sol))
	}
}

func TestMapReduceRecursivePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomVectors(rng, 500, 2)
	sol, rounds, err := divmax.MapReduceSolveRecursive(divmax.RemoteEdge, pts, 3, 64, divmax.MRConfig{Parallelism: 1, KPrime: 6}, divmax.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol) != 3 || rounds < 2 {
		t.Fatalf("size=%d rounds=%d", len(sol), rounds)
	}
}

func TestGeneralizedCoresetPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomVectors(rng, 200, 2)
	k, kprime := 3, 6
	g := divmax.GeneralizedCoresetOf(pts, k, kprime, divmax.Euclidean)
	if g.Size() != kprime {
		t.Fatalf("generalized size = %d, want %d", g.Size(), kprime)
	}
	if g.ExpandedSize() > k*kprime {
		t.Fatalf("expanded size = %d exceeds k·k'", g.ExpandedSize())
	}
	delta := divmax.KernelRadius(pts, kprime, divmax.Euclidean)
	inst, err := divmax.InstantiateCoreset(g, pts, delta+1e-9, divmax.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst) != g.ExpandedSize() {
		t.Fatalf("instantiated %d points, want %d", len(inst), g.ExpandedSize())
	}
}

func TestRandomizedDelegateCapPublicAPI(t *testing.T) {
	if got := divmax.RandomizedDelegateCap(1023, 4, 4); got != 10 {
		t.Fatalf("cap = %d, want 10", got)
	}
}

func TestSparseVectorWorkflow(t *testing.T) {
	// Diversity over documents with the cosine distance, end to end.
	docs := []divmax.SparseVector{
		divmax.NewSparseVector([]uint32{0, 1}, []float64{5, 1}),
		divmax.NewSparseVector([]uint32{0, 1}, []float64{5, 2}),
		divmax.NewSparseVector([]uint32{2, 3}, []float64{4, 4}),
		divmax.NewSparseVector([]uint32{4}, []float64{7}),
	}
	sol, val := divmax.MaxDiversity(divmax.RemoteEdge, docs, 3, divmax.CosineDistance)
	if len(sol) != 3 {
		t.Fatalf("solution size = %d", len(sol))
	}
	// The two near-parallel documents must not both appear.
	if val < 0.5 {
		t.Fatalf("remote-edge = %v; picked near-duplicate documents", val)
	}
}

func TestSetWorkflow(t *testing.T) {
	sets := []divmax.Set{
		divmax.NewSet(1, 2, 3),
		divmax.NewSet(1, 2, 4),
		divmax.NewSet(10, 11, 12),
		divmax.NewSet(20, 21),
	}
	sol, val := divmax.MaxDiversity(divmax.RemoteEdge, sets, 3, divmax.JaccardDistance)
	if len(sol) != 3 || val < 0.9 {
		t.Fatalf("set workflow: size=%d val=%v", len(sol), val)
	}
}

func TestEvaluateExactnessFlags(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	small := randomVectors(rng, 8, 2)
	if _, exact := divmax.Evaluate(divmax.RemoteCycle, small, divmax.Euclidean); !exact {
		t.Error("remote-cycle on 8 points should be exact")
	}
	big := randomVectors(rng, 25, 2)
	if _, exact := divmax.Evaluate(divmax.RemoteCycle, big, divmax.Euclidean); exact {
		t.Error("remote-cycle on 25 points should be heuristic")
	}
	if v, _ := divmax.Evaluate(divmax.RemoteEdge, randomVectors(rng, 1, 2), divmax.Euclidean); !math.IsInf(v, 1) {
		t.Error("remote-edge singleton should be +Inf")
	}
}

func TestMaxDiversityPartitionedPublicAPI(t *testing.T) {
	// Quota scenario: at most one result per "site".
	pts := []divmax.Grouped[divmax.Vector]{
		{Point: divmax.Vector{0, 0}, Group: 0},
		{Point: divmax.Vector{100, 0}, Group: 0},
		{Point: divmax.Vector{0, 100}, Group: 1},
		{Point: divmax.Vector{100, 100}, Group: 2},
	}
	sol, val, err := divmax.MaxDiversityPartitioned(pts, []int{1, 1, 1}, 3, divmax.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol) != 3 || val <= 0 {
		t.Fatalf("(%v, %v)", sol, val)
	}
	if _, _, err := divmax.MaxDiversityPartitioned(pts, []int{1, 1, 1}, 4, divmax.Euclidean); err == nil {
		t.Fatal("infeasible k: expected error")
	}
}
