package divmax_test

import (
	"strings"
	"testing"

	"divmax"
)

func TestMemoryBoundTable3Shapes(t *testing.T) {
	n, k, eps, D := 1_000_000, 16, 0.5, 3

	// Remote-edge: 1-pass streaming memory independent of n.
	small, f, err := divmax.MemoryBound(divmax.RemoteEdge, divmax.Streaming1Pass, n, k, eps, D)
	if err != nil || !strings.Contains(f, "k)") {
		t.Fatalf("(%d, %q, %v)", small, f, err)
	}
	bigger, _, err := divmax.MemoryBound(divmax.RemoteEdge, divmax.Streaming1Pass, 100*n, k, eps, D)
	if err != nil || bigger != small {
		t.Fatalf("1-pass streaming memory grew with n: %d -> %d", small, bigger)
	}

	// Delegate measures pay k² in one pass, k with two passes.
	onePass, _, err := divmax.MemoryBound(divmax.RemoteClique, divmax.Streaming1Pass, n, k, eps, D)
	if err != nil {
		t.Fatal(err)
	}
	twoPass, _, err := divmax.MemoryBound(divmax.RemoteClique, divmax.Streaming2Pass, n, k, eps, D)
	if err != nil {
		t.Fatal(err)
	}
	if twoPass >= onePass {
		t.Fatalf("2-pass memory (%d) not below 1-pass (%d)", twoPass, onePass)
	}

	// MapReduce: 3 rounds shrink the delegate measures' M_L versus 2 in
	// the regime the theorems target, k > α^D (comparing Theorems 6 and
	// 10: k·√((α/ε)^D·n) vs √((α/ε)^D·α^D·k·n)). remote-clique has α=2;
	// with D=2 and k=16 > α^D=4 the saving shows.
	mr2, _, err := divmax.MemoryBound(divmax.RemoteClique, divmax.MR2Round, n, 16, eps, 2)
	if err != nil {
		t.Fatal(err)
	}
	mr3, _, err := divmax.MemoryBound(divmax.RemoteClique, divmax.MR3Round, n, 16, eps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mr3 >= mr2 {
		t.Fatalf("3-round M_L (%d) not below 2-round (%d)", mr3, mr2)
	}

	// MapReduce memory is sublinear in n.
	if mr2 >= n {
		t.Fatalf("MR M_L (%d) not sublinear in n (%d)", mr2, n)
	}
}

func TestMemoryBoundRandomizedRegimes(t *testing.T) {
	// Small k: the √(kn log n) branch; huge k: the k² branch.
	_, f1, err := divmax.MemoryBound(divmax.RemoteClique, divmax.MR2RoundRandomized, 1_000_000, 8, 0.5, 2)
	if err != nil || !strings.Contains(f1, "log n") {
		t.Fatalf("(%q, %v), want the √(kn log n) regime", f1, err)
	}
	_, f2, err := divmax.MemoryBound(divmax.RemoteClique, divmax.MR2RoundRandomized, 10_000, 2_000, 0.5, 2)
	if err != nil || !strings.Contains(f2, "k²") {
		t.Fatalf("(%q, %v), want the k² regime", f2, err)
	}
}

func TestMemoryBoundInvalidCombos(t *testing.T) {
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteCycle} {
		for _, model := range []divmax.Model{divmax.Streaming2Pass, divmax.MR2RoundRandomized, divmax.MR3Round} {
			if _, _, err := divmax.MemoryBound(m, model, 1000, 4, 0.5, 2); err == nil {
				t.Errorf("%v/%v: expected error", m, model)
			}
		}
	}
	if _, _, err := divmax.MemoryBound(divmax.RemoteEdge, divmax.Streaming1Pass, 10, 20, 0.5, 2); err == nil {
		t.Error("k > n: expected error")
	}
	if _, _, err := divmax.MemoryBound(divmax.RemoteEdge, divmax.Streaming1Pass, 100, 4, 0, 2); err == nil {
		t.Error("eps = 0: expected error")
	}
	if _, _, err := divmax.MemoryBound(divmax.RemoteEdge, divmax.Model(99), 100, 4, 0.5, 2); err == nil {
		t.Error("unknown model: expected error")
	}
}

func TestModelString(t *testing.T) {
	if s := divmax.MR3Round.String(); !strings.Contains(s, "3 rounds") {
		t.Errorf("MR3Round.String() = %q", s)
	}
	if s := divmax.Model(42).String(); !strings.Contains(s, "42") {
		t.Errorf("invalid model String = %q", s)
	}
}

func TestTheoreticalKernelSizePublicAPI(t *testing.T) {
	// Streaming kernels are larger than MapReduce kernels (32/64 vs 8/16
	// constants), and delegate measures dominate their plain peers.
	k, eps, D := 4, 1.0, 1
	gmm := divmax.TheoreticalKernelSize(divmax.RemoteEdge, false, eps, D, k)
	gmmExt := divmax.TheoreticalKernelSize(divmax.RemoteClique, false, eps, D, k)
	smm := divmax.TheoreticalKernelSize(divmax.RemoteEdge, true, eps, D, k)
	smmExt := divmax.TheoreticalKernelSize(divmax.RemoteClique, true, eps, D, k)
	if !(gmm < gmmExt && gmmExt < smm && smm < smmExt) {
		t.Fatalf("kernel ordering violated: %d %d %d %d", gmm, gmmExt, smm, smmExt)
	}
	if gmm != 16*k {
		t.Fatalf("GMM kernel at eps=1, D=1 = %d, want %d", gmm, 16*k)
	}
}
