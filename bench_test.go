// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 7) at benchmark scale, plus the ablations listed in
// DESIGN.md §8. Each benchmark reports the experiment's headline quantity
// via b.ReportMetric (approximation ratio, points/s, speedup), so
// `go test -bench . -benchmem` reproduces the shape of the paper's
// results alongside timing. cmd/experiments runs the same experiments at
// larger, flag-controlled scale.
package divmax_test

import (
	"testing"

	"divmax"
	"divmax/internal/dataset"
	"divmax/internal/experiments"
)

// benchScale keeps the figures fast enough for -bench . while preserving
// the trends; cmd/experiments defaults are ~10× larger.
func benchScale() experiments.Scale {
	return experiments.Scale{N: 5000, Runs: 2, Seed: 20170101}
}

func reportGrid(b *testing.B, g *experiments.Grid) {
	b.Helper()
	for _, c := range g.Cells {
		b.ReportMetric(c.Ratio, rationame(c.K, c.KPrime))
	}
}

func rationame(k, kprime int) string {
	return "ratio_k" + itoa(k) + "_k'" + itoa(kprime)
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig1StreamingLyrics regenerates Figure 1: the streaming
// algorithm's remote-edge approximation ratio on the (simulated)
// musiXmatch corpus under the cosine distance, k ∈ {8,32},
// k′ ∈ {k,2k,4k,8k}. Paper shape: ratios fall toward 1 as k′ grows and
// rise with k (up to ≈2.4 at k=128, k′=k).
func BenchmarkFig1StreamingLyrics(b *testing.B) {
	s := benchScale()
	s.N = 2000
	for i := 0; i < b.N; i++ {
		grid, err := experiments.Fig1(s, []int{8, 32})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportGrid(b, grid)
		}
	}
}

// BenchmarkFig2StreamingSynthetic regenerates Figure 2: the streaming
// ratio on the 3-D sphere dataset with the linear k′ progression
// {k, k+4, k+16, k+64}. Paper shape: ratios far above 1 at k′=k (the
// planted far points are hard to hit) dropping steeply as k′ grows.
func BenchmarkFig2StreamingSynthetic(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		grid, err := experiments.Fig2(s, []int{8, 32})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportGrid(b, grid)
		}
	}
}

// BenchmarkFig3Throughput regenerates Figure 3: the streaming kernel's
// sustained points/s on the lyrics corpus (plus the synthetic companion).
// Paper shape: inversely proportional to k and k′; the synthetic rate is
// higher because Euclidean distances are cheaper than cosine on sparse
// vectors.
func BenchmarkFig3Throughput(b *testing.B) {
	s := benchScale()
	s.N = 3000
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(s, []int{8, 32})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range res.Cells {
				b.ReportMetric(c.PointsSec, "pts/s_k"+itoa(c.K)+"_k'"+itoa(c.KPrime))
			}
		}
	}
}

// BenchmarkFig4MapReduce regenerates Figure 4: the 2-round MapReduce
// remote-edge ratio across parallelism ℓ ∈ {2,4,8,16} and k′ multiples.
// Paper shape: ratios near 1 everywhere, improving with k′ and with ℓ at
// fixed k′ (more reducers → larger aggregate core-set).
func BenchmarkFig4MapReduce(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(s, 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range res.Cells {
				b.ReportMetric(c.Ratio, "ratio_l"+itoa(c.Parallelism)+"_k'"+itoa(c.KPrime))
			}
		}
	}
}

// BenchmarkTable4CPPUvsAFZ regenerates Table 4: CPPU (this paper) vs AFZ
// (local-search core-sets) on remote-clique, 16 reducers, CPPU k′=128.
// Paper shape: comparable approximation (both close to 1), CPPU faster
// by orders of magnitude (three at the paper's 4M-point scale; smaller
// here at benchmark scale — the gap widens with n).
func BenchmarkTable4CPPUvsAFZ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(experiments.Table4Config{
			N: 20000, Ks: []int{4, 6, 8}, Reducers: 16, CPPUKPrime: 128, RefRuns: 2, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Rows {
				b.ReportMetric(r.AFZRatio, "afz_ratio_k"+itoa(r.K))
				b.ReportMetric(r.CPPURatio, "cppu_ratio_k"+itoa(r.K))
				b.ReportMetric(r.AFZTime.Seconds()/r.CPPUTime.Seconds(), "afz/cppu_time_k"+itoa(r.K))
			}
		}
	}
}

// BenchmarkFig5Scalability regenerates Figure 5: wall-clock time versus
// processors p (p=1 = streaming) and dataset size n, final core-set size
// fixed. Paper shape: superlinear speedup in p (per-reducer work is
// O(ns/(kp²))), linear growth in n.
func BenchmarkFig5Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(experiments.Fig5Config{
			BaseN: 20000, SizeSteps: 2, Processors: []int{1, 2, 4, 8},
			K: 16, AggregateSize: 256, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Report p=2 vs p=8 speedup on the largest n.
			var t2, t8 float64
			for _, c := range res.Cells {
				if c.N == 40000 && c.Processors == 2 {
					t2 = c.Time.Seconds()
				}
				if c.N == 40000 && c.Processors == 8 {
					t8 = c.Time.Seconds()
				}
			}
			if t8 > 0 {
				b.ReportMetric(t2/t8, "speedup_p2->p8")
			}
		}
	}
}

// BenchmarkAdversarialPartitioning regenerates the §7.2 experiment:
// random versus Morton-chunk (adversarial) partitioning. Paper shape:
// adversarial ratios worsen by up to ~10%.
func BenchmarkAdversarialPartitioning(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		random, adv, err := experiments.Adversarial(s, 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			avg := func(r *experiments.MRResult) float64 {
				t := 0.0
				for _, c := range r.Cells {
					t += c.Ratio
				}
				return t / float64(len(r.Cells))
			}
			b.ReportMetric(avg(random), "ratio_random")
			b.ReportMetric(avg(adv), "ratio_adversarial")
		}
	}
}

// --- Ablations (DESIGN.md §8) ---

// BenchmarkAblationCoresetConstructions compares the three core-set
// constructions at equal k, k′: GMM (kernel only), GMM-EXT (delegates),
// GMM-GEN (multiplicities): build time and output size.
func BenchmarkAblationCoresetConstructions(b *testing.B) {
	pts, err := dataset.Sphere(dataset.SphereConfig{N: 50000, K: 16, Dim: 3, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	k, kprime := 16, 64
	b.Run("GMM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core := divmax.Coreset(divmax.RemoteEdge, pts, k, kprime, divmax.Euclidean)
			if i == b.N-1 {
				b.ReportMetric(float64(len(core)), "coreset_points")
			}
		}
	})
	b.Run("GMM-EXT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core := divmax.Coreset(divmax.RemoteClique, pts, k, kprime, divmax.Euclidean)
			if i == b.N-1 {
				b.ReportMetric(float64(len(core)), "coreset_points")
			}
		}
	})
	b.Run("GMM-GEN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen := divmax.GeneralizedCoresetOf(pts, k, kprime, divmax.Euclidean)
			if i == b.N-1 {
				b.ReportMetric(float64(gen.Size()), "coreset_points")
				b.ReportMetric(float64(gen.ExpandedSize()), "expanded_points")
			}
		}
	})
}

// BenchmarkAblationStreamVsMRCoresetQuality isolates the paper's §7.2
// explanation for MapReduce's better ratios: at equal aggregate core-set
// size, the MR kernel (2-approx GMM) beats the streaming kernel
// (8-approx doubling algorithm).
func BenchmarkAblationStreamVsMRCoresetQuality(b *testing.B) {
	pts, err := dataset.Sphere(dataset.SphereConfig{N: 20000, K: 16, Dim: 3, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	pts = dataset.Shuffle(pts, 14)
	k, aggregate := 16, 128
	for i := 0; i < b.N; i++ {
		streamSol := divmax.StreamingSolve(divmax.RemoteEdge, divmax.SliceStream(pts), k, aggregate, divmax.Euclidean)
		mrSol, err := divmax.MapReduceSolve(divmax.RemoteEdge, pts, k,
			divmax.MRConfig{Parallelism: 4, KPrime: aggregate / 4}, divmax.Euclidean)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			vs, _ := divmax.Evaluate(divmax.RemoteEdge, streamSol, divmax.Euclidean)
			vm, _ := divmax.Evaluate(divmax.RemoteEdge, mrSol, divmax.Euclidean)
			b.ReportMetric(vs, "edge_stream")
			b.ReportMetric(vm, "edge_mapreduce")
		}
	}
}

// BenchmarkAblationDelegateCap measures the randomized 2-round variant
// (Theorem 7): shuffle volume with the Θ(max{log n, k/ℓ}) cap versus the
// deterministic k−1 delegates.
func BenchmarkAblationDelegateCap(b *testing.B) {
	pts, err := dataset.Sphere(dataset.SphereConfig{N: 30000, K: 32, Dim: 3, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	k, kprime, ell := 32, 64, 8
	run := func(b *testing.B, cap int, label string) {
		for i := 0; i < b.N; i++ {
			var m divmax.MRMetrics
			cfg := divmax.MRConfig{Parallelism: ell, KPrime: kprime, DelegateCap: cap,
				Partitioning: divmax.PartitionRandom, Seed: 23, Metrics: &m}
			if _, err := divmax.MapReduceSolve(divmax.RemoteClique, pts, k, cfg, divmax.Euclidean); err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(m.Rounds()[1].TotalInput), label)
			}
		}
	}
	b.Run("deterministic", func(b *testing.B) { run(b, 0, "aggregate_points") })
	b.Run("randomized", func(b *testing.B) {
		run(b, divmax.RandomizedDelegateCap(len(pts), k, ell), "aggregate_points")
	})
}

// BenchmarkSequentialSolvers times the sequential α-approximations on a
// core-set-sized input (the round-2 workload of every pipeline).
func BenchmarkSequentialSolvers(b *testing.B) {
	pts, err := dataset.Sphere(dataset.SphereConfig{N: 2048, K: 32, Dim: 3, Seed: 19})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range divmax.Measures {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				divmax.MaxDiversity(m, pts, 32, divmax.Euclidean)
			}
		})
	}
}

// BenchmarkStreamingKernelPerPoint times a single Process call at the
// paper's largest configuration ratio (k=128, k′=8k), the worst cell of
// Figure 3.
func BenchmarkStreamingKernelPerPoint(b *testing.B) {
	docs, err := dataset.Lyrics(dataset.LyricsConfig{N: 20000, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	sc := divmax.NewStreamCoreset(divmax.RemoteEdge, 128, 1024, divmax.CosineDistance)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Process(docs[i%len(docs)])
	}
}
