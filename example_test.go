package divmax_test

import (
	"fmt"

	"divmax"
)

func ExampleMaxDiversity() {
	pts := []divmax.Vector{
		{0, 0}, {0.1, 0}, {0.2, 0.1}, // a tight cluster
		{10, 0}, // far east
		{0, 10}, // far north
	}
	sol, val := divmax.MaxDiversity(divmax.RemoteEdge, pts, 3, divmax.Euclidean)
	fmt.Printf("%d points, min pairwise distance %.2f\n", len(sol), val)
	// Output: 3 points, min pairwise distance 10.00
}

func ExampleEvaluate() {
	square := []divmax.Vector{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	tree, exact := divmax.Evaluate(divmax.RemoteTree, square, divmax.Euclidean)
	fmt.Printf("MST weight %.0f (exact=%v)\n", tree, exact)
	// Output: MST weight 3 (exact=true)
}

func ExampleStreamingSolve() {
	// Points arrive one at a time; memory stays independent of the
	// stream length.
	var pts []divmax.Vector
	for i := 0; i < 1000; i++ {
		pts = append(pts, divmax.Vector{float64(i % 10), float64(i % 7)})
	}
	pts = append(pts, divmax.Vector{1000, 1000})

	sol := divmax.StreamingSolve(divmax.RemoteEdge, divmax.SliceStream(pts), 2, 8, divmax.Euclidean)
	val, _ := divmax.Evaluate(divmax.RemoteEdge, sol, divmax.Euclidean)
	fmt.Printf("found the outlier: %v\n", val > 1000)
	// Output: found the outlier: true
}

func ExampleMapReduceSolve() {
	pts := []divmax.Vector{
		{0, 0}, {0, 1}, {1, 0},
		{100, 100}, {100, 101},
		{-100, 100}, {-100, 99},
	}
	sol, err := divmax.MapReduceSolve(divmax.RemoteEdge, pts, 3,
		divmax.MRConfig{Parallelism: 2, KPrime: 4}, divmax.Euclidean)
	if err != nil {
		fmt.Println(err)
		return
	}
	val, _ := divmax.Evaluate(divmax.RemoteEdge, sol, divmax.Euclidean)
	fmt.Printf("%d clusters covered: %v\n", len(sol), val > 100)
	// Output: 3 clusters covered: true
}

func ExampleMemoryBound() {
	points, formula, _ := divmax.MemoryBound(divmax.RemoteEdge, divmax.Streaming1Pass,
		1_000_000_000, 16, 0.5, 3)
	fmt.Printf("%s: %d points for a billion-point stream\n", formula, points)
	// Output: Θ((α/ε)^D·k): 1024 points for a billion-point stream
}

func ExampleParseMeasure() {
	m, _ := divmax.ParseMeasure("r-clique")
	fmt.Println(m, "α =", m.SequentialAlpha())
	// Output: remote-clique α = 2
}
