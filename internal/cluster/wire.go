package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"divmax/internal/api"
)

// The coordinator speaks the exact same wire dialect as a single
// divmaxd: every response body is an internal/api struct, every error
// the uniform {"error":{"code","message"}} envelope with the code
// mapped 1:1 from the HTTP status. These helpers mirror the unexported
// ones in internal/server so a client cannot tell the tiers apart by
// their bytes.

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("cluster: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var env api.ErrorEnvelope
	env.Error.Code = errorCode(status)
	env.Error.Message = fmt.Sprintf(format, args...)
	json.NewEncoder(w).Encode(env)
}

func errorCode(status int) string {
	switch status {
	case http.StatusMethodNotAllowed:
		return api.CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return api.CodePayloadTooLarge
	case http.StatusServiceUnavailable:
		return api.CodeUnavailable
	case http.StatusGatewayTimeout:
		return api.CodeDeadlineExceeded
	case http.StatusTooManyRequests:
		return api.CodeOverloaded
	default:
		return api.CodeBadRequest
	}
}
