package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"divmax"
	"divmax/internal/faults"
	"divmax/internal/server"
)

// Chaos tests for the multi-node tier: worker kill/recovery, flaky
// links vs hedging, worker back-pressure vs the retry policy, and
// quorum fail-closed. All membership transitions are driven through
// ProbeNow (the prober's synchronous form) so the tests are
// deterministic — no sleeping through ticker cadences.

// chaosCoordinator is the shared coordinator shape: manual probes,
// FailAfter 2, fast fail (one retry, short attempts), no hedging
// unless the test turns it on.
func chaosCoordinator() Config {
	return Config{
		MaxK:          4,
		ProbeInterval: -1,
		ProbeTimeout:  time.Second,
		FailAfter:     2,
		HedgeAfter:    -1,
		Client: ClientConfig{
			MaxRetries:     1,
			AttemptTimeout: 2 * time.Second,
			BackoffBase:    5 * time.Millisecond,
		},
	}
}

func waitWorkerReady(t *testing.T, wn *WorkerNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !wn.Srv.Ready() {
		if time.Now().After(deadline) {
			t.Fatalf("worker %d never became ready after restart", wn.ID)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterKillRecoverLossless is the PR's acceptance gate: one of
// three workers is killed mid-stream — /v1/query keeps answering
// (degraded, within the deadline) — and after the worker restarts and
// replays its WAL, the cluster's answers are bit-identical to an
// uninterrupted twin cluster fed the same stream. No point is lost.
func TestClusterKillRecoverLossless(t *testing.T) {
	const workers = 3
	worker := server.Config{Shards: 1, MaxK: 4, KPrime: 8}
	h := startHarness(t, HarnessOptions{
		Workers:     workers,
		Worker:      worker,
		DataRoot:    t.TempDir(),
		Coordinator: chaosCoordinator(),
	})
	twin := startHarness(t, HarnessOptions{
		Workers:     workers,
		Worker:      worker,
		Coordinator: chaosCoordinator(),
	})
	hc, tc := coordClient(t, h), coordClient(t, twin)
	ctx := context.Background()

	feedBoth := func(batch []divmax.Vector) {
		t.Helper()
		if _, err := hc.Ingest(ctx, batch); err != nil {
			t.Fatalf("chaos cluster ingest: %v", err)
		}
		if _, err := tc.Ingest(ctx, batch); err != nil {
			t.Fatalf("twin cluster ingest: %v", err)
		}
	}

	buckets := bucketByRing(testVecs(99, 420, 3), workers)
	rounds := len(buckets[0])
	half := rounds / 2

	// Phase 1: all workers alive, both clusters fed identically.
	for r := 0; r < half; r++ {
		feedBoth(roundBatch(buckets, r))
	}

	// Kill worker 1 mid-stream; two failed probes evict it.
	h.Workers[1].Kill()
	h.Coord.ProbeNow()
	h.Coord.ProbeNow()
	st, err := hc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkersEvicted != 1 || st.Workers[1].State != "evicted" || st.Workers[1].Evictions != 1 {
		t.Fatalf("after kill + 2 probes: %+v, want worker 1 evicted", st.Workers)
	}

	// Phase 2: the stream keeps flowing through the outage. Points the
	// full ring owns elsewhere go to both clusters; worker 1's points
	// are withheld from BOTH (so the twin stays aligned) and delivered
	// after recovery — the coordinator would otherwise reroute them.
	for r := half; r < rounds; r++ {
		feedBoth([]divmax.Vector{buckets[0][r], buckets[2][r]})
	}

	// Queries keep answering during the outage: degraded, one worker
	// missing, well within the deadline.
	start := time.Now()
	q, err := hc.Query(ctx, "remote-edge", 4)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	if !q.Degraded || q.WorkersMissing != 1 {
		t.Fatalf("query during outage = %+v, want degraded with 1 worker missing", q)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("degraded query took %v", elapsed)
	}
	wantDegraded := int64(1)

	// Restart worker 1 at its old address: recovery replays the WAL,
	// readyz flips once the shard is restored, and one successful probe
	// readmits it (bumping its incarnation, so cached cursors die).
	if err := h.Workers[1].Restart(); err != nil {
		t.Fatal(err)
	}
	waitWorkerReady(t, h.Workers[1])
	h.Coord.ProbeNow()
	st, err = hc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkersEvicted != 0 || st.Workers[1].State != "healthy" {
		t.Fatalf("after restart + probe: %+v, want worker 1 healthy", st.Workers)
	}
	if st.DegradedQueries != wantDegraded {
		t.Fatalf("degraded_queries = %d, want %d", st.DegradedQueries, wantDegraded)
	}

	// The recovery was a real WAL replay, not a warm survivor: the
	// restarted worker replayed exactly its phase-1 slice.
	wst, err := NewClient(ClientConfig{BaseURL: h.Workers[1].URL()}).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var replayed int64
	for _, sh := range wst.Shards {
		replayed += sh.ReplayedPoints
	}
	if replayed != int64(half) {
		t.Fatalf("worker 1 replayed %d points, want %d (its pre-kill stream)", replayed, half)
	}

	// Phase 3: deliver the withheld points to both clusters.
	for r := half; r < rounds; r++ {
		feedBoth([]divmax.Vector{buckets[1][r]})
	}

	// The gate: bit-identical answers vs the uninterrupted twin, both
	// families, and nothing degraded anymore.
	for _, m := range []string{"remote-edge", "remote-clique"} {
		for _, k := range []int{2, 4} {
			qa, err := hc.Query(ctx, m, k)
			if err != nil {
				t.Fatalf("recovered cluster %s/k=%d: %v", m, k, err)
			}
			qb, err := tc.Query(ctx, m, k)
			if err != nil {
				t.Fatalf("twin cluster %s/k=%d: %v", m, k, err)
			}
			if qa.Degraded || qa.WorkersMissing != 0 {
				t.Fatalf("recovered cluster still degraded: %+v", qa)
			}
			if qa.Processed != int64(3*rounds) {
				t.Fatalf("processed = %d, want %d (no point lost)", qa.Processed, 3*rounds)
			}
			assertSameAnswer(t, fmt.Sprintf("recovered/%s/k=%d", m, k), qa, qb)
		}
	}
}

// TestClusterFlakyLinkHedges: a worker whose snapshot responses are
// slow every other request (a flaky link) triggers hedged requests —
// the query completes at the fast path's latency, not the slow one's.
func TestClusterFlakyLinkHedges(t *testing.T) {
	inj := faults.New()
	const slow = 400 * time.Millisecond
	inj.OnHTTP(faults.FlakyDelay(1, "/snapshot", slow))
	cfg := chaosCoordinator()
	cfg.HedgeAfter = 10 * time.Millisecond
	h := startHarness(t, HarnessOptions{
		Workers:     3,
		Worker:      server.Config{Shards: 1, MaxK: 4, KPrime: 8},
		Coordinator: cfg,
		Injector:    inj,
	})
	c := coordClient(t, h)
	ctx := context.Background()

	if _, err := c.Ingest(ctx, testVecs(3, 90, 3)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	q, err := c.Query(ctx, "remote-edge", 4)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("query over flaky link: %v", err)
	}
	if q.Degraded {
		t.Fatalf("hedged query answered degraded: %+v", q)
	}
	if elapsed >= slow {
		t.Fatalf("query took %v, want < %v: the hedge should have beaten the slow attempt", elapsed, slow)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers[1].HedgedRequests < 1 {
		t.Fatalf("worker 1 hedged_requests = %d, want >= 1", st.Workers[1].HedgedRequests)
	}
	if st.Workers[0].HedgedRequests != 0 || st.Workers[2].HedgedRequests != 0 {
		t.Fatalf("healthy workers were hedged: %+v", st.Workers)
	}
}

// TestClusterRateLimitedWorkerBackoff: a worker shedding ingest with
// 429 + Retry-After is retried on the hinted schedule — the sub-batch
// lands — while ingest routed to the other workers flows unimpeded.
func TestClusterRateLimitedWorkerBackoff(t *testing.T) {
	inj := faults.New()
	inj.OnHTTP(faults.RateLimitHTTP(1, "/ingest", 1, 1))
	h := startHarness(t, HarnessOptions{
		Workers:     3,
		Worker:      server.Config{Shards: 1, MaxK: 4, KPrime: 8},
		Coordinator: chaosCoordinator(),
		Injector:    inj,
	})
	c := coordClient(t, h)
	ctx := context.Background()

	buckets := bucketByRing(testVecs(17, 240, 3), 3)

	// The full batch hits worker 1's 429: its sub-batch backs off at
	// least the Retry-After floor before landing.
	slowDone := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := c.Ingest(ctx, roundBatch(buckets, 0))
		slowDone <- err
	}()

	// Meanwhile ingest owned by the healthy workers is not starved
	// behind that backoff.
	for r := 1; r < 20; r++ {
		if _, err := c.Ingest(ctx, []divmax.Vector{buckets[0][r], buckets[2][r]}); err != nil {
			t.Fatalf("healthy-worker ingest during backoff: %v", err)
		}
	}
	fastElapsed := time.Since(start)

	if err := <-slowDone; err != nil {
		t.Fatalf("rate-limited ingest never landed: %v", err)
	}
	slowElapsed := time.Since(start)
	if slowElapsed < time.Second {
		t.Fatalf("rate-limited ingest finished in %v, want >= 1s (the Retry-After floor)", slowElapsed)
	}
	if fastElapsed >= time.Second {
		t.Fatalf("healthy ingest took %v, starved behind the backoff", fastElapsed)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers[1].Retries < 1 {
		t.Fatalf("worker 1 retries = %d, want >= 1", st.Workers[1].Retries)
	}
	if got := st.IngestedTotal; got != int64(1+2*19+2) {
		// 3 points in the slow batch (one delayed), plus 19 two-point
		// fast batches. The count proves the shed sub-batch landed.
		t.Fatalf("ingested_total = %d, want %d", got, 1+2*19+2)
	}
}

// TestClusterQuorumFailClosed: with responsive workers below Quorum,
// queries and readiness fail closed with 503; deletes fail closed as
// soon as ANY worker is evicted.
func TestClusterQuorumFailClosed(t *testing.T) {
	cfg := chaosCoordinator()
	cfg.Client.MaxRetries = -1
	cfg.Client.AttemptTimeout = time.Second
	h := startHarness(t, HarnessOptions{
		Workers:     3,
		Worker:      server.Config{Shards: 1, MaxK: 4, KPrime: 8},
		Coordinator: cfg,
	})
	c := coordClient(t, h)
	ctx := context.Background()

	pts := testVecs(5, 60, 3)
	if _, err := c.Ingest(ctx, pts); err != nil {
		t.Fatal(err)
	}

	// One worker down (evicted): queries degrade, deletes fail closed.
	h.Workers[2].Kill()
	h.Coord.ProbeNow()
	h.Coord.ProbeNow()
	q, err := c.Query(ctx, "remote-edge", 2)
	if err != nil {
		t.Fatalf("query with 2/3 workers: %v", err)
	}
	if !q.Degraded || q.WorkersMissing != 1 {
		t.Fatalf("query = %+v, want degraded, 1 missing", q)
	}
	_, err = c.Delete(ctx, pts[:1], false)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("delete with an evicted worker: %v, want 503", err)
	}

	// Two workers down: below quorum (2), everything fails closed.
	h.Workers[1].Kill()
	h.Coord.ProbeNow()
	h.Coord.ProbeNow()
	_, err = c.Query(ctx, "remote-edge", 2)
	if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("query below quorum: %v, want 503", err)
	}
	if err := c.Ready(ctx); !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("readyz below quorum: %v, want 503", err)
	}
	if h.Coord.Ready() {
		t.Fatal("Coordinator.Ready() true below quorum")
	}

	// Bring one back (in-memory worker, so it returns empty — the
	// membership mechanics are what this test pins): quorum is met
	// again, the readmission bumped its incarnation, and queries
	// answer degraded over the survivors.
	if err := h.Workers[1].Restart(); err != nil {
		t.Fatal(err)
	}
	waitWorkerReady(t, h.Workers[1])
	h.Coord.ProbeNow()
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers[1].State != "healthy" || st.Workers[1].Evictions != 1 {
		t.Fatalf("worker 1 after readmission: %+v", st.Workers[1])
	}
	q, err = c.Query(ctx, "remote-edge", 2)
	if err != nil {
		t.Fatalf("query after readmission: %v", err)
	}
	if !q.Degraded || q.WorkersMissing != 1 {
		t.Fatalf("query = %+v, want degraded (worker 2 still down)", q)
	}
}
