package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"divmax"
	"divmax/internal/api"
	"divmax/internal/sequential"
)

// The coordinator's query path is the single-process server's, lifted
// one level: where the server snapshots its in-process shards, the
// coordinator snapshots its workers over HTTP — each worker's reply
// already the merged core-set of that worker's shards — and then runs
// the identical round-2 merge + solve on the union. The cache works the
// same way too: per family, the last merged state, kept current by
// per-worker snapshot cursors (the wire form of SnapshotSince): a round
// where every worker returns an empty pure delta is a cache hit, small
// deltas patch the cached union and engine in place (Fork +
// AppendEngine), anything else rebuilds from full snapshots.
//
// What is new at this level is distrust of the fan-out: every worker
// call can be slow (hedged), failing (retried by the client, then
// surfaced), or against an evicted worker (skipped and reported
// missing). A healthy-path merge fails if ANY worker is missing; the
// handler then retries in degraded mode, answering from the survivors
// when at least Quorum respond.

func cacheIndex(proxy bool) int {
	if proxy {
		return 1
	}
	return 0
}

func famName(m divmax.Measure) string {
	if m.NeedsInjectiveProxy() {
		return "proxy"
	}
	return "edge"
}

// workerCursor is one worker's snapshot cursor as of a merged state,
// tagged with the worker incarnation it was fetched under: a
// readmission bumps the incarnation, so a cursor taken before the
// worker went away is never replayed against its recovered state.
type workerCursor struct {
	cursor      api.SnapshotCursor
	incarnation uint64
	valid       bool
}

// coordState is one family's merged view of the whole cluster. union
// and engine are immutable after construction; solutions is guarded by
// the owning coordCache's mutex.
type coordState struct {
	cursors   []workerCursor
	union     []divmax.Vector
	engine    *sequential.Engine
	processed int64
	solutions *answerMemo
}

// coordCache mirrors the server's familyCache: mu guards the state
// pointer and its memo; rebuild is the one-slot semaphore serializing
// the fan-out + merge, selectable against the request deadline.
type coordCache struct {
	mu      sync.Mutex
	rebuild chan struct{}
	state   *coordState
}

type mergeHow int

const (
	mergeHit mergeHow = iota
	mergePatched
	mergeRebuilt
)

// requestCtx mirrors the server's: bound the request by d when
// positive.
func requestCtx(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// writeFailure maps a fan-out failure onto the wire with the same
// shapes the single-process server uses: deadlines are 504, a worker's
// back-pressure is propagated as 429 (its Retry-After hint passed
// through), everything else — evictions, exhausted retries, quorum —
// is 503.
func (co *Coordinator) writeFailure(w http.ResponseWriter, err error) {
	var he *HTTPError
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		httpError(w, http.StatusGatewayTimeout, "request deadline exceeded")
	case errors.As(err, &he) && he.Status == http.StatusTooManyRequests:
		if secs := int(math.Ceil(he.RetryAfter.Seconds())); secs > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.As(err, &he) && he.Status == http.StatusBadRequest:
		// A worker rejecting the request as malformed (e.g. a point
		// dimension the dataset refuses) is the caller's error, not a
		// cluster outage — propagate the 400 instead of masking it
		// as unavailable.
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	}
}

// fetchSnapshot fetches one worker's merged core-set, hedging the
// request: if the first attempt has not answered within the hedge
// delay, a second identical attempt races it and the first reply wins.
// Snapshot requests are read-only, so the duplicate is harmless — what
// hedging buys is that one slow worker (GC pause, flaky link, loaded
// box) delays the merge by the hedge threshold plus a healthy RTT,
// instead of by the worker's full tail latency.
func (co *Coordinator) fetchSnapshot(ctx context.Context, wk *worker, fam string, cursor *api.SnapshotCursor) (api.SnapshotResponse, error) {
	type result struct {
		resp api.SnapshotResponse
		err  error
	}
	attempt := func(ch chan<- result) {
		start := time.Now()
		resp, err := wk.client.Snapshot(ctx, fam, cursor)
		if err == nil {
			co.recordLatency(time.Since(start))
		}
		ch <- result{resp, err}
	}
	delay, hedge := co.hedgeDelay()
	if !hedge {
		start := time.Now()
		resp, err := wk.client.Snapshot(ctx, fam, cursor)
		if err == nil {
			co.recordLatency(time.Since(start))
		}
		return resp, err
	}
	// Buffered to the attempt count: a straggler's send never blocks,
	// so no goroutine outlives its reply.
	ch := make(chan result, 2)
	go attempt(ch)
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		return api.SnapshotResponse{}, ctx.Err()
	case <-t.C:
		wk.hedged.Add(1)
		go attempt(ch)
	}
	// Two attempts in flight: first success wins; an early error waits
	// for the other attempt before giving up.
	var firstErr error
	for i := 0; i < 2; i++ {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.resp, nil
			}
			firstErr = r.err
		case <-ctx.Done():
			return api.SnapshotResponse{}, ctx.Err()
		}
	}
	return api.SnapshotResponse{}, firstErr
}

const (
	// latWindow is how many recent snapshot latencies feed the adaptive
	// hedge delay; minHedgeSamples gates hedging until the window has
	// seen enough of them to estimate a tail.
	latWindow       = 128
	minHedgeSamples = 8
)

func (co *Coordinator) recordLatency(d time.Duration) {
	co.latMu.Lock()
	if len(co.lats) < latWindow {
		co.lats = append(co.lats, float64(d))
	} else {
		co.lats[co.latPos] = float64(d)
		co.latPos = (co.latPos + 1) % latWindow
	}
	co.latMu.Unlock()
}

// hedgeDelay resolves the hedging threshold: fixed when HedgeAfter > 0,
// disabled when negative, otherwise adaptive — twice the p95 of the
// recent snapshot latencies (so routine variance never hedges, a
// genuine straggler does), clamped below by 5ms and above by a quarter
// of the query deadline.
func (co *Coordinator) hedgeDelay() (time.Duration, bool) {
	switch {
	case co.cfg.HedgeAfter > 0:
		return co.cfg.HedgeAfter, true
	case co.cfg.HedgeAfter < 0:
		return 0, false
	}
	co.latMu.Lock()
	if len(co.lats) < minHedgeSamples {
		co.latMu.Unlock()
		return 0, false
	}
	buf := append([]float64(nil), co.lats...)
	co.latMu.Unlock()
	sort.Float64s(buf)
	d := time.Duration(2 * buf[len(buf)*95/100])
	lo, hi := 5*time.Millisecond, time.Second
	if co.cfg.QueryDeadline > 0 {
		hi = co.cfg.QueryDeadline / 4
	}
	return min(max(d, lo), hi), true
}

// merged returns the family cache and an up-to-date merged state over
// ALL workers, or an error if any worker is evicted or unreachable
// (the handler then falls back to the degraded path). Cache currency is
// established by the snapshot round itself: cursors from the cached
// state ask each worker for a pure delta, and empty deltas all around
// mean the cached union still reflects the whole stream.
func (co *Coordinator) merged(ctx context.Context, m divmax.Measure) (*coordCache, *coordState, mergeHow, error) {
	if co.draining.Load() {
		return nil, nil, mergeRebuilt, errCoordDraining
	}
	c := &co.caches[cacheIndex(m.NeedsInjectiveProxy())]
	select {
	case c.rebuild <- struct{}{}:
	case <-ctx.Done():
		return nil, nil, mergeRebuilt, ctx.Err()
	}
	defer func() { <-c.rebuild }()
	c.mu.Lock()
	prev := c.state
	c.mu.Unlock()
	fam := famName(m)
	n := len(co.workers)

	// Round 1: fan SnapshotSince to every admitted worker, each with
	// its cached cursor when the incarnation still matches (a cursor
	// against a recovered worker's previous life would be answered with
	// a delta relative to state it no longer serves).
	incs := make([]uint64, n)
	results := make([]api.SnapshotResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, wk := range co.workers {
		if !wk.admitted.Load() {
			errs[i] = fmt.Errorf("cluster: worker %d (%s) evicted", wk.id, wk.url)
			continue
		}
		incs[i] = wk.incarnation.Load()
		var cur *api.SnapshotCursor
		if prev != nil && co.cfg.DeltaBudget >= 0 {
			if wc := prev.cursors[i]; wc.valid && wc.incarnation == incs[i] {
				cc := wc.cursor
				cur = &cc
			}
		}
		wg.Add(1)
		go func(i int, wk *worker, cur *api.SnapshotCursor) {
			defer wg.Done()
			results[i], errs[i] = co.fetchSnapshot(ctx, wk, fam, cur)
		}(i, wk, cur)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, mergeRebuilt, err
		}
	}

	// A worker's reply is either a pure delta (Partial) or a complete
	// core-set — /v1/snapshot never returns a partial non-delta.
	allPartial := prev != nil
	total := 0
	for i := range results {
		if results[i].Partial {
			total += len(results[i].Points)
		} else {
			allPartial = false
		}
	}

	var st *coordState
	var how mergeHow
	if allPartial && float64(total) <= co.cfg.DeltaBudget*float64(len(prev.union)) {
		st = &coordState{cursors: cursorsOf(results, incs)}
		for i := range results {
			st.processed += results[i].Processed
		}
		if total == 0 {
			// Every worker's view is unchanged (or its growth was
			// absorbed): the union, engine, and solved answers carry
			// over; only processed advances.
			st.union, st.engine, st.solutions = prev.union, prev.engine, prev.solutions
			co.cacheHits.Add(1)
			how = mergeHit
		} else {
			var delta []divmax.Vector
			for i := range results {
				delta = append(delta, results[i].Points...)
			}
			st.union = append(prev.union[:len(prev.union):len(prev.union)], delta...)
			st.solutions = newAnswerMemo(co.cfg.SolutionMemo)
			if prev.engine == nil {
				st.engine = sequential.BuildEngine(st.union, divmax.Euclidean, co.cfg.SolveWorkers)
			} else {
				eng := prev.engine.Fork()
				if sequential.AppendEngine(eng, delta) {
					st.engine = eng
				} else {
					st.engine = sequential.BuildEngine(st.union, divmax.Euclidean, co.cfg.SolveWorkers)
				}
			}
			co.missesInvalidated.Add(1)
			co.deltaPatches.Add(1)
			how = mergePatched
		}
	} else {
		// Full rebuild. Round-1 replies that came back complete are
		// kept; the ones that came back as deltas are re-fetched in
		// full (a delta is relative to a state this rebuild discards).
		wg = sync.WaitGroup{}
		for i := range results {
			if !results[i].Partial {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = co.fetchSnapshot(ctx, co.workers[i], fam, nil)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, mergeRebuilt, err
			}
		}
		st = &coordState{
			cursors:   cursorsOf(results, incs),
			solutions: newAnswerMemo(co.cfg.SolutionMemo),
		}
		for i := range results {
			st.processed += results[i].Processed
			st.union = append(st.union, results[i].Points...)
		}
		st.engine = sequential.BuildEngine(st.union, divmax.Euclidean, co.cfg.SolveWorkers)
		if prev == nil {
			co.missesCold.Add(1)
		} else {
			co.missesInvalidated.Add(1)
		}
		co.fullRebuilds.Add(1)
		how = mergeRebuilt
	}
	c.mu.Lock()
	c.state = st
	c.mu.Unlock()
	return c, st, how, nil
}

func cursorsOf(results []api.SnapshotResponse, incs []uint64) []workerCursor {
	out := make([]workerCursor, len(results))
	for i := range results {
		out[i] = workerCursor{cursor: results[i].Cursor, incarnation: incs[i], valid: true}
	}
	return out
}

// degradedState builds a one-off merged state over whichever workers
// answer a full snapshot round: per-worker failures are tolerated down
// to Quorum responsive workers, below which the first failure is
// returned (→ 503). Composability (Section 4 of the paper) keeps the
// answer sound — the union of the survivors' core-sets is a valid
// core-set for the points they ingested, same α+ε guarantee over the
// surviving ground set. Like the server's, the state bypasses the
// cache in both directions: never installed, no miss counters.
func (co *Coordinator) degradedState(ctx context.Context, m divmax.Measure) (*coordState, int, error) {
	fam := famName(m)
	n := len(co.workers)
	results := make([]api.SnapshotResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, wk := range co.workers {
		if !wk.admitted.Load() {
			errs[i] = fmt.Errorf("cluster: worker %d (%s) evicted", wk.id, wk.url)
			continue
		}
		wg.Add(1)
		go func(i int, wk *worker) {
			defer wg.Done()
			results[i], errs[i] = co.fetchSnapshot(ctx, wk, fam, nil)
		}(i, wk)
	}
	wg.Wait()
	st := &coordState{}
	missing := 0
	var firstErr error
	for i := range results {
		if errs[i] != nil {
			missing++
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		st.processed += results[i].Processed
		st.union = append(st.union, results[i].Points...)
	}
	if responsive := n - missing; responsive < co.cfg.Quorum {
		return nil, missing, fmt.Errorf("cluster: %d of %d workers responsive, quorum is %d: %w", responsive, n, co.cfg.Quorum, firstErr)
	}
	st.engine = sequential.BuildEngine(st.union, divmax.Euclidean, co.cfg.SolveWorkers)
	return st, missing, nil
}

// solveMerged mirrors the server's: index-based against the retained
// engine when one was built, generic otherwise — bit-identical output
// either way.
func (co *Coordinator) solveMerged(m divmax.Measure, st *coordState, k int) []divmax.Vector {
	if len(st.union) == 0 {
		return nil
	}
	if st.engine != nil {
		if st.engine.Tiled() {
			co.tiledSolves.Add(1)
		}
		idx := sequential.SolveEngineIdx(m, st.engine, k)
		sol := make([]divmax.Vector, len(idx))
		for i, j := range idx {
			sol[i] = st.union[j]
		}
		return sol
	}
	return sequential.Solve(m, st.union, k, divmax.Euclidean)
}

func (co *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	m := divmax.RemoteEdge
	if name := q.Get("measure"); name != "" {
		var err error
		if m, err = divmax.ParseMeasure(name); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	k := co.cfg.MaxK
	if arg := q.Get("k"); arg != "" {
		var err error
		if k, err = strconv.Atoi(arg); err != nil {
			httpError(w, http.StatusBadRequest, "bad k: %v", err)
			return
		}
	}
	if k < 1 || k > co.cfg.MaxK {
		httpError(w, http.StatusBadRequest, "k must be in [1, %d] (the coordinator's maxk), got %d", co.cfg.MaxK, k)
		return
	}
	ctx, cancel := requestCtx(r, co.cfg.QueryDeadline)
	defer cancel()

	// The healthy fan-out gets half the deadline; if it cannot complete
	// — an evicted worker, one that keeps failing — the remainder buys
	// a degraded round over the survivors instead of a bare 503/504.
	mctx := ctx
	if co.cfg.QueryDeadline > 0 {
		var mcancel context.CancelFunc
		mctx, mcancel = context.WithTimeout(ctx, co.cfg.QueryDeadline/2)
		defer mcancel()
	}
	cache, st, how, err := co.merged(mctx, m)
	degraded, missing := false, 0
	if err != nil {
		if errors.Is(err, errCoordDraining) {
			co.writeFailure(w, err)
			return
		}
		st, missing, err = co.degradedState(ctx, m)
		if err != nil {
			co.writeFailure(w, err)
			return
		}
		cache, how = nil, mergeRebuilt
		degraded = missing > 0
		if degraded {
			co.degradedQueries.Add(1)
		}
	}
	co.queries.Add(1)

	key := answerKey{measure: m, k: k}
	var memo solvedAnswer
	haveMemo := false
	if cache != nil {
		cache.mu.Lock()
		memo, haveMemo = st.solutions.get(key)
		cache.mu.Unlock()
	}
	var elapsed time.Duration
	if !haveMemo {
		start := time.Now()
		sol := co.solveMerged(m, st, k)
		val, exact := divmax.Evaluate(m, sol, divmax.Euclidean)
		if math.IsInf(val, 0) || math.IsNaN(val) {
			// Min-based measures evaluate to +Inf on fewer than 2
			// points; JSON cannot encode non-finite numbers, so report
			// the degenerate diversity as 0 and flag it inexact.
			val, exact = 0, false
		}
		elapsed = time.Since(start)
		co.merges.Add(1)
		co.mergeNanos.Store(int64(elapsed))
		if sol == nil {
			sol = []divmax.Vector{}
		}
		memo = solvedAnswer{sol: sol, val: val, exact: exact}
		if cache != nil {
			cache.mu.Lock()
			st.solutions.put(key, memo)
			cache.mu.Unlock()
		}
	}

	writeJSON(w, api.QueryResponse{
		Measure:        m.String(),
		K:              k,
		Solution:       memo.sol,
		Value:          memo.val,
		Exact:          memo.exact,
		CoresetSize:    len(st.union),
		Processed:      st.processed,
		MergeMillis:    float64(elapsed) / float64(time.Millisecond),
		Cached:         how == mergeHit,
		Patched:        how == mergePatched,
		Degraded:       degraded,
		WorkersMissing: missing,
	})
}
