package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"divmax"
	"divmax/internal/api"
	"divmax/internal/server"
)

// startHarness boots an in-process cluster with a goroutine-leak check
// that fires after everything is closed.
func startHarness(t *testing.T, opts HarnessOptions) *Harness {
	t.Helper()
	before := runtime.NumGoroutine()
	h, err := StartCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		h.Close()
		checkGoroutines(t, before)
	})
	if err := h.WaitWorkersReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return h
}

// checkGoroutines fails the test if the goroutine count has not
// returned to (near) its pre-harness level; the slack absorbs runtime
// bookkeeping goroutines.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after close\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// newRefServer fronts a single-process reference server for the
// equivalence tests.
func newRefServer(t *testing.T, srv *server.Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func coordClient(t *testing.T, h *Harness) *Client {
	t.Helper()
	return NewClient(ClientConfig{BaseURL: h.CoordServer.URL})
}

func testVecs(seed int64, n, d int) []divmax.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]divmax.Vector, n)
	for i := range out {
		v := make(divmax.Vector, d)
		for j := range v {
			v[j] = rng.NormFloat64() * 50
		}
		out[i] = v
	}
	return out
}

// bucketByRing deals pts into per-worker buckets exactly as the
// coordinator's all-alive ring will, then trims every bucket to the
// shortest one so aligned round-robin feeding is possible.
func bucketByRing(pts []divmax.Vector, workers int) [][]divmax.Vector {
	r := newRing(workers, defaultVNodes)
	alive := func(int) bool { return true }
	buckets := make([][]divmax.Vector, workers)
	for _, p := range pts {
		o := r.owner(hashPoint(p), alive)
		buckets[o] = append(buckets[o], p)
	}
	m := len(buckets[0])
	for _, b := range buckets[1:] {
		m = min(m, len(b))
	}
	for i := range buckets {
		buckets[i] = buckets[i][:m]
	}
	return buckets
}

// round r across the trimmed buckets: [b0[r], b1[r], ..., bW-1[r]] —
// the batch shape under which a W-shard single-process server's
// round-robin dealing assigns bucket i's stream to shard i, matching
// the coordinator's ring assignment of bucket i to worker i.
func roundBatch(buckets [][]divmax.Vector, r int) []divmax.Vector {
	out := make([]divmax.Vector, len(buckets))
	for i := range buckets {
		out[i] = buckets[i][r]
	}
	return out
}

func assertSameAnswer(t *testing.T, what string, a, b api.QueryResponse) {
	t.Helper()
	if a.Processed != b.Processed {
		t.Fatalf("%s: processed %d vs %d", what, a.Processed, b.Processed)
	}
	if a.CoresetSize != b.CoresetSize {
		t.Fatalf("%s: coreset_size %d vs %d", what, a.CoresetSize, b.CoresetSize)
	}
	if a.Exact != b.Exact {
		t.Fatalf("%s: exact %v vs %v", what, a.Exact, b.Exact)
	}
	if math.Float64bits(a.Value) != math.Float64bits(b.Value) {
		t.Fatalf("%s: value bits %x vs %x (%v vs %v)", what, math.Float64bits(a.Value), math.Float64bits(b.Value), a.Value, b.Value)
	}
	if len(a.Solution) != len(b.Solution) {
		t.Fatalf("%s: solution sizes %d vs %d", what, len(a.Solution), len(b.Solution))
	}
	for i := range a.Solution {
		if len(a.Solution[i]) != len(b.Solution[i]) {
			t.Fatalf("%s: solution[%d] dims differ", what, i)
		}
		for j := range a.Solution[i] {
			if math.Float64bits(a.Solution[i][j]) != math.Float64bits(b.Solution[i][j]) {
				t.Fatalf("%s: solution[%d][%d] bits differ: %v vs %v", what, i, j, a.Solution[i][j], b.Solution[i][j])
			}
		}
	}
}

func TestCoordinatorBasics(t *testing.T) {
	h := startHarness(t, HarnessOptions{
		Workers:     3,
		Worker:      server.Config{Shards: 2, MaxK: 4, KPrime: 8},
		Coordinator: Config{MaxK: 4, ProbeInterval: -1},
	})
	c := coordClient(t, h)
	ctx := context.Background()

	pts := testVecs(7, 90, 3)
	ing, err := c.Ingest(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if ing.Accepted != 90 || ing.Shards != 3 {
		t.Fatalf("ingest = %+v, want accepted 90 across 3 workers", ing)
	}

	q, err := c.Query(ctx, "remote-edge", 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.Processed != 90 || q.CoresetSize == 0 || len(q.Solution) != 4 || q.Degraded {
		t.Fatalf("query = %+v, want 90 processed, 4 points, not degraded", q)
	}
	// Same state again: served from the coordinator's merge cache.
	q2, err := c.Query(ctx, "remote-edge", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.Cached {
		t.Fatalf("repeat query not cached: %+v", q2)
	}
	assertSameAnswer(t, "cached repeat", q, q2)

	// The proxy family answers too.
	if _, err := c.Query(ctx, "remote-clique", 3); err != nil {
		t.Fatal(err)
	}

	// Deletes broadcast and fold outcomes.
	del, err := c.Delete(ctx, []divmax.Vector{pts[0], {9e5, 9e5, 9e5}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if del.Requested != 2 || len(del.Outcomes) != 2 {
		t.Fatalf("delete = %+v, want 2 outcomes", del)
	}
	if del.Outcomes[1] != int(divmax.DeleteAbsent) {
		t.Fatalf("outcomes[1] = %d, want absent for a never-ingested point", del.Outcomes[1])
	}
	if del.Outcomes[0] == int(divmax.DeleteAbsent) {
		t.Fatalf("outcomes[0] = absent, want spare or evicted for an ingested point")
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 3 || st.Quorum != 2 || st.WorkersEvicted != 0 {
		t.Fatalf("stats = %+v, want 3 healthy workers, quorum 2", st)
	}
	var ingested int64
	for _, ws := range st.Workers {
		if ws.State != "healthy" {
			t.Fatalf("worker %d state %q, want healthy", ws.ID, ws.State)
		}
		ingested += ws.IngestedPoints
	}
	if ingested != 90 || st.IngestedTotal != 90 {
		t.Fatalf("ingested sum = %d (total %d), want 90", ingested, st.IngestedTotal)
	}

	// The legacy unversioned alias serves the same handlers.
	resp, err := http.Get(h.CoordServer.URL + "/query?k=2")
	if err != nil {
		t.Fatal(err)
	}
	var lq api.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&lq); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || lq.K != 2 {
		t.Fatalf("legacy /query: status %d, k %d", resp.StatusCode, lq.K)
	}

	// Contract violations reject exactly like a single server.
	if _, err := c.Query(ctx, "remote-edge", 99); err == nil {
		t.Fatal("k beyond maxk accepted")
	}
	if _, err := c.Ingest(ctx, []divmax.Vector{{1, 2}}); err == nil {
		t.Fatal("dimension change accepted")
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("readyz on a healthy cluster: %v", err)
	}
}

// TestCoordinatorEquivalence is satellite 3's pin: with every worker
// healthy, the coordinator's answers are bit-for-bit the single-process
// server's on the same shard-partitioned stream — same solutions, same
// value bits, both core-set families, under ingests, deletes, and
// cache patch/rebuild transitions.
func TestCoordinatorEquivalence(t *testing.T) {
	const workers = 3
	h := startHarness(t, HarnessOptions{
		Workers:     workers,
		Worker:      server.Config{Shards: 1, MaxK: 4, KPrime: 8},
		Coordinator: Config{MaxK: 4, ProbeInterval: -1},
	})
	coord := coordClient(t, h)

	ref, err := server.New(server.Config{Shards: workers, MaxK: 4, KPrime: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refTS := newRefServer(t, ref)
	refc := NewClient(ClientConfig{BaseURL: refTS})

	ctx := context.Background()
	buckets := bucketByRing(testVecs(42, 420, 3), workers)
	rounds := len(buckets[0])
	if rounds < 40 {
		t.Fatalf("only %d aligned rounds, want more spread", rounds)
	}

	compare := func(what string) {
		t.Helper()
		for _, m := range []string{"remote-edge", "remote-clique"} {
			for _, k := range []int{1, 2, 4} {
				qa, err := coord.Query(ctx, m, k)
				if err != nil {
					t.Fatalf("%s: coordinator %s/k=%d: %v", what, m, k, err)
				}
				qb, err := refc.Query(ctx, m, k)
				if err != nil {
					t.Fatalf("%s: reference %s/k=%d: %v", what, m, k, err)
				}
				if qa.Degraded || qa.WorkersMissing != 0 {
					t.Fatalf("%s: healthy cluster answered degraded: %+v", what, qa)
				}
				assertSameAnswer(t, what+"/"+m, qa, qb)
			}
		}
	}

	for r := 0; r < rounds; r++ {
		batch := roundBatch(buckets, r)
		if _, err := coord.Ingest(ctx, batch); err != nil {
			t.Fatalf("round %d: coordinator ingest: %v", r, err)
		}
		if _, err := refc.Ingest(ctx, batch); err != nil {
			t.Fatalf("round %d: reference ingest: %v", r, err)
		}
		// Querying mid-stream exercises the delta-patch path on both
		// sides; the two deletes exercise generation bumps (full
		// rebuilds) and the broadcast/fold path.
		if r%16 == 7 {
			compare(fmt.Sprintf("round %d", r))
		}
		if r == rounds/2 {
			victims := []divmax.Vector{buckets[0][2], buckets[1][5], buckets[2][9]}
			da, err := coord.Delete(ctx, victims, true)
			if err != nil {
				t.Fatal(err)
			}
			db, err := refc.Delete(ctx, victims, true)
			if err != nil {
				t.Fatal(err)
			}
			if da.Evicted != db.Evicted || da.Spares != db.Spares || da.Tombstones != db.Tombstones {
				t.Fatalf("delete fold differs: %+v vs %+v", da, db)
			}
			for i := range da.Outcomes {
				if da.Outcomes[i] != db.Outcomes[i] {
					t.Fatalf("outcome[%d]: %d vs %d", i, da.Outcomes[i], db.Outcomes[i])
				}
			}
		}
	}
	compare("final")

	// The equivalence held across cache transitions, not just cold
	// rebuilds: the coordinator must have patched at least once.
	st, err := coord.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeltaPatches == 0 {
		t.Fatalf("coordinator never delta-patched: %+v", st)
	}
}

// TestCoordinatorRejectedIngestDoesNotPinDim reproduces a restarted
// coordinator in front of populated workers: the coordinator's own
// dataset-dimension tracker is empty, the workers' is not. A batch
// with the wrong dimension must come back 400 (the workers' verdict,
// not a 503 outage) and must NOT claim the coordinator's dimension —
// before the fix, one rejected batch pinned the fresh coordinator to
// the bad dimension and every valid write was refused from then on.
func TestCoordinatorRejectedIngestDoesNotPinDim(t *testing.T) {
	h := startHarness(t, HarnessOptions{
		Workers:     3,
		Worker:      server.Config{Shards: 2, MaxK: 4, KPrime: 8},
		Coordinator: Config{MaxK: 4, ProbeInterval: -1},
	})
	ctx := context.Background()

	// Populate every worker directly (dim 2), bypassing the
	// coordinator — its dim tracker stays 0, like after a restart.
	pts := testVecs(11, 30, 2)
	for _, wn := range h.Workers {
		wc := NewClient(ClientConfig{BaseURL: wn.URL()})
		if _, err := wc.Ingest(ctx, pts); err != nil {
			t.Fatal(err)
		}
	}

	// A dim-3 batch through the coordinator: every worker rejects it,
	// and the caller must see their 400, not "unavailable".
	c := coordClient(t, h)
	_, err := c.Ingest(ctx, testVecs(12, 4, 3))
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("dim-3 ingest error = %v, want http 400", err)
	}

	// The rejected batch must not have claimed the dimension: dim-2
	// writes keep working.
	if _, err := c.Ingest(ctx, testVecs(13, 4, 2)); err != nil {
		t.Fatalf("dim-2 ingest after rejected dim-3 batch: %v", err)
	}
	if _, err := c.Delete(ctx, []divmax.Vector{pts[0]}, false); err != nil {
		t.Fatalf("dim-2 delete after rejected dim-3 batch: %v", err)
	}

	// And the guard still holds once the dimension is genuinely set.
	if _, err := c.Ingest(ctx, testVecs(14, 2, 5)); err == nil {
		t.Fatal("dim-5 ingest accepted after dim-2 points landed")
	}
}
