package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"divmax"
	"divmax/internal/api"
)

// Client is the typed HTTP client for one divmaxd server (a worker, or
// a coordinator — they speak the same /v1 dialect). It is the single
// place retry policy lives: per-attempt deadlines, capped exponential
// backoff with jitter, and Retry-After honored as a FLOOR on the
// backoff — a 429's hint never shortens a wait, it only lengthens one.
// cmd/bench drives its servers through this client too, so the policy
// is exercised by every benchmark run, not just the chaos tests.
//
// Retries are at-least-once: a retried POST whose first attempt died
// after the server processed it is delivered twice. The coordinator
// accepts that for /ingest (a duplicate point is absorbed by the
// core-sets at zero diversity cost) and /delete (idempotent by value);
// exactly-once is deliberately out of scope.
type Client struct {
	base    string
	httpc   *http.Client
	cfg     ClientConfig
	retries int // attempts beyond the first

	// sleep and jitter are swappable for tests: backoff unit tests
	// capture the waits instead of paying them.
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func(d time.Duration) time.Duration
}

// ClientConfig tunes a Client. The zero value is usable: default
// transport, 10s per attempt, 3 retries, 50ms–2s backoff.
type ClientConfig struct {
	// BaseURL is the server's root, e.g. "http://worker-0:9090".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient).
	// Deadlines come from contexts, not from HTTPClient.Timeout.
	HTTPClient *http.Client
	// AttemptTimeout bounds each attempt, so one blackholed connection
	// costs one attempt, not the whole request deadline. 0 means the
	// default (10s); negative disables (the request context still
	// applies).
	AttemptTimeout time.Duration
	// MaxRetries is the number of attempts beyond the first for
	// retryable failures — connection errors, 429, 5xx. 0 means the
	// default (3); negative disables retries (cmd/bench's overload
	// suite counts raw 429s this way).
	MaxRetries int
	// BackoffBase and BackoffCap shape the capped exponential backoff:
	// attempt n waits jitter(min(cap, base·2ⁿ)), raised to the
	// server's Retry-After when that is longer. Defaults 50ms and 2s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// OnRetry, when set, observes every backoff wait just before it is
	// taken (the coordinator counts per-worker retries through it).
	OnRetry func(wait time.Duration)
}

// HTTPError is a non-2xx response, decoded from the uniform error
// envelope.
type HTTPError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration // 0 when the response carried no hint
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("http %d (%s): %s", e.Status, e.Code, e.Message)
}

// NewClient builds a client for cfg.BaseURL.
func NewClient(cfg ClientConfig) *Client {
	c := &Client{base: cfg.BaseURL, httpc: cfg.HTTPClient, cfg: cfg}
	if c.httpc == nil {
		c.httpc = http.DefaultClient
	}
	switch {
	case cfg.AttemptTimeout == 0:
		c.cfg.AttemptTimeout = 10 * time.Second
	case cfg.AttemptTimeout < 0:
		c.cfg.AttemptTimeout = 0
	}
	switch {
	case cfg.MaxRetries == 0:
		c.retries = 3
	case cfg.MaxRetries < 0:
		c.retries = 0
	default:
		c.retries = cfg.MaxRetries
	}
	if c.cfg.BackoffBase <= 0 {
		c.cfg.BackoffBase = 50 * time.Millisecond
	}
	if c.cfg.BackoffCap <= 0 {
		c.cfg.BackoffCap = 2 * time.Second
	}
	c.sleep = sleepCtx
	// Equal jitter: half the exponential window deterministic, half
	// uniform — spreads a thundering herd without ever halving below
	// 50% of the intended wait.
	c.jitter = func(d time.Duration) time.Duration {
		if d <= 1 {
			return d
		}
		half := d / 2
		return half + rand.N(half+1)
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Ingest posts a batch of points.
func (c *Client) Ingest(ctx context.Context, pts []divmax.Vector) (api.IngestResponse, error) {
	body, err := json.Marshal(api.IngestRequest{Points: pts})
	if err != nil {
		return api.IngestResponse{}, err
	}
	return c.IngestBody(ctx, body)
}

// IngestBody posts a pre-encoded ingest body — what cmd/bench uses so
// encoding stays outside its timed loops.
func (c *Client) IngestBody(ctx context.Context, body []byte) (api.IngestResponse, error) {
	var out api.IngestResponse
	err := c.do(ctx, http.MethodPost, "/ingest", body, &out)
	return out, err
}

// Delete posts a delete-by-value batch; wantOutcomes asks for the
// per-point outcome array.
func (c *Client) Delete(ctx context.Context, pts []divmax.Vector, wantOutcomes bool) (api.DeleteResponse, error) {
	body, err := json.Marshal(api.DeleteRequest{Points: pts, WantOutcomes: wantOutcomes})
	if err != nil {
		return api.DeleteResponse{}, err
	}
	var out api.DeleteResponse
	err = c.do(ctx, http.MethodPost, "/delete", body, &out)
	return out, err
}

// Snapshot fetches the server's merged core-set for family ("edge" or
// "proxy"), incrementally when cursor is non-nil.
func (c *Client) Snapshot(ctx context.Context, family string, cursor *api.SnapshotCursor) (api.SnapshotResponse, error) {
	body, err := json.Marshal(api.SnapshotRequest{Family: family, Cursor: cursor})
	if err != nil {
		return api.SnapshotResponse{}, err
	}
	var out api.SnapshotResponse
	err = c.do(ctx, http.MethodPost, "/snapshot", body, &out)
	return out, err
}

// Query runs a diversity query.
func (c *Client) Query(ctx context.Context, measure string, k int) (api.QueryResponse, error) {
	var out api.QueryResponse
	path := fmt.Sprintf("/query?k=%d&measure=%s", k, url.QueryEscape(measure))
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	var out api.StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Ready performs a single readiness probe — no retries, no backoff:
// the health checker wants the raw signal, and its own cadence is the
// retry loop.
func (c *Client) Ready(ctx context.Context) error {
	return c.attempt(ctx, http.MethodGet, "/readyz", nil, nil)
}

// do runs one request with the full retry policy. path is relative to
// the versioned prefix ("/ingest" → "/v1/ingest").
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		// The outer context expiring is the caller's deadline, not the
		// attempt's: stop retrying regardless of the error's shape.
		if attempt >= c.retries || !retryable(err) || ctx.Err() != nil {
			return err
		}
		wait := c.jitter(backoff(c.cfg.BackoffBase, c.cfg.BackoffCap, attempt))
		// Retry-After is a floor, never a ceiling: an overloaded server
		// asking for N seconds gets at least N seconds, but a backoff
		// already past it is not shortened.
		var he *HTTPError
		if errors.As(err, &he) && he.RetryAfter > wait {
			wait = he.RetryAfter
		}
		if c.cfg.OnRetry != nil {
			c.cfg.OnRetry(wait)
		}
		if c.sleep(ctx, wait) != nil {
			return err // deadline expired mid-backoff; surface the request error
		}
	}
}

// backoff is the capped exponential schedule before jitter:
// min(cap, base·2^attempt).
func backoff(base, cap time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	return min(d, cap)
}

// retryable classifies an attempt failure: connection-level errors and
// the transient statuses (429 back-pressure, 5xx) retry; everything
// else — 4xx contract violations — surfaces immediately.
func retryable(err error) bool {
	var he *HTTPError
	if errors.As(err, &he) {
		switch he.Status {
		case http.StatusTooManyRequests,
			http.StatusInternalServerError,
			http.StatusBadGateway,
			http.StatusServiceUnavailable,
			http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return true // transport-level: refused, reset, attempt timeout
}

// attempt runs exactly one HTTP round trip under the per-attempt
// deadline, decoding a 2xx body into out (when non-nil) and any other
// status into an *HTTPError.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	actx, cancel := ctx, context.CancelFunc(func() {})
	if c.cfg.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	}
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+api.Prefix+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		if out == nil {
			_, err := io.Copy(io.Discard, resp.Body)
			return err
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	he := &HTTPError{Status: resp.StatusCode}
	var env api.ErrorEnvelope
	if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&env) == nil {
		he.Code, he.Message = env.Error.Code, env.Error.Message
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			he.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return he
}
