package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"divmax"
)

// Consistent-hash routing of ingest and delete batches. Each worker
// owns vnodes points on a 64-bit ring; a stream point hashes (FNV-1a
// over its coordinates' float64 bits) to the ring and is routed to the
// first live vnode clockwise. The properties the coordinator needs:
//
//   - Deterministic: the same point always routes to the same worker
//     while the live set is unchanged — which is what lets the
//     equivalence test align per-worker streams with a single-process
//     reference's shards.
//   - Minimal disruption: evicting a worker reroutes only its arcs;
//     everyone else's points stay put, so the readmitted worker's
//     WAL-recovered state is still where the ring expects the bulk of
//     its keys.
//
// Composability makes any partition quality-neutral (the paper's
// "arbitrary partition" of round 1), so the ring is purely an
// operational choice — stable routing under membership churn — not a
// correctness one.

const defaultVNodes = 64

type ring struct {
	hashes []uint64 // sorted
	owners []int    // owners[i] is the worker of hashes[i]
}

func newRing(workers, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = defaultVNodes
	}
	type vnode struct {
		h uint64
		w int
	}
	vs := make([]vnode, 0, workers*vnodes)
	for w := 0; w < workers; w++ {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "worker-%d-vnode-%d", w, v)
			vs = append(vs, vnode{h: h.Sum64(), w: w})
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].h < vs[j].h })
	r := &ring{hashes: make([]uint64, len(vs)), owners: make([]int, len(vs))}
	for i, v := range vs {
		r.hashes[i] = v.h
		r.owners[i] = v.w
	}
	return r
}

// owner routes hash h to the first vnode clockwise whose worker is
// alive, or -1 when no worker is.
func (r *ring) owner(h uint64, alive func(int) bool) int {
	n := len(r.hashes)
	start := sort.Search(n, func(i int) bool { return r.hashes[i] >= h })
	for i := 0; i < n; i++ {
		w := r.owners[(start+i)%n]
		if alive(w) {
			return w
		}
	}
	return -1
}

// hashPoint hashes a point's coordinates (their exact float64 bit
// patterns, little-endian) for ring placement.
func hashPoint(p divmax.Vector) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range p {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return h.Sum64()
}
