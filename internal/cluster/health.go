package cluster

import (
	"context"
	"time"
)

// The active health checker. Every ProbeInterval the coordinator
// probes each worker's /v1/readyz concurrently, single-attempt, under
// ProbeTimeout. FailAfter consecutive failures evict the worker:
// ingest reroutes along the ring, healthy-path queries count it
// missing (→ degraded answers), deletes fail closed. The first
// successful probe afterwards readmits it — a worker that came back
// from a WAL replay reports ready only once every shard has recovered,
// so readmission never races recovery — and bumps its incarnation so
// the merge caches drop their cursors and re-read it in full.
//
// Eviction is deliberately probe-driven only: a request failure counts
// a consecutive failure nowhere. Requests already have their own retry
// policy, and tying membership to request outcomes would let one
// slow query evict a worker that every probe finds healthy.

func (co *Coordinator) probeLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			co.probeAll()
		}
	}
}

// ProbeNow runs one synchronous probe round — what the chaos tests use
// to advance membership deterministically instead of sleeping through
// ticker cadences. Safe concurrently with the background loop.
func (co *Coordinator) ProbeNow() { co.probeAll() }

func (co *Coordinator) probeAll() {
	done := make(chan struct{}, len(co.workers))
	for _, wk := range co.workers {
		go func(wk *worker) {
			co.probe(wk)
			done <- struct{}{}
		}(wk)
	}
	for range co.workers {
		<-done
	}
}

func (co *Coordinator) probe(wk *worker) {
	ctx, cancel := context.WithTimeout(context.Background(), co.cfg.ProbeTimeout)
	defer cancel()
	start := time.Now()
	err := wk.client.Ready(ctx)
	wk.lastProbeNS.Store(int64(time.Since(start)))
	if err != nil {
		fails := wk.consecFails.Add(1)
		if int(fails) >= co.cfg.FailAfter && wk.admitted.CompareAndSwap(true, false) {
			wk.evictions.Add(1)
			logf("cluster: worker %d (%s) evicted after %d failed probes: %v", wk.id, wk.url, fails, err)
		}
		return
	}
	wk.consecFails.Store(0)
	if wk.admitted.CompareAndSwap(false, true) {
		wk.incarnation.Add(1)
		logf("cluster: worker %d (%s) readmitted; snapshot cursors invalidated", wk.id, wk.url)
	}
}
