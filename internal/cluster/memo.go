package cluster

import (
	"container/list"

	"divmax"
)

// answerMemo is the coordinator's bounded per-state (measure, k) answer
// memo — the same LRU the single-process query cache keeps
// (internal/server's solutionMemo), minus the warm-start replay indices
// the coordinator does not carry. A memoized answer is a pure function
// of the merged state it is keyed under, so it is valid exactly as long
// as that state is (an empty delta round carries the whole memo over).
// Callers synchronize access under the owning cache's mutex.
type answerMemo struct {
	cap     int
	entries map[answerKey]*list.Element
	order   *list.List // front = most recently used
}

type answerKey struct {
	measure divmax.Measure
	k       int
}

// solvedAnswer is a memoized answer, stored response-ready (non-nil
// solution, finite value).
type solvedAnswer struct {
	sol   []divmax.Vector
	val   float64
	exact bool
}

type answerEntry struct {
	key answerKey
	val solvedAnswer
}

func newAnswerMemo(cap int) *answerMemo {
	if cap < 1 {
		cap = 1
	}
	return &answerMemo{
		cap:     cap,
		entries: make(map[answerKey]*list.Element),
		order:   list.New(),
	}
}

func (m *answerMemo) get(key answerKey) (solvedAnswer, bool) {
	el, ok := m.entries[key]
	if !ok {
		return solvedAnswer{}, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*answerEntry).val, true
}

func (m *answerMemo) put(key answerKey, val solvedAnswer) {
	if el, ok := m.entries[key]; ok {
		el.Value.(*answerEntry).val = val
		m.order.MoveToFront(el)
		return
	}
	m.entries[key] = m.order.PushFront(&answerEntry{key: key, val: val})
	if m.order.Len() > m.cap {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.entries, oldest.Value.(*answerEntry).key)
	}
}
