// Package cluster is divmaxd's multi-node tier: a coordinator that
// deals /v1/ingest and /v1/delete batches across N remote divmaxd
// workers by consistent hashing, and answers /v1/query by fanning out
// snapshot requests and running the round-2 merge + solve itself — the
// paper's MapReduce round-1/round-2 split made literal across
// processes, where each worker's merged core-set is a round-1 output
// and the coordinator is the round-2 reducer.
//
// Composability (Section 4 of the paper) is what makes the tier sound:
// the union of any subset of per-worker core-sets is a valid core-set
// for the points those workers ingested, with the same α+ε guarantee.
// The engineering interest is therefore all in the failure path, and
// that is what this package layers on:
//
//   - a worker client with per-attempt deadlines and capped
//     exponential backoff with jitter, honoring Retry-After as a floor
//     (client.go);
//   - hedged snapshot fan-out — a second attempt to a lagging worker
//     after an adaptive latency percentile (query.go);
//   - an active health checker probing /v1/readyz, evicting workers
//     that keep failing and readmitting them once they answer again —
//     with an incarnation bump that invalidates cached snapshot
//     cursors, so a recovered worker is re-read from scratch
//     (health.go);
//   - quorum-degraded queries: with workers missing, the coordinator
//     answers from the survivors ("degraded": true, workers_missing
//     set) as long as at least Quorum workers respond, and fails
//     closed with 503 below that.
//
// The coordinator serves the same /v1 surface as a single divmaxd —
// same wire types, same error envelope — so clients need not know
// which tier they are talking to.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"divmax"
	"divmax/internal/api"
	"divmax/internal/dataset"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers is the list of worker base URLs ("http://host:port").
	// Required, order-significant: worker IDs, ring placement, and the
	// merge order of per-worker core-sets all follow it.
	Workers []string
	// MaxK is the largest solution size queries may request (default
	// 16). It must not exceed the workers' own -maxk: their core-sets
	// are sized to support it.
	MaxK int
	// SolveWorkers bounds the round-2 solve parallelism per query
	// (default GOMAXPROCS). Selections are bit-identical for every
	// value.
	SolveWorkers int
	// SolutionMemo caps the per-state (measure, k) answer memo
	// (default 128).
	SolutionMemo int
	// DeltaBudget caps the incremental patch of the merge cache, as in
	// the single-process server: patch only when the per-worker deltas
	// total at most DeltaBudget × the cached union size. 0 means the
	// default (0.25); negative disables patching.
	DeltaBudget float64
	// Quorum is the minimum number of responsive workers a query
	// needs: with fewer the coordinator fails closed (503), with at
	// least Quorum but not all it answers degraded. 0 means a majority
	// (N/2+1); values are clamped into [1, N].
	Quorum int
	// QueryDeadline bounds a /query end to end — fan-out, merge, solve
	// (default 30s; negative disables). IngestDeadline is the same for
	// /ingest and /delete.
	QueryDeadline  time.Duration
	IngestDeadline time.Duration
	// ProbeInterval is the health checker's cadence (default 2s;
	// negative disables the prober — workers are then never evicted).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /v1/readyz probe (default min(1s,
	// ProbeInterval)).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive failed probes that evict a worker
	// (default 3; minimum 1).
	FailAfter int
	// HedgeAfter sets the snapshot hedging delay: 0 (the default)
	// adapts it to a percentile of recently observed snapshot
	// latencies, a positive value fixes it, a negative value disables
	// hedging.
	HedgeAfter time.Duration
	// VNodes is the per-worker virtual node count on the hash ring
	// (default 64).
	VNodes int
	// Client is the template for the per-worker clients: retry policy,
	// per-attempt timeout, transport. BaseURL and OnRetry are set per
	// worker.
	Client ClientConfig
}

func (c Config) withDefaults() Config {
	if c.MaxK < 1 {
		c.MaxK = 16
	}
	if c.SolveWorkers < 1 {
		c.SolveWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SolutionMemo < 1 {
		c.SolutionMemo = 128
	}
	if c.DeltaBudget == 0 {
		c.DeltaBudget = 0.25
	}
	n := len(c.Workers)
	if c.Quorum < 1 {
		c.Quorum = n/2 + 1
	}
	if c.Quorum > n {
		c.Quorum = n
	}
	switch {
	case c.QueryDeadline == 0:
		c.QueryDeadline = 30 * time.Second
	case c.QueryDeadline < 0:
		c.QueryDeadline = 0
	}
	switch {
	case c.IngestDeadline == 0:
		c.IngestDeadline = 30 * time.Second
	case c.IngestDeadline < 0:
		c.IngestDeadline = 0
	}
	switch {
	case c.ProbeInterval == 0:
		c.ProbeInterval = 2 * time.Second
	case c.ProbeInterval < 0:
		c.ProbeInterval = 0 // prober disabled
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
		if c.ProbeInterval > 0 && c.ProbeInterval < c.ProbeTimeout {
			c.ProbeTimeout = c.ProbeInterval
		}
	}
	if c.FailAfter < 1 {
		c.FailAfter = 3
	}
	if c.VNodes < 1 {
		c.VNodes = defaultVNodes
	}
	return c
}

var errCoordDraining = errors.New("cluster: coordinator draining, not accepting requests")

// worker is the coordinator's view of one remote divmaxd.
type worker struct {
	id     int
	url    string
	client *Client

	// admitted is flipped by the health checker: an evicted worker
	// receives no traffic (ingest reroutes along the ring, queries
	// count it missing) until a probe succeeds again.
	admitted    atomic.Bool
	consecFails atomic.Int32
	lastProbeNS atomic.Int64
	// incarnation is bumped on every readmission; merge-cache cursors
	// remember the incarnation they were fetched under, so a recovered
	// worker — whether it replayed its WAL or restarted empty — is
	// always re-read with a full snapshot instead of a delta against a
	// view it may no longer hold.
	incarnation atomic.Uint64

	hedged    atomic.Int64
	retries   atomic.Int64
	evictions atomic.Int64
	ingested  atomic.Int64
}

// Coordinator is the multi-node tier's front end. Create one with New,
// mount Handler on an http.Server, Close it to stop the prober.
type Coordinator struct {
	cfg     Config
	workers []*worker
	ring    *ring

	dim      atomic.Int64
	draining atomic.Bool

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// caches holds the per-family merge caches (query.go), indexed
	// like the server's: 0 edge (SMM), 1 proxy (SMM-EXT).
	caches [2]coordCache

	// lats is the rolling window of successful snapshot round-trip
	// times (nanoseconds) the adaptive hedge delay is computed from.
	latMu  sync.Mutex
	lats   []float64
	latPos int

	queries           atomic.Int64
	merges            atomic.Int64
	mergeNanos        atomic.Int64
	cacheHits         atomic.Int64
	missesCold        atomic.Int64
	missesInvalidated atomic.Int64
	deltaPatches      atomic.Int64
	fullRebuilds      atomic.Int64
	tiledSolves       atomic.Int64
	degradedQueries   atomic.Int64
	deletesRequested  atomic.Int64
	deletesEvicting   atomic.Int64
	deletesSpares     atomic.Int64
	deletesTombstoned atomic.Int64
}

// logf is the package's error logger; a variable so tests can intercept
// what gets logged.
var logf = log.Printf

// New builds a coordinator over cfg.Workers and starts its health
// checker. Workers start admitted: the prober discovers reality within
// one interval, and an optimistic start means an all-healthy cluster
// serves immediately.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	co := &Coordinator{cfg: cfg, workers: make([]*worker, len(cfg.Workers))}
	for i, u := range cfg.Workers {
		w := &worker{id: i, url: strings.TrimRight(u, "/")}
		ccfg := cfg.Client
		ccfg.BaseURL = w.url
		userRetry := ccfg.OnRetry
		ccfg.OnRetry = func(wait time.Duration) {
			w.retries.Add(1)
			if userRetry != nil {
				userRetry(wait)
			}
		}
		w.client = NewClient(ccfg)
		w.admitted.Store(true)
		co.workers[i] = w
	}
	co.ring = newRing(len(co.workers), cfg.VNodes)
	for i := range co.caches {
		co.caches[i].rebuild = make(chan struct{}, 1)
	}
	if cfg.ProbeInterval > 0 {
		co.stop = make(chan struct{})
		co.wg.Add(1)
		go co.probeLoop()
	}
	return co, nil
}

// Config returns the effective (defaulted) configuration.
func (co *Coordinator) Config() Config { return co.cfg }

// Close stops the health checker and marks the coordinator draining:
// every subsequent request is rejected with 503. Idempotent.
func (co *Coordinator) Close() {
	co.closeOnce.Do(func() {
		co.draining.Store(true)
		if co.stop != nil {
			close(co.stop)
		}
		co.wg.Wait()
	})
}

// Ready reports whether the coordinator can currently answer queries:
// not draining and at least Quorum workers admitted.
func (co *Coordinator) Ready() bool {
	return !co.draining.Load() && co.admittedCount() >= co.cfg.Quorum
}

func (co *Coordinator) admittedCount() int {
	n := 0
	for _, w := range co.workers {
		if w.admitted.Load() {
			n++
		}
	}
	return n
}

// Handler returns the coordinator's HTTP API — the same surface and
// wire bytes as a single divmaxd, under api.Prefix with the legacy
// unversioned aliases.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	healthz := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}
	for _, prefix := range []string{api.Prefix, ""} {
		mux.HandleFunc(prefix+"/ingest", co.handleIngest)
		mux.HandleFunc(prefix+"/delete", co.handleDelete)
		mux.HandleFunc(prefix+"/query", co.handleQuery)
		mux.HandleFunc(prefix+"/stats", co.handleStats)
		mux.HandleFunc(prefix+"/healthz", healthz)
		mux.HandleFunc(prefix+"/readyz", co.handleReadyz)
	}
	return mux
}

// maxIngestBody mirrors the worker-side bound.
const maxIngestBody = 32 << 20

// decodeBatch decodes an ingest- or delete-shaped body into req
// (a pointer to a struct with a Points field), enforcing the body
// bound and the trailing-data check. It reports whether decoding
// succeeded; on failure the error response has been written.
func decodeBatch(w http.ResponseWriter, r *http.Request, req any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err := dec.Decode(req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes; split the batch", tooBig.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "trailing data after the points object")
		return false
	}
	return true
}

func (co *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if co.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "%v", errCoordDraining)
		return
	}
	var req api.IngestRequest
	if !decodeBatch(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, api.IngestResponse{Accepted: 0, Shards: len(co.workers)})
		return
	}
	if err := dataset.ValidateVectors(req.Points); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dim := int64(len(req.Points[0]))
	if dim == 0 {
		httpError(w, http.StatusBadRequest, "points must have at least one coordinate")
		return
	}
	setDim := co.dim.CompareAndSwap(0, dim)
	if !setDim && co.dim.Load() != dim {
		httpError(w, http.StatusBadRequest, "point dimension %d does not match the dataset dimension %d", dim, co.dim.Load())
		return
	}

	// Route each point along the ring, skipping evicted workers: a
	// rerouted point lands on the next live arc, so ingest keeps
	// flowing through a partial outage (composability makes the
	// placement quality-neutral).
	alive := func(i int) bool { return co.workers[i].admitted.Load() }
	batches := make([][]divmax.Vector, len(co.workers))
	for _, p := range req.Points {
		owner := co.ring.owner(hashPoint(p), alive)
		if owner < 0 {
			httpError(w, http.StatusServiceUnavailable, "cluster: no admitted workers")
			return
		}
		batches[owner] = append(batches[owner], p)
	}

	ctx, cancel := requestCtx(r, co.cfg.IngestDeadline)
	defer cancel()
	errs := make([]error, len(co.workers))
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for i, b := range batches {
		if len(b) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, b []divmax.Vector) {
			defer wg.Done()
			wk := co.workers[i]
			if _, err := wk.client.Ingest(ctx, b); err != nil {
				errs[i] = fmt.Errorf("worker %d (%s): %w", wk.id, wk.url, err)
				return
			}
			wk.ingested.Add(int64(len(b)))
			delivered.Add(int64(len(b)))
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// If this request was the one that claimed the dataset
			// dimension and no point landed anywhere, release the
			// claim: a wholly rejected first batch (e.g. a dim the
			// workers refuse) must not pin the coordinator to it.
			// Best-effort — the workers stay authoritative either way.
			if setDim && delivered.Load() == 0 {
				co.dim.CompareAndSwap(dim, 0)
			}
			// A partial fan-out leaves the delivered sub-batches
			// ingested (at-least-once, like a partial shard fan-out in
			// the single-process server); the error tells the caller
			// the batch did not land in full.
			co.writeFailure(w, err)
			return
		}
	}
	writeJSON(w, api.IngestResponse{Accepted: len(req.Points), Shards: len(co.workers)})
}

func (co *Coordinator) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if co.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "%v", errCoordDraining)
		return
	}
	var req api.DeleteRequest
	if !decodeBatch(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, api.DeleteResponse{Shards: len(co.workers)})
		return
	}
	if err := dataset.ValidateVectors(req.Points); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if dim, want := int64(len(req.Points[0])), co.dim.Load(); want != 0 && dim != want {
		httpError(w, http.StatusBadRequest, "point dimension %d does not match the dataset dimension %d", dim, want)
		return
	}
	// Deletes fail closed on an evicted worker: eviction reroutes
	// ingest, so any worker may hold any value — a broadcast that
	// cannot reach everyone cannot guarantee removal. (Retrying a
	// delete after readmission is idempotent.)
	for _, wk := range co.workers {
		if !wk.admitted.Load() {
			httpError(w, http.StatusServiceUnavailable, "cluster: worker %d (%s) evicted; deletes fail closed", wk.id, wk.url)
			return
		}
	}

	ctx, cancel := requestCtx(r, co.cfg.IngestDeadline)
	defer cancel()
	outcomes := make([][]int, len(co.workers))
	errs := make([]error, len(co.workers))
	var wg sync.WaitGroup
	for i, wk := range co.workers {
		wg.Add(1)
		go func(i int, wk *worker) {
			defer wg.Done()
			resp, err := wk.client.Delete(ctx, req.Points, true)
			if err != nil {
				errs[i] = fmt.Errorf("worker %d (%s): %w", wk.id, wk.url, err)
				return
			}
			outcomes[i] = resp.Outcomes
		}(i, wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			co.writeFailure(w, err)
			return
		}
	}
	// Fold each point's strongest outcome across workers (evicted >
	// spare > tombstone), exactly as one server folds across shards.
	folded := make([]int, len(req.Points))
	for _, outs := range outcomes {
		if len(outs) != len(req.Points) {
			httpError(w, http.StatusServiceUnavailable, "cluster: worker returned %d outcomes for %d points (version skew?)", len(outs), len(req.Points))
			return
		}
		for j, o := range outs {
			folded[j] = max(folded[j], o)
		}
	}
	resp := api.DeleteResponse{Requested: len(req.Points), Shards: len(co.workers)}
	for _, o := range folded {
		switch o {
		case int(divmax.DeleteEvicted):
			resp.Evicted++
		case int(divmax.DeleteSpare):
			resp.Spares++
		default:
			resp.Tombstones++
		}
	}
	if req.WantOutcomes {
		resp.Outcomes = folded
	}
	co.deletesRequested.Add(int64(resp.Requested))
	co.deletesEvicting.Add(int64(resp.Evicted))
	co.deletesSpares.Add(int64(resp.Spares))
	co.deletesTombstoned.Add(int64(resp.Tombstones))
	writeJSON(w, resp)
}

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := api.StatsResponse{
		Shards:            []api.ShardStats{},
		Queries:           co.queries.Load(),
		Merges:            co.merges.Load(),
		LastMergeMS:       float64(co.mergeNanos.Load()) / float64(time.Millisecond),
		CacheHits:         co.cacheHits.Load(),
		CacheMisses:       co.missesCold.Load() + co.missesInvalidated.Load(),
		MissesCold:        co.missesCold.Load(),
		MissesInvalidated: co.missesInvalidated.Load(),
		DeltaPatches:      co.deltaPatches.Load(),
		FullRebuilds:      co.fullRebuilds.Load(),
		DeletesRequested:  co.deletesRequested.Load(),
		DeletesEvicting:   co.deletesEvicting.Load(),
		DeletesSpares:     co.deletesSpares.Load(),
		DeletesTombstoned: co.deletesTombstoned.Load(),
		SolveWorkers:      co.cfg.SolveWorkers,
		TiledSolves:       co.tiledSolves.Load(),
		DegradedQueries:   co.degradedQueries.Load(),
		MaxK:              co.cfg.MaxK,
		Draining:          co.draining.Load(),
		Quorum:            co.cfg.Quorum,
		Workers:           make([]api.WorkerStats, len(co.workers)),
	}
	for i := range co.caches {
		c := &co.caches[i]
		c.mu.Lock()
		if st := c.state; st != nil {
			resp.CachedCoresetPoints += len(st.union)
			if st.engine != nil {
				resp.CachedMatrixBytes += st.engine.MatrixBytes()
			}
		}
		c.mu.Unlock()
	}
	for i, wk := range co.workers {
		ws := api.WorkerStats{
			ID:                  wk.id,
			URL:                 wk.url,
			State:               "healthy",
			ConsecutiveFailures: int(wk.consecFails.Load()),
			LastProbeMS:         float64(wk.lastProbeNS.Load()) / float64(time.Millisecond),
			HedgedRequests:      wk.hedged.Load(),
			Retries:             wk.retries.Load(),
			Evictions:           wk.evictions.Load(),
			IngestedPoints:      wk.ingested.Load(),
		}
		switch {
		case !wk.admitted.Load():
			ws.State = "evicted"
			resp.WorkersEvicted++
		case ws.ConsecutiveFailures > 0:
			ws.State = "suspect"
		}
		resp.Workers[i] = ws
		resp.IngestedTotal += ws.IngestedPoints
	}
	writeJSON(w, resp)
}

// handleReadyz: a coordinator below quorum answers 503 so load
// balancers stop routing to it; /healthz stays ok (the process is
// alive, and may regain quorum).
func (co *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if co.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "%v", errCoordDraining)
		return
	}
	if n := co.admittedCount(); n < co.cfg.Quorum {
		httpError(w, http.StatusServiceUnavailable, "cluster: %d of %d workers admitted, quorum %d", n, len(co.workers), co.cfg.Quorum)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
