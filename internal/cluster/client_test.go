package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"divmax"
	"divmax/internal/api"
)

// captureClient builds a client against handler whose backoff waits are
// captured instead of slept and whose jitter is the identity, so the
// retry schedule is asserted exactly.
func captureClient(t *testing.T, handler http.Handler, cfg ClientConfig) (*Client, *[]time.Duration) {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	cfg.BaseURL = ts.URL
	c := NewClient(cfg)
	waits := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*waits = append(*waits, d)
		return nil
	}
	c.jitter = func(d time.Duration) time.Duration { return d }
	return c, waits
}

// failNTimes answers the first n requests with status (and Retry-After
// when retryAfter > 0), then succeeds with an empty ingest response.
func failNTimes(n *atomic.Int64, limit int, status, retryAfter int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= int64(limit) {
			if retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			}
			w.WriteHeader(status)
			w.Write([]byte(`{"error":{"code":"unavailable","message":"injected"}}`))
			return
		}
		w.Write([]byte(`{"accepted":1,"shards":1}`))
	})
}

func TestClientBackoffSchedule(t *testing.T) {
	var n atomic.Int64
	c, waits := captureClient(t, failNTimes(&n, 3, http.StatusServiceUnavailable, 0), ClientConfig{
		BackoffBase: 50 * time.Millisecond,
		BackoffCap:  2 * time.Second,
	})
	if _, err := c.Ingest(context.Background(), []divmax.Vector{{1, 2}}); err != nil {
		t.Fatalf("Ingest after retries: %v", err)
	}
	if n.Load() != 4 {
		t.Fatalf("attempts = %d, want 4 (3 failures + success)", n.Load())
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	if len(*waits) != len(want) {
		t.Fatalf("waits = %v, want %v", *waits, want)
	}
	for i, w := range want {
		if (*waits)[i] != w {
			t.Fatalf("wait[%d] = %v, want %v", i, (*waits)[i], w)
		}
	}
}

// TestClientRetryAfterFloor: a 429's Retry-After raises the wait when
// the backoff is shorter — the floor behavior the worker's load
// shedding depends on.
func TestClientRetryAfterFloor(t *testing.T) {
	var n atomic.Int64
	c, waits := captureClient(t, failNTimes(&n, 2, http.StatusTooManyRequests, 1), ClientConfig{
		BackoffBase: 50 * time.Millisecond,
	})
	if _, err := c.Ingest(context.Background(), []divmax.Vector{{1}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	for i, w := range *waits {
		if w != time.Second {
			t.Fatalf("wait[%d] = %v, want 1s (Retry-After floor over %v backoff)", i, w, 50*time.Millisecond<<i)
		}
	}
	if len(*waits) != 2 {
		t.Fatalf("waits = %v, want two floored waits", *waits)
	}
}

// TestClientRetryAfterNotCeiling: a backoff already past the hint is
// not shortened.
func TestClientRetryAfterNotCeiling(t *testing.T) {
	var n atomic.Int64
	c, waits := captureClient(t, failNTimes(&n, 1, http.StatusTooManyRequests, 1), ClientConfig{
		BackoffBase: 3 * time.Second,
		BackoffCap:  5 * time.Second,
	})
	if _, err := c.Ingest(context.Background(), []divmax.Vector{{1}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if len(*waits) != 1 || (*waits)[0] != 3*time.Second {
		t.Fatalf("waits = %v, want [3s] (backoff above the Retry-After hint)", *waits)
	}
}

func TestClientNonRetryable(t *testing.T) {
	var n atomic.Int64
	c, waits := captureClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		httpError(w, http.StatusBadRequest, "bad k")
	}), ClientConfig{})
	_, err := c.Query(context.Background(), "remote-edge", 99)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusBadRequest || he.Code != api.CodeBadRequest {
		t.Fatalf("err = %v, want *HTTPError with 400/bad_request", err)
	}
	if n.Load() != 1 || len(*waits) != 0 {
		t.Fatalf("attempts = %d, waits = %v: a 400 must not retry", n.Load(), *waits)
	}
}

// TestClientRetriesDisabled: MaxRetries < 0 means one attempt, raw
// failure — cmd/bench's overload suite counts unretried 429s this way.
func TestClientRetriesDisabled(t *testing.T) {
	var n atomic.Int64
	c, waits := captureClient(t, failNTimes(&n, 100, http.StatusTooManyRequests, 1), ClientConfig{
		MaxRetries: -1,
	})
	_, err := c.Ingest(context.Background(), []divmax.Vector{{1}})
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want raw 429", err)
	}
	if he.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s parsed from the header", he.RetryAfter)
	}
	if n.Load() != 1 || len(*waits) != 0 {
		t.Fatalf("attempts = %d, waits = %v: MaxRetries=-1 must not retry", n.Load(), *waits)
	}
}

// TestClientContextStopsRetries: the caller's context expiring during a
// backoff surfaces the request error instead of sleeping on.
func TestClientContextStopsRetries(t *testing.T) {
	var n atomic.Int64
	c, _ := captureClient(t, failNTimes(&n, 100, http.StatusServiceUnavailable, 0), ClientConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	_, err := c.Ingest(ctx, []divmax.Vector{{1}})
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the 503 the last attempt saw", err)
	}
	if n.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (canceled during the first backoff)", n.Load())
	}
}

func TestBackoffCap(t *testing.T) {
	if d := backoff(50*time.Millisecond, 2*time.Second, 20); d != 2*time.Second {
		t.Fatalf("backoff capped = %v, want 2s", d)
	}
	if d := backoff(50*time.Millisecond, 2*time.Second, 0); d != 50*time.Millisecond {
		t.Fatalf("backoff attempt 0 = %v, want base", d)
	}
}

// TestDefaultJitterRange: equal jitter keeps every wait within
// [d/2, d] — spread, never collapse.
func TestDefaultJitterRange(t *testing.T) {
	c := NewClient(ClientConfig{BaseURL: "http://unused"})
	d := 800 * time.Millisecond
	for i := 0; i < 200; i++ {
		if j := c.jitter(d); j < d/2 || j > d {
			t.Fatalf("jitter(%v) = %v, outside [d/2, d]", d, j)
		}
	}
}

// TestClientRetryCountsViaOnRetry: the coordinator's per-worker retry
// counter hook observes every backoff.
func TestClientRetryCountsViaOnRetry(t *testing.T) {
	var n, retries atomic.Int64
	c, _ := captureClient(t, failNTimes(&n, 2, http.StatusServiceUnavailable, 0), ClientConfig{
		OnRetry: func(time.Duration) { retries.Add(1) },
	})
	if _, err := c.Ingest(context.Background(), []divmax.Vector{{1}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if retries.Load() != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", retries.Load())
	}
}
