package cluster

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"time"

	"divmax/internal/faults"
	"divmax/internal/server"
)

// The in-process cluster harness: N real divmaxd workers, each a
// server.Server behind an httptest listener (optionally wrapped in the
// fault injector's HTTP middleware), fronted by a real Coordinator —
// everything the multi-node tier does over real HTTP on the loopback,
// killable and restartable per worker. The chaos tests and cmd/bench's
// cluster suite both run on it; cmd/divmaxd -coordinator wires the same
// Coordinator against out-of-process workers instead.

// HarnessOptions configures StartCluster.
type HarnessOptions struct {
	// Workers is the worker count (default 3).
	Workers int
	// Worker is the per-worker server configuration. DataDir, when set
	// below via DataRoot, is assigned per worker.
	Worker server.Config
	// DataRoot, when non-empty, makes every worker durable under
	// DataRoot/worker-N — which is what lets a killed worker recover.
	DataRoot string
	// Coordinator is the coordinator configuration; Workers is filled
	// in by the harness.
	Coordinator Config
	// Injector, when non-nil, wraps every worker's handler in
	// faults.HTTPMiddleware with the worker's ID, so tests can drop,
	// delay, or fail requests per worker and per path.
	Injector *faults.Injector
}

// WorkerNode is one harness worker: the live server, its HTTP front,
// and everything needed to kill it and restart it at the same address.
type WorkerNode struct {
	ID   int
	addr string
	cfg  server.Config
	inj  *faults.Injector

	Srv *server.Server
	ts  *httptest.Server
}

// URL returns the worker's base URL, stable across Kill/Restart.
func (wn *WorkerNode) URL() string { return "http://" + wn.addr }

// Kill crashes the worker: in-flight and future connections are
// severed, the port is released, and the server shuts down
// crash-shaped — no final checkpoint, so a durable worker's next start
// exercises real WAL replay.
func (wn *WorkerNode) Kill() {
	wn.ts.CloseClientConnections()
	wn.ts.Close()
	wn.Srv.CloseAbrupt()
	wn.Srv, wn.ts = nil, nil
}

// Restart brings a killed worker back at its old address with its old
// configuration — same DataDir, so a durable worker recovers its WAL.
// The listener rebind retries briefly: the killed listener's port can
// take a moment to release.
func (wn *WorkerNode) Restart() error {
	if wn.Srv != nil {
		return fmt.Errorf("cluster: worker %d is running", wn.ID)
	}
	srv, err := server.New(wn.cfg)
	if err != nil {
		return err
	}
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ln, err = net.Listen("tcp", wn.addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			srv.Close()
			return fmt.Errorf("cluster: rebinding worker %d at %s: %w", wn.ID, wn.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts := httptest.NewUnstartedServer(wn.wrap(srv.Handler()))
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	wn.Srv, wn.ts = srv, ts
	return nil
}

func (wn *WorkerNode) wrap(h http.Handler) http.Handler {
	if wn.inj != nil {
		return faults.HTTPMiddleware(wn.inj, wn.ID, h)
	}
	return h
}

// Harness is a running in-process cluster.
type Harness struct {
	Workers []*WorkerNode
	Coord   *Coordinator
	// CoordServer fronts Coord.Handler(); CoordServer.URL is what
	// clients talk to.
	CoordServer *httptest.Server
}

// StartCluster boots opts.Workers workers and a coordinator over them.
func StartCluster(opts HarnessOptions) (*Harness, error) {
	if opts.Workers < 1 {
		opts.Workers = 3
	}
	h := &Harness{}
	urls := make([]string, opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		cfg := opts.Worker
		if opts.DataRoot != "" {
			cfg.DataDir = filepath.Join(opts.DataRoot, fmt.Sprintf("worker-%d", i))
		}
		srv, err := server.New(cfg)
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("cluster: starting worker %d: %w", i, err)
		}
		wn := &WorkerNode{ID: i, cfg: cfg, inj: opts.Injector, Srv: srv}
		wn.ts = httptest.NewServer(wn.wrap(srv.Handler()))
		wn.addr = wn.ts.Listener.Addr().String()
		h.Workers = append(h.Workers, wn)
		urls[i] = wn.URL()
	}
	ccfg := opts.Coordinator
	ccfg.Workers = urls
	co, err := New(ccfg)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.Coord = co
	h.CoordServer = httptest.NewServer(co.Handler())
	return h, nil
}

// WaitWorkersReady blocks until every running worker reports Ready
// (boot recovery finished), or the timeout elapses.
func (h *Harness) WaitWorkersReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, wn := range h.Workers {
		for wn.Srv != nil && !wn.Srv.Ready() {
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: worker %d never became ready", wn.ID)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return nil
}

// Close tears the whole harness down: coordinator first (stopping the
// prober), then every running worker.
func (h *Harness) Close() {
	if h.CoordServer != nil {
		h.CoordServer.Close()
	}
	if h.Coord != nil {
		h.Coord.Close()
	}
	for _, wn := range h.Workers {
		if wn.ts != nil {
			wn.ts.Close()
		}
		if wn.Srv != nil {
			wn.Srv.Close()
		}
	}
}
