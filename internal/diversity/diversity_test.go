package diversity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/metric"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		pts[i] = v
	}
	return pts
}

func TestMeasureString(t *testing.T) {
	want := map[Measure]string{
		RemoteEdge:        "remote-edge",
		RemoteClique:      "remote-clique",
		RemoteStar:        "remote-star",
		RemoteBipartition: "remote-bipartition",
		RemoteTree:        "remote-tree",
		RemoteCycle:       "remote-cycle",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(m), m.String(), s)
		}
	}
	if s := Measure(99).String(); s != "Measure(99)" {
		t.Errorf("invalid measure String = %q", s)
	}
}

func TestParseMeasure(t *testing.T) {
	for _, m := range Measures {
		got, err := ParseMeasure(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMeasure(%q) = (%v,%v)", m.String(), got, err)
		}
	}
	// Paper's Table 3 abbreviations and bare names.
	for s, want := range map[string]Measure{
		"r-edge": RemoteEdge, "r-clique": RemoteClique, "edge": RemoteEdge,
		"Remote-Tree": RemoteTree, " cycle ": RemoteCycle, "bipartition": RemoteBipartition,
	} {
		got, err := ParseMeasure(s)
		if err != nil || got != want {
			t.Errorf("ParseMeasure(%q) = (%v,%v), want %v", s, got, err, want)
		}
	}
	if _, err := ParseMeasure("nonsense"); err == nil {
		t.Error("ParseMeasure(nonsense): expected error")
	}
}

func TestNeedsInjectiveProxy(t *testing.T) {
	want := map[Measure]bool{
		RemoteEdge: false, RemoteCycle: false,
		RemoteClique: true, RemoteStar: true, RemoteBipartition: true, RemoteTree: true,
	}
	for m, injective := range want {
		if m.NeedsInjectiveProxy() != injective {
			t.Errorf("%v.NeedsInjectiveProxy() = %v, want %v", m, !injective, injective)
		}
	}
}

func TestSequentialAlpha(t *testing.T) {
	want := map[Measure]float64{
		RemoteEdge: 2, RemoteClique: 2, RemoteStar: 2,
		RemoteBipartition: 3, RemoteTree: 4, RemoteCycle: 3,
	}
	for m, alpha := range want {
		if m.SequentialAlpha() != alpha {
			t.Errorf("%v.SequentialAlpha() = %v, want %v", m, m.SequentialAlpha(), alpha)
		}
	}
}

func TestPairCount(t *testing.T) {
	k := 7
	if got := RemoteClique.PairCount(k); got != 21 {
		t.Errorf("clique PairCount = %d, want 21", got)
	}
	if got := RemoteStar.PairCount(k); got != 6 {
		t.Errorf("star PairCount = %d, want 6", got)
	}
	if got := RemoteTree.PairCount(k); got != 6 {
		t.Errorf("tree PairCount = %d, want 6", got)
	}
	if got := RemoteBipartition.PairCount(k); got != 12 { // ⌊7/2⌋·⌈7/2⌉
		t.Errorf("bipartition PairCount = %d, want 12", got)
	}
	if got := RemoteEdge.PairCount(k); got != 1 {
		t.Errorf("edge PairCount = %d, want 1", got)
	}
	if got := RemoteCycle.PairCount(k); got != 7 {
		t.Errorf("cycle PairCount = %d, want 7", got)
	}
}

func TestEvaluateKnownConfiguration(t *testing.T) {
	// Unit square: all six measures have hand-computable values.
	pts := []metric.Vector{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	d := metric.Euclidean

	cases := []struct {
		m    Measure
		want float64
	}{
		{RemoteEdge, 1},                       // side
		{RemoteClique, 4 + 2*math.Sqrt2},      // 4 sides + 2 diagonals
		{RemoteStar, 2 + math.Sqrt2},          // any corner: two sides + diagonal
		{RemoteBipartition, 2 + 2*math.Sqrt2}, // split along a diagonal: 2 sides + 2 diagonals... see below
		{RemoteTree, 3},                       // three sides
		{RemoteCycle, 4},                      // the square
	}
	// Bipartition check: splitting into adjacent pairs {A,B},{C,D} cuts
	// 2 sides + 2 diagonals = 2+2√2 ≈ 4.83; splitting into diagonal pairs
	// {A,C},{B,D} cuts 4 sides = 4. Minimum is 4.
	cases[3].want = 4

	for _, c := range cases {
		got, exact := Evaluate(c.m, pts, d)
		if !exact {
			t.Errorf("%v: expected exact evaluation", c.m)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("%v = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestEvaluateDegenerateSets(t *testing.T) {
	d := metric.Euclidean
	single := []metric.Vector{{1, 2}}
	if v, _ := Evaluate(RemoteEdge, single, d); !math.IsInf(v, 1) {
		t.Errorf("remote-edge singleton = %v, want +Inf", v)
	}
	for _, m := range []Measure{RemoteClique, RemoteStar, RemoteBipartition, RemoteTree, RemoteCycle} {
		if v, _ := Evaluate(m, single, d); v != 0 {
			t.Errorf("%v singleton = %v, want 0", m, v)
		}
		if v, _ := Evaluate(m, nil, d); v != 0 {
			t.Errorf("%v empty = %v, want 0", m, v)
		}
	}
}

func TestEvaluateMatrixAgreesWithEvaluate(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomVectors(rng, 2+rng.Intn(8), 3)
		dist := metric.Matrix(pts, metric.Euclidean)
		for _, m := range Measures {
			v1, e1 := Evaluate(m, pts, metric.Euclidean)
			v2, e2 := EvaluateMatrix(m, dist)
			if e1 != e2 || !almostEqual(v1, v2, 1e-9) {
				t.Logf("%v: Evaluate=%v/%v EvaluateMatrix=%v/%v (seed %d)", m, v1, e1, v2, e2, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDuplicatePointsZeroEdge(t *testing.T) {
	pts := []metric.Vector{{1, 1}, {1, 1}, {5, 5}}
	if v, _ := Evaluate(RemoteEdge, pts, metric.Euclidean); v != 0 {
		t.Errorf("remote-edge with duplicates = %v, want 0", v)
	}
}

func TestMeasureOrderingsOnLine(t *testing.T) {
	// On colinear spread points, sanity-check cross-measure relations:
	// clique ≥ star, tree ≤ cycle ≤ 2·tree (metric TSP bounds).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomVectors(rng, 3+rng.Intn(6), 2)
		clique, _ := Evaluate(RemoteClique, pts, metric.Euclidean)
		star, _ := Evaluate(RemoteStar, pts, metric.Euclidean)
		tree, _ := Evaluate(RemoteTree, pts, metric.Euclidean)
		cycle, _ := Evaluate(RemoteCycle, pts, metric.Euclidean)
		if clique < star-1e-9 {
			return false
		}
		if cycle < tree-1e-9 || cycle > 2*tree+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateWeightedAllDistinct(t *testing.T) {
	// Multiplicity 1 everywhere must agree with plain Evaluate.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomVectors(rng, 2+rng.Intn(6), 2)
		mult := make([]int, len(pts))
		for i := range mult {
			mult[i] = 1
		}
		for _, m := range Measures {
			v1, _ := Evaluate(m, pts, metric.Euclidean)
			v2, _ := EvaluateWeighted(m, pts, mult, metric.Euclidean)
			if !almostEqual(v1, v2, 1e-9) {
				t.Logf("%v: %v vs %v (seed %d)", m, v1, v2, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateWeightedReplicasAtDistanceZero(t *testing.T) {
	pts := []metric.Vector{{0, 0}, {3, 0}}
	mult := []int{2, 1}
	// Expanded multiset {a,a,b}: remote-edge = 0 (two replicas).
	if v, _ := EvaluateWeighted(RemoteEdge, pts, mult, metric.Euclidean); v != 0 {
		t.Errorf("weighted remote-edge = %v, want 0", v)
	}
	// remote-clique = d(a,a)+d(a,b)+d(a,b) = 6.
	if v, _ := EvaluateWeighted(RemoteClique, pts, mult, metric.Euclidean); !almostEqual(v, 6, 1e-9) {
		t.Errorf("weighted remote-clique = %v, want 6", v)
	}
	// remote-tree: MST over {a,a,b} = 0 + 3.
	if v, _ := EvaluateWeighted(RemoteTree, pts, mult, metric.Euclidean); !almostEqual(v, 3, 1e-9) {
		t.Errorf("weighted remote-tree = %v, want 3", v)
	}
	// remote-cycle: a→a→b→a = 0+3+3.
	if v, _ := EvaluateWeighted(RemoteCycle, pts, mult, metric.Euclidean); !almostEqual(v, 6, 1e-9) {
		t.Errorf("weighted remote-cycle = %v, want 6", v)
	}
}

func TestEvaluateWeightedEquivalentToExplicitExpansion(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomVectors(rng, 2+rng.Intn(4), 2)
		mult := make([]int, len(pts))
		var expanded []metric.Vector
		for i := range mult {
			mult[i] = 1 + rng.Intn(3)
			for r := 0; r < mult[i]; r++ {
				expanded = append(expanded, pts[i])
			}
		}
		for _, m := range Measures {
			v1, _ := EvaluateWeighted(m, pts, mult, metric.Euclidean)
			v2, _ := Evaluate(m, expanded, metric.Euclidean)
			if !almostEqual(v1, v2, 1e-9) {
				t.Logf("%v: weighted %v vs expanded %v (seed %d)", m, v1, v2, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateWeightedPanics(t *testing.T) {
	pts := []metric.Vector{{0}}
	for _, fn := range []func(){
		func() { EvaluateWeighted(RemoteEdge, pts, []int{1, 2}, metric.Euclidean) },
		func() { EvaluateWeighted(RemoteEdge, pts, []int{0}, metric.Euclidean) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
