package diversity

import (
	"fmt"

	"divmax/internal/metric"
)

// EvaluateWeighted computes the generalized diversity gen-div of Section
// 6: pts[i] appears with multiplicity mult[i], and the mult[i] replicas of
// a point are treated as distinct points at distance 0 from one another.
// It expands the multiset (total size Σ mult[i], which is k in every use
// by the generalized algorithms) and evaluates the measure on the expanded
// distance matrix. The second result reports exactness, as in Evaluate.
//
// It panics if the slices have different lengths or a multiplicity is
// not positive, which always indicates a bug in the caller.
func EvaluateWeighted[P any](m Measure, pts []P, mult []int, d metric.Distance[P]) (float64, bool) {
	if len(pts) != len(mult) {
		panic(fmt.Sprintf("diversity: EvaluateWeighted with %d points but %d multiplicities", len(pts), len(mult)))
	}
	total := 0
	for i, mu := range mult {
		if mu <= 0 {
			panic(fmt.Sprintf("diversity: multiplicity %d of point %d must be positive", mu, i))
		}
		total += mu
	}
	// owner[e] = index into pts of the e-th expanded replica.
	owner := make([]int, 0, total)
	for i, mu := range mult {
		for r := 0; r < mu; r++ {
			owner = append(owner, i)
		}
	}
	// Base distances between distinct originals, computed once.
	base := metric.Matrix(pts, d)
	dist := make([][]float64, total)
	backing := make([]float64, total*total)
	for e := range dist {
		dist[e], backing = backing[:total:total], backing[total:]
	}
	for e := 0; e < total; e++ {
		for f := e + 1; f < total; f++ {
			var w float64
			if owner[e] != owner[f] {
				w = base[owner[e]][owner[f]]
			}
			dist[e][f] = w
			dist[f][e] = w
		}
	}
	return EvaluateMatrix(m, dist)
}
