// Package diversity defines the six diversity measures of the paper
// (Table 1) and evaluates them on candidate solution sets. Remote-edge,
// remote-clique, remote-star, and remote-tree are evaluated exactly in
// polynomial time. Remote-cycle (TSP weight) and remote-bipartition
// (minimum balanced cut) are NP-hard to evaluate; they are computed
// exactly up to the limits of internal/graph and by bounded heuristics
// beyond, with the exactness reported to the caller.
package diversity

import (
	"fmt"
	"math"
	"strings"

	"divmax/internal/graph"
	"divmax/internal/metric"
)

// Measure identifies one of the six diversity objectives of Table 1.
type Measure int

const (
	// RemoteEdge maximizes the minimum pairwise distance of the solution.
	RemoteEdge Measure = iota
	// RemoteClique maximizes the sum of all pairwise distances.
	RemoteClique
	// RemoteStar maximizes min_{c∈S} Σ_{q∈S\{c}} d(c,q).
	RemoteStar
	// RemoteBipartition maximizes the minimum total distance across a
	// balanced bipartition of the solution.
	RemoteBipartition
	// RemoteTree maximizes the weight of a minimum spanning tree.
	RemoteTree
	// RemoteCycle maximizes the weight of a shortest Hamiltonian cycle.
	RemoteCycle

	numMeasures
)

// Measures lists all six measures, in Table 1 order.
var Measures = []Measure{RemoteEdge, RemoteClique, RemoteStar, RemoteBipartition, RemoteTree, RemoteCycle}

var measureNames = [...]string{
	RemoteEdge:        "remote-edge",
	RemoteClique:      "remote-clique",
	RemoteStar:        "remote-star",
	RemoteBipartition: "remote-bipartition",
	RemoteTree:        "remote-tree",
	RemoteCycle:       "remote-cycle",
}

// String returns the paper's name for the measure (e.g. "remote-edge").
func (m Measure) String() string {
	if m < 0 || m >= numMeasures {
		return fmt.Sprintf("Measure(%d)", int(m))
	}
	return measureNames[m]
}

// Valid reports whether m is one of the six defined measures.
func (m Measure) Valid() bool { return m >= 0 && m < numMeasures }

// ParseMeasure parses a measure name as printed by String; it also
// accepts the "r-edge" style abbreviations used in the paper's Table 3.
func ParseMeasure(s string) (Measure, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	name = strings.TrimPrefix(name, "r-")
	name = strings.TrimPrefix(name, "remote-")
	for m, full := range measureNames {
		if strings.TrimPrefix(full, "remote-") == name {
			return Measure(m), nil
		}
	}
	return 0, fmt.Errorf("diversity: unknown measure %q", s)
}

// NeedsInjectiveProxy reports whether the measure requires the injective
// proxy function of Lemma 2 — equivalently, whether core-sets must carry
// delegate points (GMM-EXT/SMM-EXT) rather than bare kernels (GMM/SMM).
// True for remote-clique, remote-star, remote-bipartition, remote-tree.
func (m Measure) NeedsInjectiveProxy() bool {
	switch m {
	case RemoteClique, RemoteStar, RemoteBipartition, RemoteTree:
		return true
	case RemoteEdge, RemoteCycle:
		return false
	}
	panic(fmt.Sprintf("diversity: invalid measure %d", int(m)))
}

// SequentialAlpha returns the approximation factor α of the best known
// polynomial-time, linear-space sequential algorithm for the measure
// (Table 1), as implemented in internal/sequential.
func (m Measure) SequentialAlpha() float64 {
	switch m {
	case RemoteEdge, RemoteClique, RemoteStar:
		return 2
	case RemoteBipartition, RemoteCycle:
		return 3
	case RemoteTree:
		return 4
	}
	panic(fmt.Sprintf("diversity: invalid measure %d", int(m)))
}

// PairCount returns f(k) of Lemma 7: the number of distance terms the
// measure's objective sums over a solution of size k. It bounds the
// diversity loss of a δ-instantiation by 2·δ·f(k).
func (m Measure) PairCount(k int) int {
	switch m {
	case RemoteClique:
		return k * (k - 1) / 2
	case RemoteStar, RemoteTree:
		return k - 1
	case RemoteBipartition:
		return (k / 2) * ((k + 1) / 2)
	case RemoteEdge, RemoteCycle:
		// Lemma 7 is stated for the four injective-proxy problems; for the
		// remaining two a single edge (edge) or k edges (cycle) matter.
		if m == RemoteEdge {
			return 1
		}
		return k
	}
	panic(fmt.Sprintf("diversity: invalid measure %d", int(m)))
}

// Evaluate computes div(pts) for the measure. The second result reports
// whether the value is exact (always true except for large remote-cycle
// and remote-bipartition instances, which exceed the exact-evaluation
// limits of internal/graph and fall back to bounded heuristics).
//
// Sets of fewer than two points have zero diversity under every measure
// except remote-edge, whose value is +Inf on singletons by the min-over-
// empty-set convention; callers constructing solutions always use k ≥ 2.
func Evaluate[P any](m Measure, pts []P, d metric.Distance[P]) (float64, bool) {
	switch m {
	case RemoteEdge:
		return metric.Farness(pts, d), true
	case RemoteClique:
		return metric.SumPairwise(pts, d), true
	case RemoteStar:
		return starValue(pts, d), true
	case RemoteBipartition:
		if len(pts) < 2 {
			return 0, true
		}
		return graph.MinBipartition(metric.Matrix(pts, d))
	case RemoteTree:
		return graph.MSTWeight(metric.Matrix(pts, d)), true
	case RemoteCycle:
		if len(pts) < 2 {
			return 0, true
		}
		return graph.TSP(metric.Matrix(pts, d))
	}
	panic(fmt.Sprintf("diversity: invalid measure %d", int(m)))
}

// EvaluateMatrix is Evaluate on a pre-computed distance matrix, indexed
// like the original point slice. It avoids recomputing distances when
// several measures are evaluated on the same set.
func EvaluateMatrix(m Measure, dist [][]float64) (float64, bool) {
	n := len(dist)
	switch m {
	case RemoteEdge:
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if dist[i][j] < best {
					best = dist[i][j]
				}
			}
		}
		return best, true
	case RemoteClique:
		var sum float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sum += dist[i][j]
			}
		}
		return sum, true
	case RemoteStar:
		if n < 2 {
			return 0, true
		}
		best := math.Inf(1)
		for c := 0; c < n; c++ {
			var sum float64
			for q := 0; q < n; q++ {
				sum += dist[c][q]
			}
			if sum < best {
				best = sum
			}
		}
		return best, true
	case RemoteBipartition:
		if n < 2 {
			return 0, true
		}
		return graph.MinBipartition(dist)
	case RemoteTree:
		return graph.MSTWeight(dist), true
	case RemoteCycle:
		if n < 2 {
			return 0, true
		}
		return graph.TSP(dist)
	}
	panic(fmt.Sprintf("diversity: invalid measure %d", int(m)))
}

func starValue[P any](pts []P, d metric.Distance[P]) float64 {
	if len(pts) < 2 {
		return 0
	}
	best := math.Inf(1)
	for c := range pts {
		var sum float64
		for q := range pts {
			if q != c {
				sum += d(pts[c], pts[q])
			}
		}
		if sum < best {
			best = sum
		}
	}
	return best
}
