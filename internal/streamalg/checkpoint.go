package streamalg

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Checkpoint/Restore serialize the complete mutable state of the SMM and
// SMM-EXT processors, so a durable host (divmaxd's WAL layer) can
// persist a core-set mid-stream and resume it after a crash without
// replaying the whole stream. The encoding is gob over a state struct of
// exported fields: float64 values travel as exact bit patterns, so a
// restored processor fed the same suffix of the stream produces
// bit-identical results to one that was never interrupted.
//
// The construction parameters (k, k′) are recorded and validated on
// Restore: state from a differently-sized processor is rejected rather
// than silently adopted, and the caller falls back to replaying raw
// points (which rebuilds under the new parameters). The spare cap and
// append-log cap, by contrast, are tuning knobs whose values the
// checkpoint's data shape depends on, so Restore adopts the recorded
// values — reconfiguring them takes effect from the next SetSpareCap /
// SetAppendLogCap call, exactly as it does mid-stream.

// checkpointVersion guards the state-struct layout; bump it when a field
// changes meaning so stale checkpoints are rejected instead of
// misdecoded.
const checkpointVersion = 1

// smmState is SMM's complete mutable state with exported fields for gob.
type smmState[P any] struct {
	Version     int
	K, KPrime   int
	Initialized bool
	Threshold   float64
	Phases      int
	Processed   int64
	Centers     []P
	Merged      []P
	SpareCap    int
	Spares      [][]P
	Gen         uint64
	Appended    []P
	LogCap      int
}

// Checkpoint serializes the processor's complete state. The snapshot is
// consistent only between Process/Delete calls (the usual single-writer
// contract).
func (s *SMM[P]) Checkpoint() ([]byte, error) {
	st := smmState[P]{
		Version:     checkpointVersion,
		K:           s.k,
		KPrime:      s.kprime,
		Initialized: s.initialized,
		Threshold:   s.threshold,
		Phases:      s.phases,
		Processed:   s.processed,
		Centers:     s.centers,
		Merged:      s.merged,
		SpareCap:    s.spareCap,
		Spares:      s.spares,
		Gen:         s.gen,
		Appended:    s.appended,
		LogCap:      s.logCap,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("streamalg: checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the processor's state with a checkpoint taken from a
// processor with identical construction parameters, rebuilding the
// Euclidean fast-path mirror. On error the processor is unchanged.
func (s *SMM[P]) Restore(data []byte) error {
	var st smmState[P]
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("streamalg: restore: %w", err)
	}
	if st.Version != checkpointVersion {
		return fmt.Errorf("streamalg: restore: checkpoint version %d, want %d", st.Version, checkpointVersion)
	}
	if st.K != s.k || st.KPrime != s.kprime {
		return fmt.Errorf("streamalg: restore: checkpoint built with k=%d k'=%d, processor has k=%d k'=%d",
			st.K, st.KPrime, s.k, s.kprime)
	}
	if st.SpareCap > 0 && st.Spares == nil {
		st.Spares = make([][]P, len(st.Centers))
	}
	if st.SpareCap > 0 && len(st.Spares) != len(st.Centers) {
		return fmt.Errorf("streamalg: restore: %d spare lists for %d centers", len(st.Spares), len(st.Centers))
	}
	if st.LogCap < 1 {
		return fmt.Errorf("streamalg: restore: append-log cap %d", st.LogCap)
	}
	s.initialized = st.Initialized
	s.threshold = st.Threshold
	s.phases = st.Phases
	s.processed = st.Processed
	s.centers = st.Centers
	s.merged = st.Merged
	s.spareCap = st.SpareCap
	s.spares = st.Spares
	s.gen = st.Gen
	s.appended = st.Appended
	s.logCap = st.LogCap
	if s.scan != nil {
		s.scan.Rebuild(s.centers)
	}
	return nil
}

// smmExtState is SMMExt's complete mutable state for gob.
type smmExtState[P any] struct {
	Version     int
	K, KPrime   int
	Initialized bool
	Threshold   float64
	Phases      int
	Processed   int64
	Centers     []P
	Delegates   [][]P
	Merged      []P
	Gen         uint64
	Appended    []P
	LogCap      int
}

// Checkpoint serializes the processor's complete state; see
// SMM.Checkpoint.
func (s *SMMExt[P]) Checkpoint() ([]byte, error) {
	st := smmExtState[P]{
		Version:     checkpointVersion,
		K:           s.k,
		KPrime:      s.kprime,
		Initialized: s.initialized,
		Threshold:   s.threshold,
		Phases:      s.phases,
		Processed:   s.processed,
		Centers:     s.centers,
		Delegates:   s.delegates,
		Merged:      s.merged,
		Gen:         s.gen,
		Appended:    s.appended,
		LogCap:      s.logCap,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("streamalg: checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the processor's state with a checkpoint taken from a
// processor with identical construction parameters; see SMM.Restore.
func (s *SMMExt[P]) Restore(data []byte) error {
	var st smmExtState[P]
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("streamalg: restore: %w", err)
	}
	if st.Version != checkpointVersion {
		return fmt.Errorf("streamalg: restore: checkpoint version %d, want %d", st.Version, checkpointVersion)
	}
	if st.K != s.k || st.KPrime != s.kprime {
		return fmt.Errorf("streamalg: restore: checkpoint built with k=%d k'=%d, processor has k=%d k'=%d",
			st.K, st.KPrime, s.k, s.kprime)
	}
	if st.Delegates == nil && len(st.Centers) > 0 {
		return fmt.Errorf("streamalg: restore: %d centers with no delegate sets", len(st.Centers))
	}
	if len(st.Delegates) != len(st.Centers) {
		return fmt.Errorf("streamalg: restore: %d delegate sets for %d centers", len(st.Delegates), len(st.Centers))
	}
	if st.LogCap < 1 {
		return fmt.Errorf("streamalg: restore: append-log cap %d", st.LogCap)
	}
	s.initialized = st.Initialized
	s.threshold = st.Threshold
	s.phases = st.Phases
	s.processed = st.Processed
	s.centers = st.Centers
	s.delegates = st.Delegates
	s.merged = st.Merged
	s.gen = st.Gen
	s.appended = st.Appended
	s.logCap = st.LogCap
	if s.scan != nil {
		s.scan.Rebuild(s.centers)
	}
	return nil
}
