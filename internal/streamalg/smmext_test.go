package streamalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

func TestSMMExtDelegateCap(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(4)
		pts := randomVectors(rng, 50+rng.Intn(150), 2)
		s := NewSMMExt(k, kprime, metric.Euclidean)
		for _, p := range pts {
			s.Process(p)
			for i, set := range s.delegates {
				if len(set) > k {
					t.Logf("delegate set %d has %d > k=%d points (seed %d)", i, len(set), k, seed)
					return false
				}
			}
			if s.StoredPoints() > 2*(kprime+1)*k {
				t.Logf("memory %d exceeds 2(k'+1)k (seed %d)", s.StoredPoints(), seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSMMExtDelegatesNearCenters(t *testing.T) {
	// Lemma 4's induction: every output point lies within 4·d_ℓ of the
	// kernel (delegates are inherited across merges without drifting
	// beyond the coverage radius).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(3)
		pts := randomVectors(rng, 80+rng.Intn(100), 2)
		s := NewSMMExt(k, kprime, metric.Euclidean)
		for _, p := range pts {
			s.Process(p)
		}
		centers := s.Centers()
		for _, q := range s.Result() {
			if d, _ := metric.MinDistance(q, centers, metric.Euclidean); d > s.CoverageRadius()+1e-9 {
				t.Logf("delegate at distance %v > %v from kernel (seed %d)", d, s.CoverageRadius(), seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSMMExtCliqueLossBound(t *testing.T) {
	// Injective proxies within 2·coverage: div_k(T′) ≥ div_k(S) −
	// C(k,2)·2·(2·coverage) for remote-clique, against brute force.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(2)
		kprime := k + rng.Intn(3)
		pts := randomVectors(rng, 12+rng.Intn(6), 2)
		s := NewSMMExt(k, kprime, metric.Euclidean)
		for _, p := range pts {
			s.Process(p)
		}
		core := s.Result()
		if len(core) < k {
			return true
		}
		_, got, _ := sequential.BruteForce(diversity.RemoteClique, core, k, metric.Euclidean)
		_, want, _ := sequential.BruteForce(diversity.RemoteClique, pts, k, metric.Euclidean)
		pairs := float64(k * (k - 1) / 2)
		return got >= want-pairs*4*s.CoverageRadius()-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSMMExtShortStream(t *testing.T) {
	s := NewSMMExt[metric.Vector](3, 5, metric.Euclidean)
	for _, x := range []float64{0, 10} {
		s.Process(metric.Vector{x})
	}
	if got := len(s.Result()); got != 2 {
		t.Fatalf("short stream result = %d, want 2", got)
	}
}

func TestSMMExtResultAtLeastKOnLongStreams(t *testing.T) {
	// Delegate inheritance must keep at least k points even when all
	// centers collapse into one cluster.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(3)
		// Tight cluster plus a few outliers: heavy merging.
		var pts []metric.Vector
		for i := 0; i < 60; i++ {
			pts = append(pts, metric.Vector{rng.Float64() * 0.01, rng.Float64() * 0.01})
		}
		pts = append(pts, metric.Vector{1000, 0}, metric.Vector{0, 1000}, metric.Vector{5000, 5000})
		rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		s := NewSMMExt(k, kprime, metric.Euclidean)
		for _, p := range pts {
			s.Process(p)
		}
		return len(s.Result()) >= k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSMMGenCountsMatchExtSizes(t *testing.T) {
	// SMM-GEN is the count-only encoding of SMM-EXT: same kernel, and
	// each count equals the corresponding delegate-set size.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(3)
		pts := randomVectors(rng, 60+rng.Intn(100), 2)
		ext := NewSMMExt(k, kprime, metric.Euclidean)
		gen := NewSMMGen(k, kprime, metric.Euclidean)
		for _, p := range pts {
			ext.Process(p)
			gen.Process(p)
		}
		g := gen.Result()
		if len(g) != len(ext.centers) {
			t.Logf("kernel sizes differ: gen %d vs ext %d (seed %d)", len(g), len(ext.centers), seed)
			return false
		}
		for i := range g {
			if metric.Euclidean(g[i].Point, ext.centers[i]) != 0 {
				t.Logf("kernel point %d differs (seed %d)", i, seed)
				return false
			}
			if g[i].Mult != len(ext.delegates[i]) {
				t.Logf("count %d = %d, delegate set has %d (seed %d)", i, g[i].Mult, len(ext.delegates[i]), seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSMMGenValidatesAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomVectors(rng, 200, 2)
	k, kprime := 3, 5
	s := NewSMMGen(k, kprime, metric.Euclidean)
	for _, p := range pts {
		s.Process(p)
		if s.StoredPoints() > kprime+1 {
			t.Fatalf("SMM-GEN memory %d exceeds k'+1", s.StoredPoints())
		}
	}
	g := s.Result()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range g {
		if w.Mult > k {
			t.Fatalf("count %d exceeds k=%d", w.Mult, k)
		}
	}
	if g.ExpandedSize() < k {
		t.Fatalf("expanded size %d below k=%d on a long stream", g.ExpandedSize(), k)
	}
}
