package streamalg

import (
	"fmt"
	"math/rand"
	"testing"

	"divmax/internal/diversity"
	"divmax/internal/metric"
)

// BenchmarkSMMProcess measures the per-point cost of the doubling
// algorithm's update step (O(|T|) ≤ O(k′) distance evaluations) — the
// quantity behind the paper's Figure 3 throughput.
func BenchmarkSMMProcess(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomVectors(rng, 50000, 3)
	for _, kprime := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("k'=%d", kprime), func(b *testing.B) {
			s := NewSMM(8, kprime, metric.Euclidean)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Process(pts[i%len(pts)])
			}
		})
	}
}

func BenchmarkSMMExtProcess(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := randomVectors(rng, 50000, 3)
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d/k'=128", k), func(b *testing.B) {
			s := NewSMMExt(k, 128, metric.Euclidean)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Process(pts[i%len(pts)])
			}
		})
	}
}

func BenchmarkSMMGenProcess(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := randomVectors(rng, 50000, 3)
	s := NewSMMGen(8, 128, metric.Euclidean)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(pts[i%len(pts)])
	}
}

func BenchmarkOnePassEndToEnd(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := randomVectors(rng, 20000, 3)
	b.Run("remote-edge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			OnePass(diversity.RemoteEdge, SliceStream(pts), 16, 64, metric.Euclidean)
		}
	})
}

func BenchmarkTwoPassEndToEnd(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := randomVectors(rng, 20000, 3)
	b.Run("remote-clique", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := TwoPass(diversity.RemoteClique, SliceStream(pts), 16, 64, metric.Euclidean); err != nil {
				b.Fatal(err)
			}
		}
	})
}
