// Package streamalg implements the paper's one-pass streaming core-set
// constructions (Section 4): SMM (a variant of the Charikar et al.
// doubling algorithm for k-center, a (1+ε)-core-set for remote-edge and
// remote-cycle, Theorem 1), SMM-EXT (per-center delegate sets, a
// (1+ε)-core-set for remote-clique, -star, -bipartition, and -tree,
// Theorem 2), SMM-GEN (per-center counts, the generalized core-set of the
// 2-pass algorithm, Theorem 9), and the end-to-end streaming drivers.
//
// All processors consume points one at a time via Process and use memory
// independent of the stream length: O(k′) points for SMM and SMM-GEN,
// O(k′·k) for SMM-EXT.
package streamalg

import (
	"fmt"
	"math"

	"divmax/internal/metric"
)

// SMM is the streaming doubling algorithm. Each phase i holds a threshold
// d_i and maintains the invariants (Section 4): every processed point is
// within 2·d_i of the center set T at the start of the phase, and centers
// are pairwise at distance ≥ d_i. A merge step (maximal independent set at
// threshold 2·d_i) shrinks T; the update step accepts a new point only at
// distance > 4·d_i from T and ends the phase when T reaches k′+1 points.
//
// Points of the initial prefix at distance zero from an existing center
// are folded into it, so streams with duplicates keep the thresholds
// positive (d_1 is the minimum distance among *distinct* prefix points).
type SMM[P any] struct {
	k, kprime int
	d         metric.Distance[P]
	scan      centerScanner[P] // flat Euclidean mirror of centers; nil on the generic path

	initialized bool
	threshold   float64 // d_i of the running phase; 0 until initialized
	phases      int
	processed   int64

	centers []P // T, capacity k'+1
	merged  []P // M: points removed by merge steps of the current phase

	// Spare retention for deletions (delete.go): when spareCap > 0,
	// spares[i] holds up to spareCap points absorbed by centers[i],
	// parallel to centers — promotion candidates for when that center is
	// deleted. Spares never appear in Result and are best-effort: a
	// merge drops the spares of removed centers. spareCap = 0 (the
	// NewSMM default) retains nothing and keeps the paper-exact
	// 2(k′+1)-point memory bound.
	spareCap int
	spares   [][]P

	// Incremental-snapshot bookkeeping (Generation/AppendedSince): gen
	// counts restructurings — merge phases, where centers move or drop —
	// and appended logs every point accepted since the last one, so
	// between restructurings the core-set only ever grows by the logged
	// points. The log holds point headers already retained in centers
	// and is cleared on every restructure, so it adds no asymptotic
	// memory. logCap bounds the log within a phase: an append that
	// reaches it forces a generation bump (compaction — see
	// SetAppendLogCap); the default sits one past the transient maximum
	// (k′+2), so it never fires before the phase bump that clears the
	// log anyway.
	gen      uint64
	appended []P
	logCap   int
}

// NewSMM returns a streaming core-set processor for the remote-edge and
// remote-cycle problems. k is the solution size the core-set must
// support, k′ ≥ k controls the core-set size and accuracy (Lemma 3:
// k′ = (32/ε′)^D·k yields a (1+ε)-core-set in doubling dimension D).
func NewSMM[P any](k, kprime int, d metric.Distance[P]) *SMM[P] {
	if k < 1 || kprime < k {
		panic(fmt.Sprintf("streamalg: NewSMM requires 1 <= k <= k', got k=%d k'=%d", k, kprime))
	}
	return &SMM[P]{k: k, kprime: kprime, d: d, scan: newCenterScanner(d), logCap: kprime + 2}
}

// SetSpareCap sets the per-center spare retention for deletions: each
// center keeps up to cap absorbed points as promotion candidates for
// its own removal (see Delete). cap ≤ 0 disables retention and drops
// any spares already held. Raising the cap mid-stream is allowed; only
// points absorbed afterwards are retained.
func (s *SMM[P]) SetSpareCap(cap int) {
	if cap <= 0 {
		s.spareCap, s.spares = 0, nil
		return
	}
	s.spareCap = cap
	if s.spares == nil {
		s.spares = make([][]P, len(s.centers))
	}
}

// SpareCap returns the per-center spare retention.
func (s *SMM[P]) SpareCap() int { return s.spareCap }

// SetAppendLogCap caps the per-generation append log at n ≥ 1 points:
// an append that reaches the cap forces a generation bump, compacting
// the log so its growth is bounded within a phase no matter how long
// the phase runs. Forcing a bump is always observationally safe — a
// later SnapshotSince simply answers with a full snapshot instead of a
// delta — it only costs downstream caches a rebuild. n < 1 restores
// the default (k′+2, one past the transient maximum, so the cap never
// fires before the phase bump that clears the log anyway).
func (s *SMM[P]) SetAppendLogCap(n int) {
	if n < 1 {
		n = s.kprime + 2
	}
	s.logCap = n
	if len(s.appended) >= s.logCap {
		s.bumpGen()
	}
}

// AppendLogCap returns the per-generation append-log cap.
func (s *SMM[P]) AppendLogCap() int { return s.logCap }

// bumpGen advances the generation and restarts the append log — every
// restructure (merge phase, eviction, log compaction) runs through it.
func (s *SMM[P]) bumpGen() {
	s.gen++
	s.appended = s.appended[:0]
}

// minDist is the nearest-center scan: the flat squared-distance kernel
// when the space is Euclidean over dense vectors, the generic loop
// otherwise. Both return identical (distance, index) pairs.
func (s *SMM[P]) minDist(p P) (float64, int) {
	if s.scan != nil {
		return s.scan.MinDist(p)
	}
	return metric.MinDistance(p, s.centers, s.d)
}

// addCenter appends p to T and keeps the fast-path mirror and the
// append log in sync.
func (s *SMM[P]) addCenter(p P) {
	s.centers = append(s.centers, p)
	if s.spareCap > 0 {
		s.spares = append(s.spares, nil)
	}
	s.appended = append(s.appended, p)
	if len(s.appended) >= s.logCap {
		s.bumpGen() // log compaction at the cap; see SetAppendLogCap
	}
	if s.scan != nil {
		s.scan.Append(p)
	}
}

// Process consumes the next stream point.
func (s *SMM[P]) Process(p P) {
	s.processed++
	if !s.initialized {
		// Initialization: collect the first k'+1 distinct points.
		if dist, _ := s.minDist(p); dist == 0 && len(s.centers) > 0 {
			return
		}
		s.addCenter(p)
		if len(s.centers) == s.kprime+1 {
			s.threshold = metric.Farness(s.centers, s.d)
			s.initialized = true
			s.startPhase()
		}
		return
	}
	dist, nearest := s.minDist(p)
	if dist > 4*s.threshold {
		s.addCenter(p)
		if len(s.centers) == s.kprime+1 {
			s.threshold *= 2
			s.startPhase()
		}
		return
	}
	// Absorbed: retain as a spare for the covering center when spare
	// retention is on. Duplicates of a center (distance 0) are skipped —
	// promoting one after that center's deletion would resurface the
	// deleted value.
	if s.spareCap > 0 && dist > 0 && len(s.spares[nearest]) < s.spareCap {
		s.spares[nearest] = append(s.spares[nearest], p)
	}
}

// ProcessBatch consumes a slice of stream points, equivalent to calling
// Process on each in order. Batch ingestion keeps the center set hot in
// cache across the whole slice and is the natural feed for callers that
// already receive points in chunks (the divmaxd shards).
func (s *SMM[P]) ProcessBatch(batch []P) {
	for _, p := range batch {
		s.Process(p)
	}
}

// startPhase begins a new phase: it resets M and runs merge steps,
// doubling the threshold as long as the merge fails to bring T back to
// at most k′ points (a merge that removes nothing is a phase whose update
// step accepts no points). A phase restructures the core-set, so it
// bumps the generation and restarts the append log.
func (s *SMM[P]) startPhase() {
	s.bumpGen()
	s.merged = s.merged[:0]
	for {
		s.phases++
		s.merge()
		if len(s.centers) <= s.kprime {
			return
		}
		s.threshold *= 2
	}
}

// merge replaces T with a maximal independent set of the graph connecting
// centers at distance ≤ 2·d_i, scanning in insertion order (deterministic)
// and retaining the removed points in M for the duration of the phase.
func (s *SMM[P]) merge() {
	kept := s.centers[:0:len(s.centers)]
	var keptSpares [][]P
	if s.spareCap > 0 {
		keptSpares = s.spares[:0:len(s.spares)]
	}
	var removed []P
	for ci, c := range s.centers {
		independent := true
		for _, u := range kept {
			if s.d(u, c) <= 2*s.threshold {
				independent = false
				break
			}
		}
		if independent {
			kept = append(kept, c)
			if s.spareCap > 0 {
				keptSpares = append(keptSpares, s.spares[ci])
			}
		} else {
			removed = append(removed, c)
		}
	}
	s.centers = kept
	if s.spareCap > 0 {
		s.spares = keptSpares
	}
	if s.scan != nil {
		s.scan.Rebuild(s.centers)
	}
	s.merged = append(s.merged, removed...)
}

// Result returns the core-set after the stream ends. If fewer than k
// centers survived the final merges, arbitrary points removed during the
// current phase top the set back up to k (the paper's fix; M ∪ T always
// holds at least min(k, distinct points) elements). The processor remains
// usable: more points may be processed and Result called again.
func (s *SMM[P]) Result() []P {
	out := make([]P, len(s.centers))
	copy(out, s.centers)
	for i := 0; len(out) < s.k && i < len(s.merged); i++ {
		out = append(out, s.merged[i])
	}
	return out
}

// Threshold returns the running phase threshold d_i (0 while the
// initialization prefix is still being collected).
func (s *SMM[P]) Threshold() float64 { return s.threshold }

// CoverageRadius returns 4·d_i, the upper bound on the distance from any
// processed point to the current center set T guaranteed by the phase
// invariants (r_T ≤ 4·d_ℓ in the proof of Lemma 3). During initialization
// it is 0: T contains every distinct processed point.
func (s *SMM[P]) CoverageRadius() float64 { return 4 * s.threshold }

// Phases returns the number of merge phases run so far.
func (s *SMM[P]) Phases() int { return s.phases }

// Generation counts the restructurings of the core-set (merge phases:
// cluster merges and the threshold doublings they run under). While it
// is unchanged, the point set underlying Result only grows, by exactly
// the points AppendedSince reports — the contract divmaxd's
// delta-patched query cache is built on.
func (s *SMM[P]) Generation() uint64 { return s.gen }

// AppendLogLen returns the length of the current generation's append
// log — the position to pass to a later AppendedSince.
func (s *SMM[P]) AppendLogLen() int { return len(s.appended) }

// AppendedSince returns a copy of the points accepted into the core-set
// since append-log position pos of the current generation (0 ≤ pos ≤
// AppendLogLen; the log restarts empty at each Generation bump).
func (s *SMM[P]) AppendedSince(pos int) []P {
	out := make([]P, len(s.appended)-pos)
	copy(out, s.appended[pos:])
	return out
}

// Processed returns the number of stream points consumed.
func (s *SMM[P]) Processed() int64 { return s.processed }

// StoredPoints returns the number of points currently held in memory
// (centers, the retained merge removals, and any deletion spares); it
// never exceeds 2(k′+1) with spare retention off, (2+SpareCap)(k′+1)
// with it on.
func (s *SMM[P]) StoredPoints() int {
	total := len(s.centers) + len(s.merged)
	for _, sp := range s.spares {
		total += len(sp)
	}
	return total
}

// invariantPairwise returns the minimum pairwise distance of the current
// centers; exported to tests via export_test.go.
func (s *SMM[P]) invariantPairwise() float64 {
	if len(s.centers) < 2 {
		return math.Inf(1)
	}
	return metric.Farness(s.centers, s.d)
}
