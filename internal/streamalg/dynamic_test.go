package streamalg

import (
	"math"
	"testing"

	"divmax/internal/metric"
)

// containsValue reports whether pts holds a point at distance 0 from p.
func containsValue(pts []metric.Vector, p metric.Vector) bool {
	for _, q := range pts {
		if metric.Euclidean(q, p) == 0 {
			return true
		}
	}
	return false
}

// TestSMMDeleteOutcomes walks the three outcomes on a hand-built
// stream: tombstone (never-retained value), spare (absorbed point
// retained as a spare), evicted (a center), asserting the generation
// moves exactly on evictions.
func TestSMMDeleteOutcomes(t *testing.T) {
	s := NewSMM[metric.Vector](2, 2, metric.Euclidean)
	s.SetSpareCap(2)
	// Three far-apart points initialize (k'+1 = 3); then absorbed points
	// become spares.
	for _, p := range []metric.Vector{{0, 0}, {100, 0}, {0, 100}} {
		s.Process(p)
	}
	if !containsValue(s.Result(), metric.Vector{0, 0}) {
		t.Fatal("center {0,0} missing before any delete")
	}
	// Absorbed next to a center: spare candidate.
	s.Process(metric.Vector{1, 0})

	gen := s.Generation()
	if got := s.Delete(metric.Vector{55, 55}); got != DeleteAbsent {
		t.Fatalf("tombstone delete: outcome %v, want absent", got)
	}
	if s.Generation() != gen {
		t.Fatal("tombstone delete moved the generation")
	}
	if got := s.Delete(metric.Vector{1, 0}); got != DeleteSpare {
		t.Fatalf("spare delete: outcome %v, want spare", got)
	}
	if s.Generation() != gen {
		t.Fatal("spare delete moved the generation")
	}
	// Re-absorb it, then delete its center: the spare must be promoted.
	s.Process(metric.Vector{1, 0})
	if got := s.Delete(metric.Vector{0, 0}); got != DeleteEvicted {
		t.Fatalf("center delete: outcome %v, want evicted", got)
	}
	if s.Generation() == gen {
		t.Fatal("evicting delete left the generation unchanged")
	}
	if s.AppendLogLen() != 0 {
		t.Fatalf("evicting delete left %d append-log entries", s.AppendLogLen())
	}
	res := s.Result()
	if containsValue(res, metric.Vector{0, 0}) {
		t.Fatalf("deleted center still in Result %v", res)
	}
	if !containsValue(res, metric.Vector{1, 0}) {
		t.Fatalf("spare {1,0} not promoted into Result %v", res)
	}
}

// TestSMMDeleteWithoutSparesDropsCluster pins the no-spare path: with
// retention off (the NewSMM default), deleting a center just drops it,
// and the processor keeps accepting points afterwards.
func TestSMMDeleteWithoutSparesDropsCluster(t *testing.T) {
	s := NewSMM[metric.Vector](2, 2, metric.Euclidean)
	for _, p := range []metric.Vector{{0, 0}, {100, 0}, {0, 100}} {
		s.Process(p)
	}
	s.Process(metric.Vector{1, 0}) // absorbed, not retained
	if got := s.Delete(metric.Vector{1, 0}); got != DeleteAbsent {
		t.Fatalf("absorbed-point delete with spares off: outcome %v, want absent", got)
	}
	if got := s.Delete(metric.Vector{0, 0}); got != DeleteEvicted {
		t.Fatalf("center delete: outcome %v, want evicted", got)
	}
	if containsValue(s.Result(), metric.Vector{0, 0}) {
		t.Fatal("deleted center still in Result")
	}
	// The processor must remain usable: a far point becomes a center.
	s.Process(metric.Vector{500, 500})
	if !containsValue(s.Result(), metric.Vector{500, 500}) {
		t.Fatal("post-delete insert not retained")
	}
}

// TestSMMDeleteEverything deletes every retained point and checks the
// processor recovers on re-insertion (empty-scan MinDist returns +Inf,
// so the next point re-seeds the centers).
func TestSMMDeleteEverything(t *testing.T) {
	s := NewSMM[metric.Vector](1, 1, metric.Euclidean)
	s.Process(metric.Vector{0})
	s.Process(metric.Vector{10})
	for _, p := range []metric.Vector{{0}, {10}} {
		s.Delete(p)
	}
	if got := s.Result(); len(got) != 0 {
		t.Fatalf("Result after deleting everything: %v", got)
	}
	s.Process(metric.Vector{7})
	if !containsValue(s.Result(), metric.Vector{7}) {
		t.Fatal("re-insert after total deletion not retained")
	}
}

// TestSMMExtDeleteDelegateAndCenter pins the SMM-EXT paths: a delegate
// delete evicts (delegates are output points), a center delete promotes
// the first surviving delegate, and deleted values never resurface.
func TestSMMExtDeleteDelegateAndCenter(t *testing.T) {
	// Mixed scales: the init merge (threshold = min pairwise distance, 1)
	// folds only {1,0} into {0,0}'s delegate set and keeps three centers.
	s := NewSMMExt[metric.Vector](3, 3, metric.Euclidean)
	for _, p := range []metric.Vector{{0, 0}, {1, 0}, {500, 0}, {1000, 800}} {
		s.Process(p)
	}
	s.Process(metric.Vector{2, 0}) // within 4·d of {0,0}: retained as its delegate
	if !containsValue(s.Result(), metric.Vector{2, 0}) {
		t.Fatalf("delegate {2,0} not retained; Result %v", s.Result())
	}
	gen := s.Generation()
	if got := s.Delete(metric.Vector{2, 0}); got != DeleteEvicted {
		t.Fatalf("delegate delete: outcome %v, want evicted", got)
	}
	if s.Generation() == gen {
		t.Fatal("delegate delete left the generation unchanged")
	}
	if containsValue(s.Result(), metric.Vector{2, 0}) {
		t.Fatal("deleted delegate still in Result")
	}
	// Center delete with a surviving delegate: promotion.
	s.Process(metric.Vector{3, 0})
	if got := s.Delete(metric.Vector{0, 0}); got != DeleteEvicted {
		t.Fatalf("center delete: outcome %v, want evicted", got)
	}
	res := s.Result()
	if containsValue(res, metric.Vector{0, 0}) {
		t.Fatalf("deleted center still in Result %v", res)
	}
}

// TestDeleteSweepsDuplicates: deletion is by value, so every retained
// copy — across delegate sets — goes in one call.
func TestDeleteSweepsDuplicates(t *testing.T) {
	s := NewSMMExt[metric.Vector](2, 2, metric.Euclidean)
	for _, p := range []metric.Vector{{0, 0}, {100, 0}, {0, 100}} {
		s.Process(p)
	}
	s.Process(metric.Vector{1, 0})
	s.Process(metric.Vector{1, 0}) // duplicate delegate attempt
	s.Delete(metric.Vector{1, 0})
	if containsValue(s.Result(), metric.Vector{1, 0}) {
		t.Fatal("duplicate value survived deletion")
	}
}

// TestAppendLogCapForcesBump pins log compaction: with a tiny cap every
// accepted point restarts the log, SnapshotSince-style consumers see
// the generation move, and the log never reaches the cap.
func TestAppendLogCapForcesBump(t *testing.T) {
	s := NewSMM[metric.Vector](2, 4, metric.Euclidean)
	if def := s.AppendLogCap(); def != 6 {
		t.Fatalf("default log cap %d, want k'+2 = 6", def)
	}
	s.SetAppendLogCap(2)
	lastGen := s.Generation()
	for i := 0; i < 40; i++ {
		s.Process(metric.Vector{float64(i) * 1000}) // every point far: all accepted
		if got := s.AppendLogLen(); got >= 2 {
			t.Fatalf("append log reached %d with cap 2", got)
		}
		if g := s.Generation(); g < lastGen {
			t.Fatalf("generation moved backwards: %d -> %d", lastGen, g)
		} else {
			lastGen = g
		}
	}
	if lastGen == 0 {
		t.Fatal("capped log never bumped the generation")
	}

	ext := NewSMMExt[metric.Vector](2, 4, metric.Euclidean)
	if def := ext.AppendLogCap(); def != 15 {
		t.Fatalf("SMM-EXT default log cap %d, want (k'+1)(k+1) = 15", def)
	}
	ext.SetAppendLogCap(3)
	for i := 0; i < 40; i++ {
		ext.Process(metric.Vector{float64(i % 7), float64(i)})
		if got := ext.AppendLogLen(); got >= 3 {
			t.Fatalf("SMM-EXT append log reached %d with cap 3", got)
		}
	}
}

// TestDynamicChurnInvariants runs a deterministic insert/delete mix on
// both processors and checks, after every op: deleted values never
// reappear in Result, re-inserted values may, memory stays within the
// documented bounds, and every processed point not deleted is within
// the coverage radius of some center (the dynamic coverage guarantee,
// with the 2× promotion slack).
func TestDynamicChurnInvariants(t *testing.T) {
	const k, kprime, spareCap = 3, 5, 2
	smm := NewSMM[metric.Vector](k, kprime, metric.Euclidean)
	smm.SetSpareCap(spareCap)
	ext := NewSMMExt[metric.Vector](k, kprime, metric.Euclidean)

	var live []metric.Vector
	x := uint32(12345)
	rnd := func(n int) int {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		return int(x % uint32(n))
	}
	removeLive := func(p metric.Vector) {
		kept := live[:0]
		for _, q := range live {
			if metric.Euclidean(q, p) != 0 {
				kept = append(kept, q)
			}
		}
		live = kept
	}
	for op := 0; op < 600; op++ {
		if rnd(4) == 0 && len(live) > 0 {
			p := live[rnd(len(live))]
			removeLive(p)
			smm.Delete(p)
			ext.Delete(p)
		} else {
			p := metric.Vector{float64(rnd(40)), float64(rnd(40))}
			if !containsValue(live, p) {
				live = append(live, p)
			}
			smm.Process(p)
			ext.Process(p)
		}
		for name, res := range map[string][]metric.Vector{"smm": smm.Result(), "smmext": ext.Result()} {
			for _, q := range res {
				if !containsValue(live, q) {
					t.Fatalf("op %d: %s Result holds deleted value %v", op, name, q)
				}
			}
		}
		if got, bound := smm.StoredPoints(), (2+spareCap)*(kprime+1); got > bound {
			t.Fatalf("op %d: SMM stores %d points, bound %d", op, got, bound)
		}
		if got, bound := ext.StoredPoints(), 2*(kprime+1)*k; got > bound {
			t.Fatalf("op %d: SMM-EXT stores %d points, bound %d", op, got, bound)
		}
	}
	// Coverage on the survivors: every live point within 2× the coverage
	// radius of the SMM center set (the promotion slack: a promoted
	// spare sits within 4d of the center it replaced).
	centers := smm.Result()
	if smm.Threshold() > 0 && len(centers) > 0 {
		for _, p := range live {
			d, _ := metric.MinDistance(p, centers, metric.Euclidean)
			if d > 2*smm.CoverageRadius() && !math.IsInf(d, 1) {
				t.Fatalf("live point %v at %g from centers, coverage bound %g", p, d, 2*smm.CoverageRadius())
			}
		}
	}
}
