package streamalg

import (
	"fmt"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

// Stream feeds points to a consumer; implementations call emit once per
// point, in stream order. The two-pass algorithm invokes it twice, so the
// function must replay the same logical stream on each call (re-opening a
// file, re-running a generator with the same seed, and so on).
type Stream[P any] func(emit func(P))

// SliceStream adapts an in-memory slice to a Stream.
func SliceStream[P any](pts []P) Stream[P] {
	return func(emit func(P)) {
		for _, p := range pts {
			emit(p)
		}
	}
}

// OnePass is the paper's one-pass streaming algorithm (Theorem 3): a
// single pass builds an SMM core-set (remote-edge, remote-cycle) or an
// SMM-EXT core-set (the other four measures), and the sequential
// α-approximation runs on the in-memory core-set. The returned solution
// has min(k, distinct points) elements, and the approximation factor is
// α+ε for k′ sized per Lemmas 3–4.
func OnePass[P any](m diversity.Measure, stream Stream[P], k, kprime int, d metric.Distance[P]) []P {
	core := CollectCoreset(m, stream, k, kprime, d)
	return sequential.Solve(m, core, k, d)
}

// CollectCoreset runs only the core-set pass of OnePass and returns the
// core-set: SMM for remote-edge/-cycle, SMM-EXT for the rest.
func CollectCoreset[P any](m diversity.Measure, stream Stream[P], k, kprime int, d metric.Distance[P]) []P {
	if m.NeedsInjectiveProxy() {
		proc := NewSMMExt(k, kprime, d)
		stream(proc.Process)
		return proc.Result()
	}
	proc := NewSMM(k, kprime, d)
	stream(proc.Process)
	return proc.Result()
}

// TwoPass is the memory-reduced streaming algorithm of Theorem 9 for the
// four injective-proxy problems. Pass 1 builds an SMM-GEN generalized
// core-set with O(k′) memory; the adapted sequential solver extracts a
// coherent subset T̂ with expanded size k; pass 2 streams the data again
// and instantiates T̂'s multiplicities with distinct delegate points
// within the coverage radius. It returns the instantiated solution.
//
// It returns an error if m does not use generalized core-sets
// (remote-edge and remote-cycle: use OnePass, whose memory is already
// O(k′)) or if the instantiation cannot fill every multiplicity, which
// cannot happen when both passes see the same stream.
func TwoPass[P any](m diversity.Measure, stream Stream[P], k, kprime int, d metric.Distance[P]) ([]P, error) {
	if !m.NeedsInjectiveProxy() {
		return nil, fmt.Errorf("streamalg: TwoPass applies to the injective-proxy problems, not %v", m)
	}
	// Pass 1: generalized core-set.
	proc := NewSMMGen(k, kprime, d)
	stream(proc.Process)
	gen := proc.Result()
	if gen.Size() == 0 {
		return nil, nil
	}
	// In-memory: coherent subset with expanded size k (Fact 2).
	sub := sequential.SolveGeneralized(m, gen, k, d)
	// Pass 2: instantiate delegates within the coverage radius. During
	// initialization the radius is 0 (every distinct point is a center),
	// so the instantiation degenerates to picking the centers themselves.
	inst := NewInstantiator(sub, proc.CoverageRadius(), d)
	stream(inst.Process)
	return inst.Result()
}

// Instantiator is the streaming counterpart of coreset.Instantiate: it
// fills the multiplicities of a generalized core-set with distinct
// delegates within delta of each kernel point, in one pass and with
// O(m(T̂)) memory. Points whose globally nearest kernel point is already
// filled are retained as spares (bounded by the total multiplicity) and
// assigned first-fit at the end, mirroring the paper's "retained as long
// as the appropriate delegate count ... has not been met".
type Instantiator[P any] struct {
	pairs  coreset.Generalized[P]
	delta  float64
	d      metric.Distance[P]
	need   []int
	total  int
	out    []P
	spares []P
}

// NewInstantiator prepares a pass-2 processor for the generalized
// core-set g with instantiation radius delta.
func NewInstantiator[P any](g coreset.Generalized[P], delta float64, d metric.Distance[P]) *Instantiator[P] {
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	inst := &Instantiator[P]{pairs: g, delta: delta, d: d, need: make([]int, len(g))}
	for i, w := range g {
		inst.need[i] = w.Mult
		inst.total += w.Mult
	}
	return inst
}

// Process consumes the next stream point.
func (inst *Instantiator[P]) Process(p P) {
	if len(inst.out) == inst.total {
		return
	}
	best, bestDist := -1, inst.delta
	for i, w := range inst.pairs {
		if dist := inst.d(w.Point, p); dist <= bestDist {
			best, bestDist = i, dist
		}
	}
	if best < 0 {
		return
	}
	if inst.need[best] > 0 {
		inst.need[best]--
		inst.out = append(inst.out, p)
	} else if len(inst.spares) < inst.total {
		inst.spares = append(inst.spares, p)
	}
}

// Result returns the instantiated delegates, or an error when some
// multiplicity could not be filled (delta below the true radius). It does
// not consume the processor's state: more points may be processed and
// Result called again.
func (inst *Instantiator[P]) Result() ([]P, error) {
	out := make([]P, len(inst.out), inst.total)
	copy(out, inst.out)
	need := make([]int, len(inst.need))
	copy(need, inst.need)
	remaining := inst.total - len(out)
	for _, q := range inst.spares {
		if remaining == 0 {
			break
		}
		for i, w := range inst.pairs {
			if need[i] > 0 && inst.d(w.Point, q) <= inst.delta {
				need[i]--
				remaining--
				out = append(out, q)
				break
			}
		}
	}
	if remaining > 0 {
		return nil, fmt.Errorf("streamalg: instantiation incomplete: %d of %d delegates unfilled at δ=%v", remaining, inst.total, inst.delta)
	}
	return out, nil
}
