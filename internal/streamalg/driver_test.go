package streamalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

func TestTwoPassRejectsNonInjectiveMeasures(t *testing.T) {
	for _, m := range []diversity.Measure{diversity.RemoteEdge, diversity.RemoteCycle} {
		if _, err := TwoPass(m, SliceStream[metric.Vector](nil), 2, 4, metric.Euclidean); err == nil {
			t.Errorf("%v: expected error from TwoPass", m)
		}
	}
}

func TestTwoPassEmptyStream(t *testing.T) {
	sol, err := TwoPass(diversity.RemoteClique, SliceStream[metric.Vector](nil), 2, 4, metric.Euclidean)
	if err != nil || sol != nil {
		t.Fatalf("TwoPass(empty) = (%v, %v), want (nil, nil)", sol, err)
	}
}

func TestTwoPassSolutionSizeAndMembership(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(4)
		pts := randomVectors(rng, 40+rng.Intn(100), 2)
		for _, m := range []diversity.Measure{diversity.RemoteClique, diversity.RemoteStar, diversity.RemoteBipartition, diversity.RemoteTree} {
			sol, err := TwoPass(m, SliceStream(pts), k, kprime, metric.Euclidean)
			if err != nil {
				t.Logf("%v: %v (seed %d)", m, err, seed)
				return false
			}
			if len(sol) != k {
				t.Logf("%v: size %d, want %d (seed %d)", m, len(sol), k, seed)
				return false
			}
			// Every solution point comes from the stream.
			for _, q := range sol {
				if d, _ := metric.MinDistance(q, pts, metric.Euclidean); d != 0 {
					t.Logf("%v: solution point not in stream (seed %d)", m, seed)
					return false
				}
			}
			// No point used twice: the delegates are distinct stream
			// occurrences; on distinct random inputs values are unique.
			for i := range sol {
				for j := i + 1; j < len(sol); j++ {
					if metric.Euclidean(sol[i], sol[j]) == 0 {
						t.Logf("%v: duplicate solution point (seed %d)", m, seed)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTwoPassWellSeparatedClusters(t *testing.T) {
	// k tight clusters far apart: the 2-pass solution should take one
	// point per cluster and reach near the full inter-cluster value.
	rng := rand.New(rand.NewSource(11))
	centers := []metric.Vector{{0, 0}, {1000, 0}, {0, 1000}}
	var pts []metric.Vector
	for i := 0; i < 120; i++ {
		c := centers[i%3]
		pts = append(pts, metric.Vector{c[0] + rng.Float64(), c[1] + rng.Float64()})
	}
	sol, err := TwoPass(diversity.RemoteClique, SliceStream(pts), 3, 6, metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := diversity.Evaluate(diversity.RemoteClique, sol, metric.Euclidean)
	// Optimal ≈ 1000 + 1000 + 1000√2 ≈ 3414; require ≥ half (α=2).
	if got < 1700 {
		t.Fatalf("two-pass clique value = %v, want ≥ 1700", got)
	}
}

func TestTwoPassVersusOnePassQuality(t *testing.T) {
	// The 2-pass algorithm trades memory for a pass; its quality should
	// stay within a constant of the 1-pass algorithm on random data.
	rng := rand.New(rand.NewSource(13))
	pts := randomVectors(rng, 300, 2)
	k, kprime := 4, 8
	two, err := TwoPass(diversity.RemoteClique, SliceStream(pts), k, kprime, metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	one := OnePass(diversity.RemoteClique, SliceStream(pts), k, kprime, metric.Euclidean)
	vTwo, _ := diversity.Evaluate(diversity.RemoteClique, two, metric.Euclidean)
	vOne, _ := diversity.Evaluate(diversity.RemoteClique, one, metric.Euclidean)
	if vTwo < vOne/2 {
		t.Fatalf("two-pass value %v below half of one-pass value %v", vTwo, vOne)
	}
}

func TestInstantiatorFillsFromStream(t *testing.T) {
	g := coreset.Generalized[metric.Vector]{
		{Point: metric.Vector{0}, Mult: 2},
		{Point: metric.Vector{10}, Mult: 1},
	}
	inst := NewInstantiator(g, 1.0, metric.Euclidean)
	for _, x := range []float64{0, 0.5, 10.2, 50} {
		inst.Process(metric.Vector{x})
	}
	out, err := inst.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("instantiated %d delegates, want 3", len(out))
	}
}

func TestInstantiatorSparesUsedForSecondChoice(t *testing.T) {
	// Both kernel points near each other: the first arrivals fill the
	// nearest pair; a later pair must be filled from spares.
	g := coreset.Generalized[metric.Vector]{
		{Point: metric.Vector{0}, Mult: 1},
		{Point: metric.Vector{1}, Mult: 1},
	}
	inst := NewInstantiator(g, 5.0, metric.Euclidean)
	// Points 0.1 and 0.2 are both nearest to kernel 0; the second must be
	// kept as a spare and assigned to kernel 1 at the end.
	inst.Process(metric.Vector{0.1})
	inst.Process(metric.Vector{0.2})
	out, err := inst.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("instantiated %d delegates, want 2", len(out))
	}
}

func TestInstantiatorIncomplete(t *testing.T) {
	g := coreset.Generalized[metric.Vector]{{Point: metric.Vector{0}, Mult: 2}}
	inst := NewInstantiator(g, 0.5, metric.Euclidean)
	inst.Process(metric.Vector{0})
	inst.Process(metric.Vector{100}) // outside δ
	if _, err := inst.Result(); err == nil {
		t.Fatal("expected incomplete-instantiation error")
	}
}

func TestInstantiatorResultIdempotent(t *testing.T) {
	g := coreset.Generalized[metric.Vector]{
		{Point: metric.Vector{0}, Mult: 1},
		{Point: metric.Vector{1}, Mult: 1},
	}
	inst := NewInstantiator(g, 5.0, metric.Euclidean)
	inst.Process(metric.Vector{0.1})
	inst.Process(metric.Vector{0.2})
	a, errA := inst.Result()
	b, errB := inst.Result()
	if errA != nil || errB != nil || len(a) != len(b) {
		t.Fatalf("Result not idempotent: (%v,%v) vs (%v,%v)", a, errA, b, errB)
	}
}

func TestInstantiatorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInstantiator(coreset.Generalized[metric.Vector]{{Point: metric.Vector{0}, Mult: 0}}, 1, metric.Euclidean)
}

func TestOnePassMemoryIndependentOfStreamLength(t *testing.T) {
	// Theorems 1–2: memory depends on k and k', not on n. Feed two
	// streams that differ by 10× in length and compare the peak stored
	// points of the processors.
	rng := rand.New(rand.NewSource(15))
	k, kprime := 3, 6
	peak := func(n int) int {
		s := NewSMMExt(k, kprime, metric.Euclidean)
		best := 0
		for _, p := range randomVectors(rng, n, 2) {
			s.Process(p)
			if sp := s.StoredPoints(); sp > best {
				best = sp
			}
		}
		return best
	}
	short, long := peak(300), peak(3000)
	bound := 2 * (kprime + 1) * k
	if short > bound || long > bound {
		t.Fatalf("peaks %d/%d exceed bound %d", short, long, bound)
	}
}

func TestCollectCoresetContainsSolutionSupport(t *testing.T) {
	// The sequential solver run on the core-set must return points of the
	// core-set (sanity wiring check for OnePass).
	rng := rand.New(rand.NewSource(19))
	pts := randomVectors(rng, 200, 2)
	core := CollectCoreset(diversity.RemoteStar, SliceStream(pts), 3, 5, metric.Euclidean)
	sol := sequential.Solve(diversity.RemoteStar, core, 3, metric.Euclidean)
	for _, q := range sol {
		if d, _ := metric.MinDistance(q, core, metric.Euclidean); d != 0 {
			t.Fatal("solution point outside core-set")
		}
	}
}
