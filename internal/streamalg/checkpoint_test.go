package streamalg

import (
	"math/rand"
	"reflect"
	"testing"

	"divmax/internal/metric"
)

func randVecs(rng *rand.Rand, n, d int) []metric.Vector {
	out := make([]metric.Vector, n)
	for i := range out {
		v := make(metric.Vector, d)
		for j := range v {
			v[j] = rng.NormFloat64() * 100
		}
		out[i] = v
	}
	return out
}

// driveBoth feeds the same interleave of inserts and deletes to two
// processors through a common op script, so a restored processor and an
// uninterrupted twin see identical suffixes.
type smmLike interface {
	ProcessBatch([]metric.Vector)
	Delete(metric.Vector) DeleteOutcome
	Result() []metric.Vector
	Generation() uint64
	AppendLogLen() int
	Processed() int64
	StoredPoints() int
	Threshold() float64
	Checkpoint() ([]byte, error)
	Restore([]byte) error
}

func drive(p smmLike, pts []metric.Vector, deletes []metric.Vector) {
	for i := 0; i < len(pts); i += 7 {
		end := min(i+7, len(pts))
		p.ProcessBatch(pts[i:end])
		if di := i / 7; di < len(deletes) {
			p.Delete(deletes[di])
		}
	}
}

// assertIdentical pins the full observable surface of two processors
// against each other, bit for bit.
func assertIdentical(t *testing.T, a, b smmLike) {
	t.Helper()
	if !reflect.DeepEqual(a.Result(), b.Result()) {
		t.Fatalf("Result diverged:\n%v\nvs\n%v", a.Result(), b.Result())
	}
	if a.Generation() != b.Generation() {
		t.Fatalf("Generation %d vs %d", a.Generation(), b.Generation())
	}
	if a.AppendLogLen() != b.AppendLogLen() {
		t.Fatalf("AppendLogLen %d vs %d", a.AppendLogLen(), b.AppendLogLen())
	}
	if a.Processed() != b.Processed() {
		t.Fatalf("Processed %d vs %d", a.Processed(), b.Processed())
	}
	if a.StoredPoints() != b.StoredPoints() {
		t.Fatalf("StoredPoints %d vs %d", a.StoredPoints(), b.StoredPoints())
	}
	if a.Threshold() != b.Threshold() {
		t.Fatalf("Threshold %x vs %x", a.Threshold(), b.Threshold())
	}
}

// TestCheckpointRestoreBitIdentical processes a prefix, checkpoints,
// restores into a fresh processor, then feeds BOTH processors the same
// suffix (with deletes interleaved) and requires every observable to
// stay bit-identical — the property divmaxd's crash recovery is built
// on. Covered: SMM with and without spares, SMMExt, mid-init and
// post-phase checkpoints.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := randVecs(rng, 600, 4)
	dels := append([]metric.Vector{}, pts[3], pts[50], pts[200], randVecs(rng, 1, 4)[0])

	cases := []struct {
		name  string
		fresh func() smmLike
		cut   int // checkpoint after this many prefix points
	}{
		{"smm", func() smmLike { return NewSMM[metric.Vector](4, 10, metric.Euclidean) }, 300},
		{"smm-mid-init", func() smmLike { return NewSMM[metric.Vector](4, 10, metric.Euclidean) }, 5},
		{"smm-spares", func() smmLike {
			s := NewSMM[metric.Vector](4, 10, metric.Euclidean)
			s.SetSpareCap(2)
			return s
		}, 300},
		{"smmext", func() smmLike { return NewSMMExt[metric.Vector](4, 10, metric.Euclidean) }, 300},
		{"smmext-mid-init", func() smmLike { return NewSMMExt[metric.Vector](4, 10, metric.Euclidean) }, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.fresh()
			orig.ProcessBatch(pts[:tc.cut])
			orig.Delete(pts[1])
			ck, err := orig.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			restored := tc.fresh()
			if err := restored.Restore(ck); err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, orig, restored)
			drive(orig, pts[tc.cut:], dels)
			drive(restored, pts[tc.cut:], dels)
			assertIdentical(t, orig, restored)
		})
	}
}

// TestCheckpointIsStable pins that checkpointing is read-only and
// repeatable: two consecutive checkpoints are byte-identical and the
// processor keeps working.
func TestCheckpointIsStable(t *testing.T) {
	s := NewSMM[metric.Vector](3, 6, metric.Euclidean)
	s.SetSpareCap(1)
	s.ProcessBatch(randVecs(rand.New(rand.NewSource(7)), 100, 3))
	a, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("consecutive checkpoints differ")
	}
	s.Process(metric.Vector{1, 2, 3})
}

// TestRestoreRejectsMismatch pins the fail-closed contract: state from
// a differently-parameterized processor is rejected and the target is
// left untouched (so the caller can fall back to raw-point replay).
func TestRestoreRejectsMismatch(t *testing.T) {
	src := NewSMM[metric.Vector](4, 10, metric.Euclidean)
	src.ProcessBatch(randVecs(rand.New(rand.NewSource(9)), 200, 2))
	ck, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	dst := NewSMM[metric.Vector](4, 12, metric.Euclidean)
	if err := dst.Restore(ck); err == nil {
		t.Fatal("restore with mismatched k' accepted")
	}
	if dst.Processed() != 0 || len(dst.Result()) != 0 {
		t.Fatal("failed restore mutated the processor")
	}

	ext := NewSMMExt[metric.Vector](4, 10, metric.Euclidean)
	if err := ext.Restore(ck); err == nil {
		t.Fatal("SMMExt restore of SMM state accepted")
	}
	if err := ext.Restore([]byte("not a checkpoint")); err == nil {
		t.Fatal("garbage restore accepted")
	}

	extSrc := NewSMMExt[metric.Vector](4, 10, metric.Euclidean)
	extSrc.ProcessBatch(randVecs(rand.New(rand.NewSource(9)), 200, 2))
	eck, err := extSrc.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	ext2 := NewSMMExt[metric.Vector](5, 10, metric.Euclidean)
	if err := ext2.Restore(eck); err == nil {
		t.Fatal("SMMExt restore with mismatched k accepted")
	}
}
