package streamalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

func randomVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		pts[i] = v
	}
	return pts
}

func TestSMMPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSMM[metric.Vector](0, 1, metric.Euclidean) },
		func() { NewSMM[metric.Vector](3, 2, metric.Euclidean) },
		func() { NewSMMExt[metric.Vector](0, 1, metric.Euclidean) },
		func() { NewSMMGen[metric.Vector](3, 2, metric.Euclidean) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSMMShortStreamKeepsEverything(t *testing.T) {
	s := NewSMM[metric.Vector](2, 5, metric.Euclidean)
	pts := []metric.Vector{{0}, {1}, {2}}
	for _, p := range pts {
		s.Process(p)
	}
	res := s.Result()
	if len(res) != 3 {
		t.Fatalf("short stream result = %d points, want 3", len(res))
	}
	if s.Threshold() != 0 || s.Phases() != 0 {
		t.Fatalf("short stream should stay in initialization: threshold=%v phases=%d", s.Threshold(), s.Phases())
	}
}

func TestSMMDuplicatesFolded(t *testing.T) {
	s := NewSMM[metric.Vector](2, 3, metric.Euclidean)
	for i := 0; i < 100; i++ {
		s.Process(metric.Vector{1, 1}) // same point over and over
	}
	if got := len(s.Result()); got != 1 {
		t.Fatalf("duplicate-only stream kept %d points, want 1", got)
	}
	if s.Processed() != 100 {
		t.Fatalf("Processed = %d, want 100", s.Processed())
	}
}

func TestSMMInvariants(t *testing.T) {
	// After any stream: centers pairwise ≥ d_i, every processed point
	// within 4·d_i of the centers, memory within 2(k'+1).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(4)
		n := 30 + rng.Intn(200)
		pts := randomVectors(rng, n, 2)
		s := NewSMM(k, kprime, metric.Euclidean)
		for _, p := range pts {
			s.Process(p)
			if s.StoredPoints() > 2*(kprime+1) {
				t.Logf("memory %d exceeds 2(k'+1)=%d (seed %d)", s.StoredPoints(), 2*(kprime+1), seed)
				return false
			}
		}
		if s.Threshold() > 0 {
			if s.invariantPairwise() < s.Threshold()-1e-9 {
				t.Logf("pairwise %v below threshold %v (seed %d)", s.invariantPairwise(), s.Threshold(), seed)
				return false
			}
		}
		cover := metric.Range(pts, s.centers, metric.Euclidean)
		if cover > s.CoverageRadius()+1e-9 {
			t.Logf("coverage %v exceeds radius %v (seed %d)", cover, s.CoverageRadius(), seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSMMResultTopUpToK(t *testing.T) {
	// k = k' = 4; the init prefix {0, 0.1, 0.2, 100, 1000} merges at
	// threshold 0.2 down to fewer than k centers, and Result must top the
	// set back up to k points from the retained merge removals.
	s := NewSMM[metric.Vector](4, 4, metric.Euclidean)
	for _, x := range []float64{0, 0.1, 0.2, 100, 1000} {
		s.Process(metric.Vector{x})
	}
	if got := len(s.Result()); got != 4 {
		t.Fatalf("topped-up result = %d points, want 4", got)
	}
}

func TestSMMCoresetLossBound(t *testing.T) {
	// Lemma 1 core: div_k over the core-set loses at most 2·coverage for
	// remote-edge, verified against brute force.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(2)
		kprime := k + rng.Intn(3)
		n := 12 + rng.Intn(8) // small enough to brute force
		pts := randomVectors(rng, n, 2)
		s := NewSMM(k, kprime, metric.Euclidean)
		for _, p := range pts {
			s.Process(p)
		}
		core := s.Result()
		if len(core) < k {
			return true
		}
		_, got, _ := sequential.BruteForce(diversity.RemoteEdge, core, k, metric.Euclidean)
		_, want, _ := sequential.BruteForce(diversity.RemoteEdge, pts, k, metric.Euclidean)
		return got >= want-2*s.CoverageRadius()-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSMMLargeKPrimeLossless(t *testing.T) {
	// k' ≥ distinct points: the stream never leaves initialization and the
	// core-set is the whole (deduplicated) input.
	rng := rand.New(rand.NewSource(21))
	pts := randomVectors(rng, 20, 2)
	s := NewSMM(3, 50, metric.Euclidean)
	for _, p := range pts {
		s.Process(p)
	}
	if got := len(s.Result()); got != 20 {
		t.Fatalf("lossless core-set = %d points, want 20", got)
	}
}

func TestSMMWellSeparatedClustersExact(t *testing.T) {
	// k far-apart tight clusters: the streaming solution must hit every
	// cluster, achieving the full inter-cluster remote-edge value.
	rng := rand.New(rand.NewSource(5))
	var pts []metric.Vector
	centers := []metric.Vector{{0, 0}, {1000, 0}, {0, 1000}, {1000, 1000}}
	for i := 0; i < 200; i++ {
		c := centers[i%len(centers)]
		pts = append(pts, metric.Vector{c[0] + rng.Float64(), c[1] + rng.Float64()})
	}
	sol := OnePass(diversity.RemoteEdge, SliceStream(pts), 4, 8, metric.Euclidean)
	if len(sol) != 4 {
		t.Fatalf("solution size = %d, want 4", len(sol))
	}
	val, _ := diversity.Evaluate(diversity.RemoteEdge, sol, metric.Euclidean)
	if val < 990 {
		t.Fatalf("remote-edge value = %v, want ≥ 990 (one point per cluster)", val)
	}
}

func TestOnePassEmptyStream(t *testing.T) {
	sol := OnePass(diversity.RemoteEdge, SliceStream[metric.Vector](nil), 3, 6, metric.Euclidean)
	if sol != nil {
		t.Fatalf("empty stream solution = %v, want nil", sol)
	}
}

func TestOnePassUsesExtForInjectiveMeasures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomVectors(rng, 150, 2)
	k, kprime := 4, 6
	// For injective measures the core-set must be able to exceed k' + 1
	// points (delegates); for the others it cannot.
	ext := CollectCoreset(diversity.RemoteClique, SliceStream(pts), k, kprime, metric.Euclidean)
	plain := CollectCoreset(diversity.RemoteEdge, SliceStream(pts), k, kprime, metric.Euclidean)
	if len(plain) > kprime+1 {
		t.Fatalf("SMM core-set has %d points, exceeds k'+1=%d", len(plain), kprime+1)
	}
	if len(ext) <= len(plain) {
		t.Fatalf("SMM-EXT core-set (%d) not larger than SMM core-set (%d) on clustered data", len(ext), len(plain))
	}
	if len(ext) > (kprime+1)*k {
		t.Fatalf("SMM-EXT core-set has %d points, exceeds (k'+1)k=%d", len(ext), (kprime+1)*k)
	}
}

func TestSMMStreamOrderIndependenceOfGuarantee(t *testing.T) {
	// Different stream orders give different core-sets but both must obey
	// the loss bound.
	rng := rand.New(rand.NewSource(7))
	pts := randomVectors(rng, 14, 2)
	k, kprime := 2, 4
	for trial := 0; trial < 5; trial++ {
		shuffled := make([]metric.Vector, len(pts))
		copy(shuffled, pts)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		s := NewSMM(k, kprime, metric.Euclidean)
		for _, p := range shuffled {
			s.Process(p)
		}
		core := s.Result()
		_, got, _ := sequential.BruteForce(diversity.RemoteEdge, core, k, metric.Euclidean)
		_, want, _ := sequential.BruteForce(diversity.RemoteEdge, pts, k, metric.Euclidean)
		if got < want-2*s.CoverageRadius()-1e-9 {
			t.Fatalf("trial %d: loss bound violated: %v < %v - 2·%v", trial, got, want, s.CoverageRadius())
		}
	}
}

func TestSMMPhasesMonotoneThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := NewSMM[metric.Vector](2, 3, metric.Euclidean)
	last := 0.0
	for i := 0; i < 500; i++ {
		s.Process(randomVectors(rng, 1, 2)[0])
		if s.Threshold() < last {
			t.Fatal("threshold decreased")
		}
		last = s.Threshold()
	}
	if s.Phases() == 0 {
		t.Fatal("expected at least one merge phase on 500 random points with k'=3")
	}
	if math.IsInf(last, 1) || last <= 0 {
		t.Fatalf("final threshold = %v", last)
	}
}

func TestSMMContinuousQueries(t *testing.T) {
	// Result must be answerable mid-stream (continuous monitoring) and
	// improve as more of the stream arrives.
	rng := rand.New(rand.NewSource(23))
	s := NewSMM(3, 6, metric.Euclidean)
	early := randomVectors(rng, 200, 2)
	for _, p := range early {
		s.Process(p)
	}
	first := s.Result()
	if len(first) < 3 {
		t.Fatalf("mid-stream result has %d points", len(first))
	}
	// A far-away burst arrives later; the core-set must absorb it.
	s.Process(metric.Vector{1e6, 1e6})
	second := s.Result()
	found := false
	for _, p := range second {
		if p[0] == 1e6 {
			found = true
		}
	}
	if !found {
		t.Fatal("late outlier missing from updated core-set")
	}
}
