package streamalg

import (
	"fmt"

	"divmax/internal/coreset"
	"divmax/internal/metric"
)

// SMMExt is the SMM variant for the four injective-proxy problems
// (remote-clique, -star, -bipartition, -tree): alongside the center set T
// it maintains, for each center t, a delegate set E_t of at most k points
// close to t (including t itself). On a merge, a removed center hands its
// delegates over to the surviving center that covers it, up to the cap k;
// on an update, a point within 4·d_i of its nearest center t joins E_t if
// there is room. The output is T′ = ∪_t E_t (Theorem 2), of size ≤ k·|T|.
type SMMExt[P any] struct {
	k, kprime int
	d         metric.Distance[P]
	scan      centerScanner[P] // flat Euclidean mirror of centers; nil on the generic path

	initialized bool
	threshold   float64
	phases      int
	processed   int64

	centers   []P
	delegates [][]P // delegates[i] belongs to centers[i]; contains the center
	merged    []P   // delegate sets dropped by merges, flattened, current phase

	// Incremental-snapshot bookkeeping; see SMM. For SMM-EXT the append
	// log records both new centers and accepted delegates — everything
	// that joins T′ between restructurings. logCap bounds the log within
	// a phase (see SMM.SetAppendLogCap); the default, (k′+1)·(k+1), sits
	// above any reachable log length, so it never fires on its own.
	gen      uint64
	appended []P
	logCap   int
}

// NewSMMExt returns a streaming core-set processor for the
// injective-proxy problems. Lemma 4: k′ = (64/ε′)^D·k yields a
// (1+ε)-core-set of O(k′·k) points in doubling dimension D.
func NewSMMExt[P any](k, kprime int, d metric.Distance[P]) *SMMExt[P] {
	if k < 1 || kprime < k {
		panic(fmt.Sprintf("streamalg: NewSMMExt requires 1 <= k <= k', got k=%d k'=%d", k, kprime))
	}
	return &SMMExt[P]{k: k, kprime: kprime, d: d, scan: newCenterScanner(d), logCap: (kprime + 1) * (k + 1)}
}

// SetAppendLogCap caps the per-generation append log at n ≥ 1 points,
// forcing a generation bump at the cap; see SMM.SetAppendLogCap. n < 1
// restores the default, (k′+1)·(k+1).
func (s *SMMExt[P]) SetAppendLogCap(n int) {
	if n < 1 {
		n = (s.kprime + 1) * (s.k + 1)
	}
	s.logCap = n
	if len(s.appended) >= s.logCap {
		s.bumpGen()
	}
}

// AppendLogCap returns the per-generation append-log cap.
func (s *SMMExt[P]) AppendLogCap() int { return s.logCap }

// bumpGen advances the generation and restarts the append log; every
// restructure (merge phase, eviction, log compaction) runs through it.
func (s *SMMExt[P]) bumpGen() {
	s.gen++
	s.appended = s.appended[:0]
}

// logAppend records a point that joined T′, compacting the log when it
// reaches the cap.
func (s *SMMExt[P]) logAppend(p P) {
	s.appended = append(s.appended, p)
	if len(s.appended) >= s.logCap {
		s.bumpGen()
	}
}

// minDist is the nearest-center scan; see SMM.minDist.
func (s *SMMExt[P]) minDist(p P) (float64, int) {
	if s.scan != nil {
		return s.scan.MinDist(p)
	}
	return metric.MinDistance(p, s.centers, s.d)
}

// addCenter appends a new center with its singleton delegate set and
// keeps the fast-path mirror in sync.
func (s *SMMExt[P]) addCenter(p P) {
	s.centers = append(s.centers, p)
	s.delegates = append(s.delegates, []P{p})
	s.logAppend(p)
	if s.scan != nil {
		s.scan.Append(p)
	}
}

// Process consumes the next stream point.
func (s *SMMExt[P]) Process(p P) {
	s.processed++
	if !s.initialized {
		if dist, _ := s.minDist(p); dist == 0 && len(s.centers) > 0 {
			return
		}
		s.addCenter(p)
		if len(s.centers) == s.kprime+1 {
			s.threshold = metric.Farness(s.centers, s.d)
			s.initialized = true
			s.startPhase()
		}
		return
	}
	dist, nearest := s.minDist(p)
	if dist > 4*s.threshold {
		s.addCenter(p)
		if len(s.centers) == s.kprime+1 {
			s.threshold *= 2
			s.startPhase()
		}
		return
	}
	if len(s.delegates[nearest]) < s.k {
		s.delegates[nearest] = append(s.delegates[nearest], p)
		s.logAppend(p)
	}
}

// ProcessBatch consumes a slice of stream points, equivalent to calling
// Process on each in order; see SMM.ProcessBatch.
func (s *SMMExt[P]) ProcessBatch(batch []P) {
	for _, p := range batch {
		s.Process(p)
	}
}

func (s *SMMExt[P]) startPhase() {
	s.bumpGen()
	s.merged = s.merged[:0]
	for {
		s.phases++
		s.merge()
		if len(s.centers) <= s.kprime {
			return
		}
		s.threshold *= 2
	}
}

// merge computes the maximal independent set at threshold 2·d_i and lets
// each surviving center inherit min(|E_t1|, k−|E_t2|) delegates from each
// removed center t1 it covers (the paper prints "max", which cannot
// exceed |E_t1| nor keep |E_t2| ≤ k; min is the reading consistent with
// the proof of Lemma 4). Delegates that cannot be inherited are retained
// for the phase so Result can top the output up to k points.
func (s *SMMExt[P]) merge() {
	n := len(s.centers)
	keepIdx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		independent := true
		for _, j := range keepIdx {
			if s.d(s.centers[j], s.centers[i]) <= 2*s.threshold {
				independent = false
				break
			}
		}
		if independent {
			keepIdx = append(keepIdx, i)
		}
	}
	inMIS := make([]bool, n)
	for _, j := range keepIdx {
		inMIS[j] = true
	}
	// Removed centers hand over delegates to a covering survivor.
	for i := 0; i < n; i++ {
		if inMIS[i] {
			continue
		}
		for _, j := range keepIdx {
			if s.d(s.centers[j], s.centers[i]) <= 2*s.threshold {
				room := s.k - len(s.delegates[j])
				take := len(s.delegates[i])
				if take > room {
					take = room
				}
				s.delegates[j] = append(s.delegates[j], s.delegates[i][:take]...)
				s.merged = append(s.merged, s.delegates[i][take:]...)
				break
			}
		}
	}
	newCenters := make([]P, len(keepIdx))
	newDelegates := make([][]P, len(keepIdx))
	for out, j := range keepIdx {
		newCenters[out] = s.centers[j]
		newDelegates[out] = s.delegates[j]
	}
	s.centers = newCenters
	s.delegates = newDelegates
	if s.scan != nil {
		s.scan.Rebuild(s.centers)
	}
}

// Result returns T′ = ∪_t E_t, topped up from the phase's dropped
// delegates when fewer than k points survive.
func (s *SMMExt[P]) Result() []P {
	var out []P
	for _, set := range s.delegates {
		out = append(out, set...)
	}
	for i := 0; len(out) < s.k && i < len(s.merged); i++ {
		out = append(out, s.merged[i])
	}
	return out
}

// Centers returns the current kernel T (not the delegates).
func (s *SMMExt[P]) Centers() []P {
	out := make([]P, len(s.centers))
	copy(out, s.centers)
	return out
}

// Threshold returns the running phase threshold d_i.
func (s *SMMExt[P]) Threshold() float64 { return s.threshold }

// CoverageRadius returns 4·d_i, the bound on the distance from any
// processed point to the kernel (see SMM.CoverageRadius).
func (s *SMMExt[P]) CoverageRadius() float64 { return 4 * s.threshold }

// Phases returns the number of merge phases run so far.
func (s *SMMExt[P]) Phases() int { return s.phases }

// Generation counts the restructurings of the core-set; see
// SMM.Generation. Between bumps the union of the delegate sets only
// grows, by exactly the points AppendedSince reports (new centers and
// accepted delegates).
func (s *SMMExt[P]) Generation() uint64 { return s.gen }

// AppendLogLen returns the length of the current generation's append
// log; see SMM.AppendLogLen.
func (s *SMMExt[P]) AppendLogLen() int { return len(s.appended) }

// AppendedSince returns a copy of the points that joined the core-set
// since append-log position pos of the current generation; see
// SMM.AppendedSince.
func (s *SMMExt[P]) AppendedSince(pos int) []P {
	out := make([]P, len(s.appended)-pos)
	copy(out, s.appended[pos:])
	return out
}

// Processed returns the number of stream points consumed.
func (s *SMMExt[P]) Processed() int64 { return s.processed }

// StoredPoints returns the number of points currently in memory:
// all delegate sets plus retained merge drops, O(k′·k).
func (s *SMMExt[P]) StoredPoints() int {
	total := len(s.merged)
	for _, set := range s.delegates {
		total += len(set)
	}
	return total
}

// SMMGen is the count-based variant used by the 2-pass streaming
// algorithm (Theorem 9): it runs exactly like SMMExt but stores only the
// number of delegates each center stands for, producing a generalized
// core-set of size |T| with expanded size ≤ k·|T| and memory O(k′).
type SMMGen[P any] struct {
	k, kprime int
	d         metric.Distance[P]
	scan      centerScanner[P] // flat Euclidean mirror of centers; nil on the generic path

	initialized bool
	threshold   float64
	phases      int
	processed   int64

	centers []P
	counts  []int
}

// NewSMMGen returns the generalized-core-set streaming processor.
func NewSMMGen[P any](k, kprime int, d metric.Distance[P]) *SMMGen[P] {
	if k < 1 || kprime < k {
		panic(fmt.Sprintf("streamalg: NewSMMGen requires 1 <= k <= k', got k=%d k'=%d", k, kprime))
	}
	return &SMMGen[P]{k: k, kprime: kprime, d: d, scan: newCenterScanner(d)}
}

// minDist is the nearest-center scan; see SMM.minDist.
func (s *SMMGen[P]) minDist(p P) (float64, int) {
	if s.scan != nil {
		return s.scan.MinDist(p)
	}
	return metric.MinDistance(p, s.centers, s.d)
}

// addCenter appends a new unit-count center and keeps the fast-path
// mirror in sync.
func (s *SMMGen[P]) addCenter(p P) {
	s.centers = append(s.centers, p)
	s.counts = append(s.counts, 1)
	if s.scan != nil {
		s.scan.Append(p)
	}
}

// Process consumes the next stream point.
func (s *SMMGen[P]) Process(p P) {
	s.processed++
	if !s.initialized {
		if dist, _ := s.minDist(p); dist == 0 && len(s.centers) > 0 {
			return
		}
		s.addCenter(p)
		if len(s.centers) == s.kprime+1 {
			s.threshold = metric.Farness(s.centers, s.d)
			s.initialized = true
			s.startPhase()
		}
		return
	}
	dist, nearest := s.minDist(p)
	if dist > 4*s.threshold {
		s.addCenter(p)
		if len(s.centers) == s.kprime+1 {
			s.threshold *= 2
			s.startPhase()
		}
		return
	}
	if s.counts[nearest] < s.k {
		s.counts[nearest]++
	}
}

// ProcessBatch consumes a slice of stream points, equivalent to calling
// Process on each in order; see SMM.ProcessBatch.
func (s *SMMGen[P]) ProcessBatch(batch []P) {
	for _, p := range batch {
		s.Process(p)
	}
}

func (s *SMMGen[P]) startPhase() {
	for {
		s.phases++
		s.merge()
		if len(s.centers) <= s.kprime {
			return
		}
		s.threshold *= 2
	}
}

func (s *SMMGen[P]) merge() {
	n := len(s.centers)
	keepIdx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		independent := true
		for _, j := range keepIdx {
			if s.d(s.centers[j], s.centers[i]) <= 2*s.threshold {
				independent = false
				break
			}
		}
		if independent {
			keepIdx = append(keepIdx, i)
		}
	}
	inMIS := make([]bool, n)
	for _, j := range keepIdx {
		inMIS[j] = true
	}
	for i := 0; i < n; i++ {
		if inMIS[i] {
			continue
		}
		for _, j := range keepIdx {
			if s.d(s.centers[j], s.centers[i]) <= 2*s.threshold {
				take := s.counts[i]
				if room := s.k - s.counts[j]; take > room {
					take = room
				}
				s.counts[j] += take
				break
			}
		}
	}
	newCenters := make([]P, len(keepIdx))
	newCounts := make([]int, len(keepIdx))
	for out, j := range keepIdx {
		newCenters[out] = s.centers[j]
		newCounts[out] = s.counts[j]
	}
	s.centers = newCenters
	s.counts = newCounts
	if s.scan != nil {
		s.scan.Rebuild(s.centers)
	}
}

// Result returns the generalized core-set (center, count) pairs.
func (s *SMMGen[P]) Result() coreset.Generalized[P] {
	out := make(coreset.Generalized[P], len(s.centers))
	for i, c := range s.centers {
		out[i] = coreset.Weighted[P]{Point: c, Mult: s.counts[i]}
	}
	return out
}

// Threshold returns the running phase threshold d_i.
func (s *SMMGen[P]) Threshold() float64 { return s.threshold }

// CoverageRadius returns 4·d_i, the δ used by the second pass to
// instantiate delegates (r_T ≤ 4·d_ℓ, proof of Theorem 9).
func (s *SMMGen[P]) CoverageRadius() float64 { return 4 * s.threshold }

// Phases returns the number of merge phases run so far.
func (s *SMMGen[P]) Phases() int { return s.phases }

// Processed returns the number of stream points consumed.
func (s *SMMGen[P]) Processed() int64 { return s.processed }

// StoredPoints returns the number of points in memory, O(k′).
func (s *SMMGen[P]) StoredPoints() int { return len(s.centers) }
