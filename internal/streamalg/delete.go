package streamalg

import "divmax/internal/metric"

// Deletion support for the streaming core-set processors (the dynamic
// variant of the insert-only Section 4 constructions, after the
// fully-dynamic template of Pellizzoni–Pietracaprina–Pucci, arXiv
// 2302.07771).
//
// Deletion is by value: Delete(p) removes every retained point at
// metric distance 0 from p, so callers need no handles into processor
// state and duplicates are swept in one call. Three things can happen,
// ordered by how much cached state they invalidate:
//
//   - Absent: no retained copy existed. The point was either never
//     processed or was absorbed without being retained — a tombstone.
//     The core-set is untouched and, crucially for the divmaxd query
//     cache, the generation counter does not move: snapshots taken
//     before the delete remain patchable by pure deltas.
//   - Spare: only spare points were removed (SMM's per-center backup
//     lists, never part of Result). The core-set output is unchanged,
//     so this too leaves the generation alone.
//   - Evicted: a core-set point — a center, a delegate, or a retained
//     merge removal — was removed. The processor re-covers locally
//     (center deletion promotes a spare or a surviving delegate) and
//     bumps the generation, because earlier snapshots may hold the
//     deleted point: SnapshotSince answers them with a full snapshot
//     and downstream caches rebuild from deleted-free state.
//
// The generation contract that makes the non-evicting cases free is the
// PR 5 invariant restated for deletions: between two generation bumps
// the retained point set only ever grows, so a cached union patched
// only with append-log deltas can never contain a point whose deletion
// was non-evicting.
type DeleteOutcome int

const (
	// DeleteAbsent: nothing retained matched — a pure tombstone.
	DeleteAbsent DeleteOutcome = iota
	// DeleteSpare: only spare (backup) points were removed; the
	// core-set output and generation are unchanged.
	DeleteSpare
	// DeleteEvicted: a core-set point was removed; the processor
	// re-covered locally and bumped its generation.
	DeleteEvicted
)

// String returns the wire name divmaxd reports for the outcome.
func (o DeleteOutcome) String() string {
	switch o {
	case DeleteSpare:
		return "spare"
	case DeleteEvicted:
		return "evicted"
	default:
		return "absent"
	}
}

// removeMatches filters every element at metric distance 0 from p out
// of *pts in place, preserving order, and reports how many were
// removed.
func removeMatches[P any](pts *[]P, p P, d metric.Distance[P]) int {
	kept := (*pts)[:0]
	removed := 0
	for _, q := range *pts {
		if d(q, p) == 0 {
			removed++
			continue
		}
		kept = append(kept, q)
	}
	*pts = kept
	return removed
}

// Delete removes every retained copy of p (metric distance 0) from the
// processor. Spares are swept first so a promotion can never resurface
// the deleted value; a deleted center is replaced by its first spare
// when one is retained (coverage degrades from 4·d_i to at most 8·d_i —
// the spare was within the coverage radius of the center it replaces)
// and dropped otherwise. Any eviction bumps the generation and restarts
// the append log, forcing downstream snapshot caches to rebuild from
// deleted-free state.
func (s *SMM[P]) Delete(p P) DeleteOutcome {
	out := DeleteAbsent
	for i := range s.spares {
		if removeMatches(&s.spares[i], p, s.d) > 0 {
			out = DeleteSpare
		}
	}
	evicted := removeMatches(&s.merged, p, s.d) > 0
	// Centers are pairwise distinct (duplicates fold during init and are
	// absorbed after), so at most one center can match.
	for i, c := range s.centers {
		if s.d(c, p) != 0 {
			continue
		}
		if len(s.spares) > i && len(s.spares[i]) > 0 {
			s.centers[i] = s.spares[i][0]
			s.spares[i] = append(s.spares[i][:0], s.spares[i][1:]...)
		} else {
			s.centers = append(s.centers[:i], s.centers[i+1:]...)
			if len(s.spares) > i {
				s.spares = append(s.spares[:i], s.spares[i+1:]...)
			}
		}
		if s.scan != nil {
			s.scan.Rebuild(s.centers)
		}
		evicted = true
		break
	}
	if evicted {
		s.bumpGen()
		return DeleteEvicted
	}
	return out
}

// Delete removes every retained copy of p (metric distance 0) from the
// processor's delegate sets and retained merge drops. Removing any
// delegate is an eviction — delegates are part of the core-set output —
// and a deleted center is replaced by its first surviving delegate
// (within 4·d_i of it, so coverage degrades to at most 8·d_i) or, when
// the delete emptied its delegate set, dropped with its cluster. Any
// eviction bumps the generation and restarts the append log.
func (s *SMMExt[P]) Delete(p P) DeleteOutcome {
	evicted := removeMatches(&s.merged, p, s.d) > 0
	restructured := false
	for i := 0; i < len(s.centers); i++ {
		if removeMatches(&s.delegates[i], p, s.d) == 0 {
			continue
		}
		evicted = true
		if s.d(s.centers[i], p) != 0 {
			continue
		}
		// The center itself matched (its own delegate entry was removed
		// above): promote the first surviving delegate, or drop the
		// cluster when none survived.
		if len(s.delegates[i]) > 0 {
			s.centers[i] = s.delegates[i][0]
		} else {
			s.centers = append(s.centers[:i], s.centers[i+1:]...)
			s.delegates = append(s.delegates[:i], s.delegates[i+1:]...)
			i--
		}
		restructured = true
	}
	if restructured && s.scan != nil {
		s.scan.Rebuild(s.centers)
	}
	if evicted {
		s.bumpGen()
		return DeleteEvicted
	}
	return DeleteAbsent
}
