package streamalg

import (
	"math"

	"divmax/internal/metric"
)

// centerScanner is the nearest-center engine behind the SMM family's
// Euclidean fast path. The processors keep it as a mirror of their
// center set — Append on every accepted center, Rebuild after a merge
// rewrites the set — and route every MinDistance scan through it.
// MinDist must return exactly what metric.MinDistance(p, centers,
// Euclidean) returns: the scan runs on squared distances over a flat
// row-major buffer and takes a single square root at the end, which
// commutes with the minimum because correctly-rounded sqrt is monotone.
type centerScanner[P any] interface {
	// Append mirrors appending p to the center set.
	Append(p P)
	// Rebuild mirrors wholesale replacement of the center set.
	Rebuild(centers []P)
	// MinDist returns the distance to and index of the nearest mirrored
	// center, (+Inf, -1) when none; ties break toward the lowest index.
	MinDist(p P) (float64, int)
}

// newCenterScanner returns the fast scanner when d is metric.Euclidean
// and P is metric.Vector, and nil otherwise — processors treat nil as
// "use the generic scan". Wrapped or instrumented distances are never
// recognized, so counting tests and custom metrics keep their exact
// call patterns.
func newCenterScanner[P any](d metric.Distance[P]) centerScanner[P] {
	if !metric.IsEuclidean(d) {
		return nil
	}
	sc, _ := any(&vecScanner{}).(centerScanner[P])
	return sc // nil unless P is metric.Vector
}

// vecScanner is the concrete scanner for dense Euclidean vectors: the
// centers live in one flat row-major buffer, scanned with the squared
// distance kernels of internal/metric.
type vecScanner struct {
	flat metric.Points
}

func (v *vecScanner) Append(p metric.Vector) { v.flat.Append(p) }

func (v *vecScanner) Rebuild(centers []metric.Vector) {
	v.flat.Reset()
	for _, c := range centers {
		v.flat.Append(c)
	}
}

func (v *vecScanner) MinDist(p metric.Vector) (float64, int) {
	sq, idx := v.flat.MinSq(p)
	if idx < 0 {
		return math.Inf(1), -1
	}
	return math.Sqrt(sq), idx
}
