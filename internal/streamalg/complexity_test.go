package streamalg

import (
	"math/rand"
	"testing"

	"divmax/internal/metric"
)

// Complexity-claim tests: the streaming processors' per-point cost,
// verified by counting distance evaluations.

func TestSMMPerPointDistanceBudget(t *testing.T) {
	// Processing a point costs O(|T|) ≤ k′+1 distance evaluations, plus
	// amortized merge work: merges are O((k'+1)²) but only run when a
	// phase fills, so the long-run average stays within a small multiple
	// of k′. Verify the amortized budget over a long stream.
	rng := rand.New(rand.NewSource(1))
	n, k, kprime := 20000, 8, 32
	pts := randomVectors(rng, n, 2)
	c := metric.NewCounter(metric.Euclidean)
	s := NewSMM(k, kprime, c.Distance())
	for _, p := range pts {
		s.Process(p)
	}
	perPoint := float64(c.Calls()) / float64(n)
	if budget := float64(4 * (kprime + 1)); perPoint > budget {
		t.Fatalf("SMM amortized %v distance calls/point, budget %v", perPoint, budget)
	}
}

func TestSMMWorkIndependentOfStreamLength(t *testing.T) {
	// The paper's headline: per-point work does not grow with n.
	rng := rand.New(rand.NewSource(2))
	k, kprime := 4, 16
	perPoint := func(n int) float64 {
		pts := randomVectors(rng, n, 2)
		c := metric.NewCounter(metric.Euclidean)
		s := NewSMM(k, kprime, c.Distance())
		for _, p := range pts {
			s.Process(p)
		}
		return float64(c.Calls()) / float64(n)
	}
	short := perPoint(2000)
	long := perPoint(32000)
	if long > 2*short+float64(kprime) {
		t.Fatalf("per-point work grew with stream length: %v -> %v", short, long)
	}
}

func TestSMMExtPerPointDistanceBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, k, kprime := 20000, 6, 24
	pts := randomVectors(rng, n, 2)
	c := metric.NewCounter(metric.Euclidean)
	s := NewSMMExt(k, kprime, c.Distance())
	for _, p := range pts {
		s.Process(p)
	}
	perPoint := float64(c.Calls()) / float64(n)
	if budget := float64(4 * (kprime + 1)); perPoint > budget {
		t.Fatalf("SMM-EXT amortized %v distance calls/point, budget %v", perPoint, budget)
	}
}
