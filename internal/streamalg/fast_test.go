package streamalg

import (
	"math"
	"math/rand"
	"testing"

	"divmax/internal/metric"
)

// genericEuclid defeats IsEuclidean recognition, forcing the generic
// MinDistance scan; the tests below use it as the reference.
func genericEuclid(a, b metric.Vector) float64 { return metric.Euclidean(a, b) }

func tieHeavyStream(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = float64(rng.Intn(5))
		}
		pts[i] = v
	}
	return pts
}

func sameVectors(t *testing.T, label string, fast, slow []metric.Vector) {
	t.Helper()
	if len(fast) != len(slow) {
		t.Fatalf("%s: fast holds %d points, generic %d", label, len(fast), len(slow))
	}
	for i := range fast {
		if len(fast[i]) != len(slow[i]) {
			t.Fatalf("%s: point %d dims differ", label, i)
		}
		for j := range fast[i] {
			if math.Float64bits(fast[i][j]) != math.Float64bits(slow[i][j]) {
				t.Fatalf("%s: point %d coordinate %d: fast %v, generic %v",
					label, i, j, fast[i][j], slow[i][j])
			}
		}
	}
}

// TestSMMScannerDispatch pins that the SMM family actually installs the
// flat scanner for Euclidean-over-Vector and only then.
func TestSMMScannerDispatch(t *testing.T) {
	if NewSMM(2, 4, metric.Euclidean).scan == nil {
		t.Fatal("SMM: Euclidean over Vector did not get the fast scanner")
	}
	if NewSMM(2, 4, metric.Distance[metric.Vector](genericEuclid)).scan != nil {
		t.Fatal("SMM: wrapper distance got the fast scanner")
	}
	if NewSMM(2, 4, metric.CosineDistance).scan != nil {
		t.Fatal("SMM: sparse cosine got the fast scanner")
	}
	if NewSMMExt(2, 4, metric.Euclidean).scan == nil {
		t.Fatal("SMMExt: Euclidean over Vector did not get the fast scanner")
	}
	if NewSMMGen(2, 4, metric.Euclidean).scan == nil {
		t.Fatal("SMMGen: Euclidean over Vector did not get the fast scanner")
	}
}

// TestSMMFastMatchesGeneric streams identical data through the fast and
// generic SMM, interleaving Process and ProcessBatch, and requires
// bit-identical centers, thresholds, phase counts, and results at every
// checkpoint.
func TestSMMFastMatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{1, 2, 3, 8, 16}
		dim := dims[int(seed)%len(dims)]
		var pts []metric.Vector
		if seed%2 == 0 {
			pts = randomVectors(rng, 3000, dim)
		} else {
			pts = tieHeavyStream(rng, 3000, dim)
		}
		k := 1 + rng.Intn(4)
		kprime := k + rng.Intn(12)
		fast := NewSMM(k, kprime, metric.Euclidean)
		slow := NewSMM(k, kprime, metric.Distance[metric.Vector](genericEuclid))
		for len(pts) > 0 {
			batch := 1 + rng.Intn(200)
			if batch > len(pts) {
				batch = len(pts)
			}
			fast.ProcessBatch(pts[:batch])
			for _, p := range pts[:batch] {
				slow.Process(p)
			}
			pts = pts[batch:]
			if math.Float64bits(fast.Threshold()) != math.Float64bits(slow.Threshold()) {
				t.Fatalf("seed %d: thresholds differ: fast %v, generic %v", seed, fast.Threshold(), slow.Threshold())
			}
			if fast.Phases() != slow.Phases() {
				t.Fatalf("seed %d: phases differ: fast %d, generic %d", seed, fast.Phases(), slow.Phases())
			}
			sameVectors(t, "SMM centers", fast.centers, slow.centers)
		}
		sameVectors(t, "SMM result", fast.Result(), slow.Result())
	}
}

// TestSMMExtFastMatchesGeneric does the same for the delegate-carrying
// variant, whose nearest-center *index* (not just distance) must match
// for every non-center point.
func TestSMMExtFastMatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dim := []int{2, 3, 8}[int(seed)%3]
		var pts []metric.Vector
		if seed%2 == 0 {
			pts = randomVectors(rng, 2000, dim)
		} else {
			pts = tieHeavyStream(rng, 2000, dim)
		}
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(8)
		fast := NewSMMExt(k, kprime, metric.Euclidean)
		slow := NewSMMExt(k, kprime, metric.Distance[metric.Vector](genericEuclid))
		half := len(pts) / 2
		fast.ProcessBatch(pts[:half])
		fast.ProcessBatch(pts[half:])
		for _, p := range pts {
			slow.Process(p)
		}
		sameVectors(t, "SMMExt centers", fast.Centers(), slow.Centers())
		sameVectors(t, "SMMExt result", fast.Result(), slow.Result())
		if fast.StoredPoints() != slow.StoredPoints() {
			t.Fatalf("seed %d: stored points differ: fast %d, generic %d",
				seed, fast.StoredPoints(), slow.StoredPoints())
		}
	}
}

// TestSMMGenFastMatchesGeneric checks the count-based variant: centers
// and multiplicities must agree exactly.
func TestSMMGenFastMatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var pts []metric.Vector
		if seed%2 == 0 {
			pts = randomVectors(rng, 2000, 3)
		} else {
			pts = tieHeavyStream(rng, 2000, 2)
		}
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(8)
		fast := NewSMMGen(k, kprime, metric.Euclidean)
		slow := NewSMMGen(k, kprime, metric.Distance[metric.Vector](genericEuclid))
		fast.ProcessBatch(pts)
		for _, p := range pts {
			slow.Process(p)
		}
		fg, sg := fast.Result(), slow.Result()
		if len(fg) != len(sg) {
			t.Fatalf("seed %d: result sizes differ: fast %d, generic %d", seed, len(fg), len(sg))
		}
		for i := range fg {
			if fg[i].Mult != sg[i].Mult {
				t.Fatalf("seed %d: multiplicity %d differs: fast %d, generic %d", seed, i, fg[i].Mult, sg[i].Mult)
			}
			sameVectors(t, "SMMGen center", []metric.Vector{fg[i].Point}, []metric.Vector{sg[i].Point})
		}
	}
}

// TestProcessBatchMatchesProcess: batching is pure plumbing — the
// processor state after ProcessBatch must equal point-at-a-time
// Process on the same prefix, on both paths.
func TestProcessBatchMatchesProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := randomVectors(rng, 1500, 3)
	for _, d := range []metric.Distance[metric.Vector]{metric.Euclidean, genericEuclid} {
		batched := NewSMM(3, 9, d)
		single := NewSMM(3, 9, d)
		batched.ProcessBatch(pts)
		for _, p := range pts {
			single.Process(p)
		}
		if batched.Processed() != single.Processed() {
			t.Fatalf("processed counts differ: %d vs %d", batched.Processed(), single.Processed())
		}
		sameVectors(t, "batched SMM", batched.Result(), single.Result())
		// Empty batches are no-ops.
		before := batched.Processed()
		batched.ProcessBatch(nil)
		if batched.Processed() != before {
			t.Fatal("empty batch changed the processed count")
		}
	}
}
