package streamalg

import (
	"testing"

	"divmax/internal/coreset"
	"divmax/internal/metric"
)

// FuzzSMMInvariants drives SMM with an arbitrary byte-encoded point
// stream (two bytes per 2-D point, so duplicates and near-duplicates are
// common) and asserts the doubling algorithm's invariants at every step.
func FuzzSMMInvariants(f *testing.F) {
	f.Add([]byte{0, 0, 255, 255, 0, 255, 255, 0, 128, 128}, uint8(2), uint8(4))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, uint8(1), uint8(1))
	f.Add([]byte{}, uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, kpRaw uint8) {
		k := 1 + int(kRaw)%4
		kprime := k + int(kpRaw)%5
		s := NewSMM(k, kprime, metric.Euclidean)
		// ref runs the generic scan (the wrapper defeats the Euclidean
		// fast path): the scalar and batched kernels must agree step for
		// step on arbitrary streams.
		ref := NewSMM(k, kprime, metric.Distance[metric.Vector](genericEuclid))
		var all []metric.Vector
		for i := 0; i+1 < len(data); i += 2 {
			p := metric.Vector{float64(data[i]), float64(data[i+1])}
			all = append(all, p)
			s.Process(p)
			ref.Process(p)
			if got := len(s.centers); got > kprime+1 {
				t.Fatalf("center count %d exceeds k'+1=%d", got, kprime+1)
			}
			if s.StoredPoints() > 2*(kprime+1) {
				t.Fatalf("memory %d exceeds 2(k'+1)", s.StoredPoints())
			}
			if len(s.centers) != len(ref.centers) || s.Threshold() != ref.Threshold() {
				t.Fatalf("fast path diverged from generic: %d centers at threshold %v vs %d at %v",
					len(s.centers), s.Threshold(), len(ref.centers), ref.Threshold())
			}
		}
		if len(all) == 0 {
			return
		}
		// Coverage invariant at stream end.
		if cover := metric.Range(all, s.centers, metric.Euclidean); cover > s.CoverageRadius()+1e-9 {
			t.Fatalf("coverage %v exceeds radius %v", cover, s.CoverageRadius())
		}
		// Pairwise separation invariant.
		if s.Threshold() > 0 && s.invariantPairwise() < s.Threshold()-1e-9 {
			t.Fatalf("pairwise %v below threshold %v", s.invariantPairwise(), s.Threshold())
		}
		// Result top-up: at least min(k, distinct) points.
		distinct := map[[2]float64]bool{}
		for _, p := range all {
			distinct[[2]float64{p[0], p[1]}] = true
		}
		want := k
		if len(distinct) < want {
			want = len(distinct)
		}
		if got := len(s.Result()); got < want {
			t.Fatalf("result %d points, want >= %d", got, want)
		}
	})
}

// FuzzSMMExtDelegateCaps checks SMM-EXT's cap and coverage invariants on
// arbitrary streams.
func FuzzSMMExtDelegateCaps(f *testing.F) {
	f.Add([]byte{0, 0, 200, 200, 0, 200, 100, 100}, uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, kpRaw uint8) {
		k := 1 + int(kRaw)%4
		kprime := k + int(kpRaw)%4
		s := NewSMMExt(k, kprime, metric.Euclidean)
		for i := 0; i+1 < len(data); i += 2 {
			s.Process(metric.Vector{float64(data[i]), float64(data[i+1])})
			for _, set := range s.delegates {
				if len(set) > k {
					t.Fatalf("delegate set size %d exceeds k=%d", len(set), k)
				}
			}
		}
		centers := s.Centers()
		if len(centers) == 0 {
			return
		}
		for _, q := range s.Result() {
			if dist, _ := metric.MinDistance(q, centers, metric.Euclidean); dist > s.CoverageRadius()+1e-9 {
				t.Fatalf("delegate at %v from kernel, radius %v", dist, s.CoverageRadius())
			}
		}
	})
}

// FuzzInstantiator feeds arbitrary streams to the pass-2 instantiator:
// it must never panic, and when it succeeds every output point must be
// within delta of a kernel point and the output size must equal the
// total multiplicity.
func FuzzInstantiator(f *testing.F) {
	f.Add([]byte{10, 20, 30, 200, 210}, uint8(2), uint8(50))
	f.Add([]byte{}, uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, multRaw, deltaRaw uint8) {
		if len(data) == 0 {
			return
		}
		g := coreset.Generalized[metric.Vector]{
			{Point: metric.Vector{float64(data[0])}, Mult: 1 + int(multRaw)%3},
		}
		if len(data) > 1 && data[1] != data[0] {
			g = append(g, coreset.Weighted[metric.Vector]{
				Point: metric.Vector{float64(data[1])}, Mult: 1 + int(multRaw)%2,
			})
		}
		delta := float64(deltaRaw)
		inst := NewInstantiator(g, delta, metric.Euclidean)
		for _, b := range data {
			inst.Process(metric.Vector{float64(b)})
		}
		out, err := inst.Result()
		if err != nil {
			return // legitimately unfillable at this delta
		}
		if len(out) != g.ExpandedSize() {
			t.Fatalf("instantiated %d points, want %d", len(out), g.ExpandedSize())
		}
		for _, q := range out {
			ok := false
			for _, w := range g {
				if metric.Euclidean(q, w.Point) <= delta {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("delegate %v outside delta of every kernel point", q)
			}
		}
	})
}
