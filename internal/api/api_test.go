package api

import (
	"encoding/json"
	"reflect"
	"testing"

	"divmax"
)

// The wire contract: every struct must round-trip through JSON
// unchanged, and the key names — once frozen under /v1 — must never
// drift. Each case marshals a fully populated value and compares
// against the exact expected JSON, so a renamed or retyped field (a
// breaking change within /v1) fails here before it reaches a client.

func roundTrip[T any](t *testing.T, name string, in T, wantJSON string) {
	t.Helper()
	got, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("%s: marshal: %v", name, err)
	}
	if string(got) != wantJSON {
		t.Errorf("%s: marshaled\n  %s\nwant\n  %s", name, got, wantJSON)
	}
	var back T
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("%s: unmarshal: %v", name, err)
	}
	if !reflect.DeepEqual(back, in) {
		t.Errorf("%s: round trip %+v != original %+v", name, back, in)
	}
}

func TestWireShapes(t *testing.T) {
	roundTrip(t, "IngestRequest",
		IngestRequest{Points: []divmax.Vector{{1, 2}, {3.5, -4}}},
		`{"points":[[1,2],[3.5,-4]]}`)
	roundTrip(t, "IngestResponse",
		IngestResponse{Accepted: 7, Shards: 3},
		`{"accepted":7,"shards":3}`)
	roundTrip(t, "DeleteRequest",
		DeleteRequest{Points: []divmax.Vector{{9, 9}}},
		`{"points":[[9,9]]}`)
	roundTrip(t, "DeleteResponse",
		DeleteResponse{Requested: 5, Evicted: 1, Spares: 2, Tombstones: 2, Shards: 4},
		`{"requested":5,"evicted":1,"spares":2,"tombstones":2,"shards":4}`)
	// The coordinator's per-point outcome protocol: want_outcomes and
	// outcomes are omitempty, so plain requests and responses above keep
	// the pre-cluster bytes.
	roundTrip(t, "DeleteRequest/outcomes",
		DeleteRequest{Points: []divmax.Vector{{9, 9}}, WantOutcomes: true},
		`{"points":[[9,9]],"want_outcomes":true}`)
	roundTrip(t, "DeleteResponse/outcomes",
		DeleteResponse{Requested: 2, Evicted: 1, Tombstones: 1, Shards: 4, Outcomes: []int{2, 0}},
		`{"requested":2,"evicted":1,"spares":0,"tombstones":1,"shards":4,"outcomes":[2,0]}`)
	roundTrip(t, "ErrorEnvelope",
		ErrorEnvelope{Error: ErrorDetail{Code: CodeBadRequest, Message: "bad k"}},
		`{"error":{"code":"bad_request","message":"bad k"}}`)
	roundTrip(t, "QueryResponse",
		QueryResponse{
			Measure: "remote-edge", K: 3,
			Solution: []divmax.Vector{{0, 0}, {1, 1}},
			Value:    2.5, Exact: true, CoresetSize: 12, Processed: 100,
			MergeMillis: 0.25, Cached: true, Patched: true, WarmStarted: true,
			Degraded: true, ShardsMissing: 2,
		},
		`{"measure":"remote-edge","k":3,"solution":[[0,0],[1,1]],"value":2.5,`+
			`"exact_value":true,"coreset_size":12,"processed":100,"merge_ms":0.25,`+
			`"cached":true,"patched":true,"warm_started":true,"degraded":true,`+
			`"shards_missing":2}`)
	// A coordinator's quorum-degraded answer carries workers_missing;
	// single-process servers never set it.
	roundTrip(t, "QueryResponse/coordinator-degraded",
		QueryResponse{Measure: "remote-clique", K: 2, Solution: []divmax.Vector{{0, 0}},
			Degraded: true, WorkersMissing: 1},
		`{"measure":"remote-clique","k":2,"solution":[[0,0]],"value":0,`+
			`"exact_value":false,"coreset_size":0,"processed":0,"merge_ms":0,`+
			`"cached":false,"patched":false,"warm_started":false,"degraded":true,`+
			`"workers_missing":1}`)
	// A healthy (non-degraded) answer must serialize without the degraded
	// fields at all — omitempty keeps the steady-state wire bytes of the
	// pre-robustness server.
	roundTrip(t, "QueryResponse/healthy",
		QueryResponse{Measure: "remote-edge", K: 1, Solution: []divmax.Vector{{0}}},
		`{"measure":"remote-edge","k":1,"solution":[[0]],"value":0,`+
			`"exact_value":false,"coreset_size":0,"processed":0,"merge_ms":0,`+
			`"cached":false,"patched":false,"warm_started":false}`)
	// In-memory ShardStats: the durability fields are all omitempty, so a
	// server without a data directory emits exactly the pre-durability
	// bytes.
	roundTrip(t, "ShardStats",
		ShardStats{ID: 1, Ingested: 10, Batches: 2, LastBatch: 5, AvgBatch: 5, Stored: 8, Deleted: 3,
			Health: "healthy", QueueDepth: 4, Restarts: 1, Panics: 2},
		`{"id":1,"ingested":10,"batches":2,"last_batch":5,"avg_batch":5,`+
			`"stored_points":8,"deleted_points":3,"health":"healthy",`+
			`"queue_depth":4,"restarts":1,"panics":2}`)
	roundTrip(t, "ShardStats/durable",
		ShardStats{ID: 1, Ingested: 10, Batches: 2, LastBatch: 5, AvgBatch: 5, Stored: 8, Deleted: 3,
			Health: "healthy", QueueDepth: 4, Restarts: 1, Panics: 2,
			WALBytes: 4096, WALSegments: 2, CheckpointAgeMS: 250, ReplayedPoints: 7},
		`{"id":1,"ingested":10,"batches":2,"last_batch":5,"avg_batch":5,`+
			`"stored_points":8,"deleted_points":3,"health":"healthy",`+
			`"queue_depth":4,"restarts":1,"panics":2,"wal_bytes":4096,`+
			`"wal_segments":2,"checkpoint_age_ms":250,"replayed_points":7}`)
	roundTrip(t, "StatsResponse",
		StatsResponse{
			Shards:        []ShardStats{{ID: 0, Health: "healthy"}},
			IngestedTotal: 10, Queries: 4, Merges: 2, LastMergeMS: 1.5,
			CacheHits: 1, CacheMisses: 3, MissesCold: 2, MissesInvalidated: 1,
			DeltaPatches: 1, FullRebuilds: 2,
			CachedCoresetPoints: 20, CachedMatrixBytes: 3200, MemoWarmStarts: 1,
			DeletesRequested: 6, DeletesEvicting: 1, DeletesSpares: 2, DeletesTombstoned: 3,
			SolveWorkers: 4, TiledSolves: 1,
			ShardsFailed: 1, ShardRestarts: 3, DegradedQueries: 2, IngestSheds: 5, QuerySheds: 4,
			MaxK: 16, KPrime: 64, Draining: true,
		},
		`{"shards":[{"id":0,"ingested":0,"batches":0,"last_batch":0,"avg_batch":0,`+
			`"stored_points":0,"deleted_points":0,"health":"healthy","queue_depth":0,`+
			`"restarts":0,"panics":0}],"ingested_total":10,"queries":4,`+
			`"merges":2,"last_merge_ms":1.5,"query_cache_hits":1,"query_cache_misses":3,`+
			`"query_cache_misses_cold":2,"query_cache_misses_invalidated":1,`+
			`"delta_patches":1,"full_rebuilds":2,"cached_coreset_points":20,`+
			`"cached_matrix_bytes":3200,"memo_warm_starts":1,"deletes_requested":6,`+
			`"deletes_evicting":1,"deletes_spares":2,"deletes_tombstoned":3,`+
			`"solve_workers":4,"tiled_solves":1,"shards_failed":1,"shard_restarts":3,`+
			`"degraded_queries":2,"ingest_sheds":5,"query_sheds":4,`+
			`"max_k":16,"kprime":64,"draining":true}`)
	// A durable server that has recovered shards additionally reports
	// recoveries; in-memory responses omit it (omitempty), keeping their
	// bytes identical to the case above.
	roundTrip(t, "StatsResponse/recovered",
		StatsResponse{Shards: []ShardStats{}, SolveWorkers: 1, MaxK: 4, KPrime: 16, Recoveries: 3},
		`{"shards":[],"ingested_total":0,"queries":0,"merges":0,"last_merge_ms":0,`+
			`"query_cache_hits":0,"query_cache_misses":0,"query_cache_misses_cold":0,`+
			`"query_cache_misses_invalidated":0,"delta_patches":0,"full_rebuilds":0,`+
			`"cached_coreset_points":0,"cached_matrix_bytes":0,"memo_warm_starts":0,`+
			`"deletes_requested":0,"deletes_evicting":0,"deletes_spares":0,`+
			`"deletes_tombstoned":0,"solve_workers":1,"tiled_solves":0,"shards_failed":0,`+
			`"shard_restarts":0,"degraded_queries":0,"ingest_sheds":0,"query_sheds":0,`+
			`"max_k":4,"kprime":16,"draining":false,"recoveries":3}`)
	// The coordinator's round-1 fetch protocol.
	roundTrip(t, "SnapshotRequest/full",
		SnapshotRequest{Family: "edge"},
		`{"family":"edge"}`)
	roundTrip(t, "SnapshotRequest/incremental",
		SnapshotRequest{Family: "proxy", Cursor: &SnapshotCursor{Gens: []uint64{3, 0}, Poss: []int{7, 2}}},
		`{"family":"proxy","cursor":{"gens":[3,0],"poss":[7,2]}}`)
	roundTrip(t, "SnapshotResponse",
		SnapshotResponse{Partial: true, Points: []divmax.Vector{{1, 2}}, Processed: 50,
			Cursor: SnapshotCursor{Gens: []uint64{3, 0}, Poss: []int{8, 2}}, Shards: 2},
		`{"partial":true,"points":[[1,2]],"processed":50,`+
			`"cursor":{"gens":[3,0],"poss":[8,2]},"shards":2}`)
	// Coordinator stats: worker health rides in omitempty fields, so the
	// single-process StatsResponse cases above keep their exact bytes.
	roundTrip(t, "WorkerStats",
		WorkerStats{ID: 1, URL: "http://w1:9090", State: "suspect", ConsecutiveFailures: 2,
			LastProbeMS: 1.5, HedgedRequests: 3, Retries: 7, Evictions: 1, IngestedPoints: 1000},
		`{"id":1,"url":"http://w1:9090","state":"suspect","consecutive_failures":2,`+
			`"last_probe_ms":1.5,"hedged_requests":3,"retries":7,"evictions":1,`+
			`"ingested_points":1000}`)
	roundTrip(t, "StatsResponse/coordinator",
		StatsResponse{Shards: []ShardStats{}, SolveWorkers: 1, MaxK: 4, KPrime: 16,
			Workers: []WorkerStats{{ID: 0, URL: "http://w0:9090", State: "healthy"}},
			Quorum:  2, WorkersEvicted: 1},
		`{"shards":[],"ingested_total":0,"queries":0,"merges":0,"last_merge_ms":0,`+
			`"query_cache_hits":0,"query_cache_misses":0,"query_cache_misses_cold":0,`+
			`"query_cache_misses_invalidated":0,"delta_patches":0,"full_rebuilds":0,`+
			`"cached_coreset_points":0,"cached_matrix_bytes":0,"memo_warm_starts":0,`+
			`"deletes_requested":0,"deletes_evicting":0,"deletes_spares":0,`+
			`"deletes_tombstoned":0,"solve_workers":1,"tiled_solves":0,"shards_failed":0,`+
			`"shard_restarts":0,"degraded_queries":0,"ingest_sheds":0,"query_sheds":0,`+
			`"max_k":4,"kprime":16,"draining":false,`+
			`"workers":[{"id":0,"url":"http://w0:9090","state":"healthy",`+
			`"consecutive_failures":0,"last_probe_ms":0,"hedged_requests":0,`+
			`"retries":0,"evictions":0,"ingested_points":0}],"quorum":2,"workers_evicted":1}`)
}

// TestErrorCodesAndPrefix pins the versioning constants clients build
// against.
func TestErrorCodesAndPrefix(t *testing.T) {
	if Prefix != "/v1" {
		t.Errorf("Prefix = %q, want /v1", Prefix)
	}
	codes := map[string]string{
		CodeBadRequest:       "bad_request",
		CodeMethodNotAllowed: "method_not_allowed",
		CodePayloadTooLarge:  "payload_too_large",
		CodeUnavailable:      "unavailable",
		CodeDeadlineExceeded: "deadline_exceeded",
		CodeOverloaded:       "overloaded",
	}
	for got, want := range codes {
		if got != want {
			t.Errorf("error code %q, want %q", got, want)
		}
	}
}

// TestDecodeRejectsUnknownShapes: requests decode strictly enough that
// a typo'd points key yields an empty batch rather than silent garbage,
// and non-array points fail outright.
func TestDecodeRejectsUnknownShapes(t *testing.T) {
	var ing IngestRequest
	if err := json.Unmarshal([]byte(`{"pts": [[1,2]]}`), &ing); err != nil || len(ing.Points) != 0 {
		t.Errorf("typo'd key decoded to %+v (err %v), want empty", ing, err)
	}
	if err := json.Unmarshal([]byte(`{"points": "nope"}`), &ing); err == nil {
		t.Error("string points decoded without error")
	}
	var del DeleteRequest
	if err := json.Unmarshal([]byte(`{"points": [[1,"x"]]}`), &del); err == nil {
		t.Error("non-numeric coordinate decoded without error")
	}
}
