// Package api defines divmaxd's versioned wire contract: the typed
// request and response bodies of every /v1 endpoint, and the uniform
// error envelope. The server handlers, cmd/bench, and the tests all
// encode and decode through these structs, so the wire shapes live in
// exactly one place before multi-node scale-out freezes them.
//
// Versioning: every endpoint is mounted under /v1 (Prefix); the
// original unversioned paths remain as aliases served by the same
// handlers, byte-identical body for body. New fields may be added to
// responses within /v1; renaming or removing one is a new version.
package api

import "divmax"

// Prefix is the path prefix of the current API version. The legacy
// unversioned paths are aliases of the /v1 ones.
const Prefix = "/v1"

// Error codes of the uniform envelope, mapped 1:1 from HTTP status:
// every non-2xx response body is an ErrorEnvelope carrying one of
// these.
const (
	// CodeBadRequest (400): malformed JSON, invalid points (mixed
	// dimensions, NaN/Inf), out-of-range parameters, unknown measure.
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed (405): wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodePayloadTooLarge (413): request body over the ingest limit.
	CodePayloadTooLarge = "payload_too_large"
	// CodeUnavailable (503): the server is draining (Close was called),
	// or a shard has failed permanently and the request needs it
	// (fail-closed queries, every ingest and delete).
	CodeUnavailable = "unavailable"
	// CodeDeadlineExceeded (504): the request's deadline (the
	// -query-deadline / -ingest-deadline flags, or the client hanging
	// up) expired before the shard fan-out completed.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeOverloaded (429): load shed — a shard's ingest queue stayed
	// full past the shed wait, or the inflight-query limiter is at
	// capacity. The response carries a Retry-After header.
	CodeOverloaded = "overloaded"
)

// ErrorEnvelope is the body of every error response:
// {"error":{"code":"bad_request","message":"..."}}.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable code and the human-readable
// message of an error response.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// IngestRequest is the body of POST /v1/ingest: a batch of points,
// uniform dimension, finite coordinates.
type IngestRequest struct {
	Points []divmax.Vector `json:"points"`
}

// IngestResponse acknowledges an ingest batch.
type IngestResponse struct {
	// Accepted is the number of points dealt to the shards.
	Accepted int `json:"accepted"`
	// Shards is the server's shard count.
	Shards int `json:"shards"`
}

// DeleteRequest is the body of POST /v1/delete: points to remove from
// the stream's ground set. Deletion is by value — every retained copy
// at distance 0 is removed on every shard, so callers need no handles
// into server state.
type DeleteRequest struct {
	Points []divmax.Vector `json:"points"`
	// WantOutcomes asks for the per-point outcome array in the response
	// (omitempty: absent requests keep the pre-cluster wire bytes). The
	// coordinator sets it so it can fold each point's strongest outcome
	// across workers instead of summing double-counted totals.
	WantOutcomes bool `json:"want_outcomes,omitempty"`
}

// DeleteResponse reports what a delete batch did, per point classified
// by the strongest outcome across shards and core-set families.
type DeleteResponse struct {
	// Requested is the number of points in the request.
	Requested int `json:"requested"`
	// Evicted counts points whose removal evicted a core-set point
	// somewhere — the expensive case: the affected core-sets re-covered
	// locally and bumped their snapshot generation, so the next query
	// on a stale cache rebuilds instead of patching.
	Evicted int `json:"evicted"`
	// Spares counts points that only removed spare (backup) points;
	// core-set outputs and generations unchanged, caches keep patching.
	Spares int `json:"spares"`
	// Tombstones counts points with no retained copy anywhere — either
	// never ingested or absorbed without retention. Free: nothing
	// structural changed.
	Tombstones int `json:"tombstones"`
	// Shards is the server's shard count (every delete is broadcast).
	Shards int `json:"shards"`
	// Outcomes, present only when the request set want_outcomes, holds
	// one entry per request point in order: 0 tombstone, 1 spare, 2
	// evicted (divmax.DeleteAbsent/DeleteSpare/DeleteEvicted).
	Outcomes []int `json:"outcomes,omitempty"`
}

// QueryResponse is the body of GET /v1/query.
type QueryResponse struct {
	Measure     string          `json:"measure"`
	K           int             `json:"k"`
	Solution    []divmax.Vector `json:"solution"`
	Value       float64         `json:"value"`
	Exact       bool            `json:"exact_value"`
	CoresetSize int             `json:"coreset_size"`
	Processed   int64           `json:"processed"`
	MergeMillis float64         `json:"merge_ms"`
	// Cached reports that the merged core-set and its distance matrix
	// were reused from the snapshot cache (no shard accepted a batch
	// since they were built); merge_ms then covers only the solve — or
	// nothing at all when the (measure, k) answer itself was memoized.
	Cached bool `json:"cached"`
	// Patched reports that this query found the cache stale and
	// repaired it incrementally — per-shard core-set deltas appended to
	// the cached union, the retained solve engine extended — instead of
	// re-snapshotting, re-merging, and re-filling from scratch.
	Patched bool `json:"patched"`
	// WarmStarted reports that the answer was carried over from the
	// previous merged state's memo after a replay verification proved
	// it identical to what a cold solve over the patched union would
	// return (delta-aware memo reuse; no solve ran).
	WarmStarted bool `json:"warm_started"`
	// Degraded reports that the fan-out hit failed or unresponsive
	// shards and the answer was solved over the surviving shards'
	// merged core-set only (opt-in via -degraded-queries; the default
	// is fail-closed). The answer keeps the composable-core-set
	// guarantee over the points the surviving shards ingested;
	// ShardsMissing counts the shards that did not contribute.
	Degraded      bool `json:"degraded,omitempty"`
	ShardsMissing int  `json:"shards_missing,omitempty"`
	// WorkersMissing is the coordinator-tier analogue of ShardsMissing:
	// the number of remote workers that did not contribute to a
	// quorum-degraded answer. Always absent from single-process
	// responses.
	WorkersMissing int `json:"workers_missing,omitempty"`
}

// SnapshotRequest is the body of POST /v1/snapshot — the coordinator's
// round-1 fetch: a worker's merged core-set for one family, optionally
// incremental against the caller's previous view.
type SnapshotRequest struct {
	// Family selects the core-set family: "edge" (SMM — remote-edge,
	// remote-cycle) or "proxy" (SMM-EXT — the four injective-proxy
	// measures).
	Family string `json:"family"`
	// Cursor, when present, is the cursor of the caller's previous
	// snapshot of this worker; the worker then answers with a pure
	// delta if none of its shards restructured since, a full snapshot
	// otherwise. Absent forces a full snapshot.
	Cursor *SnapshotCursor `json:"cursor,omitempty"`
}

// SnapshotCursor identifies a snapshot for the next incremental
// request: each of the worker's shards' core-set generation and
// append-log position at snapshot time (gens[i], poss[i] for shard i).
// Opaque to the coordinator beyond equality of length.
type SnapshotCursor struct {
	Gens []uint64 `json:"gens"`
	Poss []int    `json:"poss"`
}

// SnapshotResponse is a worker's answer to POST /v1/snapshot.
type SnapshotResponse struct {
	// Partial reports that Points extends the caller's earlier view
	// (the points that joined this worker's core-sets since the
	// request cursor, possibly none) instead of replacing it.
	Partial bool `json:"partial"`
	// Points is the worker's merged core-set across its shards (shard
	// order), or the delta when Partial.
	Points []divmax.Vector `json:"points"`
	// Processed is the total number of stream points this worker's
	// snapshot reflects (always the absolute total, delta or not).
	Processed int64 `json:"processed"`
	// Cursor is this snapshot's identity, to pass back next time.
	Cursor SnapshotCursor `json:"cursor"`
	// Shards is the worker's shard count.
	Shards int `json:"shards"`
}

// WorkerStats is one remote worker's slice of a coordinator's GET
// /v1/stats.
type WorkerStats struct {
	ID  int    `json:"id"`
	URL string `json:"url"`
	// State is "healthy" (serving), "suspect" (recent probe failures,
	// below the eviction threshold), or "evicted" (failing probes —
	// ingest reroutes around it, queries count it missing — until a
	// probe succeeds again after recovery).
	State string `json:"state"`
	// ConsecutiveFailures is the current run of failed health probes.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastProbeMS is the round-trip time of the last successful health
	// probe.
	LastProbeMS float64 `json:"last_probe_ms"`
	// HedgedRequests counts snapshot fetches where this worker lagged
	// past the hedge delay and a second attempt was launched.
	HedgedRequests int64 `json:"hedged_requests"`
	// Retries counts request attempts beyond the first (connection
	// errors, 5xx, 429 backoff) across all endpoints.
	Retries int64 `json:"retries"`
	// Evictions counts the times the prober evicted this worker.
	Evictions int64 `json:"evictions"`
	// IngestedPoints counts the points this coordinator routed to the
	// worker.
	IngestedPoints int64 `json:"ingested_points"`
}

// ShardStats is one shard's slice of GET /v1/stats.
type ShardStats struct {
	ID       int   `json:"id"`
	Ingested int64 `json:"ingested"`
	Batches  int64 `json:"batches"`
	// LastBatch and AvgBatch report the per-shard batch sizes the ingest
	// path is achieving; small averages mean the fast path is amortizing
	// little and callers should send bigger /ingest bodies.
	LastBatch int64   `json:"last_batch"`
	AvgBatch  float64 `json:"avg_batch"`
	Stored    int64   `json:"stored_points"`
	// Deleted counts the points this shard actually removed (evictions
	// and spares; broadcast tombstones that matched nothing here are
	// not counted).
	Deleted int64 `json:"deleted_points"`
	// Health is "healthy" while the shard goroutine is serving and
	// "failed" once it has exhausted its restart budget (it then
	// answers every message with an error instead of going dark).
	Health string `json:"health"`
	// QueueDepth is the number of batches currently buffered in the
	// shard's ingest queue — a sustained full queue is what triggers
	// load shedding.
	QueueDepth int `json:"queue_depth"`
	// Restarts counts supervisor restarts (panic recovered, core-sets
	// rebuilt fresh); Panics counts every recovered panic, including
	// the one that exhausted the budget.
	Restarts int64 `json:"restarts"`
	Panics   int64 `json:"panics"`
	// Durability fields, present only when the server runs with a data
	// directory (omitempty keeps in-memory /v1/stats bodies
	// byte-identical to earlier versions): WALBytes / WALSegments size
	// the shard's write-ahead log on disk, CheckpointAgeMS is the
	// wall-clock age of its latest core-set checkpoint (floored at 1ms
	// so the field appears as soon as one exists; absent before the
	// first), and ReplayedPoints counts points re-folded from the log
	// across all of the shard's recoveries.
	WALBytes        int64   `json:"wal_bytes,omitempty"`
	WALSegments     int     `json:"wal_segments,omitempty"`
	CheckpointAgeMS float64 `json:"checkpoint_age_ms,omitempty"`
	ReplayedPoints  int64   `json:"replayed_points,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Shards        []ShardStats `json:"shards"`
	IngestedTotal int64        `json:"ingested_total"`
	Queries       int64        `json:"queries"`
	Merges        int64        `json:"merges"`
	LastMergeMS   float64      `json:"last_merge_ms"`
	// Query-path snapshot cache counters: a hit served the merged
	// core-set (and its solve engine) without touching the shards; a
	// miss found no current state. Misses split by cause — cold (first
	// query of a family: server start, nothing cached yet) versus
	// invalidated (a shard accepted a batch or a delete since the
	// cached merge) — and every miss resolves as either a delta patch
	// (the cached union and engine extended by the per-shard core-set
	// deltas) or a full rebuild (snapshot + merge + fill from scratch),
	// counted under DeltaPatches and FullRebuilds. CacheMisses remains
	// the total. CachedCoresetPoints and CachedMatrixBytes size what
	// the caches currently retain, summed over the two core-set
	// families (tiled engines retain no matrix, so they contribute 0
	// bytes).
	CacheHits           int64 `json:"query_cache_hits"`
	CacheMisses         int64 `json:"query_cache_misses"`
	MissesCold          int64 `json:"query_cache_misses_cold"`
	MissesInvalidated   int64 `json:"query_cache_misses_invalidated"`
	DeltaPatches        int64 `json:"delta_patches"`
	FullRebuilds        int64 `json:"full_rebuilds"`
	CachedCoresetPoints int   `json:"cached_coreset_points"`
	CachedMatrixBytes   int64 `json:"cached_matrix_bytes"`
	// MemoWarmStarts counts stale (measure, k) answers served after the
	// replay verification proved them identical to a cold solve over
	// the patched union (delta-aware memo reuse).
	MemoWarmStarts int64 `json:"memo_warm_starts"`
	// Deletion counters, per request point (not per shard): every
	// /delete point lands in exactly one of the three buckets —
	// evicting (restructured some core-set), spares (removed backups
	// only), tombstoned (matched nothing retained).
	DeletesRequested  int64 `json:"deletes_requested"`
	DeletesEvicting   int64 `json:"deletes_evicting"`
	DeletesSpares     int64 `json:"deletes_spares"`
	DeletesTombstoned int64 `json:"deletes_tombstoned"`
	// SolveWorkers is the configured round-2 solver parallelism;
	// TiledSolves counts solves that ran through the tiled engine
	// (merged union past the matrix memory budget).
	SolveWorkers int   `json:"solve_workers"`
	TiledSolves  int64 `json:"tiled_solves"`
	// Robustness counters: ShardsFailed is the current number of
	// permanently failed shards (restart budget exhausted),
	// ShardRestarts the supervisor restarts performed so far across all
	// shards, DegradedQueries the queries answered from surviving
	// shards only, IngestSheds / QuerySheds the requests rejected with
	// 429 by the bounded-backpressure and inflight-query limiters.
	ShardsFailed    int   `json:"shards_failed"`
	ShardRestarts   int64 `json:"shard_restarts"`
	DegradedQueries int64 `json:"degraded_queries"`
	IngestSheds     int64 `json:"ingest_sheds"`
	QuerySheds      int64 `json:"query_sheds"`
	MaxK            int   `json:"max_k"`
	KPrime          int   `json:"kprime"`
	Draining        bool  `json:"draining"`
	// Projection fields, present only when the server runs with
	// -project-dim (omitempty keeps unprojected /v1/stats bodies
	// byte-identical): ProjectDim is the configured reduced dimension,
	// ProjectedPoints the number of ingested points projected so far
	// (stays 0 — and absent — while the dataset dimension is at or
	// below ProjectDim, where ingest passes through).
	ProjectDim      int   `json:"project_dim,omitempty"`
	ProjectedPoints int64 `json:"projected_points,omitempty"`
	// Recoveries counts shard recoveries performed — boot-time restores
	// (checkpoint + log-tail replay) and lossless panic-restart replays
	// — since the process started. Absent (omitempty) on in-memory
	// servers and on durable ones that started from an empty directory.
	Recoveries int64 `json:"recoveries,omitempty"`
	// Coordinator-tier fields, all omitempty so single-process /v1/stats
	// bodies stay byte-identical: Workers is per-worker health and
	// traffic, Quorum the minimum responsive workers a query needs,
	// WorkersEvicted the currently evicted count.
	Workers        []WorkerStats `json:"workers,omitempty"`
	Quorum         int           `json:"quorum,omitempty"`
	WorkersEvicted int           `json:"workers_evicted,omitempty"`
}
