package metric

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// fillPoints builds a flat store of n random rows (or tie-heavy integer
// rows when ties is set, the regime where bit-identity matters).
func fillPoints(rng *rand.Rand, n, dim int, ties bool) *Points {
	var p Points
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			if ties {
				row[j] = float64(rng.Intn(3))
			} else {
				row[j] = rng.Float64() * 10
			}
		}
		p.Append(row)
	}
	return &p
}

// TestDistMatrixMatchesSquaredEuclidean pins every cell to the scalar
// canonical square — bit-identical, symmetric, zero diagonal — across
// dimensions (covering every specialized kernel case) and worker counts
// (including more workers than rows).
func TestDistMatrixMatchesSquaredEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{1, 2, 3, 4, 8, 9, 32} {
		for _, n := range []int{0, 1, 2, 17, 130} {
			p := fillPoints(rng, n, dim, n%2 == 0)
			for _, workers := range []int{1, 3, 64} {
				m := NewDistMatrix(p, workers)
				if m.Len() != n {
					t.Fatalf("dim=%d n=%d: Len() = %d", dim, n, m.Len())
				}
				if m.Bytes() != int64(n*n)*8 {
					t.Fatalf("dim=%d n=%d: Bytes() = %d", dim, n, m.Bytes())
				}
				for i := 0; i < n; i++ {
					row := m.SqRow(i)
					for j := 0; j < n; j++ {
						want := SquaredEuclidean(p.Vector(i), p.Vector(j))
						if math.Float64bits(row[j]) != math.Float64bits(want) {
							t.Fatalf("dim=%d n=%d workers=%d: SqAt(%d,%d) = %v, want %v",
								dim, n, workers, i, j, row[j], want)
						}
						if math.Float64bits(m.SqAt(i, j)) != math.Float64bits(m.SqAt(j, i)) {
							t.Fatalf("dim=%d n=%d: matrix not symmetric at (%d,%d)", dim, n, i, j)
						}
						if math.Float64bits(m.At(i, j)) != math.Float64bits(Euclidean(p.Vector(i), p.Vector(j))) {
							t.Fatalf("dim=%d n=%d: At(%d,%d) differs from Euclidean", dim, n, i, j)
						}
					}
					if row[i] != 0 {
						t.Fatalf("dim=%d n=%d: diagonal (%d,%d) = %v", dim, n, i, i, row[i])
					}
				}
			}
		}
	}
}

// TestFillSqRowsMatchesMatrix pins the range kernel under the tiled
// solve engine: any [lo, hi) block it writes must be bit-identical to
// the corresponding rows of a full NewDistMatrix build, for every
// worker count, including empty and single-row blocks.
func TestFillSqRowsMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{1, 2, 3, 8, 11} {
		for _, n := range []int{1, 2, 29, 150} {
			p := fillPoints(rng, n, dim, dim%2 == 0)
			want := NewDistMatrix(p, 1)
			for _, blk := range [][2]int{{0, n}, {0, 1}, {n - 1, n}, {n / 3, 2 * n / 3}, {n / 2, n / 2}} {
				lo, hi := blk[0], blk[1]
				rows := hi - lo
				if rows < 0 {
					continue
				}
				for _, workers := range []int{1, 3, 64} {
					dst := make([]float64, rows*n)
					p.FillSqRows(lo, hi, dst, workers)
					for i := lo; i < hi; i++ {
						for j := 0; j < n; j++ {
							if math.Float64bits(dst[(i-lo)*n+j]) != math.Float64bits(want.SqAt(i, j)) {
								t.Fatalf("dim=%d n=%d block [%d,%d) workers=%d: row %d col %d differs",
									dim, n, lo, hi, workers, i, j)
							}
						}
					}
				}
			}
		}
	}
}

// TestIncrementalFillRowsMatchesBulkBuild: a matrix assembled through
// NewDistMatrixEmpty + FillRows over arbitrary row ranges must equal
// the one-shot NewDistMatrix build cell for cell.
func TestIncrementalFillRowsMatchesBulkBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, dim = 97, 3
	p := fillPoints(rng, n, dim, false)
	want := NewDistMatrix(p, 2)
	got := NewDistMatrixEmpty(n)
	for lo := 0; lo < n; {
		hi := lo + 1 + rng.Intn(17)
		if hi > n {
			hi = n
		}
		got.FillRows(p, lo, hi, 1+rng.Intn(4))
		lo = hi
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Float64bits(got.SqAt(i, j)) != math.Float64bits(want.SqAt(i, j)) {
				t.Fatalf("incremental build differs at (%d,%d)", i, j)
			}
		}
	}
	// Validation: a mismatched store and an out-of-range block must panic.
	for _, fn := range []func(){
		func() { got.FillRows(fillPoints(rng, n-1, dim, false), 0, 1, 1) },
		func() { got.FillRows(p, 0, n+1, 1) },
		func() { p.FillSqRows(0, 2, make([]float64, n), 1) },
		func() { p.FillSqRows(2, 1, make([]float64, 2*n), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestRelaxMinSqParallelMatchesSequential: the sharded relax must return
// exactly the sequential pass's (next, nextSq) and leave identical
// minSq/assign buffers, for every worker count — including on tie-heavy
// inputs where the lowest-index reduce is what's under test.
func TestRelaxMinSqParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, dim := range []int{2, 3, 8, 5} {
			n := 700 + rng.Intn(800)
			p := fillPoints(rng, n, dim, seed%2 == 0)
			seqMin := make([]float64, n)
			parMin := make([]float64, n)
			seqAssign := make([]int, n)
			parAssign := make([]int, n)
			for i := range seqMin {
				seqMin[i] = math.Inf(1)
				parMin[i] = math.Inf(1)
			}
			// Several relax passes from different centers, as a traversal
			// would issue them.
			for sel := 0; sel < 6; sel++ {
				c := rng.Intn(n)
				wantIdx, wantSq := p.RelaxMinSqRange(0, n, c, sel, seqMin, seqAssign, 0, math.Inf(-1))
				for _, workers := range []int{1, 2, 5, 16} {
					scratchMin := append([]float64(nil), parMin...)
					scratchAssign := append([]int(nil), parAssign...)
					gotIdx, gotSq := p.RelaxMinSqParallel(c, sel, workers, scratchMin, scratchAssign)
					if gotIdx != wantIdx || math.Float64bits(gotSq) != math.Float64bits(wantSq) {
						t.Fatalf("seed=%d dim=%d sel=%d workers=%d: parallel relax (%d, %v), sequential (%d, %v)",
							seed, dim, sel, workers, gotIdx, gotSq, wantIdx, wantSq)
					}
					for i := range scratchMin {
						if math.Float64bits(scratchMin[i]) != math.Float64bits(seqMin[i]) || scratchAssign[i] != seqAssign[i] {
							t.Fatalf("seed=%d dim=%d sel=%d workers=%d: buffers diverge at row %d",
								seed, dim, sel, workers, i)
						}
					}
				}
				// Advance the reference state for the next pass.
				p.RelaxMinSqRange(0, n, c, sel, parMin, parAssign, 0, math.Inf(-1))
			}
		}
	}
}

// TestRelaxMinSqParallelEmptyAndValidation covers the empty-store
// sentinel and the short-buffer panic.
func TestRelaxMinSqParallelEmptyAndValidation(t *testing.T) {
	var empty Points
	if idx, sq := empty.RelaxMinSqParallel(0, 0, 4, nil, nil); idx != -1 || sq != -1 {
		t.Fatalf("empty store: got (%d, %v), want (-1, -1)", idx, sq)
	}
	p := fillPoints(rand.New(rand.NewSource(1)), 8, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short buffers")
		}
	}()
	p.RelaxMinSqParallel(0, 0, 2, make([]float64, 3), make([]int, 8))
}

// TestDistMatrixAndRelaxConcurrency exercises the parallel fill and the
// parallel relax under concurrent invocations — the -race CI job turns
// this into a data-race detector for the worker sharding.
func TestDistMatrixAndRelaxConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, dim = 3000, 8
	p := fillPoints(rng, n, dim, false)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := NewDistMatrix(p, 8)
			if m.Len() != n {
				t.Errorf("goroutine %d: Len() = %d", g, m.Len())
			}
			minSq := make([]float64, n)
			assign := make([]int, n)
			for i := range minSq {
				minSq[i] = math.Inf(1)
			}
			for sel := 0; sel < 4; sel++ {
				p.RelaxMinSqParallel(sel*37, sel, 8, minSq, assign)
			}
		}(g)
	}
	wg.Wait()
}
