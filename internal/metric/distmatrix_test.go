package metric

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"divmax/internal/testutil"
)

// mustMatchTier asserts that a batched-kernel square equals the scalar
// canonical square under the active tier's contract: bit-identical
// below BlockedMinDim, within the documented blocked envelope at and
// above it (where integer-valued inputs still come out bit-identical —
// the envelope merely caps reassociation error on continuous data).
func mustMatchTier(t *testing.T, p *Points, i, j int, got, want float64, ctx string) {
	t.Helper()
	if p.Dim() < BlockedMinDim {
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: (%d,%d) = %v, want %v bit-identical", ctx, i, j, got, want)
		}
		return
	}
	bound := testutil.SqDistBound(p.Dim(), sqNorm(p.Row(i)), sqNorm(p.Row(j)))
	if !testutil.WithinAbs(got, want, bound) {
		t.Fatalf("%s: (%d,%d) = %v, want %v within envelope %v (|diff| %v)",
			ctx, i, j, got, want, bound, math.Abs(got-want))
	}
}

// fillPoints builds a flat store of n random rows (or tie-heavy integer
// rows when ties is set, the regime where bit-identity matters).
func fillPoints(rng *rand.Rand, n, dim int, ties bool) *Points {
	var p Points
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range row {
			if ties {
				row[j] = float64(rng.Intn(3))
			} else {
				row[j] = rng.Float64() * 10
			}
		}
		p.Append(row)
	}
	return &p
}

// TestDistMatrixMatchesSquaredEuclidean pins every cell to the scalar
// canonical square — bit-identical, symmetric, zero diagonal — across
// dimensions (covering every specialized kernel case) and worker counts
// (including more workers than rows).
func TestDistMatrixMatchesSquaredEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{1, 2, 3, 4, 8, 9, 32} {
		for _, n := range []int{0, 1, 2, 17, 130} {
			p := fillPoints(rng, n, dim, n%2 == 0)
			for _, workers := range []int{1, 3, 64} {
				m := NewDistMatrix(p, workers)
				if m.Len() != n {
					t.Fatalf("dim=%d n=%d: Len() = %d", dim, n, m.Len())
				}
				if m.Bytes() != int64(n*n)*8 {
					t.Fatalf("dim=%d n=%d: Bytes() = %d", dim, n, m.Bytes())
				}
				for i := 0; i < n; i++ {
					row := m.SqRow(i)
					for j := 0; j < n; j++ {
						want := SquaredEuclidean(p.Vector(i), p.Vector(j))
						mustMatchTier(t, p, i, j, row[j], want, "SqAt vs SquaredEuclidean")
						// Symmetry holds bitwise in both tiers: the
						// difference form squares commute per
						// coordinate, and the blocked form's norm sum
						// and per-lane products commute too.
						if math.Float64bits(m.SqAt(i, j)) != math.Float64bits(m.SqAt(j, i)) {
							t.Fatalf("dim=%d n=%d: matrix not symmetric at (%d,%d)", dim, n, i, j)
						}
						if math.Float64bits(m.At(i, j)) != math.Float64bits(math.Sqrt(row[j])) {
							t.Fatalf("dim=%d n=%d: At(%d,%d) is not the root of its cell", dim, n, i, j)
						}
						if dim < BlockedMinDim && math.Float64bits(m.At(i, j)) != math.Float64bits(Euclidean(p.Vector(i), p.Vector(j))) {
							t.Fatalf("dim=%d n=%d: At(%d,%d) differs from Euclidean", dim, n, i, j)
						}
					}
					if row[i] != 0 {
						t.Fatalf("dim=%d n=%d: diagonal (%d,%d) = %v", dim, n, i, i, row[i])
					}
				}
			}
		}
	}
}

// TestFillSqRowsMatchesMatrix pins the range kernel under the tiled
// solve engine: any [lo, hi) block it writes must be bit-identical to
// the corresponding rows of a full NewDistMatrix build, for every
// worker count, including empty and single-row blocks.
func TestFillSqRowsMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{1, 2, 3, 8, 11} {
		for _, n := range []int{1, 2, 29, 150} {
			p := fillPoints(rng, n, dim, dim%2 == 0)
			want := NewDistMatrix(p, 1)
			for _, blk := range [][2]int{{0, n}, {0, 1}, {n - 1, n}, {n / 3, 2 * n / 3}, {n / 2, n / 2}} {
				lo, hi := blk[0], blk[1]
				rows := hi - lo
				if rows < 0 {
					continue
				}
				for _, workers := range []int{1, 3, 64} {
					dst := make([]float64, rows*n)
					p.FillSqRows(lo, hi, dst, workers)
					for i := lo; i < hi; i++ {
						for j := 0; j < n; j++ {
							if math.Float64bits(dst[(i-lo)*n+j]) != math.Float64bits(want.SqAt(i, j)) {
								t.Fatalf("dim=%d n=%d block [%d,%d) workers=%d: row %d col %d differs",
									dim, n, lo, hi, workers, i, j)
							}
						}
					}
				}
			}
		}
	}
}

// TestIncrementalFillRowsMatchesBulkBuild: a matrix assembled through
// NewDistMatrixEmpty + FillRows over arbitrary row ranges must equal
// the one-shot NewDistMatrix build cell for cell.
func TestIncrementalFillRowsMatchesBulkBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, dim = 97, 3
	p := fillPoints(rng, n, dim, false)
	want := NewDistMatrix(p, 2)
	got := NewDistMatrixEmpty(n)
	for lo := 0; lo < n; {
		hi := lo + 1 + rng.Intn(17)
		if hi > n {
			hi = n
		}
		got.FillRows(p, lo, hi, 1+rng.Intn(4))
		lo = hi
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Float64bits(got.SqAt(i, j)) != math.Float64bits(want.SqAt(i, j)) {
				t.Fatalf("incremental build differs at (%d,%d)", i, j)
			}
		}
	}
	// Validation: a mismatched store and an out-of-range block must panic.
	for _, fn := range []func(){
		func() { got.FillRows(fillPoints(rng, n-1, dim, false), 0, 1, 1) },
		func() { got.FillRows(p, 0, n+1, 1) },
		func() { p.FillSqRows(0, 2, make([]float64, n), 1) },
		func() { p.FillSqRows(2, 1, make([]float64, 2*n), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestRelaxMinSqParallelMatchesSequential: the sharded relax must return
// exactly the sequential pass's (next, nextSq) and leave identical
// minSq/assign buffers, for every worker count — including on tie-heavy
// inputs where the lowest-index reduce is what's under test.
func TestRelaxMinSqParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, dim := range []int{2, 3, 8, 5} {
			n := 700 + rng.Intn(800)
			p := fillPoints(rng, n, dim, seed%2 == 0)
			seqMin := make([]float64, n)
			parMin := make([]float64, n)
			seqAssign := make([]int, n)
			parAssign := make([]int, n)
			for i := range seqMin {
				seqMin[i] = math.Inf(1)
				parMin[i] = math.Inf(1)
			}
			// Several relax passes from different centers, as a traversal
			// would issue them.
			for sel := 0; sel < 6; sel++ {
				c := rng.Intn(n)
				wantIdx, wantSq := p.RelaxMinSqRange(0, n, c, sel, seqMin, seqAssign, 0, math.Inf(-1))
				for _, workers := range []int{1, 2, 5, 16} {
					scratchMin := append([]float64(nil), parMin...)
					scratchAssign := append([]int(nil), parAssign...)
					gotIdx, gotSq := p.RelaxMinSqParallel(c, sel, workers, scratchMin, scratchAssign)
					if gotIdx != wantIdx || math.Float64bits(gotSq) != math.Float64bits(wantSq) {
						t.Fatalf("seed=%d dim=%d sel=%d workers=%d: parallel relax (%d, %v), sequential (%d, %v)",
							seed, dim, sel, workers, gotIdx, gotSq, wantIdx, wantSq)
					}
					for i := range scratchMin {
						if math.Float64bits(scratchMin[i]) != math.Float64bits(seqMin[i]) || scratchAssign[i] != seqAssign[i] {
							t.Fatalf("seed=%d dim=%d sel=%d workers=%d: buffers diverge at row %d",
								seed, dim, sel, workers, i)
						}
					}
				}
				// Advance the reference state for the next pass.
				p.RelaxMinSqRange(0, n, c, sel, parMin, parAssign, 0, math.Inf(-1))
			}
		}
	}
}

// TestRelaxMinSqParallelEmptyAndValidation covers the empty-store
// sentinel and the short-buffer panic.
func TestRelaxMinSqParallelEmptyAndValidation(t *testing.T) {
	var empty Points
	if idx, sq := empty.RelaxMinSqParallel(0, 0, 4, nil, nil); idx != -1 || sq != -1 {
		t.Fatalf("empty store: got (%d, %v), want (-1, -1)", idx, sq)
	}
	p := fillPoints(rand.New(rand.NewSource(1)), 8, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short buffers")
		}
	}()
	p.RelaxMinSqParallel(0, 0, 2, make([]float64, 3), make([]int, 8))
}

// TestDistMatrixAndRelaxConcurrency exercises the parallel fill and the
// parallel relax under concurrent invocations — the -race CI job turns
// this into a data-race detector for the worker sharding.
func TestDistMatrixAndRelaxConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, dim = 3000, 8
	p := fillPoints(rng, n, dim, false)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := NewDistMatrix(p, 8)
			if m.Len() != n {
				t.Errorf("goroutine %d: Len() = %d", g, m.Len())
			}
			minSq := make([]float64, n)
			assign := make([]int, n)
			for i := range minSq {
				minSq[i] = math.Inf(1)
			}
			for sel := 0; sel < 4; sel++ {
				p.RelaxMinSqParallel(sel*37, sel, 8, minSq, assign)
			}
		}(g)
	}
	wg.Wait()
}

// TestFillSqRowsRangeMatchesFullRows pins the column-offset fill — the
// kernel under the triangular tiled farthest-partner pass — to the
// full-row fill: for any (row, column) window, every entry must be the
// bit-identical canonical square of the same pair, across the
// dimension-specialized kernels (the d=8 unroll included, at offsets
// that misalign its four-rows-per-step grouping) and worker counts.
func TestFillSqRowsRangeMatchesFullRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Dims 32 and 128 run the blocked tier, whose entries are
	// position-independent: sub-range fills stay bit-identical to the
	// full-row fill even though both differ from the scalar form.
	for _, dim := range []int{1, 2, 3, 4, 8, 9, 32, 128} {
		for _, n := range []int{1, 2, 13, 70} {
			p := fillPoints(rng, n, dim, n%2 == 0)
			full := make([]float64, n*n)
			p.FillSqRows(0, n, full, 1)
			for _, win := range [][4]int{
				{0, n, 0, n},
				{0, n, n / 2, n},
				{n / 3, n, 1, n - n/3},
				{n - 1, n, n - 1, n},
				{0, 1, 0, n},
				{2 % n, n, 3 % n, n},
				{0, 0, 0, n},         // empty row range
				{0, n, 5 % n, 5 % n}, // empty column range
			} {
				lo, hi, clo, chi := win[0], win[1], win[2], win[3]
				if clo > chi {
					clo, chi = chi, clo
				}
				w := chi - clo
				for _, workers := range []int{1, 4} {
					dst := make([]float64, (hi-lo)*w)
					for i := range dst {
						dst[i] = math.NaN()
					}
					p.FillSqRowsRange(lo, hi, clo, chi, dst, workers)
					for i := lo; i < hi; i++ {
						for j := clo; j < chi; j++ {
							got := dst[(i-lo)*w+(j-clo)]
							want := full[i*n+j]
							if math.Float64bits(got) != math.Float64bits(want) {
								t.Fatalf("dim=%d n=%d window=%v workers=%d: entry (%d,%d) = %v, want %v",
									dim, n, win, workers, i, j, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestFillSqRowsRangeValidation covers the bounds panics, pinning the
// message text: the row check reports the row bound, the column check
// reports the column bound (historically it misreported "row store" for
// a column violation).
func TestFillSqRowsRangeValidation(t *testing.T) {
	p := fillPoints(rand.New(rand.NewSource(1)), 4, 2, false)
	for name, tc := range map[string]struct {
		fn   func()
		want string
	}{
		"rows": {func() { p.FillSqRowsRange(0, 5, 0, 4, make([]float64, 20), 1) },
			"metric: FillSqRowsRange range [0, 5) outside a 4-row store"},
		"columns": {func() { p.FillSqRowsRange(0, 4, 2, 5, make([]float64, 20), 1) },
			"metric: FillSqRowsRange columns [2, 5) outside a 4-column store"},
		"dst": {func() { p.FillSqRowsRange(0, 4, 0, 4, make([]float64, 15), 1) },
			"metric: FillSqRowsRange destination of 15 values for 4 rows of 4"},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: expected panic", name)
				}
				if msg, ok := r.(string); !ok || msg != tc.want {
					t.Fatalf("%s: panicked with %q, want %q", name, r, tc.want)
				}
			}()
			tc.fn()
		}()
	}
}

// TestDistMatrixGrownMatchesBulkBuild is the incremental-extension
// contract: growing a prefix matrix to cover appended rows — reusing
// the old cells, kernel-filling the new rows, symmetry-copying the
// old×new stripe — must reproduce the from-scratch matrix cell for
// cell, through chained growths (exercising both the shared-capacity
// and the reallocate-and-copy paths) and stride caps.
func TestDistMatrixGrownMatchesBulkBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Dims 32 and 128 cover the blocked tier: growth stripes are filled
	// by the same position-independent kernel as bulk builds, so the
	// cell-for-cell bitwise comparison holds there too.
	for _, dim := range []int{1, 2, 3, 8, 5, 32, 128} {
		for _, steps := range [][]int{
			{2, 3},       // grow within / past capacity from a tiny matrix
			{1, 1, 1, 1}, // repeated single-point appends
			{7, 0, 12},   // an empty growth step in the chain
			{2, 30},      // one large jump past double capacity
		} {
			for _, strideCap := range []int{0, 64} {
				ties := dim%2 == 0
				var p Points
				total := 0
				for _, step := range steps {
					total += step
				}
				all := fillPoints(rng, total, dim, ties)
				grown := 0
				var m *DistMatrix
				for _, step := range steps {
					for i := 0; i < step; i++ {
						p.Append(all.Row(grown))
						grown++
					}
					if m == nil {
						m = NewDistMatrix(&p, 1)
					} else {
						m = m.Grown(&p, strideCap, 2)
					}
					want := NewDistMatrix(&p, 1)
					if m.Len() != want.Len() {
						t.Fatalf("dim=%d steps=%v: grown Len %d want %d", dim, steps, m.Len(), want.Len())
					}
					for i := 0; i < m.Len(); i++ {
						for j := 0; j < m.Len(); j++ {
							if math.Float64bits(m.SqAt(i, j)) != math.Float64bits(want.SqAt(i, j)) {
								t.Fatalf("dim=%d steps=%v cap=%d after %d rows: cell (%d,%d) = %v, want %v",
									dim, steps, strideCap, grown, i, j, m.SqAt(i, j), want.SqAt(i, j))
							}
						}
					}
				}
			}
		}
	}
}

// TestDistMatrixGrownPreservesReaders pins the copy-safety contract:
// after a growth, every cell of the ORIGINAL matrix header still reads
// exactly what it read before — whether the buffer was shared (spare
// capacity) or reallocated — so solves running on the original are
// undisturbed.
func TestDistMatrixGrownPreservesReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var p Points
	all := fillPoints(rng, 20, 3, false)
	for i := 0; i < 8; i++ {
		p.Append(all.Row(i))
	}
	m := NewDistMatrix(&p, 1)
	before := make([]float64, 8*8)
	for i := 0; i < 8; i++ {
		copy(before[i*8:i*8+8], m.SqRow(i))
	}
	cur := m
	for grown := 8; grown < 20; grown += 3 {
		hi := grown + 3
		if hi > 20 {
			hi = 20
		}
		for i := grown; i < hi; i++ {
			p.Append(all.Row(i))
		}
		cur = cur.Grown(&p, 0, 1)
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if math.Float64bits(m.SqAt(i, j)) != math.Float64bits(before[i*8+j]) {
					t.Fatalf("growth to %d rows disturbed original cell (%d,%d)", cur.Len(), i, j)
				}
			}
		}
		if m.Len() != 8 {
			t.Fatalf("original Len changed to %d", m.Len())
		}
	}
}
