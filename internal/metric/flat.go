package metric

import "fmt"

// Points is a flat, cache-friendly store of n points of a fixed
// dimension: row i occupies data[i*dim : (i+1)*dim] of a single
// row-major []float64 backing array. Scanning rows touches memory
// strictly sequentially, so the hardware prefetcher streams the whole
// store — unlike a []Vector, whose slice headers point at individually
// allocated, heap-scattered rows.
//
// Points is the substrate of the squared-Euclidean fast path used by
// the GMM and SMM hot loops (see kernel.go): construct one with
// FlattenVectors (bulk) or Append (incremental), then drive the batched
// kernels RelaxMinSqRange and MinSq.
type Points struct {
	data []float64
	n    int
	dim  int
	// norms caches ‖row i‖² in the canonical blocked-tier order
	// (sqNorm, blocked.go) for every row — maintained only when
	// dim ≥ BlockedMinDim, where the batched kernels run the norm-trick
	// blocked tier; empty below it, where the difference-form kernels
	// never read it. Kept in lockstep with data by every mutator.
	norms []float64
}

// FlattenVectors copies vs into a flat row-major store. It reports
// ok=false when the rows disagree on dimension or the dimension is zero
// — inputs the batched kernels cannot represent — in which case callers
// must keep the generic path (which surfaces the same ragged-input
// errors the flat path would otherwise mask).
func FlattenVectors(vs []Vector) (Points, bool) {
	if len(vs) == 0 {
		return Points{}, true
	}
	dim := len(vs[0])
	if dim == 0 {
		return Points{}, false
	}
	data := make([]float64, 0, len(vs)*dim)
	for _, v := range vs {
		if len(v) != dim {
			return Points{}, false
		}
		data = append(data, v...)
	}
	p := Points{data: data, n: len(vs), dim: dim}
	p.initNorms()
	return p, true
}

// Len returns the number of stored points.
func (p *Points) Len() int { return p.n }

// Dim returns the point dimension (0 until the first Append).
func (p *Points) Dim() int { return p.dim }

// Row returns the i-th point as a slice view into the backing array.
// The view stays valid until the next Append or Reset.
func (p *Points) Row(i int) []float64 {
	d := p.dim
	return p.data[i*d : i*d+d]
}

// Vector returns the i-th point as a Vector view (no copy); see Row for
// the aliasing caveat.
func (p *Points) Vector(i int) Vector { return Vector(p.Row(i)) }

// Append copies row into the store. The first Append fixes the
// dimension; it panics on a mismatched later row, mirroring the panic
// the generic path raises inside Euclidean on mixed datasets.
func (p *Points) Append(row []float64) {
	if p.n == 0 {
		p.dim = len(row)
	} else if len(row) != p.dim {
		panic(fmt.Sprintf("metric: appending a %d-dimensional point to a %d-dimensional flat store", len(row), p.dim))
	}
	p.data = append(p.data, row...)
	p.n++
	if p.dim >= BlockedMinDim {
		p.norms = append(p.norms, sqNorm(p.data[(p.n-1)*p.dim:p.n*p.dim]))
	}
}

// Reset empties the store, retaining the backing arrays for reuse.
func (p *Points) Reset() {
	p.data = p.data[:0]
	p.norms = p.norms[:0]
	p.n = 0
	p.dim = 0
}

// initNorms (re)builds the squared-norm cache for the current contents:
// one sqNorm per row at dim ≥ BlockedMinDim, empty below it. Bulk
// loaders call it once after the copy instead of growing the cache row
// by row.
func (p *Points) initNorms() {
	if p.dim < BlockedMinDim {
		p.norms = p.norms[:0]
		return
	}
	if cap(p.norms) < p.n {
		p.norms = make([]float64, p.n)
	} else {
		p.norms = p.norms[:p.n]
	}
	d := p.dim
	for i := 0; i < p.n; i++ {
		p.norms[i] = sqNorm(p.data[i*d : i*d+d])
	}
}

// Fill resets the store and bulk-loads vs, reusing the backing array
// when its capacity suffices (the allocation-free path GMM's scratch
// pool depends on). Like FlattenVectors it reports ok=false — leaving
// the store empty — when the rows disagree on dimension or the
// dimension is zero.
func (p *Points) Fill(vs []Vector) bool {
	p.Reset()
	if len(vs) == 0 {
		return true
	}
	dim := len(vs[0])
	if dim == 0 {
		return false
	}
	if need := len(vs) * dim; cap(p.data) < need {
		p.data = make([]float64, 0, need)
	}
	for _, v := range vs {
		if len(v) != dim {
			p.Reset()
			return false
		}
		p.data = append(p.data, v...)
	}
	p.n = len(vs)
	p.dim = dim
	p.initNorms()
	return true
}
