package metric

import (
	"math"
	"math/rand"
)

// Johnson–Lindenstrauss random projection.
//
// A Projector maps dim-dimensional vectors to outDim < dim dimensions
// through a dense Gaussian matrix with entries drawn N(0, 1/outDim):
// for any pair of points, the projected squared distance concentrates
// around the original one, with relative distortion O(√(log n / outDim))
// over n points. Diversity maximization only compares distances, so a
// solve over projected points selects a near-optimal set of the
// original instance at a fraction of the per-distance cost — the
// opt-in high-dimensional fast path of divmaxd (-project-dim).
//
// The matrix is a deterministic function of (dim, outDim, seed): two
// Projectors built with the same parameters produce bit-identical
// outputs, so ingests and deletes of the same original point always
// collapse to the same projected point, and the projected-value →
// original-value bookkeeping in the server can key on projected bytes.
type Projector struct {
	in, out int
	// mat is the out×in projection matrix, row-major: row o holds the
	// coefficients producing output coordinate o.
	mat []float64
}

// NewProjector builds the deterministic Gaussian projector for the
// given shape and seed. It returns nil when the projection would not
// reduce the dimension (out ≥ in) or the shape is degenerate — callers
// treat a nil Projector as "pass through".
func NewProjector(in, out int, seed int64) *Projector {
	if in <= 0 || out <= 0 || out >= in {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	scale := 1 / math.Sqrt(float64(out))
	mat := make([]float64, out*in)
	for i := range mat {
		mat[i] = rng.NormFloat64() * scale
	}
	return &Projector{in: in, out: out, mat: mat}
}

// InDim returns the input (original) dimension.
func (pr *Projector) InDim() int { return pr.in }

// OutDim returns the output (projected) dimension.
func (pr *Projector) OutDim() int { return pr.out }

// Project maps v to the reduced space. It panics on a dimension
// mismatch — the caller validates batches before projecting them.
func (pr *Projector) Project(v Vector) Vector {
	if len(v) != pr.in {
		panic("metric: Project of a mismatched vector")
	}
	out := make(Vector, pr.out)
	for o := 0; o < pr.out; o++ {
		row := pr.mat[o*pr.in : (o+1)*pr.in]
		var sum float64
		for j, c := range v {
			sum += row[j] * c
		}
		out[o] = sum
	}
	return out
}

// ProjectAll maps every vector of a batch, returning a fresh slice.
func (pr *Projector) ProjectAll(vs []Vector) []Vector {
	out := make([]Vector, len(vs))
	for i, v := range vs {
		out[i] = pr.Project(v)
	}
	return out
}
