package metric

import (
	"math"
	"math/rand"
	"testing"
)

func randRows(rng *rand.Rand, n, dim int) []Vector {
	rows := make([]Vector, n)
	for i := range rows {
		v := make(Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 100
		}
		rows[i] = v
	}
	return rows
}

func TestFlattenVectorsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 2, 3, 4, 7, 8, 9, 32} {
		rows := randRows(rng, 17, dim)
		flat, ok := FlattenVectors(rows)
		if !ok {
			t.Fatalf("dim %d: FlattenVectors rejected a regular input", dim)
		}
		if flat.Len() != 17 || flat.Dim() != dim {
			t.Fatalf("dim %d: flat is %d×%d, want 17×%d", dim, flat.Len(), flat.Dim(), dim)
		}
		for i, row := range rows {
			got := flat.Vector(i)
			for j := range row {
				if got[j] != row[j] {
					t.Fatalf("dim %d: row %d coordinate %d: %v != %v", dim, i, j, got[j], row[j])
				}
			}
		}
	}
}

func TestFlattenVectorsRejectsRaggedAndZeroDim(t *testing.T) {
	if _, ok := FlattenVectors([]Vector{{1, 2}, {3}}); ok {
		t.Fatal("ragged input accepted")
	}
	if _, ok := FlattenVectors([]Vector{{}, {}}); ok {
		t.Fatal("zero-dimensional input accepted")
	}
	if flat, ok := FlattenVectors(nil); !ok || flat.Len() != 0 {
		t.Fatalf("empty input: (%v, %v), want empty store and ok", flat.Len(), ok)
	}
}

func TestPointsAppendMirrorsFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := randRows(rng, 9, 5)
	var inc Points
	for _, r := range rows {
		inc.Append(r)
	}
	bulk, _ := FlattenVectors(rows)
	if inc.Len() != bulk.Len() || inc.Dim() != bulk.Dim() {
		t.Fatalf("incremental %d×%d vs bulk %d×%d", inc.Len(), inc.Dim(), bulk.Len(), bulk.Dim())
	}
	for i := range rows {
		a, b := inc.Row(i), bulk.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d differs at %d", i, j)
			}
		}
	}
	inc.Reset()
	if inc.Len() != 0 || inc.Dim() != 0 {
		t.Fatalf("Reset left %d×%d", inc.Len(), inc.Dim())
	}
	// Dimension is re-established by the first Append after Reset.
	inc.Append(Vector{1, 2})
	if inc.Dim() != 2 {
		t.Fatalf("post-Reset dim %d, want 2", inc.Dim())
	}
}

func TestPointsAppendPanicsOnMixedDimensions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var p Points
	p.Append(Vector{1, 2})
	p.Append(Vector{1})
}

// refSqDist is an independent implementation of the package's canonical
// four-lane summation order (kernel.go): coordinate j of each aligned
// block of four feeds lane j, leftover coordinates feed lane 0 in index
// order, and the total is (s0+s1) + (s2+s3); dimensions below four
// reduce to the plain in-order sum. The dimension-specialized kernels
// and the scalar distances must all match it bit for bit.
func refSqDist(a, b Vector) float64 {
	if len(a) < 4 {
		var sum float64
		for i := range a {
			d := a[i] - b[i]
			sum += d * d
		}
		return sum
	}
	var s [4]float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		for j := 0; j < 4; j++ {
			d := a[i+j] - b[i+j]
			s[j] += d * d
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s[0] += d * d
	}
	return (s[0] + s[1]) + (s[2] + s[3])
}

// TestSqDistMatchesCanonicalOrder pins the bit-identical contract the
// whole fast path rests on: the dimension-specialized and unrolled
// kernels, and the scalar Euclidean/SquaredEuclidean, all accumulate in
// the one canonical lane order.
func TestSqDistMatchesCanonicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dim := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 16, 32, 33} {
		for trial := 0; trial < 50; trial++ {
			a := make(Vector, dim)
			b := make(Vector, dim)
			for j := 0; j < dim; j++ {
				a[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
				b[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			}
			want := refSqDist(a, b)
			if got := SqDist(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dim %d: SqDist %v != canonical %v", dim, got, want)
			}
			if got := SquaredEuclidean(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dim %d: SquaredEuclidean %v != canonical %v", dim, got, want)
			}
			if se, ee := math.Sqrt(want), Euclidean(a, b); math.Float64bits(se) != math.Float64bits(ee) {
				t.Fatalf("dim %d: sqrt(canonical) %v != Euclidean %v", dim, se, ee)
			}
		}
	}
}

func TestSqDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SqDist([]float64{1, 2}, []float64{1})
}

// TestMinSqMatchesMinDistance: the flat nearest-row scan returns the
// same index as the generic scan and the square of its distance.
func TestMinSqMatchesMinDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dim := range []int{1, 2, 3, 8, 13} {
		rows := randRows(rng, 40, dim)
		// Duplicate a few rows so ties are exercised.
		rows = append(rows, rows[3].Clone(), rows[7].Clone(), rows[3].Clone())
		flat, _ := FlattenVectors(rows)
		for trial := 0; trial < 30; trial++ {
			q := rows[rng.Intn(len(rows))]
			if trial%2 == 0 {
				q = randRows(rng, 1, dim)[0]
			}
			gotSq, gotIdx := flat.MinSq(q)
			wantDist, wantIdx := MinDistance(q, rows, Euclidean)
			if gotIdx != wantIdx {
				t.Fatalf("dim %d: MinSq index %d, MinDistance index %d", dim, gotIdx, wantIdx)
			}
			if math.Float64bits(math.Sqrt(gotSq)) != math.Float64bits(wantDist) {
				t.Fatalf("dim %d: sqrt(MinSq) %v != MinDistance %v", dim, math.Sqrt(gotSq), wantDist)
			}
		}
	}
	var empty Points
	if sq, idx := empty.MinSq([]float64{1}); !math.IsInf(sq, 1) || idx != -1 {
		t.Fatalf("empty MinSq = (%v, %d), want (+Inf, -1)", sq, idx)
	}
}

// TestRelaxMinSqRangeMatchesScalar compares one relaxation pass of the
// batched kernel with a scalar reimplementation of the generic GMM inner
// loop run on squared distances. The reference draws its candidate
// squares from SqBetween — the active tier's per-pair value, which is
// SquaredEuclidean bit for bit below BlockedMinDim — so what this test
// pins at every dimension is the relaxation bookkeeping (min, assign,
// running argmax) against the exact values the kernel consumes; the
// tier's value contract itself is pinned by TestSqDistMatchesCanonicalOrder
// and the envelope harness.
func TestRelaxMinSqRangeMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dim := range []int{1, 2, 3, 4, 8, 12, 32} {
		rows := randRows(rng, 64, dim)
		rows = append(rows, rows[0].Clone(), rows[5].Clone()) // exact ties
		n := len(rows)
		flat, _ := FlattenVectors(rows)
		for trial := 0; trial < 10; trial++ {
			c := rng.Intn(n)
			sel := trial
			minSqA := make([]float64, n)
			minSqB := make([]float64, n)
			assignA := make([]int, n)
			assignB := make([]int, n)
			for i := range minSqA {
				v := math.Inf(1)
				if rng.Intn(2) == 0 {
					v = SquaredEuclidean(rows[rng.Intn(n)], rows[i])
				}
				minSqA[i], minSqB[i] = v, v
			}
			gotNext, gotSq := flat.RelaxMinSqRange(0, n, c, sel, minSqA, assignA, c, math.Inf(-1))
			wantNext, wantSq := c, math.Inf(-1)
			for i := 0; i < n; i++ {
				if sq := flat.SqBetween(c, i); sq < minSqB[i] {
					minSqB[i] = sq
					assignB[i] = sel
				}
				if minSqB[i] > wantSq {
					wantNext, wantSq = i, minSqB[i]
				}
			}
			if gotNext != wantNext || math.Float64bits(gotSq) != math.Float64bits(wantSq) {
				t.Fatalf("dim %d: relax returned (%d, %v), want (%d, %v)", dim, gotNext, gotSq, wantNext, wantSq)
			}
			for i := 0; i < n; i++ {
				if math.Float64bits(minSqA[i]) != math.Float64bits(minSqB[i]) || assignA[i] != assignB[i] {
					t.Fatalf("dim %d: point %d relaxed to (%v, %d), want (%v, %d)",
						dim, i, minSqA[i], assignA[i], minSqB[i], assignB[i])
				}
			}
		}
	}
}

func TestIsEuclidean(t *testing.T) {
	if !IsEuclidean[Vector](Euclidean) {
		t.Fatal("Euclidean not recognized")
	}
	var rebound Distance[Vector] = Euclidean
	if !IsEuclidean(rebound) {
		t.Fatal("rebound Euclidean not recognized")
	}
	wrapped := func(a, b Vector) float64 { return Euclidean(a, b) }
	if IsEuclidean[Vector](wrapped) {
		t.Fatal("wrapper closure falsely recognized")
	}
	if IsEuclidean[Vector](Manhattan) {
		t.Fatal("Manhattan falsely recognized")
	}
	if IsEuclidean[Vector](nil) {
		t.Fatal("nil falsely recognized")
	}
	if IsEuclidean[Set](JaccardDistance) {
		t.Fatal("Jaccard falsely recognized")
	}
	c := NewCounter(Euclidean)
	if IsEuclidean(c.Distance()) {
		t.Fatal("counting wrapper falsely recognized (would skip instrumentation)")
	}
}
