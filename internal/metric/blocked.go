package metric

import "math"

// The blocked (GEMM-shaped) kernel tier for high-dimensional points.
//
// The difference-form kernels in kernel.go and distmatrix.go stream
// both rows and spend three floating-point operations per coordinate
// (subtract, multiply, add). Above a handful of dimensions the
// dimension-specialized unrolls stop existing and every batched fill
// degenerates to the generic sqDist loop — exactly where embedding
// workloads live (d = 128–1536). This tier rewrites the batched fills
// as blocked inner products via the norm trick
//
//	‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b
//
// with the squared norms cached once per point in Points (flat.go), so
// a fill costs one dot product per pair — two operations per
// coordinate — and, more importantly, the multi-row fills can be
// cache-blocked: a column tile is kept hot in L2 while every row of the
// block is swept across it, so each point crosses DRAM once per row
// block instead of once per row.
//
// # Envelope, not bit-identity
//
// The norm trick reassociates the summation, so at d ≥ BlockedMinDim
// the blocked squared distances are NOT bit-identical to the canonical
// four-lane difference form — they agree within the documented error
// envelope
//
//	|blocked − generic| ≤ K·d·eps·(‖a‖² + ‖b‖²),  eps = 2⁻⁵²
//
// (internal/testutil.SqDistBound, pinned by envelope_test.go and
// FuzzBlockedVsGenericSqDist). Three exactness properties survive,
// and the tests lean on them:
//
//   - Exact duplicates are exactly 0: norms are computed by the same
//     dotKernel the pair dot uses, so a == b gives
//     (na+nb) − 2·dot = 2·na − 2·na = 0 with no rounding.
//   - Integer-valued coordinates (small enough that every product and
//     partial sum is an exact integer) make both forms exact, hence
//     bit-identical — tie-heavy integer-grid tests keep passing
//     unchanged at every dimension.
//   - Every entry is a position-independent function of its row pair:
//     the micro-kernels interleave independent columns but never change
//     any single entry's arithmetic, so sub-range fills, Grown stripes,
//     and delta patches stay cell-for-cell identical to a full fill
//     within the tier.
//
// Below BlockedMinDim nothing changes: the dimension-specialized
// four-lane kernels keep their bit-identity with the generic path.

// BlockedMinDim is the dimension at and above which the batched kernels
// (FillSqRows, FillSqRowsRange, sqDistRangeInto, RelaxMinSqRange,
// SqBetween) switch from the difference-form four-lane kernels to the
// norm-trick blocked tier. Below it — including every
// dimension-specialized unroll — the fast paths remain bit-identical to
// the generic distance functions. 16 is where the difference form has
// no specialized kernel left and the norm cache starts paying for its
// 8 bytes per point.
const BlockedMinDim = 16

// pruneGuard widens the triangle-inequality pruning threshold of
// RelaxMinSqPrunedRange so that kernel rounding error (bounded by
// ~K·d·eps ≲ 1e-12 relative for any supported d) can never skip a row
// the exact-arithmetic condition would have relaxed. 1e-9 is ~10³ above
// the worst-case kernel error and ~10⁶ below any distance contrast the
// pruning condition could usefully act on.
const pruneGuard = 1e-9

// dotKernel is the canonical blocked-tier inner product: coordinate j
// of each aligned block of four feeds lane j (blocks in index order),
// leftover coordinates feed lane 0, and the total is (s0+s1) + (s2+s3)
// — the same lane discipline as sqDist, applied to products instead of
// squared differences. Norms (sqNorm) and pair dots share this one
// order; that shared order is what makes exact duplicates cancel to
// exactly 0 in blockedSq.
func dotKernel(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// dot2Kernel computes dotKernel(a, b0) and dotKernel(a, b1) in one
// pass: the register micro-kernel of the blocked tier. Each column
// keeps its own four lanes — the per-column arithmetic is exactly
// dotKernel's, so the results are bit-identical to two separate calls —
// but a's coordinates are loaded once for both columns and the eight
// independent accumulator chains keep the FMA pipeline full when the
// tile is cache-resident.
func dot2Kernel(a, b0, b1 []float64) (float64, float64) {
	b0 = b0[:len(a)]
	b1 = b1[:len(a)]
	var p0, p1, p2, p3 float64
	var q0, q1, q2, q3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a0, a1, a2, a3 := a[i], a[i+1], a[i+2], a[i+3]
		p0 += a0 * b0[i]
		p1 += a1 * b0[i+1]
		p2 += a2 * b0[i+2]
		p3 += a3 * b0[i+3]
		q0 += a0 * b1[i]
		q1 += a1 * b1[i+1]
		q2 += a2 * b1[i+2]
		q3 += a3 * b1[i+3]
	}
	for ; i < len(a); i++ {
		ai := a[i]
		p0 += ai * b0[i]
		q0 += ai * b1[i]
	}
	return (p0 + p1) + (p2 + p3), (q0 + q1) + (q2 + q3)
}

// sqNorm returns ‖a‖² in the canonical blocked-tier order. It must stay
// dotKernel(a, a) — the duplicate-cancellation property of blockedSq
// depends on it.
func sqNorm(a []float64) float64 { return dotKernel(a, a) }

// blockedSq assembles a squared distance from cached norms and a pair
// dot: (na + nb) − 2·dot, clamped at 0 (catastrophic cancellation on
// near-duplicate rows can land a hair below zero; a squared distance
// never is, and downstream math.Sqrt must not see a negative). This is
// the one canonical assembly order — every blocked-tier entry, whether
// produced singly or by a micro-kernel, is exactly this expression.
func blockedSq(na, nb, dot float64) float64 {
	sq := (na + nb) - 2*dot
	if sq < 0 {
		return 0
	}
	return sq
}

// SqBetween returns the squared distance between stored rows i and j as
// the active kernel tier computes it: the canonical four-lane
// difference form below BlockedMinDim (bit-identical to
// SquaredEuclidean), the norm-trick blocked form at and above it
// (within the documented envelope of SquaredEuclidean, and bit-identical
// to every batched fill's entry for the same pair). Callers that need
// comparisons consistent with DistMatrix fills and relax passes — the
// center-center distances of the pruned GMM relax, tests pinning the
// tier — must use this rather than SqDist on the rows.
func (p *Points) SqBetween(i, j int) float64 {
	d := p.dim
	a := p.data[i*d : i*d+d]
	b := p.data[j*d : j*d+d]
	if d >= BlockedMinDim {
		return blockedSq(p.norms[i], p.norms[j], dotKernel(a, b))
	}
	return sqDist(a, b)
}

// blockedRangeInto is sqDistRangeInto's d ≥ BlockedMinDim tier: entries
// out[j−jlo] = blockedSq(row c, row j) for j in [jlo, jhi), the
// two-column micro-kernel on the body and dotKernel on the tail. Every
// entry is the canonical blockedSq assembly, so range position does not
// affect any value.
func (p *Points) blockedRangeInto(c, jlo, jhi int, out []float64) {
	d := p.dim
	data := p.data
	norms := p.norms
	nc := norms[c]
	center := data[c*d : c*d+d]
	j := jlo
	for ; j+2 <= jhi; j += 2 {
		dot0, dot1 := dot2Kernel(center, data[j*d:j*d+d], data[(j+1)*d:(j+1)*d+d])
		out[j-jlo] = blockedSq(nc, norms[j], dot0)
		out[j-jlo+1] = blockedSq(nc, norms[j+1], dot1)
	}
	for ; j < jhi; j++ {
		out[j-jlo] = blockedSq(nc, norms[j], dotKernel(center, data[j*d:j*d+d]))
	}
}

// blockedTileBytes bounds the column tile a blocked multi-row fill
// keeps hot while sweeping rows across it. 512 KiB leaves most of a
// 1–2 MiB L2 for the destination rows and the row operands themselves.
const blockedTileBytes = 512 << 10

// blockedFillRows is the cache-blocked multi-row fill behind
// FillSqRowsRange at d ≥ BlockedMinDim: rows [rlo, rhi) × columns
// [colLo, colHi), written to dst with row stride w and the first row
// landing at dst[(rlo−dstRow0)·w]. Columns are processed in tiles sized
// to blockedTileBytes; within a tile every row of the block is swept
// across it, so the tile's points are served from cache for all but the
// first row. Entry values are identical to blockedRangeInto's — the
// tiling only reorders which entries are computed when.
func (p *Points) blockedFillRows(rlo, rhi, colLo, colHi, dstRow0, w int, dst []float64) {
	tile := blockedTileBytes / (8 * p.dim)
	if tile < 64 {
		tile = 64
	}
	for t0 := colLo; t0 < colHi; t0 += tile {
		t1 := t0 + tile
		if t1 > colHi {
			t1 = colHi
		}
		for i := rlo; i < rhi; i++ {
			base := (i-dstRow0)*w + (t0 - colLo)
			p.blockedRangeInto(i, t0, t1, dst[base:base+(t1-t0)])
		}
	}
}

// blockedRelaxRange is RelaxMinSqRange's d ≥ BlockedMinDim tier: the
// same relaxation bookkeeping run on blockedSq values. Entry values
// match blockedRangeInto/SqBetween bit for bit.
func (p *Points) blockedRelaxRange(lo, hi, c, sel int, minSq []float64, assign []int, next int, nextSq float64) (int, float64) {
	d := p.dim
	data := p.data
	norms := p.norms
	nc := norms[c]
	center := data[c*d : c*d+d]
	for i := lo; i < hi; i++ {
		sq := blockedSq(nc, norms[i], dotKernel(center, data[i*d:i*d+d]))
		m := minSq[i]
		if sq < m {
			m = sq
			minSq[i] = sq
			assign[i] = sel
		}
		if m > nextSq {
			next, nextSq = i, m
		}
	}
	return next, nextSq
}

// RelaxMinSqPrunedRange is RelaxMinSqRange with triangle-inequality
// pruning for the farthest-first traversal's later passes, available
// only in the blocked tier (d ≥ BlockedMinDim — callers gate on that).
// ccSq[s] must hold SqBetween(c, center s) for every selection id s
// that appears in assign[lo:hi] (the squared distance from the newly
// selected center c to the previously selected center s, computed by
// SqBetween so it is consistent with the minSq values it is compared
// against).
//
// The skip rule is the classic Elkan bound run on squares: if
// d(c, a) ≥ 2·d(p, a) for p's assigned center a, the triangle
// inequality gives d(p, c) ≥ d(p, a), so c cannot strictly improve p's
// assignment and the row's (unchanged) minSq only participates in the
// running maximum — one compare against a cached center-center square
// instead of a d-coordinate dot product, turning the pass from
// O(n·d) memory traffic into O(n) for every point already well inside
// its cluster. In squares the condition is ccSq ≥ 4·minSq; it is
// widened by pruneGuard so kernel rounding (≪ the guard) can never
// skip a row exact arithmetic would relax — equality itself never
// yields a strict improvement, so the guarded skip is always sound.
// The non-skipped rows compute exactly blockedRelaxRange's values, so
// a pruned pass is bit-identical to an unpruned one (envelope_test.go
// pins this).
func (p *Points) RelaxMinSqPrunedRange(lo, hi, c, sel int, ccSq, minSq []float64, assign []int, next int, nextSq float64) (int, float64) {
	if lo >= hi {
		return next, nextSq
	}
	d := p.dim
	data := p.data
	norms := p.norms
	nc := norms[c]
	center := data[c*d : c*d+d]
	_ = minSq[hi-1]
	_ = assign[hi-1]
	const factor = 4 * (1 + pruneGuard)
	for i := lo; i < hi; i++ {
		m := minSq[i]
		if ccSq[assign[i]] > factor*m {
			if m > nextSq {
				next, nextSq = i, m
			}
			continue
		}
		sq := blockedSq(nc, norms[i], dotKernel(center, data[i*d:i*d+d]))
		if sq < m {
			m = sq
			minSq[i] = sq
			assign[i] = sel
		}
		if m > nextSq {
			next, nextSq = i, m
		}
	}
	return next, nextSq
}

// RelaxMinSqPrunedParallel is RelaxMinSqPrunedRange over all rows,
// sharded exactly like RelaxMinSqParallel (same shard geometry, same
// lowest-index tie reduce), so the result is independent of the worker
// count and identical to the sequential pruned pass.
func (p *Points) RelaxMinSqPrunedParallel(c, sel, workers int, ccSq, minSq []float64, assign []int) (int, float64) {
	return p.relaxParallel(workers, minSq, assign, func(lo, hi int) (int, float64) {
		return p.RelaxMinSqPrunedRange(lo, hi, c, sel, ccSq, minSq, assign, lo, math.Inf(-1))
	})
}
