package metric

import (
	"math"
	"math/rand"
	"testing"
)

// TestProjectorDeterministic: equal (in, out, seed) must give
// bit-identical projections — the property the server's projected-bytes
// → original bookkeeping keys on.
func TestProjectorDeterministic(t *testing.T) {
	a := NewProjector(96, 24, 7)
	b := NewProjector(96, 24, 7)
	c := NewProjector(96, 24, 8)
	rng := rand.New(rand.NewSource(1))
	v := make(Vector, 96)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	pa, pb, pc := a.Project(v), b.Project(v), c.Project(v)
	differs := false
	for o := range pa {
		if math.Float64bits(pa[o]) != math.Float64bits(pb[o]) {
			t.Fatalf("same-seed projections differ at %d: %v vs %v", o, pa[o], pb[o])
		}
		if pa[o] != pc[o] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced the same projection")
	}
	if a.InDim() != 96 || a.OutDim() != 24 {
		t.Fatalf("shape (%d, %d), want (96, 24)", a.InDim(), a.OutDim())
	}
}

// TestProjectorRefusesNonReducingShapes: nil for out ≥ in and
// degenerate shapes (callers treat nil as pass-through).
func TestProjectorRefusesNonReducingShapes(t *testing.T) {
	for _, shape := range [][2]int{{8, 8}, {8, 9}, {0, 4}, {4, 0}, {-1, 2}, {2, -1}} {
		if pr := NewProjector(shape[0], shape[1], 1); pr != nil {
			t.Fatalf("NewProjector(%d, %d) built a projector, want nil", shape[0], shape[1])
		}
	}
	if pr := NewProjector(8, 4, 1); pr == nil {
		t.Fatal("NewProjector(8, 4) refused a reducing shape")
	}
}

func TestProjectorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProjector(8, 4, 1).Project(make(Vector, 7))
}

// TestProjectorDistortion is the JL sanity check: at 256→64 over a few
// hundred pairs, every projected distance should sit within a modest
// factor of the original — far looser than the theoretical concentration
// bound, deterministic by seed, and linearity of the map must hold
// exactly enough that ProjectAll matches per-point projection bitwise.
func TestProjectorDistortion(t *testing.T) {
	const in, out, n = 256, 64, 40
	pr := NewProjector(in, out, 3)
	rng := rand.New(rand.NewSource(4))
	rows := make([]Vector, n)
	for i := range rows {
		v := make(Vector, in)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		rows[i] = v
	}
	proj := pr.ProjectAll(rows)
	for i := range rows {
		single := pr.Project(rows[i])
		for o := range single {
			if math.Float64bits(single[o]) != math.Float64bits(proj[i][o]) {
				t.Fatalf("ProjectAll row %d differs from Project at %d", i, o)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			orig := Euclidean(rows[i], rows[j])
			got := Euclidean(proj[i], proj[j])
			if ratio := got / orig; ratio < 0.5 || ratio > 2 {
				t.Fatalf("pair (%d,%d): projected distance %v vs original %v (ratio %v)",
					i, j, got, orig, ratio)
			}
		}
	}
}
