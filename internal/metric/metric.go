// Package metric provides the metric-space substrate used by every
// algorithm in this repository: a generic distance-function type and a
// small family of concrete point types (dense vectors, sparse vectors,
// and sets) with the distance functions used in the paper's experiments
// (Euclidean distance, cosine distance, Jaccard distance).
//
// All diversity-maximization algorithms in this module are generic over
// the point type P and receive distances through a Distance[P]. A
// Distance is expected to satisfy the metric axioms (non-negativity,
// identity of indiscernibles, symmetry, triangle inequality); the
// approximation guarantees of the paper hold only under those axioms,
// and additionally require the space to have bounded doubling dimension
// for the (1+ε) core-set bounds.
package metric

import "math"

// Distance is a metric distance function between two points of type P.
//
// Implementations must be symmetric, non-negative, zero exactly on equal
// points, and satisfy the triangle inequality. They must also be safe for
// concurrent use: the MapReduce and streaming drivers call distances from
// multiple goroutines.
type Distance[P any] func(a, b P) float64

// MinDistance returns the minimum distance between p and any point of set,
// together with the index of the closest point. It returns
// (+Inf, -1) when set is empty. Ties are broken toward the lowest index so
// that clustering assignments are deterministic.
func MinDistance[P any](p P, set []P, d Distance[P]) (float64, int) {
	best := math.Inf(1)
	bestIdx := -1
	for i := range set {
		if dist := d(p, set[i]); dist < best {
			best = dist
			bestIdx = i
		}
	}
	return best, bestIdx
}

// MaxDistance returns the maximum distance between p and any point of set,
// together with the index of the farthest point. It returns (-Inf, -1)
// when set is empty.
func MaxDistance[P any](p P, set []P, d Distance[P]) (float64, int) {
	best := math.Inf(-1)
	bestIdx := -1
	for i := range set {
		if dist := d(p, set[i]); dist > best {
			best = dist
			bestIdx = i
		}
	}
	return best, bestIdx
}

// Range returns max_{p∈pts} d(p, centers): the radius of the clustering of
// pts around centers (the paper's r_T for T=centers and S=pts). It returns
// 0 when pts is empty and +Inf when centers is empty but pts is not.
func Range[P any](pts, centers []P, d Distance[P]) float64 {
	r := 0.0
	for i := range pts {
		if dist, _ := MinDistance(pts[i], centers, d); dist > r {
			r = dist
		}
	}
	return r
}

// Farness returns min_{c∈set} d(c, set\{c}): the minimum pairwise distance
// within set (the paper's ρ_T). It returns +Inf for sets of fewer than two
// points.
func Farness[P any](set []P, d Distance[P]) float64 {
	rho := math.Inf(1)
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if dist := d(set[i], set[j]); dist < rho {
				rho = dist
			}
		}
	}
	return rho
}

// SumPairwise returns the sum of distances over all unordered pairs of set.
func SumPairwise[P any](set []P, d Distance[P]) float64 {
	var sum float64
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			sum += d(set[i], set[j])
		}
	}
	return sum
}

// Matrix materializes the symmetric pairwise distance matrix of pts.
// It is used by the graph substrate (MST, TSP, matching) where repeated
// distance evaluations would dominate the running time.
func Matrix[P any](pts []P, d Distance[P]) [][]float64 {
	n := len(pts)
	backing := make([]float64, n*n)
	m := make([][]float64, n)
	for i := range m {
		m[i], backing = backing[:n:n], backing[n:]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := d(pts[i], pts[j])
			m[i][j] = dist
			m[j][i] = dist
		}
	}
	return m
}
