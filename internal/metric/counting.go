package metric

import "sync/atomic"

// Counter wraps a Distance and counts evaluations, so tests and
// experiments can verify the paper's complexity claims (e.g. GMM's
// O(k′·n) distance evaluations, SMM's O(k′) per point) rather than trust
// them. Safe for concurrent use; counting costs one atomic increment per
// call.
type Counter[P any] struct {
	d     Distance[P]
	calls atomic.Int64
}

// NewCounter wraps d with an evaluation counter.
func NewCounter[P any](d Distance[P]) *Counter[P] {
	return &Counter[P]{d: d}
}

// Distance returns the counting distance function.
func (c *Counter[P]) Distance() Distance[P] {
	return func(a, b P) float64 {
		c.calls.Add(1)
		return c.d(a, b)
	}
}

// Calls returns the number of evaluations so far.
func (c *Counter[P]) Calls() int64 { return c.calls.Load() }

// Reset zeroes the counter.
func (c *Counter[P]) Reset() { c.calls.Store(0) }
