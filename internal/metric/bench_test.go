package metric

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkEuclidean(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{2, 3, 128} {
		a, c := genVector(dim)(rng), genVector(dim)(rng)
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Euclidean(a, c)
			}
		})
	}
}

func BenchmarkCosineDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, nnz := range []int{10, 45, 80} {
		gen := genSparse(5000, nnz)
		u, v := gen(rng), gen(rng)
		b.Run(fmt.Sprintf("nnz=%d", nnz), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CosineDistance(u, v)
			}
		})
	}
}

func BenchmarkJaccardDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	gen := genSet(10000, 50)
	s, t := gen(rng), gen(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JaccardDistance(s, t)
	}
}

func BenchmarkMatrix(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := randomVectors(rng, 256, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matrix(pts, Euclidean)
	}
}
