package metric

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Set is a finite set of element identifiers, stored strictly increasing.
// It supports the Jaccard distance, the "dissimilarity distance" the paper
// cites for database queries (Leskovec, Rajaraman, Ullman: Mining of
// Massive Datasets). Construct instances with NewSet.
type Set []uint64

// NewSet builds a Set from unordered, possibly duplicated elements.
func NewSet(elems ...uint64) Set {
	s := make(Set, len(elems))
	copy(s, elems)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 0
	for i := range s {
		if i == 0 || s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// Contains reports whether x is an element of s.
func (s Set) Contains(x uint64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// IntersectionSize returns |s ∩ t| by merging the two sorted slices.
func (s Set) IntersectionSize(t Set) int {
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// JaccardDistance returns 1 − |s∩t|/|s∪t|, a metric on finite sets
// (the Steinhaus/Jaccard distance). The distance between two empty sets
// is 0 by convention.
func JaccardDistance(s, t Set) float64 {
	inter := s.IntersectionSize(t)
	union := len(s) + len(t) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// String renders the set as space-separated identifiers.
func (s Set) String() string {
	var b strings.Builder
	for i, x := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(x, 10))
	}
	return b.String()
}

// ParseSet parses the space-separated identifier format produced by
// String.
func ParseSet(str string) (Set, error) {
	fields := strings.Fields(str)
	elems := make([]uint64, 0, len(fields))
	for _, f := range fields {
		x, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("metric: parsing set element %q: %w", f, err)
		}
		elems = append(elems, x)
	}
	return NewSet(elems...), nil
}
