package metric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func genSet(universe uint64, maxSize int) func(*rand.Rand) Set {
	return func(rng *rand.Rand) Set {
		n := 1 + rng.Intn(maxSize)
		elems := make([]uint64, n)
		for i := range elems {
			elems[i] = uint64(rng.Intn(int(universe)))
		}
		return NewSet(elems...)
	}
}

func TestNewSetSortsAndDedups(t *testing.T) {
	s := NewSet(5, 1, 5, 3, 1)
	want := Set{1, 3, 5}
	if len(s) != len(want) {
		t.Fatalf("NewSet = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("NewSet = %v, want %v", s, want)
		}
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(2, 4, 6)
	for _, x := range []uint64{2, 4, 6} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	for _, x := range []uint64{1, 3, 7} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true, want false", x)
		}
	}
}

func TestIntersectionSize(t *testing.T) {
	a := NewSet(1, 2, 3, 4)
	b := NewSet(3, 4, 5)
	if n := a.IntersectionSize(b); n != 2 {
		t.Fatalf("IntersectionSize = %d, want 2", n)
	}
	if n := a.IntersectionSize(NewSet()); n != 0 {
		t.Fatalf("IntersectionSize with empty = %d, want 0", n)
	}
}

func TestJaccardKnownValues(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(2, 3, 4)
	// |∩|=2, |∪|=4 → distance 1/2.
	if d := JaccardDistance(a, b); !almostEqual(d, 0.5, 1e-12) {
		t.Errorf("Jaccard = %v, want 0.5", d)
	}
	if d := JaccardDistance(a, a); d != 0 {
		t.Errorf("Jaccard(a,a) = %v, want 0", d)
	}
	if d := JaccardDistance(NewSet(), NewSet()); d != 0 {
		t.Errorf("Jaccard(∅,∅) = %v, want 0", d)
	}
	if d := JaccardDistance(a, NewSet(9)); d != 1 {
		t.Errorf("Jaccard disjoint = %v, want 1", d)
	}
}

func TestJaccardMetricAxioms(t *testing.T) {
	checkMetricAxioms(t, "jaccard", JaccardDistance, genSet(30, 10))
}

func TestJaccardBounded(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := genSet(40, 12)
		d := JaccardDistance(gen(rng), gen(rng))
		return d >= 0 && d <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetStringRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genSet(100, 15)(rng)
		parsed, err := ParseSet(s.String())
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		if len(parsed) != len(s) {
			return false
		}
		for i := range s {
			if parsed[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseSetErrors(t *testing.T) {
	if _, err := ParseSet("1 x 3"); err == nil {
		t.Error("expected error on non-numeric element")
	}
}
