package metric

import (
	"fmt"
	"math"
)

// The doubling dimension of a metric space is the smallest D such that any
// ball of radius r can be covered by at most 2^D balls of radius r/2.
// The paper's (1+ε) core-set guarantees size kernels as (c/ε')^D·k where
// the constant c depends on the construction (Lemmas 3–6) and ε' satisfies
// 1−ε' = 1/(1+ε). This file provides those sizing rules plus an empirical
// doubling-constant estimator used by tests and examples.

// Kernel identifies which core-set construction a kernel size is for; the
// constant in the (c/ε')^D bound differs per construction.
type Kernel int

const (
	// KernelGMM sizes the MapReduce core-set for remote-edge and
	// remote-cycle (Lemma 5): k' = (8/ε')^D·k.
	KernelGMM Kernel = iota
	// KernelGMMExt sizes the MapReduce core-set for remote-clique, -star,
	// -bipartition, and -tree (Lemma 6): k' = (16/ε')^D·k.
	KernelGMMExt
	// KernelSMM sizes the streaming core-set for remote-edge and
	// remote-cycle (Lemma 3): k' = (32/ε')^D·k.
	KernelSMM
	// KernelSMMExt sizes the streaming core-set for remote-clique, -star,
	// -bipartition, and -tree (Lemma 4): k' = (64/ε')^D·k.
	KernelSMMExt
)

func (kv Kernel) constant() float64 {
	switch kv {
	case KernelGMM:
		return 8
	case KernelGMMExt:
		return 16
	case KernelSMM:
		return 32
	case KernelSMMExt:
		return 64
	default:
		panic(fmt.Sprintf("metric: unknown kernel variant %d", kv))
	}
}

// EpsPrime converts the target core-set approximation ε (as in a (1+ε)
// core-set) into the internal parameter ε' with (1−ε') = 1/(1+ε).
func EpsPrime(eps float64) float64 {
	return eps / (1 + eps)
}

// TheoreticalKernelSize returns the kernel size k' prescribed by the
// paper's lemmas for a (1+eps)-core-set in a space of doubling dimension
// D. The bound is worst-case and enormous for all but tiny D; the paper's
// experiments (and this repository's defaults) instead set k' to small
// multiples of k, which empirically already achieves ratios close to 1.
// The returned value saturates at math.MaxInt to avoid overflow.
func TheoreticalKernelSize(variant Kernel, eps float64, dimension int, k int) int {
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("metric: TheoreticalKernelSize requires 0 < eps <= 1, got %g", eps))
	}
	if dimension < 0 || k < 1 {
		panic(fmt.Sprintf("metric: TheoreticalKernelSize requires dimension >= 0 and k >= 1, got D=%d k=%d", dimension, k))
	}
	base := variant.constant() / EpsPrime(eps)
	size := float64(k) * math.Pow(base, float64(dimension))
	if size >= math.MaxInt/2 || math.IsInf(size, 1) {
		return math.MaxInt
	}
	if size < float64(k) {
		return k
	}
	return int(math.Ceil(size))
}

// EstimateDoublingConstant empirically estimates the doubling constant of
// a point sample: for a handful of balls B(c, r) it greedily covers the
// ball's points with balls of radius r/2 and reports the largest cover
// size observed. log2 of the result estimates the doubling dimension.
// This is a diagnostic (used by tests and the dataset examples), not an
// exact computation, which would be NP-hard.
func EstimateDoublingConstant[P any](pts []P, d Distance[P], probes int) int {
	if len(pts) == 0 || probes <= 0 {
		return 0
	}
	worst := 1
	step := len(pts) / probes
	if step == 0 {
		step = 1
	}
	for ci := 0; ci < len(pts); ci += step {
		center := pts[ci]
		// Radius: half the farthest distance from the probe center, so the
		// ball holds a substantial fraction of the sample.
		far, _ := MaxDistance(center, pts, d)
		r := far / 2
		if r == 0 {
			continue
		}
		var ball []P
		for i := range pts {
			if d(center, pts[i]) <= r {
				ball = append(ball, pts[i])
			}
		}
		// Greedy cover of ball with radius r/2 balls centered at points.
		var covers []P
		for i := range ball {
			if dist, _ := MinDistance(ball[i], covers, d); dist > r/2 {
				covers = append(covers, ball[i])
			}
		}
		if len(covers) > worst {
			worst = len(covers)
		}
	}
	return worst
}
