package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMinDistanceEmptySet(t *testing.T) {
	d, idx := MinDistance(Vector{0, 0}, nil, Euclidean)
	if !math.IsInf(d, 1) || idx != -1 {
		t.Fatalf("MinDistance on empty set = (%v, %d), want (+Inf, -1)", d, idx)
	}
}

func TestMaxDistanceEmptySet(t *testing.T) {
	d, idx := MaxDistance(Vector{0, 0}, nil, Euclidean)
	if !math.IsInf(d, -1) || idx != -1 {
		t.Fatalf("MaxDistance on empty set = (%v, %d), want (-Inf, -1)", d, idx)
	}
}

func TestMinDistanceFindsClosest(t *testing.T) {
	set := []Vector{{10, 0}, {3, 4}, {0, 1}}
	d, idx := MinDistance(Vector{0, 0}, set, Euclidean)
	if idx != 2 || !almostEqual(d, 1, 1e-12) {
		t.Fatalf("MinDistance = (%v, %d), want (1, 2)", d, idx)
	}
}

func TestMinDistanceTieBreaksLowIndex(t *testing.T) {
	set := []Vector{{1, 0}, {0, 1}} // both at distance 1 from origin
	_, idx := MinDistance(Vector{0, 0}, set, Euclidean)
	if idx != 0 {
		t.Fatalf("MinDistance tie broke to index %d, want 0", idx)
	}
}

func TestMaxDistanceFindsFarthest(t *testing.T) {
	set := []Vector{{1, 0}, {3, 4}, {0, 1}}
	d, idx := MaxDistance(Vector{0, 0}, set, Euclidean)
	if idx != 1 || !almostEqual(d, 5, 1e-12) {
		t.Fatalf("MaxDistance = (%v, %d), want (5, 1)", d, idx)
	}
}

func TestRange(t *testing.T) {
	pts := []Vector{{0, 0}, {1, 0}, {5, 0}, {9, 0}}
	centers := []Vector{{0, 0}, {10, 0}}
	// Farthest point from its closest center: {5,0} at distance 5.
	if r := Range(pts, centers, Euclidean); !almostEqual(r, 5, 1e-12) {
		t.Fatalf("Range = %v, want 5", r)
	}
}

func TestRangeEmptyPoints(t *testing.T) {
	if r := Range(nil, []Vector{{0}}, Euclidean); r != 0 {
		t.Fatalf("Range of no points = %v, want 0", r)
	}
}

func TestFarness(t *testing.T) {
	set := []Vector{{0, 0}, {1, 0}, {10, 0}}
	if rho := Farness(set, Euclidean); !almostEqual(rho, 1, 1e-12) {
		t.Fatalf("Farness = %v, want 1", rho)
	}
	if rho := Farness([]Vector{{1, 2}}, Euclidean); !math.IsInf(rho, 1) {
		t.Fatalf("Farness of singleton = %v, want +Inf", rho)
	}
}

func TestSumPairwise(t *testing.T) {
	set := []Vector{{0}, {1}, {3}}
	// pairs: 1 + 3 + 2 = 6
	if s := SumPairwise(set, Euclidean); !almostEqual(s, 6, 1e-12) {
		t.Fatalf("SumPairwise = %v, want 6", s)
	}
}

func TestMatrixSymmetricZeroDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomVectors(rng, 17, 3)
	m := Matrix(pts, Euclidean)
	for i := range m {
		if m[i][i] != 0 {
			t.Fatalf("Matrix[%d][%d] = %v, want 0", i, i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Fatalf("Matrix not symmetric at (%d,%d)", i, j)
			}
			if want := Euclidean(pts[i], pts[j]); !almostEqual(m[i][j], want, 1e-12) {
				t.Fatalf("Matrix[%d][%d] = %v, want %v", i, j, m[i][j], want)
			}
		}
	}
}

func randomVectors(rng *rand.Rand, n, dim int) []Vector {
	pts := make([]Vector, n)
	for i := range pts {
		v := make(Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		pts[i] = v
	}
	return pts
}

// checkMetricAxioms verifies the metric axioms on randomly generated
// triples using testing/quick: quick drives random seeds, each seed
// deterministically generates a triple of points via gen.
func checkMetricAxioms[P any](t *testing.T, name string, d Distance[P], gen func(*rand.Rand) P) {
	t.Helper()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := gen(rng), gen(rng), gen(rng)
		dab, dba := d(a, b), d(b, a)
		if dab < 0 {
			t.Logf("%s: negative distance %v (seed %d)", name, dab, seed)
			return false
		}
		if !almostEqual(dab, dba, 1e-7) {
			t.Logf("%s: asymmetric %v vs %v (seed %d)", name, dab, dba, seed)
			return false
		}
		if d(a, a) > 1e-7 {
			t.Logf("%s: d(a,a)=%v (seed %d)", name, d(a, a), seed)
			return false
		}
		// Triangle inequality with a small tolerance for float drift.
		if dab > d(a, c)+d(c, b)+1e-7 {
			t.Logf("%s: triangle violated: d(a,b)=%v > d(a,c)+d(c,b)=%v (seed %d)",
				name, dab, d(a, c)+d(c, b), seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("%s metric axioms violated: %v", name, err)
	}
}
