package metric

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// DistMatrix is a flat, row-major n×n buffer of pairwise squared
// Euclidean distances: sq[i*n+j] = SqDist(row i, row j). It is the
// substrate of the round-2 solve fast path (internal/sequential): the
// sequential α-approximation algorithms run on the merged core-set
// union are Ω(n²) in distance evaluations, so materializing every pair
// once — in parallel, on the canonical four-lane kernel — turns them
// from distance-bound to memory-bound. Because every entry is the
// canonical four-lane square (kernel.go), math.Sqrt of an entry is
// bit-identical to Euclidean on the same rows, and solvers driven by
// At make exactly the same comparisons as the generic callback path.
//
// A DistMatrix is immutable after NewDistMatrix returns and safe for
// concurrent reads, which is what lets the divmaxd query cache share
// one matrix across queries. Grown extends a matrix to cover appended
// points without invalidating readers of the original: the returned
// matrix is a new header, and when the backing buffer has spare
// capacity (stride > n) the new rows and column stripes land in cells
// no reader of the original can see.
type DistMatrix struct {
	sq []float64
	n  int
	// stride is the row stride of sq — the point capacity of the
	// backing buffer. It equals n for matrices built by NewDistMatrix;
	// Grown over-allocates (capacity doubling) so repeated appends
	// reuse the buffer instead of recopying n² entries each time.
	stride int
}

// distMatrixMinRows is the minimum number of rows a fill worker must
// have before another goroutine is worth spawning; below it the spawn
// and join overhead exceeds the row work.
const distMatrixMinRows = 32

// NewDistMatrix materializes the pairwise squared-distance matrix of p,
// filling row ranges in parallel across worker goroutines (workers ≤ 0
// means runtime.NumCPU(); the count is clamped so every worker owns at
// least distMatrixMinRows rows). Each worker computes full rows of the
// canonical four-lane square sqDist, so writes are strictly sequential
// and disjoint across workers; the symmetric cell (j,i) is computed
// independently from the same coordinates and is bit-identical because
// (a−b)² = (b−a)² exactly in IEEE arithmetic.
func NewDistMatrix(p *Points, workers int) *DistMatrix {
	m := NewDistMatrixEmpty(p.Len())
	m.FillRows(p, 0, m.n, workers)
	return m
}

// NewDistMatrixEmpty allocates an unfilled n×n matrix for incremental
// construction: callers stream row ranges in with FillRows (the divmaxd
// cache's incremental-maintenance path, and any builder that wants to
// overlap filling with other work). The matrix is only safe to read
// once every row has been filled.
func NewDistMatrixEmpty(n int) *DistMatrix {
	return &DistMatrix{sq: make([]float64, n*n), n: n, stride: n}
}

// FillRows computes rows [lo, hi) of the matrix from p, sharding the
// range across worker goroutines. p must be the store the matrix was
// sized for; distinct row ranges write to disjoint memory, so
// concurrent FillRows calls on non-overlapping ranges are safe.
func (m *DistMatrix) FillRows(p *Points, lo, hi, workers int) {
	if p.Len() != m.n {
		panic(fmt.Sprintf("metric: FillRows from a %d-row store into a %d-point matrix", p.Len(), m.n))
	}
	if lo < 0 || hi > m.n || lo > hi {
		panic(fmt.Sprintf("metric: FillRows range [%d, %d) outside matrix of %d rows", lo, hi, m.n))
	}
	if m.stride == m.n {
		p.FillSqRows(lo, hi, m.sq[lo*m.n:hi*m.n], workers)
		return
	}
	// Over-allocated (grown) matrix: rows are not contiguous, so fill
	// row by row at the stride, sharded like FillSqRows.
	parallelRowRange(lo, hi, workers, func(flo, fhi int) {
		for i := flo; i < fhi; i++ {
			p.sqDistRowsInto(i, m.sq[i*m.stride:i*m.stride+m.n])
		}
	})
}

// Grown returns a matrix extended to cover every row of p, whose first
// m.Len() rows must be the points m was built over. Existing entries
// are reused, the new rows are computed on the canonical kernels, and
// the old×new column stripe is copied through matrix symmetry
// ((a−b)² = (b−a)² exactly in IEEE arithmetic), so every cell is
// bit-identical to what NewDistMatrix over all of p would produce.
//
// Readers of m stay valid: when the backing buffer has spare capacity
// the new cells occupy memory outside every existing reader's view and
// the buffer is shared; otherwise a fresh buffer of at least double the
// capacity (clamped to strideCap points when strideCap > 0) is
// allocated and the old rows copied. Because forks of one buffer write
// to the same spare cells, only the latest matrix of a Grown chain may
// be grown again — the divmaxd cache serializes its patches exactly
// this way. workers bounds the fill/copy goroutines (≤ 0 means
// runtime.NumCPU()).
func (m *DistMatrix) Grown(p *Points, strideCap, workers int) *DistMatrix {
	newN := p.Len()
	if newN < m.n {
		panic(fmt.Sprintf("metric: Grown from a %d-row store below the %d-point matrix", newN, m.n))
	}
	oldN := m.n
	g := &DistMatrix{sq: m.sq, n: newN, stride: m.stride}
	if newN > m.stride {
		stride := 2 * m.stride
		if strideCap > 0 && stride > strideCap {
			stride = strideCap
		}
		if stride < newN {
			stride = newN
		}
		g = &DistMatrix{sq: make([]float64, stride*stride), n: newN, stride: stride}
		parallelRowRange(0, oldN, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				copy(g.sq[i*g.stride:i*g.stride+oldN], m.sq[i*m.stride:i*m.stride+oldN])
			}
		})
	}
	if newN == oldN {
		return g
	}
	// New rows: full kernel rows over the grown store.
	parallelRowRange(oldN, newN, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.sqDistRowsInto(i, g.sq[i*g.stride:i*g.stride+newN])
		}
	})
	// Old×new column stripe, read from the just-filled rows through
	// symmetry: the new rows stay resident while each old row's short
	// stripe is written contiguously.
	parallelRowRange(0, oldN, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst := g.sq[i*g.stride : i*g.stride+newN]
			for j := oldN; j < newN; j++ {
				dst[j] = g.sq[j*g.stride+i]
			}
		}
	})
	return g
}

// parallelRowRange shards rows [lo, hi) across worker goroutines
// (≤ 0 means runtime.NumCPU(); clamped so every worker owns at least
// distMatrixMinRows rows), invoking fn once per contiguous sub-range.
func parallelRowRange(lo, hi, workers int, fn func(lo, hi int)) {
	rows := hi - lo
	if rows <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if maxw := (rows + distMatrixMinRows - 1) / distMatrixMinRows; workers > maxw {
		workers = maxw
	}
	if workers <= 1 {
		fn(lo, hi)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for flo := lo; flo < hi; flo += chunk {
		fhi := flo + chunk
		if fhi > hi {
			fhi = hi
		}
		wg.Add(1)
		go func(flo, fhi int) {
			defer wg.Done()
			fn(flo, fhi)
		}(flo, fhi)
	}
	wg.Wait()
}

// FillSqRows writes rows [lo, hi) of the virtual pairwise
// squared-distance matrix into dst — (hi−lo)·n entries, row-major, row
// lo first — sharding the rows across worker goroutines (≤ 0 means
// runtime.NumCPU(); the count is clamped so every worker owns at least
// distMatrixMinRows rows). It is the range kernel under NewDistMatrix
// and the tiled round-2 solve engine (internal/sequential), which
// streams row-blocks through this call instead of materializing the
// full 8·n² buffer. Every entry is the canonical four-lane square of
// sqDistRowsInto, so math.Sqrt of it is bit-identical to Euclidean on
// the same rows. dst must hold at least (hi−lo)·n values.
func (p *Points) FillSqRows(lo, hi int, dst []float64, workers int) {
	p.FillSqRowsRange(lo, hi, 0, p.n, dst, workers)
}

// FillSqRowsRange is FillSqRows restricted to a column range: for each
// row i in [lo, hi) it writes the squared distances to points
// [colLo, colHi) — (hi−lo)·(colHi−colLo) entries, row-major, row lo
// first. It is what lets the tiled farthest-partner pass walk only the
// upper triangle (n²/2 kernel evaluations instead of n²): each entry is
// the same canonical four-lane square FillSqRows produces for that
// (row, column) pair, bit for bit, just restricted to the columns the
// triangular walk needs. Sharding across workers matches FillSqRows.
func (p *Points) FillSqRowsRange(lo, hi, colLo, colHi int, dst []float64, workers int) {
	n := p.n
	if lo < 0 || hi > n || lo > hi {
		panic(fmt.Sprintf("metric: FillSqRowsRange range [%d, %d) outside a %d-row store", lo, hi, n))
	}
	if colLo < 0 || colHi > n || colLo > colHi {
		// The column bound is the store's point count — the same n that
		// bounds rows, but reported as the column capacity it is here,
		// not as a row count.
		panic(fmt.Sprintf("metric: FillSqRowsRange columns [%d, %d) outside a %d-column store", colLo, colHi, n))
	}
	rows, w := hi-lo, colHi-colLo
	if rows == 0 || w == 0 {
		return
	}
	if len(dst) < rows*w {
		panic(fmt.Sprintf("metric: FillSqRowsRange destination of %d values for %d rows of %d", len(dst), rows, w))
	}
	parallelRowRange(lo, hi, workers, func(flo, fhi int) {
		if p.dim >= BlockedMinDim {
			p.blockedFillRows(flo, fhi, colLo, colHi, lo, w, dst)
			return
		}
		for i := flo; i < fhi; i++ {
			p.sqDistRangeInto(i, colLo, colHi, dst[(i-lo)*w:(i-lo)*w+w])
		}
	})
}

// sqDistRowsInto writes the squared distances from row c to every row
// into out (len ≥ n): one DistMatrix row. It is RelaxMinSqRange's
// traversal without the min/assign bookkeeping — the same
// dimension-specialized kernels (two/three-coordinate direct forms, the
// 8-dimensional four-rows-per-step unroll), the same canonical four-lane
// summation order, so every value is bit-identical to sqDist on the same
// rows.
func (p *Points) sqDistRowsInto(c int, out []float64) {
	p.sqDistRangeInto(c, 0, p.n, out)
}

// sqDistRangeInto is sqDistRowsInto restricted to rows [jlo, jhi),
// writing jhi−jlo entries starting at out[0]. Every entry's value is
// computed by the same self-contained per-entry formula as the full
// row — the d=8 four-rows-per-step unroll only interleaves independent
// entries — so out[j−jlo] is bit-identical to the full row's entry j
// regardless of where the range starts.
func (p *Points) sqDistRangeInto(c, jlo, jhi int, out []float64) {
	n := jhi - jlo
	if n == 0 {
		return
	}
	d := p.dim
	data := p.data
	_ = out[n-1]
	switch d {
	case 2:
		c0, c1 := data[2*c], data[2*c+1]
		for i := jlo; i < jhi; i++ {
			d0 := c0 - data[2*i]
			d1 := c1 - data[2*i+1]
			out[i-jlo] = d0*d0 + d1*d1
		}
	case 3:
		c0, c1, c2 := data[3*c], data[3*c+1], data[3*c+2]
		for i := jlo; i < jhi; i++ {
			row := data[3*i : 3*i+3]
			d0 := c0 - row[0]
			d1 := c1 - row[1]
			d2 := c2 - row[2]
			out[i-jlo] = d0*d0 + d1*d1 + d2*d2
		}
	case 8:
		center := data[8*c : 8*c+8]
		c0, c1, c2, c3 := center[0], center[1], center[2], center[3]
		c4, c5, c6, c7 := center[4], center[5], center[6], center[7]
		i := jlo
		for ; i+4 <= jhi; i += 4 {
			row := data[8*i : 8*i+32]
			d0 := c0 - row[0]
			d1 := c1 - row[1]
			d2 := c2 - row[2]
			d3 := c3 - row[3]
			s0 := d0 * d0
			s1 := d1 * d1
			s2 := d2 * d2
			s3 := d3 * d3
			d4 := c4 - row[4]
			d5 := c5 - row[5]
			d6 := c6 - row[6]
			d7 := c7 - row[7]
			s0 += d4 * d4
			s1 += d5 * d5
			s2 += d6 * d6
			s3 += d7 * d7
			out[i-jlo] = (s0 + s1) + (s2 + s3)
			d0 = c0 - row[8]
			d1 = c1 - row[9]
			d2 = c2 - row[10]
			d3 = c3 - row[11]
			s0 = d0 * d0
			s1 = d1 * d1
			s2 = d2 * d2
			s3 = d3 * d3
			d4 = c4 - row[12]
			d5 = c5 - row[13]
			d6 = c6 - row[14]
			d7 = c7 - row[15]
			s0 += d4 * d4
			s1 += d5 * d5
			s2 += d6 * d6
			s3 += d7 * d7
			out[i-jlo+1] = (s0 + s1) + (s2 + s3)
			d0 = c0 - row[16]
			d1 = c1 - row[17]
			d2 = c2 - row[18]
			d3 = c3 - row[19]
			s0 = d0 * d0
			s1 = d1 * d1
			s2 = d2 * d2
			s3 = d3 * d3
			d4 = c4 - row[20]
			d5 = c5 - row[21]
			d6 = c6 - row[22]
			d7 = c7 - row[23]
			s0 += d4 * d4
			s1 += d5 * d5
			s2 += d6 * d6
			s3 += d7 * d7
			out[i-jlo+2] = (s0 + s1) + (s2 + s3)
			d0 = c0 - row[24]
			d1 = c1 - row[25]
			d2 = c2 - row[26]
			d3 = c3 - row[27]
			s0 = d0 * d0
			s1 = d1 * d1
			s2 = d2 * d2
			s3 = d3 * d3
			d4 = c4 - row[28]
			d5 = c5 - row[29]
			d6 = c6 - row[30]
			d7 = c7 - row[31]
			s0 += d4 * d4
			s1 += d5 * d5
			s2 += d6 * d6
			s3 += d7 * d7
			out[i-jlo+3] = (s0 + s1) + (s2 + s3)
		}
		for ; i < jhi; i++ {
			out[i-jlo] = sqDist(center, data[8*i:8*i+8])
		}
	default:
		if d >= BlockedMinDim {
			p.blockedRangeInto(c, jlo, jhi, out)
			return
		}
		center := data[c*d : c*d+d]
		for i := jlo; i < jhi; i++ {
			out[i-jlo] = sqDist(center, data[i*d:i*d+d])
		}
	}
}

// Len returns the number of points the matrix was built over.
func (m *DistMatrix) Len() int { return m.n }

// Bytes returns the size of the backing buffer in bytes (monitoring).
func (m *DistMatrix) Bytes() int64 { return int64(len(m.sq)) * 8 }

// SqAt returns the squared distance between points i and j,
// bit-identical to SquaredEuclidean on the underlying rows.
func (m *DistMatrix) SqAt(i, j int) float64 { return m.sq[i*m.stride+j] }

// At returns the distance between points i and j, bit-identical to
// Euclidean on the underlying rows (one load and one correctly-rounded
// square root).
func (m *DistMatrix) At(i, j int) float64 { return math.Sqrt(m.sq[i*m.stride+j]) }

// SqRow returns row i of the matrix as a slice view: SqRow(i)[j] is the
// squared distance between points i and j. Solver inner loops scan rows
// through this view so the bounds check hoists out of the loop.
func (m *DistMatrix) SqRow(i int) []float64 { return m.sq[i*m.stride : i*m.stride+m.n] }

// RelaxMinSqParallel is RelaxMinSqRange over all rows, sharded across
// worker goroutines: contiguous row ranges relax independently (their
// minSq/assign writes are disjoint) and the per-shard maxima are reduced
// with ties toward the lowest index — exactly the bookkeeping of a
// single ascending strict-'>' scan, so the result is independent of the
// worker count and identical to RelaxMinSqRange(0, n, ...) seeded with
// (next, nextSq) = (first row, -Inf). It returns (-1, -1) on an empty
// store; workers ≤ 0 means runtime.NumCPU(), and the count is clamped
// so every shard owns at least relaxMinRows rows. It is the engine of
// GMMParallel's flat fast path.
func (p *Points) RelaxMinSqParallel(c, sel, workers int, minSq []float64, assign []int) (int, float64) {
	return p.relaxParallel(workers, minSq, assign, func(lo, hi int) (int, float64) {
		return p.RelaxMinSqRange(lo, hi, c, sel, minSq, assign, lo, math.Inf(-1))
	})
}

// relaxParallel is the shard-and-reduce skeleton shared by
// RelaxMinSqParallel and RelaxMinSqPrunedParallel: pass relaxes one
// contiguous row range seeded with (lo, -Inf) and returns its running
// maximum; the per-shard maxima are reduced with ties toward the lowest
// index, which is exactly the bookkeeping of a single ascending
// strict-'>' scan, so the result is independent of the worker count.
func (p *Points) relaxParallel(workers int, minSq []float64, assign []int, pass func(lo, hi int) (int, float64)) (int, float64) {
	n := p.n
	if n == 0 {
		return -1, -1
	}
	if len(minSq) < n || len(assign) < n {
		panic(fmt.Sprintf("metric: RelaxMinSqParallel buffers of %d and %d rows for a %d-row store", len(minSq), len(assign), n))
	}
	const relaxMinRows = 512
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if maxw := (n + relaxMinRows - 1) / relaxMinRows; workers > maxw {
		workers = maxw
	}
	if workers <= 1 {
		return pass(0, n)
	}
	type shardMax struct {
		idx int
		sq  float64
	}
	chunk := (n + workers - 1) / workers
	maxes := make([]shardMax, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			maxes[s] = shardMax{idx: -1, sq: -1}
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			idx, sq := pass(lo, hi)
			maxes[s] = shardMax{idx: idx, sq: sq}
		}(s, lo, hi)
	}
	wg.Wait()
	next := shardMax{idx: -1, sq: math.Inf(-1)}
	for _, sm := range maxes {
		if sm.idx >= 0 && (next.idx < 0 || sm.sq > next.sq || (sm.sq == next.sq && sm.idx < next.idx)) {
			next = sm
		}
	}
	return next.idx, next.sq
}
