package metric

import (
	"math"
	"testing"

	"divmax/internal/testutil"
)

// FuzzBlockedVsGenericSqDist drives the tier dispatch across arbitrary
// shapes — dimensions spanning [1, 1536] (both sides of BlockedMinDim),
// sub-range windows straddling the two-column micro-kernel and cache
// tiles — and checks the tier contracts on every input: integer-valued
// coordinates must agree with the scalar form bit for bit at any
// dimension, scaled (inexact) coordinates must stay within the
// documented envelope, exact duplicates must give exactly zero, and
// range fills must be bit-identical to full-row fills regardless of the
// window.
func FuzzBlockedVsGenericSqDist(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint16(3), uint8(0), false)
	f.Add([]byte{9, 9, 9, 9, 1, 2, 3, 4, 200, 100}, uint16(16), uint8(5), true)
	f.Add([]byte{255, 0, 127, 63, 31, 15, 7, 3}, uint16(33), uint8(64), true)
	f.Add([]byte{1, 2, 3}, uint16(128), uint8(127), false)
	f.Add([]byte{8, 4, 2, 1, 1, 2, 4, 8}, uint16(512), uint8(255), true)
	f.Add([]byte{5}, uint16(1535), uint8(33), true)
	f.Fuzz(func(t *testing.T, data []byte, dimRaw uint16, winRaw uint8, scaled bool) {
		if len(data) == 0 {
			return
		}
		dim := 1 + int(dimRaw)%1536
		n := 2 + len(data)%6
		rows := make([]Vector, n)
		for i := range rows {
			v := make(Vector, dim)
			for j := range v {
				c := float64(data[(i*dim+j)%len(data)])
				if scaled {
					c /= 3 // inexact: forces the envelope (not bitwise) regime
				}
				v[j] = c
			}
			rows[i] = v
		}
		// An exact duplicate of row 0, placed last.
		rows = append(rows, append(Vector(nil), rows[0]...))
		n = len(rows)
		flat, ok := FlattenVectors(rows)
		if !ok {
			t.Fatal("FlattenVectors rejected regular rows")
		}

		zero := make(Vector, dim)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got := flat.SqBetween(i, j)
				want := SquaredEuclidean(rows[i], rows[j])
				if dim < BlockedMinDim || !scaled {
					// Below the threshold, or with integer inputs (exact
					// arithmetic in both forms): bit-identical.
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("dim %d scaled=%v: SqBetween(%d,%d) = %v, want %v bit-identical",
							dim, scaled, i, j, got, want)
					}
					continue
				}
				bound := testutil.SqDistBound(dim, SquaredEuclidean(rows[i], zero), SquaredEuclidean(rows[j], zero))
				if !testutil.WithinAbs(got, want, bound) {
					t.Fatalf("dim %d: SqBetween(%d,%d) = %v, want %v within %v",
						dim, i, j, got, want, bound)
				}
			}
		}
		if sq := flat.SqBetween(0, n-1); sq != 0 {
			t.Fatalf("dim %d: duplicate pair distance %v, want exactly 0", dim, sq)
		}

		// Range fills are position-independent: any window reproduces
		// the corresponding cells of the full fill bit for bit.
		full := make([]float64, n*n)
		flat.FillSqRows(0, n, full, 1)
		colLo := int(winRaw) % n
		colHi := colLo + 1 + int(dimRaw)%(n-colLo)
		if colHi > n {
			colHi = n
		}
		w := colHi - colLo
		dst := make([]float64, n*w)
		flat.FillSqRowsRange(0, n, colLo, colHi, dst, 1)
		for i := 0; i < n; i++ {
			for j := colLo; j < colHi; j++ {
				if math.Float64bits(dst[i*w+j-colLo]) != math.Float64bits(full[i*n+j]) {
					t.Fatalf("dim %d window [%d,%d): cell (%d,%d) differs from the full fill",
						dim, colLo, colHi, i, j)
				}
			}
		}
	})
}
