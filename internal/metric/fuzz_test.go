package metric

import (
	"math"
	"testing"
)

// Fuzz targets: parsers must never panic on arbitrary input, and
// successfully parsed values must round-trip through String.

func FuzzParseVector(f *testing.F) {
	for _, seed := range []string{"1,2,3", "", "-1.5,2e10", "NaN", "a,b", "0.1", "1,,2", " 7 , 8 "} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseVector(s)
		if err != nil {
			return
		}
		// Round-trip (NaN payloads compare unequal; allow NaN==NaN).
		back, err := ParseVector(v.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", v.String(), s, err)
		}
		if len(back) != len(v) {
			t.Fatalf("round trip changed length: %d -> %d", len(v), len(back))
		}
		for i := range v {
			if back[i] != v[i] && !(math.IsNaN(back[i]) && math.IsNaN(v[i])) {
				t.Fatalf("round trip changed coordinate %d: %v -> %v", i, v[i], back[i])
			}
		}
	})
}

func FuzzParseSparseVector(f *testing.F) {
	for _, seed := range []string{"1:2 3:4", "", "0:0", "5:1.5 5:2", "x:1", "1:y", "4294967295:1"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseSparseVector(s)
		if err != nil {
			return
		}
		// Structural invariants: terms strictly increasing, no zeros.
		for i := range v.Terms {
			if i > 0 && v.Terms[i] <= v.Terms[i-1] {
				t.Fatalf("terms not strictly increasing: %v", v.Terms)
			}
			if v.Values[i] == 0 {
				t.Fatalf("zero value survived normalization: %v", v)
			}
		}
		back, err := ParseSparseVector(v.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", v.String(), err)
		}
		if back.NNZ() != v.NNZ() {
			t.Fatalf("round trip changed nnz: %d -> %d", v.NNZ(), back.NNZ())
		}
	})
}

func FuzzParseSet(f *testing.F) {
	for _, seed := range []string{"1 2 3", "", "5 5 5", "18446744073709551615", "-1"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParseSet(s)
		if err != nil {
			return
		}
		for i := 1; i < len(set); i++ {
			if set[i] <= set[i-1] {
				t.Fatalf("set not strictly increasing: %v", set)
			}
		}
		back, err := ParseSet(set.String())
		if err != nil || len(back) != len(set) {
			t.Fatalf("round trip failed: (%v, %v)", back, err)
		}
	})
}

func FuzzJaccardMetric(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, []byte{9})
	f.Add([]byte{}, []byte{0}, []byte{255, 255})
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		toSet := func(bs []byte) Set {
			elems := make([]uint64, len(bs))
			for i, x := range bs {
				elems[i] = uint64(x)
			}
			return NewSet(elems...)
		}
		sa, sb, sc := toSet(a), toSet(b), toSet(c)
		dab := JaccardDistance(sa, sb)
		if dab < 0 || dab > 1 {
			t.Fatalf("Jaccard out of range: %v", dab)
		}
		if dab != JaccardDistance(sb, sa) {
			t.Fatal("Jaccard asymmetric")
		}
		if dab > JaccardDistance(sa, sc)+JaccardDistance(sc, sb)+1e-12 {
			t.Fatalf("Jaccard triangle violated: %v > %v + %v",
				dab, JaccardDistance(sa, sc), JaccardDistance(sc, sb))
		}
	})
}
