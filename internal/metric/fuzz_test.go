package metric

import (
	"math"
	"testing"
)

// Fuzz targets: parsers must never panic on arbitrary input, and
// successfully parsed values must round-trip through String.

func FuzzParseVector(f *testing.F) {
	for _, seed := range []string{"1,2,3", "", "-1.5,2e10", "NaN", "a,b", "0.1", "1,,2", " 7 , 8 "} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseVector(s)
		if err != nil {
			return
		}
		// Round-trip (NaN payloads compare unequal; allow NaN==NaN).
		back, err := ParseVector(v.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", v.String(), s, err)
		}
		if len(back) != len(v) {
			t.Fatalf("round trip changed length: %d -> %d", len(v), len(back))
		}
		for i := range v {
			if back[i] != v[i] && !(math.IsNaN(back[i]) && math.IsNaN(v[i])) {
				t.Fatalf("round trip changed coordinate %d: %v -> %v", i, v[i], back[i])
			}
		}
	})
}

func FuzzParseSparseVector(f *testing.F) {
	for _, seed := range []string{"1:2 3:4", "", "0:0", "5:1.5 5:2", "x:1", "1:y", "4294967295:1"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseSparseVector(s)
		if err != nil {
			return
		}
		// Structural invariants: terms strictly increasing, no zeros.
		for i := range v.Terms {
			if i > 0 && v.Terms[i] <= v.Terms[i-1] {
				t.Fatalf("terms not strictly increasing: %v", v.Terms)
			}
			if v.Values[i] == 0 {
				t.Fatalf("zero value survived normalization: %v", v)
			}
		}
		back, err := ParseSparseVector(v.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", v.String(), err)
		}
		if back.NNZ() != v.NNZ() {
			t.Fatalf("round trip changed nnz: %d -> %d", v.NNZ(), back.NNZ())
		}
	})
}

func FuzzParseSet(f *testing.F) {
	for _, seed := range []string{"1 2 3", "", "5 5 5", "18446744073709551615", "-1"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParseSet(s)
		if err != nil {
			return
		}
		for i := 1; i < len(set); i++ {
			if set[i] <= set[i-1] {
				t.Fatalf("set not strictly increasing: %v", set)
			}
		}
		back, err := ParseSet(set.String())
		if err != nil || len(back) != len(set) {
			t.Fatalf("round trip failed: (%v, %v)", back, err)
		}
	})
}

// FuzzSqDistKernels cross-checks the batched flat kernels against the
// scalar distance functions on arbitrary bit patterns (including NaN,
// ±Inf, subnormals): SqDist must equal SquaredEuclidean bit for bit,
// and the flat nearest-row scan must agree with MinDistance.
func FuzzSqDistKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2))
	f.Add([]byte{0xff, 0xf0, 0, 0, 0, 0, 0, 1}, uint8(1)) // NaN-ish bits
	f.Add([]byte{}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, dimRaw uint8) {
		dim := 1 + int(dimRaw)%12
		// Interpret data as float64 bit patterns, 8 bytes per coordinate.
		var coords []float64
		for i := 0; i+8 <= len(data); i += 8 {
			var bits uint64
			for j := 0; j < 8; j++ {
				bits = bits<<8 | uint64(data[i+j])
			}
			coords = append(coords, math.Float64frombits(bits))
		}
		if len(coords) < 2*dim {
			return
		}
		rows := make([]Vector, 0, len(coords)/dim)
		for i := 0; i+dim <= len(coords); i += dim {
			rows = append(rows, Vector(coords[i:i+dim]))
		}
		q := rows[0]
		rows = rows[1:]
		for _, r := range rows {
			got := SqDist(q, r)
			want := SquaredEuclidean(q, r)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("SqDist %v != SquaredEuclidean %v on q=%v r=%v", got, want, q, r)
			}
		}
		flat, ok := FlattenVectors(rows)
		if !ok {
			t.Fatalf("FlattenVectors rejected regular rows of dim %d", dim)
		}
		gotSq, gotIdx := flat.MinSq(q)
		wantDist, wantIdx := MinDistance(q, rows, Euclidean)
		if gotIdx != wantIdx {
			t.Fatalf("MinSq index %d, MinDistance index %d (q=%v rows=%v)", gotIdx, wantIdx, q, rows)
		}
		if gotIdx >= 0 && math.Float64bits(math.Sqrt(gotSq)) != math.Float64bits(wantDist) {
			t.Fatalf("sqrt(MinSq) %v != MinDistance %v", math.Sqrt(gotSq), wantDist)
		}
	})
}

func FuzzJaccardMetric(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, []byte{9})
	f.Add([]byte{}, []byte{0}, []byte{255, 255})
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		toSet := func(bs []byte) Set {
			elems := make([]uint64, len(bs))
			for i, x := range bs {
				elems[i] = uint64(x)
			}
			return NewSet(elems...)
		}
		sa, sb, sc := toSet(a), toSet(b), toSet(c)
		dab := JaccardDistance(sa, sb)
		if dab < 0 || dab > 1 {
			t.Fatalf("Jaccard out of range: %v", dab)
		}
		if dab != JaccardDistance(sb, sa) {
			t.Fatal("Jaccard asymmetric")
		}
		if dab > JaccardDistance(sa, sc)+JaccardDistance(sc, sb)+1e-12 {
			t.Fatalf("Jaccard triangle violated: %v > %v + %v",
				dab, JaccardDistance(sa, sc), JaccardDistance(sc, sb))
		}
	})
}
