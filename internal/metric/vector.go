package metric

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Vector is a dense point in d-dimensional real space. The synthetic
// datasets of the paper (Section 7) live in R² and R³ under the Euclidean
// distance; Euclidean space of constant dimension D has doubling dimension
// O(D) (Gupta, Krauthgamer, Lee, FOCS'03), so the paper's bounds apply.
type Vector []float64

// Euclidean returns the L2 distance between a and b.
// It panics if the vectors have different lengths, which always indicates
// a programming error (mixed datasets).
//
// The sum of squares is evaluated in the package's canonical four-lane
// order (see kernel.go), the same order the batched flat kernels use,
// so the generic and fast code paths agree bit for bit.
func Euclidean(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: euclidean distance of vectors with mismatched dimensions %d and %d", len(a), len(b)))
	}
	return math.Sqrt(sqDist(a, b))
}

// SquaredEuclidean returns the squared L2 distance. It is NOT a metric
// (the triangle inequality fails) and must not be fed to the core-set
// algorithms; it exists for cheap nearest-neighbour comparisons where only
// the ordering of distances matters. Like Euclidean, it evaluates the
// canonical four-lane sum of kernel.go.
func SquaredEuclidean(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: squared euclidean distance of vectors with mismatched dimensions %d and %d", len(a), len(b)))
	}
	return sqDist(a, b)
}

// Manhattan returns the L1 (rectilinear) distance between a and b.
// Fekete and Meijer's (1+ε)-approximation for remote-clique is stated for
// rectilinear distances; we provide the metric for completeness.
func Manhattan(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: manhattan distance of vectors with mismatched dimensions %d and %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// Chebyshev returns the L∞ distance between a and b.
func Chebyshev(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: chebyshev distance of vectors with mismatched dimensions %d and %d", len(a), len(b)))
	}
	var best float64
	for i := range a {
		if diff := math.Abs(a[i] - b[i]); diff > best {
			best = diff
		}
	}
	return best
}

// Norm returns the L2 norm of v.
func (v Vector) Norm() float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Dot returns the inner product of v and w. It panics on mismatched
// dimensions.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("metric: dot product of vectors with mismatched dimensions %d and %d", len(v), len(w)))
	}
	var sum float64
	for i := range v {
		sum += v[i] * w[i]
	}
	return sum
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// String formats the vector as comma-separated coordinates, the format
// accepted by ParseVector and used by the CSV dataset files.
func (v Vector) String() string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	return b.String()
}

// ParseVector parses a comma-separated list of coordinates.
func ParseVector(s string) (Vector, error) {
	fields := strings.Split(s, ",")
	v := make(Vector, 0, len(fields))
	for _, f := range fields {
		x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("metric: parsing vector coordinate %q: %w", f, err)
		}
		v = append(v, x)
	}
	return v, nil
}

// AngularDistance returns the angle in radians between a and b:
// arccos(a·b / (‖a‖‖b‖)). This is the "cosine distance" used by the paper
// for the musiXmatch dataset; unlike 1−cos(θ) it is a true metric on the
// unit sphere. Zero vectors have no direction: by convention the distance
// between a zero vector and itself is 0, and between a zero and a non-zero
// vector is π/2 (orthogonal-by-convention), keeping the function total.
func AngularDistance(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	switch {
	case na == 0 && nb == 0:
		return 0
	case na == 0 || nb == 0:
		return math.Pi / 2
	}
	cos := a.Dot(b) / (na * nb)
	// Clamp against floating-point drift before acos.
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return math.Acos(cos)
}
