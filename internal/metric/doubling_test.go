package metric

import (
	"math"
	"math/rand"
	"testing"
)

func TestEpsPrime(t *testing.T) {
	// (1-ε') = 1/(1+ε) ⇔ ε' = ε/(1+ε).
	for _, eps := range []float64{0.1, 0.5, 1.0} {
		got := EpsPrime(eps)
		if want := eps / (1 + eps); !almostEqual(got, want, 1e-15) {
			t.Errorf("EpsPrime(%v) = %v, want %v", eps, got, want)
		}
		if !almostEqual(1-got, 1/(1+eps), 1e-15) {
			t.Errorf("EpsPrime(%v) does not satisfy (1-ε')=1/(1+ε)", eps)
		}
	}
}

func TestTheoreticalKernelSizeMonotonicity(t *testing.T) {
	// Larger ε ⇒ smaller kernels; higher dimension ⇒ larger kernels.
	loose := TheoreticalKernelSize(KernelGMM, 1.0, 2, 10)
	tight := TheoreticalKernelSize(KernelGMM, 0.25, 2, 10)
	if tight <= loose {
		t.Errorf("kernel size should grow as eps shrinks: eps=0.25 gives %d, eps=1 gives %d", tight, loose)
	}
	lowD := TheoreticalKernelSize(KernelGMM, 0.5, 1, 10)
	highD := TheoreticalKernelSize(KernelGMM, 0.5, 3, 10)
	if highD <= lowD {
		t.Errorf("kernel size should grow with dimension: D=3 gives %d, D=1 gives %d", highD, lowD)
	}
}

func TestTheoreticalKernelSizeConstants(t *testing.T) {
	// With D=1, eps=1 (ε'=1/2): GMM 16k, GMM-EXT 32k, SMM 64k, SMM-EXT 128k.
	k := 3
	cases := map[Kernel]int{
		KernelGMM:    16 * k,
		KernelGMMExt: 32 * k,
		KernelSMM:    64 * k,
		KernelSMMExt: 128 * k,
	}
	for variant, want := range cases {
		if got := TheoreticalKernelSize(variant, 1.0, 1, k); got != want {
			t.Errorf("TheoreticalKernelSize(%v) = %d, want %d", variant, got, want)
		}
	}
}

func TestTheoreticalKernelSizeSaturates(t *testing.T) {
	if got := TheoreticalKernelSize(KernelSMMExt, 0.01, 50, 100); got != math.MaxInt {
		t.Errorf("expected saturation at MaxInt, got %d", got)
	}
}

func TestTheoreticalKernelSizeDimensionZero(t *testing.T) {
	// D=0: a single ball covers everything, k' = k.
	if got := TheoreticalKernelSize(KernelGMM, 0.5, 0, 7); got != 7 {
		t.Errorf("D=0 kernel size = %d, want 7", got)
	}
}

func TestTheoreticalKernelSizePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { TheoreticalKernelSize(KernelGMM, 0, 2, 5) },
		func() { TheoreticalKernelSize(KernelGMM, 1.5, 2, 5) },
		func() { TheoreticalKernelSize(KernelGMM, 0.5, -1, 5) },
		func() { TheoreticalKernelSize(KernelGMM, 0.5, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid arguments")
				}
			}()
			fn()
		}()
	}
}

func TestEstimateDoublingConstantLine(t *testing.T) {
	// Points on a line: doubling constant should be small (≤ ~4).
	pts := make([]Vector, 200)
	for i := range pts {
		pts[i] = Vector{float64(i)}
	}
	c := EstimateDoublingConstant(pts, Euclidean, 5)
	if c < 1 || c > 4 {
		t.Errorf("line doubling constant estimate = %d, want within [1,4]", c)
	}
}

func TestEstimateDoublingConstantGrowsWithDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func(dim, n int) []Vector {
		pts := make([]Vector, n)
		for i := range pts {
			v := make(Vector, dim)
			for j := range v {
				v[j] = rng.Float64()
			}
			pts[i] = v
		}
		return pts
	}
	c1 := EstimateDoublingConstant(gen(1, 400), Euclidean, 5)
	c5 := EstimateDoublingConstant(gen(5, 400), Euclidean, 5)
	if c5 <= c1 {
		t.Errorf("doubling estimate should grow with dimension: D=5 gives %d, D=1 gives %d", c5, c1)
	}
}

func TestEstimateDoublingConstantDegenerate(t *testing.T) {
	if c := EstimateDoublingConstant[Vector](nil, Euclidean, 3); c != 0 {
		t.Errorf("empty input estimate = %d, want 0", c)
	}
	same := []Vector{{1}, {1}, {1}}
	if c := EstimateDoublingConstant(same, Euclidean, 2); c > 1 {
		t.Errorf("identical points estimate = %d, want <= 1", c)
	}
}
