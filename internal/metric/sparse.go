package metric

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SparseVector is a sparse non-negative vector, stored as parallel slices
// of strictly increasing term identifiers and their values. It models the
// paper's musiXmatch representation: each song is the vector of word
// counts of the 5,000 most frequent words, with at most a few dozen
// non-zero entries.
//
// The zero value is the empty (all-zeros) vector. Construct instances with
// NewSparseVector, which sorts and merges duplicate terms.
type SparseVector struct {
	Terms  []uint32
	Values []float64
	norm   float64 // cached L2 norm; 0 means "not yet computed or truly 0"
}

// NewSparseVector builds a SparseVector from unordered (term, value)
// pairs. Duplicate terms are summed; zero-valued entries are dropped.
// It panics if the two slices have different lengths.
func NewSparseVector(terms []uint32, values []float64) SparseVector {
	if len(terms) != len(values) {
		panic(fmt.Sprintf("metric: NewSparseVector with %d terms but %d values", len(terms), len(values)))
	}
	type entry struct {
		term uint32
		val  float64
	}
	entries := make([]entry, 0, len(terms))
	for i := range terms {
		entries = append(entries, entry{terms[i], values[i]})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].term < entries[j].term })

	sv := SparseVector{
		Terms:  make([]uint32, 0, len(entries)),
		Values: make([]float64, 0, len(entries)),
	}
	for _, e := range entries {
		if n := len(sv.Terms); n > 0 && sv.Terms[n-1] == e.term {
			sv.Values[n-1] += e.val
			continue
		}
		sv.Terms = append(sv.Terms, e.term)
		sv.Values = append(sv.Values, e.val)
	}
	// Drop zeros produced by explicit zero values or cancellation.
	w := 0
	for i := range sv.Terms {
		if sv.Values[i] != 0 {
			sv.Terms[w] = sv.Terms[i]
			sv.Values[w] = sv.Values[i]
			w++
		}
	}
	sv.Terms = sv.Terms[:w]
	sv.Values = sv.Values[:w]
	sv.norm = sv.computeNorm()
	return sv
}

// NNZ returns the number of non-zero entries.
func (v SparseVector) NNZ() int { return len(v.Terms) }

func (v SparseVector) computeNorm() float64 {
	var sum float64
	for _, x := range v.Values {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Norm returns the L2 norm, using the cached value when available.
func (v SparseVector) Norm() float64 {
	if v.norm != 0 || len(v.Terms) == 0 {
		return v.norm
	}
	return v.computeNorm()
}

// Dot returns the inner product of v and w, merging the two sorted term
// lists in O(nnz(v)+nnz(w)).
func (v SparseVector) Dot(w SparseVector) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(v.Terms) && j < len(w.Terms) {
		switch {
		case v.Terms[i] < w.Terms[j]:
			i++
		case v.Terms[i] > w.Terms[j]:
			j++
		default:
			sum += v.Values[i] * w.Values[j]
			i++
			j++
		}
	}
	return sum
}

// CosineDistance returns arccos(v·w/(‖v‖‖w‖)), the distance the paper uses
// on the musiXmatch dataset. It is a metric (the angular distance on the
// unit sphere). Zero vectors follow the same convention as
// AngularDistance: d(0,0)=0 and d(0,w)=π/2 for w≠0.
func CosineDistance(v, w SparseVector) float64 {
	nv, nw := v.Norm(), w.Norm()
	switch {
	case nv == 0 && nw == 0:
		return 0
	case nv == 0 || nw == 0:
		return math.Pi / 2
	}
	cos := v.Dot(w) / (nv * nw)
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return math.Acos(cos)
}

// String renders the vector as space-separated term:value pairs
// (e.g. "3:1 17:4"), the musiXmatch text format.
func (v SparseVector) String() string {
	var b strings.Builder
	for i := range v.Terms {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(uint64(v.Terms[i]), 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(v.Values[i], 'g', -1, 64))
	}
	return b.String()
}

// ParseSparseVector parses the space-separated term:value format produced
// by String.
func ParseSparseVector(s string) (SparseVector, error) {
	fields := strings.Fields(s)
	terms := make([]uint32, 0, len(fields))
	values := make([]float64, 0, len(fields))
	for _, f := range fields {
		colon := strings.IndexByte(f, ':')
		if colon < 0 {
			return SparseVector{}, fmt.Errorf("metric: sparse entry %q missing ':'", f)
		}
		t, err := strconv.ParseUint(f[:colon], 10, 32)
		if err != nil {
			return SparseVector{}, fmt.Errorf("metric: parsing sparse term %q: %w", f[:colon], err)
		}
		val, err := strconv.ParseFloat(f[colon+1:], 64)
		if err != nil {
			return SparseVector{}, fmt.Errorf("metric: parsing sparse value %q: %w", f[colon+1:], err)
		}
		terms = append(terms, uint32(t))
		values = append(values, val)
	}
	return NewSparseVector(terms, values), nil
}
