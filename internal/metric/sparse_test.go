package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func genSparse(vocab uint32, maxNNZ int) func(*rand.Rand) SparseVector {
	return func(rng *rand.Rand) SparseVector {
		nnz := 1 + rng.Intn(maxNNZ)
		terms := make([]uint32, nnz)
		values := make([]float64, nnz)
		for i := range terms {
			terms[i] = uint32(rng.Intn(int(vocab)))
			values[i] = float64(1 + rng.Intn(20))
		}
		return NewSparseVector(terms, values)
	}
}

func TestNewSparseVectorSortsAndMerges(t *testing.T) {
	v := NewSparseVector([]uint32{5, 1, 5, 3}, []float64{2, 1, 3, 4})
	wantTerms := []uint32{1, 3, 5}
	wantVals := []float64{1, 4, 5}
	if len(v.Terms) != len(wantTerms) {
		t.Fatalf("Terms = %v, want %v", v.Terms, wantTerms)
	}
	for i := range wantTerms {
		if v.Terms[i] != wantTerms[i] || v.Values[i] != wantVals[i] {
			t.Fatalf("entry %d = (%d,%v), want (%d,%v)", i, v.Terms[i], v.Values[i], wantTerms[i], wantVals[i])
		}
	}
}

func TestNewSparseVectorDropsZeros(t *testing.T) {
	v := NewSparseVector([]uint32{1, 2, 3}, []float64{0, 5, 0})
	if v.NNZ() != 1 || v.Terms[0] != 2 {
		t.Fatalf("zeros not dropped: %v", v)
	}
	// Cancellation: +2 and -2 on the same term.
	v = NewSparseVector([]uint32{7, 7}, []float64{2, -2})
	if v.NNZ() != 0 {
		t.Fatalf("cancelled entry not dropped: %v", v)
	}
}

func TestNewSparseVectorMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSparseVector([]uint32{1}, []float64{1, 2})
}

func TestSparseDotMatchesDense(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := genSparse(50, 20)
		a, b := gen(rng), gen(rng)
		dense := func(v SparseVector) Vector {
			out := make(Vector, 50)
			for i, term := range v.Terms {
				out[term] = v.Values[i]
			}
			return out
		}
		return almostEqual(a.Dot(b), dense(a).Dot(dense(b)), 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosineDistanceMetricAxioms(t *testing.T) {
	checkMetricAxioms(t, "cosine", CosineDistance, genSparse(100, 15))
}

func TestCosineDistanceMatchesAngular(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := genSparse(30, 10)
		a, b := gen(rng), gen(rng)
		dense := func(v SparseVector) Vector {
			out := make(Vector, 30)
			for i, term := range v.Terms {
				out[term] = v.Values[i]
			}
			return out
		}
		return almostEqual(CosineDistance(a, b), AngularDistance(dense(a), dense(b)), 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosineDistanceIdenticalDirection(t *testing.T) {
	a := NewSparseVector([]uint32{1, 2}, []float64{1, 2})
	b := NewSparseVector([]uint32{1, 2}, []float64{2, 4}) // same direction
	if d := CosineDistance(a, b); !almostEqual(d, 0, 1e-7) {
		t.Errorf("same-direction cosine distance = %v, want 0", d)
	}
}

func TestCosineDistanceOrthogonal(t *testing.T) {
	a := NewSparseVector([]uint32{1}, []float64{3})
	b := NewSparseVector([]uint32{2}, []float64{7})
	if d := CosineDistance(a, b); !almostEqual(d, math.Pi/2, 1e-9) {
		t.Errorf("orthogonal cosine distance = %v, want π/2", d)
	}
}

func TestCosineDistanceEmptyVectors(t *testing.T) {
	var zero SparseVector
	if d := CosineDistance(zero, zero); d != 0 {
		t.Errorf("CosineDistance(0,0) = %v, want 0", d)
	}
	b := NewSparseVector([]uint32{1}, []float64{1})
	if d := CosineDistance(zero, b); !almostEqual(d, math.Pi/2, 1e-9) {
		t.Errorf("CosineDistance(0,x) = %v, want π/2", d)
	}
}

func TestSparseStringRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := genSparse(200, 12)(rng)
		parsed, err := ParseSparseVector(v.String())
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		if parsed.NNZ() != v.NNZ() {
			return false
		}
		for i := range v.Terms {
			if parsed.Terms[i] != v.Terms[i] || parsed.Values[i] != v.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseSparseVectorErrors(t *testing.T) {
	for _, bad := range []string{"1", "x:1", "1:y", "1:2 3"} {
		if _, err := ParseSparseVector(bad); err == nil {
			t.Errorf("ParseSparseVector(%q): expected error", bad)
		}
	}
}

func TestSparseNormCached(t *testing.T) {
	v := NewSparseVector([]uint32{0, 1}, []float64{3, 4})
	if n := v.Norm(); !almostEqual(n, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", n)
	}
	// A manually constructed value (no cache) must still compute the norm.
	raw := SparseVector{Terms: []uint32{0, 1}, Values: []float64{3, 4}}
	if n := raw.Norm(); !almostEqual(n, 5, 1e-12) {
		t.Errorf("uncached Norm = %v, want 5", n)
	}
}
