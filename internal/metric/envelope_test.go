package metric_test

// The envelope-equivalence harness for the blocked kernel tier.
//
// Below metric.BlockedMinDim the fast paths are pinned bit-identical to
// the generic distance functions (flat_test.go, the consumer packages'
// equivalence tests). At and above it the norm-trick blocked tier
// reassociates the summation, so bit-identity is replaced by four
// contracts, each pinned here:
//
//  1. Value envelope: every blocked squared distance is within
//     testutil.SqDistBound of the canonical difference form, exact
//     duplicates are exactly 0, and integer-valued inputs (exact FP
//     arithmetic in both forms) stay bit-identical.
//  2. Position independence: sub-range fills, single rows, relax
//     passes, and SqBetween all produce bit-identical values for the
//     same row pair, no matter how the range straddles micro-kernel or
//     cache-tile boundaries.
//  3. Pruning transparency: the triangle-inequality-pruned relax pass
//     is bit-identical to the unpruned blocked pass.
//  4. Solution identity: GMM, SMM, and the round-2 engine select the
//     same index sets (and assignments) as the generic path on the
//     same streams the low-dimension equivalence tests use — values
//     may differ within the envelope, selections may not.

import (
	"math"
	"math/rand"
	"testing"

	"divmax/internal/coreset"
	"divmax/internal/metric"
	"divmax/internal/sequential"
	"divmax/internal/streamalg"
	"divmax/internal/testutil"
)

// envDims are the dimensions the acceptance criteria name: one below
// the blocked threshold (bit-identical), the rest across the blocked
// tier up to the top of the embedding range.
var envDims = []int{8, 32, 128, 512, 1536}

// genericEuclid defeats metric.IsEuclidean recognition, forcing every
// construction driven by it down the generic reference path.
func genericEuclid(a, b metric.Vector) float64 { return metric.Euclidean(a, b) }

// mixedRows draws rows with coordinates spanning several orders of
// magnitude — the regime where summation-order differences are largest
// relative to the envelope.
func mixedRows(rng *rand.Rand, n, dim int) []metric.Vector {
	rows := make([]metric.Vector, n)
	for i := range rows {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
		}
		rows[i] = v
	}
	return rows
}

// gridRows draws rows from a small integer grid: every product and
// partial sum in either kernel form is an exact integer, so the blocked
// and generic values must agree bit for bit, and exact ties abound.
func gridRows(rng *rand.Rand, n, dim int) []metric.Vector {
	rows := make([]metric.Vector, n)
	for i := range rows {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = float64(rng.Intn(4))
		}
		rows[i] = v
	}
	return rows
}

func sqNormOf(v metric.Vector) float64 {
	zero := make(metric.Vector, len(v))
	return metric.SquaredEuclidean(v, zero)
}

// TestEnvelopeBlockedVsGenericDistances pins contract 1 at the
// acceptance dimensions: envelope agreement on continuous data (with
// bit-identity below the threshold), exact zero on duplicates.
func TestEnvelopeBlockedVsGenericDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, dim := range envDims {
		rows := mixedRows(rng, 40, dim)
		// Exact duplicates, including of a large-norm row.
		rows = append(rows, append(metric.Vector(nil), rows[3]...), append(metric.Vector(nil), rows[7]...))
		flat, ok := metric.FlattenVectors(rows)
		if !ok {
			t.Fatalf("dim %d: FlattenVectors rejected regular rows", dim)
		}
		n := len(rows)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got := flat.SqBetween(i, j)
				want := metric.SquaredEuclidean(rows[i], rows[j])
				if dim < metric.BlockedMinDim {
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("dim %d: SqBetween(%d,%d) = %v, want %v bit-identical below the threshold",
							dim, i, j, got, want)
					}
					continue
				}
				bound := testutil.SqDistBound(dim, sqNormOf(rows[i]), sqNormOf(rows[j]))
				if !testutil.WithinAbs(got, want, bound) {
					t.Fatalf("dim %d: SqBetween(%d,%d) = %v, want %v within %v (|diff| %v)",
						dim, i, j, got, want, bound, math.Abs(got-want))
				}
			}
		}
		// Duplicates cancel to exactly zero in the blocked form.
		for _, pair := range [][2]int{{3, n - 2}, {7, n - 1}, {5, 5}} {
			if sq := flat.SqBetween(pair[0], pair[1]); sq != 0 {
				t.Fatalf("dim %d: duplicate pair %v has SqBetween %v, want exactly 0", dim, pair, sq)
			}
		}
	}
}

// TestEnvelopeIntegerGridBitIdentical pins the exactness clause of
// contract 1: integer-valued coordinates make the blocked tier
// bit-identical to the generic path at every dimension, which is what
// keeps every tie-heavy equivalence stream exact.
func TestEnvelopeIntegerGridBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, dim := range []int{16, 32, 128, 512, 1536} {
		rows := gridRows(rng, 30, dim)
		flat, _ := metric.FlattenVectors(rows)
		dst := make([]float64, len(rows))
		for i := range rows {
			flat.FillSqRows(i, i+1, dst, 1)
			for j := range rows {
				want := metric.SquaredEuclidean(rows[i], rows[j])
				if math.Float64bits(dst[j]) != math.Float64bits(want) {
					t.Fatalf("dim %d: integer-grid fill (%d,%d) = %v, want %v bit-identical",
						dim, i, j, dst[j], want)
				}
				if got := flat.SqBetween(i, j); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("dim %d: integer-grid SqBetween(%d,%d) = %v, want %v", dim, i, j, got, want)
				}
			}
		}
	}
}

// TestEnvelopePositionIndependence pins contract 2: every batched
// entry is a pure function of its row pair. Sub-range fills with
// offsets straddling the two-column micro-kernel and the cache tile,
// single-row fills, relax passes from +Inf, and SqBetween must all
// agree bit for bit — this is what keeps Grown stripes and delta
// patches cell-for-cell stable inside the tier.
func TestEnvelopePositionIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, dim := range []int{16, 67, 128} {
		const n = 150
		rows := mixedRows(rng, n, dim)
		flat, _ := metric.FlattenVectors(rows)
		c := 5
		full := make([]float64, n)
		flat.FillSqRows(c, c+1, full, 1)
		if got := flat.SqBetween(c, 9); math.Float64bits(got) != math.Float64bits(full[9]) {
			t.Fatalf("dim %d: SqBetween disagrees with the full row fill", dim)
		}
		for _, win := range [][2]int{{0, n}, {1, n - 1}, {9, 10}, {3, 70}, {64, 129}, {149, 150}, {17, 17}} {
			lo, hi := win[0], win[1]
			dst := make([]float64, hi-lo)
			flat.FillSqRowsRange(c, c+1, lo, hi, dst, 1)
			for j := lo; j < hi; j++ {
				if math.Float64bits(dst[j-lo]) != math.Float64bits(full[j]) {
					t.Fatalf("dim %d window [%d,%d): column %d differs from the full row", dim, lo, hi, j)
				}
			}
		}
		// A relax pass from +Inf records exactly the row's fill values.
		minSq := make([]float64, n)
		assign := make([]int, n)
		for i := range minSq {
			minSq[i] = math.Inf(1)
		}
		flat.RelaxMinSqRange(0, n, c, 0, minSq, assign, c, math.Inf(-1))
		for i := 0; i < n; i++ {
			if math.Float64bits(minSq[i]) != math.Float64bits(full[i]) {
				t.Fatalf("dim %d: relaxed minSq[%d] = %v, fill = %v", dim, i, minSq[i], full[i])
			}
		}
	}
}

// TestEnvelopePrunedRelaxBitIdentical pins contract 3: a full
// farthest-first traversal driven by the pruned relax (sequential and
// parallel, across worker counts) leaves exactly the same minSq,
// assignments, and per-pass (next, nextSq) as the unpruned blocked
// pass. Clustered data maximizes how often the pruning condition
// actually fires.
func TestEnvelopePrunedRelaxBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	const n, dim, k = 3000, 64, 24
	rows := make([]metric.Vector, n)
	for i := range rows {
		v := make(metric.Vector, dim)
		center := float64(rng.Intn(8)) * 100
		for j := range v {
			v[j] = center + rng.NormFloat64()
		}
		rows[i] = v
	}
	flat, _ := metric.FlattenVectors(rows)

	type state struct {
		minSq  []float64
		assign []int
		cur    int
	}
	newState := func() *state {
		s := &state{minSq: make([]float64, n), assign: make([]int, n)}
		for i := range s.minSq {
			s.minSq[i] = math.Inf(1)
		}
		return s
	}
	plain, prunedSeq, prunedPar := newState(), newState(), newState()
	indices := make([]int, 0, k)
	ccSq := make([]float64, k)
	pruneCount := 0
	for sel := 0; sel < k; sel++ {
		indices = append(indices, plain.cur)
		for j := 0; j < sel; j++ {
			ccSq[j] = flat.SqBetween(plain.cur, indices[j])
		}
		nextA, sqA := flat.RelaxMinSqRange(0, n, plain.cur, sel, plain.minSq, plain.assign, plain.cur, math.Inf(-1))
		var nextB, nextC int
		var sqB, sqC float64
		if sel == 0 {
			nextB, sqB = flat.RelaxMinSqRange(0, n, prunedSeq.cur, sel, prunedSeq.minSq, prunedSeq.assign, prunedSeq.cur, math.Inf(-1))
			nextC, sqC = flat.RelaxMinSqRange(0, n, prunedPar.cur, sel, prunedPar.minSq, prunedPar.assign, prunedPar.cur, math.Inf(-1))
		} else {
			nextB, sqB = flat.RelaxMinSqPrunedRange(0, n, prunedSeq.cur, sel, ccSq[:sel], prunedSeq.minSq, prunedSeq.assign, prunedSeq.cur, math.Inf(-1))
			nextC, sqC = flat.RelaxMinSqPrunedParallel(prunedPar.cur, sel, 1+sel%4, ccSq[:sel], prunedPar.minSq, prunedPar.assign)
			pruneCount++
		}
		if nextA != nextB || nextA != nextC ||
			math.Float64bits(sqA) != math.Float64bits(sqB) || math.Float64bits(sqA) != math.Float64bits(sqC) {
			t.Fatalf("pass %d: plain (%d, %v), pruned (%d, %v), pruned-parallel (%d, %v)",
				sel, nextA, sqA, nextB, sqB, nextC, sqC)
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(plain.minSq[i]) != math.Float64bits(prunedSeq.minSq[i]) ||
				plain.assign[i] != prunedSeq.assign[i] ||
				math.Float64bits(plain.minSq[i]) != math.Float64bits(prunedPar.minSq[i]) ||
				plain.assign[i] != prunedPar.assign[i] {
				t.Fatalf("pass %d: row %d diverged: plain (%v,%d), pruned (%v,%d), parallel (%v,%d)",
					sel, i, plain.minSq[i], plain.assign[i],
					prunedSeq.minSq[i], prunedSeq.assign[i], prunedPar.minSq[i], prunedPar.assign[i])
			}
		}
		plain.cur, prunedSeq.cur, prunedPar.cur = nextA, nextB, nextC
		_, _, _ = sqA, sqB, sqC
	}
	if pruneCount == 0 {
		t.Fatal("pruned passes never ran")
	}
}

// TestEnvelopeGMMSolutionIdentity pins contract 4 for the traversal the
// core-sets are built from: identical index sets and assignments on the
// same continuous and tie-heavy streams the low-dimension equivalence
// tests use, at the blocked dimensions.
func TestEnvelopeGMMSolutionIdentity(t *testing.T) {
	for _, dim := range []int{32, 128, 512} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(100*int64(dim) + seed))
			var pts []metric.Vector
			if seed%2 == 0 {
				pts = mixedRows(rng, 400, dim)
			} else {
				pts = gridRows(rng, 400, dim)
			}
			k := 1 + rng.Intn(32)
			start := rng.Intn(len(pts))
			fast := coreset.GMM(pts, k, start, metric.Euclidean)
			slow := coreset.GMM(pts, k, start, metric.Distance[metric.Vector](genericEuclid))
			if len(fast.Indices) != len(slow.Indices) {
				t.Fatalf("dim %d seed %d: fast selected %d, generic %d", dim, seed, len(fast.Indices), len(slow.Indices))
			}
			for i := range fast.Indices {
				if fast.Indices[i] != slow.Indices[i] {
					t.Fatalf("dim %d seed %d: selection %d differs: fast %d, generic %d",
						dim, seed, i, fast.Indices[i], slow.Indices[i])
				}
			}
			for i := range fast.Assign {
				if fast.Assign[i] != slow.Assign[i] {
					t.Fatalf("dim %d seed %d: assignment %d differs: fast %d, generic %d",
						dim, seed, i, fast.Assign[i], slow.Assign[i])
				}
			}
			for _, workers := range []int{2, 4} {
				par := coreset.GMMParallel(pts, k, start, workers, metric.Euclidean)
				for i := range fast.Indices {
					if par.Indices[i] != fast.Indices[i] {
						t.Fatalf("dim %d seed %d workers %d: parallel selection %d differs",
							dim, seed, workers, i)
					}
				}
			}
		}
	}
}

// TestEnvelopeSMMSolutionIdentity: the streaming scanner is deliberately
// outside the blocked tier (MinSq keeps the difference form at every
// dimension), so SMM stays bit-identical to the generic stream even at
// embedding dimensions — centers, thresholds, and phases.
func TestEnvelopeSMMSolutionIdentity(t *testing.T) {
	for _, dim := range []int{32, 128} {
		rng := rand.New(rand.NewSource(int64(dim)))
		pts := mixedRows(rng, 1500, dim)
		fast := streamalg.NewSMM(3, 12, metric.Euclidean)
		slow := streamalg.NewSMM(3, 12, metric.Distance[metric.Vector](genericEuclid))
		fast.ProcessBatch(pts)
		for _, p := range pts {
			slow.Process(p)
		}
		if math.Float64bits(fast.Threshold()) != math.Float64bits(slow.Threshold()) {
			t.Fatalf("dim %d: thresholds differ: fast %v, generic %v", dim, fast.Threshold(), slow.Threshold())
		}
		fr, sr := fast.Result(), slow.Result()
		if len(fr) != len(sr) {
			t.Fatalf("dim %d: result sizes differ: fast %d, generic %d", dim, len(fr), len(sr))
		}
		for i := range fr {
			for j := range fr[i] {
				if math.Float64bits(fr[i][j]) != math.Float64bits(sr[i][j]) {
					t.Fatalf("dim %d: center %d coordinate %d differs", dim, i, j)
				}
			}
		}
	}
}

// TestEnvelopeEngineSolutionIdentity pins contract 4 for the round-2
// engine: matrix- and engine-driven solvers fed by blocked fills select
// the same points as the generic callback solvers at blocked
// dimensions, on both continuous and integer-grid unions.
func TestEnvelopeEngineSolutionIdentity(t *testing.T) {
	for _, dim := range []int{32, 128} {
		for seed := int64(0); seed < 2; seed++ {
			rng := rand.New(rand.NewSource(10*int64(dim) + seed))
			var pts []metric.Vector
			if seed%2 == 0 {
				pts = mixedRows(rng, 300, dim)
			} else {
				pts = gridRows(rng, 300, dim)
			}
			const k = 12
			eng := sequential.BuildEngine(pts, metric.Euclidean, 2)
			if eng == nil {
				t.Fatalf("dim %d: BuildEngine rejected the input", dim)
			}
			got := sequential.MaxDispersionPairsEngine(pts, eng, k)
			want := sequential.MaxDispersionPairs(pts, k, metric.Distance[metric.Vector](genericEuclid))
			if len(got) != len(want) {
				t.Fatalf("dim %d seed %d: engine selected %d points, generic %d", dim, seed, len(got), len(want))
			}
			for i := range got {
				for j := range got[i] {
					if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
						t.Fatalf("dim %d seed %d: selected point %d differs between engine and generic", dim, seed, i)
					}
				}
			}
		}
	}
}
