package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func genVector(dim int) func(*rand.Rand) Vector {
	return func(rng *rand.Rand) Vector {
		v := make(Vector, dim)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		return v
	}
}

func TestEuclideanKnownValues(t *testing.T) {
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{0, 0}, Vector{3, 4}, 5},
		{Vector{1, 1, 1}, Vector{1, 1, 1}, 0},
		{Vector{-1}, Vector{2}, 3},
	}
	for _, c := range cases {
		if got := Euclidean(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Euclidean(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEuclideanMetricAxioms(t *testing.T) {
	checkMetricAxioms(t, "euclidean", Euclidean, genVector(3))
}

func TestManhattanMetricAxioms(t *testing.T) {
	checkMetricAxioms(t, "manhattan", Manhattan, genVector(4))
}

func TestChebyshevMetricAxioms(t *testing.T) {
	checkMetricAxioms(t, "chebyshev", Chebyshev, genVector(4))
}

func TestAngularDistanceMetricAxioms(t *testing.T) {
	checkMetricAxioms(t, "angular", AngularDistance, genVector(5))
}

func TestSquaredEuclideanViolatesTriangle(t *testing.T) {
	// Documented non-metric: (0)–(1)–(2) on a line violates the triangle
	// inequality under squared distances: 4 > 1+1.
	a, b, c := Vector{0}, Vector{2}, Vector{1}
	if SquaredEuclidean(a, b) <= SquaredEuclidean(a, c)+SquaredEuclidean(c, b) {
		t.Fatal("expected squared euclidean to violate the triangle inequality on 0,1,2")
	}
}

func TestDistanceDimensionMismatchPanics(t *testing.T) {
	for name, d := range map[string]Distance[Vector]{
		"euclidean": Euclidean, "squared": SquaredEuclidean,
		"manhattan": Manhattan, "chebyshev": Chebyshev,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on dimension mismatch", name)
				}
			}()
			d(Vector{1, 2}, Vector{1})
		}()
	}
}

func TestAngularDistanceRange(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := genVector(4)(rng), genVector(4)(rng)
		d := AngularDistance(a, b)
		return d >= 0 && d <= math.Pi+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAngularDistanceZeroVectors(t *testing.T) {
	zero := Vector{0, 0}
	if d := AngularDistance(zero, zero); d != 0 {
		t.Errorf("AngularDistance(0,0) = %v, want 0", d)
	}
	if d := AngularDistance(zero, Vector{1, 0}); !almostEqual(d, math.Pi/2, 1e-12) {
		t.Errorf("AngularDistance(0,x) = %v, want π/2", d)
	}
}

func TestAngularDistanceScaleInvariant(t *testing.T) {
	a, b := Vector{1, 2, 3}, Vector{-1, 0, 2}
	d1 := AngularDistance(a, b)
	scaled := Vector{2, 4, 6}
	if d2 := AngularDistance(scaled, b); !almostEqual(d1, d2, 1e-12) {
		t.Errorf("AngularDistance not scale invariant: %v vs %v", d1, d2)
	}
}

func TestAngularDistanceAntipodal(t *testing.T) {
	if d := AngularDistance(Vector{1, 0}, Vector{-1, 0}); !almostEqual(d, math.Pi, 1e-12) {
		t.Errorf("antipodal angular distance = %v, want π", d)
	}
}

func TestVectorNormAndDot(t *testing.T) {
	v := Vector{3, 4}
	if n := v.Norm(); !almostEqual(n, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", n)
	}
	if d := v.Dot(Vector{1, 2}); !almostEqual(d, 11, 1e-12) {
		t.Errorf("Dot = %v, want 11", d)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestVectorStringRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := genVector(3)(rng)
		parsed, err := ParseVector(v.String())
		if err != nil {
			t.Logf("parse error: %v", err)
			return false
		}
		if len(parsed) != len(v) {
			return false
		}
		for i := range v {
			if v[i] != parsed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseVectorErrors(t *testing.T) {
	for _, bad := range []string{"", "1,,2", "a,b", "1;2"} {
		if _, err := ParseVector(bad); err == nil {
			t.Errorf("ParseVector(%q): expected error", bad)
		}
	}
}

func TestParseVectorWhitespace(t *testing.T) {
	v, err := ParseVector(" 1.5 , -2 ,3e2 ")
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{1.5, -2, 300}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("ParseVector = %v, want %v", v, want)
		}
	}
}
