package metric

import (
	"fmt"
	"math"
	"reflect"
)

// Batched squared-distance kernels for the GMM and SMM hot loops.
//
// Farthest-first selection and nearest-center assignment only compare
// distances with one another, and x ↦ √x is monotone, so the inner
// loops can run entirely on squared Euclidean distances and take the
// square root once at the boundary where a real distance is reported
// (Radius, LastDist, the SMM phase thresholds). That removes one
// math.Sqrt per point/center pair — the only transcendental in the
// loop — plus the indirect Distance call and the pointer chase through
// scattered []Vector rows.
//
// All Euclidean sums in this package — Euclidean, SquaredEuclidean, and
// every batched kernel — share one canonical summation order, the
// four-lane order of sqDist: coordinate j of each aligned block of four
// feeds lane j (blocks in index order), leftover coordinates feed lane
// 0, and the total is (s0+s1) + (s2+s3). Dimensions below four reduce
// to the plain in-order sum. Go never
// reassociates floating-point arithmetic on its own, so the scalar
// functions and the dimension-specialized kernels produce bit-identical
// squares, and the fast paths built on them make exactly the same
// selections as the generic code (see the equivalence tests and fuzz
// targets in this package, internal/coreset, and internal/streamalg).
// The four independent lanes also break the floating-point add
// dependency chain, which is what lets the kernels saturate the machine
// instead of waiting ~4 cycles per coordinate.

// SqDist returns the squared Euclidean distance between two rows,
// bit-identical to SquaredEuclidean on the same coordinates (both
// evaluate the canonical four-lane sum). It panics on mismatched
// lengths with the same diagnostics as Euclidean.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: euclidean distance of vectors with mismatched dimensions %d and %d", len(a), len(b)))
	}
	return sqDist(a, b)
}

// sqDist is SqDist for callers that have already matched the lengths.
func sqDist(a, b []float64) float64 {
	b = b[:len(a)]
	switch len(a) {
	case 0:
		return 0
	case 1:
		d0 := a[0] - b[0]
		return d0 * d0
	case 2:
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		return d0*d0 + d1*d1
	case 3:
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		d2 := a[2] - b[2]
		return d0*d0 + d1*d1 + d2*d2
	default:
		var s0, s1, s2, s3 float64
		i := 0
		for ; i+4 <= len(a); i += 4 {
			d0 := a[i] - b[i]
			d1 := a[i+1] - b[i+1]
			d2 := a[i+2] - b[i+2]
			d3 := a[i+3] - b[i+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		for ; i < len(a); i++ {
			d := a[i] - b[i]
			s0 += d * d
		}
		return (s0 + s1) + (s2 + s3)
	}
}

// RelaxMinSqRange is one blocked farthest-first relaxation pass over
// rows [lo, hi): for each row i it computes the squared distance to the
// center at row c, lowers minSq[i] (recording assign[i] = sel on a
// strict improvement, so ties stay on the earliest-selected center),
// and tracks the row maximizing the relaxed minSq, scanning ascending
// with a strict '>' so ties keep the lowest index — exactly the generic
// GMM scan's bookkeeping, run on squares. next/nextSq seed the running
// maximum — callers pass the sentinel matching the generic scan they
// mirror — and the final (next, nextSq) is returned: the farthest
// remaining point (the traversal's next center) and its squared
// distance, whose square root is the clustering radius after the last
// pass.
//
// The 8-dimensional kernel additionally unrolls four rows per step:
// the independent lane sums of neighbouring rows overlap in the
// pipeline, which is worth ~20% on top of the lane split.
//
// At d ≥ BlockedMinDim the squared distances come from the norm-trick
// blocked tier (blocked.go): within the documented error envelope of
// the difference form rather than bit-identical to it, exactly 0 on
// exact duplicates, and exact (hence bit-identical) on integer-valued
// inputs. Below the threshold nothing changes.
func (p *Points) RelaxMinSqRange(lo, hi, c, sel int, minSq []float64, assign []int, next int, nextSq float64) (int, float64) {
	if lo >= hi {
		return next, nextSq
	}
	d := p.dim
	data := p.data
	_ = minSq[hi-1]
	_ = assign[hi-1]
	switch d {
	case 2:
		c0, c1 := data[2*c], data[2*c+1]
		for i := lo; i < hi; i++ {
			d0 := c0 - data[2*i]
			d1 := c1 - data[2*i+1]
			sq := d0*d0 + d1*d1
			m := minSq[i]
			if sq < m {
				m = sq
				minSq[i] = sq
				assign[i] = sel
			}
			if m > nextSq {
				next, nextSq = i, m
			}
		}
	case 3:
		c0, c1, c2 := data[3*c], data[3*c+1], data[3*c+2]
		for i := lo; i < hi; i++ {
			row := data[3*i : 3*i+3]
			d0 := c0 - row[0]
			d1 := c1 - row[1]
			d2 := c2 - row[2]
			sq := d0*d0 + d1*d1 + d2*d2
			m := minSq[i]
			if sq < m {
				m = sq
				minSq[i] = sq
				assign[i] = sel
			}
			if m > nextSq {
				next, nextSq = i, m
			}
		}
	case 8:
		center := data[8*c : 8*c+8]
		c0, c1, c2, c3 := center[0], center[1], center[2], center[3]
		c4, c5, c6, c7 := center[4], center[5], center[6], center[7]
		i := lo
		for ; i+4 <= hi; i += 4 {
			row := data[8*i : 8*i+32]
			d0 := c0 - row[0]
			d1 := c1 - row[1]
			d2 := c2 - row[2]
			d3 := c3 - row[3]
			s0 := d0 * d0
			s1 := d1 * d1
			s2 := d2 * d2
			s3 := d3 * d3
			d4 := c4 - row[4]
			d5 := c5 - row[5]
			d6 := c6 - row[6]
			d7 := c7 - row[7]
			s0 += d4 * d4
			s1 += d5 * d5
			s2 += d6 * d6
			s3 += d7 * d7
			sqA := (s0 + s1) + (s2 + s3)
			d0 = c0 - row[8]
			d1 = c1 - row[9]
			d2 = c2 - row[10]
			d3 = c3 - row[11]
			s0 = d0 * d0
			s1 = d1 * d1
			s2 = d2 * d2
			s3 = d3 * d3
			d4 = c4 - row[12]
			d5 = c5 - row[13]
			d6 = c6 - row[14]
			d7 = c7 - row[15]
			s0 += d4 * d4
			s1 += d5 * d5
			s2 += d6 * d6
			s3 += d7 * d7
			sqB := (s0 + s1) + (s2 + s3)
			d0 = c0 - row[16]
			d1 = c1 - row[17]
			d2 = c2 - row[18]
			d3 = c3 - row[19]
			s0 = d0 * d0
			s1 = d1 * d1
			s2 = d2 * d2
			s3 = d3 * d3
			d4 = c4 - row[20]
			d5 = c5 - row[21]
			d6 = c6 - row[22]
			d7 = c7 - row[23]
			s0 += d4 * d4
			s1 += d5 * d5
			s2 += d6 * d6
			s3 += d7 * d7
			sqC := (s0 + s1) + (s2 + s3)
			d0 = c0 - row[24]
			d1 = c1 - row[25]
			d2 = c2 - row[26]
			d3 = c3 - row[27]
			s0 = d0 * d0
			s1 = d1 * d1
			s2 = d2 * d2
			s3 = d3 * d3
			d4 = c4 - row[28]
			d5 = c5 - row[29]
			d6 = c6 - row[30]
			d7 = c7 - row[31]
			s0 += d4 * d4
			s1 += d5 * d5
			s2 += d6 * d6
			s3 += d7 * d7
			sqD := (s0 + s1) + (s2 + s3)
			m := minSq[i]
			if sqA < m {
				m = sqA
				minSq[i] = sqA
				assign[i] = sel
			}
			if m > nextSq {
				next, nextSq = i, m
			}
			m = minSq[i+1]
			if sqB < m {
				m = sqB
				minSq[i+1] = sqB
				assign[i+1] = sel
			}
			if m > nextSq {
				next, nextSq = i+1, m
			}
			m = minSq[i+2]
			if sqC < m {
				m = sqC
				minSq[i+2] = sqC
				assign[i+2] = sel
			}
			if m > nextSq {
				next, nextSq = i+2, m
			}
			m = minSq[i+3]
			if sqD < m {
				m = sqD
				minSq[i+3] = sqD
				assign[i+3] = sel
			}
			if m > nextSq {
				next, nextSq = i+3, m
			}
		}
		for ; i < hi; i++ {
			row := data[8*i : 8*i+8]
			d0 := c0 - row[0]
			d1 := c1 - row[1]
			d2 := c2 - row[2]
			d3 := c3 - row[3]
			s0 := d0 * d0
			s1 := d1 * d1
			s2 := d2 * d2
			s3 := d3 * d3
			d4 := c4 - row[4]
			d5 := c5 - row[5]
			d6 := c6 - row[6]
			d7 := c7 - row[7]
			s0 += d4 * d4
			s1 += d5 * d5
			s2 += d6 * d6
			s3 += d7 * d7
			sq := (s0 + s1) + (s2 + s3)
			m := minSq[i]
			if sq < m {
				m = sq
				minSq[i] = sq
				assign[i] = sel
			}
			if m > nextSq {
				next, nextSq = i, m
			}
		}
	default:
		if d >= BlockedMinDim {
			return p.blockedRelaxRange(lo, hi, c, sel, minSq, assign, next, nextSq)
		}
		center := data[c*d : c*d+d]
		for i := lo; i < hi; i++ {
			sq := sqDist(center, data[i*d:i*d+d])
			m := minSq[i]
			if sq < m {
				m = sq
				minSq[i] = sq
				assign[i] = sel
			}
			if m > nextSq {
				next, nextSq = i, m
			}
		}
	}
	return next, nextSq
}

// MinSq returns the minimum squared distance between q and the stored
// rows, with the index of the closest row; ties break toward the lowest
// index, matching MinDistance. It returns (+Inf, -1) on an empty store
// and panics when q disagrees with the store's dimension, exactly as
// the generic scan panics inside Euclidean.
func (p *Points) MinSq(q []float64) (float64, int) {
	best := math.Inf(1)
	bestIdx := -1
	if p.n == 0 {
		return best, bestIdx
	}
	if len(q) != p.dim {
		panic(fmt.Sprintf("metric: euclidean distance of vectors with mismatched dimensions %d and %d", len(q), p.dim))
	}
	d := p.dim
	data := p.data
	for i := 0; i < p.n; i++ {
		if sq := sqDist(q, data[i*d:i*d+d]); sq < best {
			best = sq
			bestIdx = i
		}
	}
	return best, bestIdx
}

// euclideanPC is the entry point of Euclidean, the identity the fast
// paths recognize.
var euclideanPC = reflect.ValueOf(Euclidean).Pointer()

// IsEuclidean reports whether d is this package's Euclidean function
// (possibly rebound through a Distance[Vector] variable, like the
// root package's divmax.Euclidean). Wrappers and closures — counting
// instrumentation, test shims — are deliberately not recognized, so
// they always take the generic path. Algorithms use it to dispatch to
// the squared-distance kernels; a false negative only costs speed,
// never correctness.
func IsEuclidean[P any](d Distance[P]) bool {
	return d != nil && reflect.ValueOf(d).Pointer() == euclideanPC
}
