package mrdiv

import (
	"fmt"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/mapreduce"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

// tagged carries a point together with the partition it came from, so the
// third round can route each coherent-subset pair back to the reducer
// holding the partition that contains its kernel point.
type tagged[P any] struct {
	pt   P
	part int
}

func liftDistance[P any](d metric.Distance[P]) metric.Distance[tagged[P]] {
	return func(a, b tagged[P]) float64 { return d(a.pt, b.pt) }
}

// genPiece is a round-1 output record: one generalized core-set pair plus
// the kernel radius of the partition that produced it (the maximum over
// partitions becomes the instantiation δ of round 3).
type genPiece[P any] struct {
	pair   coreset.Weighted[tagged[P]]
	radius float64
}

// ThreeRound runs the 3-round MapReduce algorithm of Theorem 10 for the
// injective-proxy problems, with local memory Θ(√((α²/ε)^D·k·n)) instead
// of TwoRound's Θ(k·√((1/ε)^D·n)):
//
//	round 1: each partition S_i computes a generalized core-set
//	         GMM-GEN(S_i, k, k′) of s(T_i) ≤ k′ pairs;
//	round 2: one reducer aggregates T = ∪T_i and extracts a coherent
//	         subset T̂ ⊑ T with m(T̂) = k via the multiplicity-aware
//	         sequential solver (Fact 2);
//	round 3: each pair (p, m_p) ∈ T̂ is routed to the reducer holding
//	         the partition with p ∈ S_i, which picks m_p distinct
//	         delegates within the core-set radius r_T of p.
//
// The returned solution has min(k, |pts|) points.
func ThreeRound[P any](m diversity.Measure, pts []P, k int, cfg Config, d metric.Distance[P]) ([]P, error) {
	if !m.NeedsInjectiveProxy() {
		return nil, fmt.Errorf("mrdiv: ThreeRound applies to the injective-proxy problems, not %v; use TwoRound", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("mrdiv: k must be >= 1, got %d", k)
	}
	if err := cfg.validate(k); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, nil
	}
	td := liftDistance(d)

	// Tag each point with its partition so later rounds can route pairs.
	// The driver retains the partitions, modelling each reducer's local
	// storage between round 1 and round 3.
	scattered := scatter(cfg, pts)
	in := make([]mapreduce.Pair[int, tagged[P]], len(scattered))
	partitions := make(map[int][]P, cfg.Parallelism)
	for i, pr := range scattered {
		in[i] = mapreduce.Pair[int, tagged[P]]{Key: pr.Key, Value: tagged[P]{pt: pr.Value, part: pr.Key}}
		partitions[pr.Key] = append(partitions[pr.Key], pr.Value)
	}

	// Round 1: generalized core-set pairs per partition, each carrying
	// the partition's kernel radius.
	round1 := mapreduce.Run(in,
		func(part int, local []tagged[P]) []mapreduce.Pair[int, genPiece[P]] {
			res := coreset.GMM(local, cfg.KPrime, 0, td)
			gen := coreset.GMMGen(local, k, cfg.KPrime, 0, td)
			out := make([]mapreduce.Pair[int, genPiece[P]], len(gen))
			for i, w := range gen {
				out[i] = mapreduce.Pair[int, genPiece[P]]{Key: 0, Value: genPiece[P]{pair: w, radius: res.Radius}}
			}
			return out
		},
		mapreduce.Options{Name: "gen-coreset", Workers: cfg.Workers, LocalMemoryLimit: cfg.LocalMemoryLimit, Metrics: cfg.Metrics})

	// Shuffle: the aggregating reducer's δ is the max partition radius.
	delta := 0.0
	for _, pc := range round1 {
		if pc.Value.radius > delta {
			delta = pc.Value.radius
		}
	}

	// Round 2: aggregate T, extract the coherent subset T̂ with m(T̂)=k,
	// and route each selected pair back to its origin partition.
	round2 := mapreduce.Run(round1,
		func(_ int, pieces []genPiece[P]) []mapreduce.Pair[int, coreset.Weighted[tagged[P]]] {
			agg := make(coreset.Generalized[tagged[P]], len(pieces))
			for i, pc := range pieces {
				agg[i] = pc.pair
			}
			sub := sequential.SolveGeneralized(m, agg, k, td)
			out := make([]mapreduce.Pair[int, coreset.Weighted[tagged[P]]], len(sub))
			for i, w := range sub {
				out[i] = mapreduce.Pair[int, coreset.Weighted[tagged[P]]]{Key: w.Point.part, Value: w}
			}
			return out
		},
		mapreduce.Options{Name: "coherent-solve", Workers: cfg.Workers, LocalMemoryLimit: cfg.LocalMemoryLimit, Metrics: cfg.Metrics})

	// Round 3: per-partition instantiation of the routed pairs. Hall's
	// condition guarantees a feasible assignment at δ = kernel radius; the
	// greedy realization very occasionally needs slack, so a failed fill
	// retries with a doubled δ (diversity loss stays bounded by Lemma 7
	// with the enlarged δ). Errors are collected per partition: keys are
	// distinct, so the slice is written race-free.
	errByPart := make([]error, cfg.Parallelism)
	round3 := mapreduce.Run(round2,
		func(part int, pairs []coreset.Weighted[tagged[P]]) []mapreduce.Pair[int, P] {
			local := make(coreset.Generalized[P], len(pairs))
			for i, w := range pairs {
				local[i] = coreset.Weighted[P]{Point: w.Point.pt, Mult: w.Mult}
			}
			var inst []P
			var err error
			for attempt, dl := 0, delta+1e-12; attempt < 3; attempt, dl = attempt+1, dl*2 {
				if inst, err = coreset.Instantiate(local, partitions[part], dl, d); err == nil {
					break
				}
			}
			if err != nil {
				errByPart[part] = err
				return nil
			}
			out := make([]mapreduce.Pair[int, P], len(inst))
			for i, p := range inst {
				out[i] = mapreduce.Pair[int, P]{Key: 0, Value: p}
			}
			return out
		},
		mapreduce.Options{Name: "instantiate", Workers: cfg.Workers, LocalMemoryLimit: cfg.LocalMemoryLimit, Metrics: cfg.Metrics})
	for part, err := range errByPart {
		if err != nil {
			return nil, fmt.Errorf("mrdiv: round-3 instantiation failed on partition %d: %w", part, err)
		}
	}

	sol := make([]P, len(round3))
	for i, p := range round3 {
		sol[i] = p.Value
	}
	return sol, nil
}
