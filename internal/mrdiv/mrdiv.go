// Package mrdiv implements the paper's MapReduce diversity-maximization
// algorithms on top of the internal/mapreduce engine:
//
//   - TwoRound — the deterministic 2-round algorithm of Theorem 6
//     (GMM or GMM-EXT composable core-sets per partition, then one
//     reducer runs the sequential α-approximation on the union);
//   - TwoRound with a delegate cap — the randomized variant of
//     Theorem 7 (random-key partitioning plus Θ(max{log n, k/ℓ})
//     delegates per cluster);
//   - ThreeRound — the generalized-core-set algorithm of Theorem 10
//     (GMM-GEN, a coherent-subset solve, and a per-partition delegate
//     instantiation round);
//   - Recursive — the multi-round algorithm of Theorem 8 for local
//     memories too small for a single aggregation.
package mrdiv

import (
	"fmt"
	"math"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/mapreduce"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

// Partitioning selects how round 1 distributes points to reducers.
type Partitioning int

const (
	// PartitionRoundRobin deals points round-robin (the "arbitrary
	// partition" of Theorem 6; statistically equivalent to random for
	// unordered inputs, and deterministic).
	PartitionRoundRobin Partitioning = iota
	// PartitionRandom assigns each point a uniform random reducer keyed
	// by Config.Seed (Theorem 7's random keys).
	PartitionRandom
	// PartitionChunks splits the input into contiguous chunks. With
	// spatially sorted inputs this is the paper's adversarial
	// partitioning (§7.2): each reducer sees a small-volume region.
	PartitionChunks
)

// Config tunes the MapReduce drivers.
type Config struct {
	// Parallelism ℓ is the number of round-1 reducers (partitions).
	Parallelism int
	// KPrime is the per-partition kernel size k′ ≥ k.
	KPrime int
	// Partitioning selects the round-1 data distribution.
	Partitioning Partitioning
	// Seed drives PartitionRandom.
	Seed int64
	// DelegateCap, when positive, caps per-cluster delegates (the
	// randomized variant of Theorem 7); 0 means the deterministic k−1.
	// Ignored by measures that do not use delegates.
	DelegateCap int
	// Workers bounds concurrently executing reducers (0 = NumCPU).
	Workers int
	// LocalMemoryLimit, when positive, is the per-reducer M_L budget in
	// points (input + output); violations are recorded per round in
	// Metrics (mapreduce.Stats.LimitViolations). Use divmax.MemoryBound
	// to size it from the theory.
	LocalMemoryLimit int
	// Metrics, when non-nil, accumulates per-round statistics.
	Metrics *mapreduce.Metrics
}

func (c Config) validate(k int) error {
	if c.Parallelism < 1 {
		return fmt.Errorf("mrdiv: parallelism must be >= 1, got %d", c.Parallelism)
	}
	if c.KPrime < k {
		return fmt.Errorf("mrdiv: k' (%d) must be at least k (%d)", c.KPrime, k)
	}
	return nil
}

// scatter distributes points to round-1 reducers per the configured
// partitioning. (A free function because Go methods cannot take type
// parameters.)
func scatter[P any](cfg Config, pts []P) []mapreduce.Pair[int, P] {
	switch cfg.Partitioning {
	case PartitionRandom:
		return mapreduce.ScatterSeeded(pts, cfg.Parallelism, cfg.Seed)
	case PartitionChunks:
		return mapreduce.ScatterChunks(pts, cfg.Parallelism)
	default:
		return mapreduce.Scatter(pts, cfg.Parallelism)
	}
}

// RandomizedDelegateCap returns the per-cluster delegate budget
// Θ(max{log n, k/ℓ}) of Theorem 7.
func RandomizedDelegateCap(n, k, ell int) int {
	logn := int(math.Ceil(math.Log2(float64(n + 1))))
	perPart := (k + ell - 1) / ell
	if logn > perPart {
		return logn
	}
	return perPart
}

// TwoRound runs the 2-round MapReduce algorithm (Theorem 6) and returns
// the final solution of min(k, |pts|) points. Round 1 builds a composable
// core-set on each partition: GMM(k′) for remote-edge/-cycle, or
// GMM-EXT(k, k′) for the injective-proxy measures (optionally capped for
// the randomized variant). Round 2 aggregates the union in one reducer
// and runs the sequential α-approximation.
func TwoRound[P any](m diversity.Measure, pts []P, k int, cfg Config, d metric.Distance[P]) ([]P, error) {
	if k < 1 {
		return nil, fmt.Errorf("mrdiv: k must be >= 1, got %d", k)
	}
	core, err := CollectCoreset(m, pts, k, cfg, d)
	if err != nil || len(core) == 0 {
		return nil, err
	}
	return SolveCoresets(m, [][]P{core}, k, cfg, d)
}

// SolveCoresets runs only round 2 of TwoRound on composable core-sets
// built elsewhere — round-1 partitions, CollectCoreset outputs, or the
// per-shard SMM/SMM-EXT core-sets of a streaming service: the union is
// aggregated in a single reducer which runs the sequential
// α-approximation. Composability (Theorems 4–5) guarantees the result is
// within α+ε of the optimum over the union of the original inputs, no
// matter how the data was split. Only Workers, LocalMemoryLimit, and
// Metrics are read from cfg; the round is recorded under the name
// "solve".
//
// For remote-clique on the Euclidean-over-Vector fast path — the one
// measure whose sequential solver is Ω(n²) in distance evaluations —
// the reducer builds the union's solve engine once (sequential.Engine:
// a DistMatrix filled in parallel across cfg.Workers goroutines within
// the memory budget, streamed row-block tiles beyond it, gated on the
// machine actually having cores to scan with; see sequential.AutoEngine)
// and runs the sharded engine solver, which selects a bit-identical
// solution for any worker count. The other measures run the O(n·k)
// farthest-first traversal, which dispatches to the flat kernels on its
// own without paying a matrix fill.
func SolveCoresets[P any](m diversity.Measure, coresets [][]P, k int, cfg Config, d metric.Distance[P]) ([]P, error) {
	if k < 1 {
		return nil, fmt.Errorf("mrdiv: k must be >= 1, got %d", k)
	}
	var union []mapreduce.Pair[int, P]
	for _, core := range coresets {
		for _, p := range core {
			union = append(union, mapreduce.Pair[int, P]{Key: 0, Value: p})
		}
	}
	if len(union) == 0 {
		return nil, nil
	}
	final := mapreduce.Run(union,
		func(_ int, core []P) []mapreduce.Pair[int, P] {
			var sol []P
			if m == diversity.RemoteClique {
				if e := sequential.AutoEngine(core, d, cfg.Workers); e != nil {
					sol = sequential.SolveEngine(m, core, e, k)
				}
			}
			if sol == nil {
				sol = sequential.Solve(m, core, k, d)
			}
			out := make([]mapreduce.Pair[int, P], len(sol))
			for i, p := range sol {
				out[i] = mapreduce.Pair[int, P]{Key: 0, Value: p}
			}
			return out
		},
		mapreduce.Options{Name: "solve", Workers: cfg.Workers, LocalMemoryLimit: cfg.LocalMemoryLimit, Metrics: cfg.Metrics})

	sol := make([]P, len(final))
	for i, p := range final {
		sol[i] = p.Value
	}
	return sol, nil
}

// CollectCoreset runs only round 1 of TwoRound and returns the aggregated
// composable core-set (used by experiments that evaluate core-set quality
// directly, and by Recursive).
func CollectCoreset[P any](m diversity.Measure, pts []P, k int, cfg Config, d metric.Distance[P]) ([]P, error) {
	if err := cfg.validate(k); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, nil
	}
	delegateCap := k - 1
	if m.NeedsInjectiveProxy() && cfg.DelegateCap > 0 {
		delegateCap = cfg.DelegateCap
	}
	union := mapreduce.Run(scatter(cfg, pts),
		func(part int, local []P) []mapreduce.Pair[int, P] {
			var core []P
			if m.NeedsInjectiveProxy() {
				core = coreset.GMMExtCapped(local, k, cfg.KPrime, delegateCap, 0, d)
			} else {
				core = coreset.GMM(local, cfg.KPrime, 0, d).Points
			}
			out := make([]mapreduce.Pair[int, P], len(core))
			for i, p := range core {
				out[i] = mapreduce.Pair[int, P]{Key: 0, Value: p}
			}
			return out
		},
		mapreduce.Options{Name: "coreset", Workers: cfg.Workers, LocalMemoryLimit: cfg.LocalMemoryLimit, Metrics: cfg.Metrics})
	out := make([]P, len(union))
	for i, p := range union {
		out[i] = p.Value
	}
	return out, nil
}
