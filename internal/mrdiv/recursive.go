package mrdiv

import (
	"fmt"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/mapreduce"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

// Recursive runs the multi-round MapReduce algorithm of Theorem 8: when
// the aggregated core-set exceeds the local memory budget, the core-set
// construction is reapplied to it, shrinking the data geometrically until
// one reducer can hold it; the sequential α-approximation then finishes.
// memBudget is M_L in points: both the partition size of every round and
// the size at which aggregation stops. It returns the solution and the
// number of MapReduce rounds used (core-set rounds plus the final solve).
func Recursive[P any](m diversity.Measure, pts []P, k int, memBudget int, cfg Config, d metric.Distance[P]) ([]P, int, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("mrdiv: k must be >= 1, got %d", k)
	}
	if cfg.KPrime < k {
		return nil, 0, fmt.Errorf("mrdiv: k' (%d) must be at least k (%d)", cfg.KPrime, k)
	}
	// The per-partition core-set must be strictly smaller than the
	// partition for the recursion to shrink.
	coreSize := cfg.KPrime
	if m.NeedsInjectiveProxy() {
		coreSize = cfg.KPrime * k
	}
	if memBudget <= 2*coreSize {
		return nil, 0, fmt.Errorf("mrdiv: memory budget %d too small for core-sets of size %d; Theorem 8 requires M_L = Ω(k'·n^γ)", memBudget, coreSize)
	}
	if len(pts) == 0 {
		return nil, 0, nil
	}

	current := pts
	rounds := 0
	const maxRounds = 64 // termination backstop; shrinkage is geometric
	for len(current) > memBudget && rounds < maxRounds {
		ell := (len(current) + memBudget - 1) / memBudget
		levelCfg := cfg
		levelCfg.Parallelism = ell
		union := mapreduce.Run(scatter(levelCfg, current),
			func(part int, local []P) []mapreduce.Pair[int, P] {
				var core []P
				if m.NeedsInjectiveProxy() {
					core = coreset.GMMExt(local, k, cfg.KPrime, 0, d)
				} else {
					core = coreset.GMM(local, cfg.KPrime, 0, d).Points
				}
				out := make([]mapreduce.Pair[int, P], len(core))
				for i, p := range core {
					out[i] = mapreduce.Pair[int, P]{Key: 0, Value: p}
				}
				return out
			},
			mapreduce.Options{Name: fmt.Sprintf("coreset-level-%d", rounds+1), Workers: cfg.Workers, LocalMemoryLimit: cfg.LocalMemoryLimit, Metrics: cfg.Metrics})
		next := make([]P, len(union))
		for i, p := range union {
			next[i] = p.Value
		}
		if len(next) >= len(current) {
			// No shrinkage (pathological parameters); stop recursing.
			current = next
			break
		}
		current = next
		rounds++
	}

	// Final round: one reducer solves sequentially.
	final := mapreduce.Run(mapreduce.Scatter(current, 1),
		func(_ int, core []P) []mapreduce.Pair[int, P] {
			sol := sequential.Solve(m, core, k, d)
			out := make([]mapreduce.Pair[int, P], len(sol))
			for i, p := range sol {
				out[i] = mapreduce.Pair[int, P]{Key: 0, Value: p}
			}
			return out
		},
		mapreduce.Options{Name: "solve", Workers: cfg.Workers, LocalMemoryLimit: cfg.LocalMemoryLimit, Metrics: cfg.Metrics})
	rounds++

	sol := make([]P, len(final))
	for i, p := range final {
		sol[i] = p.Value
	}
	return sol, rounds, nil
}
