package mrdiv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/diversity"
	"divmax/internal/mapreduce"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

func randomVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		pts[i] = v
	}
	return pts
}

func clusteredVectors(rng *rand.Rand, centers []metric.Vector, perCluster int, spread float64) []metric.Vector {
	var pts []metric.Vector
	for i := 0; i < perCluster; i++ {
		for _, c := range centers {
			p := make(metric.Vector, len(c))
			for j := range c {
				p[j] = c[j] + rng.Float64()*spread
			}
			pts = append(pts, p)
		}
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

func cfg(ell, kprime int) Config {
	return Config{Parallelism: ell, KPrime: kprime}
}

func TestTwoRoundValidation(t *testing.T) {
	pts := randomVectors(rand.New(rand.NewSource(1)), 10, 2)
	if _, err := TwoRound(diversity.RemoteEdge, pts, 0, cfg(2, 4), metric.Euclidean); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := TwoRound(diversity.RemoteEdge, pts, 3, cfg(0, 4), metric.Euclidean); err == nil {
		t.Error("parallelism=0: expected error")
	}
	if _, err := TwoRound(diversity.RemoteEdge, pts, 3, cfg(2, 2), metric.Euclidean); err == nil {
		t.Error("k'<k: expected error")
	}
}

func TestTwoRoundEmptyInput(t *testing.T) {
	sol, err := TwoRound(diversity.RemoteEdge, nil, 3, cfg(2, 4), metric.Euclidean)
	if err != nil || sol != nil {
		t.Fatalf("empty input = (%v, %v)", sol, err)
	}
}

func TestTwoRoundSolutionSize(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		k := 2 + rng.Intn(4)
		kprime := k + rng.Intn(4)
		ell := 1 + rng.Intn(4)
		pts := randomVectors(rng, n, 2)
		for _, m := range diversity.Measures {
			sol, err := TwoRound(m, pts, k, cfg(ell, kprime), metric.Euclidean)
			if err != nil {
				t.Logf("%v: %v (seed %d)", m, err, seed)
				return false
			}
			if len(sol) != k {
				t.Logf("%v: size %d, want %d (seed %d)", m, len(sol), k, seed)
				return false
			}
			// Solution points must come from the input.
			for _, q := range sol {
				if dist, _ := metric.MinDistance(q, pts, metric.Euclidean); dist != 0 {
					t.Logf("%v: solution point not in input (seed %d)", m, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTwoRoundWellSeparatedClustersExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	centers := []metric.Vector{{0, 0}, {1000, 0}, {0, 1000}, {1000, 1000}}
	pts := clusteredVectors(rng, centers, 50, 1.0)
	sol, err := TwoRound(diversity.RemoteEdge, pts, 4, cfg(4, 8), metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	val, _ := diversity.Evaluate(diversity.RemoteEdge, sol, metric.Euclidean)
	if val < 990 {
		t.Fatalf("remote-edge = %v, want ≥ 990 (one point per cluster)", val)
	}
}

func TestTwoRoundLossBoundAgainstBruteForce(t *testing.T) {
	// End-to-end sanity: MR solution within α·(small slack) of optimum on
	// brute-forceable instances. With ℓ partitions and k'=n/ℓ the
	// core-sets are lossless, so the only loss is the sequential α.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(4)
		k := 2 + rng.Intn(2)
		pts := randomVectors(rng, n, 2)
		for _, m := range diversity.Measures {
			sol, err := TwoRound(m, pts, k, cfg(2, n), metric.Euclidean)
			if err != nil {
				return false
			}
			got, _ := diversity.Evaluate(m, sol, metric.Euclidean)
			_, opt, _ := sequential.BruteForce(m, pts, k, metric.Euclidean)
			if got < opt/m.SequentialAlpha()-1e-9 {
				t.Logf("%v: got %v, opt %v (seed %d)", m, got, opt, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTwoRoundMetricsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomVectors(rng, 200, 2)
	var metrics mapreduce.Metrics
	c := cfg(4, 8)
	c.Metrics = &metrics
	if _, err := TwoRound(diversity.RemoteEdge, pts, 4, c, metric.Euclidean); err != nil {
		t.Fatal(err)
	}
	rounds := metrics.Rounds()
	if len(rounds) != 2 {
		t.Fatalf("recorded %d rounds, want 2", len(rounds))
	}
	if rounds[0].Reducers != 4 || rounds[1].Reducers != 1 {
		t.Fatalf("reducers = %d/%d, want 4/1", rounds[0].Reducers, rounds[1].Reducers)
	}
	// Round-1 local memory ≈ n/ℓ + k'; round-2 ≈ ℓ·k' + k.
	if rounds[0].MaxLocalMemory > 200/4+8+1 {
		t.Fatalf("round-1 ML = %d too large", rounds[0].MaxLocalMemory)
	}
	if rounds[1].TotalInput != 4*8 {
		t.Fatalf("round-2 input = %d, want 32", rounds[1].TotalInput)
	}
}

func TestTwoRoundLocalMemorySublinear(t *testing.T) {
	// Theorem 6's point: M_L ≪ n. With ℓ=√(n/k') the bound is ~√(k'n).
	rng := rand.New(rand.NewSource(6))
	n, k, kprime := 1024, 4, 8
	pts := randomVectors(rng, n, 2)
	ell := int(math.Sqrt(float64(n) / float64(kprime)))
	var metrics mapreduce.Metrics
	c := cfg(ell, kprime)
	c.Metrics = &metrics
	if _, err := TwoRound(diversity.RemoteEdge, pts, k, c, metric.Euclidean); err != nil {
		t.Fatal(err)
	}
	if ml := metrics.MaxLocalMemory(); ml >= n/2 {
		t.Fatalf("M_L = %d not sublinear in n = %d", ml, n)
	}
}

func TestTwoRoundRandomizedDelegateCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomVectors(rng, 400, 2)
	k, ell := 16, 4
	c := cfg(ell, 16)
	c.Partitioning = PartitionRandom
	c.Seed = 99
	c.DelegateCap = RandomizedDelegateCap(len(pts), k, ell)
	var metrics mapreduce.Metrics
	c.Metrics = &metrics
	sol, err := TwoRound(diversity.RemoteClique, pts, k, c, metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol) != k {
		t.Fatalf("solution size = %d, want %d", len(sol), k)
	}
	// The capped core-sets must be smaller than the deterministic ones:
	// cap+1 per cluster vs k per cluster.
	capped := metrics.Rounds()[1].TotalInput
	cDet := cfg(ell, 16)
	var mDet mapreduce.Metrics
	cDet.Metrics = &mDet
	if _, err := TwoRound(diversity.RemoteClique, pts, k, cDet, metric.Euclidean); err != nil {
		t.Fatal(err)
	}
	det := mDet.Rounds()[1].TotalInput
	if capped >= det {
		t.Fatalf("randomized core-set (%d) not smaller than deterministic (%d)", capped, det)
	}
}

func TestRandomizedDelegateCapFormula(t *testing.T) {
	// max{⌈log2(n+1)⌉, ⌈k/ℓ⌉}.
	if got := RandomizedDelegateCap(1023, 4, 4); got != 10 {
		t.Errorf("cap(1023,4,4) = %d, want 10", got)
	}
	if got := RandomizedDelegateCap(7, 100, 4); got != 25 {
		t.Errorf("cap(7,100,4) = %d, want 25", got)
	}
}

func TestCollectCoresetSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomVectors(rng, 300, 2)
	k, kprime, ell := 3, 6, 5
	plain, err := CollectCoreset(diversity.RemoteEdge, pts, k, cfg(ell, kprime), metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != ell*kprime {
		t.Fatalf("GMM union size = %d, want %d", len(plain), ell*kprime)
	}
	ext, err := CollectCoreset(diversity.RemoteTree, pts, k, cfg(ell, kprime), metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) < ell*kprime || len(ext) > ell*kprime*k {
		t.Fatalf("GMM-EXT union size = %d, want within [%d,%d]", len(ext), ell*kprime, ell*kprime*k)
	}
}

func TestSolveCoresetsValidation(t *testing.T) {
	if _, err := SolveCoresets(diversity.RemoteEdge, [][]metric.Vector{{{0, 0}}}, 0, cfg(1, 4), metric.Euclidean); err == nil {
		t.Error("k=0: expected error")
	}
	sol, err := SolveCoresets[metric.Vector](diversity.RemoteEdge, nil, 3, cfg(1, 4), metric.Euclidean)
	if err != nil || sol != nil {
		t.Fatalf("no core-sets = (%v, %v)", sol, err)
	}
}

func TestSolveCoresetsMatchesTwoRound(t *testing.T) {
	// Feeding round-1 core-sets built shard by shard into SolveCoresets
	// must reproduce TwoRound exactly: same union, same deterministic
	// sequential solve. This is the merge path the divmaxd shards use.
	rng := rand.New(rand.NewSource(10))
	pts := clusteredVectors(rng, []metric.Vector{{0, 0}, {900, 0}, {0, 900}}, 60, 5)
	k, kprime, ell := 3, 9, 4
	for _, m := range []diversity.Measure{diversity.RemoteEdge, diversity.RemoteClique} {
		direct, err := TwoRound(m, pts, k, cfg(ell, kprime), metric.Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the same per-partition core-sets one shard at a time.
		shards := make([][]metric.Vector, ell)
		for i := range shards {
			var local []metric.Vector
			for j := i; j < len(pts); j += ell {
				local = append(local, pts[j])
			}
			core, err := CollectCoreset(m, local, k, cfg(1, kprime), metric.Euclidean)
			if err != nil {
				t.Fatal(err)
			}
			shards[i] = core
		}
		merged, err := SolveCoresets(m, shards, k, cfg(ell, kprime), metric.Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		if len(merged) != len(direct) {
			t.Fatalf("%v: sizes differ: %d vs %d", m, len(merged), len(direct))
		}
		got, _ := diversity.Evaluate(m, merged, metric.Euclidean)
		want, _ := diversity.Evaluate(m, direct, metric.Euclidean)
		if got != want {
			t.Fatalf("%v: merged value %v, TwoRound value %v", m, got, want)
		}
	}
}

func TestSolveCoresetsMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomVectors(rng, 60, 2)
	core, err := CollectCoreset(diversity.RemoteEdge, pts, 3, cfg(2, 6), metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	var metrics mapreduce.Metrics
	c := cfg(2, 6)
	c.Metrics = &metrics
	if _, err := SolveCoresets(diversity.RemoteEdge, [][]metric.Vector{core}, 3, c, metric.Euclidean); err != nil {
		t.Fatal(err)
	}
	rounds := metrics.Rounds()
	if len(rounds) != 1 || rounds[0].Name != "solve" || rounds[0].Reducers != 1 {
		t.Fatalf("rounds = %+v, want one single-reducer solve round", rounds)
	}
}

func TestPartitioningModesAllWork(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomVectors(rng, 120, 2)
	for _, mode := range []Partitioning{PartitionRoundRobin, PartitionRandom, PartitionChunks} {
		c := cfg(3, 6)
		c.Partitioning = mode
		c.Seed = 11
		sol, err := TwoRound(diversity.RemoteEdge, pts, 3, c, metric.Euclidean)
		if err != nil || len(sol) != 3 {
			t.Errorf("mode %d: (%v, %v)", mode, sol, err)
		}
	}
}
