package mrdiv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/diversity"
	"divmax/internal/mapreduce"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

func TestThreeRoundRejectsNonInjective(t *testing.T) {
	pts := randomVectors(rand.New(rand.NewSource(1)), 20, 2)
	for _, m := range []diversity.Measure{diversity.RemoteEdge, diversity.RemoteCycle} {
		if _, err := ThreeRound(m, pts, 2, cfg(2, 4), metric.Euclidean); err == nil {
			t.Errorf("%v: expected error", m)
		}
	}
}

func TestThreeRoundEmptyAndValidation(t *testing.T) {
	sol, err := ThreeRound(diversity.RemoteClique, nil, 2, cfg(2, 4), metric.Euclidean)
	if err != nil || sol != nil {
		t.Fatalf("empty = (%v, %v)", sol, err)
	}
	pts := randomVectors(rand.New(rand.NewSource(2)), 20, 2)
	if _, err := ThreeRound(diversity.RemoteClique, pts, 0, cfg(2, 4), metric.Euclidean); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := ThreeRound(diversity.RemoteClique, pts, 3, cfg(2, 1), metric.Euclidean); err == nil {
		t.Error("k'<k: expected error")
	}
}

func TestThreeRoundSolutionSizeAndDistinctness(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(120)
		k := 2 + rng.Intn(4)
		kprime := k + rng.Intn(4)
		ell := 1 + rng.Intn(4)
		pts := randomVectors(rng, n, 2)
		for _, m := range []diversity.Measure{diversity.RemoteClique, diversity.RemoteStar, diversity.RemoteBipartition, diversity.RemoteTree} {
			sol, err := ThreeRound(m, pts, k, cfg(ell, kprime), metric.Euclidean)
			if err != nil {
				t.Logf("%v: %v (seed %d)", m, err, seed)
				return false
			}
			if len(sol) != k {
				t.Logf("%v: size %d, want %d (seed %d)", m, len(sol), k, seed)
				return false
			}
			for i := range sol {
				if dist, _ := metric.MinDistance(sol[i], pts, metric.Euclidean); dist != 0 {
					t.Logf("%v: point not from input (seed %d)", m, seed)
					return false
				}
				for j := i + 1; j < len(sol); j++ {
					if metric.Euclidean(sol[i], sol[j]) == 0 {
						t.Logf("%v: duplicate delegates (seed %d)", m, seed)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestThreeRoundQualityOnClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	centers := []metric.Vector{{0, 0}, {1000, 0}, {0, 1000}}
	pts := clusteredVectors(rng, centers, 60, 1.0)
	sol, err := ThreeRound(diversity.RemoteClique, pts, 3, cfg(3, 6), metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := diversity.Evaluate(diversity.RemoteClique, sol, metric.Euclidean)
	// Optimum ≈ 1000+1000+1000√2 ≈ 3414; α=2 allows ≥ ~1707.
	if got < 1700 {
		t.Fatalf("three-round clique = %v, want ≥ 1700", got)
	}
}

func TestThreeRoundComparableToTwoRound(t *testing.T) {
	// The 3-round algorithm saves memory; its quality must stay within a
	// constant of the 2-round algorithm.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomVectors(rng, 150, 2)
		k, kprime, ell := 4, 8, 3
		three, err := ThreeRound(diversity.RemoteClique, pts, k, cfg(ell, kprime), metric.Euclidean)
		if err != nil {
			return false
		}
		two, err := TwoRound(diversity.RemoteClique, pts, k, cfg(ell, kprime), metric.Euclidean)
		if err != nil {
			return false
		}
		v3, _ := diversity.Evaluate(diversity.RemoteClique, three, metric.Euclidean)
		v2, _ := diversity.Evaluate(diversity.RemoteClique, two, metric.Euclidean)
		return v3 >= v2/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestThreeRoundShufflesLessThanTwoRound(t *testing.T) {
	// The whole point of Theorem 10: the aggregation round receives k'
	// pairs per partition instead of k·k' delegates.
	rng := rand.New(rand.NewSource(6))
	pts := randomVectors(rng, 600, 2)
	k, kprime, ell := 8, 16, 4

	var m3, m2 mapreduce.Metrics
	c3 := cfg(ell, kprime)
	c3.Metrics = &m3
	if _, err := ThreeRound(diversity.RemoteClique, pts, k, c3, metric.Euclidean); err != nil {
		t.Fatal(err)
	}
	c2 := cfg(ell, kprime)
	c2.Metrics = &m2
	if _, err := TwoRound(diversity.RemoteClique, pts, k, c2, metric.Euclidean); err != nil {
		t.Fatal(err)
	}
	agg3 := m3.Rounds()[1].TotalInput // pairs entering the round-2 solve
	agg2 := m2.Rounds()[1].TotalInput // delegates entering the round-2 solve
	if agg3 >= agg2 {
		t.Fatalf("generalized aggregation (%d) not smaller than delegate aggregation (%d)", agg3, agg2)
	}
	if len(m3.Rounds()) != 3 || len(m2.Rounds()) != 2 {
		t.Fatalf("rounds = %d/%d, want 3/2", len(m3.Rounds()), len(m2.Rounds()))
	}
}

func TestRecursiveMatchesQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomVectors(rng, 400, 2)
	k, kprime := 3, 5
	sol, rounds, err := Recursive(diversity.RemoteEdge, pts, k, 60, cfg(1, kprime), metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol) != k {
		t.Fatalf("solution size = %d, want %d", len(sol), k)
	}
	if rounds < 2 {
		t.Fatalf("rounds = %d, want ≥ 2 (n=400 exceeds budget 60)", rounds)
	}
	// Quality: within a small factor of the single-machine sequential run.
	got, _ := diversity.Evaluate(diversity.RemoteEdge, sol, metric.Euclidean)
	seq := sequential.Solve(diversity.RemoteEdge, pts, k, metric.Euclidean)
	want, _ := diversity.Evaluate(diversity.RemoteEdge, seq, metric.Euclidean)
	if got < want/4 {
		t.Fatalf("recursive quality %v below a quarter of sequential %v", got, want)
	}
}

func TestRecursiveSmallInputSingleRound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomVectors(rng, 30, 2)
	sol, rounds, err := Recursive(diversity.RemoteEdge, pts, 3, 100, cfg(1, 5), metric.Euclidean)
	if err != nil || len(sol) != 3 {
		t.Fatalf("(%v, %v)", sol, err)
	}
	if rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (input fits in budget)", rounds)
	}
}

func TestRecursiveInjectiveMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomVectors(rng, 500, 2)
	k, kprime := 3, 4
	sol, rounds, err := Recursive(diversity.RemoteClique, pts, k, 80, cfg(1, kprime), metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol) != k || rounds < 2 {
		t.Fatalf("size=%d rounds=%d", len(sol), rounds)
	}
}

func TestRecursiveBudgetTooSmall(t *testing.T) {
	pts := randomVectors(rand.New(rand.NewSource(10)), 100, 2)
	if _, _, err := Recursive(diversity.RemoteEdge, pts, 3, 8, cfg(1, 5), metric.Euclidean); err == nil {
		t.Fatal("expected error for budget below core-set size")
	}
}

func TestRecursiveEmptyInput(t *testing.T) {
	sol, rounds, err := Recursive(diversity.RemoteEdge, nil, 3, 100, cfg(1, 5), metric.Euclidean)
	if err != nil || sol != nil || rounds != 0 {
		t.Fatalf("empty = (%v, %d, %v)", sol, rounds, err)
	}
}
