package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/diversity"
	"divmax/internal/mapreduce"
	"divmax/internal/metric"
	"divmax/internal/mrdiv"
	"divmax/internal/sequential"
)

func randomVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		pts[i] = v
	}
	return pts
}

func TestTwoRoundValidation(t *testing.T) {
	pts := randomVectors(rand.New(rand.NewSource(1)), 20, 2)
	if _, err := TwoRound(diversity.RemoteTree, pts, 3, Config{Parallelism: 2}, metric.Euclidean); err == nil {
		t.Error("unsupported measure: expected error")
	}
	if _, err := TwoRound(diversity.RemoteClique, pts, 0, Config{Parallelism: 2}, metric.Euclidean); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := TwoRound(diversity.RemoteClique, pts, 3, Config{}, metric.Euclidean); err == nil {
		t.Error("parallelism=0: expected error")
	}
	if sol, err := TwoRound(diversity.RemoteClique, nil, 3, Config{Parallelism: 2}, metric.Euclidean); err != nil || sol != nil {
		t.Errorf("empty input = (%v, %v)", sol, err)
	}
}

func TestAFZSolutionSizeAndQuality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(60)
		k := 2 + rng.Intn(3)
		ell := 1 + rng.Intn(3)
		pts := randomVectors(rng, n, 2)
		sol, err := TwoRound(diversity.RemoteClique, pts, k, Config{Parallelism: ell}, metric.Euclidean)
		if err != nil || len(sol) != k {
			t.Logf("(%v, %v) seed %d", sol, err, seed)
			return false
		}
		// AFZ is a constant-factor method: sanity-check against the
		// single-machine sequential solution.
		got, _ := diversity.Evaluate(diversity.RemoteClique, sol, metric.Euclidean)
		seq := sequential.Solve(diversity.RemoteClique, pts, k, metric.Euclidean)
		want, _ := diversity.Evaluate(diversity.RemoteClique, seq, metric.Euclidean)
		return got >= want/3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAFZCoresetSizeIsK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomVectors(rng, 200, 2)
	k, ell := 4, 4
	var m mapreduce.Metrics
	if _, err := TwoRound(diversity.RemoteClique, pts, k, Config{Parallelism: ell, Metrics: &m}, metric.Euclidean); err != nil {
		t.Fatal(err)
	}
	rounds := m.Rounds()
	if len(rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rounds))
	}
	if rounds[0].TotalOutput != ell*k {
		t.Fatalf("AFZ aggregate size = %d, want ℓ·k = %d", rounds[0].TotalOutput, ell*k)
	}
}

func TestAFZRemoteEdgeEqualsGMMKernel(t *testing.T) {
	// For remote-edge, AFZ ≡ CPPU with k′=k: identical round-1 core-sets.
	rng := rand.New(rand.NewSource(4))
	pts := randomVectors(rng, 120, 2)
	k, ell := 3, 2
	afz, err := TwoRound(diversity.RemoteEdge, pts, k, Config{Parallelism: ell}, metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	cppu, err := mrdiv.TwoRound(diversity.RemoteEdge, pts, k, mrdiv.Config{Parallelism: ell, KPrime: k}, metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	vA, _ := diversity.Evaluate(diversity.RemoteEdge, afz, metric.Euclidean)
	vC, _ := diversity.Evaluate(diversity.RemoteEdge, cppu, metric.Euclidean)
	if vA != vC {
		t.Fatalf("AFZ (%v) and CPPU k'=k (%v) differ on remote-edge", vA, vC)
	}
}

func TestAFZSweepCapBoundsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomVectors(rng, 300, 2)
	capped, err := TwoRound(diversity.RemoteClique, pts, 4, Config{Parallelism: 2, MaxSweeps: 1}, metric.Euclidean)
	if err != nil || len(capped) != 4 {
		t.Fatalf("(%v, %v)", capped, err)
	}
	full, err := TwoRound(diversity.RemoteClique, pts, 4, Config{Parallelism: 2}, metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	vCap, _ := diversity.Evaluate(diversity.RemoteClique, capped, metric.Euclidean)
	vFull, _ := diversity.Evaluate(diversity.RemoteClique, full, metric.Euclidean)
	if vFull < vCap-1e-9 {
		t.Fatalf("more local-search sweeps decreased quality: %v -> %v", vCap, vFull)
	}
}
