package baseline

import (
	"fmt"
	"math"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/sequential"
	"divmax/internal/streamalg"
)

// BlockCoreset is the prior streaming approach the paper improves on
// (Section 4, citing Indyk et al., PODS'14): buffer the stream in blocks
// of size b, compute a composable core-set of size k from each full
// block, and keep the union of the per-block core-sets. With b = √(kn)
// the memory is Θ(√(kn)) — growing with the stream length n, which is
// precisely the dependence the paper's SMM constructions remove
// (Θ((1/ε)^D·k) regardless of n).
//
// It serves as the comparison baseline for the memory ablation benches;
// per-block core-sets use GMM(k), the [23] construction for remote-edge.
type BlockCoreset[P any] struct {
	k, blockSize int
	d            metric.Distance[P]
	buf          []P
	union        []P
	processed    int64
}

// NewBlockCoreset returns a block-streaming core-set builder. blockSize
// should be √(k·n) for the intended stream length n (OptimalBlockSize);
// it panics if k < 1 or blockSize < k.
func NewBlockCoreset[P any](k, blockSize int, d metric.Distance[P]) *BlockCoreset[P] {
	if k < 1 || blockSize < k {
		panic(fmt.Sprintf("baseline: NewBlockCoreset requires 1 <= k <= blockSize, got k=%d blockSize=%d", k, blockSize))
	}
	return &BlockCoreset[P]{k: k, blockSize: blockSize, d: d}
}

// OptimalBlockSize returns ⌈√(k·n)⌉, the block size minimizing the
// method's peak memory b + (n/b)·k for a stream of n points.
func OptimalBlockSize(k, n int) int {
	if k < 1 || n < 1 {
		panic(fmt.Sprintf("baseline: OptimalBlockSize requires k >= 1 and n >= 1, got k=%d n=%d", k, n))
	}
	b := int(math.Ceil(math.Sqrt(float64(k) * float64(n))))
	if b < k {
		b = k
	}
	return b
}

// Process consumes the next stream point.
func (bc *BlockCoreset[P]) Process(p P) {
	bc.processed++
	bc.buf = append(bc.buf, p)
	if len(bc.buf) == bc.blockSize {
		bc.flush()
	}
}

func (bc *BlockCoreset[P]) flush() {
	if len(bc.buf) == 0 {
		return
	}
	res := coreset.GMM(bc.buf, bc.k, 0, bc.d)
	bc.union = append(bc.union, res.Points...)
	bc.buf = bc.buf[:0]
}

// Result returns the union of the per-block core-sets, including a
// core-set of the current partial block. The builder remains usable.
func (bc *BlockCoreset[P]) Result() []P {
	out := make([]P, len(bc.union))
	copy(out, bc.union)
	if len(bc.buf) > 0 {
		res := coreset.GMM(bc.buf, bc.k, 0, bc.d)
		out = append(out, res.Points...)
	}
	return out
}

// StoredPoints reports current memory use in points: the open block plus
// the accumulated union — Θ(√(kn)) at the optimal block size, versus the
// n-independent memory of streamalg.SMM.
func (bc *BlockCoreset[P]) StoredPoints() int { return len(bc.buf) + len(bc.union) }

// Processed returns the number of stream points consumed.
func (bc *BlockCoreset[P]) Processed() int64 { return bc.processed }

// BlockStreamingSolve runs the full block-streaming baseline: one pass
// accumulating per-block core-sets, then the sequential α-approximation
// on the union.
func BlockStreamingSolve[P any](m diversity.Measure, stream streamalg.Stream[P], k, blockSize int, d metric.Distance[P]) []P {
	bc := NewBlockCoreset(k, blockSize, d)
	stream(bc.Process)
	return sequential.Solve(m, bc.Result(), k, d)
}
