// Package baseline implements the state-of-the-art competitor the paper
// compares against in Table 4: the composable core-sets of Aghamolaei,
// Farhadi, and Zarrabi-Zadeh ("Diversity maximization via composable
// coresets", CCCG 2015), dubbed AFZ. For remote-clique, AFZ builds each
// partition's core-set by local search — a size-k solution improved by
// 1-swaps until convergence — whose running time is superlinear in the
// partition size; this is exactly the cost Table 4 measures against the
// paper's GMM-based construction (CPPU). For remote-edge, AFZ's
// construction coincides with GMM with k′ = k, so the comparison is
// uninteresting (as the paper notes) and CPPU with k′=k stands in for it.
//
// No AFZ code was ever released; like the paper's authors, we
// reimplement it ("Since no code was available for AFZ, we implemented
// it in MapReduce with the same optimizations used for CPPU").
package baseline

import (
	"fmt"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/mapreduce"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

// Config tunes the AFZ MapReduce pipeline; it mirrors mrdiv.Config minus
// k′ (AFZ core-sets always have exactly k points per partition).
type Config struct {
	// Parallelism ℓ is the number of round-1 reducers.
	Parallelism int
	// Workers bounds concurrently executing reducers (0 = NumCPU).
	Workers int
	// MaxSweeps bounds local-search iterations (0 = run to convergence,
	// the faithful-and-slow configuration).
	MaxSweeps int
	// Metrics, when non-nil, accumulates per-round statistics.
	Metrics *mapreduce.Metrics
}

// CliqueCoreset computes one partition's AFZ core-set for remote-clique:
// the local-search solution of size k, run the way AFZ states it — while
// *any* 1-swap improves the objective, apply it (first improvement), with
// each candidate's gain recomputed in O(k) distance evaluations. The
// number of applied swaps is not polynomially bounded without AFZ's
// (1+ε/k) improvement threshold, and in practice grows superlinearly
// with the partition size — the cost Table 4 measures. An
// O(1)-per-candidate, best-improvement variant with cached contributions
// exists as sequential.LocalSearchClique; it is not used here because the
// comparison targets AFZ as published. maxSweeps (≤ 0 = default) caps the
// applied swaps as a termination backstop.
func CliqueCoreset[P any](pts []P, k int, maxSweeps int, d metric.Distance[P]) []P {
	if k < 1 {
		panic(fmt.Sprintf("baseline: CliqueCoreset requires k >= 1, got %d", k))
	}
	n := len(pts)
	if k >= n {
		out := make([]P, n)
		copy(out, pts)
		return out
	}
	const safetyLimit = 100000
	if maxSweeps <= 0 || maxSweeps > safetyLimit {
		maxSweeps = safetyLimit
	}
	inSol := make([]bool, n)
	sol := make([]int, k)
	for i := 0; i < k; i++ {
		inSol[i] = true
		sol[i] = i
	}
	// gain recomputes the swap delta from scratch: remove sol[si], add j.
	gain := func(si, j int) float64 {
		out := sol[si]
		var delta float64
		for _, s := range sol {
			if s == out {
				continue
			}
			delta += d(pts[j], pts[s]) - d(pts[out], pts[s])
		}
		return delta
	}
	swaps := 0
	for swaps < maxSweeps {
		improved := false
	scan:
		for si := range sol {
			for j := 0; j < n; j++ {
				if inSol[j] {
					continue
				}
				if gain(si, j) > 1e-12 {
					inSol[sol[si]] = false
					inSol[j] = true
					sol[si] = j
					swaps++
					improved = true
					break scan // restart the scan after every applied swap
				}
			}
		}
		if !improved {
			break
		}
	}
	out := make([]P, k)
	for i, j := range sol {
		out[i] = pts[j]
	}
	return out
}

// TwoRound runs the AFZ 2-round MapReduce pipeline for remote-clique or
// remote-edge: round 1 computes each partition's AFZ core-set (local
// search for remote-clique, GMM(k) for remote-edge), round 2 aggregates
// the ℓ·k points and runs the same sequential α-approximation CPPU uses,
// so the comparison isolates the core-set constructions.
func TwoRound[P any](m diversity.Measure, pts []P, k int, cfg Config, d metric.Distance[P]) ([]P, error) {
	switch m {
	case diversity.RemoteClique, diversity.RemoteEdge:
	default:
		return nil, fmt.Errorf("baseline: AFZ is implemented for remote-clique and remote-edge, not %v", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: k must be >= 1, got %d", k)
	}
	if cfg.Parallelism < 1 {
		return nil, fmt.Errorf("baseline: parallelism must be >= 1, got %d", cfg.Parallelism)
	}
	if len(pts) == 0 {
		return nil, nil
	}

	union := mapreduce.Run(mapreduce.Scatter(pts, cfg.Parallelism),
		func(part int, local []P) []mapreduce.Pair[int, P] {
			var core []P
			if m == diversity.RemoteClique {
				core = CliqueCoreset(local, k, cfg.MaxSweeps, d)
			} else {
				core = coreset.GMM(local, k, 0, d).Points
			}
			out := make([]mapreduce.Pair[int, P], len(core))
			for i, p := range core {
				out[i] = mapreduce.Pair[int, P]{Key: 0, Value: p}
			}
			return out
		},
		mapreduce.Options{Name: "afz-coreset", Workers: cfg.Workers, Metrics: cfg.Metrics})

	final := mapreduce.Run(union,
		func(_ int, core []P) []mapreduce.Pair[int, P] {
			sol := sequential.Solve(m, core, k, d)
			out := make([]mapreduce.Pair[int, P], len(sol))
			for i, p := range sol {
				out[i] = mapreduce.Pair[int, P]{Key: 0, Value: p}
			}
			return out
		},
		mapreduce.Options{Name: "afz-solve", Workers: cfg.Workers, Metrics: cfg.Metrics})

	sol := make([]P, len(final))
	for i, p := range final {
		sol[i] = p.Value
	}
	return sol, nil
}
