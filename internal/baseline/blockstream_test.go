package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/streamalg"
)

func TestOptimalBlockSize(t *testing.T) {
	if b := OptimalBlockSize(4, 10000); b != 200 {
		t.Errorf("OptimalBlockSize(4,10000) = %d, want 200", b)
	}
	// Never below k.
	if b := OptimalBlockSize(50, 10); b < 50 {
		t.Errorf("OptimalBlockSize(50,10) = %d, want >= 50", b)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on k=0")
		}
	}()
	OptimalBlockSize(0, 10)
}

func TestBlockCoresetStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomVectors(rng, 1000, 2)
	k, block := 4, 100
	bc := NewBlockCoreset(k, block, metric.Euclidean)
	for _, p := range pts {
		bc.Process(p)
	}
	// 10 full blocks × k points each.
	if got := len(bc.Result()); got != 10*k {
		t.Fatalf("union size = %d, want %d", got, 10*k)
	}
	if bc.Processed() != 1000 {
		t.Fatalf("processed = %d", bc.Processed())
	}
}

func TestBlockCoresetPartialBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomVectors(rng, 150, 2)
	bc := NewBlockCoreset(3, 100, metric.Euclidean)
	for _, p := range pts {
		bc.Process(p)
	}
	// One full block (3 points) + partial block core-set (3 points).
	if got := len(bc.Result()); got != 6 {
		t.Fatalf("union size = %d, want 6", got)
	}
	// Result is non-destructive.
	if got := len(bc.Result()); got != 6 {
		t.Fatalf("second Result = %d, want 6", got)
	}
}

func TestBlockCoresetMemoryGrowsWithN(t *testing.T) {
	// The baseline's defining weakness: memory Θ(√(kn)) grows with the
	// stream, while SMM's stays flat. This is the paper's Section 4
	// motivation, verified empirically.
	rng := rand.New(rand.NewSource(3))
	k := 4
	peakAt := func(n int) (int, int) {
		block := OptimalBlockSize(k, n)
		bc := NewBlockCoreset(k, block, metric.Euclidean)
		smm := streamalg.NewSMM(k, 4*k, metric.Euclidean)
		peakBlock, peakSMM := 0, 0
		for _, p := range randomVectors(rng, n, 2) {
			bc.Process(p)
			smm.Process(p)
			if m := bc.StoredPoints(); m > peakBlock {
				peakBlock = m
			}
			if m := smm.StoredPoints(); m > peakSMM {
				peakSMM = m
			}
		}
		return peakBlock, peakSMM
	}
	block1, smm1 := peakAt(1000)
	block2, smm2 := peakAt(16000)
	if float64(block2) < 2.5*float64(block1) {
		t.Errorf("block-streaming memory should grow ≈4× for 16× the data: %d -> %d", block1, block2)
	}
	if smm2 > 2*smm1+4 {
		t.Errorf("SMM memory should stay flat: %d -> %d", smm1, smm2)
	}
	if block2 <= smm2 {
		t.Errorf("block-streaming (%d) should use more memory than SMM (%d) at n=16000", block2, smm2)
	}
}

func TestBlockStreamingSolveQuality(t *testing.T) {
	// On well-separated clusters both streaming methods find the planted
	// structure; block streaming is the quality reference (its aggregate
	// core-set is larger).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		centers := []metric.Vector{{0, 0}, {1000, 0}, {0, 1000}}
		var pts []metric.Vector
		for i := 0; i < 300; i++ {
			c := centers[i%3]
			pts = append(pts, metric.Vector{c[0] + rng.Float64(), c[1] + rng.Float64()})
		}
		rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		sol := BlockStreamingSolve(diversity.RemoteEdge, streamalg.SliceStream(pts), 3,
			OptimalBlockSize(3, len(pts)), metric.Euclidean)
		v, _ := diversity.Evaluate(diversity.RemoteEdge, sol, metric.Euclidean)
		return v > 990
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBlockCoresetPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBlockCoreset[metric.Vector](0, 10, metric.Euclidean) },
		func() { NewBlockCoreset[metric.Vector](5, 4, metric.Euclidean) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBlockVsSMMComparableQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomVectors(rng, 4000, 2)
	k := 6
	block := BlockStreamingSolve(diversity.RemoteEdge, streamalg.SliceStream(pts), k,
		OptimalBlockSize(k, len(pts)), metric.Euclidean)
	smm := streamalg.OnePass(diversity.RemoteEdge, streamalg.SliceStream(pts), k, 8*k, metric.Euclidean)
	vb, _ := diversity.Evaluate(diversity.RemoteEdge, block, metric.Euclidean)
	vs, _ := diversity.Evaluate(diversity.RemoteEdge, smm, metric.Euclidean)
	if math.Min(vb, vs) < 0.5*math.Max(vb, vs) {
		t.Fatalf("methods diverge too much: block=%v smm=%v", vb, vs)
	}
}
