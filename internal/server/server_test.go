package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"divmax"
	"divmax/internal/sequential"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// tryIngest and tryQuery return errors instead of failing the test, so
// they are safe to call from worker goroutines (t.Fatal must only run on
// the test goroutine).
func tryIngest(url string, pts []divmax.Vector) (ingestResponse, error) {
	var out ingestResponse
	body, err := json.Marshal(ingestRequest{Points: pts})
	if err != nil {
		return out, err
	}
	resp, err := http.Post(url+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("ingest: status %d", resp.StatusCode)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

func tryQuery(url string, k int, m divmax.Measure) (queryResponse, error) {
	var out queryResponse
	resp, err := http.Get(fmt.Sprintf("%s/query?k=%d&measure=%s", url, k, m))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("query: status %d", resp.StatusCode)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

func postIngest(t *testing.T, url string, pts []divmax.Vector) ingestResponse {
	t.Helper()
	out, err := tryIngest(url, pts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func getQuery(t *testing.T, url string, k int, m divmax.Measure) queryResponse {
	t.Helper()
	out, err := tryQuery(url, k, m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var out statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func clusterPoints(rng *rand.Rand, centers []divmax.Vector, perCluster int, spread float64) []divmax.Vector {
	var pts []divmax.Vector
	for i := 0; i < perCluster; i++ {
		for _, c := range centers {
			p := make(divmax.Vector, len(c))
			for j := range c {
				p[j] = c[j] + rng.Float64()*spread
			}
			pts = append(pts, p)
		}
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

func TestMergedShardsStayInEnvelope(t *testing.T) {
	// The shard-merge quality contract: for every measure, the merged
	// per-shard core-set solution must land in the same neighbourhood the
	// repo's integration test demands of every offline pipeline — at
	// least half the sequential value on well-separated clusters.
	rng := rand.New(rand.NewSource(99))
	pts := clusterPoints(rng, []divmax.Vector{{0, 0}, {800, 0}, {0, 800}, {800, 800}, {400, 400}}, 60, 10)
	k := 5

	_, ts := newTestServer(t, Config{Shards: 4, MaxK: k, KPrime: 15, Buffer: 8})
	for i := 0; i < len(pts); i += 50 {
		end := i + 50
		if end > len(pts) {
			end = len(pts)
		}
		postIngest(t, ts.URL, pts[i:end])
	}

	for _, m := range divmax.Measures {
		_, seqVal := divmax.MaxDiversity(m, pts, k, divmax.Euclidean)
		got := getQuery(t, ts.URL, k, m)
		if got.Processed != int64(len(pts)) {
			t.Fatalf("%v: processed %d, want %d", m, got.Processed, len(pts))
		}
		if len(got.Solution) != k {
			t.Fatalf("%v: solution size %d, want %d", m, len(got.Solution), k)
		}
		val, _ := divmax.Evaluate(m, got.Solution, divmax.Euclidean)
		if val < seqVal/2 {
			t.Errorf("%v: merged value %v below half of sequential %v", m, val, seqVal)
		}
		if got.Value != val {
			t.Errorf("%v: reported value %v, recomputed %v", m, got.Value, val)
		}
	}
}

func TestParallelIngestAndQuery(t *testing.T) {
	// The -race contract: writers hammering /ingest while readers hammer
	// /query and /stats must be free of data races and every response
	// must be well-formed.
	rng := rand.New(rand.NewSource(7))
	pts := clusterPoints(rng, []divmax.Vector{{0, 0}, {500, 0}, {0, 500}}, 80, 5)

	_, ts := newTestServer(t, Config{Shards: 3, MaxK: 4, KPrime: 12, Buffer: 4})

	const writers, readers, batches = 4, 4, 10
	batch := len(pts) / (writers * batches)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				off := (w*batches + b) * batch
				if _, err := tryIngest(ts.URL, pts[off:off+batch]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			m := divmax.Measures[r%len(divmax.Measures)]
			for i := 0; i < 5; i++ {
				got, err := tryQuery(ts.URL, 3, m)
				if err != nil {
					t.Error(err)
					return
				}
				if len(got.Solution) > 3 {
					t.Errorf("query returned %d points for k=3", len(got.Solution))
				}
				if resp, err := http.Get(ts.URL + "/stats"); err != nil {
					t.Error(err)
					return
				} else {
					resp.Body.Close()
				}
			}
		}(r)
	}
	wg.Wait()

	// The query first: its snapshot requests queue behind every batch the
	// writers enqueued, so once it returns the shards have processed
	// everything and the stats counters are settled.
	final := getQuery(t, ts.URL, 3, divmax.RemoteEdge)
	want := int64(writers * batches * batch)
	if final.Processed != want {
		t.Fatalf("processed %d, want %d", final.Processed, want)
	}
	if len(final.Solution) != 3 {
		t.Fatalf("final solution size %d, want 3", len(final.Solution))
	}
	stats := getStats(t, ts.URL)
	if stats.IngestedTotal != want {
		t.Fatalf("ingested %d, want %d", stats.IngestedTotal, want)
	}
}

func TestDrainProcessesEverythingThenRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := clusterPoints(rng, []divmax.Vector{{0, 0}, {100, 100}}, 50, 1)

	srv, err := New(Config{Shards: 2, MaxK: 3, KPrime: 6, Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postIngest(t, ts.URL, pts)
	srv.Close()
	srv.Close() // idempotent

	var total int64
	for _, sh := range srv.shards {
		total += sh.ingested.Load()
	}
	if total != int64(len(pts)) {
		t.Fatalf("drained %d points, want %d", total, len(pts))
	}

	body, _ := json.Marshal(ingestRequest{Points: pts[:1]})
	resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest after Close: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/query?k=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query after Close: status %d, want 503", resp.StatusCode)
	}
	stats := getStats(t, ts.URL)
	if !stats.Draining {
		t.Fatal("stats does not report draining after Close")
	}
}

func TestConfigValidation(t *testing.T) {
	// An explicit kprime below maxk is a configuration error, not
	// something to silently rewrite; 0 takes the 4*maxk default.
	if _, err := New(Config{MaxK: 16, KPrime: 10}); err == nil {
		t.Error("kprime < maxk: expected error")
	}
	srv, err := New(Config{MaxK: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.Config().KPrime; got != 64 {
		t.Errorf("defaulted kprime = %d, want 64", got)
	}
}

func TestIngestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 3, KPrime: 6})

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"points": [[1,2], [3]]}`); code != http.StatusBadRequest {
		t.Errorf("mixed dimensions: status %d, want 400", code)
	}
	if code := post(`{"points": [[]]}`); code != http.StatusBadRequest {
		t.Errorf("zero-dimensional point: status %d, want 400", code)
	}
	if code := post(`not json`); code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", code)
	}
	if code := post(`{"points": [[1,2]]}{"points": [[3,4]]}`); code != http.StatusBadRequest {
		t.Errorf("concatenated bodies: status %d, want 400", code)
	}
	if code := post(`{"points": [[1,2]]}`); code != http.StatusOK {
		t.Errorf("valid ingest: status %d, want 200", code)
	}
	if code := post(`{"points": [[1,2,3]]}`); code != http.StatusBadRequest {
		t.Errorf("dimension change across requests: status %d, want 400", code)
	}

	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: status %d, want 405", resp.StatusCode)
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 3, KPrime: 6})

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/query?k=0"); code != http.StatusBadRequest {
		t.Errorf("k=0: status %d, want 400", code)
	}
	if code := get("/query?k=4"); code != http.StatusBadRequest {
		t.Errorf("k>maxk: status %d, want 400", code)
	}
	if code := get("/query?measure=nope"); code != http.StatusBadRequest {
		t.Errorf("bad measure: status %d, want 400", code)
	}

	// Query on an empty server: well-formed, empty solution. Remote-edge
	// matters here: it evaluates to +Inf on fewer than 2 points, which
	// the handler must report as 0 (JSON cannot encode non-finite
	// numbers).
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		got := getQuery(t, ts.URL, 2, m)
		if len(got.Solution) != 0 || got.Processed != 0 || got.Value != 0 {
			t.Errorf("%v: empty server query = %+v, want empty with value 0", m, got)
		}
	}

	// k=1 on a populated server: min-based measures are degenerate on a
	// single point and must also report value 0, not an empty body.
	postIngest(t, ts.URL, []divmax.Vector{{0, 0}, {5, 5}})
	got := getQuery(t, ts.URL, 1, divmax.RemoteEdge)
	if len(got.Solution) != 1 || got.Value != 0 {
		t.Errorf("k=1 query = %+v, want 1 point with value 0", got)
	}
}

func TestQueryDefaultsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 4, KPrime: 8})
	postIngest(t, ts.URL, []divmax.Vector{{0, 0}, {1, 0}, {0, 1}, {5, 5}, {9, 2}})

	// No parameters: k defaults to MaxK, measure to remote-edge.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.K != 4 || got.Measure != divmax.RemoteEdge.String() {
		t.Errorf("defaults = (k=%d, measure=%s), want (4, remote-edge)", got.K, got.Measure)
	}
	if len(got.Solution) != 4 {
		t.Errorf("solution size %d, want 4", len(got.Solution))
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", hr.StatusCode)
	}
}

func TestStatsReportBatchSizes(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 4})
	rng := rand.New(rand.NewSource(31))
	// Two ingests of 20 points (2 clusters × 10) over 2 shards: each
	// shard sees 2 batches of 10 points.
	for r := 0; r < 2; r++ {
		postIngest(t, ts.URL, clusterPoints(rng, []divmax.Vector{{0, 0}, {50, 50}}, 10, 1))
	}
	// A query drains the shard channels (snapshot requests are answered
	// in order after the buffered batches), so the counters are settled.
	getQuery(t, ts.URL, 2, divmax.RemoteEdge)
	stats := getStats(t, ts.URL)
	for _, sh := range stats.Shards {
		if sh.Batches != 2 || sh.Ingested != 20 {
			t.Fatalf("shard %d: %d batches of %d points, want 2 of 20", sh.ID, sh.Batches, sh.Ingested)
		}
		if sh.LastBatch != 10 {
			t.Fatalf("shard %d: last_batch %d, want 10", sh.ID, sh.LastBatch)
		}
		if sh.AvgBatch != 10 {
			t.Fatalf("shard %d: avg_batch %v, want 10", sh.ID, sh.AvgBatch)
		}
	}
}

// TestStatsReportSolveWorkersAndTiledSolves pins the new solver
// telemetry: solve_workers reflects the configured (or defaulted)
// round-2 parallelism, and tiled_solves counts exactly the solves that
// ran through the tiled engine — forced here by shrinking the matrix
// budget below the merged union, which must not change any answer.
func TestStatsReportSolveWorkersAndTiledSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := clusterPoints(rng, []divmax.Vector{{0, 0}, {300, 0}, {0, 300}}, 30, 5)

	srvDefault, tsDefault := newTestServer(t, Config{Shards: 2, MaxK: 4, KPrime: 8})
	if got := srvDefault.Config().SolveWorkers; got < 1 {
		t.Fatalf("defaulted SolveWorkers = %d, want >= 1", got)
	}
	postIngest(t, tsDefault.URL, pts)
	matrixAnswer := getQuery(t, tsDefault.URL, 4, divmax.RemoteClique)
	stats := getStats(t, tsDefault.URL)
	if stats.SolveWorkers != srvDefault.Config().SolveWorkers {
		t.Fatalf("stats solve_workers = %d, want %d", stats.SolveWorkers, srvDefault.Config().SolveWorkers)
	}
	if stats.TiledSolves != 0 {
		t.Fatalf("tiled_solves = %d under the default budget, want 0", stats.TiledSolves)
	}
	if stats.CachedMatrixBytes <= 0 {
		t.Fatal("no retained matrix under the default budget")
	}

	// Force every merged union past the matrix budget: solves now run
	// tiled — counted, matrix-free, and bit-identical.
	origBudget := sequential.MatrixBudget
	sequential.MatrixBudget = 8
	t.Cleanup(func() { sequential.MatrixBudget = origBudget })
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 4, KPrime: 8, SolveWorkers: 3})
	postIngest(t, ts.URL, pts)
	tiledAnswer := getQuery(t, ts.URL, 4, divmax.RemoteClique)
	if !reflect.DeepEqual(tiledAnswer.Solution, matrixAnswer.Solution) {
		t.Fatalf("tiled solve answer %v differs from matrix solve %v", tiledAnswer.Solution, matrixAnswer.Solution)
	}
	getQuery(t, ts.URL, 4, divmax.RemoteClique) // memo hit: must not re-solve
	getQuery(t, ts.URL, 3, divmax.RemoteClique) // same state, new k: one more tiled solve
	stats = getStats(t, ts.URL)
	if stats.SolveWorkers != 3 {
		t.Fatalf("stats solve_workers = %d, want 3", stats.SolveWorkers)
	}
	if stats.TiledSolves != 2 {
		t.Fatalf("tiled_solves = %d, want 2 (two distinct (measure,k) solves)", stats.TiledSolves)
	}
	if stats.CachedMatrixBytes != 0 {
		t.Fatalf("cached_matrix_bytes = %d in tiled mode, want 0", stats.CachedMatrixBytes)
	}
}

// TestPooledBuffersDoNotAliasRetainedPoints guards the buffer recycling
// on the ingest path: shards retain accepted points indefinitely, so a
// recycled decode or batch buffer that still referenced them would let a
// later request corrupt the stored core-set. Every queried solution
// point must be bit-identical to some ingested point.
func TestPooledBuffersDoNotAliasRetainedPoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 3, MaxK: 4})
	seen := make(map[[2]float64]bool)
	rng := rand.New(rand.NewSource(33))
	// Many small sequential requests maximize pool reuse.
	for r := 0; r < 60; r++ {
		batch := make([]divmax.Vector, 5)
		for i := range batch {
			p := divmax.Vector{rng.Float64() * 1000, rng.Float64() * 1000}
			batch[i] = p
			seen[[2]float64{p[0], p[1]}] = true
		}
		postIngest(t, ts.URL, batch)
	}
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		res := getQuery(t, ts.URL, 4, m)
		if len(res.Solution) == 0 {
			t.Fatalf("%v: empty solution", m)
		}
		for _, p := range res.Solution {
			if len(p) != 2 || !seen[[2]float64{p[0], p[1]}] {
				t.Fatalf("%v: solution point %v was never ingested (buffer corruption?)", m, p)
			}
		}
	}
}

// TestStatsSplitCacheMissCauses covers the observability split of
// query_cache_misses: a cold miss (first query of a family, nothing
// cached yet) versus an invalidated miss (a shard accepted a batch
// since the cached merge), and the resolution counters — every miss
// ends as either a delta patch or a full rebuild, and a server with
// patching disabled (negative DeltaBudget) resolves every miss as a
// full rebuild.
func TestStatsSplitCacheMissCauses(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := clusterPoints(rng, []divmax.Vector{{0, 0}, {300, 300}}, 20, 5)

	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 4, KPrime: 8})
	postIngest(t, ts.URL, pts)
	getQuery(t, ts.URL, 3, divmax.RemoteEdge)   // cold: SMM family
	getQuery(t, ts.URL, 3, divmax.RemoteClique) // cold: SMM-EXT family
	st := getStats(t, ts.URL)
	if st.MissesCold != 2 || st.MissesInvalidated != 0 {
		t.Fatalf("after first queries: cold=%d invalidated=%d, want 2/0", st.MissesCold, st.MissesInvalidated)
	}
	if st.FullRebuilds != 2 || st.DeltaPatches != 0 {
		t.Fatalf("cold misses resolved as %d rebuilds / %d patches, want 2/0", st.FullRebuilds, st.DeltaPatches)
	}

	postIngest(t, ts.URL, clusterPoints(rng, []divmax.Vector{{900, 900}}, 6, 2))
	getQuery(t, ts.URL, 3, divmax.RemoteEdge) // stale: ingest invalidated
	getQuery(t, ts.URL, 3, divmax.RemoteEdge) // current again: a hit
	st = getStats(t, ts.URL)
	if st.MissesCold != 2 || st.MissesInvalidated != 1 {
		t.Fatalf("after ingest: cold=%d invalidated=%d, want 2/1", st.MissesCold, st.MissesInvalidated)
	}
	if st.CacheMisses != st.MissesCold+st.MissesInvalidated {
		t.Fatalf("total misses %d ≠ cold %d + invalidated %d", st.CacheMisses, st.MissesCold, st.MissesInvalidated)
	}
	if st.CacheMisses != st.DeltaPatches+st.FullRebuilds {
		t.Fatalf("misses %d ≠ patches %d + rebuilds %d", st.CacheMisses, st.DeltaPatches, st.FullRebuilds)
	}
	if st.CacheHits != 1 {
		t.Fatalf("hits = %d, want 1", st.CacheHits)
	}

	// Patching disabled: the same churn resolves every miss as a full
	// rebuild and reports no patches.
	_, off := newTestServer(t, Config{Shards: 2, MaxK: 4, KPrime: 8, DeltaBudget: -1})
	postIngest(t, off.URL, pts)
	getQuery(t, off.URL, 3, divmax.RemoteEdge)
	postIngest(t, off.URL, pts[:3])
	getQuery(t, off.URL, 3, divmax.RemoteEdge)
	ost := getStats(t, off.URL)
	if ost.DeltaPatches != 0 || ost.FullRebuilds != ost.CacheMisses || ost.MissesInvalidated != 1 {
		t.Fatalf("patching-disabled server: patches=%d rebuilds=%d misses=%d invalidated=%d",
			ost.DeltaPatches, ost.FullRebuilds, ost.CacheMisses, ost.MissesInvalidated)
	}
}

// TestQueryReportsPatched: the /query response must flag the query that
// repaired a stale cache incrementally, and only that query.
func TestQueryReportsPatched(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 4, KPrime: 8, DeltaBudget: 16})
	postIngest(t, ts.URL, clusterPoints(rng, []divmax.Vector{{0, 0}, {500, 500}}, 15, 4))
	cold := getQuery(t, ts.URL, 3, divmax.RemoteEdge)
	if cold.Cached || cold.Patched {
		t.Fatalf("cold query reported cached=%v patched=%v", cold.Cached, cold.Patched)
	}
	// Churn until a query reports a patch (absorbed batches patch with
	// empty deltas; grown core-sets patch with appends — either way the
	// flag must surface).
	patchedSeen := false
	for round := 0; round < 10 && !patchedSeen; round++ {
		postIngest(t, ts.URL, clusterPoints(rng, []divmax.Vector{{float64(10 * round), 250}}, 2, 1))
		q := getQuery(t, ts.URL, 3, divmax.RemoteEdge)
		if q.Cached && q.Patched {
			t.Fatal("query reported both cached and patched")
		}
		patchedSeen = patchedSeen || q.Patched
		again := getQuery(t, ts.URL, 3, divmax.RemoteEdge)
		if !again.Cached || again.Patched {
			t.Fatalf("repeat query reported cached=%v patched=%v", again.Cached, again.Patched)
		}
	}
	if !patchedSeen {
		st := getStats(t, ts.URL)
		t.Fatalf("no query reported patched across the churn (stats: %+v)", st)
	}
}
