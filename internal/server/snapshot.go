package server

import (
	"encoding/json"
	"net/http"

	"divmax"
	"divmax/internal/api"
)

// POST /v1/snapshot is the coordinator's round-1 fetch: this worker's
// merged core-set for one family, optionally incremental against the
// caller's previous view. It is the same per-shard snapshot fan-out the
// local query cache runs (snapshots in server.go), exposed over the
// wire so a coordinator can run the round-2 merge + solve itself — the
// paper's round-1/round-2 split made literal across processes.
//
// The cursor protocol mirrors divmax.CoresetDelta across the worker's
// shards: the response's cursor holds every shard's (generation,
// append-log position), and a request carrying it back gets a pure
// delta — only the points that joined any shard's core-set since — as
// long as NO shard restructured. A mixed round (some shards delta, some
// full) is re-fanned as a full round before answering: the delta
// replies hold deltas, not complete core-sets, so returning them
// alongside full ones would double- or under-count. A cursor of the
// wrong width (the worker restarted with a different shard count) is
// ignored rather than rejected — the caller just gets a full snapshot,
// which is also how it recovers.

// maxSnapshotBody bounds a /v1/snapshot request body (cursors are tiny).
const maxSnapshotBody = 1 << 20

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req api.SnapshotRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSnapshotBody))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "trailing data after the snapshot request")
		return
	}
	// The family names the core-set, not a measure: any measure of the
	// family solves over the same snapshot, so the representative
	// measure here only selects which per-shard processors answer.
	var m divmax.Measure
	switch req.Family {
	case "edge":
		m = divmax.RemoteEdge
	case "proxy":
		m = divmax.RemoteClique
	default:
		httpError(w, http.StatusBadRequest, "unknown core-set family %q (want \"edge\" or \"proxy\")", req.Family)
		return
	}
	ctx, cancel := requestCtx(r, s.cfg.QueryDeadline)
	defer cancel()

	var prev *mergeState
	if c := req.Cursor; c != nil && len(c.Gens) == len(s.shards) && len(c.Poss) == len(s.shards) {
		prev = &mergeState{gens: c.Gens, poss: c.Poss}
	}
	replies, err := s.snapshots(ctx, m, prev, false)
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	partial := prev != nil
	for _, rep := range replies {
		partial = partial && rep.delta.Partial
	}
	if prev != nil && !partial {
		if replies, err = s.snapshots(ctx, m, nil, false); err != nil {
			s.writeFailure(w, err)
			return
		}
	}
	resp := api.SnapshotResponse{
		Partial: partial,
		Points:  []divmax.Vector{},
		Shards:  len(s.shards),
		Cursor: api.SnapshotCursor{
			Gens: make([]uint64, len(replies)),
			Poss: make([]int, len(replies)),
		},
	}
	for i, rep := range replies {
		resp.Cursor.Gens[i] = rep.delta.Gen
		resp.Cursor.Poss[i] = rep.delta.Pos
		resp.Processed += rep.delta.Processed
		resp.Points = append(resp.Points, rep.delta.Points...)
	}
	writeJSON(w, resp)
}
