package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"testing"

	"divmax"
	"divmax/internal/api"
)

// Compat suite: the /v1 prefix and the legacy unversioned paths are the
// SAME handlers, so for any request whose answer does not depend on
// call order the two must return byte-identical bodies — status,
// content type, and raw payload. Order-sensitive responses (a cold
// /query solves, the repeat is a memo hit) are compared at a fixed
// point: after warming the memo, every further call is identical no
// matter which prefix it uses.

// rawGet and rawPost return status, content type, and the raw body.
func rawGet(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

func rawPost(t *testing.T, url, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), out
}

func assertSameResponse(t *testing.T, what string, s1, s2 int, ct1, ct2 string, b1, b2 []byte) {
	t.Helper()
	if s1 != s2 {
		t.Fatalf("%s: status %d via legacy vs %d via %s", what, s1, s2, api.Prefix)
	}
	if ct1 != ct2 {
		t.Fatalf("%s: content type %q vs %q", what, ct1, ct2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("%s: bodies differ:\nlegacy: %s\n%s:     %s", what, b1, api.Prefix, b2)
	}
}

func TestVersionedPathsAreByteIdenticalAliases(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 4, KPrime: 8})

	// Ingest: two identical batches (the response depends only on the
	// batch size and shard count).
	ingestBody := `{"points": [[0,0],[900,0],[0,900],[900,900],[450,450]]}`
	s1, ct1, b1 := rawPost(t, ts.URL+"/ingest", ingestBody)
	s2, ct2, b2 := rawPost(t, ts.URL+api.Prefix+"/ingest", ingestBody)
	assertSameResponse(t, "ingest", s1, s2, ct1, ct2, b1, b2)

	// More points so queries have something to chew on.
	postIngest(t, ts.URL, clusterPoints(rng, []divmax.Vector{{0, 0}, {900, 900}}, 10, 5))

	// Query: warm the (measure, k) memo with one cold call, then the
	// repeat calls are memo hits with identical bodies regardless of
	// prefix.
	getQuery(t, ts.URL, 3, divmax.RemoteEdge)
	q := "/query?k=3&measure=remote-edge"
	s2, ct2, b2 = rawGet(t, ts.URL+api.Prefix+q)
	s1, ct1, b1 = rawGet(t, ts.URL+q)
	assertSameResponse(t, "query", s1, s2, ct1, ct2, b1, b2)

	// Delete: never-ingested values classify as tombstones on both calls.
	deleteBody := `{"points": [[123456,-98765]]}`
	s1, ct1, b1 = rawPost(t, ts.URL+"/delete", deleteBody)
	s2, ct2, b2 = rawPost(t, ts.URL+api.Prefix+"/delete", deleteBody)
	assertSameResponse(t, "delete", s1, s2, ct1, ct2, b1, b2)

	// Stats: consecutive reads with no traffic in between.
	s1, ct1, b1 = rawGet(t, ts.URL+"/stats")
	s2, ct2, b2 = rawGet(t, ts.URL+api.Prefix+"/stats")
	assertSameResponse(t, "stats", s1, s2, ct1, ct2, b1, b2)

	// Healthz.
	s1, ct1, b1 = rawGet(t, ts.URL+"/healthz")
	s2, ct2, b2 = rawGet(t, ts.URL+api.Prefix+"/healthz")
	assertSameResponse(t, "healthz", s1, s2, ct1, ct2, b1, b2)
}

// TestVersionedErrorBodiesMatchLegacy pins the error surface: the same
// invalid request gets the same status and the same uniform envelope on
// both prefixes, for every failure class the handlers distinguish.
func TestVersionedErrorBodiesMatchLegacy(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 3, KPrime: 6})
	postIngest(t, ts.URL, []divmax.Vector{{0, 0}, {5, 5}})

	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"ingest bad json", "POST", "/ingest", `nope`, http.StatusBadRequest, api.CodeBadRequest},
		{"ingest wrong method", "GET", "/ingest", "", http.StatusMethodNotAllowed, api.CodeMethodNotAllowed},
		{"delete mixed dims", "POST", "/delete", `{"points": [[1],[2,3]]}`, http.StatusBadRequest, api.CodeBadRequest},
		{"delete wrong method", "GET", "/delete", "", http.StatusMethodNotAllowed, api.CodeMethodNotAllowed},
		{"query bad k", "GET", "/query?k=0", "", http.StatusBadRequest, api.CodeBadRequest},
		{"query bad measure", "GET", "/query?measure=zap", "", http.StatusBadRequest, api.CodeBadRequest},
		{"query wrong method", "POST", "/query", `{}`, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed},
		{"stats wrong method", "POST", "/stats", `{}`, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		do := func(prefix string) (int, string, []byte) {
			if tc.method == "POST" {
				return rawPost(t, ts.URL+prefix+tc.path, tc.body)
			}
			return rawGet(t, ts.URL+prefix+tc.path)
		}
		s1, ct1, b1 := do("")
		s2, ct2, b2 := do(api.Prefix)
		assertSameResponse(t, tc.name, s1, s2, ct1, ct2, b1, b2)
		if s1 != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, s1, tc.wantStatus)
		}
		var env api.ErrorEnvelope
		if err := json.Unmarshal(b1, &env); err != nil {
			t.Errorf("%s: body %q is not an error envelope: %v", tc.name, b1, err)
			continue
		}
		if env.Error.Code != tc.wantCode || env.Error.Message == "" {
			t.Errorf("%s: envelope %+v, want code %q with a message", tc.name, env, tc.wantCode)
		}
	}
}
