package server

import (
	"math"
	"reflect"
	"testing"

	"divmax"
	"divmax/internal/sequential"
)

// Unit coverage for the delta-aware memo reuse: warmStartValid must
// accept a stale farthest-first answer exactly when the cold solve over
// the patched union would reproduce it, and reject everything else.

// solveIdx runs the engine's farthest-first traversal over pts.
func solveIdx(t *testing.T, pts []divmax.Vector, k int) []int {
	t.Helper()
	e := sequential.BuildEngine(pts, divmax.Euclidean, 1)
	if e == nil {
		t.Fatalf("no engine over %d points", len(pts))
	}
	return sequential.SolveEngineIdx(divmax.RemoteEdge, e, k)
}

// patchedState builds a mergeState as the patch path would: prefix
// solved stale, delta appended after it.
func patchedState(prefix, delta []divmax.Vector) *mergeState {
	union := append(prefix[:len(prefix):len(prefix)], delta...)
	return &mergeState{union: union, staleLen: len(prefix)}
}

func TestWarmStartValidAcceptsOnlyColdIdenticalAnswers(t *testing.T) {
	prefix := []divmax.Vector{{0, 0}, {100, 0}, {50, 10}, {0, 90}, {70, 60}}
	const k = 3
	idx := solveIdx(t, prefix, k)

	// A middling delta point: near the centroid, never the farthest —
	// the replay must accept, and the cold solve over the patched union
	// must agree with the stale answer (the property the verification
	// certifies).
	weak := patchedState(prefix, []divmax.Vector{{40, 20}})
	if !weak.warmStartValid(idx, k) {
		t.Fatal("warmStartValid rejected a delta that cannot change the selection")
	}
	if cold := solveIdx(t, weak.union, k); !reflect.DeepEqual(cold, idx) {
		t.Fatalf("accepted answer %v differs from the cold solve %v", idx, cold)
	}

	// A dominating delta point: farther from everything than any stale
	// pick — the cold solve picks it, so the replay must reject.
	strong := patchedState(prefix, []divmax.Vector{{300, 300}})
	if strong.warmStartValid(idx, k) {
		t.Fatal("warmStartValid accepted a delta point the cold solve would pick")
	}
	if cold := solveIdx(t, strong.union, k); reflect.DeepEqual(cold, idx) {
		t.Fatal("test is vacuous: the dominating point did not change the cold solve")
	}

	// Mid-strength: beats the weakest stale pick but not the first — the
	// selection changes at a later step, which the replay must catch.
	// v_2 here is the squared distance of the third pick; a delta point
	// just beyond it flips only step 2.
	mid := patchedState(prefix, []divmax.Vector{{0, 100}})
	if valid := mid.warmStartValid(idx, k); valid != reflect.DeepEqual(solveIdx(t, mid.union, k), idx) {
		t.Fatalf("warmStartValid = %v disagrees with the cold solve comparison", valid)
	}

	// An empty delta (staleLen == len(union)) is the same union: always
	// valid.
	same := &mergeState{union: prefix, staleLen: len(prefix)}
	if !same.warmStartValid(idx, k) {
		t.Fatal("warmStartValid rejected the identity patch")
	}
}

func TestWarmStartValidRejectsMalformedAnswers(t *testing.T) {
	prefix := []divmax.Vector{{0, 0}, {100, 0}, {0, 90}}
	st := patchedState(prefix, []divmax.Vector{{10, 10}})
	idx := solveIdx(t, prefix, 2)

	cases := []struct {
		name string
		idx  []int
		k    int
	}{
		{"nil indices (generic-path answer)", nil, 2},
		{"length mismatch", idx, 3},
		{"not starting at 0", []int{1, 0}, 2},
		{"index beyond the stale prefix", []int{0, 3}, 2},
		{"negative index", []int{0, -1}, 2},
	}
	for _, tc := range cases {
		if st.warmStartValid(tc.idx, tc.k) {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if bad := (&mergeState{union: prefix, staleLen: len(prefix) + 1}); bad.warmStartValid(idx, 2) {
		t.Error("staleLen beyond the union: accepted")
	}
}

// TestQueryReportsWarmStarted drives the HTTP surface until a stale
// memo answer is served warm, checking it against a reference server
// (DisableDeltaPatch — identical union layout, every stale query
// cold-solved, never warm-started) at every step. The stream uses the
// SMM-EXT family (remote-star): feeding points near existing centers
// lands them in delegate sets — genuine core-set joins, so the deltas
// are non-empty — while keeping them well inside the current selection
// radius, so the replay verification accepts and the memo carries warm.
func TestQueryReportsWarmStarted(t *testing.T) {
	cfg := Config{Shards: 1, MaxK: 3, KPrime: 6, DeltaBudget: 16}
	refCfg := cfg
	refCfg.DisableDeltaPatch = true
	_, ts := newTestServer(t, cfg)
	_, ref := newTestServer(t, refCfg)

	// Irregular spacings — no two inter-point distances tie, so the
	// init merge is far from any knife-edge comparison.
	base := []divmax.Vector{
		{0, 0}, {100000, 3000}, {4000, 97000}, {96000, 94000},
		{52000, 41000}, {23000, 71000}, {69000, 18000},
	}
	postIngest(t, ts.URL, base)
	postIngest(t, ref.URL, base)
	getQuery(t, ts.URL, 2, divmax.RemoteStar)
	getQuery(t, ref.URL, 2, divmax.RemoteStar)

	warmSeen := false
	targets := []divmax.Vector{{52000, 41000}, {0, 0}}
	for r := 0; r < 12; r++ {
		tgt := targets[r%len(targets)]
		p := divmax.Vector{tgt[0] + float64(3+2*r), tgt[1] + float64(5+3*r)}
		postIngest(t, ts.URL, []divmax.Vector{p})
		postIngest(t, ref.URL, []divmax.Vector{p})
		qa := getQuery(t, ts.URL, 2, divmax.RemoteStar)
		qb := getQuery(t, ref.URL, 2, divmax.RemoteStar)
		if !reflect.DeepEqual(qa.Solution, qb.Solution) || math.Float64bits(qa.Value) != math.Float64bits(qb.Value) {
			t.Fatalf("round %d: warm-start-capable server answered %v (%v), reference %v (%v)",
				r, qa.Solution, qa.Value, qb.Solution, qb.Value)
		}
		if qb.WarmStarted {
			t.Fatal("reference server reported a warm start")
		}
		warmSeen = warmSeen || qa.WarmStarted
	}
	if !warmSeen {
		t.Fatalf("no query was served warm across the churn (stats: %+v)", getStats(t, ts.URL))
	}
	if st := getStats(t, ts.URL); st.MemoWarmStarts < 1 {
		t.Fatalf("memo_warm_starts = %d, want >= 1", st.MemoWarmStarts)
	}
	if st := getStats(t, ref.URL); st.MemoWarmStarts != 0 {
		t.Fatalf("reference memo_warm_starts = %d, want 0", st.MemoWarmStarts)
	}
}
