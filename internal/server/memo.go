package server

import "container/list"

// solutionMemo is the bounded per-state (measure, k) answer memo: a map
// over a recency list, evicting the least-recently-used entry once the
// capacity is exceeded. The natural key space is 6 measures × MaxK
// sizes, so small servers never evict; the bound exists so a large MaxK
// cannot let one retained merge state accumulate answers without limit
// (ROADMAP "Solution memo bounds"). Callers synchronize access — the
// owning familyCache's mutex guards every get/put, as it did the plain
// map this replaces.
type solutionMemo struct {
	cap     int
	entries map[solutionKey]*list.Element
	order   *list.List // front = most recently used
}

type memoEntry struct {
	key solutionKey
	val solvedQuery
}

func newSolutionMemo(cap int) *solutionMemo {
	if cap < 1 {
		cap = 1
	}
	return &solutionMemo{
		cap:     cap,
		entries: make(map[solutionKey]*list.Element),
		order:   list.New(),
	}
}

// get returns the memoized answer for key, marking it most recently
// used.
func (m *solutionMemo) get(key solutionKey) (solvedQuery, bool) {
	el, ok := m.entries[key]
	if !ok {
		return solvedQuery{}, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memoEntry).val, true
}

// put inserts or refreshes key's answer, evicting the least recently
// used entry when the memo is over capacity.
func (m *solutionMemo) put(key solutionKey, val solvedQuery) {
	if el, ok := m.entries[key]; ok {
		el.Value.(*memoEntry).val = val
		m.order.MoveToFront(el)
		return
	}
	m.entries[key] = m.order.PushFront(&memoEntry{key: key, val: val})
	if m.order.Len() > m.cap {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.entries, oldest.Value.(*memoEntry).key)
	}
}

// len returns the number of memoized answers.
func (m *solutionMemo) len() int { return m.order.Len() }
