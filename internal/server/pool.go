package server

import (
	"sync"

	"divmax"
)

// The /ingest hot path recycles its two kinds of point-slice buffers
// through a sync.Pool: the request decode buffer (one per in-flight
// request) and the per-shard batch slices that ride the shard channels.
// Only the outer []divmax.Vector backing arrays are reused — the Vector
// elements themselves are freshly allocated by each JSON decode, because
// shards retain accepted points (as SMM centers and delegates)
// indefinitely. For the same reason every buffer is cleared before going
// back to the pool: a stale Vector header would both pin the retained
// point's backing array and, if json ever decoded into it in place,
// corrupt a center already owned by a shard.

var vecSlicePool = sync.Pool{New: func() any { return new([]divmax.Vector) }}

// getVecSlice returns a pooled empty []divmax.Vector (behind its stable
// pointer) with whatever capacity a previous request left behind.
func getVecSlice() *[]divmax.Vector {
	p := vecSlicePool.Get().(*[]divmax.Vector)
	*p = (*p)[:0]
	return p
}

// putVecSlice clears the slice up to its capacity (dropping every point
// reference) and returns the backing array to the pool.
func putVecSlice(p *[]divmax.Vector) {
	s := (*p)[:cap(*p)]
	clear(s)
	*p = s[:0]
	vecSlicePool.Put(p)
}
