package server

import (
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"divmax"
	"divmax/internal/faults"
	"divmax/internal/wal"
)

// durableConfig is the base durable test configuration: small enough
// that recoveries are instant, deterministic round-robin dealing.
// DIVMAX_TEST_FSYNC overrides the WAL fsync policy (the `make
// durability` target forces "always" so the crash-recovery contract is
// exercised with a real fsync per record).
func durableConfig(dir string) Config {
	cfg := Config{Shards: 2, MaxK: 4, KPrime: 8, DataDir: dir}
	if v := os.Getenv("DIVMAX_TEST_FSYNC"); v != "" {
		p, err := wal.ParseSyncPolicy(v)
		if err != nil {
			panic(err)
		}
		cfg.Fsync = p
	}
	return cfg
}

func waitReady(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !srv.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func durableTestVecs(seed int64, n, d int) []divmax.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]divmax.Vector, n)
	for i := range out {
		v := make(divmax.Vector, d)
		for j := range v {
			v[j] = rng.NormFloat64() * 50
		}
		out[i] = v
	}
	return out
}

// assertSameAnswers compares the full query surface of two servers, for
// both core-set families, bit for bit — the crash-recovery equivalence
// the durability layer promises.
func assertSameAnswers(t *testing.T, what, urlA, urlB string, k int) {
	t.Helper()
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		qa := getQuery(t, urlA, k, m)
		qb := getQuery(t, urlB, k, m)
		if qa.Processed != qb.Processed {
			t.Fatalf("%s/%s: processed %d vs %d", what, m, qa.Processed, qb.Processed)
		}
		if qa.CoresetSize != qb.CoresetSize {
			t.Fatalf("%s/%s: coreset_size %d vs %d", what, m, qa.CoresetSize, qb.CoresetSize)
		}
		if math.Float64bits(qa.Value) != math.Float64bits(qb.Value) {
			t.Fatalf("%s/%s: value bits %x vs %x", what, m, math.Float64bits(qa.Value), math.Float64bits(qb.Value))
		}
		if len(qa.Solution) != len(qb.Solution) {
			t.Fatalf("%s/%s: solution sizes %d vs %d", what, m, len(qa.Solution), len(qb.Solution))
		}
		for i := range qa.Solution {
			for j := range qa.Solution[i] {
				if math.Float64bits(qa.Solution[i][j]) != math.Float64bits(qb.Solution[i][j]) {
					t.Fatalf("%s/%s: solution[%d][%d] bits differ", what, m, i, j)
				}
			}
		}
	}
}

// TestGracefulShutdownReplaysZero: a clean Close writes final per-shard
// checkpoints, so reopening the same data directory restores everything
// from the checkpoints and replays zero records — while answering the
// exact same queries.
func TestGracefulShutdownReplaysZero(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, durableConfig(dir))
	waitReady(t, srv)

	pts := durableTestVecs(1, 120, 3)
	postIngest(t, ts.URL, pts[:80])
	postIngest(t, ts.URL, pts[80:])
	postDelete(t, ts.URL, []divmax.Vector{pts[3], pts[40]})
	before := map[divmax.Measure]queryResponse{}
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		before[m] = getQuery(t, ts.URL, 4, m)
	}
	ts.Close()
	srv.Close()

	srv2, ts2 := newTestServer(t, durableConfig(dir))
	waitReady(t, srv2)
	st := getStats(t, ts2.URL)
	if st.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2 (one per shard)", st.Recoveries)
	}
	for _, sh := range st.Shards {
		if sh.ReplayedPoints != 0 {
			t.Fatalf("shard %d replayed %d points after a clean shutdown, want 0", sh.ID, sh.ReplayedPoints)
		}
		if sh.CheckpointAgeMS <= 0 {
			t.Fatalf("shard %d has no checkpoint age after restoring one", sh.ID)
		}
	}
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		after := getQuery(t, ts2.URL, 4, m)
		if after.Processed != before[m].Processed ||
			math.Float64bits(after.Value) != math.Float64bits(before[m].Value) {
			t.Fatalf("%s: recovered answer (processed=%d value=%x) differs from pre-shutdown (processed=%d value=%x)",
				m, after.Processed, math.Float64bits(after.Value), before[m].Processed, math.Float64bits(before[m].Value))
		}
	}
	// The recovered dimension pin still rejects mismatched ingests.
	if _, err := tryIngest(ts2.URL, []divmax.Vector{{1, 2}}); err == nil {
		t.Fatal("dimension-2 ingest accepted after recovering a dimension-3 stream")
	}
}

// TestAbruptCloseRecoversByReplay: CloseAbrupt skips the final
// checkpoint (the crash shape); reopening replays the log tail, and the
// recovered server answers bit-identically to an uninterrupted
// in-memory twin fed the same stream.
func TestAbruptCloseRecoversByReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.CheckpointEvery = -time.Second // every record stays in the tail
	srv, ts := newTestServer(t, cfg)
	waitReady(t, srv)
	pts := durableTestVecs(2, 150, 4)
	postIngest(t, ts.URL, pts[:50])
	postIngest(t, ts.URL, pts[50:])
	postDelete(t, ts.URL, []divmax.Vector{pts[7]})
	ts.Close()
	srv.CloseAbrupt()

	srv2, ts2 := newTestServer(t, durableConfig(dir))
	waitReady(t, srv2)
	st := getStats(t, ts2.URL)
	if st.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2", st.Recoveries)
	}
	var replayed int64
	for _, sh := range st.Shards {
		replayed += sh.ReplayedPoints
	}
	if replayed != 152 { // 150 ingested + the delete broadcast to 2 shards
		t.Fatalf("replayed_points total = %d, want 152", replayed)
	}

	_, twin := newTestServer(t, Config{Shards: cfg.Shards, MaxK: cfg.MaxK, KPrime: cfg.KPrime})
	postIngest(t, twin.URL, pts[:50])
	postIngest(t, twin.URL, pts[50:])
	postDelete(t, twin.URL, []divmax.Vector{pts[7]})
	assertSameAnswers(t, "abrupt-close recovery", ts2.URL, twin.URL, 4)
}

// TestDurablePanicRestartLosesNothing: the in-memory contract is that a
// panicked batch dies with its incarnation; with a WAL the restart
// replays the shard's own log — including the record of the batch whose
// fold panicked — so nothing is lost, and the recovered server matches
// a never-faulted twin bit for bit.
func TestDurablePanicRestartLosesNothing(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New()
	inj.OnBatch(faults.PanicOnBatch(0, 1))
	cfg := durableConfig(dir)
	cfg.Faults = inj
	srv, ts := newTestServer(t, cfg)
	waitReady(t, srv)

	batches := [][]divmax.Vector{
		durableTestVecs(3, 40, 3),
		durableTestVecs(4, 10, 3), // shard 0's slice of this panics mid-fold
		durableTestVecs(5, 30, 3),
	}
	total := 0
	for _, b := range batches {
		postIngest(t, ts.URL, b)
		total += len(b)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStats(t, ts.URL)
		if st.ShardRestarts == 1 && st.IngestedTotal == int64(total) {
			if st.Shards[0].Panics != 1 || st.Shards[0].Health != "healthy" {
				t.Fatalf("shard 0: panics=%d health=%q, want 1/healthy", st.Shards[0].Panics, st.Shards[0].Health)
			}
			if st.Recoveries < 1 {
				t.Fatalf("recoveries = %d, want >= 1 (the replay-restart)", st.Recoveries)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart never became lossless: restarts=%d ingested=%d (want 1/%d)",
				st.ShardRestarts, st.IngestedTotal, total)
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, twin := newTestServer(t, Config{Shards: cfg.Shards, MaxK: cfg.MaxK, KPrime: cfg.KPrime})
	for _, b := range batches {
		postIngest(t, twin.URL, b)
	}
	assertSameAnswers(t, "replay-restart", ts.URL, twin.URL, 4)
}

// TestDurableStatsAndInMemoryOmission: durable servers surface
// wal_bytes / wal_segments / checkpoint_age_ms / replayed_points and
// recoveries; in-memory servers must not emit those keys at all (the
// byte-compat discipline of /v1/stats).
func TestDurableStatsAndInMemoryOmission(t *testing.T) {
	srv, ts := newTestServer(t, durableConfig(t.TempDir()))
	waitReady(t, srv)
	postIngest(t, ts.URL, durableTestVecs(6, 20, 2))
	st := getStats(t, ts.URL)
	for _, sh := range st.Shards {
		if sh.WALBytes <= 0 || sh.WALSegments < 1 {
			t.Fatalf("shard %d: wal_bytes=%d wal_segments=%d, want positive", sh.ID, sh.WALBytes, sh.WALSegments)
		}
	}

	_, mem := newTestServer(t, Config{Shards: 2, MaxK: 4})
	postIngest(t, mem.URL, durableTestVecs(6, 20, 2))
	resp, err := http.Get(mem.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"wal_bytes", "wal_segments", "checkpoint_age_ms", "replayed_points", "recoveries"} {
		if strings.Contains(string(raw), key) {
			t.Fatalf("in-memory /v1/stats leaks durability key %q: %s", key, raw)
		}
	}
}

// TestCheckpointTickerBoundsReplay: with a fast checkpoint ticker the
// log tail folds into checkpoints while the server runs, so even an
// abrupt close replays only the records after the last checkpoint — and
// the recovered answers still match an uninterrupted twin.
func TestCheckpointTickerBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.CheckpointEvery = 20 * time.Millisecond
	srv, ts := newTestServer(t, cfg)
	waitReady(t, srv)
	pts := durableTestVecs(7, 100, 3)
	postIngest(t, ts.URL, pts)
	// Wait for the ticker to checkpoint both shards.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := getStats(t, ts.URL)
		aged := 0
		for _, sh := range st.Shards {
			if sh.CheckpointAgeMS > 0 {
				aged++
			}
		}
		if aged == len(st.Shards) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint ticker never checkpointed every shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tail := durableTestVecs(8, 10, 3) // a post-checkpoint tail
	postIngest(t, ts.URL, tail)
	ts.Close()
	srv.CloseAbrupt()

	srv2, ts2 := newTestServer(t, durableConfig(dir))
	waitReady(t, srv2)
	var replayed int64
	for _, sh := range getStats(t, ts2.URL).Shards {
		replayed += sh.ReplayedPoints
	}
	if replayed >= 110 {
		t.Fatalf("replayed %d of 110 points: checkpoints did not bound the replay", replayed)
	}

	_, twin := newTestServer(t, Config{Shards: cfg.Shards, MaxK: cfg.MaxK, KPrime: cfg.KPrime})
	postIngest(t, twin.URL, pts)
	postIngest(t, twin.URL, tail)
	assertSameAnswers(t, "checkpoint+tail recovery", ts2.URL, twin.URL, 4)
}

// TestCloseTimeoutCompletes pins the CloseTimeout contract on the happy
// path (drain + final checkpoints within the budget) and that the whole
// durable lifecycle leaks no goroutines — the WAL flushers and the
// checkpoint ticker all stop.
func TestCloseTimeoutCompletes(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	srv, ts := newTestServer(t, durableConfig(dir))
	waitReady(t, srv)
	postIngest(t, ts.URL, durableTestVecs(9, 50, 2))
	ts.Close()
	if !srv.CloseTimeout(10 * time.Second) {
		t.Fatal("drain did not complete within a generous deadline")
	}
	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutine leak: %d before, %d after CloseTimeout", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The final checkpoint landed: reopening replays nothing.
	srv2, ts2 := newTestServer(t, durableConfig(dir))
	waitReady(t, srv2)
	for _, sh := range getStats(t, ts2.URL).Shards {
		if sh.ReplayedPoints != 0 {
			t.Fatalf("shard %d replayed %d points after CloseTimeout drain, want 0", sh.ID, sh.ReplayedPoints)
		}
	}
}
