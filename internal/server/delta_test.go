package server

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"divmax"
	"divmax/internal/sequential"
)

// Interleaving fuzz/equivalence harness for the delta-patched query
// cache.
//
// Every schedule drives the same interleaving of /ingest batches,
// /delete broadcasts, and /query calls against two servers: one
// patching (extending the cached union and solve engine with per-shard
// core-set deltas, and serving replay-verified stale answers as warm
// starts) and one in reference mode (DisableDeltaPatch: identical
// patch/fallback decisions and identical union layouts, every engine
// built from scratch and every stale query cold-solved — warm starts
// are pinned bit for bit against genuine re-solves). At every query
// the two must agree bit for bit — solution vectors, diversity value,
// processed count, core-set size — and their retained engines must
// agree on mode (matrix/tiled/none); at every delete the two must
// classify every point identically (the outcome is a pure function of
// the shard core-sets, which see the same stream). The cached/patched/
// warm_started response flags are NOT compared: patching and memo
// carry-over legitimately diverge between the modes. Schedules include
// restructure-heavy streams (tiny coordinate grids full of duplicates
// and exact ties, expanding scales that force radius doublings and
// cluster merges) and delete mixes (re-deleting ingested values —
// spares and evictions — alongside never-seen tombstones) so the
// generation-bump fallback, the delta-budget fallback, deletion
// eviction, and budget-crossing engine appends are all exercised.

// deltaSchedule decodes fuzz bytes into a server configuration and an
// op stream, runs it against the patched and reference servers, and
// asserts equivalence after every query. It returns the patched
// server's final stats so callers can assert path coverage.
func runDeltaSchedule(t *testing.T, data []byte) statsResponse {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}

	// Global knobs from the prefix: engine-mode boundary and patch
	// budget, shared by both servers.
	origBudget := sequential.MatrixBudget
	switch next() % 3 {
	case 1:
		sequential.MatrixBudget = 8 * 12 * 12 // matrix only up to 12 points
	case 2:
		sequential.MatrixBudget = 8 // everything tiled
	}
	defer func() { sequential.MatrixBudget = origBudget }()
	deltaBudget := []float64{0.5, 2, 16}[next()%3]
	maxK := 3 + int(next()%3)
	cfg := Config{
		Shards:      1 + int(next()%3),
		MaxK:        maxK,
		KPrime:      maxK + int(next()%6),
		DeltaBudget: deltaBudget,
		Spares:      []int{-1, 1, 2}[next()%3],
	}
	refCfg := cfg
	refCfg.DisableDeltaPatch = true
	patched, patchedTS := newTestServer(t, cfg)
	reference, referenceTS := newTestServer(t, refCfg)

	// Coordinate styles: tiny integer grids (duplicates and exact ties
	// everywhere, constant restructuring at a tiny radius), a wide
	// continuous-ish spread, an expanding scale (radius doublings), and
	// a near-degenerate two-value stream.
	style := next() % 4
	coordCount := 0
	coord := func(b byte) float64 {
		coordCount++
		switch style {
		case 0:
			return float64(b % 5)
		case 1:
			return float64(b) * 97
		case 2:
			return float64(b%7) * float64(int64(1)<<(coordCount/16%24))
		default:
			return float64(b % 2)
		}
	}

	// pool tracks ingested values so deletes mostly target points the
	// shards have actually seen (spares and evictions, not just
	// tombstones).
	var pool []divmax.Vector
	queries := 0
	for ops := 0; ops < 48 && len(data) > 0; ops++ {
		switch next() % 6 {
		case 0, 1, 2: // ingest a small batch
			cnt := 1 + int(next()%6)
			pts := make([]divmax.Vector, cnt)
			for i := range pts {
				pts[i] = divmax.Vector{coord(next()), coord(next())}
			}
			if len(pool) < 96 {
				pool = append(pool, pts...)
			}
			pa := postIngest(t, patchedTS.URL, pts)
			pb := postIngest(t, referenceTS.URL, pts)
			if pa.Accepted != pb.Accepted {
				t.Fatalf("ingest accepted %d vs %d", pa.Accepted, pb.Accepted)
			}
		case 3: // delete a few points, mostly previously ingested values
			cnt := 1 + int(next()%3)
			pts := make([]divmax.Vector, cnt)
			for i := range pts {
				if b := next(); len(pool) > 0 && b%4 != 0 {
					pts[i] = pool[int(b)%len(pool)]
				} else {
					pts[i] = divmax.Vector{coord(next()), coord(next())}
				}
			}
			da := postDelete(t, patchedTS.URL, pts)
			db := postDelete(t, referenceTS.URL, pts)
			if !reflect.DeepEqual(da, db) {
				t.Fatalf("delete outcomes diverge: patched %+v vs reference %+v", da, db)
			}
		default: // query
			m := divmax.Measures[int(next())%len(divmax.Measures)]
			k := 1 + int(next())%maxK
			qa := getQuery(t, patchedTS.URL, k, m)
			qb := getQuery(t, referenceTS.URL, k, m)
			queries++
			if !reflect.DeepEqual(qa.Solution, qb.Solution) {
				t.Fatalf("query %d (%v, k=%d): patched solution %v differs from reference %v",
					queries, m, k, qa.Solution, qb.Solution)
			}
			if math.Float64bits(qa.Value) != math.Float64bits(qb.Value) || qa.Exact != qb.Exact {
				t.Fatalf("query %d (%v, k=%d): value %v/%v vs %v/%v",
					queries, m, k, qa.Value, qa.Exact, qb.Value, qb.Exact)
			}
			if qa.Processed != qb.Processed || qa.CoresetSize != qb.CoresetSize {
				t.Fatalf("query %d (%v, k=%d): processed/coreset %d/%d vs %d/%d",
					queries, m, k, qa.Processed, qa.CoresetSize, qb.Processed, qb.CoresetSize)
			}
			proxy := m.NeedsInjectiveProxy()
			if ma, mb := engineMode(patched, proxy), engineMode(reference, proxy); ma != mb {
				t.Fatalf("query %d (%v, k=%d): engine mode %q vs %q", queries, m, k, ma, mb)
			}
		}
	}
	// The counter invariant: every miss resolved as a patch or a full
	// rebuild, on both servers; the reference server never patched an
	// engine.
	for _, st := range []statsResponse{getStats(t, patchedTS.URL), getStats(t, referenceTS.URL)} {
		if st.CacheMisses != st.MissesCold+st.MissesInvalidated {
			t.Fatalf("misses %d ≠ cold %d + invalidated %d", st.CacheMisses, st.MissesCold, st.MissesInvalidated)
		}
		if st.CacheMisses != st.DeltaPatches+st.FullRebuilds {
			t.Fatalf("misses %d ≠ patches %d + rebuilds %d", st.CacheMisses, st.DeltaPatches, st.FullRebuilds)
		}
		if st.DeletesRequested != st.DeletesEvicting+st.DeletesSpares+st.DeletesTombstoned {
			t.Fatalf("deletes %d ≠ evicting %d + spares %d + tombstoned %d",
				st.DeletesRequested, st.DeletesEvicting, st.DeletesSpares, st.DeletesTombstoned)
		}
	}
	if st := getStats(t, referenceTS.URL); st.DeltaPatches != 0 || st.MemoWarmStarts != 0 {
		t.Fatalf("reference server reported %d delta patches, %d warm starts", st.DeltaPatches, st.MemoWarmStarts)
	}
	return getStats(t, patchedTS.URL)
}

// engineMode reports the cached engine's mode for a family —
// "matrix", "tiled", or "none" (no state or a sub-2-point union).
func engineMode(s *Server, proxy bool) string {
	c := &s.caches[cacheIndex(proxy)]
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.state == nil || c.state.engine == nil:
		return "none"
	case c.state.engine.Tiled():
		return "tiled"
	default:
		return "matrix"
	}
}

func FuzzDeltaInterleaving(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte("ingest-query-ingest-query-ingest-query-ingest-query"))
	f.Add([]byte{1, 2, 1, 0, 2, 0, 3, 9, 0, 1, 200, 3, 0, 7, 7, 7, 3, 0, 3, 1, 0, 4, 4, 4, 3, 2})
	f.Add([]byte{2, 0, 2, 2, 1, 3, 255, 1, 128, 3, 2, 64, 3, 5, 32, 3, 1, 16, 3, 4, 8, 3, 0, 4, 3, 3})
	// Delete-heavy: ingest/delete/query alternation with pool re-deletes
	// (op byte 3 mod 6 selects delete; the trailing bytes pick targets).
	f.Add([]byte{1, 1, 1, 0, 1, 2, 0, 3, 7, 7, 9, 9, 3, 2, 1, 5, 5, 4, 0, 3, 0, 2, 2, 3, 1, 9, 4, 1, 3, 2, 2, 8, 3, 1, 1, 4, 2, 0, 2, 6, 6, 3, 3, 3, 2, 10, 4, 5})
	// Restructure-heavy: long alternation on the tiniest grid.
	heavy := make([]byte, 120)
	for i := range heavy {
		heavy[i] = byte(i*7 + i%3)
	}
	f.Add(heavy)
	f.Fuzz(func(t *testing.T, data []byte) {
		runDeltaSchedule(t, data)
	})
}

// TestDeltaInterleavingSchedules runs the fuzz harness over fixed
// pseudo-random schedules — long ones, at every coordinate style — so
// the equivalence check runs in full on every plain `go test`, not only
// under -fuzz.
func TestDeltaInterleavingSchedules(t *testing.T) {
	var patches, rebuilds, invalidated, deletes, removed int64
	for seed := 0; seed < 8; seed++ {
		data := make([]byte, 160)
		x := uint32(seed*2654435761 + 1)
		for i := range data {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			data[i] = byte(x)
		}
		data[0] = byte(seed) // engine-mode boundary selector
		data[5] = byte(seed >> 1)
		st := runDeltaSchedule(t, data)
		patches += st.DeltaPatches
		rebuilds += st.FullRebuilds
		invalidated += st.MissesInvalidated
		deletes += st.DeletesRequested
		removed += st.DeletesEvicting + st.DeletesSpares
	}
	// The schedule set must exercise both resolutions of a stale query:
	// incremental patches and generation-bump/budget fallbacks (full
	// rebuilds beyond the unavoidable cold ones happen only on
	// invalidated misses) — and, with the fully dynamic op stream, both
	// flavors of deletion (pure tombstones are implied by deletes >
	// removed over random targets).
	if patches == 0 {
		t.Fatal("no schedule exercised the delta-patch path")
	}
	if rebuilds == 0 || invalidated == 0 {
		t.Fatalf("schedules exercised %d full rebuilds over %d invalidated misses; want both > 0", rebuilds, invalidated)
	}
	if deletes == 0 || removed == 0 {
		t.Fatalf("schedules exercised %d deletes removing %d retained points; want both > 0", deletes, removed)
	}
}

// TestDeltaPatchConcurrentChurn is the shrunk -race schedule: one
// patched server, concurrent ingesters and queriers, a tiny matrix
// budget so patches cross between matrix and tiled engines while older
// engine forks are still serving solves. It asserts well-formedness
// (every response valid, counters consistent) — the interleaving is
// nondeterministic, so bit-equivalence is pinned by the deterministic
// harness above, and this test exists to let the race detector watch
// the shared matrix buffers, flat stores, and cache installs under
// genuine concurrency.
func TestDeltaPatchConcurrentChurn(t *testing.T) {
	origBudget := sequential.MatrixBudget
	sequential.MatrixBudget = 8 * 24 * 24
	defer func() { sequential.MatrixBudget = origBudget }()
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 4, KPrime: 10, DeltaBudget: 16})

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := uint32(g*977 + 13)
			for i := 0; i < 30; i++ {
				pts := make([]divmax.Vector, 1+i%4)
				for j := range pts {
					x = x*1664525 + 1013904223
					pts[j] = divmax.Vector{float64(x % 50), float64((x >> 8) % 50)}
				}
				if _, err := tryIngest(ts.URL, pts); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				m := divmax.Measures[(g+i)%len(divmax.Measures)]
				q, err := tryQuery(ts.URL, 1+i%4, m)
				if err != nil {
					errs <- err
					return
				}
				if len(q.Solution) > 4 {
					errs <- errTooMany
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := getStats(t, ts.URL)
	if st.CacheMisses != st.DeltaPatches+st.FullRebuilds {
		t.Fatalf("misses %d ≠ patches %d + rebuilds %d", st.CacheMisses, st.DeltaPatches, st.FullRebuilds)
	}
}

var errTooMany = errOversized{}

type errOversized struct{}

func (errOversized) Error() string { return "solution larger than k" }
