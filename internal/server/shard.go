package server

import (
	"sync"
	"sync/atomic"

	"divmax"
)

// snapReply is a shard's answer to a snapshot request: the point-in-time
// core-set view — a pure delta of the points appended since the
// requested (generation, position), or a full snapshot when the
// core-set restructured or the request demanded one — plus the shard's
// ingest epoch at the moment the snapshot was taken, the number of
// batches folded in so far. The query cache compares cached epochs
// against the shards' accepted-batch counters to decide whether a
// previously merged core-set is still current, and uses the delta's
// generation/position to patch a stale one instead of rebuilding it.
type snapReply struct {
	delta divmax.CoresetDelta[divmax.Vector]
	epoch uint64
}

// shardMsg is the single message type flowing over a shard's channel:
// a batch of points to ingest, a delete broadcast (delReply non-nil),
// or (when snap is non-nil) a request for a point-in-time snapshot of
// the core-set family a query needs — proxy selects SMM-EXT (the four
// delegate-based measures) over SMM (remote-edge, remote-cycle), and
// (gen, pos) request a delta relative to an earlier snapshot (pos = -1
// forces a full snapshot). Funnelling everything through one channel
// serializes it against the shard goroutine, which is what lets the
// StreamCoreset processors stay lock-free: only the shard goroutine
// ever touches them — and it is what orders a delete after every batch
// accepted before it, so a delete always sees the points it targets.
//
// batch points at a pooled slice (see pool.go): the sender fills it, the
// shard goroutine consumes it with ProcessBatch and returns it to the
// pool, so steady-state ingest allocates no batch buffers at all. del
// is shared read-only by every shard of a broadcast; the sender keeps
// it alive until all replies are in.
type shardMsg struct {
	batch    *[]divmax.Vector
	snap     chan<- snapReply
	proxy    bool
	gen      uint64
	pos      int
	del      []divmax.Vector
	delReply chan<- []divmax.DeleteOutcome
}

// shard owns one slice of the stream. Every point it receives is folded
// into two streaming core-sets — SMM for the kernel-only measures and
// SMM-EXT for the delegate-based ones — so a query for any of the six
// measures can be answered from the matching family. Memory stays
// O(k′·k) per shard regardless of how many points have been ingested.
type shard struct {
	id    int
	ch    chan shardMsg
	edge  divmax.StreamCoreset[divmax.Vector]
	proxy divmax.StreamCoreset[divmax.Vector]

	// Ingest epochs. accEpoch counts batches accepted for this shard
	// (bumped by Server.send immediately before the channel send, so by
	// the time /ingest returns every accepted batch is visible to epoch
	// readers); procEpoch counts batches the shard goroutine has folded
	// in. A query-cache entry recorded at procEpoch e is current exactly
	// while accEpoch == e: nothing has been accepted that the cached
	// merge has not seen.
	accEpoch  atomic.Uint64
	procEpoch atomic.Uint64

	// Monitoring counters, updated by the shard goroutine after each
	// batch or delete and read lock-free by /stats.
	ingested  atomic.Int64
	batches   atomic.Int64
	lastBatch atomic.Int64
	stored    atomic.Int64
	deleted   atomic.Int64
}

func newShard(id int, cfg Config) *shard {
	return &shard{
		id: id,
		ch: make(chan shardMsg, cfg.Buffer),
		// RemoteEdge and RemoteClique are representatives of their
		// core-set families; the processors serve every measure of the
		// same family. The dynamic constructor retains Spares absorbed
		// points per SMM center so center deletions promote instead of
		// dropping clusters.
		edge:  divmax.NewDynamicStreamCoreset(divmax.RemoteEdge, cfg.MaxK, cfg.KPrime, cfg.Spares, divmax.Euclidean),
		proxy: divmax.NewDynamicStreamCoreset(divmax.RemoteClique, cfg.MaxK, cfg.KPrime, cfg.Spares, divmax.Euclidean),
	}
}

// run is the shard goroutine: it drains the channel until it is closed,
// processing batches in arrival order and answering snapshot requests
// between them. Closing the channel (Server.Close) drains whatever is
// buffered before the goroutine exits, so no accepted point is lost.
func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for msg := range s.ch {
		if msg.snap != nil {
			reply := snapReply{epoch: s.procEpoch.Load()}
			if msg.proxy {
				reply.delta = s.proxy.SnapshotSince(msg.gen, msg.pos)
			} else {
				reply.delta = s.edge.SnapshotSince(msg.gen, msg.pos)
			}
			msg.snap <- reply
			continue
		}
		if msg.delReply != nil {
			// Delete broadcast: apply to BOTH families (a query for any
			// measure must never see a deleted point) and report, per
			// point, the strongest outcome.
			outs := make([]divmax.DeleteOutcome, len(msg.del))
			removed := 0
			for i, p := range msg.del {
				o := max(s.edge.Delete(p), s.proxy.Delete(p))
				outs[i] = o
				if o != divmax.DeleteAbsent {
					removed++
				}
			}
			s.deleted.Add(int64(removed))
			s.stored.Store(int64(s.edge.StoredPoints() + s.proxy.StoredPoints()))
			// Same ordering contract as ingest: the epoch bump comes
			// after the core-sets are updated.
			s.procEpoch.Add(1)
			msg.delReply <- outs
			continue
		}
		batch := *msg.batch
		s.edge.ProcessBatch(batch)
		s.proxy.ProcessBatch(batch)
		s.ingested.Add(int64(len(batch)))
		s.batches.Add(1)
		s.lastBatch.Store(int64(len(batch)))
		s.stored.Store(int64(s.edge.StoredPoints() + s.proxy.StoredPoints()))
		// The epoch bump comes after the core-sets are updated, so a
		// snapshot taken at procEpoch e reflects exactly the first e
		// accepted batches.
		s.procEpoch.Add(1)
		putVecSlice(msg.batch)
	}
}
