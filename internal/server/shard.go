package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"divmax"
	"divmax/internal/faults"
	"divmax/internal/wal"
)

// snapReply is a shard's answer to a snapshot request: the point-in-time
// core-set view — a pure delta of the points appended since the
// requested (generation, position), or a full snapshot when the
// core-set restructured or the request demanded one — plus the shard's
// ingest epoch at the moment the snapshot was taken, the number of
// batches folded in so far. The query cache compares cached epochs
// against the shards' accepted-batch counters to decide whether a
// previously merged core-set is still current, and uses the delta's
// generation/position to patch a stale one instead of rebuilding it.
//
// err is non-nil when the shard could not serve the snapshot: it has
// failed permanently (errShardFailed) or the requester's deadline
// expired before the reply arrived (recorded by the requester itself;
// degraded queries treat either as a missing shard).
type snapReply struct {
	delta divmax.CoresetDelta[divmax.Vector]
	epoch uint64
	err   error
}

// deleteReply is a shard's answer to a delete broadcast: one outcome
// per requested point, or an error when the shard has failed.
type deleteReply struct {
	outs []divmax.DeleteOutcome
	err  error
}

// shardMsg is the single message type flowing over a shard's channel:
// a batch of points to ingest, a delete broadcast (delReply non-nil),
// or (when snap is non-nil) a request for a point-in-time snapshot of
// the core-set family a query needs — proxy selects SMM-EXT (the four
// delegate-based measures) over SMM (remote-edge, remote-cycle), and
// (gen, pos) request a delta relative to an earlier snapshot (pos = -1
// forces a full snapshot). Funnelling everything through one channel
// serializes it against the shard goroutine, which is what lets the
// StreamCoreset processors stay lock-free: only the shard goroutine
// ever touches them — and it is what orders a delete after every batch
// accepted before it, so a delete always sees the points it targets.
//
// batch points at a pooled slice (see pool.go): the sender fills it, the
// shard goroutine consumes it with ProcessBatch and returns it to the
// pool, so steady-state ingest allocates no batch buffers at all. del
// is shared read-only by every shard of a broadcast; the sender keeps
// it alive until all replies are in.
type shardMsg struct {
	batch    *[]divmax.Vector
	snap     chan<- snapReply
	proxy    bool
	gen      uint64
	pos      int
	del      []divmax.Vector
	delReply chan<- deleteReply
	// seq is the message's write-ahead-log sequence number (0 when the
	// server runs in memory). The shard records it as folded BEFORE
	// touching the processors, so a panic-restart replays the log up to
	// and including the record of the message that killed it.
	seq uint64
	// ckpt asks the shard to write a core-set checkpoint if records have
	// accumulated since the last one (sent by the server's checkpoint
	// ticker; rides the ordinary channel so it is serialized against
	// folds like everything else).
	ckpt bool
}

// Shard health states. A shard is healthy until a panic exhausts its
// restart budget; it then fails permanently and answers every message
// with an error until the server drains.
const (
	shardHealthy int32 = iota
	shardFailed
)

var errShardFailed = errors.New("shard failed")

// shardFailedError reports which shard a request died on; the handlers
// map it to 503 with the "unavailable" envelope code.
type shardFailedError struct{ id int }

func (e *shardFailedError) Error() string {
	return fmt.Sprintf("server: shard %d has failed permanently (restart budget exhausted)", e.id)
}

func (e *shardFailedError) Is(target error) bool { return target == errShardFailed }

// genIncarnation is the generation offset one supervisor restart adds
// to the shard's reported core-set generations. A restarted shard owns
// fresh processors whose internal generations restart at 0; offsetting
// every reported generation by the incarnation guarantees a cached
// (gen, pos) recorded before the restart can never alias a valid delta
// position of the new processors — the underlying generation would
// have to climb past 2³² between two snapshots, and it counts
// restructure events, not points.
const genIncarnation = uint64(1) << 32

// shard owns one slice of the stream. Every point it receives is folded
// into two streaming core-sets — SMM for the kernel-only measures and
// SMM-EXT for the delegate-based ones — so a query for any of the six
// measures can be answered from the matching family. Memory stays
// O(k′·k) per shard regardless of how many points have been ingested.
//
// The shard goroutine is supervised (run): a panic while processing a
// message is recovered, the shard restarts with fresh core-sets (its
// slice of the stream is lost and reported as such through the
// processed counts), and after Config.RestartBudget restarts it fails
// permanently — from then on it drains its channel answering every
// message with an error instead of leaving senders blocked.
type shard struct {
	id    int
	cfg   Config
	inj   *faults.Injector
	ch    chan shardMsg
	edge  divmax.StreamCoreset[divmax.Vector]
	proxy divmax.StreamCoreset[divmax.Vector]

	// genBase namespaces the core-set generations across restarts: the
	// shard reports gen+genBase and translates requests back. Only the
	// shard goroutine touches it.
	genBase uint64

	// health is shardHealthy or shardFailed; panics and restarts count
	// recovered panics and supervisor restarts for /stats.
	health   atomic.Int32
	panics   atomic.Int64
	restarts atomic.Int64

	// Ingest epochs. accEpoch counts batches accepted for this shard
	// (bumped by Server.send immediately before the channel send, so by
	// the time /ingest returns every accepted batch is visible to epoch
	// readers); procEpoch counts batches the shard goroutine has folded
	// in. A query-cache entry recorded at procEpoch e is current exactly
	// while accEpoch == e: nothing has been accepted that the cached
	// merge has not seen. A batch whose fold panics still counts on both
	// sides (its points are what the restart loses), and a restart bumps
	// both once more so every pre-restart cached state reads as stale.
	accEpoch  atomic.Uint64
	procEpoch atomic.Uint64

	// Monitoring counters, updated by the shard goroutine after each
	// batch or delete and read lock-free by /stats.
	ingested  atomic.Int64
	batches   atomic.Int64
	lastBatch atomic.Int64
	stored    atomic.Int64
	deleted   atomic.Int64

	// Durability (nil log = in-memory mode, all of this dormant).
	// lastSeq/ckptSeq/ckptPayload and the recovery fields are touched
	// only by the shard goroutine (and newShard, before it starts);
	// everything a request or /stats thread reads is atomic.
	log         *wal.Log
	lastSeq     uint64 // highest WAL seq recorded as folded
	ckptSeq     uint64 // first seq NOT covered by the latest checkpoint
	ckptPayload []byte // latest checkpoint body (what a panic-restart restores)
	ckptEdgeGen uint64 // processor generations at the latest checkpoint,
	ckptProxGen uint64 // for the restructure-triggered eager checkpoint
	needRecover bool   // serve() must run recovery before the message loop
	replayTo    uint64 // highest seq recovery replays (the durable end)

	// ready flips once the shard has finished boot recovery and entered
	// its message loop; /v1/readyz answers 503 until every shard is
	// ready. In-memory shards are born ready.
	ready atomic.Bool
	// abrupt (set by Server.CloseAbrupt before the channels close) makes
	// the drain skip the final checkpoint and the closing fsync — the
	// crash-shaped shutdown the recovery tests and benchmarks reopen
	// from.
	abrupt atomic.Bool
	// replayed counts points re-folded from the log across all
	// recoveries; recoveries counts shard recoveries server-wide (both
	// surfaced by /stats). srvDim points at the server's dataset
	// dimension so recovery can re-pin it before the first request.
	replayed   atomic.Int64
	lastCkptMS atomic.Int64 // wall-clock ms of the latest checkpoint, 0 = none
	recoveries *atomic.Int64
	srvDim     *atomic.Int64
}

// shardCheckpoint is the gob-encoded body of a shard's checkpoint file:
// both processors' serialized state plus the monitoring counters a
// recovery would otherwise lose (the dimension re-pins Server.dim so a
// restarted server keeps rejecting mismatched ingests).
type shardCheckpoint struct {
	Edge, Proxy                []byte
	Ingested, Batches, Deleted int64
	Dim                        int64
}

// ckptMinRecords is how many WAL records must accumulate before a
// core-set restructure triggers an eager checkpoint (the periodic
// ticker handles quiet shards); it keeps a restructure-heavy warmup
// from checkpointing on every batch.
const ckptMinRecords = 64

func newShard(id int, cfg Config, log *wal.Log, recoveries, srvDim *atomic.Int64) *shard {
	sh := &shard{
		id:         id,
		cfg:        cfg,
		inj:        cfg.Faults,
		ch:         make(chan shardMsg, cfg.Buffer),
		log:        log,
		recoveries: recoveries,
		srvDim:     srvDim,
	}
	sh.freshCoresets()
	if log == nil {
		sh.ready.Store(true)
		return sh
	}
	sh.ckptSeq = 1
	if payload, next, ok := log.Checkpoint(); ok {
		sh.ckptPayload, sh.ckptSeq = payload, next
	}
	sh.replayTo = log.RecoveredSeq()
	sh.needRecover = true
	return sh
}

// freshCoresets (re)creates the shard's two processors. RemoteEdge and
// RemoteClique are representatives of their core-set families; the
// processors serve every measure of the same family. The dynamic
// constructor retains Spares absorbed points per SMM center so center
// deletions promote instead of dropping clusters.
func (s *shard) freshCoresets() {
	s.edge = divmax.NewDynamicStreamCoreset(divmax.RemoteEdge, s.cfg.MaxK, s.cfg.KPrime, s.cfg.Spares, divmax.Euclidean)
	s.proxy = divmax.NewDynamicStreamCoreset(divmax.RemoteClique, s.cfg.MaxK, s.cfg.KPrime, s.cfg.Spares, divmax.Euclidean)
}

// failed reports whether the shard has failed permanently.
func (s *shard) failed() bool { return s.health.Load() == shardFailed }

// run is the shard supervisor: it runs serve (the message loop) and, if
// serve dies to a panic, restarts the shard with fresh core-sets — up
// to Config.RestartBudget times, after which the shard is marked failed
// and drainFailed keeps answering the channel with errors so no sender
// ever blocks on a dead shard. It returns when the channel is closed
// (Server.Close) and fully drained, so no accepted message is ever left
// behind.
func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		if s.serve() {
			s.closeLog(true) // channel closed and drained: normal exit
			return
		}
		s.panics.Add(1)
		if s.restarts.Load() >= int64(s.cfg.RestartBudget) {
			s.health.Store(shardFailed)
			logf("server: shard %d failed permanently after %d panics (restart budget %d exhausted)",
				s.id, s.panics.Load(), s.cfg.RestartBudget)
			s.drainFailed()
			s.closeLog(false) // no checkpoint: keep the tail for the next boot
			return
		}
		s.restart()
	}
}

// closeLog finishes the shard's log at exit. A clean drain (checkpoint
// true, not abrupt) writes a final checkpoint first, so a clean restart
// replays zero records; an abrupt close skips both the checkpoint and
// the closing fsync, leaving the directory exactly as a crash would.
func (s *shard) closeLog(checkpoint bool) {
	if s.log == nil {
		return
	}
	abrupt := s.abrupt.Load()
	if checkpoint && !abrupt && !s.log.Crashed() && s.lastSeq+1 > s.ckptSeq {
		if err := s.writeCheckpoint(); err != nil {
			logf("server: shard %d: final checkpoint: %v (next start replays the log tail)", s.id, err)
		}
	}
	if err := s.log.Close(!abrupt); err != nil {
		logf("server: shard %d: closing wal: %v", s.id, err)
	}
}

// restart resets the shard for a fresh incarnation: new core-sets (the
// old ones may be mid-update corrupt — their points are lost, which the
// processed counts report honestly), a generation namespace bump so no
// cached (gen, pos) can alias into the new processors' append logs, and
// one accepted+processed epoch bump so every cached merge that includes
// this shard's pre-restart core-set reads as stale and rebuilds.
func (s *shard) restart() {
	s.restarts.Add(1)
	s.genBase += genIncarnation
	s.freshCoresets()
	s.stored.Store(0)
	s.accEpoch.Add(1)
	s.procEpoch.Add(1)
	if s.log != nil && !s.log.Crashed() {
		// Durable shard: the next serve() replays checkpoint + log tail
		// up to the last message recorded as folded — including the one
		// whose fold panicked (its record hit the disk before the fold
		// ran), so a transient poison loses nothing. Genuinely poisoned
		// data re-panics during replay and exhausts the budget honestly.
		s.needRecover = true
		s.replayTo = s.lastSeq
		logf("server: shard %d restarted, replaying wal through seq %d (restart %d of %d)",
			s.id, s.replayTo, s.restarts.Load(), s.cfg.RestartBudget)
		return
	}
	logf("server: shard %d restarted with fresh core-sets (restart %d of %d)",
		s.id, s.restarts.Load(), s.cfg.RestartBudget)
}

// serve drains the channel until it is closed, processing batches in
// arrival order and answering snapshot requests between them. It
// reports true when the channel closed (a clean drain) and false when
// a message handler panicked — the supervisor decides what happens
// next.
func (s *shard) serve() (closed bool) {
	defer func() {
		if r := recover(); r != nil {
			logf("server: shard %d panic: %v", s.id, r)
		}
	}()
	if s.needRecover {
		s.recoverFromLog()
		s.needRecover = false
	}
	s.ready.Store(true)
	for msg := range s.ch {
		s.handle(msg)
	}
	return true
}

// recoverFromLog rebuilds the shard's processors from its checkpoint
// plus a replay of the log tail (or the whole log when no checkpoint is
// usable), runs on the shard goroutine before the message loop — at
// boot, and again after every supervised panic. Replay feeds the
// processors the exact recorded batches in the exact recorded order, so
// the recovered state is bit-identical to an uninterrupted shard's; it
// bypasses the fault injector's batch hook (an injected panic is a
// property of live traffic, not of the data) and bumps no epochs (the
// restart already invalidated every cached view of this shard).
func (s *shard) recoverFromLog() {
	from := uint64(1)
	restored := false
	s.freshCoresets()
	s.ingested.Store(0)
	s.batches.Store(0)
	s.deleted.Store(0)
	if s.ckptPayload != nil {
		var ck shardCheckpoint
		err := gob.NewDecoder(bytes.NewReader(s.ckptPayload)).Decode(&ck)
		if err == nil {
			err = s.edge.Restore(ck.Edge)
		}
		if err == nil {
			err = s.proxy.Restore(ck.Proxy)
		}
		if err != nil {
			logf("server: shard %d: checkpoint unusable (%v), replaying the full log", s.id, err)
			s.freshCoresets() // edge may have restored before proxy failed
			s.ckptPayload, s.ckptSeq = nil, 1
		} else {
			restored = true
			from = s.ckptSeq
			s.ingested.Store(ck.Ingested)
			s.batches.Store(ck.Batches)
			s.deleted.Store(ck.Deleted)
			if ck.Dim != 0 {
				s.srvDim.CompareAndSwap(0, ck.Dim)
			}
			s.ckptEdgeGen, s.ckptProxGen = generation(s.edge), generation(s.proxy)
			// The file's write time is gone; stamp the restore so
			// checkpoint_age_ms is present (and sane) once one exists.
			s.lastCkptMS.Store(time.Now().UnixMilli())
			// Only now that the checkpoint has proven restorable may
			// compaction drop the segments it covers.
			s.log.SetCompactFloor(s.ckptSeq)
		}
	}
	replayed := int64(0)
	if s.replayTo >= from {
		err := s.log.Replay(from, s.replayTo, func(r wal.Record) error {
			switch r.Kind {
			case wal.KindIngest:
				s.edge.ProcessBatch(r.Points)
				s.proxy.ProcessBatch(r.Points)
				s.ingested.Add(int64(len(r.Points)))
				s.batches.Add(1)
				s.lastBatch.Store(int64(len(r.Points)))
			case wal.KindDelete:
				removed := 0
				for _, p := range r.Points {
					if max(s.edge.Delete(p), s.proxy.Delete(p)) != divmax.DeleteAbsent {
						removed++
					}
				}
				s.deleted.Add(int64(removed))
			}
			if len(r.Points) > 0 {
				s.srvDim.CompareAndSwap(0, int64(len(r.Points[0])))
				replayed += int64(len(r.Points))
			}
			return nil
		})
		if err != nil {
			// The log cannot reproduce the acknowledged stream. Surface it
			// as a panic: the supervisor retries, and if the log really is
			// unusable the restart budget turns this into an honest
			// permanent failure instead of silently serving partial data.
			panic(fmt.Sprintf("shard %d: wal replay: %v", s.id, err))
		}
	}
	s.lastSeq = s.replayTo
	s.stored.Store(int64(s.edge.StoredPoints() + s.proxy.StoredPoints()))
	s.replayed.Add(replayed)
	if restored || replayed > 0 {
		s.recoveries.Add(1)
		logf("server: shard %d recovered (checkpoint: %v, %d points replayed through seq %d)",
			s.id, restored, replayed, s.replayTo)
	}
	// Fold the tail into a fresh checkpoint so the next recovery starts
	// from here instead of re-replaying the same records.
	if s.lastSeq+1 > s.ckptSeq {
		if err := s.writeCheckpoint(); err != nil {
			logf("server: shard %d: post-recovery checkpoint: %v", s.id, err)
		}
	}
}

// generationer is satisfied by both StreamCoreset families (their
// processors count restructure events); the eager-checkpoint trigger
// reads it to notice that earlier log records became redundant.
type generationer interface{ Generation() uint64 }

func generation(c divmax.StreamCoreset[divmax.Vector]) uint64 {
	if g, ok := c.(generationer); ok {
		return g.Generation()
	}
	return 0
}

// writeCheckpoint serializes both processors and the counters into the
// shard's checkpoint file, covering everything folded so far. Runs on
// the shard goroutine only; appenders keep running (WriteCheckpoint
// never takes the append mutex).
func (s *shard) writeCheckpoint() error {
	edge, err := s.edge.Checkpoint()
	if err != nil {
		return err
	}
	proxy, err := s.proxy.Checkpoint()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(shardCheckpoint{
		Edge:     edge,
		Proxy:    proxy,
		Ingested: s.ingested.Load(),
		Batches:  s.batches.Load(),
		Deleted:  s.deleted.Load(),
		Dim:      s.srvDim.Load(),
	}); err != nil {
		return err
	}
	next := s.lastSeq + 1
	if err := s.log.WriteCheckpoint(buf.Bytes(), next); err != nil {
		return err
	}
	s.ckptPayload, s.ckptSeq = buf.Bytes(), next
	s.ckptEdgeGen, s.ckptProxGen = generation(s.edge), generation(s.proxy)
	s.lastCkptMS.Store(time.Now().UnixMilli())
	return nil
}

// maybeCheckpoint is the restructure-triggered eager checkpoint: once a
// processor's generation moves (a merge phase or an evicting delete),
// the records before it can never make earlier cached views patchable
// again, so — given enough accumulated records to be worth the write —
// checkpoint now and let compaction drop the covered segments rather
// than waiting for the ticker.
func (s *shard) maybeCheckpoint() {
	if s.log == nil || s.lastSeq+1-s.ckptSeq < ckptMinRecords {
		return
	}
	if generation(s.edge) == s.ckptEdgeGen && generation(s.proxy) == s.ckptProxGen {
		return
	}
	if err := s.writeCheckpoint(); err != nil {
		logf("server: shard %d: checkpoint: %v", s.id, err)
	}
}

// handle processes one message. It may panic (a poisoned batch, a
// corrupt processor, an injected fault); serve's recover turns that
// into a supervisor event.
func (s *shard) handle(msg shardMsg) {
	if msg.ckpt {
		if s.log != nil && s.lastSeq+1 > s.ckptSeq {
			if err := s.writeCheckpoint(); err != nil {
				logf("server: shard %d: checkpoint: %v", s.id, err)
			}
		}
		return
	}
	// Record the message as folded BEFORE touching the processors: its
	// WAL record is already on disk (Append wrote it before delivering),
	// so if the fold panics the replay includes this very message and
	// the restart loses nothing.
	if msg.seq != 0 {
		s.lastSeq = msg.seq
	}
	if msg.snap != nil {
		reply := snapReply{epoch: s.procEpoch.Load()}
		// Translate the requester's generation out of this incarnation's
		// namespace: a (gen, pos) recorded before the last restart can
		// never be a valid position in the fresh processors, so it forces
		// a full snapshot.
		gen, pos := msg.gen, msg.pos
		if pos >= 0 && gen >= s.genBase {
			gen -= s.genBase
		} else {
			gen, pos = 0, -1
		}
		if msg.proxy {
			reply.delta = s.proxy.SnapshotSince(gen, pos)
		} else {
			reply.delta = s.edge.SnapshotSince(gen, pos)
		}
		reply.delta.Gen += s.genBase
		if !s.inj.Snapshot(s.id) {
			return // injected reply drop: the requester's deadline covers it
		}
		msg.snap <- reply
		return
	}
	if msg.delReply != nil {
		// Delete broadcast: apply to BOTH families (a query for any
		// measure must never see a deleted point) and report, per
		// point, the strongest outcome. The epoch bump is deferred so a
		// panicking delete still keeps accEpoch and procEpoch in
		// lockstep (deleteAll bumped the accepted side before sending).
		defer s.procEpoch.Add(1)
		outs := make([]divmax.DeleteOutcome, len(msg.del))
		removed := 0
		for i, p := range msg.del {
			o := max(s.edge.Delete(p), s.proxy.Delete(p))
			outs[i] = o
			if o != divmax.DeleteAbsent {
				removed++
			}
		}
		s.deleted.Add(int64(removed))
		s.stored.Store(int64(s.edge.StoredPoints() + s.proxy.StoredPoints()))
		s.maybeCheckpoint()
		if !s.inj.Delete(s.id) {
			return // injected reply drop
		}
		msg.delReply <- deleteReply{outs: outs}
		return
	}
	batch := *msg.batch
	// Count the batch as processed even if the fold panics: the sender
	// already bumped accEpoch for it, and keeping the two counters in
	// lockstep is what lets post-restart snapshots become cacheable
	// again. The panicked batch's points are part of what the restart
	// loses.
	defer s.procEpoch.Add(1)
	s.inj.Batch(s.id, int(s.batches.Load()))
	s.edge.ProcessBatch(batch)
	s.proxy.ProcessBatch(batch)
	s.ingested.Add(int64(len(batch)))
	s.batches.Add(1)
	s.lastBatch.Store(int64(len(batch)))
	s.stored.Store(int64(s.edge.StoredPoints() + s.proxy.StoredPoints()))
	s.maybeCheckpoint()
	putVecSlice(msg.batch)
}

// drainFailed is the permanently-failed shard's message loop: every
// queued and future message gets an immediate error reply (or, for
// batches, a silent drop — their sender already got its 200 and the
// loss is reported through the health state and processed counts), so
// ingest fan-outs, delete broadcasts, and snapshot rounds sent before
// the failure became visible never block on a dead shard.
func (s *shard) drainFailed() {
	err := &shardFailedError{id: s.id}
	for msg := range s.ch {
		switch {
		case msg.snap != nil:
			msg.snap <- snapReply{err: err}
		case msg.delReply != nil:
			msg.delReply <- deleteReply{err: err}
		case msg.batch != nil:
			putVecSlice(msg.batch)
		}
	}
}
