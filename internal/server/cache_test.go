package server

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"divmax"
)

// TestQueryCacheHitAndInvalidation is the cache contract test: a
// repeated query hits (identical response, merge skipped), a query with
// a different k still hits the merged state, /stats reports the
// counters and the retained matrix, and an /ingest invalidates so the
// next query reflects the new points.
func TestQueryCacheHitAndInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := clusterPoints(rng, []divmax.Vector{{0, 0}, {600, 0}, {0, 600}, {600, 600}}, 40, 8)

	_, ts := newTestServer(t, Config{Shards: 3, MaxK: 5, KPrime: 15})
	postIngest(t, ts.URL, pts)

	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		cold := getQuery(t, ts.URL, 4, m)
		if cold.Cached {
			t.Fatalf("%v: first query after ingest reported cached", m)
		}
		warm := getQuery(t, ts.URL, 4, m)
		if !warm.Cached {
			t.Fatalf("%v: repeated query did not hit the cache", m)
		}
		if !reflect.DeepEqual(warm.Solution, cold.Solution) {
			t.Fatalf("%v: cached solution %v differs from uncached %v", m, warm.Solution, cold.Solution)
		}
		if math.Float64bits(warm.Value) != math.Float64bits(cold.Value) ||
			warm.Exact != cold.Exact ||
			warm.Processed != cold.Processed ||
			warm.CoresetSize != cold.CoresetSize {
			t.Fatalf("%v: cached response %+v differs from uncached %+v", m, warm, cold)
		}
		otherK := getQuery(t, ts.URL, 3, m)
		if !otherK.Cached {
			t.Fatalf("%v: different k against the same stream state missed the cache", m)
		}
		if len(otherK.Solution) != 3 {
			t.Fatalf("%v: cached-state query with k=3 returned %d points", m, len(otherK.Solution))
		}
	}

	stats := getStats(t, ts.URL)
	// Per family: one miss then two hits; two families.
	if stats.CacheMisses != 2 || stats.CacheHits != 4 {
		t.Fatalf("cache counters = %d hits / %d misses, want 4 / 2", stats.CacheHits, stats.CacheMisses)
	}
	if stats.CachedCoresetPoints <= 0 {
		t.Fatal("stats report no cached core-set points after queries")
	}
	if stats.CachedMatrixBytes <= 0 {
		t.Fatal("stats report no cached matrix after queries")
	}

	// Invalidation: any accepted batch must force a re-merge that sees
	// the new points.
	extra := clusterPoints(rng, []divmax.Vector{{3000, 3000}}, 10, 1)
	postIngest(t, ts.URL, extra)
	after := getQuery(t, ts.URL, 4, divmax.RemoteEdge)
	if after.Cached {
		t.Fatal("query after ingest still served the stale cache")
	}
	if want := int64(len(pts) + len(extra)); after.Processed != want {
		t.Fatalf("query after ingest processed %d, want %d", after.Processed, want)
	}
	again := getQuery(t, ts.URL, 4, divmax.RemoteEdge)
	if !again.Cached || !reflect.DeepEqual(again.Solution, after.Solution) {
		t.Fatal("re-query after invalidation did not serve the rebuilt state")
	}
}

// TestQueryCacheMatchesFreshServer pins cached-path correctness against
// an independent, never-cached reference: a twin server fed the same
// batches answers its first (cold) query with exactly the solution the
// first server serves from cache.
func TestQueryCacheMatchesFreshServer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	batches := [][]divmax.Vector{
		clusterPoints(rng, []divmax.Vector{{0, 0}, {400, 0}}, 30, 4),
		clusterPoints(rng, []divmax.Vector{{0, 400}, {400, 400}}, 30, 4),
	}
	cfg := Config{Shards: 2, MaxK: 4, KPrime: 12}
	_, cachedTS := newTestServer(t, cfg)
	_, freshTS := newTestServer(t, cfg)
	for _, b := range batches {
		postIngest(t, cachedTS.URL, b)
		postIngest(t, freshTS.URL, b)
	}
	coldFamilies := make(map[bool]bool) // family → already built on the fresh server
	for _, m := range divmax.Measures {
		getQuery(t, cachedTS.URL, 4, m) // populate the cache
		cached := getQuery(t, cachedTS.URL, 4, m)
		if !cached.Cached {
			t.Fatalf("%v: second query did not hit the cache", m)
		}
		fresh := getQuery(t, freshTS.URL, 4, m)
		// Measures sharing a core-set family share the merged state, so
		// only the first measure of each family is cold on the fresh
		// server.
		family := m.NeedsInjectiveProxy()
		if fresh.Cached == !coldFamilies[family] {
			t.Fatalf("%v: fresh server's query cached=%v, want %v", m, fresh.Cached, coldFamilies[family])
		}
		coldFamilies[family] = true
		if !reflect.DeepEqual(cached.Solution, fresh.Solution) {
			t.Fatalf("%v: cached solution %v differs from fresh server's %v", m, cached.Solution, fresh.Solution)
		}
		if math.Float64bits(cached.Value) != math.Float64bits(fresh.Value) {
			t.Fatalf("%v: cached value %v differs from fresh server's %v", m, cached.Value, fresh.Value)
		}
	}
}

// TestQueryCacheEmptyServer: the cache must also work on a pointless
// (sic) stream — an empty merge is a valid state to cache and must not
// wedge later queries.
func TestQueryCacheEmptyServer(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 3, KPrime: 6})
	first := getQuery(t, ts.URL, 2, divmax.RemoteEdge)
	if first.Cached || len(first.Solution) != 0 {
		t.Fatalf("empty server first query = %+v", first)
	}
	second := getQuery(t, ts.URL, 2, divmax.RemoteEdge)
	if !second.Cached || len(second.Solution) != 0 {
		t.Fatalf("empty server repeated query = %+v", second)
	}
	postIngest(t, ts.URL, []divmax.Vector{{0, 0}, {9, 9}})
	after := getQuery(t, ts.URL, 2, divmax.RemoteEdge)
	if after.Cached || len(after.Solution) != 2 {
		t.Fatalf("query after first ingest = %+v", after)
	}
}

// failingWriter is an http.ResponseWriter whose body writes always fail,
// as they do when the client hangs up mid-response.
type failingWriter struct{ header http.Header }

func (w *failingWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}
func (w *failingWriter) WriteHeader(int)           {}
func (w *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client went away") }

// TestWriteJSONLogsEncodeError covers the /stats handler with a broken
// response writer: the encode error must reach the log instead of being
// silently dropped.
func TestWriteJSONLogsEncodeError(t *testing.T) {
	var logged []string
	orig := logf
	logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	defer func() { logf = orig }()

	srv, err := New(Config{Shards: 1, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.handleStats(&failingWriter{}, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if len(logged) != 1 || !strings.Contains(logged[0], "client went away") {
		t.Fatalf("encode error was not logged: %q", logged)
	}

	// A healthy writer must log nothing.
	logged = nil
	srv.handleStats(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/stats", nil))
	if len(logged) != 0 {
		t.Fatalf("unexpected log output on a healthy writer: %q", logged)
	}
}
