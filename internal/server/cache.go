package server

import (
	"slices"
	"sync"

	"divmax"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

// Query-path snapshot cache.
//
// The expensive part of /query is not the sequential solve alone: it is
// snapshotting every shard, merging the per-shard core-sets, and — on
// the remote-clique path — filling the union's pairwise DistMatrix. None
// of that depends on (k, measure) beyond the core-set family, and all of
// it is a pure function of how many batches each shard has folded in. So
// the server keeps, per family, the last merged state keyed by the
// per-shard ingest epochs: while no shard has accepted a new batch, a
// query reuses the previously merged core-set and its matrix (and, for a
// repeated (measure, k), the previously solved answer) instead of
// re-merging and re-filling from scratch. Any /ingest bumps an accepted
// epoch and the next query rebuilds — the cache can never serve a state
// older than what was accepted before the query arrived, preserving the
// service's read-your-writes snapshot semantics.
//
// Results are identical with and without the cache: the cached state is
// exactly the state an uncached query would rebuild (same epochs, same
// snapshots), and the solver it feeds — SolveMatrix over the retained
// matrix — selects the same solution as the uncached solve path
// (internal/sequential's matrix equivalence tests pin this bit for bit).

// cacheFamilies indexes the two core-set families: 0 — SMM (remote-edge,
// remote-cycle), 1 — SMM-EXT (the four injective-proxy measures).
const cacheFamilies = 2

func cacheIndex(proxy bool) int {
	if proxy {
		return 1
	}
	return 0
}

// solutionKey memoizes solved answers within one merged state; the state
// is immutable, so a (measure, k) solve is a pure function of it.
type solutionKey struct {
	measure divmax.Measure
	k       int
}

// solvedQuery is a memoized answer, stored response-ready (non-nil
// solution, finite value).
type solvedQuery struct {
	sol   []divmax.Vector
	val   float64
	exact bool
}

// mergeState is one family's merged view of the stream at a fixed vector
// of shard epochs. union and matrix are immutable after construction and
// shared by every query that hits this state; solutions is guarded by
// the owning familyCache's mutex.
type mergeState struct {
	// epochs[i] is shard i's processed-batch count at snapshot time.
	epochs []uint64
	// union is the merged per-shard core-set family.
	union []divmax.Vector
	// matrix is the union's pairwise squared-distance matrix, nil when
	// the fast path does not apply (union of 0–1 points, or larger than
	// the build cap — the solver then falls back to the generic path).
	matrix *metric.DistMatrix
	// processed is the total number of stream points the snapshots
	// reflect.
	processed int64
	// solutions memoizes solved (measure, k) answers against this state.
	solutions map[solutionKey]solvedQuery
}

// familyCache holds one family's latest mergeState. mu guards the state
// pointer and the solutions map of whichever state it points at (held
// only for pointer/map operations); rebuild serializes the expensive
// snapshot + merge + matrix fill so a burst of queries arriving after an
// invalidation performs one rebuild, not one per query.
type familyCache struct {
	mu      sync.Mutex
	rebuild sync.Mutex
	state   *mergeState
}

// current reports whether st is up to date with the accepted epochs.
func (st *mergeState) current(accepted []uint64) bool {
	return st != nil && slices.Equal(st.epochs, accepted)
}

// acceptedEpochs reads every shard's accepted-batch counter.
func (s *Server) acceptedEpochs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.accEpoch.Load()
	}
	return out
}

// merged returns the family cache and an up-to-date merged state for
// measure m, rebuilding the state — snapshot, merge, matrix fill — when
// any shard accepted a batch since the cached one. The boolean reports a
// cache hit (merge and matrix fill skipped).
func (s *Server) merged(m divmax.Measure) (*familyCache, *mergeState, bool, error) {
	// A draining server rejects queries even on a cache hit: Close means
	// no more answers, not answers from the last snapshot.
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		return nil, nil, false, errDraining
	}
	c := &s.caches[cacheIndex(m.NeedsInjectiveProxy())]
	c.mu.Lock()
	st := c.state
	c.mu.Unlock()
	if st.current(s.acceptedEpochs()) {
		s.cacheHits.Add(1)
		return c, st, true, nil
	}
	// Serialize the rebuild: concurrent queries that missed together wait
	// here, then re-check — all but the first are served by the rebuild
	// the first one performed.
	c.rebuild.Lock()
	defer c.rebuild.Unlock()
	c.mu.Lock()
	st = c.state
	c.mu.Unlock()
	if st.current(s.acceptedEpochs()) {
		s.cacheHits.Add(1)
		return c, st, true, nil
	}
	s.cacheMisses.Add(1)
	snaps, epochs, err := s.snapshots(m)
	if err != nil {
		return nil, nil, false, err
	}
	st = &mergeState{
		epochs:    epochs,
		solutions: make(map[solutionKey]solvedQuery),
	}
	for _, snap := range snaps {
		st.processed += snap.Processed
		st.union = append(st.union, snap.Points...)
	}
	// The matrix is filled here, once per stream state, in parallel
	// across rows; every query against this state reuses it.
	st.matrix = sequential.BuildMatrix(st.union, divmax.Euclidean, 0)
	c.mu.Lock()
	c.state = st
	c.mu.Unlock()
	return c, st, false, nil
}

// solveMerged runs the round-2 sequential α-approximation on a merged
// state: index-based against the retained matrix when one was built,
// generic otherwise. Identical output either way (the matrix solvers'
// bit-identical-selection contract).
func solveMerged(m divmax.Measure, st *mergeState, k int) []divmax.Vector {
	if len(st.union) == 0 {
		return nil
	}
	if st.matrix != nil {
		return sequential.SolveMatrix(m, st.union, st.matrix, k)
	}
	return sequential.Solve(m, st.union, k, divmax.Euclidean)
}
