package server

import (
	"slices"
	"sync"

	"divmax"
	"divmax/internal/sequential"
)

// Query-path snapshot cache.
//
// The expensive part of /query is not the sequential solve alone: it is
// snapshotting every shard, merging the per-shard core-sets, and — on
// the remote-clique path — building the union's solve engine (the
// pairwise DistMatrix fill within the memory budget, the flat store
// behind tiled solves beyond it). None of that depends on (k, measure)
// beyond the core-set family, and all of it is a pure function of how
// many batches each shard has folded in. So the server keeps, per
// family, the last merged state keyed by the per-shard ingest epochs:
// while no shard has accepted a new batch, a query reuses the
// previously merged core-set and its engine (and, for a repeated
// (measure, k), the previously solved answer) instead of re-merging and
// re-building from scratch. Any /ingest bumps an accepted epoch and the
// next query rebuilds — the cache can never serve a state older than
// what was accepted before the query arrived, preserving the service's
// read-your-writes snapshot semantics.
//
// Results are identical with and without the cache: the cached state is
// exactly the state an uncached query would rebuild (same epochs, same
// snapshots), and the solver it feeds — SolveEngine over the retained
// engine, sharded across the server's solve workers — selects the same
// solution as the uncached solve path (internal/sequential's engine
// equivalence tests pin this bit for bit, for every worker count and
// both engine modes).

// cacheFamilies indexes the two core-set families: 0 — SMM (remote-edge,
// remote-cycle), 1 — SMM-EXT (the four injective-proxy measures).
const cacheFamilies = 2

func cacheIndex(proxy bool) int {
	if proxy {
		return 1
	}
	return 0
}

// solutionKey memoizes solved answers within one merged state; the state
// is immutable, so a (measure, k) solve is a pure function of it.
type solutionKey struct {
	measure divmax.Measure
	k       int
}

// solvedQuery is a memoized answer, stored response-ready (non-nil
// solution, finite value).
type solvedQuery struct {
	sol   []divmax.Vector
	val   float64
	exact bool
}

// mergeState is one family's merged view of the stream at a fixed vector
// of shard epochs. union and engine are immutable after construction and
// shared by every query that hits this state; solutions is guarded by
// the owning familyCache's mutex.
type mergeState struct {
	// epochs[i] is shard i's processed-batch count at snapshot time.
	epochs []uint64
	// union is the merged per-shard core-set family.
	union []divmax.Vector
	// engine is the union's round-2 solve engine — a retained distance
	// matrix within the memory budget, the tiled flat store beyond it —
	// nil when the fast path does not apply (union of 0–1 points; the
	// solver then falls back to the generic path).
	engine *sequential.Engine
	// processed is the total number of stream points the snapshots
	// reflect.
	processed int64
	// solutions memoizes solved (measure, k) answers against this state,
	// LRU-bounded by Config.SolutionMemo.
	solutions *solutionMemo
}

// familyCache holds one family's latest mergeState. mu guards the state
// pointer and the solutions map of whichever state it points at (held
// only for pointer/map operations); rebuild serializes the expensive
// snapshot + merge + matrix fill so a burst of queries arriving after an
// invalidation performs one rebuild, not one per query.
type familyCache struct {
	mu      sync.Mutex
	rebuild sync.Mutex
	state   *mergeState
}

// current reports whether st is up to date with the accepted epochs.
func (st *mergeState) current(accepted []uint64) bool {
	return st != nil && slices.Equal(st.epochs, accepted)
}

// acceptedEpochs reads every shard's accepted-batch counter.
func (s *Server) acceptedEpochs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.accEpoch.Load()
	}
	return out
}

// merged returns the family cache and an up-to-date merged state for
// measure m, rebuilding the state — snapshot, merge, matrix fill — when
// any shard accepted a batch since the cached one. The boolean reports a
// cache hit (merge and matrix fill skipped).
func (s *Server) merged(m divmax.Measure) (*familyCache, *mergeState, bool, error) {
	// A draining server rejects queries even on a cache hit: Close means
	// no more answers, not answers from the last snapshot.
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		return nil, nil, false, errDraining
	}
	c := &s.caches[cacheIndex(m.NeedsInjectiveProxy())]
	c.mu.Lock()
	st := c.state
	c.mu.Unlock()
	if st.current(s.acceptedEpochs()) {
		s.cacheHits.Add(1)
		return c, st, true, nil
	}
	// Serialize the rebuild: concurrent queries that missed together wait
	// here, then re-check — all but the first are served by the rebuild
	// the first one performed.
	c.rebuild.Lock()
	defer c.rebuild.Unlock()
	c.mu.Lock()
	st = c.state
	c.mu.Unlock()
	if st.current(s.acceptedEpochs()) {
		s.cacheHits.Add(1)
		return c, st, true, nil
	}
	s.cacheMisses.Add(1)
	snaps, epochs, err := s.snapshots(m)
	if err != nil {
		return nil, nil, false, err
	}
	st = &mergeState{
		epochs:    epochs,
		solutions: newSolutionMemo(s.cfg.SolutionMemo),
	}
	for _, snap := range snaps {
		st.processed += snap.Processed
		st.union = append(st.union, snap.Points...)
	}
	// The engine is built here, once per stream state — the matrix fill
	// runs in parallel across the solve workers; in tiled mode only the
	// flat store is retained — and every query against this state reuses
	// it.
	st.engine = sequential.BuildEngine(st.union, divmax.Euclidean, s.cfg.SolveWorkers)
	c.mu.Lock()
	c.state = st
	c.mu.Unlock()
	return c, st, false, nil
}

// solveMerged runs the round-2 sequential α-approximation on a merged
// state: index-based against the retained engine when one was built —
// the Ω(n²) scans sharded across the server's solve workers, streaming
// row-blocks when the union is past the matrix budget — generic
// otherwise. Identical output either way (the engine solvers'
// bit-identical-selection contract).
func (s *Server) solveMerged(m divmax.Measure, st *mergeState, k int) []divmax.Vector {
	if len(st.union) == 0 {
		return nil
	}
	if st.engine != nil {
		if st.engine.Tiled() {
			s.tiledSolves.Add(1)
		}
		return sequential.SolveEngine(m, st.union, st.engine, k)
	}
	return sequential.Solve(m, st.union, k, divmax.Euclidean)
}
