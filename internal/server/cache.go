package server

import (
	"context"
	"math"
	"slices"
	"sync"

	"divmax"
	"divmax/internal/metric"
	"divmax/internal/sequential"
)

// Query-path snapshot cache, with incremental (copy-on-patch) merges.
//
// The expensive part of /query is not the sequential solve alone: it is
// snapshotting every shard, merging the per-shard core-sets, and — on
// the remote-clique path — building the union's solve engine (the
// pairwise DistMatrix fill within the memory budget, the flat store
// behind tiled solves beyond it). None of that depends on (k, measure)
// beyond the core-set family, and all of it is a pure function of how
// many batches each shard has folded in. So the server keeps, per
// family, the last merged state keyed by the per-shard ingest epochs:
// while no shard has accepted a new batch, a query reuses the
// previously merged core-set and its engine (and, for a repeated
// (measure, k), the previously solved answer) instead of re-merging and
// re-building from scratch.
//
// When a shard HAS accepted a batch, the cache patches instead of
// rebuilding whenever it can. Each shard's StreamCoreset reports, via
// SnapshotSince, either a pure delta — the points that joined its
// core-set since the cached state, valid exactly while the core-set has
// not restructured (its generation is unchanged) — or a full snapshot.
// If every shard reports a pure delta and the deltas total at most
// Config.DeltaBudget × the cached union, the stale query patches: it
// clones the union header, appends the deltas (in shard order), extends
// a copy-safe fork of the solve engine — new matrix rows plus the
// old×new column stripe via capacity-doubling DistMatrix.Grown, or just
// the flat store in tiled mode — and installs the new state. A single
// accepted point therefore costs O(delta·union) instead of the
// O(union²) refill the pre-PR-5 cache paid. If any shard's generation
// moved, or the deltas exceed the budget, the query falls back to the
// full snapshot + merge + fill path.
//
// Correctness. A patched union is the cached union plus every point
// that joined any shard's core-set since — a set of genuine stream
// points that contains each shard's current core-set as a subset (see
// divmax.CoresetDelta), so solving over it keeps the full α+ε core-set
// guarantee. A patched union's ORDER is the cached order with deltas
// appended, which is not the order a from-scratch shard concatenation
// would produce; the engine equivalence that matters — and that the
// interleaving fuzz harness pins — is that a patched state is
// bit-identical, solutions and engine mode, to rebuilding the engine
// from scratch over the same patched union (BuildEngine(prefix) +
// Append(delta) ≡ BuildEngine(all), internal/sequential's append
// equivalence tests). Config.DisableDeltaPatch switches a server to
// exactly that reference behavior: identical patch/fallback decisions
// and identical unions, every engine built from scratch.
//
// Results are identical with and without the cache on an unchanged
// stream: a cache hit serves exactly the state an uncached query would
// rebuild, and the engine solvers select bit-identically to the generic
// path for every worker count and both engine modes.

// cacheFamilies indexes the two core-set families: 0 — SMM (remote-edge,
// remote-cycle), 1 — SMM-EXT (the four injective-proxy measures).
const cacheFamilies = 2

func cacheIndex(proxy bool) int {
	if proxy {
		return 1
	}
	return 0
}

// solutionKey memoizes solved answers within one merged state; the state
// is immutable, so a (measure, k) solve is a pure function of it.
type solutionKey struct {
	measure divmax.Measure
	k       int
}

// solvedQuery is a memoized answer, stored response-ready (non-nil
// solution, finite value). idx holds the engine indices the solution
// was selected at — positions into the owning state's union, nil when
// the solve ran on the generic (engine-less) path — and is what lets a
// later patched state replay the selection against its delta points to
// prove the stale answer still exact (warmStartValid).
type solvedQuery struct {
	sol   []divmax.Vector
	idx   []int
	val   float64
	exact bool
}

// mergeState is one family's merged view of the stream at a fixed vector
// of shard epochs. union and engine are immutable after construction and
// shared by every query that hits this state; solutions is guarded by
// the owning familyCache's mutex.
type mergeState struct {
	// epochs[i] is shard i's processed-batch count at snapshot time.
	epochs []uint64
	// gens[i] and poss[i] are shard i's core-set generation and
	// append-log position at snapshot time (per family), handed back to
	// SnapshotSince so the next stale query can request a pure delta.
	gens []uint64
	poss []int
	// union is the merged per-shard core-set family: a concatenation of
	// full shard snapshots after a rebuild, or the previous union plus
	// the per-shard deltas after a patch.
	union []divmax.Vector
	// engine is the union's round-2 solve engine — a retained distance
	// matrix within the memory budget, the tiled flat store beyond it —
	// nil when the fast path does not apply (union of 0–1 points; the
	// solver then falls back to the generic path).
	engine *sequential.Engine
	// processed is the total number of stream points the snapshots
	// reflect.
	processed int64
	// solutions memoizes solved (measure, k) answers against this state,
	// LRU-bounded by Config.SolutionMemo.
	solutions *solutionMemo
	// stale is an ancestor state's solution memo, carried along the
	// delta-patch chain: its answers were solved over union[:staleLen]
	// (every patch only appends, so that prefix is untouched), and a
	// stale answer may be served for THIS state once warmStartValid
	// replays its selection and proves no point of union[staleLen:]
	// could change it. nil after a full rebuild — the union was laid
	// out afresh and old indices mean nothing.
	stale    *solutionMemo
	staleLen int
}

// familyCache holds one family's latest mergeState. mu guards the state
// pointer and the solutions map of whichever state it points at (held
// only for pointer/map operations); rebuild — a one-slot semaphore
// rather than a mutex, so waiters can select against their request
// deadline — serializes the expensive snapshot + merge + fill (and
// every engine patch, which is what makes chained engine forks safe):
// a burst of queries arriving after an invalidation performs one
// rebuild, not one per query, and a query queued behind a slow rebuild
// still returns 504 in time instead of blocking past its deadline.
type familyCache struct {
	mu      sync.Mutex
	rebuild chan struct{}
	state   *mergeState
}

// mergeHow reports how a query's merged state was obtained.
type mergeHow int

const (
	// mergeHit: the cached state was current; nothing was touched.
	mergeHit mergeHow = iota
	// mergePatched: the cached state was stale but patchable — the new
	// state reuses the cached union and engine, extended by the
	// per-shard deltas.
	mergePatched
	// mergeRebuilt: full snapshot + merge + fill.
	mergeRebuilt
)

// current reports whether st is up to date with the accepted epochs.
func (st *mergeState) current(accepted []uint64) bool {
	return st != nil && slices.Equal(st.epochs, accepted)
}

// acceptedEpochs reads every shard's accepted-batch counter.
func (s *Server) acceptedEpochs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.accEpoch.Load()
	}
	return out
}

// merged returns the family cache and an up-to-date merged state for
// measure m, patching the cached state — union clone + delta append +
// engine extension — when every shard can serve a pure delta within the
// delta budget, and rebuilding it (snapshot, merge, fill) otherwise.
// Every wait — the rebuild semaphore, the snapshot fan-out — selects
// against ctx, and a permanently failed shard fails the merge even on
// what would be a cache hit: the cached state includes that shard's
// pre-failure core-set, but its slice of the stream is no longer
// served, so the caller decides whether to answer degraded instead.
func (s *Server) merged(ctx context.Context, m divmax.Measure) (*familyCache, *mergeState, mergeHow, error) {
	// A draining server rejects queries even on a cache hit: Close means
	// no more answers, not answers from the last snapshot.
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		return nil, nil, mergeRebuilt, errDraining
	}
	if err := s.failedShard(); err != nil {
		return nil, nil, mergeRebuilt, err
	}
	c := &s.caches[cacheIndex(m.NeedsInjectiveProxy())]
	c.mu.Lock()
	st := c.state
	c.mu.Unlock()
	if st.current(s.acceptedEpochs()) {
		s.cacheHits.Add(1)
		return c, st, mergeHit, nil
	}
	// Serialize the rebuild: concurrent queries that missed together wait
	// here, then re-check — all but the first are served by the rebuild
	// (or patch) the first one performed.
	select {
	case c.rebuild <- struct{}{}:
	case <-ctx.Done():
		return nil, nil, mergeRebuilt, ctx.Err()
	}
	defer func() { <-c.rebuild }()
	c.mu.Lock()
	prev := c.state
	c.mu.Unlock()
	if prev.current(s.acceptedEpochs()) {
		s.cacheHits.Add(1)
		return c, prev, mergeHit, nil
	}
	// Miss counters are bumped only once a resolution commits (alongside
	// the matching deltaPatches/fullRebuilds increment), so a snapshot
	// round aborted by a concurrent drain cannot break the invariant
	// misses == patches + rebuilds.

	if prev != nil && s.cfg.DeltaBudget >= 0 {
		replies, err := s.snapshots(ctx, m, prev, false)
		if err != nil {
			return nil, nil, mergeRebuilt, err
		}
		if st, how, ok := s.patchState(prev, replies); ok {
			s.missesInvalidated.Add(1)
			c.mu.Lock()
			c.state = st
			c.mu.Unlock()
			return c, st, how, nil
		}
		// Some shard restructured, or the deltas exceeded the budget:
		// fall through to a fresh full-snapshot round (the delta replies
		// hold deltas, not complete core-sets).
	}

	replies, err := s.snapshots(ctx, m, nil, false)
	if err != nil {
		return nil, nil, mergeRebuilt, err
	}
	st = &mergeState{
		epochs:    make([]uint64, len(replies)),
		gens:      make([]uint64, len(replies)),
		poss:      make([]int, len(replies)),
		solutions: newSolutionMemo(s.cfg.SolutionMemo),
	}
	for i, r := range replies {
		st.epochs[i] = r.epoch
		st.gens[i] = r.delta.Gen
		st.poss[i] = r.delta.Pos
		st.processed += r.delta.Processed
		st.union = append(st.union, r.delta.Points...)
	}
	// The engine is built here, once per stream state — the matrix fill
	// runs in parallel across the solve workers; in tiled mode only the
	// flat store is retained — and every query against this state reuses
	// or extends it.
	st.engine = sequential.BuildEngine(st.union, divmax.Euclidean, s.cfg.SolveWorkers)
	if prev == nil {
		s.missesCold.Add(1)
	} else {
		s.missesInvalidated.Add(1)
	}
	s.fullRebuilds.Add(1)
	c.mu.Lock()
	c.state = st
	c.mu.Unlock()
	return c, st, mergeRebuilt, nil
}

// degradedState builds a one-off merged state over the surviving
// shards' core-sets: a full-snapshot round in degraded mode (per-shard
// errors instead of a failed round), the successful replies
// concatenated in shard order, the engine built fresh. Composability
// (Section 4 of the paper) is what makes this sound — the union of any
// subset of per-shard core-sets is a valid core-set for the points
// those shards ingested, so the answer keeps the α+ε guarantee over the
// surviving ground set. The state deliberately bypasses the snapshot
// cache in both directions: it is never installed (a later healthy
// query must not inherit a partial view) and bumps no miss counters
// (preserving the invariant misses == patches + rebuilds). missing is
// the number of shards that did not contribute; when every shard is
// missing there is nothing to answer from and the first per-shard
// error is returned.
func (s *Server) degradedState(ctx context.Context, m divmax.Measure) (*mergeState, int, error) {
	replies, err := s.snapshots(ctx, m, nil, true)
	if err != nil {
		return nil, 0, err
	}
	st := &mergeState{}
	missing := 0
	var firstErr error
	for _, r := range replies {
		if r.err != nil {
			missing++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		st.processed += r.delta.Processed
		st.union = append(st.union, r.delta.Points...)
	}
	if missing == len(replies) {
		return nil, missing, firstErr
	}
	st.engine = sequential.BuildEngine(st.union, divmax.Euclidean, s.cfg.SolveWorkers)
	return st, missing, nil
}

// patchState builds the successor of prev from per-shard delta replies,
// reporting how its engine was obtained — mergePatched when the cached
// engine carried over or was extended, mergeRebuilt when it was built
// from scratch (reference mode), so /query's patched flag always agrees
// with the delta_patches/full_rebuilds stats. It reports ok=false when
// any shard could not serve a pure delta (its core-set restructured
// since prev) or the deltas exceed the configured fraction of the
// cached union — the caller then takes the full path.
func (s *Server) patchState(prev *mergeState, replies []snapReply) (*mergeState, mergeHow, bool) {
	total := 0
	for _, r := range replies {
		if !r.delta.Partial {
			return nil, mergeRebuilt, false
		}
		total += len(r.delta.Points)
	}
	if float64(total) > s.cfg.DeltaBudget*float64(len(prev.union)) {
		return nil, mergeRebuilt, false
	}
	st := &mergeState{
		epochs: make([]uint64, len(replies)),
		gens:   make([]uint64, len(replies)),
		poss:   make([]int, len(replies)),
	}
	var delta []divmax.Vector
	for i, r := range replies {
		st.epochs[i] = r.epoch
		st.gens[i] = r.delta.Gen
		st.poss[i] = r.delta.Pos
		st.processed += r.delta.Processed
		delta = append(delta, r.delta.Points...)
	}
	if len(delta) == 0 && !s.cfg.DisableDeltaPatch {
		// Batches were accepted but every point was absorbed without
		// growing any core-set — the steady state of a saturated stream.
		// The union, engine, and even the (measure, k) answers carry
		// over untouched.
		st.union = prev.union
		st.engine = prev.engine
		st.solutions = prev.solutions
		st.stale, st.staleLen = prev.stale, prev.staleLen
		s.deltaPatches.Add(1)
		return st, mergePatched, true
	}
	// Clone the union header (full-slice expression forces a fresh
	// backing array) and append the deltas in shard order; readers of
	// prev.union are untouched.
	st.union = append(prev.union[:len(prev.union):len(prev.union)], delta...)
	st.solutions = newSolutionMemo(s.cfg.SolutionMemo)
	// Chain the warm-start memo: the predecessor's own answers if it has
	// any (they were solved over exactly union[:len(prev.union)]),
	// otherwise whatever it inherited — an unqueried intermediate patch
	// must not sever the chain. Reference mode chains nothing: the
	// DisableDeltaPatch server must answer every stale query with a cold
	// solve, so the interleaving fuzz harness pins warm-started answers
	// bit for bit against genuinely re-solved ones.
	if !s.cfg.DisableDeltaPatch {
		if prev.solutions != nil && prev.solutions.len() > 0 {
			st.stale, st.staleLen = prev.solutions, len(prev.union)
		} else {
			st.stale, st.staleLen = prev.stale, prev.staleLen
		}
	}
	how := mergePatched
	switch {
	case s.cfg.DisableDeltaPatch:
		// Reference mode (the interleaving fuzz harness): identical
		// patch decisions and unions, but every engine is built from
		// scratch — what the append-equivalence contract says patching
		// must match bit for bit.
		st.engine = sequential.BuildEngine(st.union, divmax.Euclidean, s.cfg.SolveWorkers)
		s.fullRebuilds.Add(1)
		how = mergeRebuilt
	case prev.engine == nil:
		// Nothing to extend (cached union of 0–1 points): build fresh
		// over the patched union.
		st.engine = sequential.BuildEngine(st.union, divmax.Euclidean, s.cfg.SolveWorkers)
		s.deltaPatches.Add(1)
	default:
		// The copy-safe fork: concurrent solves on prev.engine keep
		// reading their immutable prefix while the fork gains the new
		// rows and column stripe (or, in tiled mode, just the grown flat
		// store). The rebuild mutex guarantees only the latest fork of
		// the chain is ever extended.
		eng := prev.engine.Fork()
		if sequential.AppendEngine(eng, delta) {
			st.engine = eng
		} else {
			// Unreachable with /ingest-validated vectors; kept as a safe
			// fallback.
			st.engine = sequential.BuildEngine(st.union, divmax.Euclidean, s.cfg.SolveWorkers)
		}
		s.deltaPatches.Add(1)
	}
	return st, how, true
}

// warmStartValid reports whether a stale (non-clique) answer — selected
// by the engine's farthest-first traversal over union[:staleLen] at the
// indices idx — is exactly what a cold solve over the FULL patched
// union would select, by replaying the traversal's decisions against
// the delta points.
//
// The traversal (sequential.gmmEngine) starts at index 0 and at each
// step picks the point maximizing the squared distance to the chosen
// set, scanning ascending with a strict '>' so ties keep the lowest
// index. The patch appended the delta AFTER the stale prefix, so the
// prefix indices — and the stale answer's whole candidate order — are
// unchanged; the cold solve diverges if and only if, at some step t,
// a delta point's distance to the already-chosen set strictly exceeds
// v_t, the squared distance at which the stale answer picked idx[t]
// (a delta point that merely ties loses to the lower prefix index).
// The replay therefore walks the stale picks in order, maintaining
// each delta point's min squared distance to the chosen set, and
// rejects on the first step a delta point would have won. All
// comparisons run on metric.SquaredEuclidean, which evaluates the
// same canonical four-lane sum as the engine's kernels — the replay
// compares bit-identical values to the ones a cold solve would.
//
// Conservative rejections (never false positives): answers without
// engine indices (generic-path solves), answers whose length is not k
// (the stale union was smaller than k — a bigger union would pick more
// points), and any out-of-range index.
func (st *mergeState) warmStartValid(idx []int, k int) bool {
	n, l := len(st.union), st.staleLen
	if l < 1 || l > n || len(idx) != k || k < 1 || idx[0] != 0 {
		return false
	}
	for _, i := range idx {
		if i < 0 || i >= l {
			return false
		}
	}
	if l == n {
		return true // no delta points: same union, answer carries as is
	}
	delta := st.union[l:]
	// dmin[j] tracks delta[j]'s min squared distance to the chosen set.
	dmin := make([]float64, len(delta))
	p0 := st.union[idx[0]]
	for j, q := range delta {
		dmin[j] = metric.SquaredEuclidean(q, p0)
	}
	for t := 1; t < k; t++ {
		p := st.union[idx[t]]
		// v is the squared distance at which the stale traversal picked
		// idx[t]: its min squared distance to the t points chosen so far.
		v := math.Inf(1)
		for _, u := range idx[:t] {
			if d := metric.SquaredEuclidean(p, st.union[u]); d < v {
				v = d
			}
		}
		for j, q := range delta {
			if dmin[j] > v {
				return false // this delta point would have been picked instead
			}
			if d := metric.SquaredEuclidean(q, p); d < dmin[j] {
				dmin[j] = d
			}
		}
	}
	return true
}

// solveMerged runs the round-2 sequential α-approximation on a merged
// state: index-based against the retained engine when one was built —
// the Ω(n²) scans sharded across the server's solve workers, streaming
// row-blocks when the union is past the matrix budget — generic
// otherwise. Identical output either way (the engine solvers'
// bit-identical-selection contract). The returned indices are the
// engine selection positions into st.union, nil on the generic path;
// the solution memo keeps them so a later patched state can verify the
// answer against its delta (warmStartValid).
func (s *Server) solveMerged(m divmax.Measure, st *mergeState, k int) ([]divmax.Vector, []int) {
	if len(st.union) == 0 {
		return nil, nil
	}
	if st.engine != nil {
		if st.engine.Tiled() {
			s.tiledSolves.Add(1)
		}
		idx := sequential.SolveEngineIdx(m, st.engine, k)
		sol := make([]divmax.Vector, len(idx))
		for i, j := range idx {
			sol[i] = st.union[j]
		}
		return sol, idx
	}
	return sequential.Solve(m, st.union, k, divmax.Euclidean), nil
}
