// Package server implements divmaxd, the resident sharded diversity
// service. Points stream in over HTTP and are dealt round-robin to N
// independent shards; each shard is a single goroutine folding its slice
// of the stream into composable streaming core-sets (SMM and SMM-EXT,
// Section 4 of the paper), so per-shard state stays O(k′·k) points no
// matter how much data has been ingested. A query snapshots every
// shard's core-set and merges them through the same round-2 aggregation
// MapReduceSolve uses (internal/mrdiv.SolveCoresets) — the paper's
// round-1/round-2 split, kept resident and online — answering
// MaxDiversity for any of the six measures within the usual α+ε
// envelope, without ever rescanning the data.
//
// The query path is cached (cache.go): while no shard has accepted a new
// batch, repeated queries — any k, any measure of the same family —
// reuse the previously merged core-set and its pairwise distance matrix
// instead of re-snapshotting, re-merging, and re-filling; any /ingest
// invalidates via per-shard epochs. Results are identical with and
// without the cache.
//
// The stream is fully dynamic: POST /delete removes points by value —
// broadcast to every shard, swept from both core-set families. A
// delete that matches nothing retained (or only spares) leaves the
// snapshot generations alone, so the delta-patched cache keeps winning
// under churn; a delete that evicts a core-set point re-covers locally
// (a deleted center promotes a retained spare or a surviving delegate)
// and bumps the generation, forcing the next stale query to rebuild
// from deleted-free snapshots.
//
// Endpoints (versioned under /v1, legacy unversioned aliases kept; the
// wire types live in internal/api):
//
//	POST /v1/ingest  {"points": [[x,y,...], ...]}    — batched ingest
//	POST /v1/delete  {"points": [[x,y,...], ...]}    — delete by value
//	GET  /v1/query?k=5&measure=remote-edge           — merge + solve
//	GET  /v1/stats                                   — shard + cache counters
//	GET  /v1/healthz                                 — liveness
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"divmax"
	"divmax/internal/api"
	"divmax/internal/dataset"
)

// Config tunes the service.
type Config struct {
	// Shards is the number of independent core-set shards, each a
	// goroutine owning its own SMM and SMM-EXT processors (default
	// runtime.GOMAXPROCS(0), minimum 1).
	Shards int
	// MaxK is the largest solution size queries may request; core-sets
	// are sized to support it (default 16).
	MaxK int
	// KPrime is the per-shard kernel size k′ ≥ MaxK controlling core-set
	// accuracy (0 = 4·MaxK; an explicit value below MaxK is an error).
	KPrime int
	// Buffer is the per-shard ingest queue capacity in batches; a full
	// queue applies backpressure to /ingest (default 64).
	Buffer int
	// SolveWorkers bounds the goroutines the round-2 solve engine uses
	// per query — the parallel matrix fill and the sharded Ω(n²) scans
	// (default runtime.GOMAXPROCS(0)). Selections are bit-identical for
	// every value.
	SolveWorkers int
	// SolutionMemo caps the per-state (measure, k) answer memo; beyond
	// it the least-recently-used answer is evicted (default 128 —
	// comfortably above the 6·MaxK key space of the default MaxK, so
	// small servers never evict).
	SolutionMemo int
	// DeltaBudget caps the incremental patch of the query cache: a
	// stale query patches the cached merged state — appending the
	// per-shard core-set deltas and extending the retained solve engine
	// — only when the deltas total at most DeltaBudget × the cached
	// union size; beyond it (or when any shard's core-set restructured)
	// the query falls back to a full snapshot + merge + fill. 0 means
	// the default (0.25); a negative value disables delta patching
	// entirely, restoring the rebuild-on-every-ingest behavior.
	DeltaBudget float64
	// DisableDeltaPatch keeps every patch/fallback decision and every
	// merged-union layout identical but builds each engine from scratch
	// instead of extending the cached one — the reference mode the
	// interleaving fuzz harness compares delta patching against. Not
	// useful in production (it only costs CPU).
	DisableDeltaPatch bool
	// Spares is the per-center spare retention of the SMM family's
	// dynamic core-sets: each center keeps up to Spares absorbed points
	// as promotion candidates for its own deletion, costing up to
	// Spares·(k′+1) extra points per shard. 0 means the default (2); a
	// negative value retains none (center deletions then drop their
	// cluster until new points arrive).
	Spares int
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxK < 1 {
		c.MaxK = 16
	}
	if c.KPrime == 0 {
		c.KPrime = 4 * c.MaxK
	}
	if c.Buffer < 1 {
		c.Buffer = 64
	}
	if c.SolveWorkers < 1 {
		c.SolveWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SolutionMemo < 1 {
		c.SolutionMemo = 128
	}
	if c.DeltaBudget == 0 {
		c.DeltaBudget = 0.25
	}
	if c.Spares == 0 {
		c.Spares = 2
	}
	if c.Spares < 0 {
		c.Spares = 0
	}
	return c
}

// maxIngestBody bounds a single /ingest request body.
const maxIngestBody = 32 << 20

var errDraining = errors.New("server: draining, not accepting requests")

// Server is the sharded diversity service. Create one with New, mount
// Handler on an http.Server, and Close it to drain.
type Server struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup

	// next deals ingested points round-robin across shards — the paper's
	// "arbitrary partition", which composability makes quality-neutral.
	next atomic.Uint64
	// dim pins the point dimensionality to that of the first batch.
	dim atomic.Int64

	// mu guards channel sends against Close: senders hold it for
	// reading, Close sets draining under the write lock so no send can
	// race the channel close.
	mu       sync.RWMutex
	draining bool

	// caches holds the per-family query-path snapshot caches (cache.go).
	caches    [cacheFamilies]familyCache
	cacheHits atomic.Int64
	// Cache misses split by cause: missesCold counts first queries
	// against a family (no state to patch or reuse — server start or
	// first query of that family), missesInvalidated counts queries
	// that found the cached state stale because a shard accepted a
	// batch. Every miss resolves as either a delta patch or a full
	// rebuild.
	missesCold        atomic.Int64
	missesInvalidated atomic.Int64
	deltaPatches      atomic.Int64
	fullRebuilds      atomic.Int64
	// tiledSolves counts solves served through the tiled engine (merged
	// union past the matrix memory budget — no n² buffer materialized).
	tiledSolves atomic.Int64
	// memoWarmStarts counts stale (measure, k) answers served after the
	// replay verification proved them identical to a cold solve over
	// the patched union (delta-aware memo reuse; cache.go).
	memoWarmStarts atomic.Int64
	// Deletion counters, per /delete request point: each point lands in
	// exactly one bucket by its strongest outcome across shards and
	// families — evicting > spares > tombstoned.
	deletesRequested  atomic.Int64
	deletesEvicting   atomic.Int64
	deletesSpares     atomic.Int64
	deletesTombstoned atomic.Int64

	queries    atomic.Int64
	merges     atomic.Int64
	mergeNanos atomic.Int64 // duration of the last merge+solve
}

// New starts the shard goroutines and returns the service. It rejects an
// explicitly-set KPrime below MaxK rather than silently overriding it
// (matching the k′ ≥ k contract of the core-set constructions).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.KPrime < cfg.MaxK {
		return nil, fmt.Errorf("server: kprime (%d) must be at least maxk (%d), or 0 for the default", cfg.KPrime, cfg.MaxK)
	}
	s := &Server{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = newShard(i, cfg)
		s.wg.Add(1)
		go s.shards[i].run(&s.wg)
	}
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Close drains the service: new requests are rejected with 503, every
// batch already accepted is processed, and the shard goroutines exit.
// It is idempotent and safe to call concurrently with requests.
func (s *Server) Close() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.mu.Unlock()
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.wg.Wait()
}

// Handler returns the HTTP API: every endpoint under the versioned
// api.Prefix, with the legacy unversioned paths as aliases served by
// the very same handlers (byte-identical bodies, pinned by the compat
// suite).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	healthz := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}
	for _, prefix := range []string{api.Prefix, ""} {
		mux.HandleFunc(prefix+"/ingest", s.handleIngest)
		mux.HandleFunc(prefix+"/delete", s.handleDelete)
		mux.HandleFunc(prefix+"/query", s.handleQuery)
		mux.HandleFunc(prefix+"/stats", s.handleStats)
		mux.HandleFunc(prefix+"/healthz", healthz)
	}
	return mux
}

// The handlers' wire types are the versioned ones of internal/api;
// local aliases keep the package and its tests reading naturally.
type (
	ingestRequest  = api.IngestRequest
	ingestResponse = api.IngestResponse
	deleteRequest  = api.DeleteRequest
	deleteResponse = api.DeleteResponse
	queryResponse  = api.QueryResponse
	shardStats     = api.ShardStats
	statsResponse  = api.StatsResponse
)

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Decode into a pooled buffer: the outer []Vector backing array is
	// recycled across requests (the Vectors themselves are fresh — the
	// shards retain accepted points). The buffer is safe to release when
	// the handler returns because the per-shard batches copy the point
	// headers they need.
	bufp := getVecSlice()
	defer putVecSlice(bufp)
	req := ingestRequest{Points: *bufp}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	err := dec.Decode(&req)
	if len(req.Points) > 0 {
		*bufp = req.Points // hand any grown backing array back to the pool
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes; split the batch", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "trailing data after the points object")
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, ingestResponse{Accepted: 0, Shards: len(s.shards)})
		return
	}
	if err := dataset.ValidateVectors(req.Points); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dim := int64(len(req.Points[0]))
	if dim == 0 {
		httpError(w, http.StatusBadRequest, "points must have at least one coordinate")
		return
	}
	if !s.dim.CompareAndSwap(0, dim) && s.dim.Load() != dim {
		httpError(w, http.StatusBadRequest, "point dimension %d does not match the dataset dimension %d", dim, s.dim.Load())
		return
	}

	// Deal the batch round-robin into pooled per-shard batches,
	// continuing where the previous request left off so small batches
	// still spread across shards.
	n := uint64(len(req.Points))
	start := s.next.Add(n) - n
	batches := make([]*[]divmax.Vector, len(s.shards))
	for i := range batches {
		batches[i] = getVecSlice()
	}
	for i, p := range req.Points {
		sh := (start + uint64(i)) % uint64(len(s.shards))
		*batches[sh] = append(*batches[sh], p)
	}

	if err := s.send(batches); err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, ingestResponse{Accepted: len(req.Points), Shards: len(s.shards)})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	bufp := getVecSlice()
	defer putVecSlice(bufp)
	req := deleteRequest{Points: *bufp}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	err := dec.Decode(&req)
	if len(req.Points) > 0 {
		*bufp = req.Points
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes; split the batch", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "trailing data after the points object")
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, deleteResponse{Shards: len(s.shards)})
		return
	}
	if err := dataset.ValidateVectors(req.Points); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Deletes of a dimension the stream has never seen cannot match
	// anything; rejecting them catches caller bugs the same way ingest
	// does. An empty server (dim still 0) accepts any dimension — every
	// point is a tombstone.
	if dim, want := int64(len(req.Points[0])), s.dim.Load(); want != 0 && dim != want {
		httpError(w, http.StatusBadRequest, "point dimension %d does not match the dataset dimension %d", dim, want)
		return
	}
	outcomes, err := s.deleteAll(req.Points)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	resp := deleteResponse{Requested: len(req.Points), Shards: len(s.shards)}
	for _, o := range outcomes {
		switch o {
		case divmax.DeleteEvicted:
			resp.Evicted++
		case divmax.DeleteSpare:
			resp.Spares++
		default:
			resp.Tombstones++
		}
	}
	s.deletesRequested.Add(int64(resp.Requested))
	s.deletesEvicting.Add(int64(resp.Evicted))
	s.deletesSpares.Add(int64(resp.Spares))
	s.deletesTombstoned.Add(int64(resp.Tombstones))
	writeJSON(w, resp)
}

// deleteAll broadcasts the delete batch to every shard — round-robin
// dealing means any shard may hold a copy of any value — and folds the
// per-shard replies into one outcome per point (the strongest across
// shards: evicted > spare > absent). Like send, it bumps each shard's
// accepted epoch before the channel send, so by the time /delete
// returns every query-cache epoch check sees the deletion; the shared
// points slice is read-only for the shards and stays alive until every
// reply is in.
func (s *Server) deleteAll(points []divmax.Vector) ([]divmax.DeleteOutcome, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return nil, errDraining
	}
	replies := make([]chan []divmax.DeleteOutcome, len(s.shards))
	for i, sh := range s.shards {
		replies[i] = make(chan []divmax.DeleteOutcome, 1)
		sh.accEpoch.Add(1)
		sh.ch <- shardMsg{del: points, delReply: replies[i]}
	}
	out := make([]divmax.DeleteOutcome, len(points))
	for _, ch := range replies {
		for j, o := range <-ch {
			out[j] = max(out[j], o)
		}
	}
	return out, nil
}

// send delivers one batch per shard, holding the read lock so Close
// cannot close the channels mid-send. A full shard queue blocks here,
// which is the service's backpressure. Non-empty batches are released
// back to the pool by the receiving shard goroutine; empty ones (and
// every batch, when the server is draining) are released here.
func (s *Server) send(batches []*[]divmax.Vector) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		for _, b := range batches {
			putVecSlice(b)
		}
		return errDraining
	}
	for i, b := range batches {
		if len(*b) == 0 {
			putVecSlice(b)
			continue
		}
		// Bump the accepted epoch before the channel send: once /ingest
		// returns, every accepted batch is visible to the query cache's
		// epoch check, so no later query can serve a merge that predates
		// this batch.
		s.shards[i].accEpoch.Add(1)
		s.shards[i].ch <- shardMsg{batch: b}
	}
	return nil
}

// snapshots asks every shard for a point-in-time view of the core-set
// family serving measure m, returning the views together with each
// shard's ingest epoch at snapshot time. When prev is non-nil the
// request is incremental: each shard answers with a pure delta of the
// points that joined its core-set since prev's (generation, position)
// for that shard, or a full snapshot if it restructured. prev == nil
// forces full snapshots. The requests ride the same channels as ingest
// batches, so each snapshot reflects everything its shard accepted
// before the request — no locks around the processors are ever needed.
func (s *Server) snapshots(m divmax.Measure, prev *mergeState) ([]snapReply, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return nil, errDraining
	}
	proxy := m.NeedsInjectiveProxy()
	replies := make([]chan snapReply, len(s.shards))
	for i, sh := range s.shards {
		replies[i] = make(chan snapReply, 1)
		msg := shardMsg{snap: replies[i], proxy: proxy, pos: -1}
		if prev != nil {
			msg.gen, msg.pos = prev.gens[i], prev.poss[i]
		}
		sh.ch <- msg
	}
	out := make([]snapReply, len(s.shards))
	for i, ch := range replies {
		out[i] = <-ch
	}
	return out, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	m := divmax.RemoteEdge
	if name := q.Get("measure"); name != "" {
		var err error
		if m, err = divmax.ParseMeasure(name); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	k := s.cfg.MaxK
	if arg := q.Get("k"); arg != "" {
		var err error
		if k, err = strconv.Atoi(arg); err != nil {
			httpError(w, http.StatusBadRequest, "bad k: %v", err)
			return
		}
	}
	if k < 1 || k > s.cfg.MaxK {
		httpError(w, http.StatusBadRequest, "k must be in [1, %d] (the server's maxk), got %d", s.cfg.MaxK, k)
		return
	}
	// The merge: round-2 aggregation over the composable per-shard
	// core-sets — served from the snapshot cache while no shard accepted
	// a batch since it was built, patched in place when the shards can
	// serve pure deltas, rebuilt (snapshot + merge + matrix fill)
	// otherwise.
	cache, st, how, err := s.merged(m)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.queries.Add(1)

	key := solutionKey{measure: m, k: k}
	cache.mu.Lock()
	memo, haveMemo := st.solutions.get(key)
	// Delta-aware memo reuse: when this state was patched from a
	// previous one, the previous state's memo survives as st.stale. A
	// stale answer is served only after warmStartValid replays its
	// selection and proves no delta point could change it — so a
	// warm-started response is bit-identical to the cold solve it
	// skips.
	var stale solvedQuery
	var haveStale bool
	if !haveMemo && st.stale != nil && m != divmax.RemoteClique && st.engine != nil {
		stale, haveStale = st.stale.get(key)
	}
	cache.mu.Unlock()
	warm := false
	if !haveMemo && haveStale && st.warmStartValid(stale.idx, k) {
		memo, haveMemo, warm = stale, true, true
		s.memoWarmStarts.Add(1)
		cache.mu.Lock()
		st.solutions.put(key, memo)
		cache.mu.Unlock()
	}
	var elapsed time.Duration
	if !haveMemo {
		start := time.Now()
		sol, idx := s.solveMerged(m, st, k)
		val, exact := divmax.Evaluate(m, sol, divmax.Euclidean)
		if math.IsInf(val, 0) || math.IsNaN(val) {
			// Min-based measures evaluate to +Inf on fewer than 2 points
			// (empty server, or k=1); JSON cannot encode non-finite
			// numbers, so report the degenerate diversity as 0 and flag
			// it inexact.
			val, exact = 0, false
		}
		elapsed = time.Since(start)
		s.merges.Add(1)
		s.mergeNanos.Store(int64(elapsed))
		if sol == nil {
			sol = []divmax.Vector{}
		}
		memo = solvedQuery{sol: sol, idx: idx, val: val, exact: exact}
		cache.mu.Lock()
		st.solutions.put(key, memo)
		cache.mu.Unlock()
	}

	writeJSON(w, queryResponse{
		Measure:     m.String(),
		K:           k,
		Solution:    memo.sol,
		Value:       memo.val,
		Exact:       memo.exact,
		CoresetSize: len(st.union),
		Processed:   st.processed,
		MergeMillis: float64(elapsed) / float64(time.Millisecond),
		Cached:      how == mergeHit,
		Patched:     how == mergePatched,
		WarmStarted: warm,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := statsResponse{
		Shards:            make([]shardStats, len(s.shards)),
		Queries:           s.queries.Load(),
		Merges:            s.merges.Load(),
		LastMergeMS:       float64(s.mergeNanos.Load()) / float64(time.Millisecond),
		CacheHits:         s.cacheHits.Load(),
		CacheMisses:       s.missesCold.Load() + s.missesInvalidated.Load(),
		MissesCold:        s.missesCold.Load(),
		MissesInvalidated: s.missesInvalidated.Load(),
		DeltaPatches:      s.deltaPatches.Load(),
		FullRebuilds:      s.fullRebuilds.Load(),
		MemoWarmStarts:    s.memoWarmStarts.Load(),
		DeletesRequested:  s.deletesRequested.Load(),
		DeletesEvicting:   s.deletesEvicting.Load(),
		DeletesSpares:     s.deletesSpares.Load(),
		DeletesTombstoned: s.deletesTombstoned.Load(),
		SolveWorkers:      s.cfg.SolveWorkers,
		TiledSolves:       s.tiledSolves.Load(),
		MaxK:              s.cfg.MaxK,
		KPrime:            s.cfg.KPrime,
	}
	for i := range s.caches {
		c := &s.caches[i]
		c.mu.Lock()
		if st := c.state; st != nil {
			resp.CachedCoresetPoints += len(st.union)
			if st.engine != nil {
				resp.CachedMatrixBytes += st.engine.MatrixBytes()
			}
		}
		c.mu.Unlock()
	}
	s.mu.RLock()
	resp.Draining = s.draining
	s.mu.RUnlock()
	for i, sh := range s.shards {
		st := shardStats{
			ID:        sh.id,
			Ingested:  sh.ingested.Load(),
			Batches:   sh.batches.Load(),
			LastBatch: sh.lastBatch.Load(),
			Stored:    sh.stored.Load(),
			Deleted:   sh.deleted.Load(),
		}
		if st.Batches > 0 {
			st.AvgBatch = float64(st.Ingested) / float64(st.Batches)
		}
		resp.Shards[i] = st
		resp.IngestedTotal += st.Ingested
	}
	writeJSON(w, resp)
}

// logf is the server's error logger; a variable so tests can intercept
// what gets logged.
var logf = log.Printf

// writeJSON encodes v onto the response. An encode failure here almost
// always means the client hung up mid-response; the response cannot be
// salvaged (the status line is already out), so the error is logged
// rather than silently dropped.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("server: encoding response: %v", err)
	}
}

// httpError writes the uniform error envelope of internal/api —
// {"error":{"code","message"}} — with the machine-readable code mapped
// 1:1 from the HTTP status. Every handler routes its failures through
// here, so the error shape is identical across the whole surface.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var env api.ErrorEnvelope
	env.Error.Code = errorCode(status)
	env.Error.Message = fmt.Sprintf(format, args...)
	json.NewEncoder(w).Encode(env)
}

// errorCode maps an HTTP status to its envelope code.
func errorCode(status int) string {
	switch status {
	case http.StatusMethodNotAllowed:
		return api.CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return api.CodePayloadTooLarge
	case http.StatusServiceUnavailable:
		return api.CodeUnavailable
	default:
		return api.CodeBadRequest
	}
}
