// Package server implements divmaxd, the resident sharded diversity
// service. Points stream in over HTTP and are dealt round-robin to N
// independent shards; each shard is a single goroutine folding its slice
// of the stream into composable streaming core-sets (SMM and SMM-EXT,
// Section 4 of the paper), so per-shard state stays O(k′·k) points no
// matter how much data has been ingested. A query snapshots every
// shard's core-set and merges them through the same round-2 aggregation
// MapReduceSolve uses (internal/mrdiv.SolveCoresets) — the paper's
// round-1/round-2 split, kept resident and online — answering
// MaxDiversity for any of the six measures within the usual α+ε
// envelope, without ever rescanning the data.
//
// The query path is cached (cache.go): while no shard has accepted a new
// batch, repeated queries — any k, any measure of the same family —
// reuse the previously merged core-set and its pairwise distance matrix
// instead of re-snapshotting, re-merging, and re-filling; any /ingest
// invalidates via per-shard epochs. Results are identical with and
// without the cache.
//
// The stream is fully dynamic: POST /delete removes points by value —
// broadcast to every shard, swept from both core-set families. A
// delete that matches nothing retained (or only spares) leaves the
// snapshot generations alone, so the delta-patched cache keeps winning
// under churn; a delete that evicts a core-set point re-covers locally
// (a deleted center promotes a retained spare or a surviving delegate)
// and bumps the generation, forcing the next stale query to rebuild
// from deleted-free snapshots.
//
// Endpoints (versioned under /v1, legacy unversioned aliases kept; the
// wire types live in internal/api):
//
//	POST /v1/ingest  {"points": [[x,y,...], ...]}    — batched ingest
//	POST /v1/delete  {"points": [[x,y,...], ...]}    — delete by value
//	GET  /v1/query?k=5&measure=remote-edge           — merge + solve
//	GET  /v1/stats                                   — shard + cache counters
//	GET  /v1/healthz                                 — liveness
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"divmax"
	"divmax/internal/api"
	"divmax/internal/dataset"
	"divmax/internal/faults"
	"divmax/internal/wal"
)

// Config tunes the service.
type Config struct {
	// Shards is the number of independent core-set shards, each a
	// goroutine owning its own SMM and SMM-EXT processors (default
	// runtime.GOMAXPROCS(0), minimum 1).
	Shards int
	// MaxK is the largest solution size queries may request; core-sets
	// are sized to support it (default 16).
	MaxK int
	// KPrime is the per-shard kernel size k′ ≥ MaxK controlling core-set
	// accuracy (0 = 4·MaxK; an explicit value below MaxK is an error).
	KPrime int
	// Buffer is the per-shard ingest queue capacity in batches; a full
	// queue applies backpressure to /ingest (default 64).
	Buffer int
	// SolveWorkers bounds the goroutines the round-2 solve engine uses
	// per query — the parallel matrix fill and the sharded Ω(n²) scans
	// (default runtime.GOMAXPROCS(0)). Selections are bit-identical for
	// every value.
	SolveWorkers int
	// SolutionMemo caps the per-state (measure, k) answer memo; beyond
	// it the least-recently-used answer is evicted (default 128 —
	// comfortably above the 6·MaxK key space of the default MaxK, so
	// small servers never evict).
	SolutionMemo int
	// DeltaBudget caps the incremental patch of the query cache: a
	// stale query patches the cached merged state — appending the
	// per-shard core-set deltas and extending the retained solve engine
	// — only when the deltas total at most DeltaBudget × the cached
	// union size; beyond it (or when any shard's core-set restructured)
	// the query falls back to a full snapshot + merge + fill. 0 means
	// the default (0.25); a negative value disables delta patching
	// entirely, restoring the rebuild-on-every-ingest behavior.
	DeltaBudget float64
	// DisableDeltaPatch keeps every patch/fallback decision and every
	// merged-union layout identical but builds each engine from scratch
	// instead of extending the cached one — the reference mode the
	// interleaving fuzz harness compares delta patching against. Not
	// useful in production (it only costs CPU).
	DisableDeltaPatch bool
	// Spares is the per-center spare retention of the SMM family's
	// dynamic core-sets: each center keeps up to Spares absorbed points
	// as promotion candidates for its own deletion, costing up to
	// Spares·(k′+1) extra points per shard. 0 means the default (2); a
	// negative value retains none (center deletions then drop their
	// cluster until new points arrive).
	Spares int
	// QueryDeadline bounds the server-side work of a /query request —
	// the snapshot fan-out, the merge, and every channel wait become
	// selects against it, so a wedged shard turns into a 504
	// (deadline_exceeded) instead of a hang. 0 means the default (30s);
	// a negative value disables the deadline.
	QueryDeadline time.Duration
	// IngestDeadline is the same bound for /ingest and /delete. 0 means
	// the default (30s); negative disables.
	IngestDeadline time.Duration
	// ShedWait is how long a request may wait on a full shard queue (or
	// the inflight-query limiter) before the server sheds it with 429
	// (overloaded, Retry-After set) instead of blocking. 0 means the
	// default (1s); a negative value disables shedding and restores the
	// unbounded blocking backpressure of earlier versions.
	ShedWait time.Duration
	// MaxInflight caps the queries solving concurrently; excess queries
	// wait up to ShedWait for a slot and are then shed with 429. 0
	// means the default (4·GOMAXPROCS, at least 16); a negative value
	// removes the cap.
	MaxInflight int
	// RestartBudget is how many times a shard's supervisor restarts it
	// with fresh core-sets after a panic before declaring it
	// permanently failed. 0 means the default (3); a negative value
	// never restarts (the first panic fails the shard).
	RestartBudget int
	// DegradedQueries opts queries into graceful degradation: when the
	// fan-out hits failed or unresponsive shards, the query merges the
	// surviving shards' core-sets and answers with "degraded": true and
	// the missing-shard count instead of failing. The composable
	// core-set property makes the answer a valid core-set solution over
	// the points the surviving shards ingested. Default off: queries
	// fail closed with 503/504.
	DegradedQueries bool
	// Faults is the fault-injection surface consulted by the shard
	// goroutines (internal/faults). nil — the production value — injects
	// nothing; the chaos tests install hooks here to drive panics,
	// wedges, and dropped replies through the live code paths.
	Faults *faults.Injector
	// DataDir enables durability: each shard keeps a write-ahead log and
	// periodic core-set checkpoints under DataDir/shard-NNN, every
	// accepted ingest/delete hits the log before its shard folds it, and
	// New recovers all shards (checkpoint + log-tail replay) before
	// /v1/readyz reports ready. Empty — the default — keeps the server
	// fully in memory, byte- and behavior-identical to earlier versions.
	DataDir string
	// Fsync is the WAL fsync policy (wal.SyncAlways / SyncInterval /
	// SyncOff; the zero value is SyncInterval). Only the power-cut
	// window differs: process crashes lose nothing under any policy.
	Fsync wal.SyncPolicy
	// FsyncInterval is the background flush period under SyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery is the period of the checkpoint ticker that asks
	// each shard to fold its log tail into a fresh core-set checkpoint,
	// bounding both recovery replay and WAL growth. 0 means the default
	// (15s); a negative value disables the ticker (shards still
	// checkpoint eagerly after restructures and on clean shutdown).
	CheckpointEvery time.Duration
	// SegmentBytes is the WAL segment rotation size (default 4 MiB).
	SegmentBytes int64
	// ProjectDim, when positive, turns on the opt-in high-dimensional
	// fast path: once the first request pins a dataset dimension above
	// it, every ingested and deleted point is Johnson–Lindenstrauss
	// projected to ProjectDim dimensions at the handler and the whole
	// resident pipeline — shards, core-sets, caches, solve engines —
	// runs in the reduced space. Query responses map the selected set
	// back to the original points and report the TRUE-space diversity
	// value of that set (re-evaluated over the originals), within the
	// projection's distortion envelope of the unprojected answer. With
	// projection on, a delete arriving before any ingest also pins the
	// dataset dimension (the projector's shape must be fixed before
	// anything reaches the shards). Datasets at or below ProjectDim
	// dimensions pass through untouched. Incompatible with DataDir: the
	// projected→original map is in-memory only. Default 0 — off, with
	// every response and /v1/stats body byte-identical to earlier
	// versions.
	ProjectDim int
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxK < 1 {
		c.MaxK = 16
	}
	if c.KPrime == 0 {
		c.KPrime = 4 * c.MaxK
	}
	if c.Buffer < 1 {
		c.Buffer = 64
	}
	if c.SolveWorkers < 1 {
		c.SolveWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SolutionMemo < 1 {
		c.SolutionMemo = 128
	}
	if c.DeltaBudget == 0 {
		c.DeltaBudget = 0.25
	}
	if c.Spares == 0 {
		c.Spares = 2
	}
	if c.Spares < 0 {
		c.Spares = 0
	}
	switch {
	case c.QueryDeadline == 0:
		c.QueryDeadline = 30 * time.Second
	case c.QueryDeadline < 0:
		c.QueryDeadline = 0 // disabled
	}
	switch {
	case c.IngestDeadline == 0:
		c.IngestDeadline = 30 * time.Second
	case c.IngestDeadline < 0:
		c.IngestDeadline = 0 // disabled
	}
	switch {
	case c.ShedWait == 0:
		c.ShedWait = time.Second
	case c.ShedWait < 0:
		c.ShedWait = 0 // disabled: block until the deadline
	}
	switch {
	case c.MaxInflight == 0:
		c.MaxInflight = max(16, 4*runtime.GOMAXPROCS(0))
	case c.MaxInflight < 0:
		c.MaxInflight = 0 // uncapped
	}
	switch {
	case c.RestartBudget == 0:
		c.RestartBudget = 3
	case c.RestartBudget < 0:
		c.RestartBudget = 0 // first panic fails the shard
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.ProjectDim < 0 {
		c.ProjectDim = 0
	}
	switch {
	case c.CheckpointEvery == 0:
		c.CheckpointEvery = 15 * time.Second
	case c.CheckpointEvery < 0:
		c.CheckpointEvery = 0 // ticker disabled
	}
	return c
}

// maxIngestBody bounds a single /ingest request body.
const maxIngestBody = 32 << 20

var (
	errDraining = errors.New("server: draining, not accepting requests")
	// errOverloaded is load shedding: a shard queue stayed full past the
	// shed wait, or the inflight-query limiter is at capacity. Mapped to
	// 429 with a Retry-After header.
	errOverloaded = errors.New("server: overloaded, retry later")
)

// Server is the sharded diversity service. Create one with New, mount
// Handler on an http.Server, and Close it to drain.
type Server struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup

	// next deals ingested points round-robin across shards — the paper's
	// "arbitrary partition", which composability makes quality-neutral.
	next atomic.Uint64
	// dim pins the point dimensionality to that of the first batch.
	dim atomic.Int64

	// mu guards channel sends against Close: senders hold it for
	// reading, Close sets draining under the write lock so no send can
	// race the channel close.
	mu       sync.RWMutex
	draining bool

	// caches holds the per-family query-path snapshot caches (cache.go).
	caches    [cacheFamilies]familyCache
	cacheHits atomic.Int64
	// Cache misses split by cause: missesCold counts first queries
	// against a family (no state to patch or reuse — server start or
	// first query of that family), missesInvalidated counts queries
	// that found the cached state stale because a shard accepted a
	// batch. Every miss resolves as either a delta patch or a full
	// rebuild.
	missesCold        atomic.Int64
	missesInvalidated atomic.Int64
	deltaPatches      atomic.Int64
	fullRebuilds      atomic.Int64
	// tiledSolves counts solves served through the tiled engine (merged
	// union past the matrix memory budget — no n² buffer materialized).
	tiledSolves atomic.Int64
	// memoWarmStarts counts stale (measure, k) answers served after the
	// replay verification proved them identical to a cold solve over
	// the patched union (delta-aware memo reuse; cache.go).
	memoWarmStarts atomic.Int64
	// Deletion counters, per /delete request point: each point lands in
	// exactly one bucket by its strongest outcome across shards and
	// families — evicting > spares > tombstoned.
	deletesRequested  atomic.Int64
	deletesEvicting   atomic.Int64
	deletesSpares     atomic.Int64
	deletesTombstoned atomic.Int64

	queries    atomic.Int64
	merges     atomic.Int64
	mergeNanos atomic.Int64 // duration of the last merge+solve

	// Opt-in JL projection state (project.go): the lazily built
	// projector plus the projected→original map, and the count of
	// points projected at ingest.
	proj            projection
	projectedPoints atomic.Int64

	// Robustness counters: queries answered from surviving shards only,
	// and requests shed with 429 by the bounded-backpressure (ingest)
	// and inflight-query (query) limiters.
	degradedQueries atomic.Int64
	ingestSheds     atomic.Int64
	querySheds      atomic.Int64

	// querySem is the inflight-query limiter (nil when uncapped): a
	// query holds one slot across its merge and solve, so a burst
	// cannot pile up unbounded concurrent O(n²) work.
	querySem chan struct{}

	// Durability plumbing (zero-valued in in-memory mode): recoveries
	// counts shard recoveries performed (boot and panic-restart),
	// ckptStop/loopWG manage the checkpoint ticker goroutine, which
	// Close stops BEFORE closing the shard channels so the ticker can
	// never send on a closed channel.
	recoveries atomic.Int64
	ckptStop   chan struct{}
	loopWG     sync.WaitGroup
}

// New starts the shard goroutines and returns the service. It rejects an
// explicitly-set KPrime below MaxK rather than silently overriding it
// (matching the k′ ≥ k contract of the core-set constructions). With
// DataDir set it opens (or recovers) every shard's write-ahead log
// before any goroutine starts; recovery itself — checkpoint restore
// plus log-tail replay — runs on the shard goroutines, and /v1/readyz
// (or the Ready method) reports when all of them have finished.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.KPrime < cfg.MaxK {
		return nil, fmt.Errorf("server: kprime (%d) must be at least maxk (%d), or 0 for the default", cfg.KPrime, cfg.MaxK)
	}
	if cfg.ProjectDim > 0 && cfg.DataDir != "" {
		return nil, errors.New("server: projectdim is incompatible with datadir (the projected→original map is in-memory only)")
	}
	s := &Server{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	if cfg.MaxInflight > 0 {
		s.querySem = make(chan struct{}, cfg.MaxInflight)
	}
	for i := range s.caches {
		s.caches[i].rebuild = make(chan struct{}, 1)
	}
	logs := make([]*wal.Log, cfg.Shards)
	if cfg.DataDir != "" {
		for i := range logs {
			opts := wal.Options{
				Dir:          filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%03d", i)),
				Sync:         cfg.Fsync,
				SyncEvery:    cfg.FsyncInterval,
				SegmentBytes: cfg.SegmentBytes,
			}
			if inj := cfg.Faults; inj != nil {
				shard := i
				opts.AppendHook = func(seq uint64, size int) int { return inj.WALAppend(shard, seq, size) }
				opts.CheckpointHook = func(size int) int { return inj.CheckpointWrite(shard, size) }
			}
			l, err := wal.Open(opts)
			if err != nil {
				for _, open := range logs[:i] {
					open.Close(false)
				}
				return nil, fmt.Errorf("server: shard %d wal: %w", i, err)
			}
			logs[i] = l
		}
	}
	for i := range s.shards {
		s.shards[i] = newShard(i, cfg, logs[i], &s.recoveries, &s.dim)
		s.wg.Add(1)
		go s.shards[i].run(&s.wg)
	}
	if cfg.DataDir != "" && cfg.CheckpointEvery > 0 {
		s.ckptStop = make(chan struct{})
		s.loopWG.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// checkpointLoop periodically asks every healthy shard to checkpoint,
// through the ordinary message channel (non-blocking: a busy shard
// whose queue is full just catches the next tick). Close stops this
// loop before closing the channels.
func (s *Server) checkpointLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.RLock()
			if !s.draining {
				for _, sh := range s.shards {
					if sh.failed() {
						continue
					}
					select {
					case sh.ch <- shardMsg{ckpt: true}:
					default:
					}
				}
			}
			s.mu.RUnlock()
		case <-s.ckptStop:
			return
		}
	}
}

// Ready reports whether every shard has finished boot recovery and is
// serving (in-memory servers are ready immediately; /v1/readyz answers
// 503 while this is false).
func (s *Server) Ready() bool {
	for _, sh := range s.shards {
		if !sh.ready.Load() {
			return false
		}
	}
	return true
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Close drains the service: new requests are rejected with 503, every
// batch already accepted is processed, each durable shard flushes its
// WAL and writes a final checkpoint (so a clean restart replays zero
// records), and the shard goroutines exit. It is idempotent and safe to
// call concurrently with requests.
func (s *Server) Close() { s.close(0, false) }

// CloseTimeout is Close bounded by d: it reports whether the drain —
// including the final per-shard checkpoints — completed in time. On
// false the shards keep draining in the background; if the process
// exits anyway (the -drain-timeout path), the WAL already holds every
// accepted record, so the next start replays the tail the cut-short
// checkpoint would have covered.
func (s *Server) CloseTimeout(d time.Duration) bool { return s.close(d, false) }

// CloseAbrupt shuts down crash-shaped: queued work still drains (an
// accepted record is on disk either way), but no final checkpoint is
// written and the closing fsync is skipped — the data directory is left
// exactly as a kill would leave it. The recovery tests and benchmarks
// reopen from this state.
func (s *Server) CloseAbrupt() { s.close(0, true) }

func (s *Server) close(d time.Duration, abrupt bool) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return true
	}
	s.draining = true
	s.mu.Unlock()
	if s.ckptStop != nil {
		close(s.ckptStop)
		s.loopWG.Wait()
	}
	if abrupt {
		for _, sh := range s.shards {
			sh.abrupt.Store(true)
		}
	}
	for _, sh := range s.shards {
		close(sh.ch)
	}
	if d <= 0 {
		s.wg.Wait()
		return true
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// Handler returns the HTTP API: every endpoint under the versioned
// api.Prefix, with the legacy unversioned paths as aliases served by
// the very same handlers (byte-identical bodies, pinned by the compat
// suite).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	healthz := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}
	for _, prefix := range []string{api.Prefix, ""} {
		mux.HandleFunc(prefix+"/ingest", s.handleIngest)
		mux.HandleFunc(prefix+"/delete", s.handleDelete)
		mux.HandleFunc(prefix+"/query", s.handleQuery)
		mux.HandleFunc(prefix+"/snapshot", s.handleSnapshot)
		mux.HandleFunc(prefix+"/stats", s.handleStats)
		mux.HandleFunc(prefix+"/healthz", healthz)
		mux.HandleFunc(prefix+"/readyz", s.handleReadyz)
	}
	return mux
}

// The handlers' wire types are the versioned ones of internal/api;
// local aliases keep the package and its tests reading naturally.
type (
	ingestRequest  = api.IngestRequest
	ingestResponse = api.IngestResponse
	deleteRequest  = api.DeleteRequest
	deleteResponse = api.DeleteResponse
	queryResponse  = api.QueryResponse
	shardStats     = api.ShardStats
	statsResponse  = api.StatsResponse
)

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Decode into a pooled buffer: the outer []Vector backing array is
	// recycled across requests (the Vectors themselves are fresh — the
	// shards retain accepted points). The buffer is safe to release when
	// the handler returns because the per-shard batches copy the point
	// headers they need.
	bufp := getVecSlice()
	defer putVecSlice(bufp)
	req := ingestRequest{Points: *bufp}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	err := dec.Decode(&req)
	if len(req.Points) > 0 {
		*bufp = req.Points // hand any grown backing array back to the pool
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes; split the batch", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "trailing data after the points object")
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, ingestResponse{Accepted: 0, Shards: len(s.shards)})
		return
	}
	if err := dataset.ValidateVectors(req.Points); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dim := int64(len(req.Points[0]))
	if dim == 0 {
		httpError(w, http.StatusBadRequest, "points must have at least one coordinate")
		return
	}
	if !s.dim.CompareAndSwap(0, dim) && s.dim.Load() != dim {
		httpError(w, http.StatusBadRequest, "point dimension %d does not match the dataset dimension %d", dim, s.dim.Load())
		return
	}
	// With projection on, the shards fold the reduced-space batch; the
	// originals are recorded for query-time mapping. Pass-through
	// otherwise.
	pts := s.projectIngest(req.Points)

	// Deal the batch round-robin into pooled per-shard batches,
	// continuing where the previous request left off so small batches
	// still spread across shards.
	n := uint64(len(pts))
	start := s.next.Add(n) - n
	batches := make([]*[]divmax.Vector, len(s.shards))
	for i := range batches {
		batches[i] = getVecSlice()
	}
	for i, p := range pts {
		sh := (start + uint64(i)) % uint64(len(s.shards))
		*batches[sh] = append(*batches[sh], p)
	}

	ctx, cancel := requestCtx(r, s.cfg.IngestDeadline)
	defer cancel()
	if err := s.send(ctx, batches); err != nil {
		s.writeFailure(w, err)
		return
	}
	writeJSON(w, ingestResponse{Accepted: len(req.Points), Shards: len(s.shards)})
}

// requestCtx derives the request context bounded by the configured
// deadline; d <= 0 leaves the request unbounded (the client hanging up
// still cancels it). The caller defers cancel.
func requestCtx(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	bufp := getVecSlice()
	defer putVecSlice(bufp)
	req := deleteRequest{Points: *bufp}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	err := dec.Decode(&req)
	if len(req.Points) > 0 {
		*bufp = req.Points
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes; split the batch", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "trailing data after the points object")
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, deleteResponse{Shards: len(s.shards)})
		return
	}
	if err := dataset.ValidateVectors(req.Points); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Deletes of a dimension the stream has never seen cannot match
	// anything; rejecting them catches caller bugs the same way ingest
	// does. An empty server (dim still 0) accepts any dimension — every
	// point is a tombstone.
	if dim, want := int64(len(req.Points[0])), s.dim.Load(); want != 0 && dim != want {
		httpError(w, http.StatusBadRequest, "point dimension %d does not match the dataset dimension %d", dim, want)
		return
	}
	pts := req.Points
	if s.cfg.ProjectDim > 0 {
		// The shards store reduced-space points, so deletes must chase
		// them there. A delete before any ingest pins the dataset
		// dimension (the projector's shape is fixed at first use).
		s.dim.CompareAndSwap(0, int64(len(req.Points[0])))
		pts = s.projectDelete(req.Points)
	}
	ctx, cancel := requestCtx(r, s.cfg.IngestDeadline)
	defer cancel()
	outcomes, err := s.deleteAll(ctx, pts)
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	resp := deleteResponse{Requested: len(req.Points), Shards: len(s.shards)}
	for _, o := range outcomes {
		switch o {
		case divmax.DeleteEvicted:
			resp.Evicted++
		case divmax.DeleteSpare:
			resp.Spares++
		default:
			resp.Tombstones++
		}
	}
	if req.WantOutcomes {
		resp.Outcomes = make([]int, len(outcomes))
		for i, o := range outcomes {
			resp.Outcomes[i] = int(o)
		}
	}
	s.deletesRequested.Add(int64(resp.Requested))
	s.deletesEvicting.Add(int64(resp.Evicted))
	s.deletesSpares.Add(int64(resp.Spares))
	s.deletesTombstoned.Add(int64(resp.Tombstones))
	writeJSON(w, resp)
}

// failedShard returns the error for the first permanently failed shard,
// nil when all are healthy. Ingest and delete fail closed on it; the
// query path lets the caller decide whether to degrade.
func (s *Server) failedShard() error {
	for _, sh := range s.shards {
		if sh.failed() {
			return &shardFailedError{id: sh.id}
		}
	}
	return nil
}

// deliver enqueues msg on sh's channel. A full queue waits at most the
// shed wait when shed is true (then errOverloaded — load shedding
// instead of unbounded blocking backpressure) and at most the request
// deadline either way (then the context error). The fast path is a
// non-blocking send, so an uncontended queue never allocates a timer.
func (s *Server) deliver(ctx context.Context, sh *shard, msg shardMsg, shed bool) error {
	select {
	case sh.ch <- msg:
		return nil
	default:
	}
	var shedC <-chan time.Time
	if shed && s.cfg.ShedWait > 0 {
		t := time.NewTimer(s.cfg.ShedWait)
		defer t.Stop()
		shedC = t.C
	}
	select {
	case sh.ch <- msg:
		return nil
	case <-shedC:
		return errOverloaded
	case <-ctx.Done():
		return ctx.Err()
	}
}

// deleteAll broadcasts the delete batch to every shard — round-robin
// dealing means any shard may hold a copy of any value — and folds the
// per-shard replies into one outcome per point (the strongest across
// shards: evicted > spare > absent). Like send, it bumps each shard's
// accepted epoch before the channel send, so by the time /delete
// returns every query-cache epoch check sees the deletion; the shared
// points slice is read-only for the shards and stays alive until every
// reply is in (reply channels are buffered, so a late reply after an
// abort never blocks the shard). An abort mid-broadcast — deadline,
// shed, or a shard failing under us — leaves the delete applied on the
// shards already reached; the error response tells the caller the
// broadcast did not complete, and retrying a delete is idempotent.
func (s *Server) deleteAll(ctx context.Context, points []divmax.Vector) ([]divmax.DeleteOutcome, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return nil, errDraining
	}
	if err := s.failedShard(); err != nil {
		return nil, err
	}
	replies := make([]chan deleteReply, len(s.shards))
	for i, sh := range s.shards {
		replies[i] = make(chan deleteReply, 1)
		sh.accEpoch.Add(1)
		if err := s.logAndDeliver(ctx, sh, wal.KindDelete, points, shardMsg{del: points, delReply: replies[i]}); err != nil {
			sh.accEpoch.Add(^uint64(0)) // undo: this shard never got the delete
			if errors.Is(err, errOverloaded) {
				s.ingestSheds.Add(1)
			}
			return nil, err
		}
	}
	out := make([]divmax.DeleteOutcome, len(points))
	for _, ch := range replies {
		select {
		case rep := <-ch:
			if rep.err != nil {
				return nil, rep.err
			}
			for j, o := range rep.outs {
				out[j] = max(out[j], o)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// send delivers one batch per shard, holding the read lock so Close
// cannot close the channels mid-send. A full shard queue applies
// backpressure bounded by the shed wait (then 429) and the ingest
// deadline (then 504); an abort mid-fan-out leaves the batches already
// delivered in place — those points ARE ingested (and counted by
// /stats) — and undoes only the aborted shard's accepted epoch, so the
// epoch lockstep with the query cache survives partial ingest.
// Non-empty batches are released back to the pool by the receiving
// shard goroutine; empty, undelivered, and drain-rejected ones are
// released here.
func (s *Server) send(ctx context.Context, batches []*[]divmax.Vector) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	release := func(from int) {
		for _, b := range batches[from:] {
			putVecSlice(b)
		}
	}
	if s.draining {
		release(0)
		return errDraining
	}
	if err := s.failedShard(); err != nil {
		release(0)
		return err
	}
	for i, b := range batches {
		if len(*b) == 0 {
			putVecSlice(b)
			continue
		}
		sh := s.shards[i]
		// Bump the accepted epoch before the channel send: once /ingest
		// returns, every accepted batch is visible to the query cache's
		// epoch check, so no later query can serve a merge that predates
		// this batch.
		sh.accEpoch.Add(1)
		if err := s.logAndDeliver(ctx, sh, wal.KindIngest, *b, shardMsg{batch: b}); err != nil {
			sh.accEpoch.Add(^uint64(0)) // undo: the batch was never delivered
			if errors.Is(err, errOverloaded) {
				s.ingestSheds.Add(1)
			}
			release(i)
			return err
		}
	}
	return nil
}

// logAndDeliver routes one ingest or delete message to its shard. In
// memory it is a plain deliver; with a WAL the record is appended FIRST
// and the channel send runs as the append's deliver callback — under
// the log mutex, so per-shard log order and fold order cannot diverge —
// and a send that fails (shed, deadline, drain) truncates the record
// back off as if it never happened. A crashed log (torn write, fsync
// failure, injected fault) fails writes closed with wal.ErrCrashed,
// which the handlers surface as 503 while queries keep serving.
func (s *Server) logAndDeliver(ctx context.Context, sh *shard, kind wal.Kind, pts []divmax.Vector, msg shardMsg) error {
	if sh.log == nil {
		return s.deliver(ctx, sh, msg, true)
	}
	_, err := sh.log.Append(kind, pts, func(seq uint64) error {
		msg.seq = seq
		return s.deliver(ctx, sh, msg, true)
	})
	return err
}

// snapshots asks every shard for a point-in-time view of the core-set
// family serving measure m, returning the views together with each
// shard's ingest epoch at snapshot time. When prev is non-nil the
// request is incremental: each shard answers with a pure delta of the
// points that joined its core-set since prev's (generation, position)
// for that shard, or a full snapshot if it restructured. prev == nil
// forces full snapshots. The requests ride the same channels as ingest
// batches, so each snapshot reflects everything its shard accepted
// before the request — no locks around the processors are ever needed.
//
// Every channel wait selects against the request deadline. With
// degraded=false the first failure — a failed shard, an expired
// deadline, a dropped reply — fails the whole round; with degraded=true
// the round always returns one reply per shard, recording per-shard
// errors in snapReply.err so the caller can merge the survivors
// (composability makes their union a valid core-set for the points
// they ingested). Snapshot requests never load-shed: a full queue is
// bounded by the deadline alone, so a slow shard turns into 504 — or a
// missing shard in degraded mode — not a spurious 429.
func (s *Server) snapshots(ctx context.Context, m divmax.Measure, prev *mergeState, degraded bool) ([]snapReply, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return nil, errDraining
	}
	proxy := m.NeedsInjectiveProxy()
	replies := make([]chan snapReply, len(s.shards))
	out := make([]snapReply, len(s.shards))
	for i, sh := range s.shards {
		if sh.failed() {
			err := &shardFailedError{id: sh.id}
			if !degraded {
				return nil, err
			}
			out[i] = snapReply{err: err}
			continue
		}
		replies[i] = make(chan snapReply, 1)
		msg := shardMsg{snap: replies[i], proxy: proxy, pos: -1}
		if prev != nil {
			msg.gen, msg.pos = prev.gens[i], prev.poss[i]
		}
		if err := s.deliver(ctx, sh, msg, false); err != nil {
			if !degraded {
				return nil, err
			}
			out[i] = snapReply{err: err}
			replies[i] = nil
		}
	}
	for i, ch := range replies {
		if ch == nil {
			continue
		}
		select {
		case rep := <-ch:
			if rep.err != nil && !degraded {
				return nil, rep.err
			}
			out[i] = rep
		case <-ctx.Done():
			if !degraded {
				return nil, ctx.Err()
			}
			out[i] = snapReply{err: ctx.Err()}
		}
	}
	return out, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	m := divmax.RemoteEdge
	if name := q.Get("measure"); name != "" {
		var err error
		if m, err = divmax.ParseMeasure(name); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	k := s.cfg.MaxK
	if arg := q.Get("k"); arg != "" {
		var err error
		if k, err = strconv.Atoi(arg); err != nil {
			httpError(w, http.StatusBadRequest, "bad k: %v", err)
			return
		}
	}
	if k < 1 || k > s.cfg.MaxK {
		httpError(w, http.StatusBadRequest, "k must be in [1, %d] (the server's maxk), got %d", s.cfg.MaxK, k)
		return
	}
	ctx, cancel := requestCtx(r, s.cfg.QueryDeadline)
	defer cancel()

	// The inflight-query limiter: a query holds one slot across its
	// merge and solve, so a burst cannot pile up unbounded concurrent
	// O(n²) work — excess queries wait up to the shed wait for a slot
	// and are then shed with 429.
	if s.querySem != nil {
		var shedC <-chan time.Time
		if s.cfg.ShedWait > 0 {
			t := time.NewTimer(s.cfg.ShedWait)
			defer t.Stop()
			shedC = t.C
		}
		select {
		case s.querySem <- struct{}{}:
			defer func() { <-s.querySem }()
		case <-shedC:
			s.querySheds.Add(1)
			s.writeFailure(w, errOverloaded)
			return
		case <-ctx.Done():
			s.writeFailure(w, ctx.Err())
			return
		}
	}

	// The merge: round-2 aggregation over the composable per-shard
	// core-sets — served from the snapshot cache while no shard accepted
	// a batch since it was built, patched in place when the shards can
	// serve pure deltas, rebuilt (snapshot + merge + matrix fill)
	// otherwise. With degraded queries enabled, the normal fan-out gets
	// half the deadline: if it cannot complete — a failed shard, a
	// wedged one — the remainder buys a degraded round over the
	// surviving shards instead of a bare 503/504.
	mctx := ctx
	if s.cfg.DegradedQueries && s.cfg.QueryDeadline > 0 {
		var mcancel context.CancelFunc
		mctx, mcancel = context.WithTimeout(ctx, s.cfg.QueryDeadline/2)
		defer mcancel()
	}
	cache, st, how, err := s.merged(mctx, m)
	degraded, missing := false, 0
	if err != nil {
		if !s.cfg.DegradedQueries || errors.Is(err, errDraining) {
			s.writeFailure(w, err)
			return
		}
		st, missing, err = s.degradedState(ctx, m)
		if err != nil {
			s.writeFailure(w, err)
			return
		}
		cache, how = nil, mergeRebuilt
		degraded = missing > 0
		if degraded {
			s.degradedQueries.Add(1)
		}
	}
	s.queries.Add(1)

	key := solutionKey{measure: m, k: k}
	var memo solvedQuery
	haveMemo, warm := false, false
	if cache != nil {
		cache.mu.Lock()
		memo, haveMemo = st.solutions.get(key)
		// Delta-aware memo reuse: when this state was patched from a
		// previous one, the previous state's memo survives as st.stale. A
		// stale answer is served only after warmStartValid replays its
		// selection and proves no delta point could change it — so a
		// warm-started response is bit-identical to the cold solve it
		// skips.
		var stale solvedQuery
		var haveStale bool
		if !haveMemo && st.stale != nil && m != divmax.RemoteClique && st.engine != nil {
			stale, haveStale = st.stale.get(key)
		}
		cache.mu.Unlock()
		if !haveMemo && haveStale && st.warmStartValid(stale.idx, k) {
			memo, haveMemo, warm = stale, true, true
			s.memoWarmStarts.Add(1)
			cache.mu.Lock()
			st.solutions.put(key, memo)
			cache.mu.Unlock()
		}
	}
	var elapsed time.Duration
	if !haveMemo {
		start := time.Now()
		sol, idx := s.solveMerged(m, st, k)
		// Under projection the solver picked projected points; map the
		// selection back to the originals before evaluating, so both the
		// reported solution and its value live in the true space.
		sol = s.unproject(sol)
		// Min-based measures evaluate to +Inf on fewer than 2 points
		// (empty server, or k=1); JSON cannot encode non-finite numbers,
		// so sanitizeValue reports the degenerate diversity as 0, inexact.
		val, exact := sanitizeValue(divmax.Evaluate(m, sol, divmax.Euclidean))
		elapsed = time.Since(start)
		s.merges.Add(1)
		s.mergeNanos.Store(int64(elapsed))
		if sol == nil {
			sol = []divmax.Vector{}
		}
		memo = solvedQuery{sol: sol, idx: idx, val: val, exact: exact}
		if cache != nil {
			cache.mu.Lock()
			st.solutions.put(key, memo)
			cache.mu.Unlock()
		}
	}

	writeJSON(w, queryResponse{
		Measure:       m.String(),
		K:             k,
		Solution:      memo.sol,
		Value:         memo.val,
		Exact:         memo.exact,
		CoresetSize:   len(st.union),
		Processed:     st.processed,
		MergeMillis:   float64(elapsed) / float64(time.Millisecond),
		Cached:        how == mergeHit,
		Patched:       how == mergePatched,
		WarmStarted:   warm,
		Degraded:      degraded,
		ShardsMissing: missing,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := statsResponse{
		Shards:            make([]shardStats, len(s.shards)),
		Queries:           s.queries.Load(),
		Merges:            s.merges.Load(),
		LastMergeMS:       float64(s.mergeNanos.Load()) / float64(time.Millisecond),
		CacheHits:         s.cacheHits.Load(),
		CacheMisses:       s.missesCold.Load() + s.missesInvalidated.Load(),
		MissesCold:        s.missesCold.Load(),
		MissesInvalidated: s.missesInvalidated.Load(),
		DeltaPatches:      s.deltaPatches.Load(),
		FullRebuilds:      s.fullRebuilds.Load(),
		MemoWarmStarts:    s.memoWarmStarts.Load(),
		DeletesRequested:  s.deletesRequested.Load(),
		DeletesEvicting:   s.deletesEvicting.Load(),
		DeletesSpares:     s.deletesSpares.Load(),
		DeletesTombstoned: s.deletesTombstoned.Load(),
		SolveWorkers:      s.cfg.SolveWorkers,
		TiledSolves:       s.tiledSolves.Load(),
		MaxK:              s.cfg.MaxK,
		KPrime:            s.cfg.KPrime,
		ProjectDim:        s.cfg.ProjectDim,
		ProjectedPoints:   s.projectedPoints.Load(),
	}
	for i := range s.caches {
		c := &s.caches[i]
		c.mu.Lock()
		if st := c.state; st != nil {
			resp.CachedCoresetPoints += len(st.union)
			if st.engine != nil {
				resp.CachedMatrixBytes += st.engine.MatrixBytes()
			}
		}
		c.mu.Unlock()
	}
	s.mu.RLock()
	resp.Draining = s.draining
	s.mu.RUnlock()
	resp.DegradedQueries = s.degradedQueries.Load()
	resp.IngestSheds = s.ingestSheds.Load()
	resp.QuerySheds = s.querySheds.Load()
	resp.Recoveries = s.recoveries.Load()
	for i, sh := range s.shards {
		st := shardStats{
			ID:         sh.id,
			Ingested:   sh.ingested.Load(),
			Batches:    sh.batches.Load(),
			LastBatch:  sh.lastBatch.Load(),
			Stored:     sh.stored.Load(),
			Deleted:    sh.deleted.Load(),
			Health:     "healthy",
			QueueDepth: len(sh.ch),
			Restarts:   sh.restarts.Load(),
			Panics:     sh.panics.Load(),
		}
		if sh.log != nil {
			st.WALBytes, st.WALSegments = sh.log.Stats()
			st.ReplayedPoints = sh.replayed.Load()
			if ms := sh.lastCkptMS.Load(); ms != 0 {
				// Floored at 1ms so the field reliably appears (omitempty)
				// once a checkpoint exists.
				st.CheckpointAgeMS = float64(max(time.Now().UnixMilli()-ms, 1))
			}
		}
		if sh.failed() {
			st.Health = "failed"
			resp.ShardsFailed++
		}
		if st.Batches > 0 {
			st.AvgBatch = float64(st.Ingested) / float64(st.Batches)
		}
		resp.Shards[i] = st
		resp.IngestedTotal += st.Ingested
		resp.ShardRestarts += st.Restarts
	}
	writeJSON(w, resp)
}

// handleReadyz is the readiness probe, distinct from /healthz liveness:
// a draining server, or one with more than half its shards permanently
// failed, answers 503 with the uniform envelope so load balancers stop
// routing to it — while /healthz keeps answering ok, because the
// process itself is alive and (with degraded queries on) still useful.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	recovering := 0
	for _, sh := range s.shards {
		if !sh.ready.Load() {
			recovering++
		}
	}
	if recovering > 0 {
		httpError(w, http.StatusServiceUnavailable, "server: not ready, recovering %d of %d shards", recovering, len(s.shards))
		return
	}
	failed := 0
	for _, sh := range s.shards {
		if sh.failed() {
			failed++
		}
	}
	if failed*2 > len(s.shards) {
		httpError(w, http.StatusServiceUnavailable, "server: not ready, %d of %d shards failed permanently", failed, len(s.shards))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// logf is the server's error logger; a variable so tests can intercept
// what gets logged.
var logf = log.Printf

// writeJSON encodes v onto the response. An encode failure here almost
// always means the client hung up mid-response; the response cannot be
// salvaged (the status line is already out), so the error is logged
// rather than silently dropped.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("server: encoding response: %v", err)
	}
}

// httpError writes the uniform error envelope of internal/api —
// {"error":{"code","message"}} — with the machine-readable code mapped
// 1:1 from the HTTP status. Every handler routes its failures through
// here, so the error shape is identical across the whole surface.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var env api.ErrorEnvelope
	env.Error.Code = errorCode(status)
	env.Error.Message = fmt.Sprintf(format, args...)
	json.NewEncoder(w).Encode(env)
}

// errorCode maps an HTTP status to its envelope code.
func errorCode(status int) string {
	switch status {
	case http.StatusMethodNotAllowed:
		return api.CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return api.CodePayloadTooLarge
	case http.StatusServiceUnavailable:
		return api.CodeUnavailable
	case http.StatusGatewayTimeout:
		return api.CodeDeadlineExceeded
	case http.StatusTooManyRequests:
		return api.CodeOverloaded
	default:
		return api.CodeBadRequest
	}
}

// writeFailure maps a fan-out error onto the wire: an expired deadline
// is 504 (deadline_exceeded, with a fixed message so the /v1 and legacy
// bodies stay byte-identical), load shedding is 429 (overloaded) with a
// Retry-After hint derived from the shed wait, and everything else —
// draining, failed shards — is 503 (unavailable), exactly the bytes the
// pre-robustness server wrote for errDraining.
func (s *Server) writeFailure(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		httpError(w, http.StatusGatewayTimeout, "request deadline exceeded")
	case errors.Is(err, errOverloaded):
		retry := int(math.Ceil(s.cfg.ShedWait.Seconds()))
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		httpError(w, http.StatusTooManyRequests, "%v", err)
	default:
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	}
}
