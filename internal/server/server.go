// Package server implements divmaxd, the resident sharded diversity
// service. Points stream in over HTTP and are dealt round-robin to N
// independent shards; each shard is a single goroutine folding its slice
// of the stream into composable streaming core-sets (SMM and SMM-EXT,
// Section 4 of the paper), so per-shard state stays O(k′·k) points no
// matter how much data has been ingested. A query snapshots every
// shard's core-set and merges them through the same round-2 aggregation
// MapReduceSolve uses (internal/mrdiv.SolveCoresets) — the paper's
// round-1/round-2 split, kept resident and online — answering
// MaxDiversity for any of the six measures within the usual α+ε
// envelope, without ever rescanning the data.
//
// The query path is cached (cache.go): while no shard has accepted a new
// batch, repeated queries — any k, any measure of the same family —
// reuse the previously merged core-set and its pairwise distance matrix
// instead of re-snapshotting, re-merging, and re-filling; any /ingest
// invalidates via per-shard epochs. Results are identical with and
// without the cache.
//
// Endpoints:
//
//	POST /ingest  {"points": [[x,y,...], ...]}       — batched ingest
//	GET  /query?k=5&measure=remote-edge              — merge + solve
//	GET  /stats                                      — shard + cache counters
//	GET  /healthz                                    — liveness
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"divmax"
	"divmax/internal/dataset"
)

// Config tunes the service.
type Config struct {
	// Shards is the number of independent core-set shards, each a
	// goroutine owning its own SMM and SMM-EXT processors (default
	// runtime.GOMAXPROCS(0), minimum 1).
	Shards int
	// MaxK is the largest solution size queries may request; core-sets
	// are sized to support it (default 16).
	MaxK int
	// KPrime is the per-shard kernel size k′ ≥ MaxK controlling core-set
	// accuracy (0 = 4·MaxK; an explicit value below MaxK is an error).
	KPrime int
	// Buffer is the per-shard ingest queue capacity in batches; a full
	// queue applies backpressure to /ingest (default 64).
	Buffer int
	// SolveWorkers bounds the goroutines the round-2 solve engine uses
	// per query — the parallel matrix fill and the sharded Ω(n²) scans
	// (default runtime.GOMAXPROCS(0)). Selections are bit-identical for
	// every value.
	SolveWorkers int
	// SolutionMemo caps the per-state (measure, k) answer memo; beyond
	// it the least-recently-used answer is evicted (default 128 —
	// comfortably above the 6·MaxK key space of the default MaxK, so
	// small servers never evict).
	SolutionMemo int
	// DeltaBudget caps the incremental patch of the query cache: a
	// stale query patches the cached merged state — appending the
	// per-shard core-set deltas and extending the retained solve engine
	// — only when the deltas total at most DeltaBudget × the cached
	// union size; beyond it (or when any shard's core-set restructured)
	// the query falls back to a full snapshot + merge + fill. 0 means
	// the default (0.25); a negative value disables delta patching
	// entirely, restoring the rebuild-on-every-ingest behavior.
	DeltaBudget float64
	// DisableDeltaPatch keeps every patch/fallback decision and every
	// merged-union layout identical but builds each engine from scratch
	// instead of extending the cached one — the reference mode the
	// interleaving fuzz harness compares delta patching against. Not
	// useful in production (it only costs CPU).
	DisableDeltaPatch bool
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxK < 1 {
		c.MaxK = 16
	}
	if c.KPrime == 0 {
		c.KPrime = 4 * c.MaxK
	}
	if c.Buffer < 1 {
		c.Buffer = 64
	}
	if c.SolveWorkers < 1 {
		c.SolveWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SolutionMemo < 1 {
		c.SolutionMemo = 128
	}
	if c.DeltaBudget == 0 {
		c.DeltaBudget = 0.25
	}
	return c
}

// maxIngestBody bounds a single /ingest request body.
const maxIngestBody = 32 << 20

var errDraining = errors.New("server: draining, not accepting requests")

// Server is the sharded diversity service. Create one with New, mount
// Handler on an http.Server, and Close it to drain.
type Server struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup

	// next deals ingested points round-robin across shards — the paper's
	// "arbitrary partition", which composability makes quality-neutral.
	next atomic.Uint64
	// dim pins the point dimensionality to that of the first batch.
	dim atomic.Int64

	// mu guards channel sends against Close: senders hold it for
	// reading, Close sets draining under the write lock so no send can
	// race the channel close.
	mu       sync.RWMutex
	draining bool

	// caches holds the per-family query-path snapshot caches (cache.go).
	caches    [cacheFamilies]familyCache
	cacheHits atomic.Int64
	// Cache misses split by cause: missesCold counts first queries
	// against a family (no state to patch or reuse — server start or
	// first query of that family), missesInvalidated counts queries
	// that found the cached state stale because a shard accepted a
	// batch. Every miss resolves as either a delta patch or a full
	// rebuild.
	missesCold        atomic.Int64
	missesInvalidated atomic.Int64
	deltaPatches      atomic.Int64
	fullRebuilds      atomic.Int64
	// tiledSolves counts solves served through the tiled engine (merged
	// union past the matrix memory budget — no n² buffer materialized).
	tiledSolves atomic.Int64

	queries    atomic.Int64
	merges     atomic.Int64
	mergeNanos atomic.Int64 // duration of the last merge+solve
}

// New starts the shard goroutines and returns the service. It rejects an
// explicitly-set KPrime below MaxK rather than silently overriding it
// (matching the k′ ≥ k contract of the core-set constructions).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.KPrime < cfg.MaxK {
		return nil, fmt.Errorf("server: kprime (%d) must be at least maxk (%d), or 0 for the default", cfg.KPrime, cfg.MaxK)
	}
	s := &Server{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = newShard(i, cfg)
		s.wg.Add(1)
		go s.shards[i].run(&s.wg)
	}
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Close drains the service: new requests are rejected with 503, every
// batch already accepted is processed, and the shard goroutines exit.
// It is idempotent and safe to call concurrently with requests.
func (s *Server) Close() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.mu.Unlock()
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.wg.Wait()
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type ingestRequest struct {
	Points []divmax.Vector `json:"points"`
}

type ingestResponse struct {
	Accepted int `json:"accepted"`
	Shards   int `json:"shards"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Decode into a pooled buffer: the outer []Vector backing array is
	// recycled across requests (the Vectors themselves are fresh — the
	// shards retain accepted points). The buffer is safe to release when
	// the handler returns because the per-shard batches copy the point
	// headers they need.
	bufp := getVecSlice()
	defer putVecSlice(bufp)
	req := ingestRequest{Points: *bufp}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	err := dec.Decode(&req)
	if len(req.Points) > 0 {
		*bufp = req.Points // hand any grown backing array back to the pool
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes; split the batch", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "trailing data after the points object")
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, ingestResponse{Accepted: 0, Shards: len(s.shards)})
		return
	}
	if err := dataset.ValidateVectors(req.Points); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dim := int64(len(req.Points[0]))
	if dim == 0 {
		httpError(w, http.StatusBadRequest, "points must have at least one coordinate")
		return
	}
	if !s.dim.CompareAndSwap(0, dim) && s.dim.Load() != dim {
		httpError(w, http.StatusBadRequest, "point dimension %d does not match the dataset dimension %d", dim, s.dim.Load())
		return
	}

	// Deal the batch round-robin into pooled per-shard batches,
	// continuing where the previous request left off so small batches
	// still spread across shards.
	n := uint64(len(req.Points))
	start := s.next.Add(n) - n
	batches := make([]*[]divmax.Vector, len(s.shards))
	for i := range batches {
		batches[i] = getVecSlice()
	}
	for i, p := range req.Points {
		sh := (start + uint64(i)) % uint64(len(s.shards))
		*batches[sh] = append(*batches[sh], p)
	}

	if err := s.send(batches); err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, ingestResponse{Accepted: len(req.Points), Shards: len(s.shards)})
}

// send delivers one batch per shard, holding the read lock so Close
// cannot close the channels mid-send. A full shard queue blocks here,
// which is the service's backpressure. Non-empty batches are released
// back to the pool by the receiving shard goroutine; empty ones (and
// every batch, when the server is draining) are released here.
func (s *Server) send(batches []*[]divmax.Vector) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		for _, b := range batches {
			putVecSlice(b)
		}
		return errDraining
	}
	for i, b := range batches {
		if len(*b) == 0 {
			putVecSlice(b)
			continue
		}
		// Bump the accepted epoch before the channel send: once /ingest
		// returns, every accepted batch is visible to the query cache's
		// epoch check, so no later query can serve a merge that predates
		// this batch.
		s.shards[i].accEpoch.Add(1)
		s.shards[i].ch <- shardMsg{batch: b}
	}
	return nil
}

// snapshots asks every shard for a point-in-time view of the core-set
// family serving measure m, returning the views together with each
// shard's ingest epoch at snapshot time. When prev is non-nil the
// request is incremental: each shard answers with a pure delta of the
// points that joined its core-set since prev's (generation, position)
// for that shard, or a full snapshot if it restructured. prev == nil
// forces full snapshots. The requests ride the same channels as ingest
// batches, so each snapshot reflects everything its shard accepted
// before the request — no locks around the processors are ever needed.
func (s *Server) snapshots(m divmax.Measure, prev *mergeState) ([]snapReply, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return nil, errDraining
	}
	proxy := m.NeedsInjectiveProxy()
	replies := make([]chan snapReply, len(s.shards))
	for i, sh := range s.shards {
		replies[i] = make(chan snapReply, 1)
		msg := shardMsg{snap: replies[i], proxy: proxy, pos: -1}
		if prev != nil {
			msg.gen, msg.pos = prev.gens[i], prev.poss[i]
		}
		sh.ch <- msg
	}
	out := make([]snapReply, len(s.shards))
	for i, ch := range replies {
		out[i] = <-ch
	}
	return out, nil
}

type queryResponse struct {
	Measure     string          `json:"measure"`
	K           int             `json:"k"`
	Solution    []divmax.Vector `json:"solution"`
	Value       float64         `json:"value"`
	Exact       bool            `json:"exact_value"`
	CoresetSize int             `json:"coreset_size"`
	Processed   int64           `json:"processed"`
	MergeMillis float64         `json:"merge_ms"`
	// Cached reports that the merged core-set and its distance matrix
	// were reused from the snapshot cache (no shard accepted a batch
	// since they were built); merge_ms then covers only the solve — or
	// nothing at all when the (measure, k) answer itself was memoized.
	Cached bool `json:"cached"`
	// Patched reports that this query found the cache stale and
	// repaired it incrementally — per-shard core-set deltas appended to
	// the cached union, the retained solve engine extended — instead of
	// re-snapshotting, re-merging, and re-filling from scratch.
	Patched bool `json:"patched"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	m := divmax.RemoteEdge
	if name := q.Get("measure"); name != "" {
		var err error
		if m, err = divmax.ParseMeasure(name); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	k := s.cfg.MaxK
	if arg := q.Get("k"); arg != "" {
		var err error
		if k, err = strconv.Atoi(arg); err != nil {
			httpError(w, http.StatusBadRequest, "bad k: %v", err)
			return
		}
	}
	if k < 1 || k > s.cfg.MaxK {
		httpError(w, http.StatusBadRequest, "k must be in [1, %d] (the server's maxk), got %d", s.cfg.MaxK, k)
		return
	}
	// The merge: round-2 aggregation over the composable per-shard
	// core-sets — served from the snapshot cache while no shard accepted
	// a batch since it was built, patched in place when the shards can
	// serve pure deltas, rebuilt (snapshot + merge + matrix fill)
	// otherwise.
	cache, st, how, err := s.merged(m)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.queries.Add(1)

	key := solutionKey{measure: m, k: k}
	cache.mu.Lock()
	memo, haveMemo := st.solutions.get(key)
	cache.mu.Unlock()
	var elapsed time.Duration
	if !haveMemo {
		start := time.Now()
		sol := s.solveMerged(m, st, k)
		val, exact := divmax.Evaluate(m, sol, divmax.Euclidean)
		if math.IsInf(val, 0) || math.IsNaN(val) {
			// Min-based measures evaluate to +Inf on fewer than 2 points
			// (empty server, or k=1); JSON cannot encode non-finite
			// numbers, so report the degenerate diversity as 0 and flag
			// it inexact.
			val, exact = 0, false
		}
		elapsed = time.Since(start)
		s.merges.Add(1)
		s.mergeNanos.Store(int64(elapsed))
		if sol == nil {
			sol = []divmax.Vector{}
		}
		memo = solvedQuery{sol: sol, val: val, exact: exact}
		cache.mu.Lock()
		st.solutions.put(key, memo)
		cache.mu.Unlock()
	}

	writeJSON(w, queryResponse{
		Measure:     m.String(),
		K:           k,
		Solution:    memo.sol,
		Value:       memo.val,
		Exact:       memo.exact,
		CoresetSize: len(st.union),
		Processed:   st.processed,
		MergeMillis: float64(elapsed) / float64(time.Millisecond),
		Cached:      how == mergeHit,
		Patched:     how == mergePatched,
	})
}

type shardStats struct {
	ID       int   `json:"id"`
	Ingested int64 `json:"ingested"`
	Batches  int64 `json:"batches"`
	// LastBatch and AvgBatch report the per-shard batch sizes the ingest
	// path is achieving; small averages mean the fast path is amortizing
	// little and callers should send bigger /ingest bodies.
	LastBatch int64   `json:"last_batch"`
	AvgBatch  float64 `json:"avg_batch"`
	Stored    int64   `json:"stored_points"`
}

type statsResponse struct {
	Shards        []shardStats `json:"shards"`
	IngestedTotal int64        `json:"ingested_total"`
	Queries       int64        `json:"queries"`
	Merges        int64        `json:"merges"`
	LastMergeMS   float64      `json:"last_merge_ms"`
	// Query-path snapshot cache counters: a hit served the merged
	// core-set (and its solve engine) without touching the shards; a
	// miss found no current state. Misses split by cause — cold (first
	// query of a family: server start, nothing cached yet) versus
	// invalidated (a shard accepted a batch since the cached merge) —
	// and every miss resolves as either a delta patch (the cached union
	// and engine extended by the per-shard core-set deltas) or a full
	// rebuild (snapshot + merge + fill from scratch), counted under
	// DeltaPatches and FullRebuilds. CacheMisses remains the total.
	// CachedCoresetPoints and CachedMatrixBytes size what the caches
	// currently retain, summed over the two core-set families (tiled
	// engines retain no matrix, so they contribute 0 bytes).
	CacheHits           int64 `json:"query_cache_hits"`
	CacheMisses         int64 `json:"query_cache_misses"`
	MissesCold          int64 `json:"query_cache_misses_cold"`
	MissesInvalidated   int64 `json:"query_cache_misses_invalidated"`
	DeltaPatches        int64 `json:"delta_patches"`
	FullRebuilds        int64 `json:"full_rebuilds"`
	CachedCoresetPoints int   `json:"cached_coreset_points"`
	CachedMatrixBytes   int64 `json:"cached_matrix_bytes"`
	// SolveWorkers is the configured round-2 solver parallelism;
	// TiledSolves counts solves that ran through the tiled engine
	// (merged union past the matrix memory budget).
	SolveWorkers int   `json:"solve_workers"`
	TiledSolves  int64 `json:"tiled_solves"`
	MaxK         int   `json:"max_k"`
	KPrime       int   `json:"kprime"`
	Draining     bool  `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := statsResponse{
		Shards:            make([]shardStats, len(s.shards)),
		Queries:           s.queries.Load(),
		Merges:            s.merges.Load(),
		LastMergeMS:       float64(s.mergeNanos.Load()) / float64(time.Millisecond),
		CacheHits:         s.cacheHits.Load(),
		CacheMisses:       s.missesCold.Load() + s.missesInvalidated.Load(),
		MissesCold:        s.missesCold.Load(),
		MissesInvalidated: s.missesInvalidated.Load(),
		DeltaPatches:      s.deltaPatches.Load(),
		FullRebuilds:      s.fullRebuilds.Load(),
		SolveWorkers:      s.cfg.SolveWorkers,
		TiledSolves:       s.tiledSolves.Load(),
		MaxK:              s.cfg.MaxK,
		KPrime:            s.cfg.KPrime,
	}
	for i := range s.caches {
		c := &s.caches[i]
		c.mu.Lock()
		if st := c.state; st != nil {
			resp.CachedCoresetPoints += len(st.union)
			if st.engine != nil {
				resp.CachedMatrixBytes += st.engine.MatrixBytes()
			}
		}
		c.mu.Unlock()
	}
	s.mu.RLock()
	resp.Draining = s.draining
	s.mu.RUnlock()
	for i, sh := range s.shards {
		st := shardStats{
			ID:        sh.id,
			Ingested:  sh.ingested.Load(),
			Batches:   sh.batches.Load(),
			LastBatch: sh.lastBatch.Load(),
			Stored:    sh.stored.Load(),
		}
		if st.Batches > 0 {
			st.AvgBatch = float64(st.Ingested) / float64(st.Batches)
		}
		resp.Shards[i] = st
		resp.IngestedTotal += st.Ingested
	}
	writeJSON(w, resp)
}

// logf is the server's error logger; a variable so tests can intercept
// what gets logged.
var logf = log.Printf

// writeJSON encodes v onto the response. An encode failure here almost
// always means the client hung up mid-response; the response cannot be
// salvaged (the status line is already out), so the error is logged
// rather than silently dropped.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("server: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
