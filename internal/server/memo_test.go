package server

import (
	"fmt"
	"testing"

	"divmax"
)

func memoVal(i int) solvedQuery {
	return solvedQuery{sol: []divmax.Vector{{float64(i)}}, val: float64(i), exact: true}
}

// TestSolutionMemoLRU pins the memo's bound and its eviction order:
// capacity is enforced, the least-recently-used entry goes first, and
// both get and put refresh recency.
func TestSolutionMemoLRU(t *testing.T) {
	m := newSolutionMemo(3)
	keys := make([]solutionKey, 5)
	for i := range keys {
		keys[i] = solutionKey{measure: divmax.RemoteEdge, k: i + 1}
	}
	for i := 0; i < 3; i++ {
		m.put(keys[i], memoVal(i))
	}
	if m.len() != 3 {
		t.Fatalf("memo holds %d entries, want 3", m.len())
	}
	// Touch key 0 so key 1 becomes the LRU, then overflow.
	if v, ok := m.get(keys[0]); !ok || v.val != 0 {
		t.Fatalf("get(keys[0]) = (%v, %v)", v, ok)
	}
	m.put(keys[3], memoVal(3))
	if m.len() != 3 {
		t.Fatalf("memo holds %d entries after eviction, want 3", m.len())
	}
	if _, ok := m.get(keys[1]); ok {
		t.Fatal("LRU entry (keys[1]) survived the eviction")
	}
	for _, want := range []int{0, 2, 3} {
		if v, ok := m.get(keys[want]); !ok || v.val != float64(want) {
			t.Fatalf("keys[%d] = (%v, %v), want retained", want, v, ok)
		}
	}
	// put on an existing key must refresh, not grow or evict.
	m.put(keys[2], memoVal(12))
	if v, _ := m.get(keys[2]); v.val != 12 || m.len() != 3 {
		t.Fatalf("refreshed keys[2] = %v (len %d)", v.val, m.len())
	}
	// Recency after the refresh loop above: keys[0] is now LRU (last
	// touched before 2 and 3 — get order was 0, 2, 3, then put 2).
	m.put(keys[4], memoVal(4))
	if _, ok := m.get(keys[0]); ok {
		t.Fatal("expected keys[0] to be evicted as LRU")
	}

	// A degenerate capacity still behaves (clamped to 1).
	one := newSolutionMemo(0)
	one.put(keys[0], memoVal(0))
	one.put(keys[1], memoVal(1))
	if one.len() != 1 {
		t.Fatalf("cap-1 memo holds %d entries", one.len())
	}
	if _, ok := one.get(keys[1]); !ok {
		t.Fatal("cap-1 memo lost the newest entry")
	}
}

// TestQueryMemoEvictionStillServes drives a live server with a memo of
// capacity 1: every (measure, k) answer evicts the previous one, and
// repeated queries must still be correct (re-solved from the cached
// merged state, which the memo bound does not touch).
func TestQueryMemoEvictionStillServes(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 4, KPrime: 8, SolutionMemo: 1})
	postIngest(t, ts.URL, []divmax.Vector{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}})
	want := make(map[int]queryResponse)
	for _, k := range []int{2, 3, 4} {
		want[k] = getQuery(t, ts.URL, k, divmax.RemoteClique)
	}
	// Cycle back over the ks: the memo (cap 1) has evicted all but the
	// last, yet answers must be identical — solved again from the same
	// cached merged state.
	for _, k := range []int{2, 3, 4, 2} {
		got := getQuery(t, ts.URL, k, divmax.RemoteClique)
		if !got.Cached {
			t.Fatalf("k=%d: query missed the snapshot cache", k)
		}
		if fmt.Sprint(got.Solution) != fmt.Sprint(want[k].Solution) {
			t.Fatalf("k=%d: solution changed across memo eviction: %v vs %v", k, got.Solution, want[k].Solution)
		}
	}
}
