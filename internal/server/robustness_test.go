package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"divmax"
	"divmax/internal/api"
	"divmax/internal/faults"
	"divmax/internal/sequential"
)

// White-box robustness tests: the degraded-answer bit-for-bit contract
// against a reference solve over the surviving shards, the error
// envelopes of the new failure codes pinned byte-identical across the
// /v1 and legacy prefixes, and the readiness probe. The end-to-end
// chaos scenarios live in internal/faults.

func awaitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDegradedAnswerMatchesSurvivorReference pins the acceptance
// criterion of the degradation tentpole: a degraded query's answer is
// bit-for-bit what a reference round-2 solve over the surviving
// shards' merged core-set returns — same union order (shard order),
// same engine, same selection — for a measure of each core-set family.
func TestDegradedAnswerMatchesSurvivorReference(t *testing.T) {
	const k = 4
	inj := faults.New()
	inj.OnBatch(func(shard, batch int) {
		if shard == 2 {
			panic("poisoned batch")
		}
	})
	srv, ts := newTestServer(t, Config{
		Shards: 3, MaxK: k, KPrime: 12, Buffer: 8,
		RestartBudget: -1, DegradedQueries: true, Faults: inj,
	})

	rng := rand.New(rand.NewSource(17))
	pts := clusterPoints(rng, []divmax.Vector{{0, 0}, {700, 0}, {0, 700}, {700, 700}}, 15, 8)
	postIngest(t, ts.URL, pts)
	awaitCond(t, "shard 2 permanent failure", func() bool { return srv.shards[2].failed() })

	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		got := getQuery(t, ts.URL, k, m)
		if !got.Degraded || got.ShardsMissing != 1 {
			t.Fatalf("%v: degraded=%v shards_missing=%d, want true/1", m, got.Degraded, got.ShardsMissing)
		}

		// The reference: the same degraded snapshot round the handler
		// runs, survivors concatenated in shard order, engine built
		// fresh, solved by the index-based round-2 solver.
		replies, err := srv.snapshots(context.Background(), m, nil, true)
		if err != nil {
			t.Fatalf("%v: reference snapshots: %v", m, err)
		}
		var union []divmax.Vector
		var processed int64
		missing := 0
		for _, r := range replies {
			if r.err != nil {
				missing++
				continue
			}
			processed += r.delta.Processed
			union = append(union, r.delta.Points...)
		}
		if missing != 1 {
			t.Fatalf("%v: reference round missing %d shards, want 1", m, missing)
		}
		want := sequential.Solve(m, union, k, divmax.Euclidean)
		if eng := sequential.BuildEngine(union, divmax.Euclidean, srv.cfg.SolveWorkers); eng != nil {
			idx := sequential.SolveEngineIdx(m, eng, k)
			want = want[:0]
			for _, j := range idx {
				want = append(want, union[j])
			}
		}
		if !reflect.DeepEqual(got.Solution, want) {
			t.Errorf("%v: degraded solution %v != reference solve %v over the surviving union", m, got.Solution, want)
		}
		if got.Processed != processed || got.CoresetSize != len(union) {
			t.Errorf("%v: processed/coreset_size = %d/%d, want %d/%d", m, got.Processed, got.CoresetSize, processed, len(union))
		}
	}
}

// TestDeadlineEnvelopeAcrossPrefixes: a wedged shard with shedding
// disabled turns every endpoint into 504 deadline_exceeded, and the
// legacy and /v1 bodies are byte-identical.
func TestDeadlineEnvelopeAcrossPrefixes(t *testing.T) {
	inj := faults.New()
	hook, release := faults.Wedge(0)
	inj.OnBatch(hook)
	_, ts := newTestServer(t, Config{
		Shards: 1, MaxK: 4, Buffer: 1, Faults: inj,
		QueryDeadline:  150 * time.Millisecond,
		IngestDeadline: 150 * time.Millisecond,
		ShedWait:       -1, // shedding disabled: the deadline is the only bound
	})
	t.Cleanup(release)

	// Wedge the shard goroutine and fill the one-slot queue.
	postIngest(t, ts.URL, []divmax.Vector{{0, 0}})
	postIngest(t, ts.URL, []divmax.Vector{{1, 1}})

	for _, tc := range []struct {
		name, path, body string
	}{
		{"ingest", "/ingest", `{"points":[[2,2]]}`},
		{"delete", "/delete", `{"points":[[0,0]]}`},
		{"query", "/query?k=2", ""},
	} {
		run := func(prefix string) (int, string, []byte) {
			if tc.body != "" {
				return rawPost(t, ts.URL+prefix+tc.path, tc.body)
			}
			return rawGet(t, ts.URL+prefix+tc.path)
		}
		s1, ct1, b1 := run("")
		s2, ct2, b2 := run(api.Prefix)
		assertSameResponse(t, tc.name, s1, s2, ct1, ct2, b1, b2)
		if s1 != http.StatusGatewayTimeout {
			t.Errorf("%s on wedged shard: status %d (body %s), want 504", tc.name, s1, b1)
		}
		want := fmt.Sprintf("{\"error\":{\"code\":%q,\"message\":\"request deadline exceeded\"}}\n", api.CodeDeadlineExceeded)
		if string(b1) != want {
			t.Errorf("%s envelope %q, want %q", tc.name, b1, want)
		}
	}
}

// TestOverloadedEnvelopeAcrossPrefixes: load shedding — a full shard
// queue for ingest/delete, a saturated inflight-query limiter for
// query — answers 429 overloaded with a Retry-After hint, byte for
// byte the same on both prefixes.
func TestOverloadedEnvelopeAcrossPrefixes(t *testing.T) {
	inj := faults.New()
	hook, release := faults.Wedge(0)
	inj.OnBatch(hook)
	srv, ts := newTestServer(t, Config{
		Shards: 1, MaxK: 4, Buffer: 1, Faults: inj,
		ShedWait:    30 * time.Millisecond,
		MaxInflight: 1,
	})
	t.Cleanup(release)

	postIngest(t, ts.URL, []divmax.Vector{{0, 0}})
	postIngest(t, ts.URL, []divmax.Vector{{1, 1}})

	// Saturate the inflight-query limiter directly so the query path
	// sheds deterministically too.
	srv.querySem <- struct{}{}
	defer func() { <-srv.querySem }()

	for _, tc := range []struct {
		name, path, body string
	}{
		{"ingest", "/ingest", `{"points":[[2,2]]}`},
		{"delete", "/delete", `{"points":[[0,0]]}`},
		{"query", "/query?k=2", ""},
	} {
		run := func(prefix string) (int, string, []byte) {
			if tc.body != "" {
				return rawPost(t, ts.URL+prefix+tc.path, tc.body)
			}
			return rawGet(t, ts.URL+prefix+tc.path)
		}
		s1, ct1, b1 := run("")
		s2, ct2, b2 := run(api.Prefix)
		assertSameResponse(t, tc.name, s1, s2, ct1, ct2, b1, b2)
		if s1 != http.StatusTooManyRequests {
			t.Errorf("%s under overload: status %d (body %s), want 429", tc.name, s1, b1)
		}
		want := fmt.Sprintf("{\"error\":{\"code\":%q,\"message\":\"server: overloaded, retry later\"}}\n", api.CodeOverloaded)
		if string(b1) != want {
			t.Errorf("%s envelope %q, want %q", tc.name, b1, want)
		}
	}

	// The Retry-After hint rounds the shed wait up to a whole second.
	resp, err := http.Get(ts.URL + "/v1/query?k=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
}

// TestFailedShardEnvelopeAcrossPrefixes: a permanently failed shard
// answers every endpoint with 503 unavailable naming the shard, byte
// for byte the same on both prefixes — and never hangs.
func TestFailedShardEnvelopeAcrossPrefixes(t *testing.T) {
	inj := faults.New()
	inj.OnBatch(func(shard, batch int) { panic("poisoned batch") })
	srv, ts := newTestServer(t, Config{Shards: 1, MaxK: 4, RestartBudget: -1, Faults: inj})

	postIngest(t, ts.URL, []divmax.Vector{{0, 0}})
	awaitCond(t, "shard failure", func() bool { return srv.shards[0].failed() })

	want := fmt.Sprintf("{\"error\":{\"code\":%q,\"message\":\"server: shard 0 has failed permanently (restart budget exhausted)\"}}\n", api.CodeUnavailable)
	for _, tc := range []struct {
		name, path, body string
	}{
		{"ingest", "/ingest", `{"points":[[2,2]]}`},
		{"delete", "/delete", `{"points":[[0,0]]}`},
		{"query", "/query?k=1", ""},
	} {
		run := func(prefix string) (int, string, []byte) {
			if tc.body != "" {
				return rawPost(t, ts.URL+prefix+tc.path, tc.body)
			}
			return rawGet(t, ts.URL+prefix+tc.path)
		}
		s1, ct1, b1 := run("")
		s2, ct2, b2 := run(api.Prefix)
		assertSameResponse(t, tc.name, s1, s2, ct1, ct2, b1, b2)
		if s1 != http.StatusServiceUnavailable {
			t.Errorf("%s on failed shard: status %d (body %s), want 503", tc.name, s1, b1)
		}
		if string(b1) != want {
			t.Errorf("%s envelope %q, want %q", tc.name, b1, want)
		}
	}
}

// TestReadyzAliasAndDraining: /readyz is served identically on both
// prefixes, answers ok on a healthy server, and flips to 503
// unavailable when the server drains — while /healthz liveness keeps
// answering ok for the still-running process.
func TestReadyzAliasAndDraining(t *testing.T) {
	srv, err := New(Config{Shards: 1, MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close() // idempotent; the test closes early to test draining

	s1, ct1, b1 := rawGet(t, ts.URL+"/readyz")
	s2, ct2, b2 := rawGet(t, ts.URL+api.Prefix+"/readyz")
	assertSameResponse(t, "readyz", s1, s2, ct1, ct2, b1, b2)
	if s1 != http.StatusOK || string(b1) != "ok\n" {
		t.Fatalf("healthy readyz: status %d body %q, want 200 \"ok\\n\"", s1, b1)
	}

	srv.Close()
	s, _, b := rawGet(t, ts.URL+"/v1/readyz")
	if s != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: status %d (body %s), want 503", s, b)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(b, &env); err != nil || env.Error.Code != api.CodeUnavailable {
		t.Fatalf("draining readyz envelope %q (err %v), want code %q", b, err, api.CodeUnavailable)
	}
	if s, _, b := rawGet(t, ts.URL+"/v1/healthz"); s != http.StatusOK {
		t.Fatalf("draining healthz: status %d (body %s), want 200", s, b)
	}
}
