package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"divmax"
	"divmax/internal/api"
)

// tryDelete mirrors tryIngest for POST /delete: an error instead of a
// test failure, safe from worker goroutines.
func tryDelete(url string, pts []divmax.Vector) (deleteResponse, error) {
	var out deleteResponse
	body, err := json.Marshal(deleteRequest{Points: pts})
	if err != nil {
		return out, err
	}
	resp, err := http.Post(url+"/delete", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("delete: status %d", resp.StatusCode)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

func postDelete(t *testing.T, url string, pts []divmax.Vector) deleteResponse {
	t.Helper()
	out, err := tryDelete(url, pts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDeleteEndToEnd is the tentpole's acceptance path: ingest a
// clustered stream, wipe out one entire cluster by value, and require
// that (a) every point is classified (evicting/spare/tombstone sum to
// the request), (b) deleting a whole cluster evicts retained core-set
// points somewhere, (c) the post-deletion solution contains no deleted
// value, and (d) its quality stays in the same envelope versus the
// brute-force sequential solve over the surviving ground set that the
// repo demands of every pipeline.
func TestDeleteEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	centers := []divmax.Vector{{0, 0}, {900, 0}, {0, 900}, {900, 900}}
	pts := clusterPoints(rng, centers, 25, 5)
	k := 4

	_, ts := newTestServer(t, Config{Shards: 2, MaxK: k, KPrime: 12})
	postIngest(t, ts.URL, pts)
	before := getQuery(t, ts.URL, k, divmax.RemoteEdge)
	if len(before.Solution) != k {
		t.Fatalf("pre-delete solution size %d, want %d", len(before.Solution), k)
	}

	// Partition the stream: doomed = every point of the {900,900}
	// cluster, live = the rest.
	var doomed, live []divmax.Vector
	for _, p := range pts {
		if p[0] > 800 && p[1] > 800 {
			doomed = append(doomed, p)
		} else {
			live = append(live, p)
		}
	}
	if len(doomed) != 25 {
		t.Fatalf("cluster partition found %d doomed points, want 25", len(doomed))
	}

	del := postDelete(t, ts.URL, doomed)
	if del.Requested != len(doomed) || del.Shards != 2 {
		t.Fatalf("delete response %+v, want requested=%d shards=2", del, len(doomed))
	}
	if del.Evicted+del.Spares+del.Tombstones != del.Requested {
		t.Fatalf("delete outcomes %d+%d+%d do not sum to requested %d",
			del.Evicted, del.Spares, del.Tombstones, del.Requested)
	}
	if del.Evicted == 0 {
		t.Fatal("deleting an entire well-separated cluster evicted nothing")
	}

	deleted := make(map[[2]float64]bool, len(doomed))
	for _, p := range doomed {
		deleted[[2]float64{p[0], p[1]}] = true
	}
	for _, m := range divmax.Measures {
		got := getQuery(t, ts.URL, k, m)
		for _, p := range got.Solution {
			if deleted[[2]float64{p[0], p[1]}] {
				t.Fatalf("%v: solution contains deleted point %v", m, p)
			}
		}
		_, seqVal := divmax.MaxDiversity(m, live, k, divmax.Euclidean)
		val, _ := divmax.Evaluate(m, got.Solution, divmax.Euclidean)
		if val < seqVal/2 {
			t.Errorf("%v: post-deletion value %v below half of sequential %v over the surviving set", m, val, seqVal)
		}
	}

	st := getStats(t, ts.URL)
	if st.DeletesRequested != int64(len(doomed)) {
		t.Fatalf("stats deletes_requested = %d, want %d", st.DeletesRequested, len(doomed))
	}
	if st.DeletesEvicting != int64(del.Evicted) || st.DeletesSpares != int64(del.Spares) || st.DeletesTombstoned != int64(del.Tombstones) {
		t.Fatalf("stats delete split %d/%d/%d disagrees with response %d/%d/%d",
			st.DeletesEvicting, st.DeletesSpares, st.DeletesTombstoned,
			del.Evicted, del.Spares, del.Tombstones)
	}
	var shardRemoved int64
	for _, sh := range st.Shards {
		shardRemoved += sh.Deleted
	}
	if shardRemoved == 0 {
		t.Fatal("no shard reported deleted points after an evicting delete")
	}
}

// TestDeleteKeepsPatchingWhenNonEvicting pins the generation contract
// that makes deletion cheap at steady state: a delete that removes
// nothing retained (a pure tombstone broadcast) invalidates the query
// cache — the response must reflect a deleted-free view — but leaves
// every core-set generation alone, so the stale query resolves as a
// delta patch, not a rebuild.
func TestDeleteKeepsPatchingWhenNonEvicting(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 4, KPrime: 8, DeltaBudget: 16})
	postIngest(t, ts.URL, clusterPoints(rng, []divmax.Vector{{0, 0}, {500, 500}}, 20, 4))
	getQuery(t, ts.URL, 3, divmax.RemoteEdge)

	del := postDelete(t, ts.URL, []divmax.Vector{{-1000, -1000}, {2000, 2000}})
	if del.Tombstones != 2 || del.Evicted != 0 || del.Spares != 0 {
		t.Fatalf("never-ingested deletes classified as %+v, want 2 tombstones", del)
	}
	q := getQuery(t, ts.URL, 3, divmax.RemoteEdge)
	if q.Cached {
		t.Fatal("query after a delete served the unvalidated cached state")
	}
	if !q.Patched {
		t.Fatal("non-evicting delete forced a full rebuild; want a delta patch")
	}
}

// decodeErrorEnvelope asserts a non-2xx response carries the uniform
// {"error":{"code","message"}} envelope and returns it.
func decodeErrorEnvelope(t *testing.T, resp *http.Response) api.ErrorEnvelope {
	t.Helper()
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not an envelope: %v", err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("error envelope missing code or message: %+v", env)
	}
	return env
}

func TestDeleteValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 3, KPrime: 6})

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/delete", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// An empty server accepts deletes of any dimension: everything is a
	// tombstone.
	if del := postDelete(t, ts.URL, []divmax.Vector{{1, 2, 3}}); del.Tombstones != 1 {
		t.Fatalf("delete on empty server = %+v, want 1 tombstone", del)
	}
	if del := postDelete(t, ts.URL, nil); del.Requested != 0 || del.Shards != 2 {
		t.Fatalf("empty delete = %+v, want requested=0 shards=2", del)
	}

	postIngest(t, ts.URL, []divmax.Vector{{0, 0}, {5, 5}})

	if resp := post(`not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	} else if env := decodeErrorEnvelope(t, resp); env.Error.Code != api.CodeBadRequest {
		t.Errorf("bad JSON: code %q, want %q", env.Error.Code, api.CodeBadRequest)
	}
	if resp := post(`{"points": [[1,2], [3]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mixed dimensions: status %d, want 400", resp.StatusCode)
	} else {
		decodeErrorEnvelope(t, resp)
	}
	if resp := post(`{"points": [[1,2,3]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("dimension mismatch: status %d, want 400", resp.StatusCode)
	} else {
		decodeErrorEnvelope(t, resp)
	}
	if resp := post(`{"points": [[1,2]]}{"points": [[3,4]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("concatenated bodies: status %d, want 400", resp.StatusCode)
	} else {
		decodeErrorEnvelope(t, resp)
	}

	resp, err := http.Get(ts.URL + "/delete")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /delete: status %d, want 405", resp.StatusCode)
	}
	if env := decodeErrorEnvelope(t, resp); env.Error.Code != api.CodeMethodNotAllowed {
		t.Errorf("GET /delete: code %q, want %q", env.Error.Code, api.CodeMethodNotAllowed)
	}
}

// TestDeleteEverythingThenReQuery drives the stream to empty and back:
// deleting every ingested value must leave a well-formed empty answer,
// and re-ingesting must restore service.
func TestDeleteEverythingThenReQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 3, KPrime: 6})
	pts := []divmax.Vector{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	postIngest(t, ts.URL, pts)
	getQuery(t, ts.URL, 2, divmax.RemoteEdge)

	del := postDelete(t, ts.URL, pts)
	if del.Evicted+del.Spares != len(pts) {
		t.Fatalf("deleting the whole stream removed %d+%d retained points, want %d",
			del.Evicted, del.Spares, len(pts))
	}
	q := getQuery(t, ts.URL, 2, divmax.RemoteEdge)
	if len(q.Solution) != 0 || q.Value != 0 {
		t.Fatalf("query after deleting everything = %+v, want empty with value 0", q)
	}

	postIngest(t, ts.URL, []divmax.Vector{{1, 1}, {99, 99}})
	q = getQuery(t, ts.URL, 2, divmax.RemoteEdge)
	if len(q.Solution) != 2 {
		t.Fatalf("query after re-ingest returned %d points, want 2", len(q.Solution))
	}
}
