package server

import (
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"divmax"
	"divmax/internal/metric"
)

// highDimClusters draws embedding-shaped data: well-separated cluster
// centers in dim dimensions with tight Gaussian spread, the regime
// -project-dim is for.
func highDimClusters(rng *rand.Rand, n, dim, clusters int) []divmax.Vector {
	centers := make([]divmax.Vector, clusters)
	for c := range centers {
		v := make(divmax.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		centers[c] = v
	}
	pts := make([]divmax.Vector, n)
	for i := range pts {
		c := centers[i%clusters]
		v := make(divmax.Vector, dim)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*0.5
		}
		pts[i] = v
	}
	return pts
}

// isIngested reports whether p is byte-for-byte one of pts.
func isIngested(p divmax.Vector, pts []divmax.Vector) bool {
	for _, q := range pts {
		if len(q) != len(p) {
			continue
		}
		same := true
		for j := range q {
			if math.Float64bits(q[j]) != math.Float64bits(p[j]) {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// distortionRatio computes the per-instance JL distortion envelope of
// the server's deterministic projector over every pair of pts: the
// ratio of the smallest to the largest projected/original distance
// ratio. Any solver achieving value V in the projected space achieves
// at least (ρmin/ρmax)·V′ relative to what it would achieve on the true
// distances, for the max-min and sum-of-distances measures alike.
func distortionRatio(t *testing.T, pts []divmax.Vector, outDim int) float64 {
	t.Helper()
	pr := metric.NewProjector(len(pts[0]), outDim, projectSeed)
	if pr == nil {
		t.Fatal("test shape is non-reducing")
	}
	proj := pr.ProjectAll(pts)
	rmin, rmax := math.Inf(1), math.Inf(-1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			orig := metric.Euclidean(pts[i], pts[j])
			if orig == 0 {
				continue
			}
			r := metric.Euclidean(proj[i], proj[j]) / orig
			rmin, rmax = math.Min(rmin, r), math.Max(rmax, r)
		}
	}
	if !(rmin > 0) || math.IsInf(rmax, 0) {
		t.Fatalf("degenerate distortion envelope [%v, %v]", rmin, rmax)
	}
	return rmin / rmax
}

// TestProjectionStatsByteIdenticalWhenOff pins the opt-in contract: a
// server without ProjectDim serves /v1/stats bodies with no projection
// fields at all, before and after traffic.
func TestProjectionStatsByteIdenticalWhenOff(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	check := func(stage string) {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(body), "project") {
			t.Fatalf("%s: projection fields leaked into unprojected stats: %s", stage, body)
		}
	}
	check("cold")
	rng := rand.New(rand.NewSource(1))
	postIngest(t, ts.URL, highDimClusters(rng, 40, 32, 4))
	getQuery(t, ts.URL, 3, divmax.RemoteEdge)
	check("after traffic")
}

// TestProjectionTrueSpaceReporting: with projection on, solutions are
// original ingested points (byte-identical membership) and the reported
// value is exactly the true-space evaluation of the returned set —
// never the projected-space objective the solver optimized.
func TestProjectionTrueSpaceReporting(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 3, MaxK: 8, ProjectDim: 12})
	rng := rand.New(rand.NewSource(7))
	pts := highDimClusters(rng, 240, 64, 8)
	postIngest(t, ts.URL, pts)
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique, divmax.RemoteStar} {
		q := getQuery(t, ts.URL, 6, m)
		if len(q.Solution) == 0 {
			t.Fatalf("%s: empty solution", m)
		}
		for i, p := range q.Solution {
			if len(p) != 64 {
				t.Fatalf("%s: solution point %d has dimension %d, want the original 64", m, i, len(p))
			}
			if !isIngested(p, pts) {
				t.Fatalf("%s: solution point %d is not an ingested original", m, i)
			}
		}
		want, _ := divmax.Evaluate(m, q.Solution, divmax.Euclidean)
		if q.Value != want {
			t.Fatalf("%s: reported value %v, true-space evaluation of the returned set %v", m, q.Value, want)
		}
	}
	st := getStats(t, ts.URL)
	if st.ProjectDim != 12 || st.ProjectedPoints != 240 {
		t.Fatalf("stats report project_dim=%d projected_points=%d, want 12 and 240",
			st.ProjectDim, st.ProjectedPoints)
	}
	if !srv.projecting() {
		t.Fatal("server did not build a projector for 64→12")
	}
}

// TestProjectionQualityEnvelope is the quality pin against brute force:
// on well-separated clusters, the projected pipeline's true-space value
// must stay within the measured per-instance distortion envelope of the
// exact optimum — the end-to-end form of the JL guarantee, with the
// pipeline's own approximation factor (2 for remote-edge) as slack.
func TestProjectionQualityEnvelope(t *testing.T) {
	const n, dim, outDim, k = 25, 48, 8, 4
	rng := rand.New(rand.NewSource(11))
	pts := highDimClusters(rng, n, dim, k)
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 8, ProjectDim: outDim})
	postIngest(t, ts.URL, pts)
	q := getQuery(t, ts.URL, k, divmax.RemoteEdge)
	_, opt, _ := divmax.Exact(divmax.RemoteEdge, pts, k, divmax.Euclidean)
	ratio := distortionRatio(t, pts, outDim)
	// Pipeline guarantee without projection: ≥ opt/2 (SequentialAlpha,
	// plus the composable core-set ε). Solving in ρ-distorted space
	// degrades any achieved value by at most ρmin/ρmax once mapped back.
	bound := 0.4 * ratio * opt
	if q.Value < bound {
		t.Fatalf("projected value %v below the distortion envelope %v (opt %v, ratio %v)",
			q.Value, bound, opt, ratio)
	}
	if q.Value > opt*(1+1e-9) {
		t.Fatalf("projected value %v exceeds the exact optimum %v", q.Value, opt)
	}
}

// TestProjectionDeleteByOriginalValue: deletes arrive in original
// coordinates and must chase the projected copies out of the shards —
// the deleted point never reappears in a solution, and re-ingesting it
// restores it.
func TestProjectionDeleteByOriginalValue(t *testing.T) {
	const dim, outDim = 32, 6
	rng := rand.New(rand.NewSource(13))
	pts := highDimClusters(rng, 40, dim, 4)
	// A far-away outlier every remote-edge solution must include.
	outlier := make(divmax.Vector, dim)
	for j := range outlier {
		outlier[j] = 1e4
	}
	_, ts := newTestServer(t, Config{Shards: 2, MaxK: 4, ProjectDim: outDim})
	postIngest(t, ts.URL, append(append([]divmax.Vector{}, pts...), outlier))
	if q := getQuery(t, ts.URL, 3, divmax.RemoteEdge); !isIngested(outlier, q.Solution) {
		t.Fatal("outlier missing from the pre-delete solution")
	}
	del := postDelete(t, ts.URL, []divmax.Vector{outlier})
	if del.Evicted+del.Spares == 0 {
		t.Fatalf("deleting a retained point matched nothing: %+v", del)
	}
	if q := getQuery(t, ts.URL, 3, divmax.RemoteEdge); isIngested(outlier, q.Solution) {
		t.Fatal("deleted outlier still in the solution")
	}
	postIngest(t, ts.URL, []divmax.Vector{outlier})
	if q := getQuery(t, ts.URL, 3, divmax.RemoteEdge); !isIngested(outlier, q.Solution) {
		t.Fatal("re-ingested outlier missing from the solution")
	}
}

// TestProjectionPassThroughBelowDim: datasets at or below ProjectDim
// flow through untouched — no projector, no projected-points counter,
// solutions straight from the shards.
func TestProjectionPassThroughBelowDim(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 2, MaxK: 4, ProjectDim: 8})
	rng := rand.New(rand.NewSource(17))
	pts := highDimClusters(rng, 30, 4, 3)
	postIngest(t, ts.URL, pts)
	q := getQuery(t, ts.URL, 3, divmax.RemoteEdge)
	for i, p := range q.Solution {
		if !isIngested(p, pts) {
			t.Fatalf("pass-through solution point %d is not an ingested original", i)
		}
	}
	if srv.projecting() {
		t.Fatal("projector built for a non-reducing dataset")
	}
	if st := getStats(t, ts.URL); st.ProjectedPoints != 0 {
		t.Fatalf("pass-through counted %d projected points", st.ProjectedPoints)
	}
}

// TestProjectionRejectsDataDir: the in-memory-only contract is enforced
// at construction.
func TestProjectionRejectsDataDir(t *testing.T) {
	if _, err := New(Config{ProjectDim: 8, DataDir: t.TempDir()}); err == nil {
		t.Fatal("New accepted ProjectDim together with DataDir")
	}
}

// FuzzJLSelectionQuality drives the projected pipeline with arbitrary
// quantized high-dimensional points and checks the exact end-to-end
// invariants: every solution point is an ingested original, the
// reported value is the true-space evaluation of the returned set, and
// it never exceeds the brute-force optimum for the same k.
func FuzzJLSelectionQuality(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 200, 9, 9, 9}, uint8(2))
	f.Add([]byte{255, 0, 255, 0, 1, 1}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8) {
		if len(data) == 0 {
			return
		}
		const dim, outDim = 24, 5
		n := 2 + len(data)%7
		pts := make([]divmax.Vector, n)
		for i := range pts {
			v := make(divmax.Vector, dim)
			for j := range v {
				v[j] = float64(data[(i*dim+j)%len(data)])
			}
			pts[i] = v
		}
		k := 1 + int(kRaw)%3
		srv, err := New(Config{Shards: 2, MaxK: 4, ProjectDim: outDim})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
		}()
		postIngest(t, ts.URL, pts)
		q := getQuery(t, ts.URL, k, divmax.RemoteEdge)
		for i, p := range q.Solution {
			if !isIngested(p, pts) {
				t.Fatalf("solution point %d is not an ingested original", i)
			}
		}
		want, _ := divmax.Evaluate(divmax.RemoteEdge, q.Solution, divmax.Euclidean)
		if w, e := sanitizeValue(want, true); q.Value != w {
			t.Fatalf("reported value %v, true-space evaluation %v (exact=%v)", q.Value, w, e)
		}
		_, opt, _ := divmax.Exact(divmax.RemoteEdge, pts, k, divmax.Euclidean)
		optV, _ := sanitizeValue(opt, true)
		if q.Value > optV*(1+1e-9)+1e-12 {
			t.Fatalf("value %v exceeds the brute-force optimum %v", q.Value, optV)
		}
	})
}
