package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"divmax"
	"divmax/internal/api"
)

func postSnapshot(t *testing.T, url, family string, cursor *api.SnapshotCursor) api.SnapshotResponse {
	t.Helper()
	body, err := json.Marshal(api.SnapshotRequest{Family: family, Cursor: cursor})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/snapshot", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	var out api.SnapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSnapshotEndpoint: the coordinator's round-1 fetch. A full round
// returns the merged per-shard core-set whose size matches what /query
// merges; handing the cursor back with nothing ingested since yields an
// empty pure delta; ingesting more yields either a delta extending the
// earlier view or a full replacement (never a mix); a stale-width
// cursor falls back to full.
func TestSnapshotEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 3, MaxK: 4})
	rng := rand.New(rand.NewSource(7))
	pts := clusterPoints(rng, []divmax.Vector{{0, 0}, {100, 0}, {0, 100}, {60, 60}}, 40, 1.0)
	postIngest(t, ts.URL, pts)

	for fam, m := range map[string]divmax.Measure{"edge": divmax.RemoteEdge, "proxy": divmax.RemoteClique} {
		full := postSnapshot(t, ts.URL, fam, nil)
		if full.Partial {
			t.Fatalf("%s: cursorless snapshot answered partial", fam)
		}
		if full.Shards != 3 || full.Processed != int64(len(pts)) {
			t.Fatalf("%s: shards=%d processed=%d, want 3, %d", fam, full.Shards, full.Processed, len(pts))
		}
		if q := getQuery(t, ts.URL, 2, m); q.CoresetSize != len(full.Points) {
			t.Fatalf("%s: snapshot has %d points, /query merged %d", fam, len(full.Points), q.CoresetSize)
		}

		same := postSnapshot(t, ts.URL, fam, &full.Cursor)
		if !same.Partial || len(same.Points) != 0 {
			t.Fatalf("%s: unchanged stream: partial=%v delta=%d, want empty pure delta", fam, same.Partial, len(same.Points))
		}
		if same.Processed != full.Processed {
			t.Fatalf("%s: delta processed %d, want %d", fam, same.Processed, full.Processed)
		}

		more := clusterPoints(rng, []divmax.Vector{{200, 200}}, 20, 1.0)
		postIngest(t, ts.URL, more)
		next := postSnapshot(t, ts.URL, fam, &full.Cursor)
		if next.Processed != int64(len(pts)+len(more)) {
			t.Fatalf("%s: post-ingest processed %d, want %d", fam, next.Processed, len(pts)+len(more))
		}
		want := len(next.Points)
		if next.Partial {
			want += len(full.Points)
		}
		if fresh := postSnapshot(t, ts.URL, fam, nil); len(fresh.Points) != want {
			t.Fatalf("%s: cursor view totals %d points, fresh snapshot has %d", fam, want, len(fresh.Points))
		}

		stale := postSnapshot(t, ts.URL, fam, &api.SnapshotCursor{Gens: []uint64{1}, Poss: []int{0}})
		if stale.Partial {
			t.Fatalf("%s: wrong-width cursor answered partial", fam)
		}
		// Reset the stream view for the next family loop? Not needed —
		// both families see the same stream; the counts above are all
		// relative to what this iteration ingested so far.
		pts = append(pts, more...)
	}
}

// TestSnapshotEndpointRejects: family and method validation use the
// uniform error envelope.
func TestSnapshotEndpointRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json",
		bytes.NewReader([]byte(`{"family":"nope"}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown family: status %d, want 400", resp.StatusCode)
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != api.CodeBadRequest {
		t.Fatalf("unknown family: envelope %+v (err %v)", env, err)
	}
	get, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", get.StatusCode)
	}
}
