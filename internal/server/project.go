package server

import (
	"math"
	"sync"
	"unsafe"

	"divmax"
	"divmax/internal/metric"
)

// Opt-in Johnson–Lindenstrauss projection (Config.ProjectDim).
//
// When enabled and the dataset dimension exceeds ProjectDim, every
// ingested (and deleted) point is projected ONCE at the handler, and
// the shards, core-sets, caches, and solve engines all run entirely in
// the reduced space — the whole resident pipeline never sees an
// original coordinate again. Query answers are mapped back: each
// selected projected point looks up the original it came from (the
// projection is deterministic, so equal originals collapse to equal
// projected points), and the reported value is re-evaluated over the
// ORIGINALS — true-space diversity of the returned set, not the
// projected-space objective the solver optimized.
//
// The projected-bytes → original map is in-memory and grows with the
// number of distinct ingested points, which is why ProjectDim is
// rejected alongside DataDir (recovery could rebuild the shards but
// not the map) and reserved for single-process servers.

// projectSeed fixes the projector's Gaussian matrix for the process:
// deterministic per (dim, ProjectDim), so deletes always project onto
// the bytes their ingests produced. Tests rebuild the same projector
// from it to compute per-instance distortion envelopes.
const projectSeed = 0x9E3779B9

// projection is the server's projection state, created lazily when the
// first batch pins the dataset dimension.
type projection struct {
	mu sync.RWMutex
	// decided latches the pass-through decision: once the dataset
	// dimension is known, pr is built exactly once (nil when the shape
	// is non-reducing) and never revisited.
	decided bool
	pr      *metric.Projector
	// orig maps projected-point bytes to the original point that
	// produced them (first ingest wins; equal originals project
	// identically, so later duplicates change nothing).
	orig map[string]divmax.Vector
}

// projecting reports whether queries must map solutions back.
func (s *Server) projecting() bool {
	s.proj.mu.RLock()
	defer s.proj.mu.RUnlock()
	return s.proj.pr != nil
}

// projectorFor returns the projector for the (now pinned) dataset
// dimension, creating it on first use. nil means pass-through: the
// feature is off, or the dataset dimension is already at or below
// ProjectDim (NewProjector refuses non-reducing shapes).
func (s *Server) projectorFor(dim int) *metric.Projector {
	if s.cfg.ProjectDim <= 0 {
		return nil
	}
	s.proj.mu.RLock()
	pr, decided := s.proj.pr, s.proj.decided
	s.proj.mu.RUnlock()
	if decided {
		return pr
	}
	s.proj.mu.Lock()
	defer s.proj.mu.Unlock()
	if !s.proj.decided {
		s.proj.pr = metric.NewProjector(dim, s.cfg.ProjectDim, projectSeed)
		s.proj.decided = true
		if s.proj.pr != nil {
			s.proj.orig = make(map[string]divmax.Vector)
		}
	}
	return s.proj.pr
}

// vecKey is the map key of a projected point: its coordinates' raw
// bytes. The slice data is copied into the string, so the key outlives
// the vector's backing array.
func vecKey(v divmax.Vector) string {
	if len(v) == 0 {
		return ""
	}
	return string(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v)))
}

// projectIngest projects a validated ingest batch, recording each
// projected point's original for query-time mapping, and returns the
// batch the shards should fold. Pass-through (projection off or
// non-reducing) returns pts unchanged.
func (s *Server) projectIngest(pts []divmax.Vector) []divmax.Vector {
	pr := s.projectorFor(len(pts[0]))
	if pr == nil {
		return pts
	}
	out := make([]divmax.Vector, len(pts))
	s.proj.mu.Lock()
	for i, p := range pts {
		out[i] = metric.Vector(pr.Project(p))
		if key := vecKey(out[i]); s.proj.orig[key] == nil {
			s.proj.orig[key] = p
		}
	}
	s.proj.mu.Unlock()
	s.projectedPoints.Add(int64(len(pts)))
	return out
}

// projectDelete projects a delete batch onto the space the shards
// store. Originals stay in the map: deletion by value is idempotent
// and a re-ingested point must map back again.
func (s *Server) projectDelete(pts []divmax.Vector) []divmax.Vector {
	pr := s.projectorFor(len(pts[0]))
	if pr == nil {
		return pts
	}
	out := make([]divmax.Vector, len(pts))
	for i, p := range pts {
		out[i] = metric.Vector(pr.Project(p))
	}
	return out
}

// unproject maps a solved (projected-space) solution back to the
// original points, in place of the projected ones. A projected point
// with no recorded original — impossible for points that came through
// /ingest — is returned as-is rather than dropped, keeping the
// response shape intact.
func (s *Server) unproject(sol []divmax.Vector) []divmax.Vector {
	if !s.projecting() || len(sol) == 0 {
		return sol
	}
	out := make([]divmax.Vector, len(sol))
	s.proj.mu.RLock()
	for i, p := range sol {
		if o := s.proj.orig[vecKey(p)]; o != nil {
			out[i] = o
		} else {
			out[i] = p
		}
	}
	s.proj.mu.RUnlock()
	return out
}

// sanitizeValue maps the non-finite degenerate evaluations (min-based
// measures over fewer than 2 points) onto the wire contract: value 0,
// flagged inexact. JSON cannot encode ±Inf/NaN.
func sanitizeValue(val float64, exact bool) (float64, bool) {
	if math.IsInf(val, 0) || math.IsNaN(val) {
		return 0, false
	}
	return val, exact
}
