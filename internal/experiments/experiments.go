// Package experiments reproduces the figures and tables of the paper's
// Section 7. Each experiment is a function from a size-scaled
// configuration to a structured result with a Print method that emits the
// same rows/series the paper plots. Absolute sizes default far below the
// paper's cluster-scale datasets (flags on cmd/experiments raise them);
// EXPERIMENTS.md records how the measured shapes compare to the paper's.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"divmax/internal/dataset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/mrdiv"
	"divmax/internal/sequential"
	"divmax/internal/streamalg"
)

// Reference computes the baseline value used for approximation ratios.
// As in the paper, optimal solutions are out of reach, so ratios are
// relative to "the best solution found by many runs of our MapReduce
// algorithm with maximum parallelism and large local memory": here, the
// best diversity over runs of the 2-round algorithm with a large kernel
// and shuffled inputs, plus one direct sequential run.
func Reference[P any](m diversity.Measure, pts []P, k int, runs int, seed int64, d metric.Distance[P]) float64 {
	kprime := 8 * k
	if kprime > len(pts) {
		kprime = len(pts)
	}
	best, _ := diversity.Evaluate(m, sequential.Solve(m, pts, k, d), d)
	for r := 0; r < runs; r++ {
		shuffled := dataset.Shuffle(pts, seed+int64(r))
		sol, err := mrdiv.TwoRound(m, shuffled, k, mrdiv.Config{Parallelism: 8, KPrime: kprime}, d)
		if err != nil {
			continue
		}
		if v, _ := diversity.Evaluate(m, sol, d); v > best {
			best = v
		}
	}
	return best
}

// ratio converts a found diversity value into the paper's approximation
// ratio (≥ 1; 1 is optimal).
func ratio(reference, found float64) float64 {
	if found <= 0 {
		if reference <= 0 {
			return 1
		}
		return float64(int(^uint(0) >> 1)) // degenerate: report huge
	}
	r := reference / found
	if r < 1 {
		// The run beat the reference; clamp as the paper's plots do.
		return 1
	}
	return r
}

// Cell is one measured grid point of a ratio experiment.
type Cell struct {
	K, KPrime int
	Ratio     float64
}

// Grid is a k × k′ table of approximation ratios.
type Grid struct {
	Title string
	Cells []Cell
}

// Print renders the grid with k as rows and k′ as columns, like the
// paper's grouped-bar figures.
func (g *Grid) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", g.Title)
	cols := map[int][]Cell{}
	var ks []int
	for _, c := range g.Cells {
		if _, seen := cols[c.K]; !seen {
			ks = append(ks, c.K)
		}
		cols[c.K] = append(cols[c.K], c)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "k\\k'\t")
	if len(ks) > 0 {
		for _, c := range cols[ks[0]] {
			fmt.Fprintf(tw, "%d\t", c.KPrime)
		}
	}
	fmt.Fprintln(tw)
	for _, k := range ks {
		fmt.Fprintf(tw, "%d\t", k)
		for _, c := range cols[k] {
			fmt.Fprintf(tw, "%.3f\t", c.Ratio)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// StreamingRatioConfig parameterizes Figures 1 and 2: the streaming
// algorithm's approximation ratio across k and k′.
type StreamingRatioConfig struct {
	// Ks are the solution sizes (the paper uses 8, 32, 128).
	Ks []int
	// KPrimes maps k to the kernel sizes to test (geometric multiples for
	// Fig 1, additive offsets for Fig 2).
	KPrimes func(k int) []int
	// Runs averages each cell over this many stream shuffles (≥ 1).
	Runs int
	// RefRuns controls the reference computation.
	RefRuns int
	Seed    int64
}

// StreamingRatio measures the one-pass streaming algorithm's remote-edge
// approximation ratio on the given dataset (Figure 1 on lyrics, Figure 2
// on the synthetic sphere dataset).
func StreamingRatio[P any](title string, pts []P, cfg StreamingRatioConfig, d metric.Distance[P]) *Grid {
	g := &Grid{Title: title}
	for _, k := range cfg.Ks {
		ref := Reference(diversity.RemoteEdge, pts, k, cfg.RefRuns, cfg.Seed, d)
		for _, kprime := range cfg.KPrimes(k) {
			sum := 0.0
			for r := 0; r < cfg.Runs; r++ {
				stream := streamalg.SliceStream(dataset.Shuffle(pts, cfg.Seed+int64(r)))
				sol := streamalg.OnePass(diversity.RemoteEdge, stream, k, kprime, d)
				v, _ := diversity.Evaluate(diversity.RemoteEdge, sol, d)
				sum += ratio(ref, v)
			}
			g.Cells = append(g.Cells, Cell{K: k, KPrime: kprime, Ratio: sum / float64(cfg.Runs)})
		}
	}
	return g
}

// ThroughputCell is one measured point of Figure 3.
type ThroughputCell struct {
	K, KPrime int
	PointsSec float64
}

// ThroughputResult is Figure 3: the streaming kernel's sustainable rate.
type ThroughputResult struct {
	Title string
	Cells []ThroughputCell
}

// Print renders points/s with k as rows and k′ as columns.
func (t *ThroughputResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	cols := map[int][]ThroughputCell{}
	var ks []int
	for _, c := range t.Cells {
		if _, seen := cols[c.K]; !seen {
			ks = append(ks, c.K)
		}
		cols[c.K] = append(cols[c.K], c)
	}
	fmt.Fprintf(tw, "k\\k'\t")
	if len(ks) > 0 {
		for _, c := range cols[ks[0]] {
			fmt.Fprintf(tw, "%d\t", c.KPrime)
		}
	}
	fmt.Fprintln(tw)
	for _, k := range ks {
		fmt.Fprintf(tw, "%d\t", k)
		for _, c := range cols[k] {
			fmt.Fprintf(tw, "%.0f\t", c.PointsSec)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Throughput measures the streaming kernel's processing rate (Figure 3):
// only Process calls are timed, isolating the core-set construction from
// the data source, exactly as the paper does ("ignoring the cost of
// streaming data from memory").
func Throughput[P any](title string, pts []P, ks []int, kprimes func(k int) []int, d metric.Distance[P]) *ThroughputResult {
	res := &ThroughputResult{Title: title}
	for _, k := range ks {
		for _, kprime := range kprimes(k) {
			proc := streamalg.NewSMM(k, kprime, d)
			start := time.Now()
			for _, p := range pts {
				proc.Process(p)
			}
			elapsed := time.Since(start)
			res.Cells = append(res.Cells, ThroughputCell{
				K: k, KPrime: kprime,
				PointsSec: float64(len(pts)) / elapsed.Seconds(),
			})
		}
	}
	return res
}

// MRRatioConfig parameterizes Figure 4: the 2-round MapReduce algorithm's
// ratio across parallelism and k′.
type MRRatioConfig struct {
	K            int
	Parallelisms []int
	KPrimes      []int
	Runs         int
	RefRuns      int
	Seed         int64
	Adversarial  bool // Morton-sort + chunk partitioning (§7.2)
}

// MRCell is one measured point of Figure 4.
type MRCell struct {
	Parallelism, KPrime int
	Ratio               float64
}

// MRResult is Figure 4 (and the adversarial-partitioning variant).
type MRResult struct {
	Title string
	Cells []MRCell
}

// Print renders ratios with parallelism as rows and k′ as columns.
func (r *MRResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	cols := map[int][]MRCell{}
	var ps []int
	for _, c := range r.Cells {
		if _, seen := cols[c.Parallelism]; !seen {
			ps = append(ps, c.Parallelism)
		}
		cols[c.Parallelism] = append(cols[c.Parallelism], c)
	}
	fmt.Fprintf(tw, "ℓ\\k'\t")
	if len(ps) > 0 {
		for _, c := range cols[ps[0]] {
			fmt.Fprintf(tw, "%d\t", c.KPrime)
		}
	}
	fmt.Fprintln(tw)
	for _, p := range ps {
		fmt.Fprintf(tw, "%d\t", p)
		for _, c := range cols[p] {
			fmt.Fprintf(tw, "%.4f\t", c.Ratio)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// MRRatio measures the 2-round MapReduce remote-edge ratio on pts
// (Figure 4; with cfg.Adversarial, the §7.2 experiment).
func MRRatio(title string, pts []metric.Vector, cfg MRRatioConfig) *MRResult {
	res := &MRResult{Title: title}
	ref := Reference(diversity.RemoteEdge, pts, cfg.K, cfg.RefRuns, cfg.Seed, metric.Euclidean)
	data := pts
	partitioning := mrdiv.PartitionRoundRobin
	if cfg.Adversarial {
		data = dataset.SortMorton(pts, 10)
		partitioning = mrdiv.PartitionChunks
	}
	for _, ell := range cfg.Parallelisms {
		for _, kprime := range cfg.KPrimes {
			sum := 0.0
			for r := 0; r < cfg.Runs; r++ {
				in := data
				if !cfg.Adversarial {
					in = dataset.Shuffle(data, cfg.Seed+int64(r))
				}
				sol, err := mrdiv.TwoRound(diversity.RemoteEdge, in, cfg.K,
					mrdiv.Config{Parallelism: ell, KPrime: kprime, Partitioning: partitioning, Seed: cfg.Seed + int64(r)},
					metric.Euclidean)
				if err != nil {
					continue
				}
				v, _ := diversity.Evaluate(diversity.RemoteEdge, sol, metric.Euclidean)
				sum += ratio(ref, v)
			}
			res.Cells = append(res.Cells, MRCell{Parallelism: ell, KPrime: kprime, Ratio: sum / float64(cfg.Runs)})
		}
	}
	return res
}
