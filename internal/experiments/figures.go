package experiments

import (
	"fmt"

	"divmax/internal/dataset"
	"divmax/internal/metric"
)

// Scale bundles the knobs every figure shares: the dataset size, the
// number of averaged runs (the paper averages ≥ 10 runs), and the seed.
type Scale struct {
	N    int
	Runs int
	Seed int64
}

func (s Scale) runs() int {
	if s.Runs < 1 {
		return 1
	}
	return s.Runs
}

// Fig1 reproduces Figure 1: streaming approximation ratio on the
// (simulated) musiXmatch dataset under the cosine distance, k ∈ Ks,
// k′ ∈ {k, 2k, 4k, 8k}.
func Fig1(s Scale, ks []int) (*Grid, error) {
	docs, err := dataset.Lyrics(dataset.LyricsConfig{N: s.N, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	cfg := StreamingRatioConfig{
		Ks:      ks,
		KPrimes: func(k int) []int { return []int{k, 2 * k, 4 * k, 8 * k} },
		Runs:    s.runs(),
		RefRuns: s.runs(),
		Seed:    s.Seed,
	}
	title := fmt.Sprintf("Figure 1: streaming approximation ratio, lyrics (n=%d, cosine distance, remote-edge)", s.N)
	return StreamingRatio(title, docs, cfg, metric.CosineDistance), nil
}

// Fig2 reproduces Figure 2: streaming approximation ratio on the
// synthetic 3-D sphere dataset, k′ ∈ {k, k+4, k+16, k+64} (a linear
// progression: R³ has small doubling dimension, so small k′ increments
// already help).
func Fig2(s Scale, ks []int) (*Grid, error) {
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	pts, err := dataset.Sphere(dataset.SphereConfig{N: s.N, K: maxK, Dim: 3, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	pts = dataset.Shuffle(pts, s.Seed+7)
	cfg := StreamingRatioConfig{
		Ks:      ks,
		KPrimes: func(k int) []int { return []int{k, k + 4, k + 16, k + 64} },
		Runs:    s.runs(),
		RefRuns: s.runs(),
		Seed:    s.Seed,
	}
	title := fmt.Sprintf("Figure 2: streaming approximation ratio, synthetic sphere (n=%d, R³, remote-edge)", s.N)
	return StreamingRatio(title, pts, cfg, metric.Euclidean), nil
}

// Fig3 reproduces Figure 3: streaming kernel throughput (points/s) on
// the lyrics dataset, same (k, k′) grid as Figure 1.
func Fig3(s Scale, ks []int) (*ThroughputResult, error) {
	docs, err := dataset.Lyrics(dataset.LyricsConfig{N: s.N, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Figure 3: streaming kernel throughput, lyrics (n=%d, points/s)", s.N)
	return Throughput(title, docs, ks, func(k int) []int { return []int{k, 2 * k, 4 * k, 8 * k} }, metric.CosineDistance), nil
}

// Fig3Synthetic is the paper's companion measurement: the same
// throughput grid on the synthetic dataset, whose Euclidean distance is
// cheaper, yielding proportionally higher rates.
func Fig3Synthetic(s Scale, ks []int) (*ThroughputResult, error) {
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	pts, err := dataset.Sphere(dataset.SphereConfig{N: s.N, K: maxK, Dim: 3, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Figure 3 (synthetic): streaming kernel throughput (n=%d, points/s)", s.N)
	return Throughput(title, pts, ks, func(k int) []int { return []int{k, 2 * k, 4 * k, 8 * k} }, metric.Euclidean), nil
}

// Fig4 reproduces Figure 4: 2-round MapReduce approximation ratio on the
// synthetic sphere dataset, k fixed, parallelism ∈ {2,4,8,16},
// k′ ∈ {k, 2k, 4k, 8k}.
func Fig4(s Scale, k int) (*MRResult, error) {
	pts, err := dataset.Sphere(dataset.SphereConfig{N: s.N, K: k, Dim: 3, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	pts = dataset.Shuffle(pts, s.Seed+13)
	cfg := MRRatioConfig{
		K:            k,
		Parallelisms: []int{2, 4, 8, 16},
		KPrimes:      []int{k, 2 * k, 4 * k, 8 * k},
		Runs:         s.runs(),
		RefRuns:      s.runs(),
		Seed:         s.Seed,
	}
	title := fmt.Sprintf("Figure 4: MapReduce approximation ratio, synthetic sphere (n=%d, k=%d, remote-edge)", s.N, k)
	return MRRatio(title, pts, cfg), nil
}

// Adversarial reproduces the §7.2 adversarial-partitioning experiment:
// the Figure 4 grid with Morton-sorted input and contiguous-chunk
// partitions, to be compared against the random-partition grid (the
// paper reports ratios worsening by up to ~10%).
func Adversarial(s Scale, k int) (*MRResult, *MRResult, error) {
	pts, err := dataset.Sphere(dataset.SphereConfig{N: s.N, K: k, Dim: 3, Seed: s.Seed})
	if err != nil {
		return nil, nil, err
	}
	pts = dataset.Shuffle(pts, s.Seed+13)
	base := MRRatioConfig{
		K:            k,
		Parallelisms: []int{2, 4, 8, 16},
		KPrimes:      []int{k, 2 * k, 4 * k},
		Runs:         s.runs(),
		RefRuns:      s.runs(),
		Seed:         s.Seed,
	}
	random := MRRatio("§7.2 random partitioning", pts, base)
	adv := base
	adv.Adversarial = true
	advRes := MRRatio("§7.2 adversarial (Morton-chunk) partitioning", pts, adv)
	return random, advRes, nil
}
