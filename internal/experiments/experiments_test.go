package experiments

import (
	"bytes"
	"strings"
	"testing"

	"divmax/internal/dataset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
)

// Experiment tests run tiny configurations: they verify wiring, table
// shapes, and directional trends, not absolute performance.

func tinyScale() Scale { return Scale{N: 600, Runs: 2, Seed: 42} }

func TestRatioSemantics(t *testing.T) {
	if r := ratio(10, 5); r != 2 {
		t.Errorf("ratio(10,5) = %v, want 2", r)
	}
	if r := ratio(10, 12); r != 1 {
		t.Errorf("ratio better than reference should clamp to 1, got %v", r)
	}
	if r := ratio(0, 0); r != 1 {
		t.Errorf("ratio(0,0) = %v, want 1", r)
	}
}

func TestReferenceAtLeastSequential(t *testing.T) {
	pts, _ := dataset.Sphere(dataset.SphereConfig{N: 300, K: 4, Dim: 3, Seed: 1})
	ref := Reference(diversity.RemoteEdge, pts, 4, 2, 1, metric.Euclidean)
	if ref <= 0 {
		t.Fatalf("reference = %v, want > 0", ref)
	}
}

func TestFig1ShapeAndTrend(t *testing.T) {
	s := tinyScale()
	s.N = 400
	grid, err := Fig1(s, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 8 {
		t.Fatalf("cells = %d, want 8 (2 k × 4 k')", len(grid.Cells))
	}
	for _, c := range grid.Cells {
		if c.Ratio < 1 {
			t.Fatalf("ratio %v below 1", c.Ratio)
		}
	}
	var buf bytes.Buffer
	grid.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("missing title")
	}
}

func TestFig2LargerKernelNotWorse(t *testing.T) {
	s := tinyScale()
	grid, err := Fig2(s, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	// Largest k' should be at least as good (≤ ratio) as smallest;
	// averaged over runs this is the paper's core finding.
	first, last := grid.Cells[0], grid.Cells[len(grid.Cells)-1]
	if last.Ratio > first.Ratio+0.35 {
		t.Fatalf("k'=%d ratio %v much worse than k'=%d ratio %v", last.KPrime, last.Ratio, first.KPrime, first.Ratio)
	}
}

func TestFig3ThroughputPositiveAndKernelCostMonotone(t *testing.T) {
	s := tinyScale()
	s.N = 300
	res, err := Fig3(s, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.PointsSec <= 0 {
			t.Fatalf("non-positive throughput %v", c.PointsSec)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "throughput") {
		t.Fatal("missing title")
	}
}

func TestFig4Shape(t *testing.T) {
	s := tinyScale()
	res, err := Fig4(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 16 {
		t.Fatalf("cells = %d, want 16 (4 ℓ × 4 k')", len(res.Cells))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "MapReduce") {
		t.Fatal("missing title")
	}
}

func TestTable4CPPUFasterAndComparable(t *testing.T) {
	res, err := Table4(Table4Config{
		N: 20000, Ks: []int{4}, Reducers: 4, CPPUKPrime: 32, RefRuns: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	r := res.Rows[0]
	if r.CPPURatio < 1 || r.AFZRatio < 1 {
		t.Fatalf("ratios below 1: %+v", r)
	}
	// The paper's headline: CPPU is much faster at comparable quality.
	if r.CPPUTime >= r.AFZTime {
		t.Fatalf("CPPU (%v) not faster than AFZ (%v)", r.CPPUTime, r.AFZTime)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "CPPU") {
		t.Fatal("missing header")
	}
}

func TestFig5ShapesAndTrends(t *testing.T) {
	res, err := Fig5(Fig5Config{
		BaseN: 2000, SizeSteps: 2, Processors: []int{1, 2, 4}, K: 8, AggregateSize: 64, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Time <= 0 || c.Diversity <= 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "scalability") {
		t.Fatal("missing title")
	}
}

func TestAdversarialNotBetterThanRandom(t *testing.T) {
	s := Scale{N: 2000, Runs: 2, Seed: 9}
	random, adv, err := Adversarial(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(r *MRResult) float64 {
		total := 0.0
		for _, c := range r.Cells {
			total += c.Ratio
		}
		return total / float64(len(r.Cells))
	}
	// Adversarial partitioning must not beat random on average (the paper
	// reports up to ~10% worse).
	if avg(adv) < avg(random)-0.02 {
		t.Fatalf("adversarial (%v) unexpectedly better than random (%v)", avg(adv), avg(random))
	}
}

func TestMeasureSweepAllSixMeasures(t *testing.T) {
	res, err := MeasureSweep(Scale{N: 800, Runs: 1, Seed: 4}, 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.StreamRatio < 1 || row.MRRatio < 1 {
			t.Errorf("%v: ratios below 1: %+v", row.Measure, row)
		}
		// All pipelines are constant-factor: ratios should be modest.
		if row.StreamRatio > 12 || row.MRRatio > 12 {
			t.Errorf("%v: implausibly bad ratio: %+v", row.Measure, row)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "measure sweep") {
		t.Fatal("missing title")
	}
}
