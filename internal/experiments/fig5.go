package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"divmax/internal/dataset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/mrdiv"
	"divmax/internal/streamalg"
)

// Fig5Config parameterizes the scalability experiment (Figure 5): running
// time versus number of processors p and dataset size n, with the final
// reducer's memory s = ℓ·k′ held fixed. On one processor, the streaming
// algorithm runs with k′ = s, "so to have a final coreset of the same
// size as the ones found in MapReduce runs" — exactly the paper's setup.
type Fig5Config struct {
	// BaseN is the smallest dataset size; sizes are BaseN·2^i for
	// i < SizeSteps (the paper uses 10⁸·{1,2,4,8,16}).
	BaseN     int
	SizeSteps int
	// Processors are the parallelism levels (the paper uses 1..16, where
	// 1 means the streaming algorithm).
	Processors []int
	// K is the solution size; AggregateSize is s = ℓ·k′ (the paper's
	// streaming run uses k′ = 2048).
	K, AggregateSize int
	Seed             int64
}

// Fig5Cell is one measured point: wall-clock time for (n, p).
type Fig5Cell struct {
	N, Processors int
	Time          time.Duration
	Diversity     float64
}

// Fig5Result reproduces Figure 5.
type Fig5Result struct {
	Cells []Fig5Cell
}

// Print renders times (seconds) with n as rows and p as columns.
func (f *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: scalability — wall-clock seconds, rows n, columns processors (p=1 is streaming)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	cols := map[int][]Fig5Cell{}
	var ns []int
	for _, c := range f.Cells {
		if _, seen := cols[c.N]; !seen {
			ns = append(ns, c.N)
		}
		cols[c.N] = append(cols[c.N], c)
	}
	fmt.Fprintf(tw, "n\\p\t")
	if len(ns) > 0 {
		for _, c := range cols[ns[0]] {
			fmt.Fprintf(tw, "%d\t", c.Processors)
		}
	}
	fmt.Fprintln(tw)
	for _, n := range ns {
		fmt.Fprintf(tw, "%d\t", n)
		for _, c := range cols[n] {
			fmt.Fprintf(tw, "%.3f\t", c.Time.Seconds())
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Fig5 runs the scalability sweep on 3-dimensional sphere data. For p = 1
// it times the streaming algorithm including the pass over the data (as
// the paper does for this figure, unlike Figure 3); for p ≥ 2 it times
// the 2-round MapReduce algorithm with ℓ = p reducers, Workers = p, and
// k′ = s/p.
func Fig5(cfg Fig5Config) (*Fig5Result, error) {
	res := &Fig5Result{}
	for step := 0; step < cfg.SizeSteps; step++ {
		n := cfg.BaseN << step
		pts, err := dataset.Sphere(dataset.SphereConfig{N: n, K: cfg.K, Dim: 3, Seed: cfg.Seed + int64(step)})
		if err != nil {
			return nil, err
		}
		pts = dataset.Shuffle(pts, cfg.Seed+int64(step)+100)
		for _, p := range cfg.Processors {
			var cell Fig5Cell
			cell.N, cell.Processors = n, p
			if p == 1 {
				start := time.Now()
				sol := streamalg.OnePass(diversity.RemoteEdge, streamalg.SliceStream(pts), cfg.K, cfg.AggregateSize, metric.Euclidean)
				cell.Time = time.Since(start)
				cell.Diversity, _ = diversity.Evaluate(diversity.RemoteEdge, sol, metric.Euclidean)
			} else {
				kprime := cfg.AggregateSize / p
				if kprime < cfg.K {
					kprime = cfg.K
				}
				start := time.Now()
				sol, err := mrdiv.TwoRound(diversity.RemoteEdge, pts, cfg.K,
					mrdiv.Config{Parallelism: p, KPrime: kprime, Workers: p}, metric.Euclidean)
				if err != nil {
					return nil, err
				}
				cell.Time = time.Since(start)
				cell.Diversity, _ = diversity.Evaluate(diversity.RemoteEdge, sol, metric.Euclidean)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}
