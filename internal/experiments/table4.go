package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"divmax/internal/baseline"
	"divmax/internal/dataset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/mrdiv"
)

// Table4Config parameterizes the CPPU-vs-AFZ comparison of Table 4:
// remote-clique on 2-dimensional sphere data, 16 reducers, CPPU with
// k′ = 128, AFZ with its local-search core-sets.
type Table4Config struct {
	// N is the dataset size (the paper uses 4×10⁶; defaults here are
	// laptop-scale).
	N int
	// Ks are the solution sizes (the paper uses 4, 6, 8).
	Ks []int
	// Reducers is the round-1 parallelism (the paper uses 16).
	Reducers int
	// CPPUKPrime is CPPU's kernel size (the paper uses 128).
	CPPUKPrime int
	// RefRuns controls the reference computation for the ratios.
	RefRuns int
	Seed    int64
}

// Table4Row is one row of Table 4.
type Table4Row struct {
	K         int
	AFZRatio  float64
	CPPURatio float64
	AFZTime   time.Duration
	CPPUTime  time.Duration
}

// Table4Result reproduces Table 4.
type Table4Result struct {
	Rows []Table4Row
}

// Print renders the table with the paper's column layout.
func (t *Table4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 4: remote-clique, CPPU vs AFZ")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tapproximation\t\ttime (s)\t")
	fmt.Fprintln(tw, "k\tAFZ\tCPPU\tAFZ\tCPPU")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.2f\t%.2f\n",
			r.K, r.AFZRatio, r.CPPURatio, r.AFZTime.Seconds(), r.CPPUTime.Seconds())
	}
	tw.Flush()
}

// Table4 runs the comparison. Both pipelines see identical data and the
// same final sequential algorithm; only the round-1 core-set construction
// differs (GMM-EXT for CPPU, local search for AFZ), matching the paper's
// setup.
func Table4(cfg Table4Config) (*Table4Result, error) {
	pts, err := dataset.Sphere(dataset.SphereConfig{N: cfg.N, K: maxOf(cfg.Ks), Dim: 2, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	pts = dataset.Shuffle(pts, cfg.Seed+1)
	res := &Table4Result{}
	for _, k := range cfg.Ks {
		ref := Reference(diversity.RemoteClique, pts, k, cfg.RefRuns, cfg.Seed, metric.Euclidean)

		startCPPU := time.Now()
		cppuSol, err := mrdiv.TwoRound(diversity.RemoteClique, pts, k,
			mrdiv.Config{Parallelism: cfg.Reducers, KPrime: cfg.CPPUKPrime}, metric.Euclidean)
		if err != nil {
			return nil, err
		}
		cppuTime := time.Since(startCPPU)
		cppuVal, _ := diversity.Evaluate(diversity.RemoteClique, cppuSol, metric.Euclidean)

		startAFZ := time.Now()
		afzSol, err := baseline.TwoRound(diversity.RemoteClique, pts, k,
			baseline.Config{Parallelism: cfg.Reducers}, metric.Euclidean)
		if err != nil {
			return nil, err
		}
		afzTime := time.Since(startAFZ)
		afzVal, _ := diversity.Evaluate(diversity.RemoteClique, afzSol, metric.Euclidean)

		res.Rows = append(res.Rows, Table4Row{
			K:         k,
			AFZRatio:  ratio(ref, afzVal),
			CPPURatio: ratio(ref, cppuVal),
			AFZTime:   afzTime,
			CPPUTime:  cppuTime,
		})
	}
	return res, nil
}

func maxOf(xs []int) int {
	best := 0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
