package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"divmax/internal/dataset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
	"divmax/internal/mrdiv"
	"divmax/internal/streamalg"
)

// MeasureSweepRow holds one measure's streaming and MapReduce ratios at
// fixed (k, k′).
type MeasureSweepRow struct {
	Measure         diversity.Measure
	StreamRatio     float64
	MRRatio         float64
	EvaluationExact bool
}

// MeasureSweepResult backs the paper's claim that "we observed similar
// behaviors for the other diversity measures" (§7): the same pipelines,
// all six objectives, one table.
type MeasureSweepResult struct {
	K, KPrime int
	Rows      []MeasureSweepRow
}

// Print renders the sweep.
func (r *MeasureSweepResult) Print(w io.Writer) {
	fmt.Fprintf(w, "§7 measure sweep: streaming and 2-round MapReduce ratios, k=%d k'=%d\n", r.K, r.KPrime)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "measure\tstreaming\tmapreduce\texact-eval")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%v\t%.3f\t%.3f\t%v\n", row.Measure, row.StreamRatio, row.MRRatio, row.EvaluationExact)
	}
	tw.Flush()
}

// MeasureSweep runs the streaming and 2-round MapReduce pipelines for
// every measure on the synthetic sphere dataset and reports their
// approximation ratios against the per-measure reference.
func MeasureSweep(s Scale, k, kprime int) (*MeasureSweepResult, error) {
	pts, err := dataset.Sphere(dataset.SphereConfig{N: s.N, K: k, Dim: 3, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	pts = dataset.Shuffle(pts, s.Seed+3)
	res := &MeasureSweepResult{K: k, KPrime: kprime}
	for _, m := range diversity.Measures {
		ref := Reference(m, pts, k, s.runs(), s.Seed, metric.Euclidean)

		streamSum, mrSum := 0.0, 0.0
		exact := true
		for r := 0; r < s.runs(); r++ {
			shuffled := dataset.Shuffle(pts, s.Seed+int64(r))
			sSol := streamalg.OnePass(m, streamalg.SliceStream(shuffled), k, kprime, metric.Euclidean)
			sVal, sExact := diversity.Evaluate(m, sSol, metric.Euclidean)
			streamSum += ratio(ref, sVal)

			mSol, err := mrdiv.TwoRound(m, shuffled, k, mrdiv.Config{Parallelism: 4, KPrime: kprime}, metric.Euclidean)
			if err != nil {
				return nil, err
			}
			mVal, mExact := diversity.Evaluate(m, mSol, metric.Euclidean)
			mrSum += ratio(ref, mVal)
			exact = exact && sExact && mExact
		}
		res.Rows = append(res.Rows, MeasureSweepRow{
			Measure:         m,
			StreamRatio:     streamSum / float64(s.runs()),
			MRRatio:         mrSum / float64(s.runs()),
			EvaluationExact: exact,
		})
	}
	return res, nil
}
