// Package testutil holds the floating-point comparators shared by the
// envelope-equivalence test harnesses (internal/metric/envelope_test.go
// and the consumer packages' tier-aware tests): ULP distances, relative
// comparisons, and the documented error envelope of the blocked
// (norm-trick) squared-distance tier.
package testutil

import "math"

// eps is the double-precision machine epsilon, the unit of every bound
// in this package.
const eps = 0x1p-52

// envelopeK is the safety multiple of SqDistBound over the worst-case
// analytic rounding error of the two squared-distance forms (~d·eps
// relative to ‖a‖²+‖b‖², see the derivation on SqDistBound). 8 keeps
// the bound tight enough that an algebraic mistake — a dropped factor,
// a wrong norm — overshoots it by many orders of magnitude, while
// platform-legal differences stay well inside it.
const envelopeK = 8

// SqDistBound returns the absolute error envelope within which the
// blocked-tier squared distance (‖a‖² + ‖b‖² − 2·a·b over cached norms,
// internal/metric's d ≥ BlockedMinDim tier) and the canonical
// difference-form squared distance must agree for d-dimensional rows
// with squared norms na and nb.
//
// Derivation: a four-lane compensated-order sum of m products carries
// relative error ≤ (m/4+2)·eps against its exact value, so each of
// ‖a‖², ‖b‖², and a·b errs by ≤ (d/4+2)·eps times its own magnitude;
// |a·b| ≤ (na+nb)/2 by AM–GM, and the final two additions contribute
// two more half-ULPs — in total ≤ ~d·eps·(na+nb). The difference form's
// error is ≤ (d/4+2)·eps·Σ(aᵢ−bᵢ)² ≤ ~(d/2)·eps·(na+nb). envelopeK
// covers both plus slack.
//
// The envelope is an absolute bound scaled by the operand norms — not a
// plain relative bound — because the norm trick's cancellation on
// near-duplicate rows makes the *relative* error of a tiny distance
// unbounded while its absolute error stays pinned to the norms.
func SqDistBound(dim int, na, nb float64) float64 {
	return envelopeK * float64(dim) * eps * (na + nb)
}

// ULPDiff returns the distance in units of least precision between a
// and b: the number of representable float64 values strictly between
// them, plus one if they differ. It returns 0 iff the bit patterns are
// equal (so -0 and +0 count as one ULP apart, and two NaNs with equal
// payloads count as equal), and MaxUint64 when either value is NaN with
// a different pattern or the values straddle the NaN space.
func ULPDiff(a, b float64) uint64 {
	ba, bb := math.Float64bits(a), math.Float64bits(b)
	if ba == bb {
		return 0
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	// Map the sign-magnitude float ordering onto an unsigned number
	// line so ULP distance is plain subtraction across zero.
	ia, ib := ulpOrder(ba), ulpOrder(bb)
	if ia > ib {
		ia, ib = ib, ia
	}
	return ib - ia
}

// ulpOrder maps float64 bit patterns onto a monotonically increasing
// unsigned scale: negative values are reflected below the midpoint,
// non-negative values offset above it.
func ulpOrder(bits uint64) uint64 {
	if bits&(1<<63) != 0 {
		return 1<<63 - (bits &^ (1 << 63))
	}
	return 1<<63 + bits
}

// WithinULP reports whether a and b are within n units of least
// precision of one another (bit-equal counts as 0).
func WithinULP(a, b float64, n uint64) bool { return ULPDiff(a, b) <= n }

// WithinRel reports whether a and b agree to relative tolerance tol,
// |a−b| ≤ tol·max(|a|, |b|), treating exact equality (including both
// zero or both the same infinity) as agreement.
func WithinRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	m := math.Abs(a)
	if mb := math.Abs(b); mb > m {
		m = mb
	}
	return math.Abs(a-b) <= tol*m
}

// WithinAbs reports whether |a−b| ≤ bound, treating exact equality as
// agreement (covers both infinite with the same sign).
func WithinAbs(a, b, bound float64) bool {
	return a == b || math.Abs(a-b) <= bound
}
