// Package mapreduce is the MapReduce substrate: an in-memory engine that
// executes rounds of the MR model of Karloff–Suri–Vassilvitskii and
// Pietracaprina et al. (the model of Section 5 of the paper). A round
// groups a multiset of key-value pairs by key and applies a reducer
// function independently to each group; reducers run concurrently on a
// goroutine worker pool, which is how this repository approximates the
// paper's Spark cluster (see DESIGN.md, substitutions).
//
// The engine accounts for the model's two memory parameters: M_L, the
// largest number of values any single reducer touches (its input plus its
// output), and M_T, the total number of values in flight. The paper's
// claims are stated in terms of these quantities, and the tests and
// benchmarks read them from the per-round Stats.
package mapreduce

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Pair is one keyed record flowing between rounds.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Stats describes one executed round.
type Stats struct {
	// Name labels the round (e.g. "coreset", "aggregate").
	Name string
	// Reducers is the number of distinct keys, i.e. reducer invocations.
	Reducers int
	// MaxLocalMemory is M_L: the largest input+output value count of a
	// single reducer.
	MaxLocalMemory int
	// TotalInput and TotalOutput count values entering and leaving the
	// round; their max is the round's M_T.
	TotalInput, TotalOutput int
	// LimitViolations counts reducers whose input+output exceeded
	// Options.LocalMemoryLimit (0 when no limit was set).
	LimitViolations int
	// Duration is the wall-clock time of the round, reducers running
	// concurrently.
	Duration time.Duration
}

// Metrics accumulates the Stats of every round of a job.
type Metrics struct {
	mu     sync.Mutex
	rounds []Stats
}

// Add appends a round's stats; safe for concurrent use.
func (m *Metrics) Add(s Stats) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rounds = append(m.rounds, s)
}

// Rounds returns a copy of the recorded per-round stats, in order.
func (m *Metrics) Rounds() []Stats {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Stats, len(m.rounds))
	copy(out, m.rounds)
	return out
}

// MaxLocalMemory returns the job-wide M_L: the maximum over rounds.
func (m *Metrics) MaxLocalMemory() int {
	best := 0
	for _, r := range m.Rounds() {
		if r.MaxLocalMemory > best {
			best = r.MaxLocalMemory
		}
	}
	return best
}

// TotalDuration sums the round durations.
func (m *Metrics) TotalDuration() time.Duration {
	var total time.Duration
	for _, r := range m.Rounds() {
		total += r.Duration
	}
	return total
}

// Options configures a round.
type Options struct {
	// Name labels the round in Stats.
	Name string
	// Workers bounds the number of reducers executing concurrently;
	// 0 means runtime.NumCPU(). This models the physical processor count,
	// distinct from the number of reducers (the logical parallelism ℓ).
	Workers int
	// LocalMemoryLimit, when positive, is the M_L budget in values per
	// reducer (input + output). Run records violations in Stats;
	// RunStrict turns them into errors — the MR model's defining
	// constraint, enforced rather than just measured.
	LocalMemoryLimit int
	// Metrics, when non-nil, receives the round's Stats.
	Metrics *Metrics
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// Run executes one MapReduce round: in is grouped by key, and reduce is
// applied to each group concurrently. The output is the concatenation of
// all reducer outputs, ordered by key (keys are sorted by their formatted
// representation to keep runs deterministic regardless of scheduling).
func Run[K1 comparable, V1 any, K2 comparable, V2 any](
	in []Pair[K1, V1],
	reduce func(key K1, values []V1) []Pair[K2, V2],
	opts Options,
) []Pair[K2, V2] {
	start := time.Now()
	groups := make(map[K1][]V1)
	for _, p := range in {
		groups[p.Key] = append(groups[p.Key], p.Value)
	}
	keys := make([]K1, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})

	outputs := make([][]Pair[K2, V2], len(keys))
	local := make([]int, len(keys))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.workers())
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k K1) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out := reduce(k, groups[k])
			outputs[i] = out
			local[i] = len(groups[k]) + len(out)
		}(i, k)
	}
	wg.Wait()

	stats := Stats{
		Name:       opts.Name,
		Reducers:   len(keys),
		TotalInput: len(in),
	}
	var result []Pair[K2, V2]
	for i := range outputs {
		result = append(result, outputs[i]...)
		if local[i] > stats.MaxLocalMemory {
			stats.MaxLocalMemory = local[i]
		}
		if opts.LocalMemoryLimit > 0 && local[i] > opts.LocalMemoryLimit {
			stats.LimitViolations++
		}
	}
	stats.TotalOutput = len(result)
	stats.Duration = time.Since(start)
	if opts.Metrics != nil {
		opts.Metrics.Add(stats)
	}
	return result
}

// RunStrict is Run with the M_L budget enforced: it returns an error
// naming the round when any reducer's footprint exceeds
// opts.LocalMemoryLimit. The round's outputs are still returned for
// inspection alongside the error.
func RunStrict[K1 comparable, V1 any, K2 comparable, V2 any](
	in []Pair[K1, V1],
	reduce func(key K1, values []V1) []Pair[K2, V2],
	opts Options,
) ([]Pair[K2, V2], error) {
	var m Metrics
	inner := opts
	inner.Metrics = &m
	out := Run(in, reduce, inner)
	stats := m.Rounds()[0]
	if opts.Metrics != nil {
		opts.Metrics.Add(stats)
	}
	if stats.LimitViolations > 0 {
		return out, fmt.Errorf("mapreduce: round %q: %d reducer(s) exceeded the local memory budget of %d values (max observed %d)",
			opts.Name, stats.LimitViolations, opts.LocalMemoryLimit, stats.MaxLocalMemory)
	}
	return out, nil
}

// Scatter keys a slice of values into ell partitions: value i goes to
// partition perm(i) mod ell where perm is the identity. Use ScatterSeeded
// for the random-key partitioning of the paper's randomized algorithm.
func Scatter[V any](values []V, ell int) []Pair[int, V] {
	if ell < 1 {
		panic(fmt.Sprintf("mapreduce: Scatter requires ell >= 1, got %d", ell))
	}
	out := make([]Pair[int, V], len(values))
	for i, v := range values {
		out[i] = Pair[int, V]{Key: i % ell, Value: v}
	}
	return out
}

// ScatterSeeded keys each value into one of ell partitions uniformly at
// random (deterministically from seed): the "random keys" partitioning of
// the randomized 2-round algorithm (Theorem 7), which guarantees with
// high probability that no partition holds more than Θ(max{log n, k/ℓ})
// points of any fixed optimal solution.
func ScatterSeeded[V any](values []V, ell int, seed int64) []Pair[int, V] {
	if ell < 1 {
		panic(fmt.Sprintf("mapreduce: ScatterSeeded requires ell >= 1, got %d", ell))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair[int, V], len(values))
	for i, v := range values {
		out[i] = Pair[int, V]{Key: rng.Intn(ell), Value: v}
	}
	return out
}

// ScatterChunks keys values into ell contiguous chunks of near-equal
// size, preserving input order inside each chunk. Used by the adversarial
// partitioning experiment, where input order encodes spatial locality.
func ScatterChunks[V any](values []V, ell int) []Pair[int, V] {
	if ell < 1 {
		panic(fmt.Sprintf("mapreduce: ScatterChunks requires ell >= 1, got %d", ell))
	}
	n := len(values)
	out := make([]Pair[int, V], n)
	for i, v := range values {
		part := i * ell / n
		if part >= ell {
			part = ell - 1
		}
		out[i] = Pair[int, V]{Key: part, Value: v}
	}
	return out
}
