package mapreduce

import (
	"math/rand"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunGroupsByKey(t *testing.T) {
	in := []Pair[string, int]{
		{"a", 1}, {"b", 10}, {"a", 2}, {"b", 20}, {"a", 3},
	}
	out := Run(in, func(key string, vals []int) []Pair[string, int] {
		sum := 0
		for _, v := range vals {
			sum += v
		}
		return []Pair[string, int]{{key, sum}}
	}, Options{Name: "sum"})
	if len(out) != 2 {
		t.Fatalf("output = %v, want 2 pairs", out)
	}
	got := map[string]int{}
	for _, p := range out {
		got[p.Key] = p.Value
	}
	if got["a"] != 6 || got["b"] != 30 {
		t.Fatalf("sums = %v, want a:6 b:30", got)
	}
}

func TestRunDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var in []Pair[int, int]
	for i := 0; i < 500; i++ {
		in = append(in, Pair[int, int]{Key: rng.Intn(20), Value: i})
	}
	runOnce := func() []int {
		out := Run(in, func(key int, vals []int) []Pair[int, int] {
			return []Pair[int, int]{{key, len(vals)}}
		}, Options{Workers: 7})
		keys := make([]int, len(out))
		for i, p := range out {
			keys[i] = p.Key
		}
		return keys
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic output order across runs")
		}
	}
	// Keys are emitted sorted by their formatted representation.
	formatted := make([]string, len(a))
	for i, k := range a {
		formatted[i] = strconv.Itoa(k)
	}
	if !sort.StringsAreSorted(formatted) {
		t.Fatalf("keys not in formatted order: %v", a)
	}
}

func TestRunChangesTypes(t *testing.T) {
	in := []Pair[int, string]{{0, "x"}, {0, "yy"}, {1, "zzz"}}
	out := Run(in, func(key int, vals []string) []Pair[string, int] {
		total := 0
		for _, v := range vals {
			total += len(v)
		}
		return []Pair[string, int]{{Key: strconv.Itoa(key), Value: total}}
	}, Options{})
	got := map[string]int{}
	for _, p := range out {
		got[p.Key] = p.Value
	}
	if got["0"] != 3 || got["1"] != 3 {
		t.Fatalf("typed round output = %v", got)
	}
}

func TestRunConcurrencyBound(t *testing.T) {
	var inFlight, peak atomic.Int64
	in := make([]Pair[int, int], 64)
	for i := range in {
		in[i] = Pair[int, int]{Key: i, Value: i}
	}
	Run(in, func(key int, vals []int) []Pair[int, int] {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		// Busy-wait a moment so overlaps are observable.
		for i := 0; i < 10000; i++ {
			_ = i
		}
		inFlight.Add(-1)
		return nil
	}, Options{Workers: 3})
	if peak.Load() > 3 {
		t.Fatalf("concurrency peak %d exceeds Workers=3", peak.Load())
	}
}

func TestRunStats(t *testing.T) {
	var m Metrics
	in := []Pair[int, int]{{0, 1}, {0, 2}, {0, 3}, {1, 4}}
	Run(in, func(key int, vals []int) []Pair[int, int] {
		out := make([]Pair[int, int], 2)
		for i := range out {
			out[i] = Pair[int, int]{Key: key, Value: 0}
		}
		return out
	}, Options{Name: "r1", Metrics: &m})
	rounds := m.Rounds()
	if len(rounds) != 1 {
		t.Fatalf("rounds = %d, want 1", len(rounds))
	}
	s := rounds[0]
	if s.Name != "r1" || s.Reducers != 2 {
		t.Fatalf("stats = %+v", s)
	}
	// Key 0: input 3 + output 2 = 5 (the max); key 1: 1+2 = 3.
	if s.MaxLocalMemory != 5 {
		t.Fatalf("MaxLocalMemory = %d, want 5", s.MaxLocalMemory)
	}
	if s.TotalInput != 4 || s.TotalOutput != 4 {
		t.Fatalf("totals = %d/%d, want 4/4", s.TotalInput, s.TotalOutput)
	}
	if m.MaxLocalMemory() != 5 {
		t.Fatalf("job ML = %d, want 5", m.MaxLocalMemory())
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.Add(Stats{}) // must not panic
	if m.Rounds() != nil {
		t.Fatal("nil metrics should have no rounds")
	}
}

func TestScatterBalance(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		ell := 1 + rng.Intn(16)
		vals := make([]int, n)
		counts := map[int]int{}
		for _, p := range Scatter(vals, ell) {
			if p.Key < 0 || p.Key >= ell {
				return false
			}
			counts[p.Key]++
		}
		// Round-robin balance: sizes differ by at most 1.
		lo, hi := n, 0
		for part := 0; part < ell && part < n; part++ {
			c := counts[part]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		return hi-lo <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScatterChunksContiguous(t *testing.T) {
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	pairs := ScatterChunks(vals, 3)
	// Chunk keys must be non-decreasing over the input order.
	last := -1
	counts := map[int]int{}
	for _, p := range pairs {
		if p.Key < last {
			t.Fatalf("chunk keys not contiguous: %v", pairs)
		}
		last = p.Key
		counts[p.Key]++
	}
	if len(counts) != 3 {
		t.Fatalf("chunk count = %d, want 3", len(counts))
	}
}

func TestScatterSeededDeterministicAndSpread(t *testing.T) {
	vals := make([]int, 1000)
	a := ScatterSeeded(vals, 8, 42)
	b := ScatterSeeded(vals, 8, 42)
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatal("seeded scatter not deterministic")
		}
	}
	counts := map[int]int{}
	for _, p := range a {
		counts[p.Key]++
	}
	for part := 0; part < 8; part++ {
		if counts[part] < 60 { // E=125; far tail impossible at n=1000
			t.Fatalf("partition %d has %d points; random scatter badly skewed", part, counts[part])
		}
	}
}

func TestScatterPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Scatter([]int{1}, 0) },
		func() { ScatterChunks([]int{1}, 0) },
		func() { ScatterSeeded([]int{1}, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRunEmptyInput(t *testing.T) {
	out := Run(nil, func(key int, vals []int) []Pair[int, int] { return nil }, Options{})
	if out != nil {
		t.Fatalf("empty round output = %v, want nil", out)
	}
}

func TestRunStrictEnforcesBudget(t *testing.T) {
	in := []Pair[int, int]{{0, 1}, {0, 2}, {0, 3}, {1, 4}}
	identity := func(key int, vals []int) []Pair[int, int] {
		out := make([]Pair[int, int], len(vals))
		for i, v := range vals {
			out[i] = Pair[int, int]{key, v}
		}
		return out
	}
	// Key 0 holds 3 inputs + 3 outputs = 6 > 5: must error.
	if _, err := RunStrict(in, identity, Options{Name: "tight", LocalMemoryLimit: 5}); err == nil {
		t.Fatal("expected budget violation error")
	}
	// Budget 6 fits.
	out, err := RunStrict(in, identity, Options{Name: "fits", LocalMemoryLimit: 6})
	if err != nil || len(out) != 4 {
		t.Fatalf("(%v, %v)", out, err)
	}
	// No limit: never errors.
	if _, err := RunStrict(in, identity, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecordsViolations(t *testing.T) {
	var m Metrics
	in := []Pair[int, int]{{0, 1}, {0, 2}, {1, 3}}
	Run(in, func(key int, vals []int) []Pair[int, int] { return nil },
		Options{LocalMemoryLimit: 1, Metrics: &m})
	// Key 0: 2 values > 1 (violation); key 1: 1 value (ok).
	if got := m.Rounds()[0].LimitViolations; got != 1 {
		t.Fatalf("violations = %d, want 1", got)
	}
}

func TestRunStrictForwardsMetrics(t *testing.T) {
	var m Metrics
	in := []Pair[int, int]{{0, 1}}
	if _, err := RunStrict(in, func(key int, vals []int) []Pair[int, int] { return nil },
		Options{Name: "fwd", Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if len(m.Rounds()) != 1 || m.Rounds()[0].Name != "fwd" {
		t.Fatalf("metrics not forwarded: %+v", m.Rounds())
	}
}
