package mapreduce

import (
	"fmt"
	"testing"
)

// BenchmarkRunOverhead measures the engine's per-round fixed cost
// (grouping, scheduling, stats) with trivial reducers — the overhead a
// real workload pays on top of its own computation.
func BenchmarkRunOverhead(b *testing.B) {
	for _, keys := range []int{4, 64} {
		in := make([]Pair[int, int], 10000)
		for i := range in {
			in[i] = Pair[int, int]{Key: i % keys, Value: i}
		}
		b.Run(fmt.Sprintf("reducers=%d", keys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(in, func(key int, vals []int) []Pair[int, int] {
					return []Pair[int, int]{{key, len(vals)}}
				}, Options{})
			}
		})
	}
}

func BenchmarkScatter(b *testing.B) {
	vals := make([]int, 100000)
	b.Run("roundrobin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Scatter(vals, 16)
		}
	})
	b.Run("seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ScatterSeeded(vals, 16, 1)
		}
	})
}
