package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadVectorsCSV: the CSV reader must never panic and must reject
// ragged or non-numeric input with an error rather than silent
// corruption; accepted input must round-trip.
func FuzzReadVectorsCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("")
	f.Add("1\n2\n3\n")
	f.Add("1,2\n3\n")
	f.Add("NaN,Inf\n")
	f.Fuzz(func(t *testing.T, s string) {
		pts, err := ReadVectorsCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		// Uniform dimensionality on success.
		for i := 1; i < len(pts); i++ {
			if len(pts[i]) != len(pts[0]) {
				t.Fatalf("accepted ragged input: %d vs %d columns", len(pts[i]), len(pts[0]))
			}
		}
		var buf bytes.Buffer
		if err := WriteVectorsCSV(&buf, pts); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadVectorsCSV(&buf)
		if err != nil {
			t.Fatalf("round trip re-read failed: %v", err)
		}
		if len(back) != len(pts) {
			t.Fatalf("round trip changed count: %d -> %d", len(pts), len(back))
		}
	})
}

// FuzzReadSparse: the sparse-document reader must never panic; accepted
// documents must round-trip with identical structure.
func FuzzReadSparse(f *testing.F) {
	f.Add("1:2 3:4\n\n5:6\n")
	f.Add("")
	f.Add("0:0\n")
	f.Add("broken\n")
	f.Fuzz(func(t *testing.T, s string) {
		docs, err := ReadSparse(strings.NewReader(s))
		if err != nil {
			return
		}
		// Empty documents (e.g. "0:0", normalized to no entries) serialize
		// to blank lines, which the reader skips; compare the non-empty
		// subsequence.
		nonEmpty := docs[:0:0]
		for _, d := range docs {
			if d.NNZ() > 0 {
				nonEmpty = append(nonEmpty, d)
			}
		}
		var buf bytes.Buffer
		if err := WriteSparse(&buf, docs); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadSparse(&buf)
		if err != nil {
			t.Fatalf("round trip re-read failed: %v", err)
		}
		if len(back) != len(nonEmpty) {
			t.Fatalf("round trip changed count: %d -> %d", len(nonEmpty), len(back))
		}
		for i := range nonEmpty {
			if !sparseEqual(nonEmpty[i], back[i]) {
				t.Fatalf("round trip changed doc %d", i)
			}
		}
	})
}
