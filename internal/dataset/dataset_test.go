package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"divmax/internal/metric"
)

func TestSphereShape(t *testing.T) {
	pts, err := Sphere(SphereConfig{N: 500, K: 8, Dim: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 500 {
		t.Fatalf("n = %d, want 500", len(pts))
	}
	for i := 0; i < 8; i++ {
		if norm := pts[i].Norm(); math.Abs(norm-1) > 1e-9 {
			t.Fatalf("planted point %d has norm %v, want 1", i, norm)
		}
	}
	for i := 8; i < 500; i++ {
		if norm := pts[i].Norm(); norm > 0.8+1e-9 {
			t.Fatalf("bulk point %d has norm %v, want <= 0.8", i, norm)
		}
	}
}

func TestSphereDeterministic(t *testing.T) {
	c := SphereConfig{N: 50, K: 4, Dim: 2, Seed: 7}
	a, _ := Sphere(c)
	b, _ := Sphere(c)
	for i := range a {
		if metric.Euclidean(a[i], b[i]) != 0 {
			t.Fatal("same seed produced different datasets")
		}
	}
	c.Seed = 8
	d, _ := Sphere(c)
	same := true
	for i := range a {
		if metric.Euclidean(a[i], d[i]) != 0 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSphereStreamMatchesSphere(t *testing.T) {
	c := SphereConfig{N: 100, K: 5, Dim: 3, Seed: 3}
	pts, _ := Sphere(c)
	stream, err := SphereStream(c)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []metric.Vector
	stream(func(p metric.Vector) { streamed = append(streamed, p) })
	if len(streamed) != len(pts) {
		t.Fatalf("stream emitted %d points, want %d", len(streamed), len(pts))
	}
	for i := range pts {
		if metric.Euclidean(pts[i], streamed[i]) != 0 {
			t.Fatalf("stream diverges from batch at %d", i)
		}
	}
	// Replays identically.
	var replay []metric.Vector
	stream(func(p metric.Vector) { replay = append(replay, p) })
	for i := range pts {
		if metric.Euclidean(replay[i], streamed[i]) != 0 {
			t.Fatal("stream replay diverges")
		}
	}
}

func TestSphereBulkRadiusDistribution(t *testing.T) {
	// Uniform in the ball: about half the bulk mass lies beyond
	// 0.8·(1/2)^(1/3) ≈ 0.635 in 3-D.
	pts, _ := Sphere(SphereConfig{N: 4000, K: 0, Dim: 3, Seed: 5})
	median := 0.8 * math.Pow(0.5, 1.0/3)
	beyond := 0
	for _, p := range pts {
		if p.Norm() > median {
			beyond++
		}
	}
	frac := float64(beyond) / float64(len(pts))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("fraction beyond the median radius = %v, want ≈ 0.5", frac)
	}
}

func TestSphereValidation(t *testing.T) {
	for _, c := range []SphereConfig{
		{N: 0, K: 0, Dim: 2},
		{N: 10, K: 11, Dim: 2},
		{N: 10, K: 1, Dim: 0},
		{N: 10, K: 1, Dim: 2, OuterRadius: 1, InnerRadius: 2},
	} {
		if _, err := Sphere(c); err == nil {
			t.Errorf("config %+v: expected error", c)
		}
	}
}

func TestLyricsShape(t *testing.T) {
	docs, err := Lyrics(LyricsConfig{N: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 300 {
		t.Fatalf("n = %d, want 300", len(docs))
	}
	for i, d := range docs {
		if d.NNZ() < 10 {
			t.Fatalf("doc %d has %d distinct words, want >= 10 (the paper's filter)", i, d.NNZ())
		}
		if d.NNZ() > 80 {
			t.Fatalf("doc %d has %d distinct words, want <= 80", i, d.NNZ())
		}
		for j, term := range d.Terms {
			if term >= 5000 {
				t.Fatalf("doc %d term %d = %d outside the vocabulary", i, j, term)
			}
			// Counts are prototype counts (≤ MaxCount) times 1±CountNoise.
			if d.Values[j] < 1 || d.Values[j] > 40*1.16 {
				t.Fatalf("doc %d count %v outside [1,46]", i, d.Values[j])
			}
		}
	}
}

func TestLyricsZipfHeadHeavier(t *testing.T) {
	// Zipf popularity: low term ids occur far more often than high ones.
	docs, _ := Lyrics(LyricsConfig{N: 500, Seed: 4})
	lowCount, highCount := 0, 0
	for _, d := range docs {
		for _, term := range d.Terms {
			if term < 100 {
				lowCount++
			}
			if term >= 2500 {
				highCount++
			}
		}
	}
	if lowCount <= highCount*2 {
		t.Fatalf("term distribution not heavy-headed: low=%d high=%d", lowCount, highCount)
	}
}

func sparseEqual(a, b metric.SparseVector) bool {
	if a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] || a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

func TestLyricsStreamMatchesBatch(t *testing.T) {
	c := LyricsConfig{N: 80, Seed: 9}
	docs, _ := Lyrics(c)
	stream, err := LyricsStream(c)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []metric.SparseVector
	stream(func(d metric.SparseVector) { streamed = append(streamed, d) })
	if len(streamed) != len(docs) {
		t.Fatalf("stream emitted %d docs, want %d", len(streamed), len(docs))
	}
	for i := range docs {
		if !sparseEqual(docs[i], streamed[i]) {
			t.Fatalf("stream diverges at doc %d", i)
		}
	}
}

func TestLyricsValidation(t *testing.T) {
	for _, c := range []LyricsConfig{
		{N: -1},
		{N: 10, MinWords: 5, MaxWords: 3},
		{N: 10, Vocab: 20, MaxWords: 50},
		{N: 10, ZipfS: 0.5},
	} {
		if _, err := Lyrics(c); err == nil {
			t.Errorf("config %+v: expected error", c)
		}
	}
}

func TestShuffleDeterministicPermutation(t *testing.T) {
	pts := []int{1, 2, 3, 4, 5, 6, 7, 8}
	a := Shuffle(pts, 3)
	b := Shuffle(pts, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed shuffles differ")
		}
	}
	// Original untouched; result is a permutation.
	sum := 0
	for _, x := range a {
		sum += x
	}
	if sum != 36 || pts[0] != 1 {
		t.Fatal("shuffle is not a permutation or mutated its input")
	}
}

func TestSortMortonPreservesMultiset(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]metric.Vector, 50)
		for i := range pts {
			pts[i] = metric.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		sorted := SortMorton(pts, 10)
		if len(sorted) != len(pts) {
			return false
		}
		// Every original point appears in the output.
		for _, p := range pts {
			if d, _ := metric.MinDistance(p, sorted, metric.Euclidean); d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSortMortonImprovesLocality(t *testing.T) {
	// Chunks of the Morton order must be spatially tighter than chunks of
	// the unsorted (random) order: compare the mean intra-chunk pairwise
	// distance.
	rng := rand.New(rand.NewSource(11))
	pts := make([]metric.Vector, 400)
	for i := range pts {
		pts[i] = metric.Vector{rng.Float64() * 100, rng.Float64() * 100}
	}
	spread := func(data []metric.Vector) float64 {
		const chunks = 8
		total, count := 0.0, 0
		for c := 0; c < chunks; c++ {
			lo, hi := c*len(data)/chunks, (c+1)*len(data)/chunks
			chunk := data[lo:hi]
			for i := 0; i < len(chunk); i += 4 {
				for j := i + 1; j < len(chunk); j += 4 {
					total += metric.Euclidean(chunk[i], chunk[j])
					count++
				}
			}
		}
		return total / float64(count)
	}
	random := spread(pts)
	sorted := spread(SortMorton(pts, 10))
	if sorted >= random*0.8 {
		t.Fatalf("morton chunks not tighter: sorted %v vs random %v", sorted, random)
	}
}

func TestSortMortonDegenerate(t *testing.T) {
	if out := SortMorton(nil, 10); len(out) != 0 {
		t.Fatal("nil input")
	}
	one := []metric.Vector{{1, 2}}
	if out := SortMorton(one, 10); len(out) != 1 {
		t.Fatal("single input")
	}
	same := []metric.Vector{{1, 1}, {1, 1}, {1, 1}}
	if out := SortMorton(same, 10); len(out) != 3 {
		t.Fatal("identical points")
	}
}

func TestVectorsCSVRoundTrip(t *testing.T) {
	pts, _ := Sphere(SphereConfig{N: 40, K: 3, Dim: 3, Seed: 6})
	var buf bytes.Buffer
	if err := WriteVectorsCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVectorsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pts) {
		t.Fatalf("read %d points, want %d", len(back), len(pts))
	}
	for i := range pts {
		if metric.Euclidean(pts[i], back[i]) != 0 {
			t.Fatalf("round trip changed point %d", i)
		}
	}
}

func TestReadVectorsCSVErrors(t *testing.T) {
	if _, err := ReadVectorsCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged CSV: expected error")
	}
	if _, err := ReadVectorsCSV(strings.NewReader("1,x\n")); err == nil {
		t.Error("non-numeric CSV: expected error")
	}
	pts, err := ReadVectorsCSV(strings.NewReader(""))
	if err != nil || len(pts) != 0 {
		t.Errorf("empty CSV = (%v, %v)", pts, err)
	}
}

func TestSparseRoundTrip(t *testing.T) {
	docs, _ := Lyrics(LyricsConfig{N: 25, Seed: 8})
	var buf bytes.Buffer
	if err := WriteSparse(&buf, docs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSparse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(docs) {
		t.Fatalf("read %d docs, want %d", len(back), len(docs))
	}
	for i := range docs {
		if !sparseEqual(docs[i], back[i]) {
			t.Fatalf("round trip changed doc %d", i)
		}
	}
}

func TestReadSparseSkipsBlankAndErrors(t *testing.T) {
	docs, err := ReadSparse(strings.NewReader("1:2 3:4\n\n5:6\n"))
	if err != nil || len(docs) != 2 {
		t.Fatalf("(%v, %v), want 2 docs", docs, err)
	}
	if _, err := ReadSparse(strings.NewReader("broken\n")); err == nil {
		t.Error("malformed line: expected error")
	}
}
