package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"divmax/internal/metric"
)

// WriteVectorsCSV writes one point per record, coordinates as columns.
func WriteVectorsCSV(w io.Writer, pts []metric.Vector) error {
	cw := csv.NewWriter(w)
	record := make([]string, 0, 8)
	for i, p := range pts {
		record = record[:0]
		for _, x := range p {
			record = append(record, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("dataset: writing point %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadVectorsCSV reads points written by WriteVectorsCSV. All records
// must have the same number of columns; it returns a descriptive error
// on ragged or non-numeric input.
func ReadVectorsCSV(r io.Reader) ([]metric.Vector, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate dimensions ourselves for a better error
	var pts []metric.Vector
	dim := -1
	for i := 0; ; i++ {
		record, err := cr.Read()
		if err == io.EOF {
			return pts, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading record %d: %w", i, err)
		}
		if dim == -1 {
			dim = len(record)
		} else if len(record) != dim {
			return nil, fmt.Errorf("dataset: record %d has %d columns, want %d", i, len(record), dim)
		}
		p := make(metric.Vector, dim)
		for j, field := range record {
			x, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: record %d column %d: %w", i, j, err)
			}
			p[j] = x
		}
		pts = append(pts, p)
	}
}

// WriteSparse writes one document per line in the musiXmatch-style
// "term:count term:count ..." format.
func WriteSparse(w io.Writer, docs []metric.SparseVector) error {
	bw := bufio.NewWriter(w)
	for i, d := range docs {
		if _, err := bw.WriteString(d.String()); err != nil {
			return fmt.Errorf("dataset: writing document %d: %w", i, err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("dataset: writing document %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadSparse reads documents written by WriteSparse, skipping blank
// lines.
func ReadSparse(r io.Reader) ([]metric.SparseVector, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var docs []metric.SparseVector
	for line := 0; sc.Scan(); line++ {
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		d, err := metric.ParseSparseVector(text)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		docs = append(docs, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scanning: %w", err)
	}
	return docs, nil
}
