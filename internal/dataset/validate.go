package dataset

import (
	"fmt"
	"math"

	"divmax/internal/metric"
)

// ValidateVectors rejects datasets that would corrupt the algorithms'
// invariants: NaN or infinite coordinates (which break every distance
// comparison) and mixed dimensionalities (which panic deep inside the
// distance functions). It returns the first offending record.
func ValidateVectors(pts []metric.Vector) error {
	if len(pts) == 0 {
		return nil
	}
	dim := len(pts[0])
	for i, p := range pts {
		if len(p) != dim {
			return fmt.Errorf("dataset: point %d has dimension %d, want %d", i, len(p), dim)
		}
		for j, x := range p {
			if math.IsNaN(x) {
				return fmt.Errorf("dataset: point %d coordinate %d is NaN", i, j)
			}
			if math.IsInf(x, 0) {
				return fmt.Errorf("dataset: point %d coordinate %d is infinite", i, j)
			}
		}
	}
	return nil
}

// ValidateSparse rejects sparse documents with NaN, infinite, or
// negative values (cosine distance assumes non-negative counts; negative
// components can push cos outside [-1,1] semantics the corpus assumes).
func ValidateSparse(docs []metric.SparseVector) error {
	for i, d := range docs {
		for j, x := range d.Values {
			if math.IsNaN(x) {
				return fmt.Errorf("dataset: document %d term %d has NaN count", i, d.Terms[j])
			}
			if math.IsInf(x, 0) {
				return fmt.Errorf("dataset: document %d term %d has infinite count", i, d.Terms[j])
			}
			if x < 0 {
				return fmt.Errorf("dataset: document %d term %d has negative count %g", i, d.Terms[j], x)
			}
		}
	}
	return nil
}
