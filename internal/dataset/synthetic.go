// Package dataset provides the workloads of the paper's experimental
// section (Section 7): the synthetic sphere-shell distribution used for
// the scalability and MapReduce experiments, a simulated musiXmatch
// lyrics corpus (the real dataset is not redistributable; see DESIGN.md,
// substitutions), the Morton-order adversarial partitioner of §7.2, and
// CSV/text dataset IO.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"divmax/internal/metric"
)

// SphereConfig parameterizes the paper's synthetic generator: "for a
// given k, k points are randomly picked on the surface of the unit radius
// sphere centered at the origin ..., and the other points are chosen
// uniformly at random in the concentric sphere of radius 0.8". The paper
// found this the most challenging distribution it tried.
type SphereConfig struct {
	// N is the total number of points (including the K far points).
	N int
	// K is the number of planted far-away points on the outer surface.
	K int
	// Dim is the dimension (the paper uses 2 and 3).
	Dim int
	// OuterRadius is the surface radius for the planted points (1.0 when
	// zero).
	OuterRadius float64
	// InnerRadius is the bulk ball radius (0.8·OuterRadius when zero).
	InnerRadius float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c SphereConfig) withDefaults() (SphereConfig, error) {
	if c.OuterRadius == 0 {
		c.OuterRadius = 1.0
	}
	if c.InnerRadius == 0 {
		c.InnerRadius = 0.8 * c.OuterRadius
	}
	if c.N < 1 || c.K < 0 || c.K > c.N {
		return c, fmt.Errorf("dataset: sphere config requires 0 <= K <= N and N >= 1, got N=%d K=%d", c.N, c.K)
	}
	if c.Dim < 1 {
		return c, fmt.Errorf("dataset: sphere config requires Dim >= 1, got %d", c.Dim)
	}
	if c.InnerRadius < 0 || c.InnerRadius > c.OuterRadius {
		return c, fmt.Errorf("dataset: sphere config requires 0 <= InnerRadius <= OuterRadius, got %g > %g", c.InnerRadius, c.OuterRadius)
	}
	return c, nil
}

// Sphere generates the sphere-shell dataset. The K planted points are
// returned first, followed by the N−K bulk points; callers that need a
// neutral order shuffle (the experiments feed points round-robin or
// shuffled, so the planted prefix carries no advantage).
func Sphere(c SphereConfig) ([]metric.Vector, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	pts := make([]metric.Vector, 0, c.N)
	for i := 0; i < c.K; i++ {
		pts = append(pts, scaleToNorm(randomDirection(rng, c.Dim), c.OuterRadius))
	}
	for i := c.K; i < c.N; i++ {
		// Uniform in the ball: direction × R·U^{1/dim}.
		r := c.InnerRadius * math.Pow(rng.Float64(), 1/float64(c.Dim))
		pts = append(pts, scaleToNorm(randomDirection(rng, c.Dim), r))
	}
	return pts, nil
}

// SphereStream returns a generator that replays the same sphere dataset
// point-by-point without materializing it, for streaming experiments at
// sizes that should not be held in memory twice. Each call to the
// returned function replays the identical sequence.
func SphereStream(c SphereConfig) (func(emit func(metric.Vector)), error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	return func(emit func(metric.Vector)) {
		rng := rand.New(rand.NewSource(c.Seed))
		for i := 0; i < c.K; i++ {
			emit(scaleToNorm(randomDirection(rng, c.Dim), c.OuterRadius))
		}
		for i := c.K; i < c.N; i++ {
			r := c.InnerRadius * math.Pow(rng.Float64(), 1/float64(c.Dim))
			emit(scaleToNorm(randomDirection(rng, c.Dim), r))
		}
	}, nil
}

func randomDirection(rng *rand.Rand, dim int) metric.Vector {
	v := make(metric.Vector, dim)
	for {
		var norm float64
		for i := range v {
			v[i] = rng.NormFloat64()
			norm += v[i] * v[i]
		}
		if norm > 1e-12 { // astronomically unlikely to loop
			return v
		}
	}
}

func scaleToNorm(v metric.Vector, target float64) metric.Vector {
	norm := v.Norm()
	if norm == 0 {
		return v
	}
	for i := range v {
		v[i] *= target / norm
	}
	return v
}

// Shuffle returns a seeded random permutation of pts (not in place).
func Shuffle[P any](pts []P, seed int64) []P {
	out := make([]P, len(pts))
	copy(out, pts)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
