package dataset

import (
	"fmt"
	"math/rand"

	"divmax/internal/metric"
)

// LyricsConfig parameterizes the simulated musiXmatch corpus. The real
// dataset (Bertin-Mahieux et al., ISMIR'11) represents each of 237,662
// songs as word counts over the 5,000 most frequent words, and the paper
// filters out songs with fewer than 10 frequent words. This generator
// reproduces the traits the experiments exercise:
//
//   - 5,000-dimensional sparse non-negative count vectors under the
//     cosine distance;
//   - heavy-tailed (Zipf) term popularity — songs share common head
//     words;
//   - near-duplicate structure: songs come in families (covers, genre
//     formulas), modelled as noisy copies of per-topic prototype
//     documents. The resulting distance spread — tiny angles inside a
//     family, near-orthogonal across families — is what drives the
//     streaming doubling algorithm through its phases and makes the
//     kernel size k′ matter, as in the paper's Figure 1.
type LyricsConfig struct {
	// N is the number of documents.
	N int
	// Vocab is the vocabulary size (5000 when zero, as in musiXmatch).
	Vocab int
	// Topics is the number of prototype documents (40 when zero).
	Topics int
	// KeepProb is the probability a prototype word survives into a
	// derived document (0.9 when zero).
	KeepProb float64
	// CountNoise is the relative count perturbation: derived counts are
	// prototype × (1 ± CountNoise·U) (0.15 when zero).
	CountNoise float64
	// TailFrac is the fraction of extra low-count tail words mixed into
	// each document (0.08 when zero).
	TailFrac float64
	// MinWords and MaxWords bound the distinct words per document
	// (10 and 80 when zero; the paper's filter enforces ≥ 10).
	MinWords, MaxWords int
	// ZipfS is the Zipf exponent for global term popularity (1.1 when
	// zero).
	ZipfS float64
	// MaxCount is the largest per-word count (40 when zero).
	MaxCount int
	// Seed makes generation deterministic.
	Seed int64
}

func (c LyricsConfig) withDefaults() (LyricsConfig, error) {
	if c.Vocab == 0 {
		c.Vocab = 5000
	}
	if c.Topics == 0 {
		c.Topics = 40
	}
	if c.KeepProb == 0 {
		c.KeepProb = 0.9
	}
	if c.CountNoise == 0 {
		c.CountNoise = 0.15
	}
	if c.TailFrac == 0 {
		c.TailFrac = 0.08
	}
	if c.MinWords == 0 {
		c.MinWords = 10
	}
	if c.MaxWords == 0 {
		c.MaxWords = 80
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.MaxCount == 0 {
		c.MaxCount = 40
	}
	if c.N < 0 {
		return c, fmt.Errorf("dataset: lyrics config requires N >= 0, got %d", c.N)
	}
	if c.MinWords < 1 || c.MaxWords < c.MinWords {
		return c, fmt.Errorf("dataset: lyrics config requires 1 <= MinWords <= MaxWords, got %d..%d", c.MinWords, c.MaxWords)
	}
	if c.Vocab < 2*c.MaxWords {
		return c, fmt.Errorf("dataset: lyrics vocabulary %d must be at least 2×MaxWords (%d)", c.Vocab, 2*c.MaxWords)
	}
	if c.ZipfS <= 1 {
		return c, fmt.Errorf("dataset: lyrics Zipf exponent must exceed 1, got %g", c.ZipfS)
	}
	if c.Topics < 1 || c.KeepProb <= 0 || c.KeepProb > 1 || c.CountNoise < 0 || c.CountNoise >= 1 || c.TailFrac < 0 || c.TailFrac > 0.5 {
		return c, fmt.Errorf("dataset: lyrics family parameters invalid: topics=%d keep=%g noise=%g tail=%g",
			c.Topics, c.KeepProb, c.CountNoise, c.TailFrac)
	}
	return c, nil
}

// lyricsGen carries the deterministic generation state shared by the
// batch and streaming generators.
type lyricsGen struct {
	cfg    LyricsConfig
	rng    *rand.Rand
	zipf   *rand.Zipf
	protos []metric.SparseVector
}

func newLyricsGen(c LyricsConfig) *lyricsGen {
	g := &lyricsGen{
		cfg: c,
		rng: rand.New(rand.NewSource(c.Seed)),
	}
	g.zipf = rand.NewZipf(g.rng, c.ZipfS, 1, uint64(c.Vocab-1))
	g.protos = make([]metric.SparseVector, c.Topics)
	for t := range g.protos {
		// Prototype: a full-length document with Zipf words, so topic
		// head words overlap across topics like real genre vocabulary.
		size := (c.MinWords + c.MaxWords) / 2
		if size < c.MinWords {
			size = c.MinWords
		}
		seen := map[uint32]bool{}
		terms := make([]uint32, 0, size)
		values := make([]float64, 0, size)
		for len(terms) < size {
			w := uint32(g.zipf.Uint64())
			if seen[w] {
				continue
			}
			seen[w] = true
			terms = append(terms, w)
			values = append(values, float64(5+g.rng.Intn(c.MaxCount-4)))
		}
		g.protos[t] = metric.NewSparseVector(terms, values)
	}
	return g
}

func (g *lyricsGen) doc() metric.SparseVector {
	c := g.cfg
	proto := g.protos[g.rng.Intn(len(g.protos))]
	terms := make([]uint32, 0, proto.NNZ()+8)
	values := make([]float64, 0, proto.NNZ()+8)
	seen := make(map[uint32]bool, proto.NNZ()+8)
	for i, w := range proto.Terms {
		if g.rng.Float64() > c.KeepProb {
			continue
		}
		noise := 1 + c.CountNoise*(2*g.rng.Float64()-1)
		count := proto.Values[i] * noise
		if count < 1 {
			count = 1
		}
		seen[w] = true
		terms = append(terms, w)
		values = append(values, count)
	}
	// Low-count tail words: per-song vocabulary quirks.
	tail := int(c.TailFrac * float64(proto.NNZ()))
	for add := 0; add < tail; {
		w := uint32(g.zipf.Uint64())
		if seen[w] {
			continue
		}
		seen[w] = true
		terms = append(terms, w)
		values = append(values, float64(1+g.rng.Intn(3)))
		add++
	}
	// The paper's ≥ MinWords filter: top the document back up from the
	// prototype when drops cut it too short.
	for i := 0; len(terms) < c.MinWords && i < proto.NNZ(); i++ {
		if !seen[proto.Terms[i]] {
			seen[proto.Terms[i]] = true
			terms = append(terms, proto.Terms[i])
			values = append(values, proto.Values[i])
		}
	}
	return metric.NewSparseVector(terms, values)
}

// Lyrics generates the simulated corpus. Every document has at least
// MinWords distinct words (the paper's filter is built in); documents
// derived from the same prototype are nearly parallel (cosine distance a
// fraction of a radian), documents from different prototypes nearly
// orthogonal.
func Lyrics(c LyricsConfig) ([]metric.SparseVector, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	g := newLyricsGen(c)
	docs := make([]metric.SparseVector, 0, c.N)
	for i := 0; i < c.N; i++ {
		docs = append(docs, g.doc())
	}
	return docs, nil
}

// LyricsStream returns a replayable point-by-point generator of the same
// corpus without materializing it (cf. SphereStream).
func LyricsStream(c LyricsConfig) (func(emit func(metric.SparseVector)), error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	return func(emit func(metric.SparseVector)) {
		g := newLyricsGen(c)
		for i := 0; i < c.N; i++ {
			emit(g.doc())
		}
	}, nil
}
