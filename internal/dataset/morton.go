package dataset

import (
	"sort"

	"divmax/internal/metric"
)

// SortMorton returns a copy of pts ordered along a Morton (Z-order)
// space-filling curve. Feeding the sorted points to contiguous-chunk
// partitioning gives each MapReduce reducer a small-volume region of
// space — the paper's adversarial partitioning (§7.2), which "obfuscates
// a global view of the pointset". Coordinates are quantized to bits bits
// per dimension over the data's bounding box.
func SortMorton(pts []metric.Vector, bits int) []metric.Vector {
	out := make([]metric.Vector, len(pts))
	copy(out, pts)
	if len(pts) < 2 {
		return out
	}
	if bits < 1 {
		bits = 10
	}
	dim := len(pts[0])
	if maxUsable := 63 / dim; bits > maxUsable {
		bits = maxUsable
	}
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, pts[0])
	copy(hi, pts[0])
	for _, p := range pts {
		for j := 0; j < dim; j++ {
			if p[j] < lo[j] {
				lo[j] = p[j]
			}
			if p[j] > hi[j] {
				hi[j] = p[j]
			}
		}
	}
	codes := make([]uint64, len(out))
	for i, p := range out {
		codes[i] = mortonCode(p, lo, hi, bits)
	}
	// Sort an index view so codes and points stay aligned.
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return codes[idx[a]] < codes[idx[b]] })
	sorted := make([]metric.Vector, len(out))
	for i, j := range idx {
		sorted[i] = out[j]
	}
	return sorted
}

// mortonCode interleaves the quantized coordinate bits of p, most
// significant bit first.
func mortonCode(p metric.Vector, lo, hi []float64, bits int) uint64 {
	dim := len(p)
	q := make([]uint64, dim)
	maxQ := uint64(1)<<bits - 1
	for j := 0; j < dim; j++ {
		span := hi[j] - lo[j]
		if span <= 0 {
			q[j] = 0
			continue
		}
		f := (p[j] - lo[j]) / span
		v := uint64(f * float64(maxQ))
		if v > maxQ {
			v = maxQ
		}
		q[j] = v
	}
	var code uint64
	for b := bits - 1; b >= 0; b-- {
		for j := 0; j < dim; j++ {
			code = code<<1 | (q[j]>>b)&1
		}
	}
	return code
}
