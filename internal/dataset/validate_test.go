package dataset

import (
	"math"
	"testing"

	"divmax/internal/metric"
)

func TestValidateVectors(t *testing.T) {
	good := []metric.Vector{{1, 2}, {3, 4}}
	if err := ValidateVectors(good); err != nil {
		t.Fatalf("valid data rejected: %v", err)
	}
	if err := ValidateVectors(nil); err != nil {
		t.Fatalf("empty data rejected: %v", err)
	}
	cases := map[string][]metric.Vector{
		"nan":       {{1, 2}, {math.NaN(), 0}},
		"inf":       {{1, 2}, {math.Inf(1), 0}},
		"neg-inf":   {{math.Inf(-1), 0}},
		"ragged":    {{1, 2}, {3}},
		"ragged-up": {{1}, {2, 3}},
	}
	for name, pts := range cases {
		if err := ValidateVectors(pts); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestValidateSparse(t *testing.T) {
	good := []metric.SparseVector{metric.NewSparseVector([]uint32{1, 2}, []float64{1, 2})}
	if err := ValidateSparse(good); err != nil {
		t.Fatalf("valid docs rejected: %v", err)
	}
	bad := []metric.SparseVector{
		{Terms: []uint32{1}, Values: []float64{math.NaN()}},
		{Terms: []uint32{1}, Values: []float64{math.Inf(1)}},
		{Terms: []uint32{1}, Values: []float64{-3}},
	}
	for i, d := range bad {
		if err := ValidateSparse([]metric.SparseVector{d}); err == nil {
			t.Errorf("bad doc %d: expected error", i)
		}
	}
}
