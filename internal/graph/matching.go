package graph

import "sort"

// GreedyMaxWeightMatching computes a matching by repeatedly taking the
// heaviest remaining edge whose endpoints are both unmatched. The result
// is a ½-approximation to the maximum-weight matching, which is the
// ingredient of the Hassin–Rubinstein–Tamir 2-approximation for
// remote-clique. Edges are returned heaviest first; ties are broken by
// (U,V) index so the result is deterministic.
func GreedyMaxWeightMatching(dist [][]float64) []Edge {
	checkSquare(dist)
	n := len(dist)
	if n < 2 {
		return nil
	}
	edges := make([]Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: i, V: j, Weight: dist[i][j]})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].Weight != edges[b].Weight {
			return edges[a].Weight > edges[b].Weight
		}
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
	matched := make([]bool, n)
	var matching []Edge
	for _, e := range edges {
		if !matched[e.U] && !matched[e.V] {
			matched[e.U] = true
			matched[e.V] = true
			matching = append(matching, e)
		}
	}
	return matching
}

// MaximalIndependentSet computes a maximal independent set of the graph
// whose vertices are 0..n−1 and whose edges connect vertices at distance
// at most threshold. It scans vertices in index order (deterministic) and
// is the merge step of the streaming doubling algorithm (SMM): the
// returned set has pairwise distances > threshold and every excluded
// vertex is within threshold of some included one.
func MaximalIndependentSet(dist [][]float64, threshold float64) []int {
	checkSquare(dist)
	n := len(dist)
	var mis []int
	for v := 0; v < n; v++ {
		ok := true
		for _, u := range mis {
			if dist[u][v] <= threshold {
				ok = false
				break
			}
		}
		if ok {
			mis = append(mis, v)
		}
	}
	return mis
}
