package graph

import (
	"math"
	"math/bits"
)

// ExactBipartitionLimit is the largest instance size for which
// MinBipartition enumerates all balanced bipartitions exactly:
// C(20,10) ≈ 1.8×10⁵ candidate cuts is still fast, and remote-bipartition
// is evaluated on solution sets of size k, which is small.
const ExactBipartitionLimit = 20

// MinBipartition returns the minimum, over subsets Q with |Q| = ⌊n/2⌋, of
// the total distance between Q and its complement — the remote-bipartition
// objective of the paper. Instances up to ExactBipartitionLimit vertices
// are solved exactly by enumeration; larger ones use swap-based local
// search, whose result is an upper bound on the true minimum. The second
// result reports whether the value is exact.
func MinBipartition(dist [][]float64) (float64, bool) {
	checkSquare(dist)
	n := len(dist)
	if n < 2 {
		return 0, true
	}
	if n <= ExactBipartitionLimit {
		return exactBipartition(dist), true
	}
	return localSearchBipartition(dist), false
}

// cutWeight computes the total distance across the cut defined by mask:
// vertices with a set bit on one side, the rest on the other.
func cutWeight(dist [][]float64, mask uint) float64 {
	n := len(dist)
	var w float64
	for i := 0; i < n; i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				w += dist[i][j]
			}
		}
	}
	return w
}

func exactBipartition(dist [][]float64) float64 {
	n := len(dist)
	half := n / 2
	best := math.Inf(1)
	// For even n the cut (Q, complement) equals (complement, Q); fixing
	// vertex 0 on the Q side halves the enumeration. For odd n, |Q| is the
	// strictly smaller side so every ⌊n/2⌋-subset must be tried.
	fixZero := n%2 == 0
	for mask := uint(0); mask < 1<<n; mask++ {
		if bits.OnesCount(mask) != half {
			continue
		}
		if fixZero && mask&1 == 0 {
			continue
		}
		if w := cutWeight(dist, mask); w < best {
			best = w
		}
	}
	return best
}

// localSearchBipartition starts from the lexicographic balanced split and
// repeatedly applies the best improving swap of a vertex in Q with one
// outside, until a local minimum (or a sweep cap) is reached.
func localSearchBipartition(dist [][]float64) float64 {
	n := len(dist)
	half := n / 2
	inQ := make([]bool, n)
	for i := 0; i < half; i++ {
		inQ[i] = true
	}
	// contrib[v] = Σ_{u on the other side} d(v,u); swapping q∈Q with z∉Q
	// changes the cut by recomputation, done in O(n) per candidate pair.
	cut := 0.0
	for i := 0; i < n; i++ {
		if !inQ[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if !inQ[j] {
				cut += dist[i][j]
			}
		}
	}
	const maxSweeps = 50
	for sweep := 0; sweep < maxSweeps; sweep++ {
		bestDelta := 0.0
		bestQ, bestZ := -1, -1
		for q := 0; q < n; q++ {
			if !inQ[q] {
				continue
			}
			for z := 0; z < n; z++ {
				if inQ[z] {
					continue
				}
				// Swapping q and z: edges from q now cross toward Q\{q},
				// edges from z cross toward the complement side.
				delta := 0.0
				for v := 0; v < n; v++ {
					if v == q || v == z {
						continue
					}
					if inQ[v] {
						delta += dist[q][v] - dist[z][v]
					} else {
						delta += dist[z][v] - dist[q][v]
					}
				}
				if delta < bestDelta-1e-12 {
					bestDelta, bestQ, bestZ = delta, q, z
				}
			}
		}
		if bestQ < 0 {
			break
		}
		inQ[bestQ], inQ[bestZ] = false, true
		cut += bestDelta
	}
	return cut
}
