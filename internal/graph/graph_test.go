package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"divmax/internal/metric"
)

func randomMatrix(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		pts[i] = v
	}
	return metric.Matrix(pts, metric.Euclidean)
}

func lineMatrix(coords ...float64) [][]float64 {
	pts := make([]metric.Vector, len(coords))
	for i, c := range coords {
		pts[i] = metric.Vector{c}
	}
	return metric.Matrix(pts, metric.Euclidean)
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// --- MST ---

func TestMSTDegenerate(t *testing.T) {
	if w, edges := MST(nil); w != 0 || edges != nil {
		t.Fatalf("MST(nil) = (%v,%v), want (0,nil)", w, edges)
	}
	if w, edges := MST([][]float64{{0}}); w != 0 || edges != nil {
		t.Fatalf("MST(1 vertex) = (%v,%v), want (0,nil)", w, edges)
	}
}

func TestMSTLine(t *testing.T) {
	// Points on a line: MST is the chain of consecutive gaps.
	w, edges := MST(lineMatrix(0, 1, 4, 9))
	if !almostEqual(w, 9, 1e-12) {
		t.Fatalf("MST weight = %v, want 9", w)
	}
	if len(edges) != 3 {
		t.Fatalf("MST edges = %d, want 3", len(edges))
	}
}

func TestMSTSquarePlusCenter(t *testing.T) {
	pts := []metric.Vector{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}}
	dist := metric.Matrix(pts, metric.Euclidean)
	// Best tree: center connected to all four corners, 4·√2 ≈ 5.657.
	w := MSTWeight(dist)
	if want := 4 * math.Sqrt2; !almostEqual(w, want, 1e-9) {
		t.Fatalf("MST weight = %v, want %v", w, want)
	}
}

func TestMSTWeightMatchesMST(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dist := randomMatrix(rng, 2+rng.Intn(20), 3)
		w1, edges := MST(dist)
		var sum float64
		for _, e := range edges {
			sum += e.Weight
		}
		return almostEqual(w1, MSTWeight(dist), 1e-9) && almostEqual(w1, sum, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMSTLineSortedGaps(t *testing.T) {
	// Property: MST of 1-D points = span after sorting (sum of gaps).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		coords := make([]float64, n)
		for i := range coords {
			coords[i] = rng.Float64() * 100
		}
		w := MSTWeight(lineMatrix(coords...))
		sort.Float64s(coords)
		return almostEqual(w, coords[n-1]-coords[0], 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMSTSpansAllVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dist := randomMatrix(rng, 12, 2)
	_, edges := MST(dist)
	if len(edges) != 11 {
		t.Fatalf("MST has %d edges, want 11", len(edges))
	}
	// Union-find check for connectivity.
	parent := make([]int, 12)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			t.Fatalf("MST contains a cycle at edge %v", e)
		}
		parent[ru] = rv
	}
}

func TestCheckSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged matrix")
		}
	}()
	MST([][]float64{{0, 1}, {1}})
}

// --- TSP ---

// bruteTSP enumerates all (n−1)!/2 tours. Only for n ≤ 8 in tests.
func bruteTSP(dist [][]float64) float64 {
	n := len(dist)
	if n < 2 {
		return 0
	}
	if n == 2 {
		return 2 * dist[0][1]
	}
	perm := make([]int, n-1)
	for i := range perm {
		perm[i] = i + 1
	}
	best := math.Inf(1)
	var recur func(k int, sofar []int)
	recur = func(k int, sofar []int) {
		if k == len(perm) {
			w := dist[0][perm[0]]
			for i := 0; i+1 < len(perm); i++ {
				w += dist[perm[i]][perm[i+1]]
			}
			w += dist[perm[len(perm)-1]][0]
			if w < best {
				best = w
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recur(k+1, sofar)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recur(0, nil)
	return best
}

func TestTSPDegenerate(t *testing.T) {
	if w, exact := TSP(nil); w != 0 || !exact {
		t.Fatalf("TSP(nil) = (%v,%v), want (0,true)", w, exact)
	}
	if w, exact := TSP([][]float64{{0}}); w != 0 || !exact {
		t.Fatalf("TSP(1) = (%v,%v)", w, exact)
	}
	if w, exact := TSP(lineMatrix(0, 3)); w != 6 || !exact {
		t.Fatalf("TSP(2) = (%v,%v), want (6,true)", w, exact)
	}
}

func TestTSPUnitSquare(t *testing.T) {
	pts := []metric.Vector{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	w, exact := TSP(metric.Matrix(pts, metric.Euclidean))
	if !exact || !almostEqual(w, 4, 1e-9) {
		t.Fatalf("TSP unit square = (%v,%v), want (4,true)", w, exact)
	}
}

func TestTSPMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5) // 3..7
		dist := randomMatrix(rng, n, 2)
		w, exact := TSP(dist)
		if !exact {
			return false
		}
		return almostEqual(w, bruteTSP(dist), 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTSPApproxWithinFactorTwo(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		dist := randomMatrix(rng, n, 2)
		opt := bruteTSP(dist)
		approx := TSPApprox(dist)
		return approx >= opt-1e-9 && approx <= 2*opt+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTSPAtLeastMST(t *testing.T) {
	// Classic inequality: MST weight < TSP weight for n ≥ 3.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		dist := randomMatrix(rng, n, 3)
		w, _ := TSP(dist)
		return MSTWeight(dist) <= w+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTSPLargeFallsBackToApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dist := randomMatrix(rng, ExactTSPLimit+3, 2)
	w, exact := TSP(dist)
	if exact {
		t.Fatal("expected approximate result above ExactTSPLimit")
	}
	if w <= 0 {
		t.Fatalf("approximate TSP weight = %v, want > 0", w)
	}
}

// --- Matching ---

// bruteMaxWeightMatching computes the true maximum-weight matching by DP
// over subsets. Exponential; tests only (n ≤ 10).
func bruteMaxWeightMatching(dist [][]float64) float64 {
	n := len(dist)
	memo := make([]float64, 1<<n)
	for i := range memo {
		memo[i] = -1
	}
	var solve func(mask uint) float64
	solve = func(mask uint) float64 {
		if memo[mask] >= 0 {
			return memo[mask]
		}
		// Find lowest unmatched vertex.
		best := 0.0
		var first = -1
		for v := 0; v < n; v++ {
			if mask&(1<<v) == 0 {
				first = v
				break
			}
		}
		if first == -1 {
			return 0
		}
		// Option: leave first unmatched.
		best = solve(mask | 1<<first)
		for u := first + 1; u < n; u++ {
			if mask&(1<<u) == 0 {
				if cand := dist[first][u] + solve(mask|1<<first|1<<u); cand > best {
					best = cand
				}
			}
		}
		memo[mask] = best
		return best
	}
	return solve(0)
}

func TestGreedyMatchingDegenerate(t *testing.T) {
	if m := GreedyMaxWeightMatching(nil); m != nil {
		t.Fatalf("matching of empty graph = %v, want nil", m)
	}
	if m := GreedyMaxWeightMatching([][]float64{{0}}); m != nil {
		t.Fatalf("matching of single vertex = %v, want nil", m)
	}
}

func TestGreedyMatchingIsMatching(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		dist := randomMatrix(rng, n, 2)
		m := GreedyMaxWeightMatching(dist)
		used := map[int]bool{}
		for _, e := range m {
			if used[e.U] || used[e.V] {
				return false
			}
			used[e.U], used[e.V] = true, true
		}
		return len(m) == n/2 // complete graph: greedy matching is perfect on ⌊n/2⌋ pairs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMatchingHalfApprox(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8) // ≤ 9 for the brute force
		dist := randomMatrix(rng, n, 2)
		var w float64
		for _, e := range GreedyMaxWeightMatching(dist) {
			w += e.Weight
		}
		opt := bruteMaxWeightMatching(dist)
		return w >= opt/2-1e-9 && w <= opt+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMatchingPicksHeaviestFirst(t *testing.T) {
	dist := lineMatrix(0, 1, 10, 100)
	m := GreedyMaxWeightMatching(dist)
	if len(m) != 2 {
		t.Fatalf("matching size = %d, want 2", len(m))
	}
	if m[0].U != 0 || m[0].V != 3 {
		t.Fatalf("heaviest edge = (%d,%d), want (0,3)", m[0].U, m[0].V)
	}
}

// --- Maximal independent set ---

func TestMISProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		dist := randomMatrix(rng, n, 2)
		thr := rng.Float64() * 10
		mis := MaximalIndependentSet(dist, thr)
		inMIS := make([]bool, n)
		// Independence: pairwise distance > threshold.
		for i, u := range mis {
			inMIS[u] = true
			for _, v := range mis[i+1:] {
				if dist[u][v] <= thr {
					return false
				}
			}
		}
		// Maximality: every excluded vertex within threshold of the set.
		for v := 0; v < n; v++ {
			if inMIS[v] {
				continue
			}
			ok := false
			for _, u := range mis {
				if dist[u][v] <= thr {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return len(mis) >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMISDeterministicFirstVertex(t *testing.T) {
	dist := lineMatrix(0, 1, 2, 3)
	mis := MaximalIndependentSet(dist, 1.5)
	if len(mis) == 0 || mis[0] != 0 {
		t.Fatalf("MIS = %v, want to start at vertex 0", mis)
	}
}

// --- Bipartition ---

// bruteBipartition is an independent implementation used to cross-check
// exactBipartition: recursive subset construction instead of mask scan.
func bruteBipartition(dist [][]float64) float64 {
	n := len(dist)
	half := n / 2
	best := math.Inf(1)
	subset := make([]bool, n)
	var recur func(idx, chosen int)
	recur = func(idx, chosen int) {
		if chosen == half {
			var w float64
			for i := 0; i < n; i++ {
				if !subset[i] {
					continue
				}
				for j := 0; j < n; j++ {
					if !subset[j] {
						w += dist[i][j]
					}
				}
			}
			if w < best {
				best = w
			}
			return
		}
		if idx == n || n-idx < half-chosen {
			return
		}
		subset[idx] = true
		recur(idx+1, chosen+1)
		subset[idx] = false
		recur(idx+1, chosen)
	}
	recur(0, 0)
	return best
}

func TestMinBipartitionDegenerate(t *testing.T) {
	if w, exact := MinBipartition(nil); w != 0 || !exact {
		t.Fatalf("MinBipartition(nil) = (%v,%v)", w, exact)
	}
	if w, exact := MinBipartition([][]float64{{0}}); w != 0 || !exact {
		t.Fatalf("MinBipartition(1) = (%v,%v)", w, exact)
	}
}

func TestMinBipartitionTwoClusters(t *testing.T) {
	// Two tight clusters far apart. The minimum balanced cut pairs one
	// point from each cluster on each side: Q={A1,B1} cuts
	// d(A1,A2)+d(A1,B2)+d(B1,A2)+d(B1,B2) ≈ 0.1+100.1+99.9+0.1 = 200.2,
	// half the cluster-separating cut of ≈400.
	pts := []metric.Vector{{0, 0}, {0.1, 0}, {100, 0}, {100.1, 0}}
	dist := metric.Matrix(pts, metric.Euclidean)
	w, exact := MinBipartition(dist)
	if !exact {
		t.Fatal("expected exact result for n=4")
	}
	if !almostEqual(w, 200.2, 1e-9) {
		t.Fatalf("bipartition = %v, want 200.2", w)
	}
	if want := bruteBipartition(dist); !almostEqual(w, want, 1e-9) {
		t.Fatalf("bipartition = %v, brute force says %v", w, want)
	}
}

func TestMinBipartitionMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9) // 2..10
		dist := randomMatrix(rng, n, 2)
		w, exact := MinBipartition(dist)
		if !exact {
			return false
		}
		return almostEqual(w, bruteBipartition(dist), 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMinBipartitionOddSize(t *testing.T) {
	// n=5: |Q| = 2. Points on a line 0,1,2,3,100 — the minimum cut puts
	// the two extremes... verify against brute force.
	dist := lineMatrix(0, 1, 2, 3, 100)
	w, exact := MinBipartition(dist)
	if !exact {
		t.Fatal("expected exact")
	}
	if want := bruteBipartition(dist); !almostEqual(w, want, 1e-9) {
		t.Fatalf("odd bipartition = %v, want %v", w, want)
	}
}

func TestLocalSearchBipartitionUpperBound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7)
		dist := randomMatrix(rng, n, 2)
		return localSearchBipartition(dist) >= bruteBipartition(dist)-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMinBipartitionLargeUsesHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dist := randomMatrix(rng, ExactBipartitionLimit+2, 2)
	w, exact := MinBipartition(dist)
	if exact {
		t.Fatal("expected heuristic above the exact limit")
	}
	if w <= 0 {
		t.Fatalf("heuristic bipartition = %v, want > 0", w)
	}
}
