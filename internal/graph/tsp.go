package graph

import "math"

// ExactTSPLimit is the largest instance size solved exactly by TSP.
// Held–Karp uses O(2^n·n) memory; 16 vertices ≈ 8.4 MB of float64 state,
// which keeps exact evaluation cheap enough for tests and small k.
const ExactTSPLimit = 16

// TSP returns the weight of a shortest Hamiltonian cycle. Instances with
// at most ExactTSPLimit vertices are solved exactly with Held–Karp
// dynamic programming; larger instances fall back to TSPApprox (2-approx).
// The second result reports whether the value is exact.
//
// Degenerate cases follow the remote-cycle convention of the paper:
// fewer than two vertices have weight 0; exactly two have weight
// 2·d(0,1) (the "cycle" traverses the edge twice).
func TSP(dist [][]float64) (float64, bool) {
	checkSquare(dist)
	n := len(dist)
	switch {
	case n < 2:
		return 0, true
	case n == 2:
		return 2 * dist[0][1], true
	case n <= ExactTSPLimit:
		return heldKarp(dist), true
	}
	return TSPApprox(dist), false
}

// heldKarp solves TSP exactly in O(2^n·n²) time. Vertex 0 is fixed as the
// tour start; dp[mask][j] is the cheapest path visiting exactly the
// vertices of mask (which always contains 0 and j), starting at 0 and
// ending at j.
func heldKarp(dist [][]float64) float64 {
	n := len(dist)
	size := 1 << n
	dp := make([]float64, size*n)
	for i := range dp {
		dp[i] = math.Inf(1)
	}
	dp[(1<<0)*n+0] = 0
	for mask := 1; mask < size; mask++ {
		if mask&1 == 0 { // tours start at vertex 0
			continue
		}
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			cur := dp[mask*n+j]
			if math.IsInf(cur, 1) {
				continue
			}
			for next := 1; next < n; next++ {
				if mask&(1<<next) != 0 {
					continue
				}
				nmask := mask | 1<<next
				if cand := cur + dist[j][next]; cand < dp[nmask*n+next] {
					dp[nmask*n+next] = cand
				}
			}
		}
	}
	full := size - 1
	best := math.Inf(1)
	for j := 1; j < n; j++ {
		if cand := dp[full*n+j] + dist[j][0]; cand < best {
			best = cand
		}
	}
	return best
}

// TSPApprox returns the weight of a Hamiltonian cycle obtained by the
// MST-doubling heuristic (preorder walk of the minimum spanning tree with
// shortcutting) followed by 2-opt improvement. On metric instances the
// MST-doubling tour is at most twice the optimum, and 2-opt only
// improves it, so the returned weight is within a factor 2 of OPT.
func TSPApprox(dist [][]float64) float64 {
	checkSquare(dist)
	n := len(dist)
	switch {
	case n < 2:
		return 0
	case n == 2:
		return 2 * dist[0][1]
	}
	tour := mstPreorderTour(dist)
	twoOpt(tour, dist)
	return tourWeight(tour, dist)
}

// mstPreorderTour builds the 2-approximate tour: MST, then DFS preorder.
func mstPreorderTour(dist [][]float64) []int {
	n := len(dist)
	_, edges := MST(dist)
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	tour := make([]int, 0, n)
	visited := make([]bool, n)
	stack := []int{0}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[u] {
			continue
		}
		visited[u] = true
		tour = append(tour, u)
		// Push neighbours in reverse so lower indices are visited first,
		// keeping the tour deterministic.
		for i := len(adj[u]) - 1; i >= 0; i-- {
			if !visited[adj[u][i]] {
				stack = append(stack, adj[u][i])
			}
		}
	}
	return tour
}

// twoOpt improves tour in place with the classical 2-opt move until no
// improving exchange exists, capped at a fixed number of sweeps to bound
// the running time on adversarial inputs.
func twoOpt(tour []int, dist [][]float64) {
	n := len(tour)
	if n < 4 {
		return
	}
	const maxSweeps = 12
	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := false
		for i := 0; i < n-1; i++ {
			for j := i + 2; j < n; j++ {
				if i == 0 && j == n-1 {
					continue // same edge
				}
				a, b := tour[i], tour[i+1]
				c, d := tour[j], tour[(j+1)%n]
				delta := dist[a][c] + dist[b][d] - dist[a][b] - dist[c][d]
				if delta < -1e-12 {
					reverse(tour[i+1 : j+1])
					improved = true
				}
			}
		}
		if !improved {
			return
		}
	}
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func tourWeight(tour []int, dist [][]float64) float64 {
	var w float64
	for i := range tour {
		w += dist[tour[i]][tour[(i+1)%len(tour)]]
	}
	return w
}
