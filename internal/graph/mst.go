// Package graph provides the complete-graph primitives the diversity
// evaluators and sequential solvers are built on: minimum spanning trees,
// travelling-salesman tours (exact for small instances, approximate
// beyond), matchings, and balanced bipartitions. All algorithms operate on
// a symmetric pairwise distance matrix indexed by point position, as
// produced by metric.Matrix; points themselves never appear here.
package graph

import (
	"fmt"
	"math"
)

// Edge is an undirected edge between vertex indices U < V with weight W.
type Edge struct {
	U, V   int
	Weight float64
}

// MST computes a minimum spanning tree of the complete graph on
// len(dist) vertices with Prim's algorithm in O(n²) time and returns its
// total weight and its n−1 edges. Graphs with fewer than two vertices have
// weight 0 and no edges.
func MST(dist [][]float64) (float64, []Edge) {
	checkSquare(dist)
	n := len(dist)
	if n < 2 {
		return 0, nil
	}
	const unvisited = -1
	inTree := make([]bool, n)
	best := make([]float64, n) // cheapest connection cost to the tree
	parent := make([]int, n)   // tree vertex realizing best[i]
	for i := range best {
		best[i] = math.Inf(1)
		parent[i] = unvisited
	}
	best[0] = 0
	total := 0.0
	edges := make([]Edge, 0, n-1)
	for iter := 0; iter < n; iter++ {
		// Extract the cheapest unvisited vertex.
		u := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (u == -1 || best[v] < best[u]) {
				u = v
			}
		}
		inTree[u] = true
		if parent[u] != unvisited {
			total += best[u]
			lo, hi := parent[u], u
			if lo > hi {
				lo, hi = hi, lo
			}
			edges = append(edges, Edge{U: lo, V: hi, Weight: best[u]})
		}
		for v := 0; v < n; v++ {
			if !inTree[v] && dist[u][v] < best[v] {
				best[v] = dist[u][v]
				parent[v] = u
			}
		}
	}
	return total, edges
}

// MSTWeight computes only the weight of a minimum spanning tree, avoiding
// the edge-slice allocation. It is the hot path of the remote-tree
// evaluator.
func MSTWeight(dist [][]float64) float64 {
	checkSquare(dist)
	n := len(dist)
	if n < 2 {
		return 0
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	best[0] = 0
	total := 0.0
	for iter := 0; iter < n; iter++ {
		u := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (u == -1 || best[v] < best[u]) {
				u = v
			}
		}
		inTree[u] = true
		total += best[u]
		for v := 0; v < n; v++ {
			if !inTree[v] && dist[u][v] < best[v] {
				best[v] = dist[u][v]
			}
		}
	}
	return total
}

// checkSquare panics when dist is not a square matrix; all package entry
// points call it so malformed inputs fail loudly rather than corrupting
// results.
func checkSquare(dist [][]float64) {
	for i := range dist {
		if len(dist[i]) != len(dist) {
			panic(fmt.Sprintf("graph: distance matrix row %d has length %d, want %d", i, len(dist[i]), len(dist)))
		}
	}
}
