package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchMatrix(n int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	return randomMatrix(rng, n, 3)
}

func BenchmarkMSTWeight(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		dist := benchMatrix(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MSTWeight(dist)
			}
		})
	}
}

func BenchmarkTSPExact(b *testing.B) {
	for _, n := range []int{8, 12, ExactTSPLimit} {
		dist := benchMatrix(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				TSP(dist)
			}
		})
	}
}

func BenchmarkTSPApprox(b *testing.B) {
	for _, n := range []int{32, 128} {
		dist := benchMatrix(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				TSPApprox(dist)
			}
		})
	}
}

func BenchmarkGreedyMatching(b *testing.B) {
	for _, n := range []int{32, 128} {
		dist := benchMatrix(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GreedyMaxWeightMatching(dist)
			}
		})
	}
}

func BenchmarkMinBipartition(b *testing.B) {
	for _, n := range []int{10, 16, ExactBipartitionLimit} {
		dist := benchMatrix(n)
		b.Run(fmt.Sprintf("exact-n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MinBipartition(dist)
			}
		})
	}
	dist := benchMatrix(ExactBipartitionLimit + 20)
	b.Run("heuristic-n=40", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MinBipartition(dist)
		}
	})
}
