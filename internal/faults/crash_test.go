// Crash suite: drives the WAL crash injections (torn appends, torn
// checkpoints) and offline tail corruption through a live durable
// server, and pins the durability contract of ISSUE 8 — a crashed log
// fails writes closed (503) while queries keep serving; reopening the
// data directory recovers exactly the records the log holds, answering
// bit-for-bit what the server answered before the crash; a torn
// checkpoint leaves the previous one in charge; a corrupt tail is
// truncated at the damage and everything before it survives. The WAL on
// disk is itself the oracle: wal.Open after the fact says what must be
// recovered.
package faults_test

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"divmax"
	"divmax/internal/api"
	"divmax/internal/faults"
	"divmax/internal/server"
	"divmax/internal/wal"
)

func crashVecs(seed int64, n, d int) []divmax.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]divmax.Vector, n)
	for i := range out {
		v := make(divmax.Vector, d)
		for j := range v {
			v[j] = rng.NormFloat64() * 50
		}
		out[i] = v
	}
	return out
}

func waitServerReady(t *testing.T, srv *server.Server) {
	t.Helper()
	waitFor(t, "server ready", srv.Ready)
}

// testFsync is the WAL policy for this run: the default interval
// flusher, or whatever DIVMAX_TEST_FSYNC forces (the `make durability`
// target sets "always" so every record really fsyncs).
func testFsync() wal.SyncPolicy {
	v := os.Getenv("DIVMAX_TEST_FSYNC")
	if v == "" {
		return wal.SyncInterval
	}
	p, err := wal.ParseSyncPolicy(v)
	if err != nil {
		panic(err)
	}
	return p
}

func queryBits(t *testing.T, url string, k int, m divmax.Measure) api.QueryResponse {
	t.Helper()
	status, _, body := do(t, http.MethodGet, fmt.Sprintf("%s/v1/query?k=%d&measure=%s", url, k, m), "")
	if status != http.StatusOK {
		t.Fatalf("query %s: status %d: %s", m, status, body)
	}
	var q api.QueryResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	return q
}

// sameAnswer requires two query responses to agree bit for bit on
// everything recovery must preserve (MergeMillis and cache flags are
// runtime artifacts and excluded).
func sameAnswer(t *testing.T, what string, a, b api.QueryResponse) {
	t.Helper()
	if a.Processed != b.Processed || a.CoresetSize != b.CoresetSize {
		t.Fatalf("%s: processed/coreset %d/%d vs %d/%d", what, a.Processed, a.CoresetSize, b.Processed, b.CoresetSize)
	}
	if math.Float64bits(a.Value) != math.Float64bits(b.Value) {
		t.Fatalf("%s: value bits %x vs %x", what, math.Float64bits(a.Value), math.Float64bits(b.Value))
	}
	if len(a.Solution) != len(b.Solution) {
		t.Fatalf("%s: solution sizes %d vs %d", what, len(a.Solution), len(b.Solution))
	}
	for i := range a.Solution {
		for j := range a.Solution[i] {
			if math.Float64bits(a.Solution[i][j]) != math.Float64bits(b.Solution[i][j]) {
				t.Fatalf("%s: solution[%d][%d] bits differ", what, i, j)
			}
		}
	}
}

// walRecords opens a shard's WAL read-side and returns how many records
// and points survived on disk — the recovery oracle.
func walRecords(t *testing.T, dir string) (records int, points int, lastSeq uint64) {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("oracle open %s: %v", dir, err)
	}
	defer l.Close(false)
	lastSeq = l.RecoveredSeq()
	from := uint64(1)
	if _, next, ok := l.Checkpoint(); ok {
		from = next
	}
	err = l.Replay(from, lastSeq, func(r wal.Record) error {
		records++
		points += len(r.Points)
		return nil
	})
	if err != nil {
		t.Fatalf("oracle replay %s: %v", dir, err)
	}
	return records, points, lastSeq
}

// TestCrashMidAppendFailsClosedThenRecovers: a torn record write (the
// kill -9 shape) crashes shard 0's log. Writes fail closed with 503
// unavailable — the torn batch is never acknowledged — while queries
// keep answering from the folded state. Reopening the directory
// truncates the torn tail and replays the acknowledged records, and the
// recovered server answers bit-identically to the pre-crash server for
// both core-set families.
func TestCrashMidAppendFailsClosedThenRecovers(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New()
	// Shard 0's third append (0-based nth=2) tears after 10 bytes.
	inj.OnWALAppend(faults.CrashWALAppend(0, 2, 10))
	cfg := server.Config{Shards: 2, MaxK: 4, KPrime: 8, DataDir: dir, Fsync: testFsync(),
		CheckpointEvery: -time.Second, Faults: inj}
	srv, ts := startServer(t, cfg)
	waitServerReady(t, srv)

	a, b := crashVecs(11, 40, 3), crashVecs(12, 30, 3)
	for i, batch := range [][]divmax.Vector{a, b} {
		if status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, batch)); status != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, status, body)
		}
	}
	// The third batch tears shard 0's append mid-write: 503, not
	// accepted anywhere (shard 0 is first in the fan-out).
	status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, crashVecs(13, 20, 3)))
	wantEnvelope(t, "torn ingest", status, http.StatusServiceUnavailable, body, api.CodeUnavailable)
	// The log is crashed: every further write fails closed too.
	status, _, body = do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, crashVecs(14, 5, 3)))
	wantEnvelope(t, "ingest after crash", status, http.StatusServiceUnavailable, body, api.CodeUnavailable)
	status, _, body = do(t, http.MethodPost, ts.URL+"/v1/delete", pointsBody(t, []divmax.Vector{a[0]}))
	wantEnvelope(t, "delete after crash", status, http.StatusServiceUnavailable, body, api.CodeUnavailable)

	// Queries keep serving the folded state.
	pre := map[divmax.Measure]api.QueryResponse{}
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		pre[m] = queryBits(t, ts.URL, 4, m)
		if pre[m].Processed != 70 {
			t.Fatalf("%s before restart: processed %d, want 70 (the acknowledged batches)", m, pre[m].Processed)
		}
	}
	ts.Close()
	srv.CloseAbrupt()

	// The on-disk oracle: shard 0 kept exactly its two acknowledged
	// records (the torn third truncated away), 35 points.
	records, points, last := walRecords(t, filepath.Join(dir, "shard-000"))
	if records != 2 || points != 35 || last != 2 {
		t.Fatalf("shard 0 oracle: %d records / %d points through seq %d, want 2/35/2", records, points, last)
	}

	srv2, ts2 := startServer(t, server.Config{Shards: 2, MaxK: 4, KPrime: 8, DataDir: dir, Fsync: testFsync()})
	waitServerReady(t, srv2)
	st := getStats(t, ts2.URL)
	if st.IngestedTotal != 70 || st.Recoveries != 2 {
		t.Fatalf("recovered: ingested=%d recoveries=%d, want 70/2", st.IngestedTotal, st.Recoveries)
	}
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		sameAnswer(t, "mid-append crash/"+m.String(), pre[m], queryBits(t, ts2.URL, 4, m))
	}
	// The recovered log is healthy again: writes work.
	if status, _, body := do(t, http.MethodPost, ts2.URL+"/v1/ingest", pointsBody(t, crashVecs(15, 4, 3))); status != http.StatusOK {
		t.Fatalf("ingest after recovery: status %d: %s", status, body)
	}
}

// TestCrashMidCheckpointKeepsPrevious: a torn checkpoint write leaves a
// torn checkpoint.tmp behind and crashes the log; the previous
// checkpoint stays in charge, so reopening restores it plus the log
// tail — bit-identical answers, nothing lost, and the torn tmp is
// cleaned away.
func TestCrashMidCheckpointKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New()
	// Shard 0's first ticker checkpoint succeeds, the second tears.
	inj.OnCheckpoint(faults.CrashCheckpoint(0, 1, 12))
	cfg := server.Config{Shards: 2, MaxK: 4, KPrime: 8, DataDir: dir, Fsync: testFsync(),
		CheckpointEvery: 20 * time.Millisecond, Faults: inj}
	srv, ts := startServer(t, cfg)
	waitServerReady(t, srv)

	first := crashVecs(21, 60, 3)
	if status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, first)); status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, body)
	}
	// Wait for checkpoint #1 to land on every shard.
	waitFor(t, "first checkpoints", func() bool {
		for _, sh := range getStats(t, ts.URL).Shards {
			if sh.CheckpointAgeMS <= 0 {
				return false
			}
		}
		return true
	})
	// Feed records until the second checkpoint attempt tears shard 0's
	// log: ingests then start failing closed.
	accepted := [][]divmax.Vector{first}
	waitFor(t, "torn checkpoint to crash the log", func() bool {
		batch := crashVecs(int64(22+len(accepted)), 3, 3)
		status, _, _ := do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, batch))
		if status == http.StatusOK {
			accepted = append(accepted, batch)
			return false
		}
		return status == http.StatusServiceUnavailable
	})

	pre := map[divmax.Measure]api.QueryResponse{}
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		pre[m] = queryBits(t, ts.URL, 4, m)
	}
	total := 0
	for _, b := range accepted {
		total += len(b)
	}
	if pre[divmax.RemoteEdge].Processed != int64(total) {
		t.Fatalf("pre-crash processed %d, want %d accepted points", pre[divmax.RemoteEdge].Processed, total)
	}
	ts.Close()
	srv.CloseAbrupt()

	srv2, ts2 := startServer(t, server.Config{Shards: 2, MaxK: 4, KPrime: 8, DataDir: dir, Fsync: testFsync()})
	waitServerReady(t, srv2)
	st := getStats(t, ts2.URL)
	if st.Recoveries != 2 || st.IngestedTotal != int64(total) {
		t.Fatalf("recovered: recoveries=%d ingested=%d, want 2/%d", st.Recoveries, st.IngestedTotal, total)
	}
	// Shard 0 restored checkpoint #1 and replayed the tail after it.
	if st.Shards[0].ReplayedPoints == 0 {
		t.Fatal("shard 0 replayed nothing: the surviving checkpoint should cover only the first batch")
	}
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		sameAnswer(t, "mid-checkpoint crash/"+m.String(), pre[m], queryBits(t, ts2.URL, 4, m))
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-000", "checkpoint.tmp")); !os.IsNotExist(err) {
		t.Fatalf("torn checkpoint.tmp still present after recovery (stat err %v)", err)
	}
}

// TestCorruptTailRecoversPrefix: flip a byte inside the last record of
// a shard's segment on disk (disk rot, partial sector write). Recovery
// truncates at the first bad CRC: every record before the damage
// survives, and the recovered server answers bit-identically to an
// uninterrupted in-memory twin fed exactly the surviving prefix.
func TestCorruptTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{Shards: 1, MaxK: 4, KPrime: 8, DataDir: dir, Fsync: testFsync(),
		CheckpointEvery: -time.Second}
	srv, ts := startServer(t, cfg)
	waitServerReady(t, srv)
	batches := [][]divmax.Vector{crashVecs(31, 20, 3), crashVecs(32, 20, 3), crashVecs(33, 20, 3)}
	for i, b := range batches {
		if status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, b)); status != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, status, body)
		}
	}
	ts.Close()
	srv.CloseAbrupt()

	// Corrupt the last record: flip a byte near the end of the segment.
	shardDir := filepath.Join(dir, "shard-000")
	segs, err := filepath.Glob(filepath.Join(shardDir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (err %v)", shardDir, err)
	}
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The oracle: exactly the first two records survive.
	records, points, last := walRecords(t, shardDir)
	if records != 2 || points != 40 || last != 2 {
		t.Fatalf("oracle after corruption: %d records / %d points through seq %d, want 2/40/2", records, points, last)
	}

	srv2, ts2 := startServer(t, cfg)
	waitServerReady(t, srv2)
	st := getStats(t, ts2.URL)
	if st.IngestedTotal != 40 || st.Shards[0].ReplayedPoints != 40 {
		t.Fatalf("recovered: ingested=%d replayed=%d, want 40/40", st.IngestedTotal, st.Shards[0].ReplayedPoints)
	}

	_, twin := startServer(t, server.Config{Shards: 1, MaxK: 4, KPrime: 8})
	for _, b := range batches[:2] {
		if status, _, body := do(t, http.MethodPost, twin.URL+"/v1/ingest", pointsBody(t, b)); status != http.StatusOK {
			t.Fatalf("twin ingest: status %d: %s", status, body)
		}
	}
	for _, m := range []divmax.Measure{divmax.RemoteEdge, divmax.RemoteClique} {
		sameAnswer(t, "corrupt tail/"+m.String(), queryBits(t, ts2.URL, 4, m), queryBits(t, twin.URL, 4, m))
	}
}
