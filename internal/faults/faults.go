// Package faults is divmaxd's fault-injection surface: a small registry
// of hooks the server's shard goroutines consult at the points where a
// real deployment fails — folding a batch, answering a snapshot,
// answering a delete. Production servers carry a nil *Injector and pay
// one nil check per call; the chaos tests (this package's test suite
// and the white-box tests in internal/server) install hooks through
// server.Config.Faults to drive panics, slowness, wedges, and lost
// replies through the exact code paths live traffic uses.
//
// The canned injections mirror the failure modes the robustness layer
// must survive:
//
//   - PanicOnBatch: a poisoned batch — the shard goroutine panics
//     mid-fold, exercising supervision (recover, restart with fresh
//     core-sets, restart budget, permanent-failure draining).
//   - SlowBatch: a degraded shard — every fold takes extra time,
//     exercising deadlines and queue backpressure.
//   - Wedge: a hung shard — the fold blocks until released, exercising
//     request deadlines, load shedding, and degraded queries.
//   - DropReplies (OnSnapshot/OnDelete returning false): a lost reply —
//     the shard does the work but the requester never hears back,
//     exercising the reply-side deadline selects.
//   - CrashWALAppend / CrashCheckpoint: a kill -9 mid-write — the
//     write-ahead log persists a torn prefix of a record (or checkpoint)
//     and disables itself, exercising torn-tail truncation and
//     checkpoint-plus-replay recovery on the next boot.
package faults

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// InjectedPanic is the value PanicOnBatch panics with, so supervision
// tests can tell an injected panic from a genuine bug in the recover
// log.
type InjectedPanic struct {
	Shard int
	Batch int
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic on shard %d, batch %d", p.Shard, p.Batch)
}

// Injector holds the installed hooks. The zero value (and a nil
// pointer) injects nothing. Hooks run on the shard goroutines; setters
// may be called concurrently with the server running, so all access is
// mutex-copied.
type Injector struct {
	mu        sync.Mutex
	batch     func(shard, batch int)
	snapshot  func(shard int) bool
	delete    func(shard int) bool
	walAppend func(shard int, seq uint64, size int) int
	ckptWrite func(shard int, size int) int
	http      func(worker int, r *http.Request) HTTPFault
}

// New returns an empty Injector.
func New() *Injector { return &Injector{} }

// OnBatch installs f, called by shard goroutines immediately before
// folding a batch (batch is the count of batches the shard has folded
// so far, 0-based). f may sleep, block, or panic — it runs exactly
// where ProcessBatch would. nil uninstalls.
func (in *Injector) OnBatch(f func(shard, batch int)) {
	in.mu.Lock()
	in.batch = f
	in.mu.Unlock()
}

// OnSnapshot installs f, called before a shard answers a snapshot
// request. Returning false drops the reply: the work side-effects
// happen but the requester never hears back. nil uninstalls.
func (in *Injector) OnSnapshot(f func(shard int) bool) {
	in.mu.Lock()
	in.snapshot = f
	in.mu.Unlock()
}

// OnDelete installs f, called after a shard applies a delete broadcast
// but before it replies. Returning false drops the reply. nil
// uninstalls.
func (in *Injector) OnDelete(f func(shard int) bool) {
	in.mu.Lock()
	in.delete = f
	in.mu.Unlock()
}

// OnWALAppend installs f, consulted by a durable shard's log before
// every record write. Given the shard, the record's sequence number, and
// the framed size in bytes, f returns how many bytes to actually write:
// a value in [0, size) tears the write at that offset and crashes the
// shard's log (writes fail closed until the server reboots); anything
// else writes normally. nil uninstalls.
func (in *Injector) OnWALAppend(f func(shard int, seq uint64, size int) int) {
	in.mu.Lock()
	in.walAppend = f
	in.mu.Unlock()
}

// OnCheckpoint installs f, consulted before a durable shard writes a
// checkpoint file of size bytes. Same contract as OnWALAppend: a return
// in [0, size) leaves a torn checkpoint.tmp (the previous checkpoint
// stays valid) and crashes the log. nil uninstalls.
func (in *Injector) OnCheckpoint(f func(shard int, size int) int) {
	in.mu.Lock()
	in.ckptWrite = f
	in.mu.Unlock()
}

// Batch runs the batch hook. Safe on a nil Injector.
func (in *Injector) Batch(shard, batch int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	f := in.batch
	in.mu.Unlock()
	if f != nil {
		f(shard, batch)
	}
}

// Snapshot runs the snapshot hook, reporting whether the reply should
// be sent. Safe on a nil Injector.
func (in *Injector) Snapshot(shard int) bool {
	if in == nil {
		return true
	}
	in.mu.Lock()
	f := in.snapshot
	in.mu.Unlock()
	return f == nil || f(shard)
}

// Delete runs the delete hook, reporting whether the reply should be
// sent. Safe on a nil Injector.
func (in *Injector) Delete(shard int) bool {
	if in == nil {
		return true
	}
	in.mu.Lock()
	f := in.delete
	in.mu.Unlock()
	return f == nil || f(shard)
}

// WALAppend runs the WAL-append hook, returning how many of size bytes
// to write (size, i.e. a full write, when no hook is installed). Safe on
// a nil Injector.
func (in *Injector) WALAppend(shard int, seq uint64, size int) int {
	if in == nil {
		return size
	}
	in.mu.Lock()
	f := in.walAppend
	in.mu.Unlock()
	if f == nil {
		return size
	}
	return f(shard, seq, size)
}

// CheckpointWrite runs the checkpoint hook, returning how many of size
// bytes to write (size when no hook is installed). Safe on a nil
// Injector.
func (in *Injector) CheckpointWrite(shard, size int) int {
	if in == nil {
		return size
	}
	in.mu.Lock()
	f := in.ckptWrite
	in.mu.Unlock()
	if f == nil {
		return size
	}
	return f(shard, size)
}

// PanicOnBatch returns a batch hook that panics with InjectedPanic when
// shard target receives its nth batch (0-based, counted by the hook
// itself); every other fold passes through. The hook counts arrivals
// rather than keying on the shard's folded-batch counter: a panicked
// batch never counts as folded, so a folded-count trigger would re-fire
// on every batch after the restart and wedge the shard in a panic loop.
func PanicOnBatch(target, nth int) func(shard, batch int) {
	var arrivals atomic.Int64
	return func(shard, batch int) {
		if shard != target {
			return
		}
		if int(arrivals.Add(1))-1 == nth {
			panic(InjectedPanic{Shard: shard, Batch: batch})
		}
	}
}

// SlowBatch returns a batch hook that delays every fold on shard
// target by d.
func SlowBatch(target int, d time.Duration) func(shard, batch int) {
	return func(shard, batch int) {
		if shard == target {
			time.Sleep(d)
		}
	}
}

// Wedge returns a batch hook that blocks shard target's next fold until
// release is called (idempotent). Until then the shard accepts nothing
// more: its queue fills, ingest sheds, snapshot requests queue
// unanswered, and queries against it time out.
func Wedge(target int) (hook func(shard, batch int), release func()) {
	ch := make(chan struct{})
	var once sync.Once
	return func(shard, batch int) {
			if shard == target {
				<-ch
			}
		}, func() {
			once.Do(func() { close(ch) })
		}
}

// DropReplies returns a hook for OnSnapshot/OnDelete that silently
// drops shard target's replies while armed (disarm by installing nil).
func DropReplies(target int) func(shard int) bool {
	return func(shard int) bool { return shard != target }
}

// CrashWALAppend returns a WAL-append hook that tears shard target's
// nth record write (0-based, counted by the hook) after keep bytes,
// simulating a kill -9 mid-append: the torn prefix is persisted and the
// shard's log crashes. keep is clamped into [0, size). Every other
// write passes through.
func CrashWALAppend(target, nth, keep int) func(shard int, seq uint64, size int) int {
	var arrivals atomic.Int64
	return func(shard int, seq uint64, size int) int {
		if shard != target {
			return size
		}
		if int(arrivals.Add(1))-1 != nth {
			return size
		}
		return clampTear(keep, size)
	}
}

// CrashCheckpoint returns a checkpoint hook that tears shard target's
// nth checkpoint write (0-based) after keep bytes, simulating a crash
// mid-checkpoint: a torn checkpoint.tmp is left behind, the previous
// checkpoint survives, and the shard's log crashes.
func CrashCheckpoint(target, nth, keep int) func(shard, size int) int {
	var arrivals atomic.Int64
	return func(shard, size int) int {
		if shard != target {
			return size
		}
		if int(arrivals.Add(1))-1 != nth {
			return size
		}
		return clampTear(keep, size)
	}
}

// clampTear forces keep into the tearing range [0, size) so a crash
// hook always crashes once armed, even if the frame is smaller than the
// requested prefix.
func clampTear(keep, size int) int {
	if keep < 0 {
		return 0
	}
	if keep >= size {
		return size - 1
	}
	return keep
}
